#!/bin/sh
# CI gate: formatting, build, vet, race-check (short mode), the full test
# suite, a trafficd daemon smoke test with a /metrics scrape gate, and a
# qsim telemetry smoke test.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test -race -short"
go test -race -short ./...

echo "== go test"
go test ./...

echo "== shard gates"
# The sharded-registry invariants at full strength (the -short run above
# uses reduced iterations): shard topology must be invisible on the wire
# (1/4/16 shards byte-identical) and 64-goroutine churn with the idle
# evictor racing real traffic must leak no sessions, cost, or arena bytes.
go test -race -run 'TestShardInvariance|TestShardedRegistryChurnStress' \
    -count=1 ./internal/server

echo "== conformance -quick"
# Statistical acceptance gates: deterministic seeded checks that the
# backends still produce paper-conformant traffic (marginal, ACF, Hurst,
# cross-backend agreement, IS-vs-MC queue tails). Writes the
# machine-readable report alongside the bench artifacts. -workers 4 fans
# the replication loops out; the report is bit-identical at any setting
# (the race gate above covers the same worker pools via -race -short).
go run ./cmd/conformance -quick -workers 4 -out CONFORMANCE_1.json
# The trunk family (superposition determinism, Hurst preservation, mux
# gain) must be present in the suite, not just passing when it happens to
# run — a silently dropped family would otherwise pass the gate above.
for check in trunk-determinism trunk-hurst-preservation trunk-mux-gain; do
    grep -q "\"$check\"" CONFORMANCE_1.json \
        || { echo "conformance report missing $check" >&2; exit 1; }
done

echo "== benchdiff gate"
# Regression gate over a small, stable benchmark subset: re-measure the
# DH kernel, the fused inverse FFT kernel, the streaming-ladder headline
# rungs, the sticky-chunk step fan-out, the serial trunk fan-out rung
# (also the zero-steady-state-alloc gate), and the statmon serve-path
# ablation pair (the committed pair records the tap at <= 3% overhead;
# regressing either side beyond the threshold fails) and diff against the
# committed BENCH_8.json. The 25% threshold is generous — it absorbs
# machine-to-machine and run-to-run noise while catching order-of-magnitude
# regressions (a lost fast path, an accidental allocation in a refill).
go run ./cmd/bench -benchtime 300ms \
    -only 'DHPathRealInto|FFTHermitianReal|StreamTruncatedFill/n=16384|StreamBlockFill/n=16384|StreamBlockRefill|StreamStepAffinity|TrunkFillSerial|StreamBlockFillStatmon' \
    -compare BENCH_8.json -threshold 0.25

echo "== capacity ramp smoke"
# Serving-capacity gate: ramp a 1k-session in-process fleet through the
# sharded registry and diff request latency against the committed
# BENCH_6.json entry. The smoke profile measures only the 1k rung (the
# 10k/100k rungs in BENCH_6.json are recorded by -profile full and are
# ignored by the diff, which only gates shared benchmarks). The 75%
# threshold is deliberately loose — serving latency on shared CI hosts
# is far noisier than the compute kernels above.
go run ./cmd/loadgen -selfserve -profile smoke \
    -compare BENCH_6.json -threshold 0.75

echo "== fuzz smoke"
# Bounded runs of the native fuzz targets: spec decoding must never panic
# and quantile compaction must stay idempotent.
go test ./internal/modelspec -run '^$' -fuzz 'FuzzModelSpecDecode' -fuzztime=5s
go test ./internal/modelspec -run '^$' -fuzz 'FuzzTrunkSpecDecode' -fuzztime=5s
go test ./internal/modelspec -run '^$' -fuzz 'FuzzQuantileRoundTrip' -fuzztime=5s
# The binary frame protocol decoder must never panic and must classify
# every malformed input as truncated or oversized, nothing else.
go test ./internal/server -run '^$' -fuzz 'FuzzBinaryFrameDecode' -fuzztime=5s
# The fused real-FFT forward kernel must stay bit-identical to the
# unfused reference on arbitrary inputs.
go test ./internal/fft -run '^$' -fuzz 'FuzzRealForwardVsReference' -fuzztime=5s

echo "== trafficd smoke test"
# Start the daemon on an ephemeral port, hit /healthz and a 100-frame
# stream, then shut it down with SIGTERM (exercising graceful drain).
tmpdir=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/trafficd" ./cmd/trafficd
# -statmon-sample 1 observes every served chunk (so the drift smoke below
# converges quickly); the access log lands in the tmpdir for validation.
"$tmpdir/trafficd" -addr 127.0.0.1:0 -statmon-sample 1 \
    -access-log "$tmpdir/access.ndjson" >"$tmpdir/out" 2>"$tmpdir/err" &
daemon_pid=$!
base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's#^trafficd listening on \(http://.*\)$#\1#p' "$tmpdir/out")
    [ -n "$base" ] && break
    sleep 0.1
done
[ -n "$base" ] || { echo "trafficd did not report its address" >&2; cat "$tmpdir/err" >&2; exit 1; }

curl -sSf "$base/healthz" | grep -q ok
sid=$(curl -sSf -X POST "$base/v1/streams" \
    -d '{"name":"smoke","seed":7,"acf":{"weights":[1],"rates":[0.005869930388252342],"l":1.59468,"beta":0.2,"knee":60},"marginal":{"kind":"lognormal","mu":9.6,"sigma":0.4},"h":0.9}' \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$sid" ] || { echo "stream creation failed" >&2; exit 1; }
frames=$(curl -sSf "$base/v1/streams/$sid/frames?n=100" | wc -l)
[ "$frames" -eq 100 ] || { echo "expected 100 frames, got $frames" >&2; exit 1; }
curl -sSf "$base/metrics" | grep -q '^vbrsim_frames_streamed_total 100$'

# Trunk-session smoke: a 4-source superposition served through the same
# frames path, visible in the trunk gauges.
tid=$(curl -sSf -X POST "$base/v1/trunks" \
    -d '{"name":"trunk-smoke","seed":9,"components":[{"count":4,"spec":{"acf":{"weights":[1],"rates":[0.005869930388252342],"l":1.59468,"beta":0.2,"knee":60},"marginal":{"kind":"lognormal","mu":9.6,"sigma":0.4},"h":0.9}}]}' \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$tid" ] || { echo "trunk creation failed" >&2; exit 1; }
tframes=$(curl -sSf "$base/v1/streams/$tid/frames?n=50" | wc -l)
[ "$tframes" -eq 50 ] || { echo "expected 50 trunk frames, got $tframes" >&2; exit 1; }
curl -sSf "$base/metrics" | grep -q '^vbrsim_trunk_sessions_active 1$'
curl -sSf "$base/metrics" | grep -q '^vbrsim_trunk_sources_active 4$'

# Metrics scrape gate: every metric name documented in DESIGN.md §9 must be
# served with a TYPE header. Keep this list in sync with DESIGN.md and
# internal/server/metrics_expfmt_test.go (documentedMetrics).
curl -sSf "$base/metrics" >"$tmpdir/metrics"
for name in \
    vbrsim_sessions_active vbrsim_sessions_total vbrsim_streams_rejected_total \
    vbrsim_frames_streamed_total vbrsim_stream_request_frames \
    vbrsim_job_duration_seconds vbrsim_jobs_failed_total vbrsim_jobs_rejected_total \
    vbrsim_estimator_completed vbrsim_estimator_p vbrsim_estimator_std_err \
    vbrsim_estimator_norm_var vbrsim_estimator_variance_ratio vbrsim_estimator_reps_per_sec \
    vbrsim_par_runs_total vbrsim_par_tasks_total vbrsim_par_busy_seconds_total \
    vbrsim_par_peak_in_flight vbrsim_par_utilization \
    vbrsim_plan_cache_hits_total vbrsim_plan_cache_misses_total \
    vbrsim_plan_cache_evictions_total vbrsim_plan_cache_singleflight_waits_total \
    vbrsim_streamblock_refills_total vbrsim_streamblock_arena_bytes \
    vbrsim_streamblock_block_ns \
    vbrsim_trunk_sessions_active vbrsim_trunk_sources_active vbrsim_trunk_fanout_ns \
    vbrsim_server_shard_sessions vbrsim_server_admission_rejects_total \
    vbrsim_server_evictions_total vbrsim_server_admission_cost_used \
    vbrsim_server_sweep_seconds vbrsim_server_swept_sessions_total \
    vbrsim_http_requests_total vbrsim_http_errors_total \
    vbrsim_http_request_seconds vbrsim_http_in_flight \
    vbrsim_server_shard_requests_total vbrsim_server_frame_emit_seconds \
    vbrsim_statmon_frames_sampled_total vbrsim_statmon_hurst \
    vbrsim_statmon_acf_err vbrsim_statmon_drift \
    vbrsim_statmon_sessions_monitored vbrsim_statmon_sessions_drifting
do
    grep -q "^# TYPE $name " "$tmpdir/metrics" \
        || { echo "documented metric $name missing from /metrics" >&2; exit 1; }
done
echo "metrics scrape gate OK"

# Statmon drift smoke: two FGN streams serve identical H=0.75 traffic, but
# one claims h=0.9 in its spec. After 2^17 frames each (stepped in one
# batched request), the lying stream's online Hurst estimate sits ~0.15 off
# its own claim — past the tolerance — while the honest stream conforms.
cid=$(curl -sSf -X POST "$base/v1/streams" \
    -d '{"name":"conforming","seed":31,"engine":"block","acf":{"kind":"fgn","hurst":0.75},"marginal":{"kind":"lognormal","mu":9.6,"sigma":0.4},"h":0.75}' \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
bid=$(curl -sSf -X POST "$base/v1/streams" \
    -d '{"name":"wrong-h","seed":32,"engine":"block","acf":{"kind":"fgn","hurst":0.75},"marginal":{"kind":"lognormal","mu":9.6,"sigma":0.4},"h":0.9}' \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$cid" ] && [ -n "$bid" ] || { echo "drift-smoke stream creation failed" >&2; exit 1; }
curl -sSf -X POST "$base/v1/streams/step" \
    -d "{\"ids\":[\"$cid\",\"$bid\"],\"n\":131072}" >/dev/null
status=$(curl -sSf "$base/v1/status")
echo "$status" | grep -q "\"drifting_ids\":\[\"$bid\"\]" \
    || { echo "wrong-H stream not flagged as drifting: $status" >&2; exit 1; }
echo "$status" | grep -q '"drifting":1' \
    || { echo "expected exactly one drifting session: $status" >&2; exit 1; }
cstats=$(curl -sSf "$base/v1/sessions/$cid/stats")
echo "$cstats" | grep -q '"drifting":false' \
    || { echo "conforming stream reported drifting: $cstats" >&2; exit 1; }
# The fleet gauges are a 1s-cached rollup; wait out the TTL so the scrape
# reflects the post-step fleet.
sleep 1.1
curl -sSf "$base/metrics" >"$tmpdir/metrics_drift"
grep -q '^vbrsim_statmon_sessions_drifting 1$' "$tmpdir/metrics_drift" \
    || { echo "drifting-sessions gauge not 1" >&2; exit 1; }
drift=$(sed -n 's/^vbrsim_statmon_drift //p' "$tmpdir/metrics_drift")
awk -v d="$drift" 'BEGIN { exit !(d >= 1) }' \
    || { echo "drift gauge $drift below alert threshold 1" >&2; exit 1; }
echo "statmon drift smoke OK"

# Access-log gate: every request above must have produced one NDJSON line
# carrying a request id; every line must be a single JSON object.
[ -s "$tmpdir/access.ndjson" ] || { echo "access log is empty" >&2; exit 1; }
if grep -qv '^{.*}$' "$tmpdir/access.ndjson"; then
    echo "access log contains non-JSON lines:" >&2
    grep -v '^{.*}$' "$tmpdir/access.ndjson" >&2
    exit 1
fi
grep -q '"type":"access"' "$tmpdir/access.ndjson" \
    || { echo "access log has no access events" >&2; exit 1; }
grep -q '"req_id":"r' "$tmpdir/access.ndjson" \
    || { echo "access events carry no request ids" >&2; exit 1; }
grep -q '"endpoint":"step"' "$tmpdir/access.ndjson" \
    || { echo "access log missed the step request" >&2; exit 1; }
echo "access log OK"

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "trafficd exited nonzero after SIGTERM" >&2; exit 1; }
grep -q draining "$tmpdir/err"
echo "smoke test OK"

echo "== qsim -progress smoke"
# Telemetry smoke: a short estimation run must stream NDJSON convergence
# snapshots on stderr and write a run manifest carrying its stage spans.
go run ./cmd/tracegen -intra -frames 8192 -format bin -o "$tmpdir/smoke.bin"
go run ./cmd/qsim -i "$tmpdir/smoke.bin" -util 0.6 -buffer 30 -reps 200 \
    -progress -manifest "$tmpdir/run.json" >"$tmpdir/qsim.out" 2>"$tmpdir/qsim.err"
grep -q '"type":"convergence"' "$tmpdir/qsim.err" \
    || { echo "qsim -progress emitted no convergence snapshots" >&2; cat "$tmpdir/qsim.err" >&2; exit 1; }
grep -q '"reps_per_sec"' "$tmpdir/qsim.err" \
    || { echo "convergence snapshots missing reps_per_sec" >&2; exit 1; }
grep -q '"stages"' "$tmpdir/run.json" \
    || { echo "run manifest missing stage spans" >&2; cat "$tmpdir/run.json" >&2; exit 1; }
echo "progress smoke OK"

echo "CI OK"
