#!/bin/sh
# CI gate: build, vet, race-check (short mode), then the full test suite.
set -eu

cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test -race -short"
go test -race -short ./...

echo "== go test"
go test ./...

echo "CI OK"
