#!/bin/sh
# CI gate: formatting, build, vet, race-check (short mode), the full test
# suite, and a trafficd daemon smoke test.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test -race -short"
go test -race -short ./...

echo "== go test"
go test ./...

echo "== conformance -quick"
# Statistical acceptance gates: deterministic seeded checks that the
# backends still produce paper-conformant traffic (marginal, ACF, Hurst,
# cross-backend agreement, IS-vs-MC queue tails). Writes the
# machine-readable report alongside the bench artifacts. -workers 4 fans
# the replication loops out; the report is bit-identical at any setting
# (the race gate above covers the same worker pools via -race -short).
go run ./cmd/conformance -quick -workers 4 -out CONFORMANCE_1.json

echo "== fuzz smoke"
# Bounded runs of the native fuzz targets: spec decoding must never panic
# and quantile compaction must stay idempotent.
go test ./internal/modelspec -run '^$' -fuzz 'FuzzModelSpecDecode' -fuzztime=5s
go test ./internal/modelspec -run '^$' -fuzz 'FuzzQuantileRoundTrip' -fuzztime=5s

echo "== trafficd smoke test"
# Start the daemon on an ephemeral port, hit /healthz and a 100-frame
# stream, then shut it down with SIGTERM (exercising graceful drain).
tmpdir=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/trafficd" ./cmd/trafficd
"$tmpdir/trafficd" -addr 127.0.0.1:0 >"$tmpdir/out" 2>"$tmpdir/err" &
daemon_pid=$!
base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's#^trafficd listening on \(http://.*\)$#\1#p' "$tmpdir/out")
    [ -n "$base" ] && break
    sleep 0.1
done
[ -n "$base" ] || { echo "trafficd did not report its address" >&2; cat "$tmpdir/err" >&2; exit 1; }

curl -sSf "$base/healthz" | grep -q ok
sid=$(curl -sSf -X POST "$base/v1/streams" \
    -d '{"name":"smoke","seed":7,"acf":{"weights":[1],"rates":[0.005869930388252342],"l":1.59468,"beta":0.2,"knee":60},"marginal":{"kind":"lognormal","mu":9.6,"sigma":0.4},"h":0.9}' \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$sid" ] || { echo "stream creation failed" >&2; exit 1; }
frames=$(curl -sSf "$base/v1/streams/$sid/frames?n=100" | wc -l)
[ "$frames" -eq 100 ] || { echo "expected 100 frames, got $frames" >&2; exit 1; }
curl -sSf "$base/metrics" | grep -q '^vbrsim_frames_streamed_total 100$'

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "trafficd exited nonzero after SIGTERM" >&2; exit 1; }
grep -q draining "$tmpdir/err"
echo "smoke test OK"

echo "CI OK"
