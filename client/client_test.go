package client

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/server"
	"vbrsim/internal/trunk"
)

func newTestClient(t *testing.T) *Client {
	t.Helper()
	s := server.New(server.Options{})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return New(ts.URL)
}

// clientTrunkSpec mixes the block engine with the GOP and TES simulators.
func clientTrunkSpec(seed uint64) modelspec.TrunkSpec {
	paper := modelspec.Paper()
	return modelspec.TrunkSpec{
		Seed: seed,
		Components: []modelspec.TrunkComponent{
			{Count: 2, Spec: modelspec.Spec{ACF: paper.ACF, Engine: modelspec.EngineBlock}},
			{Spec: modelspec.Spec{Engine: modelspec.EngineGOP, GOP: &modelspec.GOPSpec{}}},
			{Weight: 0.5, Spec: modelspec.Spec{Engine: modelspec.EngineTES, TES: &modelspec.TESSpec{Alpha: 0.3}}},
		},
		Marginal: &modelspec.MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
	}
}

// TestClientTrunkRoundTrip drives the full trunk-session client surface —
// create, binary frame reads, batched step, seek replay, close — and pins
// every returned frame against offline trunk generation.
func TestClientTrunkRoundTrip(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	spec := clientTrunkSpec(2026)

	info, err := c.CreateTrunk(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "trunk" || info.Sources != 4 || info.Seed != 2026 {
		t.Fatalf("trunk info: %+v", info)
	}

	offline, err := trunk.Open(ctx, &spec, trunk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()
	want := make([]float64, 800)
	offline.Fill(want)

	// Binary frame read from position 0.
	got, err := c.Frames(ctx, info.ID, -1, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("frame %d: client %v, offline %v", i, got[i], want[i])
		}
	}

	// Batched step with frames included continues exactly where the read
	// stopped.
	results, err := c.Step(ctx, []string{info.ID}, 200, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Start != 300 || results[0].Pos != 500 {
		t.Fatalf("step results: %+v", results)
	}
	for i, v := range results[0].Frames {
		if math.Float64bits(v) != math.Float64bits(want[300+i]) {
			t.Fatalf("stepped frame %d: %v, want %v", 300+i, v, want[300+i])
		}
	}

	// Seek replay: an explicit from= lands bit-exactly on the offline path.
	replay, err := c.Frames(ctx, info.ID, 100, 150)
	if err != nil {
		t.Fatal(err)
	}
	for i := range replay {
		if math.Float64bits(replay[i]) != math.Float64bits(want[100+i]) {
			t.Fatalf("replayed frame %d: %v, want %v", 100+i, replay[i], want[100+i])
		}
	}

	// Session state reflects the replay position; close removes it.
	state, err := c.Stream(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if state.Pos != 250 || state.Kind != "trunk" {
		t.Fatalf("state after replay: %+v", state)
	}
	if err := c.CloseStream(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stream(ctx, info.ID); err == nil {
		t.Fatal("stream still readable after close")
	}
}

// TestClientStepPositionsOnly checks the frame-free step variant advances
// plain stream sessions without returning bodies.
func TestClientStepPositionsOnly(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	spec := modelspec.Paper()
	spec.Seed = 7
	spec.Engine = modelspec.EngineBlock
	info, err := c.CreateStream(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.Step(ctx, []string{info.ID}, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Pos != 1000 || results[0].Frames != nil {
		t.Fatalf("step results: %+v", results)
	}
}

// TestClientStatusAndSessionStats drives the observability surface end to
// end: a monitored stream stepped past statmon's minimum sample count must
// show up in both the per-session stats call and the fleet status rollup.
func TestClientStatusAndSessionStats(t *testing.T) {
	s := server.New(server.Options{StatmonSampleEvery: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	c := New(ts.URL)
	ctx := context.Background()

	// An FGN stream with a lognormal marginal: long-range dependent enough
	// to exercise the monitor, short-memory enough that 2^17 served frames
	// conform to the spec's own analytic reference.
	spec := modelspec.Spec{
		ACF:      modelspec.ACFSpec{Kind: modelspec.ACFFGN, H: 0.75},
		Marginal: &modelspec.MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
		H:        0.75,
		Seed:     11,
		Engine:   modelspec.EngineBlock,
	}
	info, err := c.CreateStream(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 17
	if _, err := c.Step(ctx, []string{info.ID}, n, false); err != nil {
		t.Fatal(err)
	}

	stats, err := c.SessionStats(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ID != info.ID || !stats.Monitored || stats.Stats == nil {
		t.Fatalf("session stats: %+v", stats)
	}
	if stats.Stats.Frames != n {
		t.Fatalf("frames observed = %d, want %d", stats.Stats.Frames, n)
	}
	if stats.Stats.Mean <= 0 || stats.Stats.Variance <= 0 {
		t.Fatalf("degenerate moments: %+v", stats.Stats)
	}
	if stats.Stats.Drifting {
		t.Fatalf("conforming stream reported drifting: %+v", stats.Stats)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.Draining {
		t.Fatalf("status: %+v", st)
	}
	if st.Statmon.Monitored != 1 || st.Statmon.Drifting != 0 {
		t.Fatalf("statmon rollup: %+v", st.Statmon)
	}

	if _, err := c.SessionStats(ctx, "s404"); err == nil {
		t.Fatal("stats for unknown session succeeded")
	}
}

// TestClientTrunkErrors exercises the trunk error paths end to end: the
// server's 400s surface as descriptive client errors.
func TestClientTrunkErrors(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()

	badEngine := clientTrunkSpec(1)
	badEngine.Components[0].Spec.Engine = "warp-drive"
	if _, err := c.CreateTrunk(ctx, &badEngine); err == nil ||
		!strings.Contains(err.Error(), "engine") {
		t.Fatalf("unknown backend error = %v", err)
	}

	zero := modelspec.TrunkSpec{}
	if _, err := c.CreateTrunk(ctx, &zero); err == nil ||
		!strings.Contains(err.Error(), "zero sources") {
		t.Fatalf("zero-sources error = %v", err)
	}

	if _, err := c.Step(ctx, []string{"s999"}, 10, false); err == nil {
		t.Fatal("step of unknown session succeeded")
	}
}
