// Package client is the Go client for trafficd (internal/server): stream
// creation and frame retrieval, job submission and polling. Frames travel
// in the length-prefixed binary record protocol (application/x-vbrsim-frames,
// float64 little-endian payloads), so values round-trip bit-identically —
// a client-side comparison against offline generation (modelspec.Frames
// with the same spec and seed) is an exact equality test — and a response
// cut off mid-stream is detected by the missing terminator record.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/server"
)

// Client talks to one trafficd instance.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; defaults to http.DefaultClient.
	HTTP *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes the server's {"error": ...} body into a Go error.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		return fmt.Errorf("trafficd: %s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Errorf("trafficd: HTTP %d", resp.StatusCode)
}

func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthz reports whether the daemon is live and accepting work.
func (c *Client) Healthz(ctx context.Context) error {
	return c.doJSON(ctx, "GET", "/healthz", nil, nil)
}

// CreateStream opens a session for the spec and returns its state,
// including the (possibly server-assigned) seed.
func (c *Client) CreateStream(ctx context.Context, spec *modelspec.Spec) (server.SessionInfo, error) {
	var info server.SessionInfo
	err := c.doJSON(ctx, "POST", "/v1/streams", spec, &info)
	return info, err
}

// CreateTrunk opens a superposition session: the trunk spec's weighted
// component streams multiplexed into one aggregate. The returned info
// carries the trunk seed (server-assigned when the spec leaves it 0) and
// the flattened source count; the session serves through the same Frames,
// Step and CloseStream calls as a plain stream.
func (c *Client) CreateTrunk(ctx context.Context, spec *modelspec.TrunkSpec) (server.SessionInfo, error) {
	var info server.SessionInfo
	err := c.doJSON(ctx, "POST", "/v1/trunks", spec, &info)
	return info, err
}

// Step advances many sessions by n frames in one batched request
// (POST /v1/streams/step). When includeFrames is set the generated frames
// come back per session, bounded by the server's per-step return limit;
// otherwise positions advance with an empty body — the cheap bulk-warm
// path for simulation drivers.
func (c *Client) Step(ctx context.Context, ids []string, n int, includeFrames bool) ([]server.StepResult, error) {
	var results []server.StepResult
	req := server.StepRequest{IDs: ids, N: n, IncludeFrames: includeFrames}
	err := c.doJSON(ctx, "POST", "/v1/streams/step", &req, &results)
	return results, err
}

// Stream returns the session's current state.
func (c *Client) Stream(ctx context.Context, id string) (server.SessionInfo, error) {
	var info server.SessionInfo
	err := c.doJSON(ctx, "GET", "/v1/streams/"+id, nil, &info)
	return info, err
}

// Streams lists open sessions.
func (c *Client) Streams(ctx context.Context) ([]server.SessionInfo, error) {
	var infos []server.SessionInfo
	err := c.doJSON(ctx, "GET", "/v1/streams", nil, &infos)
	return infos, err
}

// CloseStream deletes the session.
func (c *Client) CloseStream(ctx context.Context, id string) error {
	return c.doJSON(ctx, "DELETE", "/v1/streams/"+id, nil, nil)
}

// Frames reads n frames from the session over the length-prefixed binary
// record protocol (application/x-vbrsim-frames), so values round-trip
// bit-identically and a truncated body is detected by the missing
// terminator record rather than inferred from a length mismatch. from < 0
// continues from the session's current position; otherwise the session
// seeks to the given frame index first (deterministic replay).
func (c *Client) Frames(ctx context.Context, id string, from, n int) ([]float64, error) {
	url := fmt.Sprintf("%s/v1/streams/%s/frames?n=%d", c.BaseURL, id, n)
	if from >= 0 {
		url += "&from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", server.ContentTypeFrames)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	fr := server.NewFrameReader(resp.Body)
	out := make([]float64, n)
	got := 0
	for got < n {
		k, err := fr.Read(out[got:])
		got += k
		if err == io.EOF {
			break
		}
		if err != nil {
			return out[:got], err
		}
	}
	if got < n {
		return out[:got], fmt.Errorf("stream truncated at %d of %d frames", got, n)
	}
	// The server terminates the body with the protocol trailer after the
	// last requested frame; its absence means the response died in flight.
	var scratch [1]float64
	if _, err := fr.Read(scratch[:]); err != io.EOF {
		if err == nil {
			return out, fmt.Errorf("server sent more than %d requested frames", n)
		}
		return out, err
	}
	return out, nil
}

// SessionStats returns the session's live statistical self-monitoring
// summary (GET /v1/sessions/{id}/stats): online Hurst estimate, lag
// autocorrelations vs the model-implied reference, marginal quantiles, and
// the drift score. Stats is nil when the daemon runs with statmon disabled.
func (c *Client) SessionStats(ctx context.Context, id string) (server.SessionStats, error) {
	var stats server.SessionStats
	err := c.doJSON(ctx, "GET", "/v1/sessions/"+id+"/stats", nil, &stats)
	return stats, err
}

// Status returns the daemon-level status report (GET /v1/status): uptime,
// drain state, session counts, admission cost, and the statmon fleet
// rollup with the ids of any drifting sessions.
func (c *Client) Status(ctx context.Context) (server.StatusReport, error) {
	var st server.StatusReport
	err := c.doJSON(ctx, "GET", "/v1/status", nil, &st)
	return st, err
}

// SubmitJob enqueues a job and returns its initial (queued) state.
func (c *Client) SubmitJob(ctx context.Context, req server.JobRequest) (server.Job, error) {
	var job server.Job
	err := c.doJSON(ctx, "POST", "/v1/jobs", &req, &job)
	return job, err
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (server.Job, error) {
	var job server.Job
	err := c.doJSON(ctx, "GET", "/v1/jobs/"+id, nil, &job)
	return job, err
}

// WaitJob polls until the job finishes (done or failed) or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (server.Job, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return job, err
		}
		if job.Status == "done" || job.Status == "failed" {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-time.After(poll):
		}
	}
}
