GO ?= go

.PHONY: all build test race vet ci bench conformance clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race run: the heavy fixtures (20k-sample plans, sample-ACF
# property tests) are gated behind testing.Short so this stays fast.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

ci:
	./scripts/ci.sh

# Runs the ablation suite and writes machine-readable BENCH_2.json.
bench:
	$(GO) run ./cmd/bench

# Statistical acceptance suite (quick mode); writes CONFORMANCE_1.json.
# Use `go run ./cmd/conformance -full` for paper-scale sample sizes.
conformance:
	$(GO) run ./cmd/conformance -quick -out CONFORMANCE_1.json

clean:
	$(GO) clean ./...
