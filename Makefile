GO ?= go

.PHONY: all build test race vet ci bench conformance profile clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short-mode race run: the heavy fixtures (20k-sample plans, sample-ACF
# property tests) are gated behind testing.Short so this stays fast.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

ci:
	./scripts/ci.sh

# Runs the ablation suite and writes machine-readable BENCH_7.json.
bench:
	$(GO) run ./cmd/bench

# Statistical acceptance suite (quick mode); writes CONFORMANCE_1.json.
# Use `go run ./cmd/conformance -full` for paper-scale sample sizes.
conformance:
	$(GO) run ./cmd/conformance -quick -out CONFORMANCE_1.json

# CPU profile of a short estimation run; inspect with
# `go tool pprof PROFILE.pprof`.
profile:
	$(GO) run ./cmd/tracegen -intra -frames 8192 -format bin -o /tmp/vbrsim-profile.bin
	$(GO) run ./cmd/qsim -i /tmp/vbrsim-profile.bin -util 0.6 -buffer 30 \
		-reps 500 -cpuprofile PROFILE.pprof
	@echo "wrote PROFILE.pprof"

clean:
	$(GO) clean ./...
