package vbrsim

import (
	"math"
	"testing"
)

// TestRefitConsistency is the strongest self-consistency check the unified
// approach admits: fit a model to a trace, generate a long synthetic trace
// from the model, refit a second model to the synthetic trace, and compare.
// If the pipeline is internally coherent, the second model's Hurst
// parameter, marginal and ACF must reproduce the first's.
func TestRefitConsistency(t *testing.T) {
	tr, err := GenerateMPEGTrace(MPEGTraceConfig{Frames: 1 << 17, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Fit(tr.ByType(FrameI), FitOptions{Seed: 72})
	if err != nil {
		t.Fatal(err)
	}

	// Generate a synthetic record as long as the original I-frame record.
	n := len(tr.ByType(FrameI))
	syn, err := m1.Generate(n, 73, BackendDaviesHarte)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(syn, FitOptions{Seed: 74})
	if err != nil {
		t.Fatalf("refit failed: %v", err)
	}

	// Hurst consistency (estimator noise on these lengths is ~0.05-0.1).
	if math.Abs(m2.H-m1.H) > 0.15 {
		t.Errorf("refit H = %v vs original %v", m2.H, m1.H)
	}
	// Marginal consistency: KS distance between original and synthetic.
	d, err := KolmogorovSmirnov(tr.ByType(FrameI), syn)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.1 {
		t.Errorf("marginal KS distance = %v", d)
	}
	// Mean rates agree.
	if math.Abs(m2.MeanRate()-m1.MeanRate()) > 0.1*m1.MeanRate() {
		t.Errorf("mean rate %v vs %v", m2.MeanRate(), m1.MeanRate())
	}
	// Foreground ACF agreement at representative lags.
	for _, k := range []int{1, 10, 50, 200} {
		a1, a2 := m1.Foreground.At(k), m2.Foreground.At(k)
		if math.Abs(a1-a2) > 0.15 {
			t.Errorf("refit foreground acf[%d] = %v vs %v", k, a2, a1)
		}
	}
}

// TestQueueEstimatorsCrossValidate drives the same overflow question
// through all four estimation routes — plain MC, IS, trace-driven time
// average, and batch means — and requires them to agree within their
// uncertainties, on a deliberately common (non-rare) event.
func TestQueueEstimatorsCrossValidate(t *testing.T) {
	tr, err := GenerateMPEGTrace(MPEGTraceConfig{Frames: 1 << 17, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(tr.ByType(FrameI), FitOptions{Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	const util = 0.8
	service, err := ServiceForUtilization(m.MeanRate(), util)
	if err != nil {
		t.Fatal(err)
	}
	bufAbs := 15 * m.MeanRate()
	const horizon = 300
	plan, err := m.Plan(horizon)
	if err != nil {
		t.Fatal(err)
	}

	src := ArrivalSource{Plan: plan, Transform: m.Transform}
	mc, err := EstimateOverflowMC(src, service, bufAbs, horizon, MCOptions{Replications: 3000, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	is, err := EstimateOverflowIS(ISConfig{
		Plan: plan, Transform: m.Transform,
		Service: service, Buffer: bufAbs, Horizon: horizon,
		Twist: 0.5, Replications: 3000, Seed: 84,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.P < 0.02 {
		t.Fatalf("cross-validation event too rare: %v", mc.P)
	}
	if math.Abs(math.Log10(is.P)-math.Log10(mc.P)) > 0.3 {
		t.Errorf("IS %v vs MC %v", is.P, mc.P)
	}

	// Long synthetic trace through the time-average estimators. The
	// steady-state time average is not identical to the finite-horizon
	// transient probability, but at util 0.8 and k=300 they are close.
	synSizes, err := m.Generate(1<<17, 85, BackendDaviesHarte)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := TraceOverflowCI(synSizes, service, bufAbs, 2000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ci.P <= 0 {
		t.Fatal("trace-driven estimate found no overflow")
	}
	if math.Abs(math.Log10(ci.P)-math.Log10(mc.P)) > 0.7 {
		t.Errorf("trace-driven %v vs MC %v differ by > 0.7 decades", ci.P, mc.P)
	}
}

// TestSliceLevelQueueConsistency checks that cell-level queueing of a
// spread slice trace behaves sanely against frame-level queueing: with the
// same utilization, spreading over slices cannot increase loss at large
// buffers.
func TestSliceLevelQueueConsistency(t *testing.T) {
	tr, err := GenerateMPEGTrace(MPEGTraceConfig{Frames: 1 << 14, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := ToSlices(tr, SliceOptions{Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	frameCells, err := SegmentIntoCells(tr.Sizes, ATMCellPayload, 1)
	if err != nil {
		t.Fatal(err)
	}
	sliceCells, err := SegmentIntoCells(sl.Sizes, ATMCellPayload, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Per-slice ceil rounding creates more total cells than per-frame
	// rounding (up to slices-1 extra per frame), so utilization must be
	// computed from each stream's own mean — otherwise the slice-level
	// queue silently runs hotter.
	meanOf := func(x []float64) float64 {
		var s float64
		for _, c := range x {
			s += c
		}
		return s / float64(len(x))
	}
	frameMean := meanOf(frameCells)
	sliceMean := meanOf(sliceCells)
	util := 0.85
	bCells := 30 * frameMean // same absolute buffer in cells
	pFrame, err := TraceOverflowCI(frameCells, frameMean/util, bCells, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	pSlice, err := TraceOverflowCI(sliceCells, sliceMean/util, bCells, 500*15, 8)
	if err != nil {
		t.Fatal(err)
	}
	// At matched utilization and a buffer tens of frames deep, the two
	// granularities must tell the same story.
	if math.Abs(pSlice.P-pFrame.P) > 0.15 {
		t.Errorf("granularity changed the answer: slice %v vs frame %v", pSlice.P, pFrame.P)
	}
}
