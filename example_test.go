package vbrsim_test

import (
	"fmt"

	"vbrsim"
)

// ExampleFit runs the paper's four-step pipeline on a synthetic trace and
// reports the structural results.
func ExampleFit() {
	tr, err := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 17, Seed: 1})
	if err != nil {
		panic(err)
	}
	model, err := vbrsim.Fit(tr.ByType(vbrsim.FrameI), vbrsim.FitOptions{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("long-range dependent:", model.H > 0.5 && model.H < 1)
	fmt.Println("attenuation in (0,1]:", model.Attenuation > 0 && model.Attenuation <= 1)
	fmt.Println("composite continuous:", model.Foreground.ContinuityGap() < 1e-9)
	// Output:
	// long-range dependent: true
	// attenuation in (0,1]: true
	// composite continuous: true
}

// ExampleGenerateFGN shows exact fractional Gaussian noise generation.
func ExampleGenerateFGN() {
	x, err := vbrsim.GenerateFGN(0.9, 4096, 7)
	if err != nil {
		panic(err)
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	fmt.Println("length:", len(x))
	fmt.Println("mean near zero:", mean > -1.5 && mean < 1.5)
	// Output:
	// length: 4096
	// mean near zero: true
}

// ExampleModel_Generate synthesizes traffic matching a fitted model.
func ExampleModel_Generate() {
	tr, err := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 16, Seed: 3})
	if err != nil {
		panic(err)
	}
	model, err := vbrsim.Fit(tr.ByType(vbrsim.FrameI), vbrsim.FitOptions{Seed: 4})
	if err != nil {
		panic(err)
	}
	frames, err := model.Generate(5000, 42, vbrsim.BackendAuto)
	if err != nil {
		panic(err)
	}
	nonNegative := true
	for _, f := range frames {
		if f < 0 {
			nonNegative = false
		}
	}
	fmt.Println("frames:", len(frames))
	fmt.Println("all non-negative:", nonNegative)
	// Output:
	// frames: 5000
	// all non-negative: true
}

// ExampleEstimateOverflowIS estimates a buffer-overflow probability with
// importance sampling.
func ExampleEstimateOverflowIS() {
	tr, err := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 16, Seed: 5})
	if err != nil {
		panic(err)
	}
	model, err := vbrsim.Fit(tr.ByType(vbrsim.FrameI), vbrsim.FitOptions{Seed: 6})
	if err != nil {
		panic(err)
	}
	plan, err := model.Plan(200)
	if err != nil {
		panic(err)
	}
	service, err := vbrsim.ServiceForUtilization(model.MeanRate(), 0.5)
	if err != nil {
		panic(err)
	}
	res, err := vbrsim.EstimateOverflowIS(vbrsim.ISConfig{
		Plan:         plan,
		Transform:    model.Transform,
		Service:      service,
		Buffer:       20 * model.MeanRate(),
		Horizon:      200,
		Twist:        1.2,
		Replications: 500,
		Seed:         7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("estimate in (0,1):", res.P > 0 && res.P < 1)
	fmt.Println("variance reduced:", vbrsim.VarianceReduction(res) > 1)
	// Output:
	// estimate in (0,1): true
	// variance reduced: true
}

// ExampleMaxAdmissibleSources sizes a video multiplexer.
func ExampleMaxAdmissibleSources() {
	src := vbrsim.NorrosParams{MeanRate: 3000, VarCoeff: 5e6, H: 0.85}
	link := vbrsim.AdmissionLink{Capacity: 100000, Buffer: 300000, LossTarget: 1e-6}
	lrd, err := vbrsim.MaxAdmissibleSources(src, link)
	if err != nil {
		panic(err)
	}
	markov, err := vbrsim.MarkovianMaxSources(src, link)
	if err != nil {
		panic(err)
	}
	fmt.Println("LRD admits fewer than Markovian:", lrd < markov)
	fmt.Println("link not overbooked:", float64(lrd)*src.MeanRate < link.Capacity)
	// Output:
	// LRD admits fewer than Markovian: true
	// link not overbooked: true
}
