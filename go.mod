module vbrsim

go 1.22
