// Command conformance runs the statistical acceptance suite: deterministic,
// seeded checks that the generator backends still produce paper-conformant
// traffic (marginal fit, ACF in both regimes, Hurst recovery, cross-backend
// agreement, IS-vs-MC queue tails). It prints a human-readable summary,
// optionally writes the machine-readable JSON report, and exits nonzero on
// any failed check — CI gates on it via scripts/ci.sh.
//
// Usage:
//
//	conformance [-quick|-full] [-seed N] [-workers N] [-only substring] [-out report.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"vbrsim/internal/conformance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("conformance", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "CI-sized sample sizes (the default)")
	full := fs.Bool("full", false, "paper-scale sample sizes")
	seed := fs.Uint64("seed", conformance.DefaultSeed, "suite seed (every check derives sub-seeds from it)")
	workers := fs.Int("workers", 0, "worker goroutines per replication loop (0 = GOMAXPROCS; results are identical for every setting)")
	only := fs.String("only", "", "run only checks whose name or family contains this substring")
	out := fs.String("out", "", "write the JSON report to this file")
	progress := fs.Bool("progress", false, "stream per-check progress to stderr as NDJSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *quick && *full {
		fmt.Fprintln(stderr, "conformance: -quick and -full are mutually exclusive")
		return 2
	}
	cfg := conformance.Config{Full: *full, Seed: *seed, Workers: *workers}

	checks := conformance.Suite()
	if *only != "" {
		var kept []conformance.Check
		for _, c := range checks {
			if strings.Contains(c.Name(), *only) || strings.Contains(c.Family(), *only) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(stderr, "conformance: no check matches %q\n", *only)
			return 2
		}
		checks = kept
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var hooks conformance.Hooks
	if *progress {
		hooks = progressHooks(stderr)
	}

	fmt.Fprintf(stdout, "conformance suite: %d checks, %s mode, seed %d\n", len(checks), cfg.Mode(), cfg.Seed)
	report := conformance.RunSuiteHooks(ctx, checks, cfg, hooks)
	for _, r := range report.Results {
		status := "PASS"
		if !r.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(stdout, "%s  %-28s [%s]  %5.1fs\n", status, r.Name, r.Family, r.Duration)
		for _, m := range r.Metrics {
			mark := "ok"
			if !m.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(stdout, "      %-40s %12.5g %s %-12.5g %s\n", m.Name, m.Value, m.Op, m.Bound, mark)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(stdout, "      # %s\n", n)
		}
		if r.Err != "" {
			fmt.Fprintf(stdout, "      ! %s\n", r.Err)
		}
	}
	fmt.Fprintf(stdout, "%d checks, %d failed, %.1fs total\n", report.Checks, report.Failed, report.Duration)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "conformance: %v\n", err)
			return 1
		}
		werr := report.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "conformance: writing report: %v\n", werr)
			return 1
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	if !report.Passed {
		return 1
	}
	return 0
}

// progressHooks streams per-check lifecycle events to w as NDJSON, one
// object per line, so a harness can watch a long suite converge live.
func progressHooks(w io.Writer) conformance.Hooks {
	var mu sync.Mutex
	emit := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		w.Write(append(b, '\n'))
	}
	return conformance.Hooks{
		CheckStart: func(index, total int, name string) {
			emit(map[string]any{
				"type": "check_start", "index": index, "total": total, "name": name,
			})
		},
		CheckDone: func(index, total int, res conformance.Result) {
			emit(map[string]any{
				"type": "check_done", "index": index, "total": total,
				"name": res.Name, "family": res.Family, "passed": res.Passed,
				"duration_sec": res.Duration, "metrics": len(res.Metrics),
			})
		},
	}
}
