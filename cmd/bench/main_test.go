package main

import (
	"regexp"
	"strings"
	"testing"

	"vbrsim/internal/benchsuite"
)

// Compare/report behaviour is tested in internal/benchreport; here only the
// tool's own plumbing (suite filtering, flag validation) is covered.

func TestFilterSuite(t *testing.T) {
	all := benchsuite.Suite()
	got := filterSuite(all, regexp.MustCompile(`^StreamBlockFill/`))
	if len(got) != 3 {
		t.Fatalf("StreamBlockFill subset has %d entries, want 3", len(got))
	}
	for _, bm := range got {
		if !strings.HasPrefix(bm.Name, "StreamBlockFill/") {
			t.Fatalf("unexpected entry %q", bm.Name)
		}
	}
	if n := len(filterSuite(all, nil)); n != len(all) {
		t.Fatalf("nil regexp filtered %d -> %d", len(all), n)
	}
}

func TestRunRejectsEmptySubset(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-only", "NoSuchBenchmarkAnywhere"}, &out, &errb)
	if err == nil {
		t.Fatal("empty -only subset did not error")
	}
}
