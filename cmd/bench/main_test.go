package main

import (
	"regexp"
	"strings"
	"testing"

	"vbrsim/internal/benchsuite"
)

func mkReport(ns map[string]float64) report {
	rep := report{Benchmarks: make(map[string]entry)}
	for name, v := range ns {
		rep.Benchmarks[name] = entry{NsPerOp: v}
	}
	return rep
}

func TestCompareReportsPassesWithinThreshold(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100, "B": 200})
	fresh := mkReport(map[string]float64{"A": 120, "B": 150})
	deltas, failed := compareReports(old, fresh, 0.25)
	if failed {
		t.Fatal("20% regression failed a 25% threshold")
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	// Deltas are sorted by name.
	if deltas[0].Name != "A" || deltas[1].Name != "B" {
		t.Fatalf("deltas out of order: %v", deltas)
	}
	if got := deltas[0].Frac; got < 0.19 || got > 0.21 {
		t.Fatalf("A frac = %v, want ~0.20", got)
	}
}

func TestCompareReportsFailsBeyondThreshold(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100})
	fresh := mkReport(map[string]float64{"A": 140})
	if _, failed := compareReports(old, fresh, 0.25); !failed {
		t.Fatal("40% regression passed a 25% threshold")
	}
}

func TestCompareReportsImprovementNeverFails(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100})
	fresh := mkReport(map[string]float64{"A": 10})
	if _, failed := compareReports(old, fresh, 0.25); failed {
		t.Fatal("a 10x improvement failed the gate")
	}
}

func TestCompareReportsNewBenchmarkIsNotARegression(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100})
	fresh := mkReport(map[string]float64{"A": 100, "NEW": 999})
	deltas, failed := compareReports(old, fresh, 0.25)
	if failed {
		t.Fatal("a benchmark missing from the old report failed the gate")
	}
	var found bool
	for _, d := range deltas {
		if d.Name == "NEW" {
			found = true
			if !d.Missing {
				t.Fatal("NEW not marked Missing")
			}
		}
	}
	if !found {
		t.Fatal("NEW missing from deltas")
	}
}

func TestFilterSuite(t *testing.T) {
	all := benchsuite.Suite()
	got := filterSuite(all, regexp.MustCompile(`^StreamBlockFill/`))
	if len(got) != 3 {
		t.Fatalf("StreamBlockFill subset has %d entries, want 3", len(got))
	}
	for _, bm := range got {
		if !strings.HasPrefix(bm.Name, "StreamBlockFill/") {
			t.Fatalf("unexpected entry %q", bm.Name)
		}
	}
	if n := len(filterSuite(all, nil)); n != len(all) {
		t.Fatalf("nil regexp filtered %d -> %d", len(all), n)
	}
}

func TestRunRejectsEmptySubset(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-only", "NoSuchBenchmarkAnywhere"}, &out, &errb)
	if err == nil {
		t.Fatal("empty -only subset did not error")
	}
}
