// Command bench runs the fast-path ablation benchmark suite outside of
// `go test` and writes the results as machine-readable JSON, so before/after
// performance numbers can be committed and diffed across PRs.
//
// Usage:
//
//	go run ./cmd/bench                 # writes BENCH_5.json
//	go run ./cmd/bench -o out.json -benchtime 2s
//	go run ./cmd/bench -only 'StreamBlockFill' -benchtime 300ms
//	go run ./cmd/bench -only 'DHPathRealInto|StreamBlockFill' \
//	    -compare BENCH_5.json -threshold 0.25
//
// With -compare the freshly measured subset is diffed against the old
// report per benchmark; any regression beyond -threshold (fractional
// ns/op increase) makes the command exit nonzero, which is the CI
// benchdiff gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"vbrsim/internal/benchsuite"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// entry is one benchmark's measurement in the JSON report.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	// GOMAXPROCS is recorded per benchmark: parallel entries (NewPlanParallel,
	// StreamStepMany) are meaningless without the core count they ran at, and
	// a report assembled across machines would otherwise lose the provenance.
	GOMAXPROCS int                `json:"gomaxprocs"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// report is the BENCH_5.json schema: environment header plus one entry per
// benchmark, keyed by name.
type report struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Date       string           `json:"date"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// delta is one benchmark's old-vs-new comparison.
type delta struct {
	Name     string
	Old, New float64 // ns/op
	// Frac is (new-old)/old; positive means slower.
	Frac float64
	// Missing marks a benchmark present in only one report (never a
	// regression by itself).
	Missing bool
}

// compareReports diffs new against old per benchmark and reports whether
// any shared benchmark regressed beyond threshold (fractional ns/op
// increase). Improvements and new/vanished benchmarks never fail.
func compareReports(old, fresh report, threshold float64) (deltas []delta, failed bool) {
	for name, n := range fresh.Benchmarks {
		o, ok := old.Benchmarks[name]
		if !ok {
			deltas = append(deltas, delta{Name: name, New: n.NsPerOp, Missing: true})
			continue
		}
		d := delta{Name: name, Old: o.NsPerOp, New: n.NsPerOp}
		if o.NsPerOp > 0 {
			d.Frac = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		if d.Frac > threshold {
			failed = true
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, failed
}

// filterSuite selects the benchmarks whose names match re (nil keeps all).
func filterSuite(benches []benchsuite.Bench, re *regexp.Regexp) []benchsuite.Bench {
	if re == nil {
		return benches
	}
	var out []benchsuite.Bench
	for _, bm := range benches {
		if re.MatchString(bm.Name) {
			out = append(out, bm)
		}
	}
	return out
}

func readReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// run executes the tool; split from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("o", "", "output JSON file (default BENCH_5.json; suppressed under -compare)")
		benchtime = fs.Duration("benchtime", time.Second, "target time per benchmark")
		only      = fs.String("only", "", "regexp selecting a benchmark subset by name")
		compare   = fs.String("compare", "", "old report to diff against; regressions beyond -threshold fail")
		threshold = fs.Float64("threshold", 0.25, "fractional ns/op regression tolerated under -compare")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var re *regexp.Regexp
	if *only != "" {
		var err error
		if re, err = regexp.Compile(*only); err != nil {
			return fmt.Errorf("-only: %w", err)
		}
	}
	var old report
	if *compare != "" {
		var err error
		if old, err = readReport(*compare); err != nil {
			return err
		}
	}

	// testing.Benchmark honours the package-level -test.benchtime flag;
	// outside `go test` it must be registered (testing.Init) and set by hand.
	testing.Init()
	if err := flag.CommandLine.Parse([]string{"-test.benchtime", benchtime.String()}); err != nil {
		return err
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: make(map[string]entry),
	}
	benches := filterSuite(benchsuite.Suite(), re)
	if len(benches) == 0 {
		return fmt.Errorf("-only %q matches no benchmarks", *only)
	}
	for _, bm := range benches {
		fmt.Fprintf(stdout, "%-28s ", bm.Name)
		res := testing.Benchmark(bm.F)
		e := entry{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
		}
		if len(res.Extra) > 0 {
			e.Extra = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				e.Extra[k] = v
			}
		}
		rep.Benchmarks[bm.Name] = e
		fmt.Fprintf(stdout, "%12.0f ns/op %8d B/op %6d allocs/op\n", e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	if *compare != "" {
		deltas, failed := compareReports(old, rep, *threshold)
		for _, d := range deltas {
			if d.Missing {
				fmt.Fprintf(stdout, "%-28s %12.0f ns/op   (not in %s)\n", d.Name, d.New, *compare)
				continue
			}
			fmt.Fprintf(stdout, "%-28s %12.0f -> %10.0f ns/op  %+6.1f%%\n", d.Name, d.Old, d.New, 100*d.Frac)
		}
		if failed {
			return fmt.Errorf("benchmark regression beyond %.0f%% vs %s", 100**threshold, *compare)
		}
		fmt.Fprintf(stdout, "no regression beyond %.0f%% vs %s\n", 100**threshold, *compare)
	}

	if *out == "" {
		if *compare != "" {
			return nil // compare runs are gates, not report refreshes
		}
		*out = "BENCH_5.json"
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
