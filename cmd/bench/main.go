// Command bench runs the fast-path ablation benchmark suite outside of
// `go test` and writes the results as machine-readable JSON, so before/after
// performance numbers can be committed and diffed across PRs.
//
// Usage:
//
//	go run ./cmd/bench                 # writes BENCH_8.json
//	go run ./cmd/bench -o out.json -benchtime 2s
//	go run ./cmd/bench -only 'StreamBlockFill' -benchtime 300ms
//	go run ./cmd/bench -only 'DHPathRealInto|StreamBlockFill' \
//	    -compare BENCH_7.json -threshold 0.25
//
// With -compare the freshly measured subset is diffed against the old
// report per benchmark; any regression beyond -threshold (fractional
// ns/op increase) makes the command exit nonzero, which is the CI
// benchdiff gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"vbrsim/internal/benchreport"
	"vbrsim/internal/benchsuite"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// filterSuite selects the benchmarks whose names match re (nil keeps all).
func filterSuite(benches []benchsuite.Bench, re *regexp.Regexp) []benchsuite.Bench {
	if re == nil {
		return benches
	}
	var out []benchsuite.Bench
	for _, bm := range benches {
		if re.MatchString(bm.Name) {
			out = append(out, bm)
		}
	}
	return out
}

// run executes the tool; split from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("o", "", "output JSON file (default BENCH_8.json; suppressed under -compare)")
		benchtime = fs.Duration("benchtime", time.Second, "target time per benchmark")
		only      = fs.String("only", "", "regexp selecting a benchmark subset by name")
		compare   = fs.String("compare", "", "old report to diff against; regressions beyond -threshold fail")
		threshold = fs.Float64("threshold", 0.25, "fractional ns/op regression tolerated under -compare")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var re *regexp.Regexp
	if *only != "" {
		var err error
		if re, err = regexp.Compile(*only); err != nil {
			return fmt.Errorf("-only: %w", err)
		}
	}
	var old benchreport.Report
	if *compare != "" {
		var err error
		if old, err = benchreport.ReadFile(*compare); err != nil {
			return err
		}
	}

	// testing.Benchmark honours the package-level -test.benchtime flag;
	// outside `go test` it must be registered (testing.Init) and set by hand.
	testing.Init()
	if err := flag.CommandLine.Parse([]string{"-test.benchtime", benchtime.String()}); err != nil {
		return err
	}

	rep := benchreport.Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: make(map[string]benchreport.Entry),
	}
	benches := filterSuite(benchsuite.Suite(), re)
	if len(benches) == 0 {
		return fmt.Errorf("-only %q matches no benchmarks", *only)
	}
	for _, bm := range benches {
		fmt.Fprintf(stdout, "%-28s ", bm.Name)
		res := testing.Benchmark(bm.F)
		e := benchreport.Entry{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
		}
		if len(res.Extra) > 0 {
			e.Extra = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				e.Extra[k] = v
			}
		}
		rep.Benchmarks[bm.Name] = e
		fmt.Fprintf(stdout, "%12.0f ns/op %8d B/op %6d allocs/op\n", e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	if *compare != "" {
		deltas, failed := benchreport.Compare(old, rep, *threshold)
		for _, d := range deltas {
			if d.Missing {
				fmt.Fprintf(stdout, "%-28s %12.0f ns/op   (not in %s)\n", d.Name, d.New, *compare)
				continue
			}
			fmt.Fprintf(stdout, "%-28s %12.0f -> %10.0f ns/op  %+6.1f%%\n", d.Name, d.Old, d.New, 100*d.Frac)
		}
		if failed {
			return fmt.Errorf("benchmark regression beyond %.0f%% vs %s", 100**threshold, *compare)
		}
		fmt.Fprintf(stdout, "no regression beyond %.0f%% vs %s\n", 100**threshold, *compare)
	}

	if *out == "" {
		if *compare != "" {
			return nil // compare runs are gates, not report refreshes
		}
		*out = "BENCH_8.json"
	}
	if err := rep.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
