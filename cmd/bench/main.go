// Command bench runs the fast-path ablation benchmark suite outside of
// `go test` and writes the results as machine-readable JSON, so before/after
// performance numbers can be committed and diffed across PRs.
//
// Usage:
//
//	go run ./cmd/bench                 # writes BENCH_3.json
//	go run ./cmd/bench -o out.json -benchtime 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"vbrsim/internal/benchsuite"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// entry is one benchmark's measurement in the JSON report.
type entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	N           int                `json:"n"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// report is the BENCH_3.json schema: environment header plus one entry per
// benchmark, keyed by name.
type report struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Date       string           `json:"date"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// run executes the tool; split from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("o", "BENCH_3.json", "output JSON file")
		benchtime = fs.Duration("benchtime", time.Second, "target time per benchmark")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// testing.Benchmark honours the package-level -test.benchtime flag;
	// outside `go test` it must be registered (testing.Init) and set by hand.
	testing.Init()
	if err := flag.CommandLine.Parse([]string{"-test.benchtime", benchtime.String()}); err != nil {
		return err
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: make(map[string]entry),
	}
	for _, bm := range benchsuite.Suite() {
		fmt.Fprintf(stdout, "%-28s ", bm.Name)
		res := testing.Benchmark(bm.F)
		e := entry{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		}
		if len(res.Extra) > 0 {
			e.Extra = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				e.Extra[k] = v
			}
		}
		rep.Benchmarks[bm.Name] = e
		fmt.Fprintf(stdout, "%12.0f ns/op %8d B/op %6d allocs/op\n", e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
