package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vbrsim/internal/mpegtrace"
)

// writeTestTrace writes a synthetic trace CSV and returns its path.
func writeTestTrace(t *testing.T, frames int) string {
	t.Helper()
	tr, err := mpegtrace.Generate(mpegtrace.Config{Frames: frames, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummary(t *testing.T) {
	path := writeTestTrace(t, 1<<15)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"frames analyzed: 32768", "variance-time", "R/S analysis", "combined H", "acf[1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFrameTypeFilter(t *testing.T) {
	path := writeTestTrace(t, 1<<15)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path, "-type", "I"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "frames analyzed: 2731") {
		t.Errorf("I-frame count wrong:\n%s", stdout.String())
	}
	if err := run([]string{"-i", path, "-type", "X"}, &stdout, &stderr); err == nil {
		t.Error("bad frame type accepted")
	}
}

func TestRunWhittleFlag(t *testing.T) {
	path := writeTestTrace(t, 1<<15)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path, "-whittle"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "local Whittle: H =") {
		t.Errorf("Whittle estimate missing:\n%s", stdout.String())
	}
}

func TestRunDatFiles(t *testing.T) {
	path := writeTestTrace(t, 1<<15)
	prefix := filepath.Join(t.TempDir(), "out")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path, "-out-prefix", prefix}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"-hist.dat", "-vt.dat", "-rs.dat", "-acf.dat"} {
		data, err := os.ReadFile(prefix + suffix)
		if err != nil {
			t.Errorf("%s: %v", suffix, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", suffix)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("missing input accepted")
	}
	if err := run([]string{"-i", "/nonexistent/file.csv"}, &stdout, &stderr); err == nil {
		t.Error("nonexistent input accepted")
	}
}
