// Command analyze computes the statistics of a VBR video trace that the
// paper's Figs. 1 and 3-5 report: the bytes-per-frame histogram, the
// variance-time plot, the R/S pox diagram (with Hurst estimates), and the
// autocorrelation function.
//
// Usage:
//
//	analyze -i trace.csv -acf-lags 500 -out-prefix analysis
//	analyze -i trace.bin -type I          # analyze only the I-frame process
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vbrsim/internal/hurst"
	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

// run executes the tool; split from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("i", "", "input trace (csv or bin, by extension)")
		frameType = fs.String("type", "", "restrict to one frame type: I, P or B")
		acfLags   = fs.Int("acf-lags", 500, "autocorrelation lags to report")
		bins      = fs.Int("bins", 100, "histogram bins")
		whittle   = fs.Bool("whittle", false, "also report the local Whittle Hurst estimate")
		prefix    = fs.String("out-prefix", "", "write <prefix>-{hist,vt,rs,acf}.dat files; empty prints summary only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -i input trace")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	sizes := tr.Sizes
	if *frameType != "" {
		ft, err := trace.ParseFrameType(*frameType)
		if err != nil {
			return err
		}
		sizes = tr.ByType(ft)
		if sizes == nil {
			return fmt.Errorf("trace carries no frame-type information")
		}
	}

	mean, _ := stats.MeanVar(sizes)
	fmt.Fprintf(stdout, "frames analyzed: %d\n", len(sizes))
	fmt.Fprintf(stdout, "mean %.1f bytes, std %.1f, skewness %.2f\n", mean, stats.StdDev(sizes), stats.Skewness(sizes))

	vt, errVT := hurst.VarianceTime(sizes, hurst.VarianceTimeOptions{})
	if errVT == nil {
		fmt.Fprintf(stdout, "variance-time: slope %.4f  H = %.3f  (R2 %.3f)\n", vt.Slope, vt.H, vt.R2)
	} else {
		fmt.Fprintf(stdout, "variance-time: %v\n", errVT)
	}
	rs, errRS := hurst.RS(sizes, hurst.RSOptions{})
	if errRS == nil {
		fmt.Fprintf(stdout, "R/S analysis:  slope %.4f  H = %.3f  (R2 %.3f)\n", rs.Slope, rs.H, rs.R2)
	} else {
		fmt.Fprintf(stdout, "R/S analysis: %v\n", errRS)
	}
	if errVT == nil && errRS == nil {
		fmt.Fprintf(stdout, "combined H = %.3f (paper's trace: 0.89/0.92 -> 0.9)\n", (vt.H+rs.H)/2)
	}
	if *whittle {
		if lw, err := hurst.LocalWhittle(sizes, hurst.LocalWhittleOptions{}); err == nil {
			fmt.Fprintf(stdout, "local Whittle: H = %.3f\n", lw.H)
		} else {
			fmt.Fprintf(stdout, "local Whittle: %v\n", err)
		}
	}

	acf := stats.Autocorrelation(sizes, *acfLags)
	fmt.Fprintf(stdout, "acf[1] = %.3f, acf[100] = %.3f, acf[%d] = %.3f\n",
		acf[1], at(acf, 100), *acfLags, at(acf, *acfLags))

	if *prefix == "" {
		return nil
	}
	hi := stats.Max(sizes) * 1.001
	h := stats.NewHistogram(sizes, 0, hi, *bins)
	if err := writeDat(*prefix+"-hist.dat", stderr, func(f io.Writer) {
		freqs := h.Frequencies()
		for i := range freqs {
			fmt.Fprintf(f, "%g\t%g\n", h.BinCenter(i), freqs[i])
		}
	}); err != nil {
		return err
	}
	if errVT == nil {
		if err := writeDat(*prefix+"-vt.dat", stderr, func(f io.Writer) {
			for i := range vt.X {
				fmt.Fprintf(f, "%g\t%g\t%g\n", vt.X[i], vt.Y[i], vt.Slope*vt.X[i]+vt.Intercept)
			}
		}); err != nil {
			return err
		}
	}
	if errRS == nil {
		if err := writeDat(*prefix+"-rs.dat", stderr, func(f io.Writer) {
			for i := range rs.X {
				fmt.Fprintf(f, "%g\t%g\t%g\n", rs.X[i], rs.Y[i], rs.Slope*rs.X[i]+rs.Intercept)
			}
		}); err != nil {
			return err
		}
	}
	return writeDat(*prefix+"-acf.dat", stderr, func(f io.Writer) {
		for k := 1; k < len(acf); k++ {
			fmt.Fprintf(f, "%d\t%g\n", k, acf[k])
		}
	})
}

func at(a []float64, k int) float64 {
	if k < len(a) {
		return a[k]
	}
	return 0
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return trace.ReadBinary(f)
	}
	return trace.ReadCSV(f)
}

func writeDat(path string, stderr io.Writer, fill func(io.Writer)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fill(f)
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}
