// Command experiments regenerates every table and figure of the paper's
// evaluation (Table 1, Figs. 1-17), printing the key findings and writing
// one gnuplot-ready .dat file per exhibit.
//
// Usage:
//
//	experiments -out data/                  # full suite at default scale
//	experiments -quick -out data/           # reduced sweeps
//	experiments -only fig16,fig17 -out data # a subset
//	experiments -frames 238626              # the paper's full trace length
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vbrsim/internal/experiments"
	"vbrsim/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the tool; split from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "experiment-data", "output directory for .dat files")
		quick    = fs.Bool("quick", false, "reduced sweeps (for smoke testing)")
		frames   = fs.Int("frames", 0, "synthetic empirical trace length (0 = default; paper: 238626)")
		seed     = fs.Uint64("seed", 1995, "master seed")
		reps     = fs.Int("reps", 0, "Monte-Carlo/IS replications (0 = default 1000)")
		only     = fs.String("only", "", "comma-separated exhibit ids (default: all)")
		fast     = fs.Bool("fast", false, "use the truncated-AR Hosking fast path (O(p) per step, unbounded horizon); same as synth -backend hosking-fast")
		fastTol  = fs.Float64("fast-tol", 0, "fast-path partial-correlation cutoff (0 = default 1e-3)")
		progress = fs.Bool("progress", false, "stream per-exhibit spans to stderr as NDJSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// With -progress each exhibit becomes a streamed span (wall time,
	// allocations) so long suites can be watched converge exhibit by
	// exhibit; without it the tracer is nil and the spans are no-ops.
	var tracer *obs.Tracer
	if *progress {
		tracer = obs.NewTracer(stderr)
	}

	lab := experiments.NewLab(experiments.Config{
		TraceFrames:  *frames,
		Seed:         *seed,
		Replications: *reps,
		Quick:        *quick,
		FastPath:     *fast,
		FastTol:      *fastTol,
	})

	ids := lab.IDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		span := tracer.Start("exhibit." + id)
		res, err := lab.Run(id)
		if err != nil {
			span.End(map[string]any{"error": err.Error()})
			return fmt.Errorf("%s: %w", id, err)
		}
		span.End(map[string]any{"title": res.Title})
		fmt.Fprintf(stdout, "=== %s: %s (%.1fs)\n", res.ID, res.Title, time.Since(start).Seconds())
		for _, n := range res.Notes {
			fmt.Fprintf(stdout, "    %s\n", n)
		}
		path := filepath.Join(*out, res.ID+".dat")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := res.WriteData(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "    data -> %s\n", path)
	}
	return nil
}
