package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubsetQuick(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{"-quick", "-out", dir, "-only", "table1,fig3,fig6", "-seed", "99"},
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"=== table1:", "=== fig3:", "=== fig6:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, id := range []string{"table1", "fig3", "fig6"} {
		data, err := os.ReadFile(filepath.Join(dir, id+".dat"))
		if err != nil {
			t.Errorf("%s.dat: %v", id, err)
			continue
		}
		if !strings.Contains(string(data), "# "+id) {
			t.Errorf("%s.dat lacks header", id)
		}
	}
}

func TestRunUnknownExhibit(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-quick", "-out", dir, "-only", "fig99"}, &stdout, &stderr); err == nil {
		t.Error("unknown exhibit accepted")
	}
}

func TestRunBadOutputDir(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// A file path where a directory is required.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-out", f, "-only", "table1"}, &stdout, &stderr); err == nil {
		t.Error("file-as-directory accepted")
	}
}
