// Command loadgen exercises a running trafficd with concurrent streams: it
// opens -streams sessions of the paper model, optionally advances the whole
// fleet through the batched POST /v1/streams/step endpoint, pulls -frames
// frames from each in parallel, verifies every stream against offline
// generation with the same seed (the determinism contract), and reports
// throughput. With -trunk it additionally smoke-tests a trunk session: a
// superposition of that many paper sources created, stepped, read, and
// verified bit-identical against the offline trunk engine.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -streams 32 -frames 2000
//	loadgen -addr ... -streams 64 -step 4096        # batched-stepping driver
//	loadgen -addr ... -trunk 16                     # trunk-session smoke
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"vbrsim/client"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/server"
	"vbrsim/internal/trunk"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// run executes the load test; split from main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "", "trafficd base URL (required), e.g. http://127.0.0.1:8080")
		streams = fs.Int("streams", 32, "concurrent streaming sessions to open")
		frames  = fs.Int("frames", 2000, "frames to pull per stream")
		step    = fs.Int("step", 0, "advance the whole fleet by this many frames via POST /v1/streams/step before reading")
		seed    = fs.Uint64("seed", 1000, "seed of the first stream (stream i uses seed+i)")
		sources = fs.Int("trunk", 0, "also smoke-test one trunk session of this many paper sources")
		verify  = fs.Bool("verify", true, "check every stream against offline generation with the same seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("missing -addr base URL")
	}
	c := client.New(*addr)
	if err := c.Healthz(ctx); err != nil {
		return err
	}

	start := time.Now()

	// Open the whole fleet first: the batched step needs every session id.
	infos := make([]server.SessionInfo, *streams)
	errs := make([]error, *streams)
	var wg sync.WaitGroup
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := paperSpecFor(*seed + uint64(i))
			infos[i], errs[i] = c.CreateStream(ctx, &spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("create stream %d: %w", i, err)
		}
	}

	// One batched step advances every session in a single request — the
	// simulation-driver shape the step endpoint exists for.
	if *step > 0 {
		ids := make([]string, len(infos))
		for i, info := range infos {
			ids[i] = info.ID
		}
		results, err := c.Step(ctx, ids, *step, false)
		if err != nil {
			return fmt.Errorf("batched step: %w", err)
		}
		for i, res := range results {
			if res.Pos != *step {
				return fmt.Errorf("session %s stepped to %d, want %d", ids[i], res.Pos, *step)
			}
		}
	}

	// Pull and verify in parallel; served frames must continue exactly
	// where the step left the session.
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runStream(ctx, c, infos[i], *seed+uint64(i), *step, *frames, *verify)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(stderr, "stream %d: %v\n", i, err)
		}
	}
	total := float64((*streams - failed) * *frames)
	fmt.Fprintf(stdout, "%d/%d streams ok, %d frames each in %v (%.0f frames/s aggregate)\n",
		*streams-failed, *streams, *frames, elapsed.Round(time.Millisecond), total/elapsed.Seconds())
	if failed > 0 {
		return fmt.Errorf("%d of %d streams failed", failed, *streams)
	}

	if *sources > 0 {
		if err := runTrunkSmoke(ctx, c, *sources, *seed, *frames, *verify); err != nil {
			return fmt.Errorf("trunk smoke: %w", err)
		}
		fmt.Fprintf(stdout, "trunk smoke ok: %d sources, %d frames verified\n", *sources, *frames)
	}
	return nil
}

func paperSpecFor(seed uint64) modelspec.Spec {
	spec := modelspec.Paper()
	spec.Seed = seed
	return spec
}

// runStream pulls all frames of one already-open session in two requests
// (testing session-position continuity), optionally verifies against
// offline generation at the stepped offset, and closes the session.
func runStream(ctx context.Context, c *client.Client, info server.SessionInfo, seed uint64, offset, frames int, verify bool) error {
	defer c.CloseStream(ctx, info.ID)

	half := frames / 2
	got, err := c.Frames(ctx, info.ID, -1, half)
	if err != nil {
		return err
	}
	rest, err := c.Frames(ctx, info.ID, -1, frames-half)
	if err != nil {
		return err
	}
	got = append(got, rest...)
	if len(got) != frames {
		return fmt.Errorf("got %d frames, want %d", len(got), frames)
	}
	if !verify {
		return nil
	}
	spec := paperSpecFor(seed)
	want, err := spec.Frames(ctx, 0, offset+frames, 0)
	if err != nil {
		return err
	}
	for i := range got {
		if got[i] != want[offset+i] {
			return fmt.Errorf("frame %d: server %v, offline %v", offset+i, got[i], want[offset+i])
		}
	}
	return nil
}

// runTrunkSmoke creates one trunk session of n homogeneous paper sources,
// reads, batch-steps, and seeks it, verifying every returned frame against
// the offline trunk engine — the full trunk-session surface in one pass.
func runTrunkSmoke(ctx context.Context, c *client.Client, n int, seed uint64, frames int, verify bool) error {
	paper := modelspec.Paper()
	spec := modelspec.TrunkSpec{
		Seed: seed + 1<<32,
		Components: []modelspec.TrunkComponent{
			{Count: n, Spec: modelspec.Spec{ACF: paper.ACF, Marginal: paper.Marginal}},
		},
	}
	info, err := c.CreateTrunk(ctx, &spec)
	if err != nil {
		return err
	}
	defer c.CloseStream(ctx, info.ID)
	if info.Kind != "trunk" || info.Sources != n {
		return fmt.Errorf("trunk session info: kind=%q sources=%d, want trunk/%d", info.Kind, info.Sources, n)
	}

	half := frames / 2
	got, err := c.Frames(ctx, info.ID, -1, half)
	if err != nil {
		return err
	}
	// Step the trunk session through the batched endpoint with frames
	// included; it serves the second half.
	results, err := c.Step(ctx, []string{info.ID}, frames-half, true)
	if err != nil {
		return err
	}
	if len(results) != 1 || len(results[0].Frames) != frames-half {
		return fmt.Errorf("trunk step results: %+v", results)
	}
	got = append(got, results[0].Frames...)
	if !verify {
		return nil
	}

	tr, err := trunk.Open(ctx, &spec, trunk.Options{})
	if err != nil {
		return err
	}
	defer tr.Close()
	want := make([]float64, frames)
	tr.Fill(want)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("trunk frame %d: server %v, offline %v", i, got[i], want[i])
		}
	}

	// Seek replay through from=: the session must land back on the offline
	// trace mid-stream.
	probe, err := c.Frames(ctx, info.ID, frames/4, 64)
	if err != nil {
		return err
	}
	for i := range probe {
		if math.Float64bits(probe[i]) != math.Float64bits(want[frames/4+i]) {
			return fmt.Errorf("trunk replay frame %d: %v, want %v", frames/4+i, probe[i], want[frames/4+i])
		}
	}
	return nil
}
