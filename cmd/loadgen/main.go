// Command loadgen exercises trafficd with concurrent streams, in two modes.
//
// Remote mode (-addr) drives a running daemon over HTTP: it opens -streams
// sessions of the paper model, optionally advances the whole fleet through
// the batched POST /v1/streams/step endpoint, pulls -frames frames from each
// in parallel, verifies every stream against offline generation with the
// same seed (the determinism contract), and reports throughput. With -trunk
// it additionally smoke-tests a trunk session: a superposition of that many
// paper sources created, stepped, read, and verified bit-identical against
// the offline trunk engine.
//
// Capacity mode (-selfserve) is the serving-capacity harness: it embeds the
// server in-process (no TCP, requests dispatched straight into ServeHTTP),
// ramps a fleet of cheap TES sessions up to -sessions over -ramp, then
// hammers frame reads from -workers goroutines for -duration, recording
// per-request latency. Results (mean ns/request, p50/p99 latency,
// frames/sec/core) are written as benchreport entries, so BENCH_6.json is
// diffed by the same benchdiff gate as the cmd/bench ablation suite.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -streams 32 -frames 2000
//	loadgen -addr ... -streams 64 -step 4096        # batched-stepping driver
//	loadgen -addr ... -trunk 16                     # trunk-session smoke
//	loadgen -selfserve -profile full -o BENCH_6.json
//	loadgen -selfserve -profile smoke -compare BENCH_6.json -threshold 0.75
//	loadgen -selfserve -profile step -o BENCH_7.json   # batched-stepping rung
//	loadgen -selfserve -sessions 10000 -shards 4 -duration 5s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"vbrsim/client"
	"vbrsim/internal/benchreport"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/obs"
	"vbrsim/internal/server"
	"vbrsim/internal/trunk"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// run executes the load test; split from main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "", "trafficd base URL (remote mode), e.g. http://127.0.0.1:8080")
		streams = fs.Int("streams", 32, "remote mode: concurrent streaming sessions to open")
		frames  = fs.Int("frames", 2000, "remote mode: frames to pull per stream")
		step    = fs.Int("step", 0, "remote mode: advance the whole fleet by this many frames via POST /v1/streams/step before reading")
		seed    = fs.Uint64("seed", 1000, "seed of the first stream (stream i uses seed+i)")
		sources = fs.Int("trunk", 0, "remote mode: also smoke-test one trunk session of this many paper sources")
		verify  = fs.Bool("verify", true, "remote mode: check every stream against offline generation with the same seed")

		selfserve = fs.Bool("selfserve", false, "capacity mode: embed the server in-process and measure serving capacity")
		sessions  = fs.Int("sessions", 10000, "capacity mode: concurrent sessions to ramp to")
		shards    = fs.Int("shards", 16, "capacity mode: session-registry shard count")
		ramp      = fs.Duration("ramp", 0, "capacity mode: time over which the fleet ramps to -sessions (0 = as fast as possible)")
		duration  = fs.Duration("duration", 5*time.Second, "capacity mode: steady-state measurement window at full fleet")
		workers   = fs.Int("workers", 64, "capacity mode: concurrent request goroutines")
		read      = fs.Int("read", 4, "capacity mode: frames per request")
		procs     = fs.Int("procs", 8, "capacity mode: GOMAXPROCS for the serving stack (per-core numbers divide by this)")
		profile   = fs.String("profile", "", "capacity mode: canned run set, \"full\" (BENCH_6 refresh), \"smoke\" (CI gate subset), or \"step\" (batched-stepping rung for BENCH_7)")
		out       = fs.String("o", "", "capacity mode: write results as a benchreport JSON file")
		compare   = fs.String("compare", "", "capacity mode: old report to diff against; regressions beyond -threshold fail")
		threshold = fs.Float64("threshold", 0.75, "fractional ns/op regression tolerated under -compare")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *selfserve {
		return runCapacity(ctx, capacityFlags{
			sessions: *sessions, shards: *shards, workers: *workers, read: *read,
			ramp: *ramp, duration: *duration, seed: *seed, procs: *procs,
			profile: *profile, out: *out, compare: *compare, threshold: *threshold,
		}, stdout)
	}
	if *addr == "" {
		return fmt.Errorf("missing -addr base URL (or -selfserve for capacity mode)")
	}
	c := client.New(*addr)
	if err := c.Healthz(ctx); err != nil {
		return err
	}

	start := time.Now()

	// Open the whole fleet first: the batched step needs every session id.
	infos := make([]server.SessionInfo, *streams)
	errs := make([]error, *streams)
	var wg sync.WaitGroup
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := paperSpecFor(*seed + uint64(i))
			infos[i], errs[i] = c.CreateStream(ctx, &spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("create stream %d: %w", i, err)
		}
	}

	// One batched step advances every session in a single request — the
	// simulation-driver shape the step endpoint exists for.
	if *step > 0 {
		ids := make([]string, len(infos))
		for i, info := range infos {
			ids[i] = info.ID
		}
		results, err := c.Step(ctx, ids, *step, false)
		if err != nil {
			return fmt.Errorf("batched step: %w", err)
		}
		for i, res := range results {
			if res.Pos != *step {
				return fmt.Errorf("session %s stepped to %d, want %d", ids[i], res.Pos, *step)
			}
		}
	}

	// Pull and verify in parallel; served frames must continue exactly
	// where the step left the session.
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runStream(ctx, c, infos[i], *seed+uint64(i), *step, *frames, *verify)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(stderr, "stream %d: %v\n", i, err)
		}
	}
	total := float64((*streams - failed) * *frames)
	fmt.Fprintf(stdout, "%d/%d streams ok, %d frames each in %v (%.0f frames/s aggregate)\n",
		*streams-failed, *streams, *frames, elapsed.Round(time.Millisecond), total/elapsed.Seconds())
	if failed > 0 {
		return fmt.Errorf("%d of %d streams failed", failed, *streams)
	}

	if *sources > 0 {
		if err := runTrunkSmoke(ctx, c, *sources, *seed, *frames, *verify); err != nil {
			return fmt.Errorf("trunk smoke: %w", err)
		}
		fmt.Fprintf(stdout, "trunk smoke ok: %d sources, %d frames verified\n", *sources, *frames)
	}
	return nil
}

func paperSpecFor(seed uint64) modelspec.Spec {
	spec := modelspec.Paper()
	spec.Seed = seed
	return spec
}

// runStream pulls all frames of one already-open session in two requests
// (testing session-position continuity), optionally verifies against
// offline generation at the stepped offset, and closes the session.
func runStream(ctx context.Context, c *client.Client, info server.SessionInfo, seed uint64, offset, frames int, verify bool) error {
	defer c.CloseStream(ctx, info.ID)

	half := frames / 2
	got, err := c.Frames(ctx, info.ID, -1, half)
	if err != nil {
		return err
	}
	rest, err := c.Frames(ctx, info.ID, -1, frames-half)
	if err != nil {
		return err
	}
	got = append(got, rest...)
	if len(got) != frames {
		return fmt.Errorf("got %d frames, want %d", len(got), frames)
	}
	if !verify {
		return nil
	}
	spec := paperSpecFor(seed)
	want, err := spec.Frames(ctx, 0, offset+frames, 0)
	if err != nil {
		return err
	}
	for i := range got {
		if got[i] != want[offset+i] {
			return fmt.Errorf("frame %d: server %v, offline %v", offset+i, got[i], want[offset+i])
		}
	}
	return nil
}

// runTrunkSmoke creates one trunk session of n homogeneous paper sources,
// reads, batch-steps, and seeks it, verifying every returned frame against
// the offline trunk engine — the full trunk-session surface in one pass.
func runTrunkSmoke(ctx context.Context, c *client.Client, n int, seed uint64, frames int, verify bool) error {
	paper := modelspec.Paper()
	spec := modelspec.TrunkSpec{
		Seed: seed + 1<<32,
		Components: []modelspec.TrunkComponent{
			{Count: n, Spec: modelspec.Spec{ACF: paper.ACF, Marginal: paper.Marginal}},
		},
	}
	info, err := c.CreateTrunk(ctx, &spec)
	if err != nil {
		return err
	}
	defer c.CloseStream(ctx, info.ID)
	if info.Kind != "trunk" || info.Sources != n {
		return fmt.Errorf("trunk session info: kind=%q sources=%d, want trunk/%d", info.Kind, info.Sources, n)
	}

	half := frames / 2
	got, err := c.Frames(ctx, info.ID, -1, half)
	if err != nil {
		return err
	}
	// Step the trunk session through the batched endpoint with frames
	// included; it serves the second half.
	results, err := c.Step(ctx, []string{info.ID}, frames-half, true)
	if err != nil {
		return err
	}
	if len(results) != 1 || len(results[0].Frames) != frames-half {
		return fmt.Errorf("trunk step results: %+v", results)
	}
	got = append(got, results[0].Frames...)
	if !verify {
		return nil
	}

	tr, err := trunk.Open(ctx, &spec, trunk.Options{})
	if err != nil {
		return err
	}
	defer tr.Close()
	want := make([]float64, frames)
	tr.Fill(want)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("trunk frame %d: server %v, offline %v", i, got[i], want[i])
		}
	}

	// Seek replay through from=: the session must land back on the offline
	// trace mid-stream.
	probe, err := c.Frames(ctx, info.ID, frames/4, 64)
	if err != nil {
		return err
	}
	for i := range probe {
		if math.Float64bits(probe[i]) != math.Float64bits(want[frames/4+i]) {
			return fmt.Errorf("trunk replay frame %d: %v, want %v", frames/4+i, probe[i], want[frames/4+i])
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Capacity mode

type capacityFlags struct {
	sessions, shards, workers, read, procs int
	ramp, duration                         time.Duration
	seed                                   uint64
	profile, out, compare                  string
	threshold                              float64
}

// capacityRun is one measured configuration; name keys the benchreport
// entry so the benchdiff gate can match it across reports.
type capacityRun struct {
	name     string
	sessions int
	shards   int
	ramp     time.Duration
	// stepN > 0 selects the batched-stepping measurement instead of frame
	// reads: one driver goroutine advances the whole fleet by stepN frames
	// per POST /v1/streams/step round.
	stepN int
}

// runCapacity executes the requested runs and writes/diffs the report.
func runCapacity(ctx context.Context, f capacityFlags, stdout io.Writer) error {
	var runs []capacityRun
	switch f.profile {
	case "":
		runs = []capacityRun{{
			name:     fmt.Sprintf("ServeFrames/sessions%d-shards%d", f.sessions, f.shards),
			sessions: f.sessions, shards: f.shards, ramp: f.ramp,
		}}
	case "smoke":
		// The CI subset: small enough to finish in seconds, present in the
		// committed full report so -compare has something to diff.
		runs = []capacityRun{
			{name: "ServeFrames/sessions1k-shards16", sessions: 1000, shards: 16},
		}
	case "full":
		// The committed BENCH_6.json set: the shard ablation at 10k
		// sessions (1 shard = the pre-shard single-map registry) and the
		// 100k-session ramp that is the capacity headline.
		runs = []capacityRun{
			{name: "ServeFrames/sessions1k-shards16", sessions: 1000, shards: 16},
			{name: "ServeFrames/sessions10k-shards1", sessions: 10000, shards: 1},
			{name: "ServeFrames/sessions10k-shards16", sessions: 10000, shards: 16},
			{name: "ServeFrames/ramp100k-shards16", sessions: 100000, shards: 16, ramp: f.ramp},
		}
	case "step":
		// The batched-stepping rung for BENCH_7.json: one simulation driver
		// advancing a block-engine fleet through POST /v1/streams/step, the
		// endpoint's sticky-chunk fan-out doing the parallelism. Written
		// with -o BENCH_7.json it merges next to the cmd/bench ladder
		// entries rather than replacing the file.
		runs = []capacityRun{
			{name: "StepFleet/sessions256-n1024", sessions: 256, shards: 16, stepN: 1024},
		}
	default:
		return fmt.Errorf("unknown -profile %q (want \"full\", \"smoke\", or \"step\")", f.profile)
	}

	if f.procs > 0 {
		old := runtime.GOMAXPROCS(f.procs)
		defer runtime.GOMAXPROCS(old)
	}
	var old benchreport.Report
	if f.compare != "" {
		var err error
		if old, err = benchreport.ReadFile(f.compare); err != nil {
			return err
		}
	}

	rep := benchreport.Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: make(map[string]benchreport.Entry),
	}
	results := make(map[string]capacityResult, len(runs))
	for _, cr := range runs {
		var res capacityResult
		var err error
		if cr.stepN > 0 {
			res, err = measureStep(ctx, stepConfig{
				sessions: cr.sessions, shards: cr.shards, stepN: cr.stepN,
				duration: f.duration, seed: f.seed,
			})
		} else {
			res, err = measureCapacity(ctx, capacityConfig{
				sessions: cr.sessions, shards: cr.shards, workers: f.workers,
				read: f.read, ramp: cr.ramp, duration: f.duration, seed: f.seed,
			})
		}
		if err != nil {
			return fmt.Errorf("%s: %w", cr.name, err)
		}
		results[cr.name] = res
		rep.Benchmarks[cr.name] = res.entry()
		srvP99 := "n/a"
		if res.serverP99OK {
			srvP99 = res.serverP99.Round(time.Microsecond).String()
		}
		fmt.Fprintf(stdout, "%-34s %9.0f ns/req  p50 %8v  p99 %8v  srv-p99 %8s  %9.0f frames/s  %8.0f frames/s/core  (ramp %v)\n",
			cr.name, res.meanNs, res.p50.Round(time.Microsecond), res.p99.Round(time.Microsecond), srvP99,
			res.framesPerSec, res.framesPerSecPerCore(), res.rampElapsed.Round(time.Millisecond))
	}

	// The shard ablation headline: 16 shards vs the single-map baseline at
	// the same fleet size, in frames/sec/core.
	if one, ok := results["ServeFrames/sessions10k-shards1"]; ok {
		if sixteen, ok := results["ServeFrames/sessions10k-shards16"]; ok && one.framesPerSec > 0 {
			speedup := sixteen.framesPerSecPerCore() / one.framesPerSecPerCore()
			e := rep.Benchmarks["ServeFrames/sessions10k-shards16"]
			e.Extra["shard_speedup"] = speedup
			rep.Benchmarks["ServeFrames/sessions10k-shards16"] = e
			fmt.Fprintf(stdout, "shard speedup at 10k sessions: %.2fx (16 shards vs single map)\n", speedup)
		}
	}

	if f.compare != "" {
		deltas, failed := benchreport.Compare(old, rep, f.threshold)
		for _, d := range deltas {
			if d.Missing {
				fmt.Fprintf(stdout, "%-34s %12.0f ns/req   (not in %s)\n", d.Name, d.New, f.compare)
				continue
			}
			fmt.Fprintf(stdout, "%-34s %12.0f -> %10.0f ns/req  %+6.1f%%\n", d.Name, d.Old, d.New, 100*d.Frac)
		}
		if failed {
			return fmt.Errorf("capacity regression beyond %.0f%% vs %s", 100*f.threshold, f.compare)
		}
		fmt.Fprintf(stdout, "no capacity regression beyond %.0f%% vs %s\n", 100*f.threshold, f.compare)
	}
	if f.out != "" {
		// Merge rather than replace: cmd/bench and loadgen both contribute
		// entries to the committed report, so rungs already recorded there
		// under other names survive a refresh of this profile's subset.
		if existing, err := benchreport.ReadFile(f.out); err == nil {
			for name, e := range existing.Benchmarks {
				if _, ok := rep.Benchmarks[name]; !ok {
					rep.Benchmarks[name] = e
				}
			}
		}
		if err := rep.WriteFile(f.out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", f.out)
	}
	return nil
}

type capacityConfig struct {
	sessions, shards, workers, read int
	ramp, duration                  time.Duration
	seed                            uint64
}

type capacityResult struct {
	sessions, shards, workers, read int
	gomaxprocs                      int
	rampElapsed                     time.Duration
	requests                        int
	meanNs                          float64
	p50, p99                        time.Duration
	framesPerSec                    float64
	// serverP99 is the p99 of vbrsim_http_request_seconds{endpoint="frames"}
	// scraped from the server's own /metrics after the window — the
	// server-side cross-check of the client-measured p99 above.
	serverP99   time.Duration
	serverP99OK bool
}

func (r capacityResult) framesPerSecPerCore() float64 {
	return r.framesPerSec / float64(r.gomaxprocs)
}

func (r capacityResult) entry() benchreport.Entry {
	e := benchreport.Entry{
		NsPerOp:    r.meanNs,
		N:          r.requests,
		GOMAXPROCS: r.gomaxprocs,
		Extra: map[string]float64{
			"sessions":            float64(r.sessions),
			"shards":              float64(r.shards),
			"workers":             float64(r.workers),
			"frames_per_request":  float64(r.read),
			"ramp_seconds":        r.rampElapsed.Seconds(),
			"p50_us":              float64(r.p50) / 1e3,
			"p99_us":              float64(r.p99) / 1e3,
			"frames_per_sec":      r.framesPerSec,
			"frames_per_sec_core": r.framesPerSecPerCore(),
		},
	}
	if r.serverP99OK {
		e.Extra["server_p99_ms"] = float64(r.serverP99) / 1e6
	}
	return e
}

// scrapeServerP99 reads the server's request-latency histogram off its own
// /metrics page and returns the interpolated p99 of the frames endpoint.
func scrapeServerP99(srv *server.Server) (time.Duration, bool) {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fams, err := obs.ParseExposition(rec.Body)
	if err != nil {
		return 0, false
	}
	q, ok := obs.HistogramQuantile(fams["vbrsim_http_request_seconds"], `endpoint="frames"`, 0.99)
	if !ok {
		return 0, false
	}
	return time.Duration(q * float64(time.Second)), true
}

// tesSpec is the cheapest session the server admits (cost 1 unit, no
// Gaussian plan): a TES modulo-1 process mapped through a lognormal
// marginal. The fleet is heterogeneous only in seed.
func tesSpec(seed uint64) modelspec.Spec {
	return modelspec.Spec{
		Engine:   modelspec.EngineTES,
		Seed:     seed,
		TES:      &modelspec.TESSpec{Alpha: 0.3},
		Marginal: &modelspec.MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
	}
}

// discardWriter is a ResponseWriter that keeps only the status code: the
// harness measures the serving stack, not response-buffer copies.
type discardWriter struct {
	h    http.Header
	code int
}

func (w *discardWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *discardWriter) WriteHeader(code int) { w.code = code }
func (w *discardWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return len(p), nil
}
func (w *discardWriter) reset() {
	w.code = 0
	clear(w.h)
}

// measureCapacity ramps one fleet on a fresh in-process server and
// measures steady-state frame-read capacity.
func measureCapacity(ctx context.Context, cfg capacityConfig) (capacityResult, error) {
	res := capacityResult{
		sessions: cfg.sessions, shards: cfg.shards, workers: cfg.workers,
		read: cfg.read, gomaxprocs: runtime.GOMAXPROCS(0),
	}
	srv := server.New(server.Options{
		MaxSessions: cfg.sessions + 1,
		Shards:      cfg.shards,
		Seed:        cfg.seed,
		Registry:    obs.NewRegistry(),
	})
	defer srv.Close()

	// Ramp: -workers creators share the fleet; with a ramp window each
	// creation waits for its proportional slot so the fleet grows linearly
	// to full size over the window.
	ids := make([]string, cfg.sessions)
	errs := make([]error, cfg.workers)
	rampStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < cfg.sessions; i += cfg.workers {
				if cfg.ramp > 0 {
					due := rampStart.Add(cfg.ramp * time.Duration(i) / time.Duration(cfg.sessions))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				id, err := createSession(srv, cfg.seed+uint64(i))
				if err != nil {
					errs[w] = fmt.Errorf("create session %d: %w", i, err)
					return
				}
				ids[i] = id
			}
		}(w)
	}
	wg.Wait()
	res.rampElapsed = time.Since(rampStart)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	// Steady state: every worker loops frame reads over its slice of the
	// fleet until the window closes, recording per-request wall time.
	type workerStats struct {
		lat []int64
		err error
	}
	stats := make([]workerStats, cfg.workers)
	rawQuery := fmt.Sprintf("n=%d", cfg.read)
	deadline := time.Now().Add(cfg.duration)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			st.lat = make([]int64, 0, 1<<16)
			rec := &discardWriter{}
			header := http.Header{"Accept": []string{server.ContentTypeFrames}}
			for i := w; ; i += cfg.workers {
				if i >= cfg.sessions {
					i %= cfg.sessions
				}
				req := &http.Request{
					Method:     "GET",
					URL:        &url.URL{Path: "/v1/streams/" + ids[i] + "/frames", RawQuery: rawQuery},
					Proto:      "HTTP/1.1",
					ProtoMajor: 1,
					ProtoMinor: 1,
					Header:     header,
					Host:       "loadgen",
					RemoteAddr: "127.0.0.1:1",
				}
				rec.reset()
				t0 := time.Now()
				srv.ServeHTTP(rec, req.WithContext(ctx))
				t1 := time.Now()
				if rec.code != http.StatusOK {
					st.err = fmt.Errorf("frames %s: HTTP %d", ids[i], rec.code)
					return
				}
				st.lat = append(st.lat, t1.Sub(t0).Nanoseconds())
				if t1.After(deadline) {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var all []int64
	var sum int64
	for w := range stats {
		if stats[w].err != nil {
			return res, stats[w].err
		}
		all = append(all, stats[w].lat...)
		for _, v := range stats[w].lat {
			sum += v
		}
	}
	if len(all) == 0 {
		return res, fmt.Errorf("measurement window produced no requests")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.requests = len(all)
	res.meanNs = float64(sum) / float64(len(all))
	res.p50 = time.Duration(all[len(all)/2])
	res.p99 = time.Duration(all[len(all)*99/100])
	res.framesPerSec = float64(len(all)*cfg.read) / cfg.duration.Seconds()
	res.serverP99, res.serverP99OK = scrapeServerP99(srv)
	return res, nil
}

type stepConfig struct {
	sessions, shards, stepN int
	duration                time.Duration
	seed                    uint64
}

// measureStep ramps a block-engine paper fleet on a fresh in-process server
// and measures steady-state batched stepping: a single driver goroutine —
// the simulation-driver shape — advances the whole fleet by stepN frames
// per POST /v1/streams/step request, while the endpoint's sticky-chunk
// fan-out supplies the parallelism. Per-request latency and aggregate
// frames/sec/core land in the same capacityResult/benchreport shape as the
// frame-read rungs.
func measureStep(ctx context.Context, cfg stepConfig) (capacityResult, error) {
	res := capacityResult{
		sessions: cfg.sessions, shards: cfg.shards, workers: 1,
		read: cfg.stepN, gomaxprocs: runtime.GOMAXPROCS(0),
	}
	srv := server.New(server.Options{
		MaxSessions: cfg.sessions + 1,
		Shards:      cfg.shards,
		Seed:        cfg.seed,
		Registry:    obs.NewRegistry(),
	})
	defer srv.Close()

	rampStart := time.Now()
	ids := make([]string, cfg.sessions)
	for i := range ids {
		spec := paperSpecFor(cfg.seed + uint64(i))
		spec.Engine = modelspec.EngineBlock
		id, err := createSessionSpec(srv, spec)
		if err != nil {
			return res, fmt.Errorf("create session %d: %w", i, err)
		}
		ids[i] = id
	}
	res.rampElapsed = time.Since(rampStart)

	body, err := json.Marshal(server.StepRequest{IDs: ids, N: cfg.stepN})
	if err != nil {
		return res, err
	}
	var lat []int64
	rec := &discardWriter{}
	deadline := time.Now().Add(cfg.duration)
	for {
		req := &http.Request{
			Method:     "POST",
			URL:        &url.URL{Path: "/v1/streams/step"},
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(bytes.NewReader(body)),
			Host:       "loadgen",
			RemoteAddr: "127.0.0.1:1",
		}
		rec.reset()
		t0 := time.Now()
		srv.ServeHTTP(rec, req.WithContext(ctx))
		t1 := time.Now()
		if rec.code != http.StatusOK {
			return res, fmt.Errorf("step round %d: HTTP %d", len(lat), rec.code)
		}
		lat = append(lat, t1.Sub(t0).Nanoseconds())
		if t1.After(deadline) {
			break
		}
	}

	var sum int64
	for _, v := range lat {
		sum += v
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.requests = len(lat)
	res.meanNs = float64(sum) / float64(len(lat))
	res.p50 = time.Duration(lat[len(lat)/2])
	res.p99 = time.Duration(lat[len(lat)*99/100])
	res.framesPerSec = float64(len(lat)) * float64(cfg.sessions) * float64(cfg.stepN) /
		(float64(sum) / 1e9)
	return res, nil
}

// createSession opens one TES session through the full HTTP surface and
// returns its id.
func createSession(srv *server.Server, seed uint64) (string, error) {
	return createSessionSpec(srv, tesSpec(seed))
}

// createSessionSpec opens one session of the given spec through the full
// HTTP surface and returns its id.
func createSessionSpec(srv *server.Server, spec modelspec.Spec) (string, error) {
	body, err := json.Marshal(&spec)
	if err != nil {
		return "", err
	}
	req := httptest.NewRequest("POST", "/v1/streams", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		return "", fmt.Errorf("HTTP %d: %s", rec.Code, bytes.TrimSpace(rec.Body.Bytes()))
	}
	var info server.SessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		return "", err
	}
	return info.ID, nil
}
