// Command loadgen exercises a running trafficd with concurrent streams: it
// opens -streams sessions of the paper model, pulls -frames frames from
// each in parallel, verifies every stream against offline generation with
// the same seed (the determinism contract), and reports throughput.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -streams 32 -frames 2000
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"vbrsim/client"
	"vbrsim/internal/modelspec"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// run executes the load test; split from main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "", "trafficd base URL (required), e.g. http://127.0.0.1:8080")
		streams = fs.Int("streams", 32, "concurrent streaming sessions to open")
		frames  = fs.Int("frames", 2000, "frames to pull per stream")
		seed    = fs.Uint64("seed", 1000, "seed of the first stream (stream i uses seed+i)")
		verify  = fs.Bool("verify", true, "check every stream against offline generation with the same seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("missing -addr base URL")
	}
	c := client.New(*addr)
	if err := c.Healthz(ctx); err != nil {
		return err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, *streams)
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runStream(ctx, c, *seed+uint64(i), *frames, *verify)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(stderr, "stream %d: %v\n", i, err)
		}
	}
	total := float64((*streams - failed) * *frames)
	fmt.Fprintf(stdout, "%d/%d streams ok, %d frames each in %v (%.0f frames/s aggregate)\n",
		*streams-failed, *streams, *frames, elapsed.Round(time.Millisecond), total/elapsed.Seconds())
	if failed > 0 {
		return fmt.Errorf("%d of %d streams failed", failed, *streams)
	}
	return nil
}

// runStream opens one session, pulls all frames in two requests (testing
// session-position continuity), optionally verifies against offline
// generation, and closes the session.
func runStream(ctx context.Context, c *client.Client, seed uint64, frames int, verify bool) error {
	spec := modelspec.Paper()
	spec.Seed = seed
	info, err := c.CreateStream(ctx, &spec)
	if err != nil {
		return err
	}
	defer c.CloseStream(ctx, info.ID)

	half := frames / 2
	got, err := c.Frames(ctx, info.ID, -1, half)
	if err != nil {
		return err
	}
	rest, err := c.Frames(ctx, info.ID, -1, frames-half)
	if err != nil {
		return err
	}
	got = append(got, rest...)
	if len(got) != frames {
		return fmt.Errorf("got %d frames, want %d", len(got), frames)
	}
	if !verify {
		return nil
	}
	want, err := spec.Frames(ctx, 0, frames, 0)
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("frame %d: server %v, offline %v", i, got[i], want[i])
		}
	}
	return nil
}
