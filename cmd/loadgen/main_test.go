package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"vbrsim/internal/server"
)

// TestLoadgen32Streams is the concurrency smoke test: 32 streams pulled in
// parallel from one in-process daemon, each verified bit-identical against
// offline generation. Under -race this exercises the session registry, the
// per-session locking, the shared plan cache, and the metrics counters.
func TestLoadgen32Streams(t *testing.T) {
	s := server.New(server.Options{MaxSessions: 64})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL, "-streams", "32", "-frames", "400", "-seed", "5000",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("loadgen: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "32/32 streams ok") {
		t.Fatalf("unexpected report: %s", out.String())
	}
}

func TestLoadgenMissingAddr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), nil, &out, &errOut); err == nil {
		t.Fatal("run without -addr succeeded")
	}
}
