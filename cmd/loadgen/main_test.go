package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vbrsim/internal/benchreport"
	"vbrsim/internal/server"
)

// TestLoadgen32Streams is the concurrency smoke test: 32 streams pulled in
// parallel from one in-process daemon, each verified bit-identical against
// offline generation. Under -race this exercises the session registry, the
// per-session locking, the shared plan cache, and the metrics counters.
func TestLoadgen32Streams(t *testing.T) {
	s := server.New(server.Options{MaxSessions: 64})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL, "-streams", "32", "-frames", "400", "-seed", "5000",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("loadgen: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "32/32 streams ok") {
		t.Fatalf("unexpected report: %s", out.String())
	}
}

// TestLoadgenStepAndTrunk drives the batched-stepping path and the trunk
// smoke mode against one in-process daemon: the fleet advances through
// POST /v1/streams/step before reading (verification then runs at the
// stepped offset), and a 4-source trunk session is created, stepped, read,
// and seek-replayed bit-identically to the offline trunk engine.
func TestLoadgenStepAndTrunk(t *testing.T) {
	s := server.New(server.Options{MaxSessions: 64})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL, "-streams", "8", "-frames", "300", "-step", "200",
		"-seed", "7000", "-trunk", "4",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("loadgen: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "8/8 streams ok") {
		t.Fatalf("unexpected report: %s", out.String())
	}
	if !strings.Contains(out.String(), "trunk smoke ok: 4 sources") {
		t.Fatalf("missing trunk smoke report: %s", out.String())
	}
}

func TestLoadgenMissingAddr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(context.Background(), nil, &out, &errOut); err == nil {
		t.Fatal("run without -addr or -selfserve succeeded")
	}
}

// TestMeasureCapacitySmall runs the capacity harness at toy scale: the
// measurement must produce requests, coherent percentiles, and a
// benchreport entry carrying the capacity extras the benchdiff gate and
// BENCH_6.json readers rely on.
func TestMeasureCapacitySmall(t *testing.T) {
	res, err := measureCapacity(context.Background(), capacityConfig{
		sessions: 8, shards: 2, workers: 4, read: 2,
		duration: 100 * time.Millisecond,
		seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.requests <= 0 || res.framesPerSec <= 0 {
		t.Fatalf("empty measurement: %+v", res)
	}
	if res.p99 < res.p50 || res.p50 <= 0 {
		t.Fatalf("percentiles inverted: p50=%v p99=%v", res.p50, res.p99)
	}
	e := res.entry()
	if e.NsPerOp <= 0 || e.Extra["sessions"] != 8 || e.Extra["shards"] != 2 {
		t.Fatalf("malformed entry: %+v", e)
	}
	if e.Extra["frames_per_sec_core"] <= 0 || e.Extra["p99_us"] <= 0 {
		t.Fatalf("entry missing capacity extras: %+v", e)
	}
}

// TestServerP99AgreesWithClient cross-checks the two p99 measurements the
// capacity harness reports: the client-side one (wall time around each
// ServeHTTP dispatch) and the server-side one (interpolated from the
// vbrsim_http_request_seconds{endpoint="frames"} histogram scraped off
// /metrics). The server estimate is quantized to its bucket grid, so exact
// equality is impossible; instead both values must land in the same or an
// adjacent histogram bucket — any wiring error (wrong endpoint label,
// seconds-vs-millis confusion, scraping the wrong family) moves the server
// value by whole buckets or kills it entirely.
func TestServerP99AgreesWithClient(t *testing.T) {
	res, err := measureCapacity(context.Background(), capacityConfig{
		sessions: 8, shards: 2, workers: 4, read: 2,
		duration: 200 * time.Millisecond,
		seed:     43,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.serverP99OK || res.serverP99 <= 0 {
		t.Fatalf("server p99 not scraped: %+v", res)
	}
	e := res.entry()
	if e.Extra["server_p99_ms"] <= 0 {
		t.Fatalf("entry missing server_p99_ms: %+v", e)
	}

	// The request-histogram bucket bounds from internal/server metrics.go.
	bounds := []time.Duration{
		500 * time.Microsecond, 2 * time.Millisecond, 10 * time.Millisecond,
		50 * time.Millisecond, 200 * time.Millisecond, time.Second, 5 * time.Second,
	}
	bucketOf := func(d time.Duration) int {
		for i, ub := range bounds {
			if d <= ub {
				return i
			}
		}
		return len(bounds)
	}
	cb, sb := bucketOf(res.p99), bucketOf(res.serverP99)
	if diff := cb - sb; diff < -1 || diff > 1 {
		t.Fatalf("client p99 %v (bucket %d) and server p99 %v (bucket %d) disagree beyond one histogram bucket",
			res.p99, cb, res.serverP99, sb)
	}
}

// TestMeasureStepSmall runs the batched-stepping rung at toy scale: the
// driver must complete rounds against a block-engine fleet and produce a
// coherent benchreport entry with the frames/sec/core extras.
func TestMeasureStepSmall(t *testing.T) {
	res, err := measureStep(context.Background(), stepConfig{
		sessions: 4, shards: 2, stepN: 64,
		duration: 50 * time.Millisecond,
		seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.requests <= 0 || res.framesPerSec <= 0 {
		t.Fatalf("empty measurement: %+v", res)
	}
	if res.p99 < res.p50 || res.p50 <= 0 {
		t.Fatalf("percentiles inverted: p50=%v p99=%v", res.p50, res.p99)
	}
	e := res.entry()
	if e.Extra["sessions"] != 4 || e.Extra["frames_per_request"] != 64 {
		t.Fatalf("malformed entry: %+v", e)
	}
	if e.Extra["frames_per_sec_core"] <= 0 {
		t.Fatalf("entry missing frames/sec/core: %+v", e)
	}
}

// TestReportMergeOnWrite checks the -o merge semantics: entries already in
// the target report under other names survive a profile refresh, while
// same-name entries are replaced by the fresh measurement.
func TestReportMergeOnWrite(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/report.json"
	old := benchreport.Report{
		Benchmarks: map[string]benchreport.Entry{
			"Other/ladder-entry":          {NsPerOp: 123},
			"StepFleet/sessions256-n1024": {NsPerOp: 999},
		},
	}
	if err := old.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := runCapacity(context.Background(), capacityFlags{
		sessions: 4, shards: 2, workers: 2, read: 2,
		duration: 50 * time.Millisecond, seed: 7, procs: 1,
		out: path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := benchreport.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Benchmarks["Other/ladder-entry"]; !ok {
		t.Fatalf("merge dropped unrelated entry: %v", got.Benchmarks)
	}
	if _, ok := got.Benchmarks["ServeFrames/sessions4-shards2"]; !ok {
		t.Fatalf("fresh entry missing: %v", got.Benchmarks)
	}
}

func TestRunCapacityRejectsUnknownProfile(t *testing.T) {
	var out bytes.Buffer
	err := runCapacity(context.Background(), capacityFlags{profile: "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "profile") {
		t.Fatalf("unknown profile error = %v", err)
	}
}
