package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vbrsim/internal/trace"
)

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.csv")
	var stderr bytes.Buffer
	err := run([]string{"-frames", "2000", "-seed", "5", "-o", out}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 || tr.GOPLength != 12 {
		t.Errorf("trace: %d frames, GOP %d", tr.Len(), tr.GOPLength)
	}
	if !strings.Contains(stderr.String(), "frame mix") {
		t.Errorf("summary missing: %q", stderr.String())
	}
}

func TestRunBinaryIntra(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.bin")
	var stderr bytes.Buffer
	err := run([]string{"-frames", "1000", "-intra", "-format", "bin", "-o", out, "-summary=false"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	for i, ft := range tr.Types {
		if ft != trace.FrameI {
			t.Fatalf("frame %d type %v, want I", i, ft)
		}
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected stderr: %q", stderr.String())
	}
}

func TestRunBadFormat(t *testing.T) {
	dir := t.TempDir()
	var stderr bytes.Buffer
	err := run([]string{"-frames", "100", "-format", "xml", "-o", filepath.Join(dir, "t")}, &stderr)
	if err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestRunBadConfig(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-frames", "-5"}, &stderr); err == nil {
		t.Fatal("negative frames accepted")
	}
	if err := run([]string{"-scene-alpha", "2.5"}, &stderr); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.bin")
	b := filepath.Join(dir, "b.bin")
	var stderr bytes.Buffer
	if err := run([]string{"-frames", "500", "-seed", "9", "-format", "bin", "-o", a, "-summary=false"}, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-frames", "500", "-seed", "9", "-format", "bin", "-o", b, "-summary=false"}, &stderr); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Error("same seed produced different files")
	}
}
