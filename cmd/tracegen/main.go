// Command tracegen generates a synthetic empirical-style MPEG-1 VBR video
// trace (the stand-in for the paper's "Last Action Hero" record) and writes
// it to a file in CSV or binary form.
//
// Usage:
//
//	tracegen -frames 238626 -seed 1 -o trace.csv
//	tracegen -frames 65536 -intra -format bin -o intra.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vbrsim/internal/mpegtrace"
	"vbrsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run executes the tool; split from main for testability.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		frames  = fs.Int("frames", 1<<17, "number of frames to generate (paper: 238626)")
		seed    = fs.Uint64("seed", 1, "random seed")
		out     = fs.String("o", "trace.csv", "output file")
		format  = fs.String("format", "csv", "output format: csv or bin")
		intra   = fs.Bool("intra", false, "intraframe-only encoding (no I/P/B alternation)")
		alpha   = fs.Float64("scene-alpha", 0, "Pareto tail index of scene durations (default 1.2 => H=0.9)")
		summary = fs.Bool("summary", true, "print a Table-1 style summary to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := mpegtrace.Config{Frames: *frames, Seed: *seed, SceneAlpha: *alpha}
	if *intra {
		cfg.GOP = []trace.FrameType{trace.FrameI}
		cfg.IScale, cfg.PScale, cfg.BScale = 1, 1, 1
	}
	tr, err := mpegtrace.Generate(cfg)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "csv":
		err = tr.WriteCSV(f)
	case "bin":
		err = tr.WriteBinary(f)
	default:
		err = fmt.Errorf("unknown format %q (want csv or bin)", *format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	if *summary {
		s := tr.Summarize()
		fmt.Fprintf(stderr, "wrote %s: %d frames, %.1f s at %.0f fps, GOP %d\n",
			*out, s.Frames, s.Duration, s.FrameRate, s.GOPLength)
		fmt.Fprintf(stderr, "mean %.0f bytes/frame (%.2f Mbit/s), std %.0f, min %.0f, max %.0f, peak/mean %.2f\n",
			s.MeanBytes, s.MeanBitRate/1e6, s.StdBytes, s.MinBytes, s.MaxBytes, s.PeakToMean)
		fmt.Fprintf(stderr, "frame mix: I=%d P=%d B=%d\n",
			s.TypeCounts[trace.FrameI], s.TypeCounts[trace.FrameP], s.TypeCounts[trace.FrameB])
	}
	return nil
}
