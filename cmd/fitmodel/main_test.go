package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/mpegtrace"
)

// testTracePath writes a synthetic trace and returns its path. The trace is
// long enough for a stable fit.
func testTracePath(t *testing.T) string {
	t.Helper()
	tr, err := mpegtrace.Generate(mpegtrace.Config{Frames: 1 << 17, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSingleType(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path, "-type", "I"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"step 1: H =", "step 2:", "step 3: attenuation", "step 4: background", "marginal:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunGOP(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path, "-gop"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"composite I-B-P model", "P-frame marginal mean", "composite mean rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTwoExponentialSRD(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path, "-type", "I", "-srd", "2"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "step 2:") {
		t.Errorf("missing fit output:\n%s", stdout.String())
	}
}

func TestRunTransformOut(t *testing.T) {
	path := testTracePath(t)
	out := filepath.Join(t.TempDir(), "h.dat")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path, "-type", "I", "-transform-out", out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 241 {
		t.Errorf("transform table has %d lines, want 241", lines)
	}
}

func TestRunJSONExport(t *testing.T) {
	path := testTracePath(t)
	out := filepath.Join(t.TempDir(), "spec.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-i", path, "-type", "I", "-seed", "3", "-json", out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := modelspec.Parse(data)
	if err != nil {
		t.Fatalf("exported spec does not parse: %v", err)
	}
	if spec.Seed != 3 || spec.H <= 0.5 || spec.Marginal == nil || spec.Marginal.Kind != "empirical" {
		t.Fatalf("exported spec: %+v", spec)
	}
	if !strings.HasSuffix(spec.Name, "-I") {
		t.Errorf("spec name %q missing frame-type suffix", spec.Name)
	}

	// "-" streams the spec to stdout instead.
	stdout.Reset()
	if err := run([]string{"-i", path, "-type", "I", "-json", "-"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), `"acf"`) {
		t.Errorf("stdout export missing spec JSON:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("missing input accepted")
	}
	if err := run([]string{"-i", "/does/not/exist.csv"}, &stdout, &stderr); err == nil {
		t.Error("missing file accepted")
	}
	path := testTracePath(t)
	if err := run([]string{"-i", path, "-type", "Z"}, &stdout, &stderr); err == nil {
		t.Error("bad type accepted")
	}
}
