// Command fitmodel runs the paper's unified modeling pipeline (Section 3)
// on a trace and prints the fitted parameters: Hurst estimates, the
// composite ACF coefficients (eq. 13 analogue), the attenuation factor, and
// the compensated background ACF. With -gop it fits the composite I-B-P
// model of Section 3.3; with -refine it additionally runs the closed-loop
// background search.
//
// Usage:
//
//	fitmodel -i trace.csv            # single-process model on all frames
//	fitmodel -i trace.csv -type I    # model of the I-frame subsequence
//	fitmodel -i trace.csv -gop       # composite I-B-P model
//	fitmodel -i trace.csv -srd 2     # two-exponential SRD head
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vbrsim/internal/core"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/obs"
	"vbrsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fitmodel:", err)
		os.Exit(1)
	}
}

// run executes the tool; split from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fitmodel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("i", "", "input trace (csv or bin, by extension)")
		frameType   = fs.String("type", "", "fit only one frame type: I, P or B")
		gop         = fs.Bool("gop", false, "fit the composite I-B-P model (Section 3.3)")
		knee        = fs.Int("knee", 0, "force the ACF knee lag (0 = detect)")
		freeBeta    = fs.Bool("free-beta", false, "fit the LRD exponent from the ACF tail instead of pinning beta = 2-2H")
		srd         = fs.Int("srd", 1, "number of exponentials in the SRD head (1 or 2)")
		refine      = fs.Bool("refine", false, "run the closed-loop background refinement after fitting")
		seed        = fs.Uint64("seed", 1, "seed for the attenuation measurement")
		transform   = fs.String("transform-out", "", "write the h(x) transform table (Fig. 2) to this file")
		jsonOut     = fs.String("json", "", "write the fitted model as a trafficd-servable spec to this file (- for stdout)")
		manifestOut = fs.String("manifest", "", "write a run-manifest JSON artifact (stage spans, fitted parameters) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -i input trace")
	}
	// With -manifest the fit stages are traced (collect-only) and rolled up
	// with the fitted parameters into a reproducibility artifact.
	ctx := context.Background()
	var tracer *obs.Tracer
	results := map[string]any{}
	if *manifestOut != "" {
		tracer = obs.NewTracer(nil)
		ctx = obs.ContextWithTracer(ctx, tracer)
		defer func() {
			m := tracer.Manifest("fitmodel", args, int64(*seed), results, nil)
			if err := obs.WriteManifestFile(*manifestOut, m); err != nil {
				fmt.Fprintf(stderr, "fitmodel: writing manifest: %v\n", err)
			} else {
				fmt.Fprintf(stderr, "wrote %s\n", *manifestOut)
			}
		}()
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	opt := core.FitOptions{Knee: *knee, FreeBeta: *freeBeta, SRDComponents: *srd, Seed: *seed}

	if *gop {
		g, err := core.FitGOP(tr, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "composite I-B-P model (GOP period %d, pattern %v)\n", g.KI, g.GOP)
		printModel(stdout, g.IModel, "I-frame process")
		fmt.Fprintf(stdout, "P-frame marginal mean: %.1f bytes\n", g.TP.Target.Mean())
		fmt.Fprintf(stdout, "B-frame marginal mean: %.1f bytes\n", g.TB.Target.Mean())
		fmt.Fprintf(stdout, "composite mean rate: %.1f bytes/frame\n", g.MeanRate())
		results["mode"] = "gop"
		results["gop_period"] = g.KI
		results["h"] = g.IModel.H
		results["mean_rate"] = g.MeanRate()
		return nil
	}

	sizes := tr.Sizes
	if *frameType != "" {
		ft, err := trace.ParseFrameType(*frameType)
		if err != nil {
			return err
		}
		sizes = tr.ByType(ft)
		if sizes == nil {
			return fmt.Errorf("trace carries no frame-type information")
		}
	}
	m, err := core.FitCtx(ctx, sizes, opt)
	if err != nil {
		return err
	}
	printModel(stdout, m, "fitted unified model")
	results["mode"] = "single"
	results["h"] = m.H
	results["attenuation"] = m.Attenuation
	results["knee"] = m.Foreground.Knee
	results["beta"] = m.Foreground.Beta
	results["mean_rate"] = m.MeanRate()

	if *refine {
		res, err := m.Refine(core.RefineOptions{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "refinement: ACF RMS error %.4f -> %.4f over %d rounds (best round %d)\n",
			res.Errors[0], res.Errors[res.Best], len(res.Errors)-1, res.Best)
	}

	if *jsonOut != "" {
		spec := modelspec.FromModel(m, specName(*in, *frameType), *seed)
		data, err := json.MarshalIndent(&spec, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			if _, err := stdout.Write(data); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s\n", *jsonOut)
		}
	}

	if *transform != "" {
		f, err := os.Create(*transform)
		if err != nil {
			return err
		}
		xs, hs := m.Transform.Table(-6, 6, 240)
		for i := range xs {
			fmt.Fprintf(f, "%g\t%g\n", xs[i], hs[i])
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *transform)
	}
	return nil
}

// specName derives a spec name from the input path and frame-type filter.
func specName(path, frameType string) string {
	base := strings.TrimSuffix(strings.TrimSuffix(path, ".csv"), ".bin")
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if frameType != "" {
		base += "-" + strings.ToUpper(frameType)
	}
	return base
}

func printModel(w io.Writer, m *core.Model, label string) {
	fmt.Fprintf(w, "%s:\n", label)
	fmt.Fprintf(w, "  step 1: H = %.3f (variance-time %.3f, R/S %.3f; paper: 0.89/0.92 -> 0.9)\n",
		m.H, m.VT.H, m.RS.H)
	fg := m.Foreground
	fmt.Fprintf(w, "  step 2: r^(k) = %s for k < %d, %.4f k^-%.3f beyond\n",
		srdString(fg.Weights, fg.Rates), fg.Knee, fg.L, fg.Beta)
	fmt.Fprintf(w, "          (paper eq. 13: exp(-0.00565 k), 1.5947 k^-0.2, knee 60)\n")
	fmt.Fprintf(w, "  step 3: attenuation a = %.3f (paper: 0.94)\n", m.Attenuation)
	bg := m.Background
	fmt.Fprintf(w, "  step 4: background r(k) = %s for k < %d, %.4f k^-%.3f beyond\n",
		srdString(bg.Weights, bg.Rates), bg.Knee, bg.L, bg.Beta)
	fmt.Fprintf(w, "  marginal: mean %.1f bytes over %d observations\n", m.Marginal.Mean(), m.Marginal.Len())
}

// srdString formats a weighted exponential sum.
func srdString(weights, rates []float64) string {
	var parts []string
	for i := range weights {
		if len(weights) == 1 {
			parts = append(parts, fmt.Sprintf("exp(-%.5f k)", rates[i]))
		} else {
			parts = append(parts, fmt.Sprintf("%.3f exp(-%.5f k)", weights[i], rates[i]))
		}
	}
	return strings.Join(parts, " + ")
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return trace.ReadBinary(f)
	}
	return trace.ReadCSV(f)
}
