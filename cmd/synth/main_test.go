package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vbrsim/internal/mpegtrace"
	"vbrsim/internal/trace"
)

func testTracePath(t *testing.T) string {
	t.Helper()
	tr, err := mpegtrace.Generate(mpegtrace.Config{Frames: 1 << 17, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGOPSynthesis(t *testing.T) {
	path := testTracePath(t)
	outPath := filepath.Join(t.TempDir(), "syn.csv")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-i", path, "-frames", "8192", "-o", outPath}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "mean absolute ACF error") {
		t.Errorf("missing ACF report:\n%s", stdout.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	syn, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() != 8192 {
		t.Errorf("synthetic has %d frames", syn.Len())
	}
	if syn.Types == nil {
		t.Error("GOP synthesis lost frame types")
	}
}

func TestRunComparisonFiles(t *testing.T) {
	path := testTracePath(t)
	prefix := filepath.Join(t.TempDir(), "cmp")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-i", path, "-frames", "8192", "-compare-out", prefix}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"-acf.dat", "-hist.dat", "-qq.dat"} {
		if data, err := os.ReadFile(prefix + suffix); err != nil || len(data) == 0 {
			t.Errorf("%s: err=%v len=%d", suffix, err, len(data))
		}
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("missing input accepted")
	}
	if err := run([]string{"-i", "/missing.bin"}, &stdout, &stderr); err == nil {
		t.Error("missing file accepted")
	}
}
