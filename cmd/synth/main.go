// Command synth fits the unified model to an input trace, generates a
// synthetic trace from it, and reports how well the synthetic stream matches
// the original (ACF comparison, marginal histograms, Q-Q) — the paper's
// Figs. 8-13 workflow in one tool.
//
// Usage:
//
//	synth -i trace.csv -frames 65536 -o synthetic.csv
//	synth -i trace.csv -gop -frames 65536 -compare-out cmp
//	synth -i trace.csv -frames 1048576 -fast        # truncated-AR fast path
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"vbrsim/internal/core"
	"vbrsim/internal/obs"
	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		os.Exit(1)
	}
}

// run executes the tool; split from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("i", "", "input trace (csv or bin)")
		frames      = fs.Int("frames", 1<<16, "synthetic frames to generate")
		seed        = fs.Uint64("seed", 1, "generation seed")
		gop         = fs.Bool("gop", true, "use the composite I-B-P model when the trace has types")
		out         = fs.String("o", "", "write the synthetic trace here (csv or bin)")
		cmpOut      = fs.String("compare-out", "", "write <prefix>-{acf,hist,qq}.dat comparison files")
		acfLags     = fs.Int("acf-lags", 490, "ACF comparison lags")
		backendName = fs.String("backend", "auto", "background generator: auto, hosking, daviesharte, or hosking-fast")
		fast        = fs.Bool("fast", false, "use the truncated-AR Hosking fast path (O(p) per step, unbounded horizon); same as -backend hosking-fast")
		traceOut    = fs.String("trace-out", "", "write pipeline stage spans as NDJSON to this file (- for stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" {
		var tw io.Writer = stderr
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer f.Close()
			tw = f
		}
		tracer = obs.NewTracer(tw)
		ctx = obs.ContextWithTracer(ctx, tracer)
	}
	if *fast {
		switch strings.ToLower(*backendName) {
		case "", "auto", "hosking-fast", "fast":
			*backendName = "hosking-fast"
		default:
			return fmt.Errorf("-fast conflicts with -backend %s", *backendName)
		}
	}
	backend, err := parseBackend(*backendName)
	if err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -i input trace")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}

	var syn *trace.Trace
	if *gop && tr.Types != nil {
		span := tracer.Start("fit.gop")
		g, err := core.FitGOP(tr, core.FitOptions{Seed: *seed})
		if err != nil {
			return err
		}
		span.End(map[string]any{"frames": len(tr.Sizes), "gop_period": g.KI})
		span = tracer.Start("generate")
		syn, err = g.Generate(*frames, *seed, backend)
		if err != nil {
			return err
		}
		span.End(map[string]any{"frames": *frames, "backend": *backendName})
	} else {
		m, err := core.FitCtx(ctx, tr.Sizes, core.FitOptions{Seed: *seed})
		if err != nil {
			return err
		}
		span := tracer.Start("generate")
		sizes, err := m.Generate(*frames, *seed, backend)
		if err != nil {
			return err
		}
		span.End(map[string]any{"frames": *frames, "backend": *backendName})
		syn = &trace.Trace{Sizes: sizes, FrameRate: tr.FrameRate}
	}

	empMean := stats.Mean(tr.Sizes)
	synMean := stats.Mean(syn.Sizes)
	fmt.Fprintf(stdout, "empirical mean %.1f bytes/frame, synthetic %.1f (%.1f%% off)\n",
		empMean, synMean, 100*math.Abs(synMean-empMean)/empMean)

	ea := stats.Autocorrelation(tr.Sizes, *acfLags)
	sa := stats.Autocorrelation(syn.Sizes, *acfLags)
	var mae float64
	n := 0
	for k := 1; k <= *acfLags && k < len(ea) && k < len(sa); k++ {
		mae += math.Abs(ea[k] - sa[k])
		n++
	}
	fmt.Fprintf(stdout, "mean absolute ACF error over %d lags: %.4f\n", n, mae/float64(n))

	if *out != "" {
		if err := writeTrace(*out, syn); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *out)
	}
	if *cmpOut != "" {
		if err := writeComparisons(*cmpOut, stderr, tr, syn, ea, sa); err != nil {
			return err
		}
	}
	return nil
}

func writeComparisons(prefix string, stderr io.Writer, emp, syn *trace.Trace, ea, sa []float64) error {
	if err := writeDat(prefix+"-acf.dat", stderr, func(f io.Writer) {
		for k := 1; k < len(ea) && k < len(sa); k++ {
			fmt.Fprintf(f, "%d\t%g\t%g\n", k, ea[k], sa[k])
		}
	}); err != nil {
		return err
	}
	hi := math.Max(stats.Max(emp.Sizes), stats.Max(syn.Sizes)) * 1.001
	he := stats.NewHistogram(emp.Sizes, 0, hi, 80)
	hs := stats.NewHistogram(syn.Sizes, 0, hi, 80)
	if err := writeDat(prefix+"-hist.dat", stderr, func(f io.Writer) {
		fe, fsyn := he.Frequencies(), hs.Frequencies()
		for i := range fe {
			fmt.Fprintf(f, "%g\t%g\t%g\n", he.BinCenter(i), fe[i], fsyn[i])
		}
	}); err != nil {
		return err
	}
	qe, qs, err := stats.QQPairs(emp.Sizes, syn.Sizes, 100)
	if err != nil {
		return err
	}
	return writeDat(prefix+"-qq.dat", stderr, func(f io.Writer) {
		for i := range qe {
			fmt.Fprintf(f, "%g\t%g\n", qe[i], qs[i])
		}
	})
}

func parseBackend(name string) (core.Backend, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		return core.BackendAuto, nil
	case "hosking":
		return core.BackendHosking, nil
	case "daviesharte", "davies-harte":
		return core.BackendDaviesHarte, nil
	case "hosking-fast", "fast":
		return core.BackendHoskingFast, nil
	}
	return 0, fmt.Errorf("unknown -backend %q (want auto, hosking, daviesharte, or hosking-fast)", name)
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return trace.ReadBinary(f)
	}
	return trace.ReadCSV(f)
}

func writeTrace(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".bin") {
		err = tr.WriteBinary(f)
	} else {
		err = tr.WriteCSV(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeDat(path string, stderr io.Writer, fill func(io.Writer)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fill(f)
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}
