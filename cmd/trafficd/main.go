// Command trafficd serves synthetic VBR video traffic over HTTP: streaming
// generation sessions, async fit / queueing-simulation jobs, and Prometheus
// metrics. See internal/server for the API surface and README.md for a curl
// walkthrough.
//
// Usage:
//
//	trafficd                      # listen on :8080
//	trafficd -addr 127.0.0.1:0    # ephemeral port (printed on stdout)
//	trafficd -max-sessions 256 -job-workers 2
//	trafficd -statmon-sample 1 -access-log access.ndjson
//
// On SIGINT/SIGTERM the daemon drains: /healthz flips to 503, new sessions
// and jobs are rejected, in-flight streams and queued jobs finish (bounded
// by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vbrsim/internal/obs"
	"vbrsim/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "trafficd:", err)
		os.Exit(1)
	}
}

// run executes the daemon until ctx is canceled; split from main for
// testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trafficd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		maxSessions  = fs.Int("max-sessions", 64, "max concurrently open streaming sessions (excess gets 429)")
		shards       = fs.Int("shards", 16, "session-registry shard count (rounded up to a power of two)")
		maxCost      = fs.Float64("max-cost", 0, "admission-control cost budget in session units (0 = 16 per session slot)")
		idleTimeout  = fs.Duration("idle-timeout", 0, "evict sessions untouched for this long (0 = never)")
		jobWorkers   = fs.Int("job-workers", 0, "job worker-pool size (0 = min(GOMAXPROCS, 4))")
		jobQueue     = fs.Int("job-queue", 64, "max queued-but-unstarted jobs (excess gets 429)")
		seed         = fs.Uint64("seed", 1, "base seed for server-assigned session seeds")
		tol          = fs.Float64("tol", 0, "truncated-AR partial-correlation cutoff for session plans (0 = default 1e-3)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		debugAddr    = fs.String("debug-addr", "", "serve pprof and /debug/vars on this extra address (empty = disabled; keep it private)")

		statmonSample  = fs.Int("statmon-sample", 0, "statistical monitor sampling: observe 1 in N served chunks (0 = default 32, negative = disable statmon)")
		driftThreshold = fs.Float64("drift-threshold", 0, "statmon drift score at which a session counts as drifting (0 = default 1.0)")
		accessLog      = fs.String("access-log", "", "append NDJSON access log (with request ids and spans) to this file (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var accessW io.Writer
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		accessW = f
	}

	// The daemon reports through the process-default registry so any
	// in-process instrumentation (plan cache, worker pools) lands on the
	// same /metrics page.
	srv := server.New(server.Options{
		MaxSessions:   *maxSessions,
		Shards:        *shards,
		MaxCost:       *maxCost,
		IdleTimeout:   *idleTimeout,
		JobWorkers:    *jobWorkers,
		JobQueueDepth: *jobQueue,
		Seed:          *seed,
		Tol:           *tol,
		Registry:      obs.Default,

		StatmonSampleEvery:    *statmonSample,
		StatmonDriftThreshold: *driftThreshold,
		AccessLog:             accessW,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripts binding port 0 can
	// parse where the daemon actually listens.
	fmt.Fprintf(stdout, "trafficd listening on http://%s\n", ln.Addr())

	var debugServer *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return err
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", srv.Registry().DumpHandler())
		debugServer = &http.Server{Handler: dmux}
		fmt.Fprintf(stdout, "trafficd debug on http://%s/debug/pprof/\n", dln.Addr())
		go debugServer.Serve(dln)
	}

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stderr, "trafficd: draining")
	if debugServer != nil {
		debugServer.Close()
	}
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "trafficd: forced shutdown:", err)
		hs.Close()
	}
	srv.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
