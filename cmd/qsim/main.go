// Command qsim simulates the ATM multiplexer of Section 4: a slotted
// single-server queue fed by the unified VBR video model, with either plain
// Monte Carlo or importance-sampling (fast simulation) estimation of the
// buffer-overflow probability P(Q_k > b).
//
// Usage:
//
//	qsim -i trace.csv -util 0.6 -buffer 100 -horizon 1000 -twist 1.6
//	qsim -i trace.csv -util 0.4 -buffer 200 -mc           # plain Monte Carlo
//	qsim -i trace.csv -util 0.2 -buffer 25 -search        # find a good twist
//	qsim -i trace.csv -util 0.6 -buffer 100 -trace-driven # drive the queue with the raw trace
//	qsim -i trace.csv -util 0.7 -buffer 100 -sources 8    # multiplex 8 sources
//
// Observability (all determinism-neutral — estimates are bit-identical with
// these on or off):
//
//	qsim ... -progress               # NDJSON convergence snapshots on stderr
//	qsim ... -trace-out run.ndjson   # pipeline stage spans (fit, plan, queue)
//	qsim ... -manifest run.json      # run-manifest artifact (seed, stages, results)
//	qsim ... -cpuprofile cpu.pprof   # pprof CPU profile of the run
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime/pprof"
	"strings"

	"vbrsim/internal/core"
	"vbrsim/internal/hosking"
	"vbrsim/internal/impsample"
	"vbrsim/internal/obs"
	"vbrsim/internal/queue"
	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
}

// run parses flags, sets up observability, and delegates to qsimRun; split
// from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("qsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("i", "", "input trace to fit the model on (csv or bin)")
		frameType   = fs.String("type", "I", "frame type the model is fitted on (I recommended)")
		util        = fs.Float64("util", 0.6, "link utilization in (0,1)")
		bufNorm     = fs.Float64("buffer", 100, "normalized buffer size b (units of mean frame size)")
		horizon     = fs.Int("horizon", 0, "stop time k (0 = 10*buffer, the paper's choice)")
		twist       = fs.Float64("twist", 1.6, "IS background mean shift m* (0 = plain MC on the model)")
		reps        = fs.Int("reps", 1000, "replications")
		seed        = fs.Uint64("seed", 1, "seed")
		mc          = fs.Bool("mc", false, "force plain Monte Carlo (twist = 0)")
		search      = fs.Bool("search", false, "sweep twists 0.5..5 and report the normalized-variance valley (Fig. 14)")
		traceDriven = fs.Bool("trace-driven", false, "estimate from the raw trace itself (one long replication)")
		batches     = fs.Int("batches", 0, "with -trace-driven: report a batch-means CI over this many batches")
		sources     = fs.Int("sources", 1, "number of multiplexed sources (plain MC only when > 1)")
		fast        = fs.Bool("fast", false, "use the truncated-AR Hosking fast path (O(p) per step, unbounded horizon); same as synth -backend hosking-fast")
		fastTol     = fs.Float64("fast-tol", 0, "fast-path partial-correlation cutoff (0 = default 1e-3)")

		progress      = fs.Bool("progress", false, "stream estimator convergence snapshots to stderr as NDJSON")
		progressEvery = fs.Int("progress-every", 0, "replications between convergence snapshots (0 = ~32 over the run)")
		traceOut      = fs.String("trace-out", "", "write pipeline stage spans as NDJSON to this file (- for stderr)")
		manifestOut   = fs.String("manifest", "", "write a run-manifest JSON artifact to this file")
		cpuprofile    = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -i input trace")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// The tracer records stage spans for -trace-out and -manifest; when
	// neither is requested it stays nil and every span call is a no-op.
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" || *manifestOut != "" {
		var tw io.Writer
		switch *traceOut {
		case "":
			// collect-only, for the manifest rollup
		case "-":
			tw = stderr
		default:
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer f.Close()
			tw = f
		}
		tracer = obs.NewTracer(tw)
		ctx = obs.ContextWithTracer(ctx, tracer)
	}
	var onProgress func(obs.Convergence)
	if *progress {
		onProgress = obs.ProgressWriter(stderr)
	}

	results := map[string]any{}
	err := qsimRun(ctx, stdout, qsimFlags{
		in: *in, frameType: *frameType, util: *util, bufNorm: *bufNorm,
		horizon: *horizon, twist: *twist, reps: *reps, seed: *seed,
		mc: *mc, search: *search, traceDriven: *traceDriven,
		batches: *batches, sources: *sources, fast: *fast, fastTol: *fastTol,
		onProgress: onProgress, progressEvery: *progressEvery,
	}, results)

	if *manifestOut != "" {
		// The shared plan cache is the only process-wide instrument a CLI
		// run touches; expose it so the manifest's metrics section shows
		// cache behaviour for this run.
		hosking.Shared.RegisterMetrics(obs.Default)
		m := tracer.Manifest("qsim", args, int64(*seed), results, obs.Default)
		if werr := obs.WriteManifestFile(*manifestOut, m); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// qsimFlags carries the parsed flag values into the run body.
type qsimFlags struct {
	in, frameType        string
	util, bufNorm, twist float64
	horizon, reps        int
	seed                 uint64
	mc, search           bool
	traceDriven, fast    bool
	batches, sources     int
	fastTol              float64
	onProgress           func(obs.Convergence)
	progressEvery        int
}

// qsimRun is the tool body: everything after flag parsing and observability
// setup. It fills results for the run manifest.
func qsimRun(ctx context.Context, stdout io.Writer, f qsimFlags, results map[string]any) error {
	tr, err := readTrace(f.in)
	if err != nil {
		return err
	}

	if f.traceDriven {
		mean := stats.Mean(tr.Sizes)
		service := mean / f.util
		p, err := queue.TraceOverflow(tr.Sizes, service, f.bufNorm*mean, 1000)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace-driven steady state: P(Q > %g) = %.3g (log10 %.2f)\n",
			f.bufNorm, p, log10(p))
		results["mode"] = "trace-driven"
		results["p"] = p
		if f.batches > 1 {
			ci, err := queue.TraceOverflowCI(tr.Sizes, service, f.bufNorm*mean, 1000, f.batches)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "batch means (%d batches): %.3g +/- %.2g (95%%), batch lag-1 corr %.2f\n",
				ci.Batches, ci.P, ci.HalfWidth95, ci.BatchCorr)
			if ci.BatchCorr > 0.3 {
				fmt.Fprintf(stdout, "warning: batches remain correlated (LRD) — the interval understates the true uncertainty\n")
			}
			results["batch_p"] = ci.P
			results["batch_half_width_95"] = ci.HalfWidth95
			results["batch_corr"] = ci.BatchCorr
		}
		return nil
	}

	sizes := tr.Sizes
	if f.frameType != "" && tr.Types != nil {
		ft, err := trace.ParseFrameType(f.frameType)
		if err != nil {
			return err
		}
		if s := tr.ByType(ft); s != nil {
			sizes = s
		}
	}
	m, err := core.FitCtx(ctx, sizes, core.FitOptions{Seed: f.seed})
	if err != nil {
		return err
	}
	k := f.horizon
	if k <= 0 {
		k = int(10 * f.bufNorm)
	}
	var trunc *hosking.Truncated
	if f.fast {
		trunc, err = m.TruncatedPlanCtx(ctx, k, f.fastTol)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fast path: truncated AR(%d), max induced ACF error %.3g\n",
			trunc.Order(), trunc.MaxACFError())
	}
	planLen := k
	if trunc != nil {
		planLen = trunc.Plan().Len() // already cached; avoids a second exact plan
	}
	plan, err := m.PlanCtx(ctx, planLen)
	if err != nil {
		return err
	}

	if f.sources > 1 {
		// Multiplexed sources: plain MC on the superposed arrival process.
		aggMean := float64(f.sources) * m.MeanRate()
		service, err := queue.UtilizationService(aggMean, f.util)
		if err != nil {
			return err
		}
		src := queue.Superposition{
			Base: core.ArrivalSource{Plan: plan, Fast: trunc, Transform: m.Transform},
			N:    f.sources,
		}
		res, err := queue.EstimateOverflowCtx(ctx, src, service, f.bufNorm*aggMean, k,
			queue.MCOptions{Replications: f.reps, Seed: f.seed,
				Progress: f.onProgress, ProgressEvery: f.progressEvery})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d multiplexed sources, util %.2f, normalized buffer %g, k = %d:\n",
			f.sources, f.util, f.bufNorm, k)
		fmt.Fprintf(stdout, "  P(Q_k > b) = %.4g  (log10 %.2f), hits %d/%d\n",
			res.P, log10(res.P), res.Hits, res.Replications)
		results["mode"] = "multiplexed-mc"
		results["sources"] = f.sources
		results["p"] = res.P
		results["hits"] = res.Hits
		results["replications"] = res.Replications
		return nil
	}

	service, err := queue.UtilizationService(m.MeanRate(), f.util)
	if err != nil {
		return err
	}
	bufAbs := f.bufNorm * m.MeanRate()
	cfg := impsample.Config{
		Plan: plan, FastPlan: trunc, Transform: m.Transform,
		Service: service, Buffer: bufAbs, Horizon: k,
		Twist: f.twist, Replications: f.reps, Seed: f.seed,
		Progress: f.onProgress, ProgressEvery: f.progressEvery,
	}
	if f.mc {
		cfg.Twist = 0
	}

	if f.search {
		twists := []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
		sweep, best, err := impsample.SearchTwist(cfg, twists)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-8s %-12s %-14s %-10s\n", "m*", "P(Q_k>b)", "norm.var", "var.red.")
		for _, r := range sweep {
			fmt.Fprintf(stdout, "%-8.1f %-12.3g %-14.3g %-10.0f\n",
				r.Twist, r.Result.P, r.Result.NormVar, impsample.VarianceReduction(r.Result))
		}
		if best >= 0 {
			fmt.Fprintf(stdout, "valley at m* = %.1f (paper: 3.2 at util 0.2, b 25)\n", sweep[best].Twist)
			results["mode"] = "twist-search"
			results["best_twist"] = sweep[best].Twist
			results["best_p"] = sweep[best].Result.P
		}
		return nil
	}

	res, err := impsample.EstimateCtx(ctx, cfg)
	if err != nil {
		return err
	}
	mode := "importance sampling"
	if cfg.Twist == 0 {
		mode = "plain Monte Carlo"
	}
	fmt.Fprintf(stdout, "%s, util %.2f, normalized buffer %g, k = %d, N = %d:\n",
		strings.ToUpper(mode[:1])+mode[1:], f.util, f.bufNorm, k, res.Replications)
	fmt.Fprintf(stdout, "  P(Q_k > b) = %.4g  (log10 %.2f)\n", res.P, log10(res.P))
	fmt.Fprintf(stdout, "  std err %.3g, hits %d, normalized variance %.3g\n", res.StdErr, res.Hits, res.NormVar)
	if cfg.Twist != 0 {
		fmt.Fprintf(stdout, "  variance reduction vs plain MC: %.0fx\n", impsample.VarianceReduction(res))
	}
	results["mode"] = mode
	results["p"] = res.P
	results["std_err"] = res.StdErr
	results["hits"] = res.Hits
	results["norm_var"] = res.NormVar
	results["replications"] = res.Replications
	return nil
}

func log10(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log10(p)
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return trace.ReadBinary(f)
	}
	return trace.ReadCSV(f)
}
