// Command qsim simulates the ATM multiplexer of Section 4: a slotted
// single-server queue fed by the unified VBR video model, with either plain
// Monte Carlo or importance-sampling (fast simulation) estimation of the
// buffer-overflow probability P(Q_k > b).
//
// Usage:
//
//	qsim -i trace.csv -util 0.6 -buffer 100 -horizon 1000 -twist 1.6
//	qsim -i trace.csv -util 0.4 -buffer 200 -mc           # plain Monte Carlo
//	qsim -i trace.csv -util 0.2 -buffer 25 -search        # find a good twist
//	qsim -i trace.csv -util 0.6 -buffer 100 -trace-driven # drive the queue with the raw trace
//	qsim -i trace.csv -util 0.7 -buffer 100 -sources 8    # multiplex 8 sources
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"vbrsim/internal/core"
	"vbrsim/internal/hosking"
	"vbrsim/internal/impsample"
	"vbrsim/internal/queue"
	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
}

// run executes the tool; split from main for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("qsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("i", "", "input trace to fit the model on (csv or bin)")
		frameType   = fs.String("type", "I", "frame type the model is fitted on (I recommended)")
		util        = fs.Float64("util", 0.6, "link utilization in (0,1)")
		bufNorm     = fs.Float64("buffer", 100, "normalized buffer size b (units of mean frame size)")
		horizon     = fs.Int("horizon", 0, "stop time k (0 = 10*buffer, the paper's choice)")
		twist       = fs.Float64("twist", 1.6, "IS background mean shift m* (0 = plain MC on the model)")
		reps        = fs.Int("reps", 1000, "replications")
		seed        = fs.Uint64("seed", 1, "seed")
		mc          = fs.Bool("mc", false, "force plain Monte Carlo (twist = 0)")
		search      = fs.Bool("search", false, "sweep twists 0.5..5 and report the normalized-variance valley (Fig. 14)")
		traceDriven = fs.Bool("trace-driven", false, "estimate from the raw trace itself (one long replication)")
		batches     = fs.Int("batches", 0, "with -trace-driven: report a batch-means CI over this many batches")
		sources     = fs.Int("sources", 1, "number of multiplexed sources (plain MC only when > 1)")
		fast        = fs.Bool("fast", false, "use the truncated-AR Hosking fast path (O(p) per step, unbounded horizon); same as synth -backend hosking-fast")
		fastTol     = fs.Float64("fast-tol", 0, "fast-path partial-correlation cutoff (0 = default 1e-3)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -i input trace")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}

	if *traceDriven {
		mean := stats.Mean(tr.Sizes)
		service := mean / *util
		p, err := queue.TraceOverflow(tr.Sizes, service, *bufNorm*mean, 1000)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace-driven steady state: P(Q > %g) = %.3g (log10 %.2f)\n",
			*bufNorm, p, log10(p))
		if *batches > 1 {
			ci, err := queue.TraceOverflowCI(tr.Sizes, service, *bufNorm*mean, 1000, *batches)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "batch means (%d batches): %.3g +/- %.2g (95%%), batch lag-1 corr %.2f\n",
				ci.Batches, ci.P, ci.HalfWidth95, ci.BatchCorr)
			if ci.BatchCorr > 0.3 {
				fmt.Fprintf(stdout, "warning: batches remain correlated (LRD) — the interval understates the true uncertainty\n")
			}
		}
		return nil
	}

	sizes := tr.Sizes
	if *frameType != "" && tr.Types != nil {
		ft, err := trace.ParseFrameType(*frameType)
		if err != nil {
			return err
		}
		if s := tr.ByType(ft); s != nil {
			sizes = s
		}
	}
	m, err := core.Fit(sizes, core.FitOptions{Seed: *seed})
	if err != nil {
		return err
	}
	k := *horizon
	if k <= 0 {
		k = int(10 * *bufNorm)
	}
	var trunc *hosking.Truncated
	if *fast {
		trunc, err = m.TruncatedPlan(k, *fastTol)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fast path: truncated AR(%d), max induced ACF error %.3g\n",
			trunc.Order(), trunc.MaxACFError())
	}
	planLen := k
	if trunc != nil {
		planLen = trunc.Plan().Len() // already cached; avoids a second exact plan
	}
	plan, err := m.Plan(planLen)
	if err != nil {
		return err
	}

	if *sources > 1 {
		// Multiplexed sources: plain MC on the superposed arrival process.
		aggMean := float64(*sources) * m.MeanRate()
		service, err := queue.UtilizationService(aggMean, *util)
		if err != nil {
			return err
		}
		src := queue.Superposition{
			Base: core.ArrivalSource{Plan: plan, Fast: trunc, Transform: m.Transform},
			N:    *sources,
		}
		res, err := queue.EstimateOverflow(src, service, *bufNorm*aggMean, k,
			queue.MCOptions{Replications: *reps, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d multiplexed sources, util %.2f, normalized buffer %g, k = %d:\n",
			*sources, *util, *bufNorm, k)
		fmt.Fprintf(stdout, "  P(Q_k > b) = %.4g  (log10 %.2f), hits %d/%d\n",
			res.P, log10(res.P), res.Hits, res.Replications)
		return nil
	}

	service, err := queue.UtilizationService(m.MeanRate(), *util)
	if err != nil {
		return err
	}
	bufAbs := *bufNorm * m.MeanRate()
	cfg := impsample.Config{
		Plan: plan, FastPlan: trunc, Transform: m.Transform,
		Service: service, Buffer: bufAbs, Horizon: k,
		Twist: *twist, Replications: *reps, Seed: *seed,
	}
	if *mc {
		cfg.Twist = 0
	}

	if *search {
		twists := []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
		results, best, err := impsample.SearchTwist(cfg, twists)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-8s %-12s %-14s %-10s\n", "m*", "P(Q_k>b)", "norm.var", "var.red.")
		for _, r := range results {
			fmt.Fprintf(stdout, "%-8.1f %-12.3g %-14.3g %-10.0f\n",
				r.Twist, r.Result.P, r.Result.NormVar, impsample.VarianceReduction(r.Result))
		}
		if best >= 0 {
			fmt.Fprintf(stdout, "valley at m* = %.1f (paper: 3.2 at util 0.2, b 25)\n", results[best].Twist)
		}
		return nil
	}

	res, err := impsample.Estimate(cfg)
	if err != nil {
		return err
	}
	mode := "importance sampling"
	if cfg.Twist == 0 {
		mode = "plain Monte Carlo"
	}
	fmt.Fprintf(stdout, "%s, util %.2f, normalized buffer %g, k = %d, N = %d:\n",
		strings.ToUpper(mode[:1])+mode[1:], *util, *bufNorm, k, res.Replications)
	fmt.Fprintf(stdout, "  P(Q_k > b) = %.4g  (log10 %.2f)\n", res.P, log10(res.P))
	fmt.Fprintf(stdout, "  std err %.3g, hits %d, normalized variance %.3g\n", res.StdErr, res.Hits, res.NormVar)
	if cfg.Twist != 0 {
		fmt.Fprintf(stdout, "  variance reduction vs plain MC: %.0fx\n", impsample.VarianceReduction(res))
	}
	return nil
}

func log10(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log10(p)
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return trace.ReadBinary(f)
	}
	return trace.ReadCSV(f)
}
