package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vbrsim/internal/mpegtrace"
)

func testTracePath(t *testing.T) string {
	t.Helper()
	tr, err := mpegtrace.Generate(mpegtrace.Config{Frames: 1 << 17, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunIS(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-i", path, "-util", "0.6", "-buffer", "30", "-reps", "200", "-twist", "1.0"},
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"Importance sampling", "P(Q_k > b)", "variance reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlainMC(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-i", path, "-util", "0.8", "-buffer", "20", "-reps", "200", "-mc"},
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Plain Monte Carlo") {
		t.Errorf("MC mode not reported:\n%s", stdout.String())
	}
}

func TestRunTraceDriven(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-i", path, "-util", "0.7", "-buffer", "20", "-trace-driven"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "trace-driven steady state") {
		t.Errorf("trace-driven output missing:\n%s", stdout.String())
	}
}

func TestRunTraceDrivenWithBatches(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-i", path, "-util", "0.7", "-buffer", "20", "-trace-driven", "-batches", "10"},
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "batch means (10 batches)") {
		t.Errorf("batch CI missing:\n%s", stdout.String())
	}
}

func TestRunSearch(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-i", path, "-util", "0.4", "-buffer", "25", "-reps", "100", "-search"},
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "norm.var") {
		t.Errorf("search table missing:\n%s", stdout.String())
	}
}

func TestRunMultiplexed(t *testing.T) {
	path := testTracePath(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-i", path, "-util", "0.8", "-buffer", "20", "-reps", "100", "-sources", "4"},
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "4 multiplexed sources") {
		t.Errorf("multiplexed output missing:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("missing input accepted")
	}
	path := testTracePath(t)
	if err := run([]string{"-i", path, "-util", "1.5", "-buffer", "10"}, &stdout, &stderr); err == nil {
		t.Error("bad utilization accepted")
	}
}

// TestRunObservability exercises the telemetry flags end to end: NDJSON
// convergence snapshots and spans on stderr, a parseable run manifest, a
// non-empty CPU profile — and bit-identical stdout with telemetry off.
func TestRunObservability(t *testing.T) {
	path := testTracePath(t)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.json")
	profile := filepath.Join(dir, "cpu.pprof")

	var plain, plainErr bytes.Buffer
	args := []string{"-i", path, "-util", "0.6", "-buffer", "30", "-reps", "200", "-twist", "1.0"}
	if err := run(args, &plain, &plainErr); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	instrumented := append([]string{}, args...)
	instrumented = append(instrumented,
		"-progress", "-progress-every", "50",
		"-trace-out", "-", "-manifest", manifest, "-cpuprofile", profile)
	if err := run(instrumented, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}

	if stdout.String() != plain.String() {
		t.Errorf("telemetry changed the estimate:\nplain:\n%s\ninstrumented:\n%s",
			plain.String(), stdout.String())
	}
	for _, want := range []string{`"type":"convergence"`, `"estimator":"is"`, `"type":"span"`, `"stage":"impsample.estimate"`} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}

	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Tool   string `json:"tool"`
		Seed   int64  `json:"seed"`
		Stages []struct {
			Stage string `json:"stage"`
		} `json:"stages"`
		Results map[string]any `json:"results"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Tool != "qsim" || m.Seed != 1 {
		t.Errorf("manifest tool/seed = %q/%d", m.Tool, m.Seed)
	}
	stages := map[string]bool{}
	for _, s := range m.Stages {
		stages[s.Stage] = true
	}
	for _, want := range []string{"fit.hurst", "fit.acf", "fit.attenuation", "plan.acquire", "impsample.estimate"} {
		if !stages[want] {
			t.Errorf("manifest missing stage %q (have %v)", want, stages)
		}
	}
	if _, ok := m.Results["p"]; !ok {
		t.Errorf("manifest results missing p: %v", m.Results)
	}

	if fi, err := os.Stat(profile); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}
}
