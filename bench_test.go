// Benchmarks that regenerate every table and figure of the paper (in Quick
// mode so a full -bench=. run completes in minutes), plus ablation benches
// for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package vbrsim

import (
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/benchsuite"
	"vbrsim/internal/daviesharte"
	"vbrsim/internal/experiments"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

// benchLab is shared across benchmarks so the expensive artifacts (traces,
// fitted models) are built once.
var benchLab = experiments.NewLab(experiments.Config{Quick: true, Seed: 2024})

// runExhibit benches one exhibit end to end.
func runExhibit(b *testing.B, id string) {
	b.Helper()
	// Warm the caches outside the timed region.
	if _, err := benchLab.Run(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchLab.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1TraceGen(b *testing.B)        { runExhibit(b, "table1") }
func BenchmarkFig01Histogram(b *testing.B)        { runExhibit(b, "fig1") }
func BenchmarkFig02Transform(b *testing.B)        { runExhibit(b, "fig2") }
func BenchmarkFig03VarianceTime(b *testing.B)     { runExhibit(b, "fig3") }
func BenchmarkFig04RS(b *testing.B)               { runExhibit(b, "fig4") }
func BenchmarkFig05ACF(b *testing.B)              { runExhibit(b, "fig5") }
func BenchmarkFig06ACFFit(b *testing.B)           { runExhibit(b, "fig6") }
func BenchmarkFig07Attenuation(b *testing.B)      { runExhibit(b, "fig7") }
func BenchmarkFig08FinalACF(b *testing.B)         { runExhibit(b, "fig8") }
func BenchmarkFig09to11CompositeACF(b *testing.B) { runExhibit(b, "fig9to11") }
func BenchmarkFig12HistogramCompare(b *testing.B) { runExhibit(b, "fig12") }
func BenchmarkFig13QQ(b *testing.B)               { runExhibit(b, "fig13") }
func BenchmarkFig14TwistSearch(b *testing.B)      { runExhibit(b, "fig14") }
func BenchmarkFig15Transient(b *testing.B)        { runExhibit(b, "fig15") }
func BenchmarkFig16OverflowVsBuffer(b *testing.B) { runExhibit(b, "fig16") }
func BenchmarkFig17ModelComparison(b *testing.B)  { runExhibit(b, "fig17") }

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md Section 5)

// BenchmarkAblationHoskingVsDaviesHarte compares the two exact generators at
// the same path length.
func BenchmarkAblationHoskingVsDaviesHarte(b *testing.B) {
	model := acf.PaperComposite().Continuous()
	const n = 2048
	b.Run("hosking", func(b *testing.B) {
		plan, err := hosking.NewPlan(model, n)
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.Path(r, n)
		}
	})
	b.Run("daviesharte", func(b *testing.B) {
		plan, err := daviesharte.NewPlan(model, n, daviesharte.Options{AllowApprox: true})
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.Path(r)
		}
	})
}

// BenchmarkAblationPlanReuse quantifies the saving from sharing one
// Durbin-Levinson plan across replications instead of rebuilding it.
func BenchmarkAblationPlanReuse(b *testing.B) {
	model := acf.PaperComposite().Continuous()
	const n = 512
	b.Run("shared-plan", func(b *testing.B) {
		plan, err := hosking.NewPlan(model, n)
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.Path(r, n)
		}
	})
	b.Run("rebuild-per-replication", func(b *testing.B) {
		r := rng.New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan, err := hosking.NewPlan(model, n)
			if err != nil {
				b.Fatal(err)
			}
			plan.Path(r, n)
		}
	})
}

// BenchmarkAblationAttenuation measures the ACF error at large lags with
// and without Step-4 compensation, reporting the error as a custom metric.
func BenchmarkAblationAttenuation(b *testing.B) {
	m, err := benchLab.IModel()
	if err != nil {
		b.Fatal(err)
	}
	const pathLen, reps, lag = 600, 10, 150
	measure := func(bg acf.Model) float64 {
		plan, err := hosking.NewPlan(bg, pathLen)
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(7)
		var y0, yk float64
		for rep := 0; rep < reps; rep++ {
			y := m.Transform.ApplySlice(plan.Path(r, pathLen))
			a := stats.AutocovarianceKnownMean(y, m.Marginal.Mean(), lag)
			y0 += a[0]
			yk += a[lag]
		}
		got := yk / y0
		want := m.Foreground.At(lag)
		if got > want {
			return got - want
		}
		return want - got
	}
	b.Run("compensated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(measure(m.Background), "acf-err")
		}
	})
	b.Run("uncompensated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(measure(m.Foreground), "acf-err")
		}
	})
}

// BenchmarkAblationCompositeVsSingle compares the Section-3.3 composite
// (per-type transforms) against a single-transform model of the same GOP
// traffic, reporting the per-type mean error of the single model.
func BenchmarkAblationCompositeVsSingle(b *testing.B) {
	tr, err := benchLab.InterTrace()
	if err != nil {
		b.Fatal(err)
	}
	g, err := benchLab.GOPModel()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("composite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			syn, err := g.Generate(4096, uint64(i), BackendDaviesHarte)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(typeMeanError(tr, syn), "type-mean-err")
		}
	})
	b.Run("single-transform", func(b *testing.B) {
		m, err := Fit(tr.Sizes[:1<<14], FitOptions{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sizes, err := m.Generate(4096, uint64(i), BackendDaviesHarte)
			if err != nil {
				b.Fatal(err)
			}
			syn := &Trace{Sizes: sizes, Types: tr.Types[:4096], GOPLength: tr.GOPLength}
			b.ReportMetric(typeMeanError(tr, syn), "type-mean-err")
		}
	})
}

// ---------------------------------------------------------------------------
// Fast-path ablation benches (DESIGN.md Section 5). The measurement bodies
// live in internal/benchsuite so that cmd/bench reports the exact same
// numbers to BENCH_2.json.

// BenchmarkAblationFlatVsRagged compares path generation through the flat
// single-allocation plan layout against the seed's ragged [][]float64
// layout (bit-identical output, pure memory-layout difference).
func BenchmarkAblationFlatVsRagged(b *testing.B) {
	b.Run("flat", benchsuite.BenchFlatPlanPath)
	b.Run("ragged", benchsuite.BenchRaggedPlanPath)
}

// BenchmarkAblationTruncatedAR compares exact O(n^2) Hosking generation
// against the truncated-AR(p) fast path at paper-overflow scale
// (n = 20000, induced ACF error bounded by 0.02).
func BenchmarkAblationTruncatedAR(b *testing.B) {
	b.Run("exact", benchsuite.BenchExactPath20000)
	b.Run("truncated", benchsuite.BenchTruncatedPath20000)
}

// BenchmarkAblationParallelPlan compares serial and parallel (chunked,
// bit-identical) Durbin-Levinson plan construction.
func BenchmarkAblationParallelPlan(b *testing.B) {
	b.Run("serial", benchsuite.BenchNewPlanSerial)
	b.Run("parallel", benchsuite.BenchNewPlanParallel)
}

// BenchmarkAblationPlanCache compares a cold plan-cache miss (full
// Durbin-Levinson build) against a warm hit (fingerprint + shared plan).
func BenchmarkAblationPlanCache(b *testing.B) {
	b.Run("cold", benchsuite.BenchPlanCacheCold)
	b.Run("warm", benchsuite.BenchPlanCacheWarm)
}

// BenchmarkAblationDHPathEngine walks the Davies-Harte path-generation
// ladder: the allocating reference, the zero-alloc bit-identical PathInto,
// the packed real-FFT PathRealInto, and the seeded Batch engine.
func BenchmarkAblationDHPathEngine(b *testing.B) {
	b.Run("reference", benchsuite.BenchDHPathReference)
	b.Run("into", benchsuite.BenchDHPathInto)
	b.Run("real-into", benchsuite.BenchDHPathRealInto)
	b.Run("batch", benchsuite.BenchDHBatch)
}

// BenchmarkAblationFFTTables compares on-the-fly twiddle recomputation
// against the cached tables (bit-identical), plus the packed real-input
// forward transform.
func BenchmarkAblationFFTTables(b *testing.B) {
	b.Run("reference", benchsuite.BenchFFTForwardReference)
	b.Run("tabled", benchsuite.BenchFFTForwardTabled)
	b.Run("real-forward", benchsuite.BenchFFTRealForward)
}

// BenchmarkAblationTransformLUT compares the exact CDF/quantile transform
// against the precomputed monotone interpolation table.
func BenchmarkAblationTransformLUT(b *testing.B) {
	b.Run("exact", benchsuite.BenchTransformApplyExact)
	b.Run("lut", benchsuite.BenchTransformApplyLUT)
}

// typeMeanError sums the relative per-frame-type mean errors between traces.
func typeMeanError(ref, syn *Trace) float64 {
	var total float64
	for _, ft := range []FrameType{FrameI, FrameP, FrameB} {
		want := stats.Mean(ref.ByType(ft))
		got := stats.Mean(syn.ByType(ft))
		if want > 0 {
			d := (got - want) / want
			if d < 0 {
				d = -d
			}
			total += d
		}
	}
	return total
}
