// Package vbrsim is a Go implementation of "Modeling and Simulation of
// Self-Similar Variable Bit Rate Compressed Video: A Unified Approach"
// (Huang, Devetsikiotis, Lambadaris, Kaye — ACM SIGCOMM 1995).
//
// The library models VBR compressed video traffic so that a synthetic
// source matches an empirical trace in BOTH its marginal distribution and
// its full autocorrelation structure — the short-range (exponential) part
// below the ACF "knee" and the long-range (power-law, self-similar) part
// beyond it — and then uses importance sampling on the Gaussian background
// process to estimate rare buffer-overflow probabilities in an ATM
// multiplexer model quickly.
//
// # Quick start
//
//	tr, _ := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 17, Seed: 1})
//	model, _ := vbrsim.Fit(tr.ByType(vbrsim.FrameI), vbrsim.FitOptions{})
//	synthetic, _ := model.Generate(10000, 42, vbrsim.BackendAuto)
//
// The exported names are thin aliases over the implementation packages; see
// DESIGN.md for the module map and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure.
package vbrsim

import (
	"context"

	"vbrsim/internal/acf"
	"vbrsim/internal/admission"
	"vbrsim/internal/baseline"
	"vbrsim/internal/core"
	"vbrsim/internal/daviesharte"
	"vbrsim/internal/dist"
	"vbrsim/internal/experiments"
	"vbrsim/internal/farima"
	"vbrsim/internal/hosking"
	"vbrsim/internal/hurst"
	"vbrsim/internal/impsample"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/mpegtrace"
	"vbrsim/internal/norros"
	"vbrsim/internal/queue"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
	"vbrsim/internal/tes"
	"vbrsim/internal/trace"
	"vbrsim/internal/transform"
	"vbrsim/internal/trunk"
)

// Modeling pipeline (paper Section 3).
type (
	// Model is the fitted unified model for a single frame-size process.
	Model = core.Model
	// GOPModel is the composite interframe (I-B-P) model of Section 3.3.
	GOPModel = core.GOPModel
	// FitOptions tunes the fitting pipeline.
	FitOptions = core.FitOptions
	// Backend selects the Gaussian background generator.
	Backend = core.Backend
	// ACFComposite is the composite knee autocorrelation model (eqs. 10-12).
	ACFComposite = acf.Composite
	// Transform is the histogram-inversion marginal transform h (eq. 7).
	Transform = transform.T
)

// Background generation backends.
const (
	BackendAuto        = core.BackendAuto
	BackendHosking     = core.BackendHosking
	BackendDaviesHarte = core.BackendDaviesHarte
	// BackendHoskingFast generates through a truncated-AR approximation of
	// the exact Hosking recursion: O(p) per step instead of O(k), with a
	// small, reported ACF error.
	BackendHoskingFast = core.BackendHoskingFast
)

// FastPlan is a truncated-AR(p) approximation of an exact Hosking plan:
// constant work and memory per generated step, unbounded horizon.
type FastPlan = hosking.Truncated

// TruncateOptions controls how an exact plan is frozen into a FastPlan.
type TruncateOptions = hosking.TruncateOptions

// PlanCacheStats is a snapshot of the shared plan cache's counters (the
// same figures trafficd exports as vbrsim_plan_cache_* metrics).
type PlanCacheStats = hosking.CacheStats

// SharedPlanCacheStats reports the process-wide plan cache's hit, miss,
// eviction, and singleflight-wait counts.
func SharedPlanCacheStats() PlanCacheStats { return hosking.Shared.Stats() }

// Fit runs the paper's Steps 1-4 on a bytes-per-frame record.
func Fit(sizes []float64, opt FitOptions) (*Model, error) { return core.Fit(sizes, opt) }

// FitGOP fits the composite I-B-P model to a typed trace.
func FitGOP(tr *Trace, opt FitOptions) (*GOPModel, error) { return core.FitGOP(tr, opt) }

// Traces.
type (
	// Trace is a frame-size trace with I/P/B annotations.
	Trace = trace.Trace
	// TraceSummary is the Table-1 style statistics of a trace.
	TraceSummary = trace.Summary
	// FrameType is an MPEG frame coding mode.
	FrameType = trace.FrameType
	// MPEGTraceConfig parameterizes the synthetic MPEG-1 VBR source that
	// substitutes for the paper's proprietary movie trace.
	MPEGTraceConfig = mpegtrace.Config
)

// MPEG frame types.
const (
	FrameI = trace.FrameI
	FrameP = trace.FrameP
	FrameB = trace.FrameB
)

// GenerateMPEGTrace produces a synthetic empirical-style MPEG-1 VBR trace.
func GenerateMPEGTrace(cfg MPEGTraceConfig) (*Trace, error) { return mpegtrace.Generate(cfg) }

// Hurst estimation (paper Step 1).
type (
	// HurstEstimate is one estimator's result with its plot points.
	HurstEstimate = hurst.Estimate
	// VarianceTimeOptions tunes the variance-time estimator.
	VarianceTimeOptions = hurst.VarianceTimeOptions
	// RSOptions tunes the R/S (pox) estimator.
	RSOptions = hurst.RSOptions
)

// EstimateHurstVT estimates the Hurst parameter by variance-time analysis.
func EstimateHurstVT(x []float64, opt VarianceTimeOptions) (HurstEstimate, error) {
	return hurst.VarianceTime(x, opt)
}

// EstimateHurstRS estimates the Hurst parameter by R/S (pox) analysis.
func EstimateHurstRS(x []float64, opt RSOptions) (HurstEstimate, error) {
	return hurst.RS(x, opt)
}

// EstimateHurst combines the two paper estimators (average of VT and R/S).
func EstimateHurst(x []float64) (h float64, vt, rs HurstEstimate, err error) {
	return hurst.Combined(x)
}

// LocalWhittleOptions tunes the semiparametric Whittle estimator.
type LocalWhittleOptions = hurst.LocalWhittleOptions

// EstimateHurstWhittle estimates H by local Whittle likelihood (Robinson
// 1995), a likelihood-based cross-check for the paper's two graphical
// estimators.
func EstimateHurstWhittle(x []float64, opt LocalWhittleOptions) (HurstEstimate, error) {
	return hurst.LocalWhittle(x, opt)
}

// Queueing and fast simulation (paper Section 4, Appendix B).
type (
	// QueueResult is a Monte-Carlo or IS estimate with uncertainty.
	QueueResult = queue.Result
	// MCOptions controls plain Monte-Carlo estimation.
	MCOptions = queue.MCOptions
	// PathSource yields replication arrival paths.
	PathSource = queue.PathSource
	// PathSourceFunc adapts a function to PathSource.
	PathSourceFunc = queue.PathSourceFunc
	// ISConfig parameterizes importance-sampling estimation.
	ISConfig = impsample.Config
	// ISMode selects the crossing or Lindley estimator.
	ISMode = impsample.Mode
	// ArrivalSource adapts a fitted model to PathSource.
	ArrivalSource = core.ArrivalSource
)

// Importance-sampling estimator modes.
const (
	ISModeCrossing = impsample.ModeCrossing
	ISModeLindley  = impsample.ModeLindley
)

// LindleyEvolve runs the slotted queue recursion (eq. 16).
func LindleyEvolve(q0 float64, arrivals []float64, service float64) []float64 {
	return queue.Evolve(q0, arrivals, service)
}

// EstimateOverflowMC estimates P(Q_k > b) by plain Monte Carlo.
func EstimateOverflowMC(src PathSource, service, b float64, k int, opt MCOptions) (QueueResult, error) {
	return queue.EstimateOverflow(src, service, b, k, opt)
}

// EstimateOverflowIS estimates P(Q_k > b) by importance sampling on the
// twisted background process.
func EstimateOverflowIS(cfg ISConfig) (QueueResult, error) { return impsample.Estimate(cfg) }

// EstimateTransientIS estimates P(Q_k > b) at several checkpoints in one
// pass per replication.
func EstimateTransientIS(cfg ISConfig, checkpoints []int) ([]QueueResult, error) {
	return impsample.EstimateTransient(cfg, checkpoints)
}

// SearchTwist sweeps candidate twists and locates the normalized-variance
// valley (the paper's Fig. 14 heuristic).
func SearchTwist(cfg ISConfig, twists []float64) ([]impsample.TwistSearchResult, int, error) {
	return impsample.SearchTwist(cfg, twists)
}

// VarianceReduction reports how much an IS result beats plain Monte Carlo.
func VarianceReduction(res QueueResult) float64 { return impsample.VarianceReduction(res) }

// ServiceForUtilization returns the service rate giving the target
// utilization for the given mean arrival rate.
func ServiceForUtilization(meanArrival, utilization float64) (float64, error) {
	return queue.UtilizationService(meanArrival, utilization)
}

// Baselines (traditional models and Fig.-17 variants).
type (
	// DAR1 is the discrete autoregressive baseline source.
	DAR1 = baseline.DAR1
	// MMPP2 is the two-state Markov-modulated Poisson baseline source.
	MMPP2 = baseline.MMPP2
	// TESConfig parameterizes a TES (Transform-Expand-Sample) process, the
	// prior marginal+ACF matching technique the paper extends.
	TESConfig = tes.Config
	// TESGenerator produces one TES sample path.
	TESGenerator = tes.Generator
	// TESSource adapts a TES configuration to PathSource.
	TESSource = tes.Source
)

// NewTES builds a TES generator.
func NewTES(cfg TESConfig, r *rng.Source) (*TESGenerator, error) { return tes.New(cfg, r) }

// TESCalibrateAlpha returns the TES innovation width whose background lag-1
// autocorrelation matches rho.
func TESCalibrateAlpha(rho float64) (float64, error) { return tes.CalibrateAlpha(rho) }

// ATM adaptation and multiplexing.

// ATMCellPayload is the usable payload of one ATM cell in bytes.
const ATMCellPayload = queue.ATMCellPayload

// Superposition multiplexes N independent copies of a source.
type Superposition = queue.Superposition

// Trunk superposition (internal/trunk): N heterogeneous sources summed
// into one aggregate arrival process with derived per-source seeds.
type (
	// TrunkSpec is the serializable trunk: weighted component model specs
	// plus an optional shared marginal. trafficd serves these as trunk
	// sessions; OpenTrunk materializes them in process.
	TrunkSpec = modelspec.TrunkSpec
	// TrunkSpecComponent is one weighted component group in a TrunkSpec.
	TrunkSpecComponent = modelspec.TrunkComponent
	// Trunk is an open superposition stream (Fill/Seek/Reseed).
	Trunk = trunk.Trunk
	// TrunkOptions tunes trunk construction.
	TrunkOptions = trunk.Options
	// TrunkAggregate superposes weighted PathSource components in the exact
	// draw order of Superposition, so ports from hand-rolled superposition
	// are bit-identical. It drops into every queue estimator.
	TrunkAggregate = trunk.Aggregate
	// TrunkComponent is one weighted group in a TrunkAggregate.
	TrunkComponent = trunk.Component
)

// OpenTrunk materializes a trunk spec into an aggregate stream.
func OpenTrunk(ctx context.Context, spec *TrunkSpec, opt TrunkOptions) (*Trunk, error) {
	return trunk.Open(ctx, spec, opt)
}

// TrunkSourceSeed derives the seed of flattened source ordinal s of a trunk
// keyed by trunkSeed (the trafficd session-seed mix).
func TrunkSourceSeed(trunkSeed uint64, ordinal int) uint64 {
	return trunk.SourceSeed(trunkSeed, ordinal)
}

// SegmentIntoCells converts bytes-per-frame into cells-per-slot with
// optional frame spreading.
func SegmentIntoCells(frameBytes []float64, payload, slotsPerFrame int) ([]float64, error) {
	return queue.SegmentIntoCells(frameBytes, payload, slotsPerFrame)
}

// Parametric marginal fitting (the Garrett-Willinger route).
type (
	// GammaPareto is the hybrid Gamma-body/Pareto-tail marginal.
	GammaPareto = dist.GammaPareto
	// FitGammaOptions tunes FitGammaPareto.
	FitGammaOptions = dist.FitGammaOptions
)

// FitGammaPareto fits the hybrid Gamma/Pareto marginal to a sample.
func FitGammaPareto(sample []float64, opt FitGammaOptions) (*GammaPareto, error) {
	return dist.FitGammaPareto(sample, opt)
}

// HillTailIndex estimates a Pareto tail index from the top-k order
// statistics.
func HillTailIndex(sample []float64, k int) (float64, error) {
	return dist.HillTailIndex(sample, k)
}

// Model refinement (the paper's "automatic search" future work).
type (
	// RefineOptions controls Model.Refine.
	RefineOptions = core.RefineOptions
	// RefineResult reports the refinement trajectory.
	RefineResult = core.RefineResult
)

// Analytic storage model (Norros, the paper's ref. [23]).

// NorrosParams describes fractional-Brownian traffic for the closed-form
// overflow approximation.
type NorrosParams = norros.Params

// NorrosFromModel derives fractional-Brownian parameters from a fitted
// unified model and the marginal variance of the trace it was fitted on.
func NorrosFromModel(m *Model, marginalVariance float64) (NorrosParams, error) {
	return norros.FromComposite(m.Marginal, marginalVariance, m.Foreground)
}

// Connection admission control built on the fBm effective bandwidth.
type (
	// AdmissionLink describes the multiplexer being provisioned.
	AdmissionLink = admission.Link
)

// MaxAdmissibleSources returns how many homogeneous video sources the link
// carries within its loss target (Norros effective bandwidth).
func MaxAdmissibleSources(src NorrosParams, l AdmissionLink) (int, error) {
	return admission.MaxSources(src, l)
}

// MarkovianMaxSources is the SRD strawman admission decision (H -> 1/2),
// for quantifying how much LRD-aware control must back off.
func MarkovianMaxSources(src NorrosParams, l AdmissionLink) (int, error) {
	return admission.MarkovianMaxSources(src, l)
}

// Full FARIMA (the alternative the paper contrasts with).

// FARIMA is the FARIMA(1,d,1) family with exact ACF and generation.
type FARIMA = farima.Full

// NewFARIMA builds a FARIMA(phi, d, theta) model.
func NewFARIMA(phi, d, theta float64) (*FARIMA, error) { return farima.NewFull(phi, d, theta) }

// FitFARIMAOptions controls FitFARIMA.
type FitFARIMAOptions = farima.FitFullOptions

// FitFARIMA fits FARIMA(1,d,1) coefficients to an empirical ACF by grid
// search with d fixed.
func FitFARIMA(empiricalACF []float64, opt FitFARIMAOptions) (*FARIMA, float64, error) {
	return farima.FitFull(empiricalACF, opt)
}

// Single-trace uncertainty and marginal distance.

// BatchResult is a batch-means estimate with its (nominal) uncertainty and
// the batch-mean correlation that reveals LRD-induced optimism.
type BatchResult = queue.BatchResult

// TraceOverflowCI estimates steady-state P(Q > b) from one long trace with
// batch-means confidence intervals.
func TraceOverflowCI(arrivals []float64, service, b float64, warmup, batches int) (BatchResult, error) {
	return queue.TraceOverflowCI(arrivals, service, b, warmup, batches)
}

// KolmogorovSmirnov returns the two-sample KS statistic between samples.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	return stats.KolmogorovSmirnov(a, b)
}

// Slice-level traces.

// SliceOptions controls frame-to-slice decomposition.
type SliceOptions = mpegtrace.SliceOptions

// ToSlices converts a frame-level trace to slice level (Table 1: 15 slices
// per frame), conserving per-frame byte totals exactly.
func ToSlices(tr *Trace, opt SliceOptions) (*Trace, error) { return mpegtrace.ToSlices(tr, opt) }

// Experiments (every paper table and figure).
type (
	// Lab regenerates the paper's exhibits.
	Lab = experiments.Lab
	// LabConfig scales the experiment suite.
	LabConfig = experiments.Config
	// ExperimentResult is one regenerated exhibit.
	ExperimentResult = experiments.Result
)

// NewLab creates an experiment lab.
func NewLab(cfg LabConfig) *Lab { return experiments.NewLab(cfg) }

// Self-similar process generation.

// GenerateFGN returns an exact sample path of fractional Gaussian noise
// with Hurst parameter h in (0,1), zero mean and unit variance, generated
// by circulant embedding in O(n log n).
func GenerateFGN(h float64, n int, seed uint64) ([]float64, error) {
	plan, err := daviesharte.NewPlan(acf.FGN{H: h}, n, daviesharte.Options{AllowApprox: true})
	if err != nil {
		return nil, err
	}
	return plan.Path(rng.New(seed)), nil
}

// GenerateFARIMA returns an exact sample path of the fractional
// ARIMA(0,d,0) process (d in (-1/2, 1/2); H = d + 1/2), zero mean and unit
// variance.
func GenerateFARIMA(d float64, n int, seed uint64) ([]float64, error) {
	model := farima.ACF{D: d}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	plan, err := daviesharte.NewPlan(model, n, daviesharte.Options{AllowApprox: true})
	if err != nil {
		return nil, err
	}
	return plan.Path(rng.New(seed)), nil
}

// Randomness.

// Rand is the library's deterministic random source (xoshiro256++).
type Rand = rng.Source

// NewRand returns the library's deterministic random source.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Distributions usable as foreground marginals.
type (
	// Distribution is a univariate marginal law.
	Distribution = dist.Distribution
	// Empirical is the histogram-inversion marginal the paper uses.
	Empirical = dist.Empirical
)

// NewEmpirical builds an empirical marginal from a sample.
func NewEmpirical(sample []float64) (*Empirical, error) { return dist.NewEmpirical(sample) }

// NewTransform builds the h transform onto the given marginal (eq. 7).
func NewTransform(target Distribution) Transform { return transform.New(target) }
