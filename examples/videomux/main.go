// Videomux: dimension the buffer of an ATM multiplexer carrying VBR video.
//
// This is the workload the paper's introduction motivates: a network
// designer must pick a multiplexer buffer size so that the cell-loss
// probability stays below a target. The example fits the unified model to a
// video trace, then sweeps buffer sizes at several utilizations and reports
// the overflow probability for each — the paper's Fig. 16 as an engineering
// tool.
//
//	go run ./examples/videomux
package main

import (
	"fmt"
	"log"
	"math"

	"vbrsim"
)

func main() {
	tr, err := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 17, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	model, err := vbrsim.Fit(tr.ByType(vbrsim.FrameI), vbrsim.FitOptions{Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video source: mean %.0f bytes/frame, H = %.2f\n\n", model.MeanRate(), model.H)

	buffers := []float64{25, 50, 100, 200} // normalized to mean frame size
	utils := []float64{0.4, 0.6, 0.8}
	const lossTarget = 1e-3

	maxHorizon := int(10 * buffers[len(buffers)-1])
	plan, err := model.Plan(maxHorizon)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s", "buffer b")
	for _, u := range utils {
		fmt.Printf("util %.1f      ", u)
	}
	fmt.Println()
	recommended := map[float64]float64{}
	for _, b := range buffers {
		fmt.Printf("%-12.0f", b)
		for _, u := range utils {
			service, err := vbrsim.ServiceForUtilization(model.MeanRate(), u)
			if err != nil {
				log.Fatal(err)
			}
			res, err := vbrsim.EstimateOverflowIS(vbrsim.ISConfig{
				Plan:         plan,
				Transform:    model.Transform,
				Service:      service,
				Buffer:       b * model.MeanRate(),
				Horizon:      int(10 * b),
				Twist:        2.0 * (1 - u), // heavier twist for rarer events
				Replications: 800,
				Seed:         uint64(b) + uint64(u*100),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s", formatP(res.P))
			if _, ok := recommended[u]; !ok && res.P > 0 && res.P < lossTarget {
				recommended[u] = b
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nsmallest buffer meeting P(loss) < %.0e:\n", lossTarget)
	for _, u := range utils {
		if b, ok := recommended[u]; ok {
			fmt.Printf("  utilization %.1f: b = %.0f mean-frame units\n", u, b)
		} else {
			fmt.Printf("  utilization %.1f: none in the swept range\n", u)
		}
	}
	fmt.Println("\nnote: with LRD video traffic the loss decays only polynomially in b —")
	fmt.Println("doubling the buffer buys far less than Markovian models predict (Fig. 17).")

	// Shared multiplexer: instead of giving each of N sources its own
	// dedicated multiplexer (the single-source sweep above), route all N
	// through one trunk with N times the capacity and N times the buffer.
	// The trunk aggregate is the superposition engine behind trafficd's
	// trunk sessions; here it feeds the same Monte-Carlo estimator.
	const (
		nTrunk     = 8
		trunkUtil  = 0.6
		trunkBuf   = 50.0 // per-source allocation, mean-frame units
		trunkHoriz = 400
		trunkReps  = 4000
	)
	single := vbrsim.ArrivalSource{Plan: plan, Transform: model.Transform}
	service, err := vbrsim.ServiceForUtilization(model.MeanRate(), trunkUtil)
	if err != nil {
		log.Fatal(err)
	}
	dedicated, err := vbrsim.EstimateOverflowMC(single, service, trunkBuf*model.MeanRate(),
		trunkHoriz, vbrsim.MCOptions{Replications: trunkReps, Seed: 900})
	if err != nil {
		log.Fatal(err)
	}
	shared := vbrsim.TrunkAggregate{Components: []vbrsim.TrunkComponent{
		{Source: single, Count: nTrunk},
	}}
	pooled, err := vbrsim.EstimateOverflowMC(shared, float64(nTrunk)*service,
		float64(nTrunk)*trunkBuf*model.MeanRate(), trunkHoriz,
		vbrsim.MCOptions{Replications: trunkReps, Seed: 900})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared multiplexer (trunk of %d sources, util %.1f, b = %.0f per source):\n",
		nTrunk, trunkUtil, trunkBuf)
	fmt.Printf("  dedicated per-source multiplexer: P(loss) = %s\n", formatP(dedicated.P))
	fmt.Printf("  one shared trunk multiplexer:     P(loss) = %s\n", formatP(pooled.P))
	fmt.Println("pooling the buffer and capacity across sources absorbs bursts the")
	fmt.Println("dedicated design drops — the multiplexing gain the paper opens with.")
}

func formatP(p float64) string {
	if p <= 0 {
		return "<1e-12"
	}
	return fmt.Sprintf("%.1e(%.1f)", p, math.Log10(p))
}
