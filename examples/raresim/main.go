// Raresim: estimate a rare buffer-overflow probability fast.
//
// Plain Monte Carlo needs on the order of 100/P replications to pin down a
// probability P — hopeless when P ~ 1e-6 and each replication requires an
// O(k^2) Hosking path. This example reproduces the paper's Appendix-B
// recipe: twist the background process mean, re-weight by the likelihood
// ratio, and compare the work both estimators need for the same accuracy.
//
//	go run ./examples/raresim
package main

import (
	"fmt"
	"log"

	"vbrsim"
)

func main() {
	tr, err := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 17, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	model, err := vbrsim.Fit(tr.ByType(vbrsim.FrameI), vbrsim.FitOptions{Seed: 22})
	if err != nil {
		log.Fatal(err)
	}

	const (
		util    = 0.3
		bufNorm = 150.0
		horizon = 1000
		reps    = 1000
	)
	service, err := vbrsim.ServiceForUtilization(model.MeanRate(), util)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := model.Plan(horizon)
	if err != nil {
		log.Fatal(err)
	}
	base := vbrsim.ISConfig{
		Plan:         plan,
		Transform:    model.Transform,
		Service:      service,
		Buffer:       bufNorm * model.MeanRate(),
		Horizon:      horizon,
		Replications: reps,
		Seed:         23,
	}

	// Step 1: find a favorable twist by locating the normalized-variance
	// valley (the paper's Fig. 14 heuristic), on a reduced budget.
	searchCfg := base
	searchCfg.Replications = 300
	candidates := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4}
	results, best, err := vbrsim.SearchTwist(searchCfg, candidates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("twist search (normalized variance valley):")
	fmt.Printf("  %-6s %-12s %-12s\n", "m*", "P estimate", "norm.var")
	for _, r := range results {
		fmt.Printf("  %-6.1f %-12.3g %-12.3g\n", r.Twist, r.Result.P, r.Result.NormVar)
	}
	if best < 0 {
		log.Fatal("no twist produced a finite-variance estimate; event too rare for the search budget")
	}
	mStar := results[best].Twist
	fmt.Printf("  -> valley at m* = %.1f (paper found 3.2 for its setting)\n\n", mStar)

	// Step 2: the production estimate with the chosen twist.
	cfg := base
	cfg.Twist = mStar
	is, err := vbrsim.EstimateOverflowIS(cfg)
	if err != nil {
		log.Fatal(err)
	}
	vr := vbrsim.VarianceReduction(is)
	fmt.Printf("importance sampling (N = %d):\n", reps)
	fmt.Printf("  P(Q_%d > %.0f·mean) = %.3g  (std err %.2g, %d hits)\n",
		horizon, bufNorm, is.P, is.StdErr, is.Hits)
	fmt.Printf("  variance reduction vs plain MC: %.0fx\n", vr)
	if is.P > 0 {
		needMC := 100 / is.P
		fmt.Printf("  plain MC would need ~%.0f replications for ~100 hits;\n", needMC)
		fmt.Printf("  IS needed %d — a %.0fx saving in simulated paths.\n",
			reps, needMC/float64(reps))
	}

	// Step 3: sanity-check unbiasedness on a non-rare event, where plain MC
	// is feasible: the two estimators must agree.
	easy := base
	easy.Buffer = 10 * model.MeanRate()
	easy.Horizon = 200
	mc := easy
	mc.Twist = 0
	mcRes, err := vbrsim.EstimateOverflowIS(mc)
	if err != nil {
		log.Fatal(err)
	}
	easy.Twist = 1.0
	easy.Seed = 24
	isRes, err := vbrsim.EstimateOverflowIS(easy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunbiasedness check on a common event:\n")
	fmt.Printf("  plain MC: %.4g +/- %.2g   IS(m*=1): %.4g +/- %.2g\n",
		mcRes.P, mcRes.StdErr, isRes.P, isRes.StdErr)
}
