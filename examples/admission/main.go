// Admission: how many VBR video connections fit on a link?
//
// The operational question behind the paper: a multiplexer with capacity C
// and buffer B must keep P(overflow) below a target. This example runs the
// whole stack — fit the unified model to a trace, derive fractional-
// Brownian parameters, compute the LRD-aware admission limit, compare it
// with the Markovian (H=1/2) decision, and verify the admitted load by
// simulating the superposed sources through the queue.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"vbrsim"
)

func main() {
	// 1. Model one video source from its trace.
	tr, err := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 17, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	iSizes := tr.ByType(vbrsim.FrameI)
	model, err := vbrsim.Fit(iSizes, vbrsim.FitOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	var variance float64
	mean := model.MeanRate()
	for _, v := range iSizes {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(iSizes))
	src, err := vbrsim.NorrosFromModel(model, variance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-source fBm parameters: m = %.0f bytes/frame, H = %.2f\n\n", src.MeanRate, src.H)

	// 2. Admission limits for a range of buffer depths.
	capacity := 40 * src.MeanRate // a link fitting ~40 mean-rate sources
	const lossTarget = 1e-4
	fmt.Printf("link: capacity %.0f bytes/frame-time, loss target %.0e\n\n", capacity, lossTarget)
	fmt.Printf("%-16s %-14s %-16s %-10s\n", "buffer (frames)", "LRD admits", "Markovian admits", "back-off")
	var lastLink vbrsim.AdmissionLink
	var lastN int
	for _, bufFrames := range []float64{10, 50, 200, 1000} {
		link := vbrsim.AdmissionLink{
			Capacity:   capacity,
			Buffer:     bufFrames * src.MeanRate,
			LossTarget: lossTarget,
		}
		lrd, err := vbrsim.MaxAdmissibleSources(src, link)
		if err != nil {
			log.Fatal(err)
		}
		markov, err := vbrsim.MarkovianMaxSources(src, link)
		if err != nil {
			log.Fatal(err)
		}
		backoff := "-"
		if markov > 0 {
			backoff = fmt.Sprintf("%.0f%%", 100*float64(markov-lrd)/float64(markov))
		}
		fmt.Printf("%-16.0f %-14d %-16d %-10s\n", bufFrames, lrd, markov, backoff)
		lastLink, lastN = link, lrd
	}

	// 3. Verify the deepest-buffer decision by simulation: superpose the
	// admitted sources and measure the overflow probability.
	if lastN < 1 {
		fmt.Println("\nnothing admitted at the last link; skipping verification")
		return
	}
	const horizon = 600
	plan, err := model.Plan(horizon)
	if err != nil {
		log.Fatal(err)
	}
	super := vbrsim.Superposition{
		Base: vbrsim.ArrivalSource{Plan: plan, Transform: model.Transform},
		N:    lastN,
	}
	res, err := vbrsim.EstimateOverflowMC(super, lastLink.Capacity, lastLink.Buffer, horizon,
		vbrsim.MCOptions{Replications: 1500, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverification at buffer %.0f frames with %d sources admitted:\n",
		lastLink.Buffer/src.MeanRate, lastN)
	if res.Hits == 0 {
		fmt.Printf("  simulated overflow: 0/%d replications (< %.1e) — target %.0e respected\n",
			res.Replications, 1/float64(res.Replications), lossTarget)
	} else {
		fmt.Printf("  simulated overflow: %.2e (target %.0e)\n", res.P, lossTarget)
	}
	fmt.Println("\nreading: at deep buffers the Markovian controller admits far more")
	fmt.Println("connections than self-similar traffic can actually support — the")
	fmt.Println("admission-control consequence of the paper's Fig. 17.")
}
