// Hurstlab: compare Hurst-parameter estimators across known processes.
//
// The paper's Step 1 rests on two estimators (variance-time and R/S)
// agreeing on the empirical trace. This example calibrates that trust: it
// generates processes with KNOWN Hurst parameters — exact fractional
// Gaussian noise, FARIMA(0,d,0), the synthetic MPEG source — plus a
// short-range AR(1) impostor, and shows what each estimator reports.
//
//	go run ./examples/hurstlab
package main

import (
	"fmt"
	"log"
	"math"

	"vbrsim"
)

func main() {
	const n = 1 << 17
	fmt.Printf("%-28s %-8s %-8s %-8s %-8s\n", "process", "true H", "VT", "R/S", "avg")

	// Exact fractional Gaussian noise at three Hurst values.
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x, err := vbrsim.GenerateFGN(h, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("fGn H=%.2f", h), h, x)
	}

	// FARIMA(0,d,0): H = d + 1/2.
	for _, d := range []float64{0.2, 0.4} {
		x, err := vbrsim.GenerateFARIMA(d, n, 2)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("FARIMA(0,%.1f,0)", d), d+0.5, x)
	}

	// The synthetic MPEG source: scene-length tail alpha=1.2 targets H=0.9.
	cfg := vbrsim.MPEGTraceConfig{Frames: n, Seed: 3}
	tr, err := vbrsim.GenerateMPEGTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("MPEG source (alpha=1.2)", cfg.TargetHurst(), tr.Sizes)

	// A nonlinearly transformed fGn: Appendix A says H is invariant under
	// the marginal transform; verify by pushing fGn through a lognormal.
	x, err := vbrsim.GenerateFGN(0.85, n, 5)
	if err != nil {
		log.Fatal(err)
	}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(0.7 * v) // lognormal marginal
	}
	report("lognormal(fGn H=0.85)", 0.85, y)

	// An SRD impostor: AR(1) with strong short-range correlation. A naive
	// look at acf[1] would call it "bursty"; the estimators must report
	// H ~ 0.5 (no long-range dependence).
	report("AR(1) phi=0.9 (SRD)", 0.5, ar1Path(0.9, n, 4))

	fmt.Println("\nreading: VT and R/S should bracket the true H for LRD processes,")
	fmt.Println("survive nonlinear marginal transforms (Appendix A), and collapse to")
	fmt.Println("~0.5 for the AR(1) impostor — short-lag burstiness is not self-similarity.")
}

// report runs both paper estimators on x and prints one table row.
func report(name string, trueH float64, x []float64) {
	h, vt, rs, err := vbrsim.EstimateHurst(x)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-28s %-8.2f %-8.3f %-8.3f %-8.3f\n", name, trueH, vt.H, rs.H, h)
}

// ar1Path generates a strongly correlated but short-range dependent process.
func ar1Path(phi float64, n int, seed uint64) []float64 {
	r := vbrsim.NewRand(seed)
	out := make([]float64, n)
	scale := math.Sqrt(1 - phi*phi)
	for i := 1; i < n; i++ {
		out[i] = phi*out[i-1] + scale*r.Norm()
	}
	return out
}
