// Multiplexgain: quantify the statistical multiplexing gain of VBR video.
//
// The paper's introduction motivates VBR transmission by the efficiency of
// statistically multiplexing bursty sources. This example makes that
// concrete: N independent synthetic video sources (fitted with the unified
// model) feed one ATM multiplexer whose capacity and buffer scale with N at
// fixed per-source utilization. As N grows the aggregate smooths and the
// overflow probability falls — the multiplexing gain — but long-range
// dependence limits how much smoothing aggregation can buy.
//
// It also demonstrates ATM segmentation: frame bytes are packed into
// 48-byte-payload cells and spread over the slots of a frame time.
//
//	go run ./examples/multiplexgain
package main

import (
	"fmt"
	"log"
	"math"

	"vbrsim"
)

func main() {
	tr, err := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 17, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	model, err := vbrsim.Fit(tr.ByType(vbrsim.FrameI), vbrsim.FitOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-source: mean %.0f bytes/frame, H = %.2f\n", model.MeanRate(), model.H)

	// Cell view of one source (15 slice-slots per frame, as in Table 1).
	cells, err := vbrsim.SegmentIntoCells(tr.Sizes[:3000], vbrsim.ATMCellPayload, 15)
	if err != nil {
		log.Fatal(err)
	}
	var peak, sum float64
	for _, c := range cells {
		sum += c
		if c > peak {
			peak = c
		}
	}
	meanCells := sum / float64(len(cells))
	fmt.Printf("cell level: mean %.1f cells/slot, peak %.0f (peak/mean %.1f) with frame spreading\n\n",
		meanCells, peak, peak/meanCells)

	const (
		util    = 0.7
		bufNorm = 40.0 // per-source buffer allocation, mean-frame units
		horizon = 400
		reps    = 2000
	)
	plan, err := model.Plan(horizon)
	if err != nil {
		log.Fatal(err)
	}
	single := vbrsim.ArrivalSource{Plan: plan, Transform: model.Transform}

	fmt.Printf("%-10s %-14s %-16s\n", "sources N", "P(overflow)", "gain vs N=1")
	var pSingle float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		src := vbrsim.PathSource(single)
		if n > 1 {
			// The trunk aggregate draws one split rng per replica in the
			// same order Superposition did, so the numbers below are
			// bit-identical to the hand-rolled version this replaced.
			src = vbrsim.TrunkAggregate{Components: []vbrsim.TrunkComponent{
				{Source: single, Count: n},
			}}
		}
		service, err := vbrsim.ServiceForUtilization(float64(n)*model.MeanRate(), util)
		if err != nil {
			log.Fatal(err)
		}
		res, err := vbrsim.EstimateOverflowMC(src, service, float64(n)*bufNorm*model.MeanRate(), horizon,
			vbrsim.MCOptions{Replications: reps, Seed: uint64(100 + n)})
		if err != nil {
			log.Fatal(err)
		}
		gain := "-"
		if n == 1 {
			pSingle = res.P
		} else if res.P > 0 && pSingle > 0 {
			gain = fmt.Sprintf("%.1fx", pSingle/res.P)
		} else if res.P == 0 {
			gain = fmt.Sprintf(">%.0fx", pSingle*float64(reps))
		}
		fmt.Printf("%-10d %-14s %-16s\n", n, formatP(res.P), gain)
	}
	fmt.Println("\nreading: the gain grows with N but sub-linearly — the shared")
	fmt.Println("long-range component of self-similar sources does not average out,")
	fmt.Println("which is why LRD-aware models matter for admission control.")
}

func formatP(p float64) string {
	if p <= 0 {
		return "<1/reps"
	}
	return fmt.Sprintf("%.2e(%.1f)", p, math.Log10(p))
}
