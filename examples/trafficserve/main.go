// Example trafficserve: run the traffic service in-process and prove the
// serving contract — frames streamed over HTTP are bit-identical to offline
// synthesis with the same spec and seed.
//
//  1. start trafficd's server on a random local port
//  2. open a stream of the paper model (H = 0.9, beta = 0.2)
//  3. pull the first 1000 frames over the wire
//  4. regenerate them offline and require exact equality
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"vbrsim/client"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/server"
)

func main() {
	ctx := context.Background()

	// 1. The service on an ephemeral port.
	srv := server.New(server.Options{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("trafficd serving on", base)

	// 2. A session of the paper's model, pinned to a seed.
	spec := modelspec.Paper()
	spec.Seed = 42
	c := client.New(base)
	info, err := c.CreateStream(ctx, &spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s: seed %d, AR order %d, max ACF error %.2g\n",
		info.ID, info.Seed, info.Order, info.MaxACFError)

	// 3. The first 1000 frames over HTTP (binary float64 encoding).
	served, err := c.Frames(ctx, info.ID, 0, 1000)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The same frames generated offline; equality must be exact.
	offline, err := spec.Frames(ctx, 0, 1000, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := range offline {
		if served[i] != offline[i] {
			log.Fatalf("frame %d: served %v, offline %v", i, served[i], offline[i])
		}
	}
	mean := 0.0
	for _, v := range served {
		mean += v
	}
	mean /= float64(len(served))
	fmt.Printf("1000 served frames match offline synthesis bit-for-bit (mean %.0f bytes/frame)\n", mean)
}
