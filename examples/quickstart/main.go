// Quickstart: fit the paper's unified model to a VBR video trace and
// generate statistically matching synthetic traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vbrsim"
)

func main() {
	// 1. Obtain an empirical-style trace. Here we synthesize one with the
	// built-in MPEG-1 source simulator; in practice this would be a real
	// bytes-per-frame record.
	tr, err := vbrsim.GenerateMPEGTrace(vbrsim.MPEGTraceConfig{Frames: 1 << 17, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	s := tr.Summarize()
	fmt.Printf("input trace: %d frames, mean %.0f bytes/frame, peak/mean %.1f\n",
		s.Frames, s.MeanBytes, s.PeakToMean)

	// 2. Estimate the Hurst parameter (paper Step 1).
	h, vt, rs, err := vbrsim.EstimateHurst(tr.Sizes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hurst: variance-time %.3f, R/S %.3f -> combined H = %.3f\n", vt.H, rs.H, h)

	// 3. Fit the unified model to the I-frame process (Steps 1-4).
	model, err := vbrsim.Fit(tr.ByType(vbrsim.FrameI), vbrsim.FitOptions{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fg := model.Foreground
	fmt.Printf("fitted ACF: exp(-%.4f k) below knee %d, %.3f k^-%.3f beyond; attenuation a = %.3f\n",
		fg.Rates[0], fg.Knee, fg.L, fg.Beta, model.Attenuation)

	// 4. Generate synthetic traffic with the same marginal and ACF.
	synthetic, err := model.Generate(10000, 42, vbrsim.BackendAuto)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, v := range synthetic {
		sum += v
	}
	fmt.Printf("synthetic: %d frames, mean %.0f bytes/frame (model mean %.0f)\n",
		len(synthetic), sum/float64(len(synthetic)), model.MeanRate())

	// 5. Or generate a full I-B-P stream with the composite model (Sec 3.3).
	gop, err := vbrsim.FitGOP(tr, vbrsim.FitOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	stream, err := gop.Generate(1200, 43, vbrsim.BackendAuto)
	if err != nil {
		log.Fatal(err)
	}
	cs := stream.Summarize()
	fmt.Printf("composite stream: %d frames (I=%d P=%d B=%d), mean %.0f bytes/frame\n",
		cs.Frames, cs.TypeCounts[vbrsim.FrameI], cs.TypeCounts[vbrsim.FrameP],
		cs.TypeCounts[vbrsim.FrameB], cs.MeanBytes)
}
