package benchreport

import (
	"path/filepath"
	"testing"
)

func mkReport(ns map[string]float64) Report {
	rep := Report{Benchmarks: make(map[string]Entry)}
	for name, v := range ns {
		rep.Benchmarks[name] = Entry{NsPerOp: v}
	}
	return rep
}

func TestComparePassesWithinThreshold(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100, "B": 200})
	fresh := mkReport(map[string]float64{"A": 120, "B": 150})
	deltas, failed := Compare(old, fresh, 0.25)
	if failed {
		t.Fatal("20% regression failed a 25% threshold")
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	// Deltas are sorted by name.
	if deltas[0].Name != "A" || deltas[1].Name != "B" {
		t.Fatalf("deltas out of order: %v", deltas)
	}
	if got := deltas[0].Frac; got < 0.19 || got > 0.21 {
		t.Fatalf("A frac = %v, want ~0.20", got)
	}
}

func TestCompareFailsBeyondThreshold(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100})
	fresh := mkReport(map[string]float64{"A": 140})
	if _, failed := Compare(old, fresh, 0.25); !failed {
		t.Fatal("40% regression passed a 25% threshold")
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100})
	fresh := mkReport(map[string]float64{"A": 10})
	if _, failed := Compare(old, fresh, 0.25); failed {
		t.Fatal("a 10x improvement failed the gate")
	}
}

func TestCompareNewBenchmarkIsNotARegression(t *testing.T) {
	old := mkReport(map[string]float64{"A": 100})
	fresh := mkReport(map[string]float64{"A": 100, "NEW": 999})
	deltas, failed := Compare(old, fresh, 0.25)
	if failed {
		t.Fatal("a benchmark missing from the old report failed the gate")
	}
	var found bool
	for _, d := range deltas {
		if d.Name == "NEW" {
			found = true
			if !d.Missing {
				t.Fatal("NEW not marked Missing")
			}
		}
	}
	if !found {
		t.Fatal("NEW missing from deltas")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := Report{
		GoVersion:  "go1.24.0",
		GOMAXPROCS: 4,
		Date:       "2026-08-07T00:00:00Z",
		Benchmarks: map[string]Entry{
			"X": {NsPerOp: 123.5, AllocsPerOp: 2, BytesPerOp: 64, N: 1000, GOMAXPROCS: 4,
				Extra: map[string]float64{"p99_ms": 1.5}},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["X"].NsPerOp != 123.5 || got.Benchmarks["X"].Extra["p99_ms"] != 1.5 {
		t.Fatalf("round trip lost data: %+v", got.Benchmarks["X"])
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("reading a missing report did not error")
	}
}
