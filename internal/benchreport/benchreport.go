// Package benchreport defines the committed BENCH_*.json schema and the
// regression-diff logic shared by the tools that write and gate those
// reports: cmd/bench (the ablation suite) and cmd/loadgen (the serving
// capacity harness). One schema means one benchdiff gate can cover both.
package benchreport

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Entry is one benchmark's measurement in a report.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	// GOMAXPROCS is recorded per benchmark: parallel entries (NewPlanParallel,
	// loadgen capacity runs) are meaningless without the core count they ran
	// at, and a report assembled across machines would otherwise lose the
	// provenance.
	GOMAXPROCS int                `json:"gomaxprocs"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_*.json schema: environment header plus one entry per
// benchmark, keyed by name.
type Report struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Date       string           `json:"date"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name     string
	Old, New float64 // ns/op
	// Frac is (new-old)/old; positive means slower.
	Frac float64
	// Missing marks a benchmark present in only one report (never a
	// regression by itself).
	Missing bool
}

// Compare diffs fresh against old per benchmark and reports whether any
// shared benchmark regressed beyond threshold (fractional ns/op increase).
// Improvements and new/vanished benchmarks never fail.
func Compare(old, fresh Report, threshold float64) (deltas []Delta, failed bool) {
	for name, n := range fresh.Benchmarks {
		o, ok := old.Benchmarks[name]
		if !ok {
			deltas = append(deltas, Delta{Name: name, New: n.NsPerOp, Missing: true})
			continue
		}
		d := Delta{Name: name, Old: o.NsPerOp, New: n.NsPerOp}
		if o.NsPerOp > 0 {
			d.Frac = (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		if d.Frac > threshold {
			failed = true
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, failed
}

// ReadFile loads a committed report.
func ReadFile(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// WriteFile writes the report as indented JSON.
func (rep Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
