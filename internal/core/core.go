// Package core implements the paper's primary contribution: the unified
// VBR-video traffic model that simultaneously matches an empirical trace's
// marginal distribution and its full (SRD + LRD) autocorrelation structure.
//
// Fit runs the four-step pipeline of Section 3.2 on a bytes-per-frame
// record:
//
//	Step 1 — estimate the Hurst parameter by variance-time and R/S analysis;
//	Step 2 — fit the composite "knee" ACF (exponential head, power-law tail);
//	Step 3 — measure the attenuation factor a by which the histogram-
//	         inversion transform h shrinks correlations;
//	Step 4 — compensate the background ACF (divide the tail by a, re-solve
//	         the head rate via eq. 14) so the foreground ACF lands on target.
//
// FitGOP extends the pipeline to interframe-compressed streams (Section
// 3.3): the I-frame subsequence is modeled as above, its ACF is stretched by
// the GOP period (eq. 15), and a single background process drives three
// per-frame-type transforms h_I, h_P, h_B following the GOP pattern.
package core

import (
	"context"
	"errors"
	"fmt"

	"vbrsim/internal/acf"
	"vbrsim/internal/daviesharte"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/hurst"
	"vbrsim/internal/obs"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
	"vbrsim/internal/transform"
)

// Backend selects the Gaussian-process generator.
type Backend int

// Generation backends.
const (
	// BackendAuto uses Hosking up to moderate lengths and Davies-Harte
	// beyond, trading exactness guarantees for O(n log n) cost.
	BackendAuto Backend = iota
	// BackendHosking forces the exact O(n^2) Durbin-Levinson sampler.
	BackendHosking
	// BackendDaviesHarte forces the circulant-embedding sampler.
	BackendDaviesHarte
	// BackendHoskingFast uses the truncated-AR(p) Hosking fast path: exact
	// conditional sampling up to the truncation order, frozen O(p) AR steps
	// beyond it, any length. Falls back to the exact plan when the partial
	// correlations have not decayed at the plan length.
	BackendHoskingFast
)

// autoHoskingLimit is the path length above which BackendAuto switches from
// Hosking to Davies-Harte. It is also the plan length the fast path derives
// its truncation from.
const autoHoskingLimit = 4096

// truncPlanLenMin is the smallest exact plan TruncatedPlan builds: long
// enough for the partial correlations of the paper's LRD models to fall
// below the truncation cutoff.
const truncPlanLenMin = 1024

// FitOptions tunes the pipeline.
type FitOptions struct {
	// MaxLag is the largest ACF lag estimated and fitted; default 500 (the
	// paper's plots run to lag 490).
	MaxLag int
	// Knee forces the knee lag K_t; 0 detects it automatically.
	Knee int
	// FreeBeta lets Step 2 fit the power-law exponent from the ACF tail
	// instead of pinning it to 2-2H from the Step 1 Hurst estimate (the
	// paper pins it: H=0.9 -> beta=0.2).
	FreeBeta bool
	// AttenuationLags are the "large lags" of the Step 3 measurement;
	// defaults derive from the knee.
	AttenuationLags []int
	// AttenuationReps is the number of measurement paths; default 200.
	AttenuationReps int
	// SRDComponents is the number of exponentials in the SRD part of the
	// composite ACF (paper eq. 10): 0 or 1 for the paper's single
	// exponential, 2 for the richer two-exponential head.
	SRDComponents int
	// Seed drives the attenuation measurement.
	Seed uint64
}

// Model is a fitted unified model for a single (typeless) frame-size
// process.
type Model struct {
	// H is the combined Hurst estimate of Step 1.
	H float64
	// VT and RS are the two Step 1 estimates with their plot points.
	VT, RS hurst.Estimate
	// Foreground is the Step 2 composite fit r-hat — the ACF the synthetic
	// foreground process must exhibit.
	Foreground acf.Composite
	// Attenuation is the Step 3 factor a in (0,1].
	Attenuation float64
	// Background is the Step 4 compensated ACF driven into the Gaussian
	// background process.
	Background acf.Composite
	// Marginal is the histogram-inversion empirical marginal.
	Marginal *dist.Empirical
	// Transform is the histogram-inversion transform h built on Marginal.
	Transform transform.T
}

// Fit runs Steps 1-4 on a bytes-per-frame record.
func Fit(sizes []float64, opt FitOptions) (*Model, error) {
	return FitCtx(context.Background(), sizes, opt)
}

// FitCtx is Fit with cancellation: ctx is observed by the Step 3 plan build
// and polled between attenuation replications, so a canceled server job
// stops within one replication instead of running the pipeline to the end.
func FitCtx(ctx context.Context, sizes []float64, opt FitOptions) (*Model, error) {
	if len(sizes) < 1024 {
		return nil, errors.New("core: trace too short to fit (need >= 1024 frames)")
	}
	if opt.MaxLag <= 0 {
		opt.MaxLag = 500
	}
	if opt.AttenuationReps <= 0 {
		opt.AttenuationReps = 200
	}

	m := &Model{}
	tr := obs.TracerFrom(ctx)

	// Step 1: Hurst estimation (variance-time + R/S, averaged as the paper
	// does).
	span := tr.Start("fit.hurst")
	h, vt, rs, err := hurst.Combined(sizes)
	span.End(map[string]any{"frames": len(sizes), "h": h})
	if err != nil {
		return nil, fmt.Errorf("core: step 1 (Hurst): %w", err)
	}
	m.H, m.VT, m.RS = h, vt, rs
	if m.H >= 1 {
		m.H = 0.99
	}
	if m.H <= 0.5 {
		return nil, fmt.Errorf("core: estimated H = %.3f is not long-range dependent", m.H)
	}

	// Step 2: composite ACF fit with beta pinned to the Hurst estimate
	// (beta = 2 - 2H) unless FreeBeta.
	span = tr.Start("fit.acf")
	empACF := acfOf(sizes, opt.MaxLag)
	fitOpt := acf.FitOptions{Knee: opt.Knee}
	if !opt.FreeBeta {
		fitOpt.Beta = 2 - 2*m.H
	}
	if opt.SRDComponents >= 2 {
		m.Foreground, err = acf.FitCompositeMulti(empACF, fitOpt)
	} else {
		m.Foreground, err = acf.FitComposite(empACF, fitOpt)
	}
	span.End(map[string]any{"lags": len(empACF) - 1, "knee": m.Foreground.Knee})
	if err != nil {
		return nil, fmt.Errorf(
			"core: step 2 (ACF fit): %w (the ACF stayed positive only up to lag %d — the record may be too short to show its long-range dependence; try a longer trace)",
			err, len(empACF)-1)
	}

	// Marginal and transform (histogram inversion, eq. 7).
	m.Marginal, err = dist.NewEmpirical(sizes)
	if err != nil {
		return nil, err
	}
	m.Transform = transform.New(m.Marginal)

	// Step 3: measure the attenuation factor on the uncompensated model,
	// at large lags, exactly as the paper does.
	lags := opt.AttenuationLags
	if len(lags) == 0 {
		kt := m.Foreground.Knee
		lags = []int{kt + 40, kt + 90, kt + 140}
	}
	maxMeasureLag := 0
	for _, l := range lags {
		if l > maxMeasureLag {
			maxMeasureLag = l
		}
	}
	planLen := 4 * maxMeasureLag
	plan, err := hosking.CachedPlanCtx(ctx, m.Foreground, planLen)
	if err != nil {
		return nil, fmt.Errorf("core: step 3 (attenuation plan): %w", err)
	}
	span = tr.Start("fit.attenuation")
	m.Attenuation, err = transform.MeasureCtx(ctx, plan, m.Transform, planLen, transform.MeasureOptions{
		Lags:         lags,
		Replications: opt.AttenuationReps,
		Seed:         opt.Seed + 0x5eed,
	})
	span.End(map[string]any{
		"replications": opt.AttenuationReps,
		"plan_len":     planLen,
		"attenuation":  m.Attenuation,
	})
	if err != nil {
		return nil, fmt.Errorf("core: step 3 (attenuation): %w", err)
	}

	// Step 4: compensate.
	m.Background, err = acf.Compensate(m.Foreground, m.Attenuation)
	if err != nil {
		return nil, fmt.Errorf("core: step 4 (compensation): %w", err)
	}
	return m, nil
}

// acfOf computes the sample ACF including lag 0.
func acfOf(x []float64, maxLag int) []float64 {
	return trimNonPositiveTail(stats.Autocorrelation(x, maxLag))
}

// trimNonPositiveTail cuts the ACF where it has decayed into noise around
// zero — at the first run of three consecutive non-positive lags — so
// log-space fitting stays well defined. A single noisy dip does not cut the
// tail; at least 16 lags are always kept.
func trimNonPositiveTail(a []float64) []float64 {
	run := 0
	for k := 16; k < len(a); k++ {
		if a[k] <= 0 {
			run++
			if run == 3 {
				return a[:k-2]
			}
		} else {
			run = 0
		}
	}
	return a
}

// MeanRate returns the mean arrival rate (bytes per slot) of the fitted
// foreground process.
func (m *Model) MeanRate() float64 { return m.Marginal.Mean() }

// Plan builds a background-process generation plan of the given length,
// sharing identical plans through the process-wide cache: repeated fits and
// experiment pipelines asking for the same (ACF, length) get the same plan
// back instead of re-running the O(n^2) recursion.
func (m *Model) Plan(n int) (*hosking.Plan, error) {
	return hosking.CachedPlan(m.Background, n)
}

// PlanCtx is Plan with cancellation and tracing threaded through the shared
// cache (a tracer attached to ctx records the plan.acquire span).
func (m *Model) PlanCtx(ctx context.Context, n int) (*hosking.Plan, error) {
	return hosking.CachedPlanCtx(ctx, m.Background, n)
}

// TruncatedPlan builds the truncated-AR(p) fast generation view for paths
// up to length n. The underlying exact plan length is capped at
// autoHoskingLimit — the whole point of truncation is that generation may
// run past the plan. tol is the partial-correlation cutoff (0 selects the
// default); the induced ACF error is measured and exposed on the result.
func (m *Model) TruncatedPlan(n int, tol float64) (*hosking.Truncated, error) {
	return m.TruncatedPlanCtx(context.Background(), n, tol)
}

// TruncatedPlanCtx is TruncatedPlan with cancellation threaded through the
// underlying exact-plan build (the expensive part; truncation itself is
// bounded by the capped plan length).
func (m *Model) TruncatedPlanCtx(ctx context.Context, n int, tol float64) (*hosking.Truncated, error) {
	return TruncatedPlanForCtx(ctx, m.Background, n, tol)
}

// TruncatedPlanForCtx builds the truncated-AR(p) fast view for an arbitrary
// background ACF, sharing exact plans through the process-wide cache. It is
// the entry point the serving layer uses, where sessions are created from
// model specs rather than fitted Models. n is a horizon hint (use 0 for
// unbounded streaming); the exact plan length is clamped exactly as
// Model.TruncatedPlan clamps it, so offline and served generation derive
// bit-identical plans.
func TruncatedPlanForCtx(ctx context.Context, model acf.Model, n int, tol float64) (*hosking.Truncated, error) {
	// The truncated generator is horizon-unbounded, so the exact plan only
	// has to be long enough for the partial correlations to die out (for
	// the paper's LRD composite that takes a few hundred lags): clamp to
	// [truncPlanLenMin, autoHoskingLimit] independent of n.
	planLen := n
	if planLen <= 0 {
		planLen = autoHoskingLimit
	}
	if planLen < truncPlanLenMin {
		planLen = truncPlanLenMin
	}
	if planLen > autoHoskingLimit {
		planLen = autoHoskingLimit
	}
	plan, err := hosking.CachedPlanCtx(ctx, model, planLen)
	if err != nil {
		return nil, err
	}
	return plan.Truncate(hosking.TruncateOptions{Tol: tol})
}

// Generate synthesizes n frames of foreground traffic.
func (m *Model) Generate(n int, seed uint64, backend Backend) ([]float64, error) {
	x, err := generateBackground(m.Background, n, seed, backend)
	if err != nil {
		return nil, err
	}
	return m.Transform.ApplySlice(x), nil
}

// generateBackground produces a zero-mean unit-variance Gaussian path with
// the given ACF using the selected backend.
func generateBackground(model acf.Model, n int, seed uint64, backend Backend) ([]float64, error) {
	useHosking := backend == BackendHosking ||
		(backend == BackendAuto && n <= autoHoskingLimit)
	if useHosking {
		plan, err := hosking.CachedPlan(model, n)
		if err != nil {
			return nil, err
		}
		return plan.Path(rng.New(seed), n), nil
	}
	if backend == BackendHoskingFast {
		planLen := n
		if planLen < truncPlanLenMin {
			planLen = truncPlanLenMin
		}
		if planLen > autoHoskingLimit {
			planLen = autoHoskingLimit
		}
		plan, err := hosking.CachedPlan(model, planLen)
		if err != nil {
			return nil, err
		}
		if tr, terr := plan.Truncate(hosking.TruncateOptions{}); terr == nil {
			return tr.Path(rng.New(seed), n), nil
		}
		// Tail not decayed within the plan: fall back to exact generation,
		// which requires the plan to cover the whole path.
		if n <= planLen {
			return plan.Path(rng.New(seed), n), nil
		}
		full, err := hosking.CachedPlan(model, n)
		if err != nil {
			return nil, err
		}
		return full.Path(rng.New(seed), n), nil
	}
	plan, err := daviesharte.NewPlan(model, n, daviesharte.Options{AllowApprox: true})
	if err != nil {
		return nil, err
	}
	return plan.Path(rng.New(seed)), nil
}

// ---------------------------------------------------------------------------
// Interframe (I-B-P) modeling, Section 3.3

// GOPModel is the composite interframe model: one background process, three
// per-frame-type transforms, GOP-rescaled autocorrelation (eq. 15).
type GOPModel struct {
	// IModel is the unified model fitted on the I-frame subsequence.
	IModel *Model
	// Background is the I-frame background ACF stretched by the GOP period.
	Background acf.Model
	// TI, TP, TB are the per-frame-type histogram-inversion transforms.
	TI, TP, TB transform.T
	// GOP is the frame-type pattern driven during generation.
	GOP []trace.FrameType
	// KI is the I-frame period (GOP length).
	KI int
	// FrameRate is carried into generated traces.
	FrameRate float64
}

// FitGOP fits the composite model to a typed trace.
func FitGOP(tr *trace.Trace, opt FitOptions) (*GOPModel, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Types == nil {
		return nil, errors.New("core: FitGOP requires frame-type information")
	}
	ki := tr.GOPLength
	if ki <= 0 {
		ki = len(trace.DefaultGOP)
	}
	iSizes := tr.ByType(trace.FrameI)
	pSizes := tr.ByType(trace.FrameP)
	bSizes := tr.ByType(trace.FrameB)
	if len(iSizes) < 1024 {
		return nil, errors.New("core: too few I frames to fit (need >= 1024)")
	}

	// Step 1 of 3.3: model the I-frame process with the single-type pipeline.
	iModel, err := Fit(iSizes, opt)
	if err != nil {
		return nil, fmt.Errorf("core: I-frame model: %w", err)
	}

	g := &GOPModel{
		IModel:     iModel,
		Background: acf.Scaled{Base: iModel.Background, Factor: ki},
		TI:         iModel.Transform,
		KI:         ki,
		FrameRate:  tr.FrameRate,
	}
	// GOP pattern: reuse the trace's leading pattern when it looks sane,
	// else the default.
	g.GOP = trace.DefaultGOP
	if len(tr.Types) >= ki {
		g.GOP = append([]trace.FrameType(nil), tr.Types[:ki]...)
	}

	// Per-type marginals for P and B frames.
	pm, err := dist.NewEmpirical(pSizes)
	if err != nil {
		return nil, fmt.Errorf("core: P-frame marginal: %w", err)
	}
	bm, err := dist.NewEmpirical(bSizes)
	if err != nil {
		return nil, fmt.Errorf("core: B-frame marginal: %w", err)
	}
	g.TP = transform.New(pm)
	g.TB = transform.New(bm)
	return g, nil
}

// MeanRate returns the mean bytes-per-frame of the composite stream,
// weighting the per-type means by their GOP frequencies.
func (g *GOPModel) MeanRate() float64 {
	var sum float64
	for _, ft := range g.GOP {
		sum += g.transformFor(ft).Target.Mean()
	}
	return sum / float64(len(g.GOP))
}

func (g *GOPModel) transformFor(ft trace.FrameType) transform.T {
	switch ft {
	case trace.FrameI:
		return g.TI
	case trace.FrameP:
		return g.TP
	default:
		return g.TB
	}
}

// Generate synthesizes a typed trace of n frames: one background path X,
// foreground Y_k = h_{type(k)}(X_k) following the GOP pattern.
func (g *GOPModel) Generate(n int, seed uint64, backend Backend) (*trace.Trace, error) {
	x, err := generateBackground(acf.Clamped{Base: g.Background}, n, seed, backend)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{
		Sizes:     make([]float64, n),
		Types:     make([]trace.FrameType, n),
		FrameRate: g.FrameRate,
		GOPLength: g.KI,
	}
	for i := 0; i < n; i++ {
		ft := g.GOP[i%len(g.GOP)]
		tr.Types[i] = ft
		tr.Sizes[i] = g.transformFor(ft).Apply(x[i])
	}
	return tr, nil
}

// ArrivalSource adapts a fitted Model to the queue.PathSource interface:
// each replication generates a fresh background path through the shared
// plan and maps it through the transform. When Fast is set it is used
// instead of Plan, generating in O(p) per step past the truncation order
// (and past the plan length).
type ArrivalSource struct {
	Plan      *hosking.Plan
	Transform transform.T
	Fast      *hosking.Truncated
	// LUT, when non-nil, evaluates the marginal transform through the
	// precomputed table instead of the exact CDF/quantile composition. It
	// must be built from the same Transform; arrivals then deviate from the
	// exact path by at most the table's measured error bound (LUT.MaxError,
	// ~1e-7 relative for the paper's marginal), in exchange for removing
	// the transform from the per-step critical path.
	LUT *transform.LUT
}

// ArrivalPath generates one replication's arrivals.
func (s ArrivalSource) ArrivalPath(r *rng.Source, k int) []float64 {
	buf := make([]float64, k)
	s.ArrivalPathInto(r, buf)
	return buf
}

// ArrivalPathInto generates one replication's arrivals into a caller-owned
// buffer (queue.PathSourceInto): the background path is written in place
// and transformed in place, so steady-state estimation performs no per-
// replication path allocations.
func (s ArrivalSource) ArrivalPathInto(r *rng.Source, buf []float64) {
	if s.Fast != nil {
		s.Fast.Generate(r, buf)
	} else {
		s.Plan.Generate(r, buf)
	}
	if s.LUT != nil {
		s.LUT.ApplyTo(buf, buf)
	} else {
		s.Transform.ApplyTo(buf, buf)
	}
}
