package core

import (
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
	"vbrsim/internal/trace"
	"vbrsim/internal/transform"
)

func TestArrivalPathIntoMatchesArrivalPath(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Plan(200)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.TruncatedPlan(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []ArrivalSource{
		{Plan: plan, Transform: m.Transform},
		{Plan: plan, Fast: fast, Transform: m.Transform},
	} {
		alloc := src.ArrivalPath(rng.New(17), 200)
		buf := make([]float64, 200)
		for i := range buf {
			buf[i] = -1e9 // stale content must be overwritten
		}
		src.ArrivalPathInto(rng.New(17), buf)
		for i := range alloc {
			if alloc[i] != buf[i] {
				t.Fatalf("fast=%v slot %d: ArrivalPath %v vs ArrivalPathInto %v",
					src.Fast != nil, i, alloc[i], buf[i])
			}
		}
	}
}

func TestTruncatedPlanGeneratesBeyondPlanLength(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.TruncatedPlan(300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Order() <= 0 {
		t.Fatalf("order = %d", fast.Order())
	}
	src := ArrivalSource{Fast: fast, Transform: m.Transform}
	// Horizon far beyond the exact plan's length must work on the fast path.
	path := src.ArrivalPath(newTestRand(), 5000)
	if len(path) != 5000 {
		t.Fatalf("path len %d", len(path))
	}
	for _, v := range path {
		if v < 0 {
			t.Fatal("negative arrival")
		}
	}
}

func TestGenerateBackendHoskingFast(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := m.Generate(6000, 9, BackendHoskingFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 6000 {
		t.Fatalf("len = %d", len(sizes))
	}
	for _, v := range sizes {
		if v < 0 {
			t.Fatal("negative frame size")
		}
	}
}

// TestArrivalSourceLUT checks the table-based transform fast path: with the
// same seed, a LUT-equipped source must reproduce the exact source's
// arrivals within the table's measured error bound.
func TestArrivalSourceLUT(t *testing.T) {
	plan, err := hosking.NewPlan(acf.FGN{H: 0.9}, 400)
	if err != nil {
		t.Fatal(err)
	}
	htr := transform.New(dist.Lognormal{Mu: 9.6, Sigma: 0.4})
	lut, err := htr.NewDefaultLUT()
	if err != nil {
		t.Fatal(err)
	}
	exact := ArrivalSource{Plan: plan, Transform: htr}
	tabled := ArrivalSource{Plan: plan, Transform: htr, LUT: lut}
	a := exact.ArrivalPath(rng.New(21), 400)
	b := tabled.ArrivalPath(rng.New(21), 400)
	tol := lut.MaxError() * 1.01
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > tol {
			t.Fatalf("slot %d: |exact-LUT| = %g exceeds bound %g", i, d, tol)
		}
	}
}
