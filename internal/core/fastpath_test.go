package core

import (
	"testing"

	"vbrsim/internal/rng"
	"vbrsim/internal/trace"
)

func TestArrivalPathIntoMatchesArrivalPath(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Plan(200)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.TruncatedPlan(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []ArrivalSource{
		{Plan: plan, Transform: m.Transform},
		{Plan: plan, Fast: fast, Transform: m.Transform},
	} {
		alloc := src.ArrivalPath(rng.New(17), 200)
		buf := make([]float64, 200)
		for i := range buf {
			buf[i] = -1e9 // stale content must be overwritten
		}
		src.ArrivalPathInto(rng.New(17), buf)
		for i := range alloc {
			if alloc[i] != buf[i] {
				t.Fatalf("fast=%v slot %d: ArrivalPath %v vs ArrivalPathInto %v",
					src.Fast != nil, i, alloc[i], buf[i])
			}
		}
	}
}

func TestTruncatedPlanGeneratesBeyondPlanLength(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.TruncatedPlan(300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Order() <= 0 {
		t.Fatalf("order = %d", fast.Order())
	}
	src := ArrivalSource{Fast: fast, Transform: m.Transform}
	// Horizon far beyond the exact plan's length must work on the fast path.
	path := src.ArrivalPath(newTestRand(), 5000)
	if len(path) != 5000 {
		t.Fatalf("path len %d", len(path))
	}
	for _, v := range path {
		if v < 0 {
			t.Fatal("negative arrival")
		}
	}
}

func TestGenerateBackendHoskingFast(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := m.Generate(6000, 9, BackendHoskingFast)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 6000 {
		t.Fatalf("len = %d", len(sizes))
	}
	for _, v := range sizes {
		if v < 0 {
			t.Fatal("negative frame size")
		}
	}
}
