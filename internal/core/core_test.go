package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"vbrsim/internal/mpegtrace"
	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
)

// testTrace generates a moderate synthetic empirical trace once per test
// binary (the generator is deterministic).
func testTrace(t testing.TB, frames int) *trace.Trace {
	t.Helper()
	tr, err := mpegtrace.Generate(mpegtrace.Config{Frames: frames, Seed: 1001})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFitRejectsShortTrace(t *testing.T) {
	if _, err := Fit(make([]float64, 100), FitOptions{}); err == nil {
		t.Error("short trace accepted")
	}
}

// FitCtx aborts in Step 3 on cancellation: both the attenuation plan build
// and the replication loop observe ctx, so a canceled server job stops
// instead of running the measurement to the end.
func TestFitCtxCanceled(t *testing.T) {
	tr := testTrace(t, 1<<17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FitCtx(ctx, tr.ByType(trace.FrameI), FitOptions{Seed: 7})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFitRejectsSRDTrace(t *testing.T) {
	// An iid trace has H ~ 0.5 and must be rejected as not LRD.
	sizes := make([]float64, 1<<16)
	r := newTestRand()
	for i := range sizes {
		sizes[i] = 1000 + 100*r.Norm()
	}
	if _, err := Fit(sizes, FitOptions{}); err == nil {
		t.Error("iid trace accepted as LRD model")
	}
}

func TestFitPipelineOnSyntheticTrace(t *testing.T) {
	tr := testTrace(t, 1<<17)
	iSizes := tr.ByType(trace.FrameI)
	m, err := Fit(iSizes, FitOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: H in LRD territory near the generator's target 0.9.
	if m.H < 0.7 || m.H > 1 {
		t.Errorf("H = %v, want in (0.7, 1)", m.H)
	}
	// Step 2: composite fit valid and continuous with beta = 2-2H.
	if err := m.Foreground.Validate(); err != nil {
		t.Errorf("foreground invalid: %v", err)
	}
	if math.Abs(m.Foreground.Beta-(2-2*m.H)) > 1e-9 {
		t.Errorf("beta = %v, want %v", m.Foreground.Beta, 2-2*m.H)
	}
	if gap := m.Foreground.ContinuityGap(); gap > 1e-9 {
		t.Errorf("foreground continuity gap %v", gap)
	}
	// Step 3: attenuation in (0,1].
	if m.Attenuation <= 0 || m.Attenuation > 1 {
		t.Errorf("attenuation = %v", m.Attenuation)
	}
	// Step 4: background tail is foreground tail divided by a.
	kt := m.Foreground.Knee
	wantTail := m.Foreground.At(kt+100) / m.Attenuation
	if wantTail < 1 {
		if got := m.Background.At(kt + 100); math.Abs(got-wantTail) > 1e-9 {
			t.Errorf("background tail %v, want %v", got, wantTail)
		}
	}
	if m.MeanRate() <= 0 {
		t.Error("non-positive mean rate")
	}
}

func TestGenerateMatchesMarginal(t *testing.T) {
	tr := testTrace(t, 1<<16)
	iSizes := tr.ByType(trace.FrameI)
	m, err := Fit(iSizes, FitOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A single LRD path's sample marginal wanders (path-mean std ~ n^(H-1)
	// in background units), so pool many replications before comparing.
	plan, err := m.Plan(2000)
	if err != nil {
		t.Fatal(err)
	}
	src := ArrivalSource{Plan: plan, Transform: m.Transform}
	r := newTestRand()
	var syn []float64
	for rep := 0; rep < 60; rep++ {
		syn = append(syn, src.ArrivalPath(r.Split(), 2000)...)
	}
	// Marginal match: compare several quantiles.
	se, err := stats.NewECDF(syn)
	if err != nil {
		t.Fatal(err)
	}
	ee, err := stats.NewECDF(iSizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.25, 0.5, 0.75, 0.9} {
		got, want := se.Quantile(p), ee.Quantile(p)
		if math.Abs(got-want) > 0.12*want {
			t.Errorf("quantile %v: synthetic %v vs empirical %v", p, got, want)
		}
	}
	// Mean match.
	if gm, em := stats.Mean(syn), stats.Mean(iSizes); math.Abs(gm-em) > 0.1*em {
		t.Errorf("synthetic mean %v vs empirical %v", gm, em)
	}
}

func TestGenerateForegroundACFMatchesTarget(t *testing.T) {
	// The whole point of Steps 3-4: the generated foreground ACF must land
	// on the fitted (uncompensated) foreground target.
	tr := testTrace(t, 1<<16)
	iSizes := tr.ByType(trace.FrameI)
	m, err := Fit(iSizes, FitOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Pool several generated paths.
	const n, reps = 2000, 12
	maxLag := 300
	pooled := make([]float64, maxLag+1)
	for rep := 0; rep < reps; rep++ {
		syn, err := m.Generate(n, uint64(1000+rep), BackendHosking)
		if err != nil {
			t.Fatal(err)
		}
		a := stats.AutocovarianceKnownMean(syn, m.MeanRate(), maxLag)
		for k := range pooled {
			pooled[k] += a[k]
		}
	}
	for _, k := range []int{5, 20, m.Foreground.Knee, 150, 300} {
		got := pooled[k] / pooled[0]
		want := m.Foreground.At(k)
		if math.Abs(got-want) > 0.1 {
			t.Errorf("foreground acf[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestGenerateBackends(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		backend Backend
		n       int
	}{
		{BackendHosking, 1000},
		{BackendDaviesHarte, 1000},
		{BackendAuto, 1000},  // -> Hosking
		{BackendAuto, 10000}, // -> Davies-Harte
	} {
		syn, err := m.Generate(tc.n, 5, tc.backend)
		if err != nil {
			t.Fatalf("backend %v n %d: %v", tc.backend, tc.n, err)
		}
		if len(syn) != tc.n {
			t.Fatalf("backend %v: len %d", tc.backend, len(syn))
		}
		for i, v := range syn {
			if v < 0 {
				t.Fatalf("backend %v: negative size at %d", tc.backend, i)
			}
		}
	}
}

func TestFitGOPAndGenerate(t *testing.T) {
	tr := testTrace(t, 1<<17)
	g, err := FitGOP(tr, FitOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if g.KI != 12 {
		t.Errorf("KI = %d, want 12", g.KI)
	}
	if len(g.GOP) != 12 || g.GOP[0] != trace.FrameI {
		t.Errorf("GOP pattern = %v", g.GOP)
	}
	syn, err := g.Generate(6000, 11, BackendHosking)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Len() != 6000 {
		t.Fatalf("generated %d frames", syn.Len())
	}
	// GOP structure preserved.
	for i := 0; i < 48; i++ {
		if syn.Types[i] != tr.Types[i%12] {
			t.Fatalf("GOP type mismatch at %d", i)
		}
	}
	// Frame-type size ordering matches the input trace.
	mi := stats.Mean(syn.ByType(trace.FrameI))
	mp := stats.Mean(syn.ByType(trace.FrameP))
	mb := stats.Mean(syn.ByType(trace.FrameB))
	if !(mi > mp && mp > mb) {
		t.Errorf("synthetic ordering I=%v P=%v B=%v", mi, mp, mb)
	}
	// Per-type means match the empirical per-type means.
	for _, tc := range []struct {
		ft trace.FrameType
		m  float64
	}{{trace.FrameI, mi}, {trace.FrameP, mp}, {trace.FrameB, mb}} {
		want := stats.Mean(tr.ByType(tc.ft))
		if math.Abs(tc.m-want) > 0.15*want {
			t.Errorf("%v mean %v vs empirical %v", tc.ft, tc.m, want)
		}
	}
	// Composite mean rate consistent.
	wholeMean := stats.Mean(syn.Sizes)
	if math.Abs(g.MeanRate()-wholeMean) > 0.15*wholeMean {
		t.Errorf("MeanRate %v vs generated mean %v", g.MeanRate(), wholeMean)
	}
}

func TestGeneratedGOPACFOscillates(t *testing.T) {
	tr := testTrace(t, 1<<17)
	g, err := FitGOP(tr, FitOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	syn, err := g.Generate(20000, 13, BackendDaviesHarte)
	if err != nil {
		t.Fatal(err)
	}
	a := stats.Autocorrelation(syn.Sizes, 24)
	// GOP periodicity: multiples of 12 carry more correlation than
	// mid-GOP lags, as in Figs. 9-11.
	if a[12] <= a[6] || a[24] <= a[18] {
		t.Errorf("no GOP oscillation: acf[6..24] = %v", a[6:])
	}
}

func TestFitGOPValidation(t *testing.T) {
	if _, err := FitGOP(&trace.Trace{Sizes: []float64{1, 2, 3}}, FitOptions{}); err == nil {
		t.Error("untyped trace accepted")
	}
	small, err := mpegtrace.Generate(mpegtrace.Config{Frames: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitGOP(small, FitOptions{}); err == nil {
		t.Error("trace with too few I frames accepted")
	}
}

func TestArrivalSource(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Plan(200)
	if err != nil {
		t.Fatal(err)
	}
	src := ArrivalSource{Plan: plan, Transform: m.Transform}
	path := src.ArrivalPath(newTestRand(), 200)
	if len(path) != 200 {
		t.Fatalf("path len %d", len(path))
	}
	for _, v := range path {
		if v < 0 {
			t.Fatal("negative arrival")
		}
	}
}
