// Iterative background refinement — the "automatic search for the best
// background autocorrelation structure" the paper's Section 3.3 leaves as
// future work. Step 4's one-shot compensation divides the background tail
// by a single measured attenuation factor; Refine closes the loop instead:
// it repeatedly generates traffic from the current background, measures the
// achieved foreground ACF against the Step-2 target, and applies a
// multiplicative correction to the background tail level (the model's one
// free knob once continuity and convexity pin the SRD rate to the tail).
package core

import (
	"errors"
	"math"

	"vbrsim/internal/acf"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

// RefineOptions controls the iterative search.
type RefineOptions struct {
	// Rounds of generate-measure-correct; default 4.
	Rounds int
	// PathLen is the length of each measurement path; default 1500.
	PathLen int
	// Replications is the number of paths pooled per round; default 80.
	Replications int
	// MaxLag bounds the error metric; default 1.5x the largest
	// measurement lag.
	MaxLag int
	// Seed drives the measurement paths.
	Seed uint64
}

// RefineResult reports the search trajectory.
type RefineResult struct {
	// Backgrounds holds the background model after each round (index 0 is
	// the starting model).
	Backgrounds []acf.Composite
	// Errors holds the foreground ACF RMS error measured for each entry of
	// Backgrounds.
	Errors []float64
	// Best indexes the lowest-error background, which is also installed
	// into the model.
	Best int
}

// Refine runs the closed-loop background search on a fitted model, updating
// m.Background in place to the best background found and returning the
// trajectory. The Step-2 foreground target and the marginal transform are
// left untouched.
func (m *Model) Refine(opt RefineOptions) (*RefineResult, error) {
	if opt.Rounds <= 0 {
		opt.Rounds = 4
	}
	if opt.PathLen <= 0 {
		opt.PathLen = 1500
	}
	if opt.Replications <= 0 {
		opt.Replications = 80
	}
	kt := m.Foreground.Knee
	measureLags := []int{kt + 40, kt + 90, kt + 140}
	if opt.MaxLag <= 0 {
		opt.MaxLag = measureLags[len(measureLags)-1] * 3 / 2
	}
	if opt.PathLen < 3*opt.MaxLag {
		opt.PathLen = 3 * opt.MaxLag
	}

	res := &RefineResult{}
	current := m.Background
	r := rng.New(opt.Seed + 0x12ef1)

	for round := 0; round <= opt.Rounds; round++ {
		measured, err := measureForegroundACF(m, current, opt.PathLen, opt.Replications, opt.MaxLag, r)
		if err != nil {
			return nil, err
		}
		res.Backgrounds = append(res.Backgrounds, current)
		res.Errors = append(res.Errors, acfRMSError(m.Foreground, measured))
		if round == opt.Rounds {
			break
		}
		// Correction: geometric-mean ratio of target to measured foreground
		// over the measurement lags, applied to the background tail level.
		var logRatio float64
		n := 0
		for _, k := range measureLags {
			if k < len(measured) && measured[k] > 0 {
				target := m.Foreground.At(k)
				logRatio += math.Log(target / measured[k])
				n++
			}
		}
		if n == 0 {
			return nil, errors.New("core: refinement measurement degenerate (non-positive foreground ACF)")
		}
		ratio := math.Exp(logRatio / float64(n))
		// Damp and clamp the step to keep the fixed point stable.
		if ratio > 1.3 {
			ratio = 1.3
		}
		if ratio < 0.77 {
			ratio = 0.77
		}
		next := current
		next.L = current.L * ratio
		next = next.Continuous()
		next, err = next.EnsureConvex()
		if err != nil {
			// The correction pushed the tail out of the valid region; stop
			// with what we have rather than failing the whole search.
			break
		}
		current = next
	}

	// Install the best background.
	best := 0
	for i, e := range res.Errors {
		if e < res.Errors[best] {
			best = i
		}
	}
	res.Best = best
	m.Background = res.Backgrounds[best]
	return res, nil
}

// measureForegroundACF generates paths from the background and returns the
// pooled foreground ACF up to maxLag.
func measureForegroundACF(m *Model, bg acf.Composite, pathLen, reps, maxLag int, r *rng.Source) ([]float64, error) {
	plan, err := hosking.NewPlan(bg, pathLen)
	if err != nil {
		return nil, err
	}
	meanY := m.Marginal.Mean()
	pooled := make([]float64, maxLag+1)
	for rep := 0; rep < reps; rep++ {
		y := m.Transform.ApplySlice(plan.Path(r, pathLen))
		a := stats.AutocovarianceKnownMean(y, meanY, maxLag)
		for k := range pooled {
			pooled[k] += a[k]
		}
	}
	out := make([]float64, maxLag+1)
	for k := range out {
		out[k] = pooled[k] / pooled[0]
	}
	return out, nil
}

// acfRMSError computes the RMS distance between the target composite and a
// measured ACF over lags 1..len(measured)-1.
func acfRMSError(target acf.Composite, measured []float64) float64 {
	var sse float64
	n := 0
	for k := 1; k < len(measured); k++ {
		d := target.At(k) - measured[k]
		sse += d * d
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(sse / float64(n))
}
