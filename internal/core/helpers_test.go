package core

import "vbrsim/internal/rng"

// newTestRand returns a fixed-seed random source for tests.
func newTestRand() *rng.Source { return rng.New(12345) }
