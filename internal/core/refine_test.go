package core

import (
	"testing"

	"vbrsim/internal/trace"
)

func TestRefineReducesErrorFromUncompensatedStart(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: start from the UNcompensated background (as if Step 4 had
	// been skipped, attenuation left uncorrected).
	m.Background = m.Foreground

	res, err := m.Refine(RefineOptions{Rounds: 3, Replications: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) < 2 {
		t.Fatalf("too few rounds recorded: %v", res.Errors)
	}
	if res.Errors[res.Best] > res.Errors[0] {
		t.Errorf("refinement made things worse: %v", res.Errors)
	}
	// The installed background matches the best round.
	if m.Background.L != res.Backgrounds[res.Best].L {
		t.Error("best background not installed")
	}
	// The refined background must remain a valid generatable model.
	if _, err := m.Plan(300); err != nil {
		t.Errorf("refined background not positive definite: %v", err)
	}
}

func TestRefineStableNearOptimum(t *testing.T) {
	// Starting from the Step-4 compensated background, refinement must not
	// blow the error up (the fixed point is near the start).
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Background
	res, err := m.Refine(RefineOptions{Rounds: 2, Replications: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Error at the chosen background is within noise of the starting error.
	if res.Errors[res.Best] > res.Errors[0]*1.05+0.01 {
		t.Errorf("refinement degraded a good start: %v", res.Errors)
	}
	// Tail level moved only moderately.
	ratio := m.Background.L / before.L
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("refined L moved by %vx from a good start", ratio)
	}
}

func TestRefineTrajectoryBookkeeping(t *testing.T) {
	tr := testTrace(t, 1<<16)
	m, err := Fit(tr.ByType(trace.FrameI), FitOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Refine(RefineOptions{Rounds: 2, Replications: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Backgrounds) != len(res.Errors) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(res.Backgrounds), len(res.Errors))
	}
	if res.Best < 0 || res.Best >= len(res.Errors) {
		t.Fatalf("best index %d out of range", res.Best)
	}
	for i, bg := range res.Backgrounds {
		if err := bg.Validate(); err != nil {
			t.Errorf("round %d background invalid: %v", i, err)
		}
	}
}
