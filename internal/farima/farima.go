// Package farima implements the fractional ARIMA(0,d,0) process of Hosking
// (1981), the asymptotically self-similar model that Garrett & Willinger used
// to synthesize VBR video traffic and that this paper's unified approach
// extends. It provides the exact autocorrelation (as an acf.Model), exact
// generation through the Durbin–Levinson plan, and the truncated MA(infinity)
// approximation for streaming generation of arbitrarily long traces.
package farima

import (
	"errors"
	"math"

	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
)

// ACF is the exact autocorrelation of FARIMA(0,d,0):
//
//	rho(k) = Gamma(k+d) Gamma(1-d) / (Gamma(k-d+1) Gamma(d))
//
// computed by the stable recurrence rho(k) = rho(k-1) (k-1+d)/(k-d).
// The Hurst parameter is H = d + 1/2, so LRD requires d in (0, 1/2).
type ACF struct {
	D float64
}

// At returns rho(k). It evaluates the recurrence each call for small k and
// switches to the asymptotic form for very large lags where the recurrence
// would be slow; both agree to high accuracy in the crossover region.
func (a ACF) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	d := a.D
	if d == 0 {
		return 0
	}
	if k <= 4096 {
		rho := 1.0
		for j := 1; j <= k; j++ {
			rho *= (float64(j) - 1 + d) / (float64(j) - d)
		}
		return rho
	}
	// Asymptotics: rho(k) ~ (Gamma(1-d)/Gamma(d)) k^(2d-1).
	lg1, _ := math.Lgamma(1 - d)
	lg2, _ := math.Lgamma(d)
	return math.Exp(lg1-lg2) * math.Pow(float64(k), 2*d-1)
}

// Hurst returns D + 1/2.
func (a ACF) Hurst() float64 { return a.D + 0.5 }

// FromHurst returns the FARIMA(0,d,0) ACF with d = H - 1/2.
func FromHurst(h float64) ACF { return ACF{D: h - 0.5} }

// Validate checks that D lies in the stationary-invertible LRD range.
func (a ACF) Validate() error {
	if a.D <= -0.5 || a.D >= 0.5 {
		return errors.New("farima: d must lie in (-1/2, 1/2)")
	}
	return nil
}

// NewPlan builds an exact Durbin–Levinson generation plan of length n.
// For FARIMA(0,d,0) the partial correlations are phi_kk = d/(k-d), which the
// plan recovers numerically; this identity is used in tests.
func NewPlan(d float64, n int) (*hosking.Plan, error) {
	a := ACF{D: d}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return hosking.NewPlan(a, n)
}

// MAGenerator approximates FARIMA(0,d,0) by the truncated moving-average
// representation X_t = sum_{j=0}^{M-1} psi_j eps_{t-j} with
// psi_j = Gamma(j+d)/(Gamma(j+1) Gamma(d)). The output is rescaled to unit
// variance. Truncation caps how much long-range dependence survives beyond
// lag ~M; choose M several times the largest lag of interest.
type MAGenerator struct {
	psi []float64
	buf []float64 // ring buffer of the last len(psi) innovations
	pos int
	rng *rng.Source
}

// NewMAGenerator builds a truncated MA(infinity) generator with M weights.
func NewMAGenerator(d float64, m int, r *rng.Source) (*MAGenerator, error) {
	if err := (ACF{D: d}).Validate(); err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, errors.New("farima: non-positive truncation length")
	}
	psi := make([]float64, m)
	psi[0] = 1
	for j := 1; j < m; j++ {
		// psi_j = psi_{j-1} * (j-1+d)/j
		psi[j] = psi[j-1] * (float64(j) - 1 + d) / float64(j)
	}
	// Normalize to unit output variance: var = sum psi_j^2.
	var v float64
	for _, p := range psi {
		v += p * p
	}
	s := 1 / math.Sqrt(v)
	for j := range psi {
		psi[j] *= s
	}
	g := &MAGenerator{psi: psi, buf: make([]float64, m), rng: r}
	// Warm up the innovation history so the first outputs are stationary.
	for i := 0; i < m; i++ {
		g.buf[i] = r.Norm()
	}
	return g, nil
}

// Next returns the next sample of the approximate FARIMA process.
func (g *MAGenerator) Next() float64 {
	g.buf[g.pos] = g.rng.Norm()
	var x float64
	idx := g.pos
	for _, p := range g.psi {
		x += p * g.buf[idx]
		idx--
		if idx < 0 {
			idx = len(g.buf) - 1
		}
	}
	g.pos++
	if g.pos == len(g.buf) {
		g.pos = 0
	}
	return x
}

// Path returns n consecutive samples.
func (g *MAGenerator) Path(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
