package farima

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

func TestACFKnownValues(t *testing.T) {
	// rho(1) = d/(1-d).
	for _, d := range []float64{0.1, 0.25, 0.4, -0.2} {
		a := ACF{D: d}
		want := d / (1 - d)
		if got := a.At(1); math.Abs(got-want) > 1e-14 {
			t.Errorf("d=%v: rho(1) = %v, want %v", d, got, want)
		}
	}
	// d=0 is white noise.
	a0 := ACF{D: 0}
	if a0.At(1) != 0 || a0.At(100) != 0 || a0.At(0) != 1 {
		t.Error("d=0 should be white noise")
	}
}

func TestACFRecurrenceMatchesGammaForm(t *testing.T) {
	d := 0.3
	a := ACF{D: d}
	for _, k := range []int{1, 5, 50, 500, 4096} {
		lgKd, _ := math.Lgamma(float64(k) + d)
		lg1d, _ := math.Lgamma(1 - d)
		lgK1d, _ := math.Lgamma(float64(k) - d + 1)
		lgD, _ := math.Lgamma(d)
		want := math.Exp(lgKd + lg1d - lgK1d - lgD)
		if got := a.At(k); math.Abs(got-want)/want > 1e-10 {
			t.Errorf("rho(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestACFAsymptoticCrossover(t *testing.T) {
	// The recurrence (k=4096) and asymptotic (k=4097) branches must agree.
	a := ACF{D: 0.4}
	r1, r2 := a.At(4096), a.At(4097)
	if math.Abs(r1-r2)/r1 > 0.01 {
		t.Errorf("crossover mismatch: %v vs %v", r1, r2)
	}
}

func TestHurstMapping(t *testing.T) {
	if got := (ACF{D: 0.4}).Hurst(); got != 0.9 {
		t.Errorf("Hurst = %v, want 0.9", got)
	}
	if got := FromHurst(0.9).D; math.Abs(got-0.4) > 1e-15 {
		t.Errorf("FromHurst(0.9).D = %v, want 0.4", got)
	}
}

func TestValidate(t *testing.T) {
	for _, d := range []float64{-0.5, 0.5, 0.7, -1} {
		if err := (ACF{D: d}).Validate(); err == nil {
			t.Errorf("d=%v accepted", d)
		}
	}
	if err := (ACF{D: 0.49}).Validate(); err != nil {
		t.Errorf("d=0.49 rejected: %v", err)
	}
}

func TestPlanPartialCorrelationsIdentity(t *testing.T) {
	// FARIMA(0,d,0) has phi_kk = d/(k-d) exactly (Hosking 1981).
	d := 0.3
	p, err := NewPlan(d, 200)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < 200; k++ {
		want := d / (float64(k) - d)
		if got := p.PartialCorr(k); math.Abs(got-want) > 1e-8 {
			t.Fatalf("phi_%d%d = %v, want %v", k, k, got, want)
		}
	}
}

func TestPlanRejectsBadD(t *testing.T) {
	if _, err := NewPlan(0.6, 10); err == nil {
		t.Error("d=0.6 accepted")
	}
}

func TestExactGenerationACF(t *testing.T) {
	d := 0.4
	p, err := NewPlan(d, 800)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	model := ACF{D: d}
	// Sample ACFs of strongly LRD paths are noisy; pool many replications.
	acov := make([]float64, 21)
	for rep := 0; rep < 400; rep++ {
		x := p.Path(r, 800)
		a := stats.AutocovarianceKnownMean(x, 0, 20)
		for k := range acov {
			acov[k] += a[k]
		}
	}
	for k := 1; k <= 20; k++ {
		got := acov[k] / acov[0]
		want := model.At(k)
		if math.Abs(got-want) > 0.04 {
			t.Errorf("acf[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestMAGeneratorACF(t *testing.T) {
	d := 0.3
	g, err := NewMAGenerator(d, 4096, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	x := g.Path(1 << 17)
	model := ACF{D: d}
	a := stats.AutocorrelationKnownMean(x, 0, 50)
	for _, k := range []int{1, 2, 5, 10, 30, 50} {
		want := model.At(k)
		if math.Abs(a[k]-want) > 0.05 {
			t.Errorf("MA acf[%d] = %v, want %v", k, a[k], want)
		}
	}
	// Unit variance by construction.
	_, v := stats.MeanVar(x)
	if math.Abs(v-1) > 0.1 {
		t.Errorf("MA variance = %v, want ~1", v)
	}
}

func TestMAGeneratorValidation(t *testing.T) {
	if _, err := NewMAGenerator(0.9, 100, rng.New(1)); err == nil {
		t.Error("bad d accepted")
	}
	if _, err := NewMAGenerator(0.3, 0, rng.New(1)); err == nil {
		t.Error("zero truncation accepted")
	}
}

func TestMAGeneratorDeterminism(t *testing.T) {
	g1, _ := NewMAGenerator(0.3, 128, rng.New(77))
	g2, _ := NewMAGenerator(0.3, 128, rng.New(77))
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("MA generator not deterministic at step %d", i)
		}
	}
}

func BenchmarkMAGeneratorNext(b *testing.B) {
	g, err := NewMAGenerator(0.4, 1024, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += g.Next()
	}
	_ = sink
}
