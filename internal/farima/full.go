// Full FARIMA(p,d,q) with p,q <= 1. The paper notes that "an ARIMA(p,d,q)
// model can be used to model both LRD and SRD at the same time, [but] it
// may be difficult to obtain accurate estimates of the p and q parameters"
// — which motivated its direct ACF modeling. This file implements the
// alternative so the two approaches can be compared: the process
//
//	(1 - phi B) X_t = (1 + theta B) (1 - B)^{-d} eps_t
//
// with |phi|, |theta| < 1 and d in (-1/2, 1/2). The autocovariance is
// computed from the MA(infinity) representation with an analytic correction
// for the truncated tail (psi_j ~ c j^{d-1}, so the tail of the
// psi-convolution behaves like a power integral), which keeps the ACF
// accurate to ~1e-4 even deep in the LRD regime.
package farima

import (
	"errors"
	"math"

	"vbrsim/internal/fft"
	"vbrsim/internal/hosking"
)

// Full is the FARIMA(1,d,1) family (set Phi or Theta to 0 for (0,d,1) /
// (1,d,0) / (0,d,0)).
type Full struct {
	Phi   float64 // AR(1) coefficient, |Phi| < 1
	D     float64 // fractional differencing order
	Theta float64 // MA(1) coefficient, |Theta| < 1

	// acf cache, built lazily by prepare().
	acf []float64
}

// maCoeffLen is the truncation of the MA(infinity) expansion used for the
// autocovariance convolution.
const maCoeffLen = 1 << 16

// maxFullLag bounds how many exact lags the cached ACF covers.
const maxFullLag = 4096

// NewFull validates and precomputes the autocorrelation table.
func NewFull(phi, d, theta float64) (*Full, error) {
	f := &Full{Phi: phi, D: d, Theta: theta}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	f.prepare()
	return f, nil
}

// Validate checks the parameter ranges.
func (f *Full) Validate() error {
	if math.Abs(f.Phi) >= 1 {
		return errors.New("farima: |phi| must be < 1")
	}
	if math.Abs(f.Theta) >= 1 {
		return errors.New("farima: |theta| must be < 1")
	}
	if f.D <= -0.5 || f.D >= 0.5 {
		return errors.New("farima: d must lie in (-1/2, 1/2)")
	}
	return nil
}

// Hurst returns D + 1/2 (the AR/MA parts do not change the tail exponent).
func (f *Full) Hurst() float64 { return f.D + 0.5 }

// prepare fills the normalized ACF table at full quality.
func (f *Full) prepare() { f.prepareWith(maCoeffLen, maxFullLag) }

// prepareWith fills the ACF table using m psi-coefficients and maxLag
// cached lags. The psi-convolution gamma(k) = sum_j psi_j psi_{j+k} is the
// (unnormalized) autocorrelation of the psi sequence, computed in
// O(m log m) by FFT, plus an analytic power-law correction for the
// truncated tail: for j > m, psi_j ~ c j^{d-1}, so the missing mass is
// ~ c^2 (m + k/2)^{2d-1} / (1-2d).
func (f *Full) prepareWith(m, maxLag int) {
	psi := f.psiWeights(m)
	acov := fft.AutocovarianceKnownMean(psi, 0, maxLag)
	n := float64(len(psi))
	c := f.asymptoticPsiConstant()
	gamma := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		s := acov[k] * n
		if f.D != 0 {
			s += c * c * math.Pow(float64(m)+float64(k)/2, 2*f.D-1) / (1 - 2*f.D)
		}
		gamma[k] = s
	}
	f.acf = make([]float64, maxLag+1)
	for k := range f.acf {
		f.acf[k] = gamma[k] / gamma[0]
	}
}

// psiWeights returns the first n MA(infinity) coefficients.
func (f *Full) psiWeights(n int) []float64 {
	// Fractional integration weights f_j = Gamma(j+d)/(Gamma(j+1)Gamma(d)).
	frac := make([]float64, n)
	frac[0] = 1
	for j := 1; j < n; j++ {
		frac[j] = frac[j-1] * (float64(j) - 1 + f.D) / float64(j)
	}
	// Apply MA(1): g_j = f_j + theta f_{j-1}.
	g := make([]float64, n)
	g[0] = frac[0]
	for j := 1; j < n; j++ {
		g[j] = frac[j] + f.Theta*frac[j-1]
	}
	// Apply AR(1): psi_j = g_j + phi psi_{j-1}.
	psi := make([]float64, n)
	psi[0] = g[0]
	for j := 1; j < n; j++ {
		psi[j] = g[j] + f.Phi*psi[j-1]
	}
	return psi
}

// asymptoticPsiConstant returns c in psi_j ~ c j^{d-1}.
func (f *Full) asymptoticPsiConstant() float64 {
	if f.D == 0 {
		return 0
	}
	lg, _ := math.Lgamma(f.D)
	return (1 + f.Theta) / (1 - f.Phi) / math.Exp(lg)
}

// At returns the autocorrelation at lag k. Beyond the cached range it uses
// the asymptotic power law rho(k) ~ rho(K) (k/K)^{2d-1}.
func (f *Full) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	if f.acf == nil {
		f.prepare()
	}
	if k < len(f.acf) {
		return f.acf[k]
	}
	last := len(f.acf) - 1
	if f.D == 0 {
		return 0
	}
	return f.acf[last] * math.Pow(float64(k)/float64(last), 2*f.D-1)
}

// Plan builds an exact Durbin-Levinson generation plan of length n.
func (f *Full) Plan(n int) (*hosking.Plan, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return hosking.NewPlan(f, n)
}

// FitFullOptions controls FitFull.
type FitFullOptions struct {
	// D fixes the fractional order (e.g. from a Hurst estimate); required.
	D float64
	// MaxLag bounds the ACF region fitted; default 100.
	MaxLag int
	// Grid is the number of candidate values per AR/MA coefficient in
	// [-0.9, 0.9]; default 19.
	Grid int
}

// FitFull fits FARIMA(1,d,1) coefficients to an empirical ACF by grid
// search over (phi, theta) with d fixed — the "difficult estimation" the
// paper sidesteps, implemented here as the honest comparator. It returns
// the best-fitting model and its SSE against the empirical ACF.
func FitFull(empirical []float64, opt FitFullOptions) (*Full, float64, error) {
	if opt.D <= -0.5 || opt.D >= 0.5 {
		return nil, 0, errors.New("farima: FitFull requires d in (-1/2, 1/2)")
	}
	if opt.MaxLag <= 0 {
		opt.MaxLag = 100
	}
	if opt.MaxLag >= len(empirical) {
		opt.MaxLag = len(empirical) - 1
	}
	if opt.MaxLag < 4 {
		return nil, 0, errors.New("farima: empirical ACF too short")
	}
	if opt.Grid <= 1 {
		opt.Grid = 19
	}
	bestSSE := math.Inf(1)
	var best *Full
	for i := 0; i < opt.Grid; i++ {
		phi := -0.9 + 1.8*float64(i)/float64(opt.Grid-1)
		for j := 0; j < opt.Grid; j++ {
			theta := -0.9 + 1.8*float64(j)/float64(opt.Grid-1)
			cand := &Full{Phi: phi, D: opt.D, Theta: theta}
			// Reduced-quality ACF is plenty for ranking candidates.
			cand.prepareWith(1<<14, opt.MaxLag)
			var sse float64
			for k := 1; k <= opt.MaxLag; k++ {
				d := empirical[k] - cand.At(k)
				sse += d * d
			}
			if sse < bestSSE {
				bestSSE = sse
				best = cand
			}
		}
	}
	if best == nil {
		return nil, 0, errors.New("farima: grid search failed")
	}
	// Refresh the winner at full quality.
	best.prepare()
	return best, bestSSE, nil
}
