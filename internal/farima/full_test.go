package farima

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

func TestFullValidation(t *testing.T) {
	bad := []struct{ phi, d, theta float64 }{
		{1.0, 0.3, 0},
		{0, 0.3, -1.0},
		{0, 0.5, 0},
		{0, -0.5, 0},
	}
	for i, tc := range bad {
		if _, err := NewFull(tc.phi, tc.d, tc.theta); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := NewFull(0.5, 0.3, -0.4); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestFullReducesToPureFractional(t *testing.T) {
	// phi = theta = 0 must match the closed-form FARIMA(0,d,0) ACF.
	for _, d := range []float64{0.2, 0.4, -0.2} {
		full, err := NewFull(0, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact := ACF{D: d}
		for _, k := range []int{1, 2, 5, 20, 100, 1000, 4000} {
			got := full.At(k)
			want := exact.At(k)
			if math.Abs(got-want) > 2e-3 {
				t.Errorf("d=%v lag %d: %v vs exact %v", d, k, got, want)
			}
		}
	}
}

func TestFullReducesToAR1(t *testing.T) {
	// d = theta = 0 is AR(1): rho(k) = phi^k.
	phi := 0.7
	full, err := NewFull(phi, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 10; k++ {
		want := math.Pow(phi, float64(k))
		if got := full.At(k); math.Abs(got-want) > 1e-6 {
			t.Errorf("AR(1) lag %d: %v vs %v", k, got, want)
		}
	}
}

func TestFullReducesToMA1(t *testing.T) {
	// phi = d = 0 is MA(1): rho(1) = theta/(1+theta^2), rho(k>1) = 0.
	theta := 0.6
	full, err := NewFull(0, 0, theta)
	if err != nil {
		t.Fatal(err)
	}
	want1 := theta / (1 + theta*theta)
	if got := full.At(1); math.Abs(got-want1) > 1e-9 {
		t.Errorf("MA(1) lag 1: %v vs %v", got, want1)
	}
	for k := 2; k <= 5; k++ {
		if got := full.At(k); math.Abs(got) > 1e-9 {
			t.Errorf("MA(1) lag %d: %v, want 0", k, got)
		}
	}
}

func TestFullSRDPlusLRDShape(t *testing.T) {
	// FARIMA(1,d,0) with positive phi: faster early decay than pure
	// fractional... actually AR adds positive short-range correlation on
	// top. Check lag-1 is boosted and the far tail keeps the pure
	// fractional exponent.
	d := 0.3
	pure, err := NewFull(0, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewFull(0.6, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.At(1) <= pure.At(1) {
		t.Errorf("AR part did not raise short-lag correlation: %v vs %v", mixed.At(1), pure.At(1))
	}
	// Tail exponent: rho(2k)/rho(k) -> 2^{2d-1} for both.
	want := math.Pow(2, 2*d-1)
	for _, f := range []*Full{pure, mixed} {
		ratio := f.At(4000) / f.At(2000)
		if math.Abs(ratio-want) > 0.02 {
			t.Errorf("tail ratio %v, want %v", ratio, want)
		}
	}
	if mixed.Hurst() != 0.8 {
		t.Errorf("Hurst = %v, want 0.8", mixed.Hurst())
	}
}

func TestFullGenerationMatchesACF(t *testing.T) {
	full, err := NewFull(0.5, 0.3, -0.2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := full.Plan(600)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	pooled := make([]float64, 21)
	for rep := 0; rep < 300; rep++ {
		x := plan.Path(r, 600)
		a := stats.AutocovarianceKnownMean(x, 0, 20)
		for k := range pooled {
			pooled[k] += a[k]
		}
	}
	for k := 1; k <= 20; k++ {
		got := pooled[k] / pooled[0]
		want := full.At(k)
		if math.Abs(got-want) > 0.04 {
			t.Errorf("generated acf[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestFitFullRecoversKnownModel(t *testing.T) {
	truth, err := NewFull(0.5, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	empirical := make([]float64, 201)
	for k := range empirical {
		empirical[k] = truth.At(k)
	}
	got, sse, err := FitFull(empirical, FitFullOptions{D: 0.3, MaxLag: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sse > 1e-3 {
		t.Errorf("fit SSE = %v", sse)
	}
	if math.Abs(got.Phi-0.5) > 0.11 {
		t.Errorf("phi = %v, want ~0.5", got.Phi)
	}
	if math.Abs(got.Theta) > 0.11 {
		t.Errorf("theta = %v, want ~0", got.Theta)
	}
}

func TestFitFullValidation(t *testing.T) {
	emp := make([]float64, 50)
	if _, _, err := FitFull(emp, FitFullOptions{D: 0.7}); err == nil {
		t.Error("bad d accepted")
	}
	if _, _, err := FitFull(emp[:3], FitFullOptions{D: 0.3}); err == nil {
		t.Error("tiny ACF accepted")
	}
}

func BenchmarkFullPrepare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := &Full{Phi: 0.5, D: 0.3, Theta: -0.2}
		f.prepare()
	}
}
