// Package trace provides the video frame-size trace container used across
// the library: a sequence of per-frame byte counts annotated with MPEG frame
// types (I/P/B) and group-of-pictures (GOP) metadata. It mirrors the shape
// of the empirical record in the paper's Table 1 (bytes per frame of an
// MPEG-1 encoding at 30 frames/s with a 12-frame GOP) and supports the
// slicing the modeling pipeline needs: extracting one frame type, computing
// summary statistics, and round-tripping through CSV and a compact binary
// format.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"vbrsim/internal/stats"
)

// FrameType identifies the MPEG-1 coding mode of a frame.
type FrameType uint8

// Frame types in an MPEG-1 stream.
const (
	FrameI FrameType = iota // intraframe-coded
	FrameP                  // forward predicted
	FrameB                  // bidirectionally predicted
)

// String returns "I", "P" or "B".
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// ParseFrameType converts "I"/"P"/"B" (any case) to a FrameType.
func ParseFrameType(s string) (FrameType, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "I":
		return FrameI, nil
	case "P":
		return FrameP, nil
	case "B":
		return FrameB, nil
	default:
		return 0, fmt.Errorf("trace: unknown frame type %q", s)
	}
}

// DefaultGOP is the paper's group-of-pictures pattern: IBBPBBPBBPBB, twelve
// frames with I frames appearing periodically once every 12 frames.
var DefaultGOP = []FrameType{
	FrameI, FrameB, FrameB, FrameP, FrameB, FrameB,
	FrameP, FrameB, FrameB, FrameP, FrameB, FrameB,
}

// Trace is a VBR video trace: per-frame sizes in bytes plus frame types.
// Types may be nil for traces without GOP structure (e.g. intraframe-only
// or slice-level records); all operations degrade gracefully in that case.
type Trace struct {
	// Sizes holds bytes per frame.
	Sizes []float64
	// Types holds the frame type of each frame; nil or same length as Sizes.
	Types []FrameType
	// FrameRate is frames per second (Table 1: 30).
	FrameRate float64
	// GOPLength is the I-frame period K_I (Table 1 codec: 12); 0 if unknown.
	GOPLength int
}

// Validate checks structural invariants.
func (tr *Trace) Validate() error {
	if len(tr.Sizes) == 0 {
		return errors.New("trace: empty trace")
	}
	if tr.Types != nil && len(tr.Types) != len(tr.Sizes) {
		return errors.New("trace: types/sizes length mismatch")
	}
	for i, s := range tr.Sizes {
		if s < 0 {
			return fmt.Errorf("trace: negative size at frame %d", i)
		}
	}
	return nil
}

// Len returns the number of frames.
func (tr *Trace) Len() int { return len(tr.Sizes) }

// Duration returns the playing time in seconds, or 0 when the frame rate is
// unknown.
func (tr *Trace) Duration() float64 {
	if tr.FrameRate <= 0 {
		return 0
	}
	return float64(len(tr.Sizes)) / tr.FrameRate
}

// ByType returns the sizes of all frames with the given type, in order.
// It returns nil when the trace carries no type information.
func (tr *Trace) ByType(t FrameType) []float64 {
	if tr.Types == nil {
		return nil
	}
	var out []float64
	for i, ft := range tr.Types {
		if ft == t {
			out = append(out, tr.Sizes[i])
		}
	}
	return out
}

// TypeCounts returns how many frames of each type the trace contains.
func (tr *Trace) TypeCounts() map[FrameType]int {
	out := map[FrameType]int{}
	for _, t := range tr.Types {
		out[t]++
	}
	return out
}

// Window returns the sub-trace of frames [lo, hi). It shares no storage
// with the original. It panics on an invalid range.
func (tr *Trace) Window(lo, hi int) *Trace {
	if lo < 0 || hi > len(tr.Sizes) || lo >= hi {
		panic("trace: invalid window")
	}
	out := &Trace{
		Sizes:     append([]float64(nil), tr.Sizes[lo:hi]...),
		FrameRate: tr.FrameRate,
		GOPLength: tr.GOPLength,
	}
	if tr.Types != nil {
		out.Types = append([]FrameType(nil), tr.Types[lo:hi]...)
	}
	return out
}

// Concat appends other's frames to a copy of the trace. Frame rate and GOP
// metadata come from the receiver; type information survives only if both
// traces carry it.
func (tr *Trace) Concat(other *Trace) *Trace {
	out := &Trace{
		Sizes:     append(append([]float64(nil), tr.Sizes...), other.Sizes...),
		FrameRate: tr.FrameRate,
		GOPLength: tr.GOPLength,
	}
	if tr.Types != nil && other.Types != nil {
		out.Types = append(append([]FrameType(nil), tr.Types...), other.Types...)
	}
	return out
}

// GOPTotals returns the total bytes of each complete group of pictures —
// the natural aggregation unit for Hurst estimation on interframe streams
// (it removes the deterministic I/P/B periodicity). The trailing partial
// GOP is dropped. It returns nil when GOPLength is unknown.
func (tr *Trace) GOPTotals() []float64 {
	if tr.GOPLength <= 0 {
		return nil
	}
	nGOP := len(tr.Sizes) / tr.GOPLength
	out := make([]float64, nGOP)
	for g := 0; g < nGOP; g++ {
		var s float64
		for i := g * tr.GOPLength; i < (g+1)*tr.GOPLength; i++ {
			s += tr.Sizes[i]
		}
		out[g] = s
	}
	return out
}

// Summary holds the per-trace statistics reported in Table 1 and used by the
// modeling pipeline.
type Summary struct {
	Frames      int
	Duration    float64 // seconds
	FrameRate   float64
	GOPLength   int
	MeanBytes   float64
	StdBytes    float64
	MinBytes    float64
	MaxBytes    float64
	PeakToMean  float64
	MeanBitRate float64 // bits per second, 0 when frame rate unknown
	TypeCounts  map[FrameType]int
}

// Summarize computes the trace summary.
func (tr *Trace) Summarize() Summary {
	mean, variance := stats.MeanVar(tr.Sizes)
	s := Summary{
		Frames:     len(tr.Sizes),
		Duration:   tr.Duration(),
		FrameRate:  tr.FrameRate,
		GOPLength:  tr.GOPLength,
		MeanBytes:  mean,
		StdBytes:   math.Sqrt(variance),
		MinBytes:   stats.Min(tr.Sizes),
		MaxBytes:   stats.Max(tr.Sizes),
		TypeCounts: tr.TypeCounts(),
	}
	if mean > 0 {
		s.PeakToMean = s.MaxBytes / mean
	}
	if tr.FrameRate > 0 {
		s.MeanBitRate = mean * 8 * tr.FrameRate
	}
	return s
}

// ---------------------------------------------------------------------------
// CSV format: one line per frame, "index,type,bytes" with a header line.

// WriteCSV writes the trace in a simple CSV form.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# frame,type,bytes fps=%g gop=%d\n", tr.FrameRate, tr.GOPLength); err != nil {
		return err
	}
	for i, sz := range tr.Sizes {
		t := "?"
		if tr.Types != nil {
			t = tr.Types[i].String()
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%g\n", i, t, sz); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	tr := &Trace{}
	haveTypes := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Header: extract fps= and gop= if present.
			for _, tok := range strings.Fields(line) {
				if v, ok := strings.CutPrefix(tok, "fps="); ok {
					if f, err := strconv.ParseFloat(v, 64); err == nil {
						tr.FrameRate = f
					}
				}
				if v, ok := strings.CutPrefix(tok, "gop="); ok {
					if g, err := strconv.Atoi(v); err == nil {
						tr.GOPLength = g
					}
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: malformed CSV line %q", line)
		}
		sz, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad size in line %q: %v", line, err)
		}
		tr.Sizes = append(tr.Sizes, sz)
		if haveTypes {
			ft, err := ParseFrameType(parts[1])
			if err != nil {
				haveTypes = false
				tr.Types = nil
			} else {
				tr.Types = append(tr.Types, ft)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ---------------------------------------------------------------------------
// Binary format: magic, header, then float64 sizes and byte types.

var binaryMagic = [4]byte{'V', 'B', 'R', '1'}

// WriteBinary writes the trace in a compact binary format.
func (tr *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := struct {
		Frames    uint64
		FrameRate float64
		GOPLength uint32
		HasTypes  uint32
	}{uint64(len(tr.Sizes)), tr.FrameRate, uint32(tr.GOPLength), 0}
	if tr.Types != nil {
		hdr.HasTypes = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, tr.Sizes); err != nil {
		return err
	}
	if tr.Types != nil {
		types := make([]uint8, len(tr.Types))
		for i, t := range tr.Types {
			types[i] = uint8(t)
		}
		if err := binary.Write(bw, binary.LittleEndian, types); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, errors.New("trace: bad magic in binary trace")
	}
	var hdr struct {
		Frames    uint64
		FrameRate float64
		GOPLength uint32
		HasTypes  uint32
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	const maxFrames = 1 << 28 // sanity cap: ~268M frames
	if hdr.Frames == 0 || hdr.Frames > maxFrames {
		return nil, fmt.Errorf("trace: implausible frame count %d", hdr.Frames)
	}
	tr := &Trace{
		Sizes:     make([]float64, hdr.Frames),
		FrameRate: hdr.FrameRate,
		GOPLength: int(hdr.GOPLength),
	}
	if err := binary.Read(br, binary.LittleEndian, tr.Sizes); err != nil {
		return nil, err
	}
	if hdr.HasTypes == 1 {
		types := make([]uint8, hdr.Frames)
		if err := binary.Read(br, binary.LittleEndian, types); err != nil {
			return nil, err
		}
		tr.Types = make([]FrameType, hdr.Frames)
		for i, t := range types {
			if t > uint8(FrameB) {
				return nil, fmt.Errorf("trace: invalid frame type %d at frame %d", t, i)
			}
			tr.Types[i] = FrameType(t)
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
