package trace

import (
	"bytes"
	"testing"
)

// FuzzReadCSV hardens the CSV parser: arbitrary input must never panic, and
// any trace it accepts must round-trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	tr := &Trace{
		Sizes:     []float64{100, 200, 300},
		Types:     []FrameType{FrameI, FrameB, FrameP},
		FrameRate: 30,
		GOPLength: 12,
	}
	if err := tr.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("# frame,type,bytes fps=30 gop=12\n0,I,100\n"))
	f.Add([]byte("0,?,1.5\n1,?,2.5\n"))
	f.Add([]byte(""))
	f.Add([]byte("0,I,NaN\n"))
	f.Add([]byte("0,I,-5\n"))
	f.Add([]byte("not,a,trace,at,all\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must satisfy the invariants Validate promises.
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		// And must round-trip through the writer.
		var buf bytes.Buffer
		if err := got.WriteCSV(&buf); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round trip changed length: %d vs %d", again.Len(), got.Len())
		}
	})
}

// FuzzReadBinary hardens the binary parser against corrupted headers and
// truncated payloads.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	tr := &Trace{
		Sizes:     []float64{100, 200, 300},
		Types:     []FrameType{FrameI, FrameB, FrameP},
		FrameRate: 30,
		GOPLength: 12,
	}
	if err := tr.WriteBinary(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("VBR1"))
	f.Add([]byte("XXXX0000"))
	f.Add(seed.Bytes()[:10])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := got.WriteBinary(&buf); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
		if again.Len() != got.Len() {
			t.Fatalf("round trip changed length: %d vs %d", again.Len(), got.Len())
		}
	})
}
