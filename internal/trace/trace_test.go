package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	tr := &Trace{
		Sizes:     []float64{9000, 2000, 2100, 5000, 2200, 1900, 4800, 2050, 1950, 5100, 2000, 2080},
		FrameRate: 30,
		GOPLength: 12,
	}
	tr.Types = append([]FrameType(nil), DefaultGOP...)
	return tr
}

func TestFrameTypeStringAndParse(t *testing.T) {
	for _, tc := range []struct {
		ft FrameType
		s  string
	}{{FrameI, "I"}, {FrameP, "P"}, {FrameB, "B"}} {
		if tc.ft.String() != tc.s {
			t.Errorf("String(%v) = %q", tc.ft, tc.ft.String())
		}
		got, err := ParseFrameType(strings.ToLower(tc.s))
		if err != nil || got != tc.ft {
			t.Errorf("ParseFrameType(%q) = %v, %v", tc.s, got, err)
		}
	}
	if _, err := ParseFrameType("X"); err == nil {
		t.Error("unknown frame type accepted")
	}
	if s := FrameType(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown type String = %q", s)
	}
}

func TestDefaultGOPPattern(t *testing.T) {
	if len(DefaultGOP) != 12 {
		t.Fatalf("GOP length = %d, want 12", len(DefaultGOP))
	}
	if DefaultGOP[0] != FrameI {
		t.Error("GOP must start with I")
	}
	counts := map[FrameType]int{}
	for _, ft := range DefaultGOP {
		counts[ft]++
	}
	if counts[FrameI] != 1 || counts[FrameP] != 3 || counts[FrameB] != 8 {
		t.Errorf("GOP composition = %v, want I=1 P=3 B=8", counts)
	}
}

func TestValidate(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	if err := (&Trace{}).Validate(); err == nil {
		t.Error("empty trace accepted")
	}
	bad := sampleTrace()
	bad.Types = bad.Types[:3]
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	neg := sampleTrace()
	neg.Sizes[0] = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative size accepted")
	}
}

func TestByTypeAndCounts(t *testing.T) {
	tr := sampleTrace()
	iSizes := tr.ByType(FrameI)
	if len(iSizes) != 1 || iSizes[0] != 9000 {
		t.Errorf("I sizes = %v", iSizes)
	}
	pSizes := tr.ByType(FrameP)
	if len(pSizes) != 3 {
		t.Errorf("P count = %d, want 3", len(pSizes))
	}
	bSizes := tr.ByType(FrameB)
	if len(bSizes) != 8 {
		t.Errorf("B count = %d, want 8", len(bSizes))
	}
	counts := tr.TypeCounts()
	if counts[FrameI] != 1 || counts[FrameP] != 3 || counts[FrameB] != 8 {
		t.Errorf("TypeCounts = %v", counts)
	}
	// Untyped trace.
	untyped := &Trace{Sizes: []float64{1, 2}}
	if untyped.ByType(FrameI) != nil {
		t.Error("untyped ByType should be nil")
	}
}

func TestSummarize(t *testing.T) {
	tr := sampleTrace()
	s := tr.Summarize()
	if s.Frames != 12 {
		t.Errorf("Frames = %d", s.Frames)
	}
	if math.Abs(s.Duration-0.4) > 1e-12 {
		t.Errorf("Duration = %v, want 0.4", s.Duration)
	}
	if s.MinBytes != 1900 || s.MaxBytes != 9000 {
		t.Errorf("Min/Max = %v/%v", s.MinBytes, s.MaxBytes)
	}
	if s.PeakToMean <= 1 {
		t.Errorf("PeakToMean = %v", s.PeakToMean)
	}
	wantRate := s.MeanBytes * 8 * 30
	if math.Abs(s.MeanBitRate-wantRate) > 1e-9 {
		t.Errorf("MeanBitRate = %v, want %v", s.MeanBitRate, wantRate)
	}
	// No frame rate -> zero duration and bitrate.
	tr2 := &Trace{Sizes: []float64{1, 2, 3}}
	s2 := tr2.Summarize()
	if s2.Duration != 0 || s2.MeanBitRate != 0 {
		t.Error("unknown frame rate should zero duration/bitrate")
	}
}

func TestWindow(t *testing.T) {
	tr := sampleTrace()
	w := tr.Window(3, 7)
	if w.Len() != 4 {
		t.Fatalf("window len %d", w.Len())
	}
	if w.Sizes[0] != tr.Sizes[3] || w.Types[0] != tr.Types[3] {
		t.Error("window content wrong")
	}
	// Mutating the window must not touch the original.
	w.Sizes[0] = -999
	if tr.Sizes[3] == -999 {
		t.Error("window shares storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid window did not panic")
		}
	}()
	tr.Window(5, 5)
}

func TestConcat(t *testing.T) {
	tr := sampleTrace()
	both := tr.Concat(tr)
	if both.Len() != 2*tr.Len() {
		t.Fatalf("concat len %d", both.Len())
	}
	if both.Types == nil || both.Types[12] != tr.Types[0] {
		t.Error("types not concatenated")
	}
	// Untyped partner drops types.
	untyped := &Trace{Sizes: []float64{1, 2}}
	mixed := tr.Concat(untyped)
	if mixed.Types != nil {
		t.Error("mixed concat kept types")
	}
}

func TestGOPTotals(t *testing.T) {
	tr := sampleTrace() // 12 frames, GOP 12
	totals := tr.GOPTotals()
	if len(totals) != 1 {
		t.Fatalf("GOP totals len %d", len(totals))
	}
	var want float64
	for _, v := range tr.Sizes {
		want += v
	}
	if totals[0] != want {
		t.Errorf("GOP total %v, want %v", totals[0], want)
	}
	// Unknown GOP length.
	if (&Trace{Sizes: []float64{1, 2}}).GOPTotals() != nil {
		t.Error("unknown GOP should return nil")
	}
	// Partial trailing GOP dropped.
	longer := tr.Concat(tr.Window(0, 5))
	if got := longer.GOPTotals(); len(got) != 1 {
		t.Errorf("partial GOP not dropped: %d totals", len(got))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameRate != 30 || got.GOPLength != 12 {
		t.Errorf("header lost: fps=%v gop=%d", got.FrameRate, got.GOPLength)
	}
	if len(got.Sizes) != len(tr.Sizes) {
		t.Fatalf("size count = %d, want %d", len(got.Sizes), len(tr.Sizes))
	}
	for i := range tr.Sizes {
		if got.Sizes[i] != tr.Sizes[i] {
			t.Errorf("size[%d] = %v, want %v", i, got.Sizes[i], tr.Sizes[i])
		}
		if got.Types[i] != tr.Types[i] {
			t.Errorf("type[%d] = %v, want %v", i, got.Types[i], tr.Types[i])
		}
	}
}

func TestCSVUntypedRoundTrip(t *testing.T) {
	tr := &Trace{Sizes: []float64{1.5, 2.5, 3.5}, FrameRate: 24}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Types != nil {
		t.Error("untyped trace grew types")
	}
	if len(got.Sizes) != 3 || got.Sizes[2] != 3.5 {
		t.Errorf("sizes = %v", got.Sizes)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,csv\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadCSV(strings.NewReader("0,I,abc\n")); err == nil {
		t.Error("bad size accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameRate != tr.FrameRate || got.GOPLength != tr.GOPLength {
		t.Error("binary header lost")
	}
	for i := range tr.Sizes {
		if got.Sizes[i] != tr.Sizes[i] || got.Types[i] != tr.Types[i] {
			t.Fatalf("binary mismatch at %d", i)
		}
	}
}

func TestBinaryUntyped(t *testing.T) {
	tr := &Trace{Sizes: []float64{7, 8}}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Types != nil {
		t.Error("untyped binary trace grew types")
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty binary accepted")
	}
	// Truncated payload.
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-20]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated binary accepted")
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(raw []float64, fps float64) bool {
		var sizes []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sizes = append(sizes, math.Abs(v))
			}
		}
		if len(sizes) == 0 {
			return true
		}
		tr := &Trace{Sizes: sizes, FrameRate: math.Abs(fps)}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Sizes) != len(sizes) {
			return false
		}
		for i := range sizes {
			if got.Sizes[i] != sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
