package modelspec

import (
	"context"
	"math"
	"strings"
	"testing"

	"vbrsim/internal/dist"
	"vbrsim/internal/mpegtrace"
	"vbrsim/internal/rng"
	"vbrsim/internal/tes"
)

func mustOpen(t *testing.T, s *Spec) *Stream {
	t.Helper()
	st, err := s.OpenCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestGOPEngineMatchesMpegtrace(t *testing.T) {
	// The gop engine is the §3.3 simulator behind the spec wire format: its
	// frames must be the mpegtrace sizes bit for bit.
	s := &Spec{Seed: 31, Engine: EngineGOP, GOP: &GOPSpec{}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := mpegtrace.Generate(mpegtrace.Config{Frames: 4096, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	st := mustOpen(t, s)
	got := make([]float64, 4096)
	st.Fill(got)
	for i := range got {
		if got[i] != tr.Sizes[i] {
			t.Fatalf("frame %d: %v != mpegtrace %v", i, got[i], tr.Sizes[i])
		}
	}
	if st.Order() != 0 || st.MaxACFError() != 0 {
		t.Errorf("gop engine reported a plan: order=%d err=%v", st.Order(), st.MaxACFError())
	}
	cfg, _ := s.GOP.Config(31)
	if st.MeanRate() != cfg.MeanBytesPerFrame() {
		t.Errorf("MeanRate = %v, want analytic %v", st.MeanRate(), cfg.MeanBytesPerFrame())
	}
}

func TestTESEngineMatchesGenerator(t *testing.T) {
	s := &Spec{
		Seed:     7,
		Engine:   EngineTES,
		TES:      &TESSpec{Alpha: 0.3},
		Marginal: &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
	}
	st := mustOpen(t, s)
	target, err := s.Marginal.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tes.New(tes.Config{Alpha: 0.3, Zeta: 0.5, Marginal: target}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if got, want := st.Next(), ref.Next(); got != want {
			t.Fatalf("frame %d: %v != tes %v", i, got, want)
		}
	}
	if st.MeanRate() != target.Mean() {
		t.Errorf("MeanRate = %v, want marginal mean %v", st.MeanRate(), target.Mean())
	}
}

func TestPlanFreeEngineSeekReplay(t *testing.T) {
	// Seek on the gop and tes engines replays from the seed; frames after a
	// backward or forward seek must equal the offline reference.
	specs := []*Spec{
		{Seed: 5, Engine: EngineGOP, GOP: &GOPSpec{SceneAlpha: 1.4}},
		{Seed: 5, Engine: EngineTES, TES: &TESSpec{Alpha: 0.4, Minus: true},
			Marginal: &MarginalSpec{Kind: "gamma", Shape: 2, Scale: 1300}},
	}
	for _, s := range specs {
		ref, err := s.Frames(context.Background(), 0, 2000, 0)
		if err != nil {
			t.Fatal(err)
		}
		st := mustOpen(t, s)
		buf := make([]float64, 100)
		for _, from := range []int{1500, 200, 0, 777} {
			if err := st.SeekCtx(context.Background(), from); err != nil {
				t.Fatal(err)
			}
			if st.Pos() != from {
				t.Fatalf("%s: Pos after seek = %d, want %d", s.Engine, st.Pos(), from)
			}
			st.Fill(buf)
			for i, v := range buf {
				if v != ref[from+i] {
					t.Fatalf("%s: frame %d after seek to %d: %v != %v", s.Engine, from+i, from, v, ref[from+i])
				}
			}
		}
	}
}

func TestStreamReseedReplays(t *testing.T) {
	// Reseed(Seed()) must rewind every engine bit-identically — the trunk
	// engine re-keys pooled component streams with it.
	specs := []*Spec{
		{Seed: 11, ACF: Paper().ACF, Marginal: Paper().Marginal},
		{Seed: 11, ACF: Paper().ACF, Marginal: Paper().Marginal, Engine: EngineBlock},
		{Seed: 11, Engine: EngineGOP, GOP: &GOPSpec{}},
		{Seed: 11, Engine: EngineTES, TES: &TESSpec{Alpha: 0.3},
			Marginal: &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4}},
	}
	for _, s := range specs {
		name := s.Engine
		if name == "" {
			name = EngineTruncated
		}
		st := mustOpen(t, s)
		first := make([]float64, 512)
		st.Fill(first)
		st.Reseed(st.Seed())
		if st.Pos() != 0 {
			t.Fatalf("%s: Pos after Reseed = %d", name, st.Pos())
		}
		again := make([]float64, 512)
		st.Fill(again)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("%s: replay diverged at %d", name, i)
			}
		}
		// A different seed must change the stream.
		st.Reseed(12)
		other := make([]float64, 512)
		st.Fill(other)
		same := 0
		for i := range other {
			if other[i] == first[i] {
				same++
			}
		}
		if same > len(other)/10 {
			t.Errorf("%s: reseed(12) matched %d/%d frames of seed 11", name, same, len(other))
		}
	}
}

func TestACFKindFarimaAndFGNStreams(t *testing.T) {
	// FARIMA and FGN backgrounds run through both Gaussian engines via the
	// shared plan cache.
	kinds := []ACFSpec{
		{Kind: ACFFarima, D: 0.4},
		{Kind: ACFFarima, D: 0.3, Phi: 0.5, Theta: -0.2},
		{Kind: ACFFGN, H: 0.9},
	}
	for _, a := range kinds {
		for _, engine := range []string{EngineTruncated, EngineBlock} {
			s := &Spec{Seed: 3, ACF: a, Engine: engine,
				Marginal: &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4}}
			st := mustOpen(t, s)
			out := make([]float64, 256)
			st.Fill(out)
			for i, v := range out {
				if math.IsNaN(v) || v <= 0 {
					t.Fatalf("kind=%s engine=%s: frame %d = %v", a.Kind, engine, i, v)
				}
			}
			if st.Order() <= 0 {
				t.Errorf("kind=%s engine=%s: order %d", a.Kind, engine, st.Order())
			}
		}
	}
}

func TestSpecValidationRejectsMixedConfigs(t *testing.T) {
	lognorm := &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4}
	bad := []struct {
		name string
		spec Spec
	}{
		{"gop without config", Spec{Engine: EngineGOP}},
		{"gop with acf", Spec{Engine: EngineGOP, GOP: &GOPSpec{}, ACF: Paper().ACF}},
		{"gop with marginal", Spec{Engine: EngineGOP, GOP: &GOPSpec{}, Marginal: lognorm}},
		{"gop bad pattern", Spec{Engine: EngineGOP, GOP: &GOPSpec{Pattern: "IXB"}}},
		{"gop bad alpha", Spec{Engine: EngineGOP, GOP: &GOPSpec{SceneAlpha: 2.5}}},
		{"gop config without engine", Spec{ACF: Paper().ACF, GOP: &GOPSpec{}}},
		{"tes without config", Spec{Engine: EngineTES, Marginal: lognorm}},
		{"tes without marginal", Spec{Engine: EngineTES, TES: &TESSpec{Alpha: 0.3}}},
		{"tes bad alpha", Spec{Engine: EngineTES, TES: &TESSpec{Alpha: 1.5}, Marginal: lognorm}},
		{"tes with acf", Spec{Engine: EngineTES, TES: &TESSpec{Alpha: 0.3}, Marginal: lognorm, ACF: Paper().ACF}},
		{"tes config without engine", Spec{ACF: Paper().ACF, TES: &TESSpec{Alpha: 0.3}}},
		{"farima with composite fields", Spec{ACF: ACFSpec{Kind: ACFFarima, D: 0.4, Weights: []float64{1}, Rates: []float64{0.1}}}},
		{"composite with farima fields", Spec{ACF: ACFSpec{Weights: []float64{1}, Rates: []float64{0.1}, L: 1, Beta: 0.2, Knee: 10, D: 0.4}}},
		{"fgn out of range", Spec{ACF: ACFSpec{Kind: ACFFGN, H: 1.2}}},
		{"unknown acf kind", Spec{ACF: ACFSpec{Kind: "warp"}}},
		{"unknown engine", Spec{ACF: Paper().ACF, Engine: "warp"}},
	}
	for _, tc := range bad {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestTrunkSpecValidate(t *testing.T) {
	paper := Paper()
	good := TrunkSpec{
		Seed: 9,
		Components: []TrunkComponent{
			{Count: 4, Spec: Spec{ACF: paper.ACF, Engine: EngineBlock}},
			{Weight: 0.5, Spec: Spec{ACF: ACFSpec{Kind: ACFFarima, D: 0.4}}},
			{Spec: Spec{Engine: EngineGOP, GOP: &GOPSpec{}}},
			{Spec: Spec{Engine: EngineTES, TES: &TESSpec{Alpha: 0.3}}},
		},
		Marginal: &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good trunk rejected: %v", err)
	}
	if n := good.NumSources(); n != 7 {
		t.Errorf("NumSources = %d, want 7", n)
	}
	res := good.Resolved()
	if res[0].Weight != 1 || res[0].Count != 4 {
		t.Errorf("resolved[0] = %+v", res[0])
	}
	// The shared marginal is inherited by the Gaussian and tes components
	// but never by gop (which generates its own marginal).
	if res[1].Spec.Marginal == nil || res[3].Spec.Marginal == nil {
		t.Error("shared marginal not inherited")
	}
	if res[2].Spec.Marginal != nil {
		t.Error("gop component inherited a marginal")
	}

	bad := []struct {
		name  string
		trunk TrunkSpec
		want  string
	}{
		{"zero components", TrunkSpec{}, "zero sources"},
		{"negative weight", TrunkSpec{Components: []TrunkComponent{{Weight: -1, Spec: Spec{ACF: paper.ACF}}}}, "negative weight"},
		{"negative count", TrunkSpec{Components: []TrunkComponent{{Count: -2, Spec: Spec{ACF: paper.ACF}}}}, "negative count"},
		{"pinned component seed", TrunkSpec{Components: []TrunkComponent{{Spec: Spec{Seed: 5, ACF: paper.ACF}}}}, "derived from the trunk seed"},
		{"invalid component", TrunkSpec{Components: []TrunkComponent{{Spec: Spec{Engine: "warp", ACF: paper.ACF}}}}, "unknown engine"},
		{"too many sources", TrunkSpec{Components: []TrunkComponent{{Count: MaxTrunkSources + 1, Spec: Spec{ACF: paper.ACF}}}}, "cap"},
	}
	for _, tc := range bad {
		err := tc.trunk.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseTrunkRejectsUnknownFields(t *testing.T) {
	if _, err := ParseTrunk([]byte(`{"components":[{"spec":{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10}}}],"sources":3}`)); err == nil {
		t.Error("unknown trunk field accepted")
	}
	if _, err := ParseTrunk([]byte(`{"components":[]}`)); err == nil {
		t.Error("zero-source trunk accepted")
	}
}

func TestEmpiricalMeanRate(t *testing.T) {
	sample := []float64{100, 200, 300, 400}
	s := &Spec{Seed: 1, ACF: Paper().ACF, Marginal: &MarginalSpec{Kind: "empirical", Sample: sample}}
	st := mustOpen(t, s)
	d, err := dist.NewEmpirical(sample)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanRate() != d.Mean() {
		t.Errorf("MeanRate = %v, want %v", st.MeanRate(), d.Mean())
	}
}
