// Trunk specs: the wire format for superposed traffic — a weighted list of
// component model specs whose streams are summed into one aggregate arrival
// process (an ATM/ISP trunk carrying many video sources). The trunk engine
// in internal/trunk materializes these; trafficd serves them as "trunk"
// sessions through the same frames/step/seek paths as single streams.
package modelspec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// MaxTrunkSources bounds the flattened source count of a trunk spec: large
// enough for fleet-scale aggregates, small enough that a hostile spec
// cannot ask one session to materialize millions of generators.
const MaxTrunkSources = 65536

// TrunkSpec is a serializable trunk: N weighted component streams summed
// into one aggregate process. Every flattened source draws its seed from
// the trunk seed by SplitMix64 derivation (trunk.SourceSeed), so the
// aggregate is reproducible from the spec alone and component replicas are
// independent.
type TrunkSpec struct {
	// Name labels the trunk (becomes the default session name).
	Name string `json:"name,omitempty"`
	// Seed keys the whole trunk. 0 lets the server assign one (returned to
	// the client so the aggregate stays reproducible). Component specs must
	// leave their own Seed zero: per-source seeds are derived.
	Seed uint64 `json:"seed,omitempty"`
	// Components are the weighted source groups, Count replicas each.
	Components []TrunkComponent `json:"components"`
	// Marginal, when set, is the shared foreground marginal inherited by
	// components that carry none. Engines that generate their own marginal
	// ("gop") never inherit it.
	Marginal *MarginalSpec `json:"marginal,omitempty"`
}

// TrunkComponent is one weighted source group in a trunk.
type TrunkComponent struct {
	// Weight scales the group's contribution to the aggregate; 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// Count replicates the component; 0 means 1. Replicas are independent
	// sources: each gets its own derived seed.
	Count int `json:"count,omitempty"`
	// Spec is the component model (any engine: truncated, block, gop, tes;
	// any ACF family: composite, farima, fgn).
	Spec Spec `json:"spec"`
}

// resolved returns the component with defaults filled and the shared
// marginal inherited where applicable.
func (c TrunkComponent) resolved(shared *MarginalSpec) TrunkComponent {
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.Count == 0 {
		c.Count = 1
	}
	if c.Spec.Marginal == nil && shared != nil && c.Spec.Engine != EngineGOP {
		c.Spec.Marginal = shared
	}
	return c
}

// Resolved returns the components with defaults filled (Weight 1, Count 1)
// and the shared marginal applied to components that carry none. The result
// is what the trunk engine materializes; Validate reasons about the same
// view.
func (t *TrunkSpec) Resolved() []TrunkComponent {
	out := make([]TrunkComponent, len(t.Components))
	for i, c := range t.Components {
		out[i] = c.resolved(t.Marginal)
	}
	return out
}

// NumSources returns the flattened source count (sum of component counts
// after defaulting).
func (t *TrunkSpec) NumSources() int {
	n := 0
	for _, c := range t.Components {
		if c.Count == 0 {
			n++
		} else {
			n += c.Count
		}
	}
	return n
}

// Validate checks the trunk without building plans: at least one source,
// positive weights, non-negative counts, a bounded flattened source total,
// derived-only component seeds, and per-component spec validity (with the
// shared marginal applied).
func (t *TrunkSpec) Validate() error {
	if len(t.Components) == 0 {
		return errors.New("modelspec: trunk needs at least one component (zero sources)")
	}
	if t.Marginal != nil {
		if _, err := t.Marginal.Distribution(); err != nil {
			return err
		}
	}
	total := 0
	for i, c := range t.Components {
		if c.Weight < 0 {
			return fmt.Errorf("modelspec: trunk component %d: negative weight %v", i, c.Weight)
		}
		if c.Count < 0 {
			return fmt.Errorf("modelspec: trunk component %d: negative count %d", i, c.Count)
		}
		if c.Spec.Seed != 0 {
			return fmt.Errorf("modelspec: trunk component %d: component seeds are derived from the trunk seed; leave seed unset", i)
		}
		r := c.resolved(t.Marginal)
		if err := r.Spec.Validate(); err != nil {
			return fmt.Errorf("modelspec: trunk component %d: %w", i, err)
		}
		total += r.Count
	}
	if total > MaxTrunkSources {
		return fmt.Errorf("modelspec: trunk has %d sources, cap is %d", total, MaxTrunkSources)
	}
	return nil
}

// ParseTrunk decodes and validates a JSON trunk spec. Unknown fields are
// rejected, as in Parse.
func ParseTrunk(data []byte) (*TrunkSpec, error) {
	var t TrunkSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("modelspec: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
