package modelspec

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"

	"vbrsim/internal/dist"
)

// FuzzModelSpecDecode hardens the spec wire format: Parse must never panic
// on malformed input (it is fed straight from HTTP request bodies by
// trafficd), and any input it accepts must survive a marshal/re-parse
// round trip — the contract that lets servers echo specs back to clients.
func FuzzModelSpecDecode(f *testing.F) {
	// Seed corpus: the paper preset, a minimal spec, and assorted near-miss
	// malformed payloads.
	paper, err := json.Marshal(Paper())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(paper)
	f.Add([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10}}`))
	f.Add([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10},"marginal":{"kind":"lognormal","mu":9.6,"sigma":0.4}}`))
	f.Add([]byte(`{"acf":{"weights":[],"rates":[],"l":0,"beta":0,"knee":0}}`))
	f.Add([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10},"marginal":{"kind":"empirical","sample":[1,2,3]}}`))
	f.Add([]byte(`{"acf":{"weights":[1e999],"rates":[0.1]}}`))
	f.Add([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10},"engine":"block"}`))
	f.Add([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10},"engine":"truncated"}`))
	f.Add([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10},"engine":"warp"}`))
	f.Add([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10},"engine":""}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	// ACF families beyond the composite knee.
	f.Add([]byte(`{"acf":{"kind":"farima","d":0.4}}`))
	f.Add([]byte(`{"acf":{"kind":"farima","d":0.3,"phi":0.5,"theta":-0.2},"engine":"block"}`))
	f.Add([]byte(`{"acf":{"kind":"fgn","hurst":0.9}}`))
	f.Add([]byte(`{"acf":{"kind":"fgn","hurst":1.5}}`))
	f.Add([]byte(`{"acf":{"kind":"farima","d":0.4,"weights":[1],"rates":[0.1]}}`))
	// Plan-free engines: the §3.3 GOP simulator and TES.
	f.Add([]byte(`{"engine":"gop","gop":{}}`))
	f.Add([]byte(`{"engine":"gop","gop":{"pattern":"IBBP","scene_alpha":1.4}}`))
	f.Add([]byte(`{"engine":"gop","gop":{"pattern":"IXP"}}`))
	f.Add([]byte(`{"engine":"gop"}`))
	f.Add([]byte(`{"engine":"tes","tes":{"alpha":0.3},"marginal":{"kind":"lognormal","mu":9.6,"sigma":0.4}}`))
	f.Add([]byte(`{"engine":"tes","tes":{"alpha":0.3,"zeta":0.7,"minus":true},"marginal":{"kind":"gamma","shape":2,"scale":1300}}`))
	f.Add([]byte(`{"engine":"tes","tes":{"alpha":0.3}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		// Accepted specs must be internally consistent — the plan-free
		// engines must open (cheap: no plan build), the Gaussian-background
		// engines must materialize a Source — and the JSON round trip must
		// re-parse to an equally valid spec.
		if spec.Engine == EngineGOP || spec.Engine == EngineTES {
			st, err := spec.OpenCtx(context.Background(), 0)
			if err != nil {
				t.Fatalf("Parse accepted a spec OpenCtx rejects: %v\ninput: %q", err, data)
			}
			st.Close()
		} else if _, _, err := spec.Source(); err != nil {
			t.Fatalf("Parse accepted a spec Source rejects: %v\ninput: %q", err, data)
		}
		wire, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		back, err := Parse(wire)
		if err != nil {
			t.Fatalf("marshal of an accepted spec does not re-parse: %v\nwire: %s", err, wire)
		}
		wire2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("marshal is not stable:\nfirst:  %s\nsecond: %s", wire, wire2)
		}
	})
}

// FuzzTrunkSpecDecode hardens the trunk wire format the same way:
// ParseTrunk must never panic, and accepted trunks must marshal stably
// through a re-parse.
func FuzzTrunkSpecDecode(f *testing.F) {
	f.Add([]byte(`{"components":[{"spec":{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10}}}]}`))
	f.Add([]byte(`{"seed":7,"components":[` +
		`{"count":4,"spec":{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10},"engine":"block"}},` +
		`{"weight":0.5,"spec":{"acf":{"kind":"farima","d":0.4}}},` +
		`{"spec":{"engine":"gop","gop":{}}},` +
		`{"spec":{"engine":"tes","tes":{"alpha":0.3}}}` +
		`],"marginal":{"kind":"lognormal","mu":9.6,"sigma":0.4}}`))
	f.Add([]byte(`{"components":[]}`))
	f.Add([]byte(`{"components":[{"count":-1,"spec":{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10}}}]}`))
	f.Add([]byte(`{"components":[{"spec":{"seed":9,"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10}}}]}`))
	f.Add([]byte(`{"components":[{"count":100000,"spec":{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10}}}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseTrunk(data) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		if spec.NumSources() < 1 {
			t.Fatalf("ParseTrunk accepted a trunk with %d sources\ninput: %q", spec.NumSources(), data)
		}
		wire, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted trunk does not marshal: %v", err)
		}
		back, err := ParseTrunk(wire)
		if err != nil {
			t.Fatalf("marshal of an accepted trunk does not re-parse: %v\nwire: %s", err, wire)
		}
		wire2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("marshal is not stable:\nfirst:  %s\nsecond: %s", wire, wire2)
		}
	})
}

// FuzzQuantileRoundTrip locks the idempotence of the quantile compaction
// used when an empirical marginal is exported to the wire: compacting,
// rebuilding the Empirical from the wire sample, and compacting again must
// reproduce the identical float64s. Without this property a spec would
// drift every time it is re-exported.
func FuzzQuantileRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(3))
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88}, uint16(2000))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f}, uint16(1))

	f.Fuzz(func(t *testing.T, raw []byte, tile uint16) {
		// Decode the fuzz bytes into float64s; skip junk that is not a
		// usable sample.
		var vals []float64
		for len(raw) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[:8]))
			raw = raw[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return
		}
		// Tile deterministically so the sample can exceed SampleCap and
		// exercise the quantile-grid path, not just the identity path.
		reps := int(tile)%4 + 1
		n := len(vals) * reps * (SampleCap/(len(vals)*reps) + 1)
		if n > 3*SampleCap {
			n = 3 * SampleCap
		}
		if int(tile)%2 == 0 {
			n = len(vals) // small-sample identity path
		}
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = vals[i%len(vals)] + float64(i/len(vals))
		}

		e, err := dist.NewEmpirical(sample)
		if err != nil {
			t.Fatalf("NewEmpirical rejected a finite sample: %v", err)
		}
		once := CompactSample(e)
		if len(once) > SampleCap {
			t.Fatalf("compacted sample has %d > cap %d values", len(once), SampleCap)
		}
		e2, err := dist.NewEmpirical(once)
		if err != nil {
			t.Fatalf("compacted sample does not rebuild: %v", err)
		}
		twice := CompactSample(e2)
		if len(twice) != len(once) {
			t.Fatalf("second compaction changed length: %d -> %d", len(once), len(twice))
		}
		for i := range once {
			if math.Float64bits(once[i]) != math.Float64bits(twice[i]) {
				t.Fatalf("compaction is not idempotent at %d: %v -> %v", i, once[i], twice[i])
			}
		}
	})
}
