package modelspec

import (
	"context"
	"math"
	"testing"
)

func TestTargetHurst(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want float64
	}{
		{"fit metadata wins", Spec{H: 0.9, ACF: ACFSpec{Kind: ACFFGN, H: 0.75}}, 0.9},
		{"fgn implied", Spec{ACF: ACFSpec{Kind: ACFFGN, H: 0.75}}, 0.75},
		{"composite implied", Spec{ACF: ACFSpec{Weights: []float64{1}, Rates: []float64{0.01}, L: 1.6, Beta: 0.2, Knee: 60}}, 0.9},
		{"farima implied", Spec{ACF: ACFSpec{Kind: ACFFarima, D: 0.3}}, 0.8},
		{"no claim", Spec{Engine: EngineGOP, GOP: &GOPSpec{}}, 0},
	}
	for _, c := range cases {
		if got := c.spec.TargetHurst(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: TargetHurst = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStreamImpliedACF(t *testing.T) {
	spec := Paper()
	spec.Seed = 7
	st, err := spec.OpenCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rho := st.ImpliedACF(256)
	if len(rho) != 256 {
		t.Fatalf("len = %d", len(rho))
	}
	if rho[0] != 1 {
		t.Errorf("rho[0] = %v, want 1", rho[0])
	}
	// The attenuated implied ACF must sit strictly inside the background's:
	// 0 < rho_Y(k) < rho_X(k) for the paper's positively correlated model.
	bg := st.trunc.ImpliedACF(256)
	for k := 1; k < 256; k++ {
		if rho[k] <= 0 || rho[k] >= bg[k] {
			t.Fatalf("lag %d: attenuated rho = %v outside (0, %v)", k, rho[k], bg[k])
		}
	}
	if st.Marginal() == nil {
		t.Error("transform-engine stream has no marginal")
	}
	if q := st.Marginal().Quantile(0.5); q <= 0 {
		t.Errorf("lognormal median = %v", q)
	}
}

func TestStreamImpliedACFAbsentForGOPAndTES(t *testing.T) {
	gop := Spec{Engine: EngineGOP, GOP: &GOPSpec{}, Seed: 3}
	st, err := gop.OpenCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.ImpliedACF(64) != nil {
		t.Error("gop stream reported an implied ACF")
	}
	if st.Marginal() != nil {
		t.Error("gop stream reported an analytic marginal")
	}

	tesSpec := Spec{
		Engine:   EngineTES,
		TES:      &TESSpec{Alpha: 0.3},
		Marginal: &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
		Seed:     3,
	}
	st2, err := tesSpec.OpenCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.ImpliedACF(64) != nil {
		t.Error("tes stream reported an implied ACF")
	}
	if st2.Marginal() == nil {
		t.Error("tes stream lost its marginal")
	}
}
