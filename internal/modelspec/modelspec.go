// Package modelspec defines the JSON wire format for traffic-model
// specifications — the contract between the serving layer (cmd/trafficd),
// its clients, and the offline tools. A spec names a Gaussian background
// autocorrelation (the paper's composite knee model, eqs. 10-12) plus a
// foreground marginal, which together determine the synthetic bytes-per-
// frame process: X ~ N(0,1) with the given ACF, Y_k = h(X_k) (eq. 7).
//
// Two producers write specs: hand-written composite parameters (the curl
// path), and cmd/fitmodel -json, which exports a fitted core.Model — the
// compensated background ACF, the empirical marginal sample, and the fit
// metadata (H, attenuation, foreground ACF) for the record.
//
// The package also implements Stream, the deterministic generation loop
// shared by trafficd sessions and offline verification: the same spec and
// seed yield bit-identical frames whether they are streamed over HTTP or
// generated in-process, because both run exactly this code against the
// process-wide plan cache.
package modelspec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"vbrsim/internal/acf"
	"vbrsim/internal/core"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
	"vbrsim/internal/streamblock"
	"vbrsim/internal/transform"
)

// Spec is a serializable traffic-model specification.
type Spec struct {
	// Name labels the spec (becomes the default session name).
	Name string `json:"name,omitempty"`
	// Seed drives generation. 0 lets the server assign one (returned to the
	// client so the stream stays reproducible).
	Seed uint64 `json:"seed,omitempty"`
	// ACF is the background-process autocorrelation (the compensated model
	// when the spec comes from a fit).
	ACF ACFSpec `json:"acf"`
	// Marginal is the foreground marginal; nil means standard normal (the
	// stream is the background process itself).
	Marginal *MarginalSpec `json:"marginal,omitempty"`
	// Engine selects the background synthesis engine: "" or "truncated" for
	// the AR(p) fast recursion (exact transform, the historical serving
	// path), "block" for the overlapped-block Davies-Harte streaming engine
	// (exact-FFT blocks, LUT transform, O(1) seek). Both are seed-
	// deterministic and identical offline vs served; their frame values
	// differ between engines by construction.
	Engine string `json:"engine,omitempty"`

	// Fit metadata, written by FromModel for the record; not used for
	// generation.
	H           float64  `json:"h,omitempty"`
	Attenuation float64  `json:"attenuation,omitempty"`
	Foreground  *ACFSpec `json:"foreground,omitempty"`
}

// ACFSpec serializes the composite knee ACF.
type ACFSpec struct {
	Weights []float64 `json:"weights"`
	Rates   []float64 `json:"rates"`
	L       float64   `json:"l"`
	Beta    float64   `json:"beta"`
	Knee    int       `json:"knee"`
}

// Composite converts the spec to the acf model.
func (a ACFSpec) Composite() acf.Composite {
	return acf.Composite{
		Weights: append([]float64(nil), a.Weights...),
		Rates:   append([]float64(nil), a.Rates...),
		L:       a.L,
		Beta:    a.Beta,
		Knee:    a.Knee,
	}
}

func fromComposite(c acf.Composite) ACFSpec {
	return ACFSpec{
		Weights: append([]float64(nil), c.Weights...),
		Rates:   append([]float64(nil), c.Rates...),
		L:       c.L,
		Beta:    c.Beta,
		Knee:    c.Knee,
	}
}

// MarginalSpec serializes the foreground marginal. Kind selects the family
// and which parameter fields apply.
type MarginalSpec struct {
	// Kind is one of "normal" (Mu, Sigma), "lognormal" (Mu, Sigma of log),
	// "gamma" (Shape, Scale), or "empirical" (Sample).
	Kind   string    `json:"kind"`
	Mu     float64   `json:"mu,omitempty"`
	Sigma  float64   `json:"sigma,omitempty"`
	Shape  float64   `json:"shape,omitempty"`
	Scale  float64   `json:"scale,omitempty"`
	Sample []float64 `json:"sample,omitempty"`
}

// Distribution materializes the marginal.
func (m *MarginalSpec) Distribution() (dist.Distribution, error) {
	switch m.Kind {
	case "normal":
		sigma := m.Sigma
		if sigma == 0 {
			sigma = 1
		}
		return dist.Normal{Mu: m.Mu, Sigma: sigma}, nil
	case "lognormal":
		if m.Sigma <= 0 {
			return nil, errors.New("modelspec: lognormal marginal needs sigma > 0")
		}
		return dist.Lognormal{Mu: m.Mu, Sigma: m.Sigma}, nil
	case "gamma":
		if m.Shape <= 0 || m.Scale <= 0 {
			return nil, errors.New("modelspec: gamma marginal needs shape, scale > 0")
		}
		return dist.Gamma{Shape: m.Shape, Scale: m.Scale}, nil
	case "empirical":
		return dist.NewEmpirical(m.Sample)
	}
	return nil, fmt.Errorf("modelspec: unknown marginal kind %q", m.Kind)
}

// Validate checks the spec without building plans.
func (s *Spec) Validate() error {
	if err := s.ACF.Composite().Validate(); err != nil {
		return err
	}
	if s.Marginal != nil {
		if _, err := s.Marginal.Distribution(); err != nil {
			return err
		}
	}
	switch s.Engine {
	case "", EngineTruncated, EngineBlock:
	default:
		return fmt.Errorf("modelspec: unknown engine %q (want %q or %q)", s.Engine, EngineTruncated, EngineBlock)
	}
	return nil
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected so
// typos in hand-written specs fail loudly instead of silently streaming the
// wrong model.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("modelspec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Source materializes the spec's background ACF and marginal transform.
func (s *Spec) Source() (acf.Model, transform.T, error) {
	if err := s.Validate(); err != nil {
		return nil, transform.T{}, err
	}
	var target dist.Distribution = dist.StdNormal
	if s.Marginal != nil {
		d, err := s.Marginal.Distribution()
		if err != nil {
			return nil, transform.T{}, err
		}
		target = d
	}
	return s.ACF.Composite(), transform.New(target), nil
}

// SampleCap bounds the empirical-marginal sample FromModel embeds in a
// spec. Larger fitted samples are compacted onto a deterministic quantile
// grid: the rebuilt marginal is statistically indistinguishable but the
// spec stays a few hundred KB instead of tens of MB.
const SampleCap = 4096

// CompactSample returns the quantile-compacted wire form of an empirical
// marginal: the sample itself when it has at most SampleCap observations,
// otherwise the SampleCap-point grid of quantiles at (i+0.5)/SampleCap.
// The result is sorted and at most SampleCap long, so compacting is
// idempotent: rebuilding an Empirical from the result and compacting again
// reproduces the identical slice (the encode-decode-encode stability the
// fuzz tests lock in).
func CompactSample(e *dist.Empirical) []float64 {
	sample := e.Values()
	if len(sample) <= SampleCap {
		return sample
	}
	grid := make([]float64, SampleCap)
	for i := range grid {
		grid[i] = e.Quantile((float64(i) + 0.5) / SampleCap)
	}
	return grid
}

// FromModel exports a fitted unified model as a spec: the compensated
// background ACF, the empirical marginal (quantile-compacted above
// SampleCap observations), and the fit metadata.
func FromModel(m *core.Model, name string, seed uint64) Spec {
	sample := CompactSample(m.Marginal)
	fg := fromComposite(m.Foreground)
	return Spec{
		Name:        name,
		Seed:        seed,
		ACF:         fromComposite(m.Background),
		Marginal:    &MarginalSpec{Kind: "empirical", Sample: sample},
		H:           m.H,
		Attenuation: m.Attenuation,
		Foreground:  &fg,
	}
}

// Paper returns the ready-to-serve spec of the paper's reported model
// (eq. 13: H = 0.9, beta = 0.2, knee 60), continuity-adjusted so it is
// positive definite, with a long-tailed lognormal marginal standing in for
// the proprietary trace's empirical histogram.
func Paper() Spec {
	c := acf.PaperComposite().Continuous()
	if cc, err := c.EnsureConvex(); err == nil {
		c = cc
	}
	return Spec{
		Name:     "paper",
		ACF:      fromComposite(c),
		Marginal: &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
		H:        0.9,
	}
}

// Engine names accepted by Spec.Engine.
const (
	// EngineTruncated is the AR(p) fast recursion with the exact transform —
	// the historical serving path, bit-compatible with every pre-engine
	// spec (its golden traces are unchanged).
	EngineTruncated = "truncated"
	// EngineBlock is the overlapped-block Davies-Harte streaming engine:
	// exact-FFT blocks with AR(p)-conditional stitching, the LUT transform,
	// and O(1) seek in either direction.
	EngineBlock = "block"
)

// Stream is the deterministic generation loop for a spec: an unbounded
// background generator — the truncated-AR recursion or the overlapped-block
// Davies-Harte engine, per Spec.Engine — behind the process-wide plan
// cache, mapped through the marginal transform. It is bound to a single
// goroutine; trafficd serializes access per session.
type Stream struct {
	trunc *hosking.Truncated
	tr    transform.T
	seed  uint64

	// Exactly one of gen (truncated engine) and blk (block engine) is set.
	gen *hosking.TruncatedGenerator
	blk *streamblock.Stream
	lut *transform.LUT
}

// OpenCtx builds the stream for the spec: plan acquisition (cached,
// cancellable) plus truncation, plus — for the block engine — the shared
// block engine and the transform LUT. tol is the partial-correlation cutoff
// (0 = default). The stream starts at frame 0.
func (s *Spec) OpenCtx(ctx context.Context, tol float64) (*Stream, error) {
	model, tr, err := s.Source()
	if err != nil {
		return nil, err
	}
	trunc, err := core.TruncatedPlanForCtx(ctx, model, 0, tol)
	if err != nil {
		return nil, err
	}
	st := &Stream{trunc: trunc, tr: tr, seed: s.Seed}
	if s.Engine == EngineBlock {
		eng, err := streamblock.EngineFor(model, trunc, streamblock.Config{})
		if err != nil {
			return nil, err
		}
		lut, err := tr.NewDefaultLUT()
		if err != nil {
			return nil, err
		}
		st.blk = eng.NewStream(s.Seed)
		st.lut = lut
		return st, nil
	}
	st.reset()
	return st, nil
}

func (st *Stream) reset() {
	st.gen = hosking.NewTruncatedGenerator(st.trunc, rng.New(st.seed))
}

// Close releases engine-side accounting (the block engine's arena gauge).
// A closed stream must not be used again; Close on a truncated-engine
// stream is a no-op.
func (st *Stream) Close() {
	if st.blk != nil {
		st.blk.Close()
	}
}

// Pos returns the index of the next frame the stream will produce.
func (st *Stream) Pos() int {
	if st.blk != nil {
		return st.blk.Pos()
	}
	return st.gen.Pos()
}

// Seed returns the seed driving the stream.
func (st *Stream) Seed() uint64 { return st.seed }

// Order returns the AR truncation order of the underlying fast plan (for
// the block engine: the stitch overlap length).
func (st *Stream) Order() int { return st.trunc.Order() }

// MaxACFError returns the measured ACF error of the truncation.
func (st *Stream) MaxACFError() float64 { return st.trunc.MaxACFError() }

// Next produces the next foreground frame (bytes per frame).
func (st *Stream) Next() float64 {
	if st.blk != nil {
		return st.lut.Apply(st.blk.Next())
	}
	return st.tr.Apply(st.gen.Next())
}

// Fill produces len(out) consecutive frames.
func (st *Stream) Fill(out []float64) {
	if st.blk != nil {
		// Background block fill, then the LUT in place — bit-identical to
		// Next (same LUT evaluation), with no intermediate buffer.
		st.blk.Fill(out)
		st.lut.ApplyTo(out, out)
		return
	}
	for i := range out {
		out[i] = st.tr.Apply(st.gen.Next())
	}
}

// Seek positions the stream so the next frame is frame pos. On the
// truncated engine a backward seek replays deterministically from the seed
// (O(p) per skipped frame); the block engine seeks in O(1) either way.
func (st *Stream) Seek(pos int) { st.SeekCtx(context.Background(), pos) }

// seekCheckEvery is how many skipped frames SeekCtx generates between
// context polls: frequent enough that canceling a request aborts a long
// replay within milliseconds, rare enough to stay invisible in the O(p)
// per-frame cost.
const seekCheckEvery = 1 << 13

// SeekCtx is Seek with cancellation. pos is client-controlled in trafficd,
// so the truncated engine's replay loop polls ctx; on cancellation the
// stream is left at whatever position the replay reached (still a valid
// state — a later seek continues or resets from there). The block engine
// seeks in constant time and never reports cancellation.
func (st *Stream) SeekCtx(ctx context.Context, pos int) error {
	if pos < 0 {
		pos = 0
	}
	if st.blk != nil {
		st.blk.Seek(pos)
		return nil
	}
	if pos < st.gen.Pos() {
		st.reset()
	}
	for n := 0; st.gen.Pos() < pos; n++ {
		if n%seekCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		st.gen.Next()
	}
	return nil
}

// Frames generates frames [from, from+n) offline, exactly as a trafficd
// session streams them for the same spec and seed — the reference
// implementation for resume semantics and for end-to-end verification.
func (s *Spec) Frames(ctx context.Context, from, n int, tol float64) ([]float64, error) {
	st, err := s.OpenCtx(ctx, tol)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := st.SeekCtx(ctx, from); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	st.Fill(out)
	return out, nil
}
