// Package modelspec defines the JSON wire format for traffic-model
// specifications — the contract between the serving layer (cmd/trafficd),
// its clients, and the offline tools. A spec names a Gaussian background
// autocorrelation (the paper's composite knee model, eqs. 10-12) plus a
// foreground marginal, which together determine the synthetic bytes-per-
// frame process: X ~ N(0,1) with the given ACF, Y_k = h(X_k) (eq. 7).
//
// Two producers write specs: hand-written composite parameters (the curl
// path), and cmd/fitmodel -json, which exports a fitted core.Model — the
// compensated background ACF, the empirical marginal sample, and the fit
// metadata (H, attenuation, foreground ACF) for the record.
//
// The package also implements Stream, the deterministic generation loop
// shared by trafficd sessions and offline verification: the same spec and
// seed yield bit-identical frames whether they are streamed over HTTP or
// generated in-process, because both run exactly this code against the
// process-wide plan cache.
package modelspec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"vbrsim/internal/acf"
	"vbrsim/internal/core"
	"vbrsim/internal/dist"
	"vbrsim/internal/farima"
	"vbrsim/internal/hosking"
	"vbrsim/internal/mpegtrace"
	"vbrsim/internal/rng"
	"vbrsim/internal/streamblock"
	"vbrsim/internal/tes"
	"vbrsim/internal/trace"
	"vbrsim/internal/transform"
)

// Spec is a serializable traffic-model specification.
type Spec struct {
	// Name labels the spec (becomes the default session name).
	Name string `json:"name,omitempty"`
	// Seed drives generation. 0 lets the server assign one (returned to the
	// client so the stream stays reproducible).
	Seed uint64 `json:"seed,omitempty"`
	// ACF is the background-process autocorrelation (the compensated model
	// when the spec comes from a fit).
	ACF ACFSpec `json:"acf"`
	// Marginal is the foreground marginal; nil means standard normal (the
	// stream is the background process itself).
	Marginal *MarginalSpec `json:"marginal,omitempty"`
	// Engine selects the synthesis engine: "" or "truncated" for the AR(p)
	// fast recursion (exact transform, the historical serving path), "block"
	// for the overlapped-block Davies-Harte streaming engine (exact-FFT
	// blocks, LUT transform, O(1) seek), "gop" for the §3.3 interframe
	// scene/GOP simulator (own correlation structure and marginal; see GOP),
	// or "tes" for the TES modulo-1 process (see TES). All are seed-
	// deterministic and identical offline vs served; their frame values
	// differ between engines by construction.
	Engine string `json:"engine,omitempty"`
	// GOP configures the "gop" engine and must be set exactly for it.
	GOP *GOPSpec `json:"gop,omitempty"`
	// TES configures the "tes" engine and must be set exactly for it; the
	// engine maps the TES background through Marginal (required).
	TES *TESSpec `json:"tes,omitempty"`

	// Fit metadata, written by FromModel for the record; not used for
	// generation.
	H           float64  `json:"h,omitempty"`
	Attenuation float64  `json:"attenuation,omitempty"`
	Foreground  *ACFSpec `json:"foreground,omitempty"`
}

// ACF family names accepted by ACFSpec.Kind.
const (
	// ACFComposite is the paper's composite knee model (eqs. 10-12):
	// exponential mixture before the knee, power law after. The zero Kind
	// means composite, so every pre-Kind spec keeps its meaning.
	ACFComposite = "composite"
	// ACFFarima is the FARIMA(1,d,1) autocorrelation: pure fractional
	// differencing when Phi and Theta are zero, otherwise the full
	// short-memory×long-memory shape.
	ACFFarima = "farima"
	// ACFFGN is exact fractional Gaussian noise increments with Hurst H.
	ACFFGN = "fgn"
)

// ACFSpec serializes the background autocorrelation. Kind selects the
// family and which parameter fields apply; the zero Kind is the composite
// knee model, keeping the original wire format valid unchanged.
type ACFSpec struct {
	// Kind is one of "" / "composite" (Weights, Rates, L, Beta, Knee),
	// "farima" (D, optionally Phi and Theta), or "fgn" (H).
	Kind    string    `json:"kind,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	Rates   []float64 `json:"rates,omitempty"`
	L       float64   `json:"l,omitempty"`
	Beta    float64   `json:"beta,omitempty"`
	Knee    int       `json:"knee,omitempty"`

	// FARIMA(1,d,1) parameters (Kind "farima").
	D     float64 `json:"d,omitempty"`
	Phi   float64 `json:"phi,omitempty"`
	Theta float64 `json:"theta,omitempty"`
	// H is the fractional-Gaussian-noise Hurst parameter (Kind "fgn").
	H float64 `json:"hurst,omitempty"`
}

// compositeFieldsZero reports whether the composite-family parameters are
// all unset.
func (a ACFSpec) compositeFieldsZero() bool {
	return len(a.Weights) == 0 && len(a.Rates) == 0 && a.L == 0 && a.Beta == 0 && a.Knee == 0
}

// IsZero reports whether the spec is entirely unset (no family selected and
// no parameters) — the form engines without a Gaussian background require.
func (a ACFSpec) IsZero() bool {
	return a.Kind == "" && a.compositeFieldsZero() && a.D == 0 && a.Phi == 0 && a.Theta == 0 && a.H == 0
}

// Model materializes and validates the spec's autocorrelation family.
// Parameters belonging to a different family must be unset, so a typo'd
// spec fails loudly rather than silently ignoring half its numbers.
func (a ACFSpec) Model() (acf.Model, error) {
	switch a.Kind {
	case "", ACFComposite:
		if a.D != 0 || a.Phi != 0 || a.Theta != 0 || a.H != 0 {
			return nil, fmt.Errorf("modelspec: composite acf does not take d/phi/theta/hurst")
		}
		c := a.Composite()
		if err := c.Validate(); err != nil {
			return nil, err
		}
		return c, nil
	case ACFFarima:
		if !a.compositeFieldsZero() || a.H != 0 {
			return nil, fmt.Errorf("modelspec: farima acf takes only d, phi, theta")
		}
		if a.Phi == 0 && a.Theta == 0 {
			m := farima.ACF{D: a.D}
			if err := m.Validate(); err != nil {
				return nil, err
			}
			return m, nil
		}
		return farima.NewFull(a.Phi, a.D, a.Theta)
	case ACFFGN:
		if !a.compositeFieldsZero() || a.D != 0 || a.Phi != 0 || a.Theta != 0 {
			return nil, fmt.Errorf("modelspec: fgn acf takes only hurst")
		}
		if a.H <= 0 || a.H >= 1 {
			return nil, fmt.Errorf("modelspec: fgn hurst must lie in (0,1), got %v", a.H)
		}
		return acf.FGN{H: a.H}, nil
	}
	return nil, fmt.Errorf("modelspec: unknown acf kind %q (want %q, %q or %q)", a.Kind, ACFComposite, ACFFarima, ACFFGN)
}

// AsymptoticHurst returns the Hurst parameter the ACF family implies for
// large aggregation scales: H for fgn, 1 - beta/2 for the composite knee
// model (its power-law tail), d + 1/2 for farima. Returns 0 when the family
// has no LRD tail (e.g. composite with beta = 0) or the spec is unset —
// callers treat 0 as "unknown".
func (a ACFSpec) AsymptoticHurst() float64 {
	switch a.Kind {
	case "", ACFComposite:
		if a.Beta <= 0 || a.Beta >= 2 {
			return 0
		}
		return 1 - a.Beta/2
	case ACFFarima:
		if a.D <= 0 || a.D >= 0.5 {
			return 0
		}
		return a.D + 0.5
	case ACFFGN:
		return a.H
	}
	return 0
}

// Composite converts the spec to the acf model.
func (a ACFSpec) Composite() acf.Composite {
	return acf.Composite{
		Weights: append([]float64(nil), a.Weights...),
		Rates:   append([]float64(nil), a.Rates...),
		L:       a.L,
		Beta:    a.Beta,
		Knee:    a.Knee,
	}
}

func fromComposite(c acf.Composite) ACFSpec {
	return ACFSpec{
		Weights: append([]float64(nil), c.Weights...),
		Rates:   append([]float64(nil), c.Rates...),
		L:       c.L,
		Beta:    c.Beta,
		Knee:    c.Knee,
	}
}

// MarginalSpec serializes the foreground marginal. Kind selects the family
// and which parameter fields apply.
type MarginalSpec struct {
	// Kind is one of "normal" (Mu, Sigma), "lognormal" (Mu, Sigma of log),
	// "gamma" (Shape, Scale), or "empirical" (Sample).
	Kind   string    `json:"kind"`
	Mu     float64   `json:"mu,omitempty"`
	Sigma  float64   `json:"sigma,omitempty"`
	Shape  float64   `json:"shape,omitempty"`
	Scale  float64   `json:"scale,omitempty"`
	Sample []float64 `json:"sample,omitempty"`
}

// Distribution materializes the marginal.
func (m *MarginalSpec) Distribution() (dist.Distribution, error) {
	switch m.Kind {
	case "normal":
		sigma := m.Sigma
		if sigma == 0 {
			sigma = 1
		}
		return dist.Normal{Mu: m.Mu, Sigma: sigma}, nil
	case "lognormal":
		if m.Sigma <= 0 {
			return nil, errors.New("modelspec: lognormal marginal needs sigma > 0")
		}
		return dist.Lognormal{Mu: m.Mu, Sigma: m.Sigma}, nil
	case "gamma":
		if m.Shape <= 0 || m.Scale <= 0 {
			return nil, errors.New("modelspec: gamma marginal needs shape, scale > 0")
		}
		return dist.Gamma{Shape: m.Shape, Scale: m.Scale}, nil
	case "empirical":
		return dist.NewEmpirical(m.Sample)
	}
	return nil, fmt.Errorf("modelspec: unknown marginal kind %q", m.Kind)
}

// Validate checks the spec without building plans.
func (s *Spec) Validate() error {
	switch s.Engine {
	case "", EngineTruncated, EngineBlock:
		if _, err := s.ACF.Model(); err != nil {
			return err
		}
		if s.Marginal != nil {
			if _, err := s.Marginal.Distribution(); err != nil {
				return err
			}
		}
		if s.GOP != nil {
			return fmt.Errorf("modelspec: gop config requires engine %q", EngineGOP)
		}
		if s.TES != nil {
			return fmt.Errorf("modelspec: tes config requires engine %q", EngineTES)
		}
	case EngineGOP:
		if s.GOP == nil {
			return fmt.Errorf("modelspec: engine %q needs a gop config", EngineGOP)
		}
		if err := s.GOP.Validate(); err != nil {
			return err
		}
		if !s.ACF.IsZero() {
			return fmt.Errorf("modelspec: engine %q generates its own correlation structure; acf must be empty", EngineGOP)
		}
		if s.Marginal != nil {
			return fmt.Errorf("modelspec: engine %q generates its own marginal; drop the marginal", EngineGOP)
		}
		if s.TES != nil {
			return fmt.Errorf("modelspec: tes config requires engine %q", EngineTES)
		}
	case EngineTES:
		if s.TES == nil {
			return fmt.Errorf("modelspec: engine %q needs a tes config", EngineTES)
		}
		if s.Marginal == nil {
			return fmt.Errorf("modelspec: engine %q needs a marginal", EngineTES)
		}
		target, err := s.Marginal.Distribution()
		if err != nil {
			return err
		}
		if err := s.TES.config(target).Validate(); err != nil {
			return err
		}
		if !s.ACF.IsZero() {
			return fmt.Errorf("modelspec: engine %q takes its correlation from the tes config; acf must be empty", EngineTES)
		}
		if s.GOP != nil {
			return fmt.Errorf("modelspec: gop config requires engine %q", EngineGOP)
		}
	default:
		return fmt.Errorf("modelspec: unknown engine %q (want %q, %q, %q or %q)",
			s.Engine, EngineTruncated, EngineBlock, EngineGOP, EngineTES)
	}
	return nil
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected so
// typos in hand-written specs fail loudly instead of silently streaming the
// wrong model.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("modelspec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Source materializes the spec's background ACF and marginal transform.
// Engines without a Gaussian background ("gop", "tes") have no source
// decomposition and return an error; open them as a Stream instead.
func (s *Spec) Source() (acf.Model, transform.T, error) {
	if err := s.Validate(); err != nil {
		return nil, transform.T{}, err
	}
	if s.Engine == EngineGOP || s.Engine == EngineTES {
		return nil, transform.T{}, fmt.Errorf("modelspec: engine %q has no Gaussian background model", s.Engine)
	}
	var target dist.Distribution = dist.StdNormal
	if s.Marginal != nil {
		d, err := s.Marginal.Distribution()
		if err != nil {
			return nil, transform.T{}, err
		}
		target = d
	}
	model, err := s.ACF.Model()
	if err != nil {
		return nil, transform.T{}, err
	}
	return model, transform.New(target), nil
}

// SampleCap bounds the empirical-marginal sample FromModel embeds in a
// spec. Larger fitted samples are compacted onto a deterministic quantile
// grid: the rebuilt marginal is statistically indistinguishable but the
// spec stays a few hundred KB instead of tens of MB.
const SampleCap = 4096

// CompactSample returns the quantile-compacted wire form of an empirical
// marginal: the sample itself when it has at most SampleCap observations,
// otherwise the SampleCap-point grid of quantiles at (i+0.5)/SampleCap.
// The result is sorted and at most SampleCap long, so compacting is
// idempotent: rebuilding an Empirical from the result and compacting again
// reproduces the identical slice (the encode-decode-encode stability the
// fuzz tests lock in).
func CompactSample(e *dist.Empirical) []float64 {
	sample := e.Values()
	if len(sample) <= SampleCap {
		return sample
	}
	grid := make([]float64, SampleCap)
	for i := range grid {
		grid[i] = e.Quantile((float64(i) + 0.5) / SampleCap)
	}
	return grid
}

// FromModel exports a fitted unified model as a spec: the compensated
// background ACF, the empirical marginal (quantile-compacted above
// SampleCap observations), and the fit metadata.
func FromModel(m *core.Model, name string, seed uint64) Spec {
	sample := CompactSample(m.Marginal)
	fg := fromComposite(m.Foreground)
	return Spec{
		Name:        name,
		Seed:        seed,
		ACF:         fromComposite(m.Background),
		Marginal:    &MarginalSpec{Kind: "empirical", Sample: sample},
		H:           m.H,
		Attenuation: m.Attenuation,
		Foreground:  &fg,
	}
}

// Paper returns the ready-to-serve spec of the paper's reported model
// (eq. 13: H = 0.9, beta = 0.2, knee 60), continuity-adjusted so it is
// positive definite, with a long-tailed lognormal marginal standing in for
// the proprietary trace's empirical histogram.
func Paper() Spec {
	c := acf.PaperComposite().Continuous()
	if cc, err := c.EnsureConvex(); err == nil {
		c = cc
	}
	return Spec{
		Name:     "paper",
		ACF:      fromComposite(c),
		Marginal: &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
		H:        0.9,
	}
}

// TargetHurst returns the Hurst parameter the session promises to serve:
// the fit metadata H when present (the paper's reported value), otherwise
// whatever the generating ACF family implies asymptotically. 0 means the
// spec makes no self-similarity claim (e.g. gop/tes engines, which carry
// their own correlation structure).
func (s *Spec) TargetHurst() float64 {
	if s.H != 0 {
		return s.H
	}
	return s.ACF.AsymptoticHurst()
}

// Engine names accepted by Spec.Engine.
const (
	// EngineTruncated is the AR(p) fast recursion with the exact transform —
	// the historical serving path, bit-compatible with every pre-engine
	// spec (its golden traces are unchanged).
	EngineTruncated = "truncated"
	// EngineBlock is the overlapped-block Davies-Harte streaming engine:
	// exact-FFT blocks with AR(p)-conditional stitching, the LUT transform,
	// and O(1) seek in either direction.
	EngineBlock = "block"
	// EngineGOP is the §3.3 interframe scene/GOP simulator promoted to a
	// first-class backend: I/P/B frame sizes from heavy-tailed Pareto scenes
	// with Gamma activity and AR(1) modulation. It generates its own
	// correlation structure and long-tailed marginal, so the spec carries a
	// GOPSpec instead of an ACF and marginal.
	EngineGOP = "gop"
	// EngineTES is the TES (Transform-Expand-Sample) generator: a modulo-1
	// uniform background stitched and mapped through the spec marginal.
	EngineTES = "tes"
)

// GOPSpec serializes the "gop" engine's configuration — the parameters of
// mpegtrace.Config minus trace length and seed (streams are unbounded and
// the seed lives on the Spec). Zero fields take the mpegtrace defaults,
// matching that package's conventions; the zero GOPSpec is the paper-scale
// encoder (H = 0.9, IBBPBBPBBPBB).
type GOPSpec struct {
	// Pattern is the group-of-pictures frame-type pattern, e.g.
	// "IBBPBBPBBPBB" (the default).
	Pattern string `json:"pattern,omitempty"`
	// SceneAlpha is the Pareto tail index of scene durations in (1,2);
	// H = (3-alpha)/2.
	SceneAlpha float64 `json:"scene_alpha,omitempty"`
	// SceneMinFrames is the minimum scene length in frames.
	SceneMinFrames float64 `json:"scene_min_frames,omitempty"`
	// ActivityShape/ActivityScale parameterize the Gamma per-scene activity.
	ActivityShape float64 `json:"activity_shape,omitempty"`
	ActivityScale float64 `json:"activity_scale,omitempty"`
	// ModPhi/ModSigma parameterize the within-scene AR(1) log-modulation.
	ModPhi   float64 `json:"mod_phi,omitempty"`
	ModSigma float64 `json:"mod_sigma,omitempty"`
	// IScale, PScale, BScale are the frame-type size multipliers.
	IScale float64 `json:"i_scale,omitempty"`
	PScale float64 `json:"p_scale,omitempty"`
	BScale float64 `json:"b_scale,omitempty"`
	// FrameNoiseSigma is the per-frame lognormal noise sigma.
	FrameNoiseSigma float64 `json:"frame_noise_sigma,omitempty"`
}

// Config converts the spec to an mpegtrace configuration (Frames left zero:
// streams are unbounded).
func (g *GOPSpec) Config(seed uint64) (mpegtrace.Config, error) {
	cfg := mpegtrace.Config{
		SceneAlpha:      g.SceneAlpha,
		SceneMinFrames:  g.SceneMinFrames,
		ActivityShape:   g.ActivityShape,
		ActivityScale:   g.ActivityScale,
		ModPhi:          g.ModPhi,
		ModSigma:        g.ModSigma,
		IScale:          g.IScale,
		PScale:          g.PScale,
		BScale:          g.BScale,
		FrameNoiseSigma: g.FrameNoiseSigma,
		Seed:            seed,
	}
	if g.Pattern != "" {
		gop := make([]trace.FrameType, len(g.Pattern))
		for i, c := range g.Pattern {
			ft, err := trace.ParseFrameType(string(c))
			if err != nil {
				return cfg, fmt.Errorf("modelspec: gop pattern: %w", err)
			}
			gop[i] = ft
		}
		cfg.GOP = gop
	}
	return cfg, nil
}

// Validate checks the gop configuration by materializing it.
func (g *GOPSpec) Validate() error {
	cfg, err := g.Config(0)
	if err != nil {
		return err
	}
	cfg.Frames = 1 // streams are unbounded; satisfy the finite-trace check
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("modelspec: %w", err)
	}
	return nil
}

// TESSpec serializes the "tes" engine's configuration. The foreground
// marginal comes from the enclosing Spec.Marginal.
type TESSpec struct {
	// Alpha is the innovation width in (0,1]: small alpha means strong
	// positive background correlation.
	Alpha float64 `json:"alpha"`
	// Zeta is the stitching parameter in (0,1]; 0 means 0.5 (symmetric).
	Zeta float64 `json:"zeta,omitempty"`
	// Minus selects the TES- variant (alternating reflection).
	Minus bool `json:"minus,omitempty"`
}

// config assembles the tes.Config for the given foreground marginal.
func (t *TESSpec) config(target dist.Distribution) tes.Config {
	zeta := t.Zeta
	if zeta == 0 {
		zeta = 0.5
	}
	return tes.Config{Alpha: t.Alpha, Zeta: zeta, Marginal: target, Minus: t.Minus}
}

// Stream is the deterministic generation loop for a spec: an unbounded
// background generator — the truncated-AR recursion or the overlapped-block
// Davies-Harte engine, per Spec.Engine — behind the process-wide plan
// cache, mapped through the marginal transform. It is bound to a single
// goroutine; trafficd serializes access per session.
type Stream struct {
	trunc *hosking.Truncated // nil for the gop and tes engines
	tr    transform.T
	seed  uint64
	mean  float64           // stationary foreground mean (bytes per frame)
	marg  dist.Distribution // foreground marginal (nil for gop)

	// Exactly one of gen (truncated engine), blk (block engine), gop and
	// tes is set.
	gen *hosking.TruncatedGenerator
	blk *streamblock.Stream
	lut *transform.LUT
	gop *mpegtrace.Generator
	tes *tes.Generator
}

// OpenCtx builds the stream for the spec: plan acquisition (cached,
// cancellable) plus truncation, plus — for the block engine — the shared
// block engine and the transform LUT. tol is the partial-correlation cutoff
// (0 = default). The stream starts at frame 0.
func (s *Spec) OpenCtx(ctx context.Context, tol float64) (*Stream, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Engine {
	case EngineGOP:
		cfg, err := s.GOP.Config(s.Seed)
		if err != nil {
			return nil, err
		}
		g, err := mpegtrace.NewGenerator(cfg)
		if err != nil {
			return nil, err
		}
		return &Stream{seed: s.Seed, gop: g, mean: cfg.MeanBytesPerFrame()}, nil
	case EngineTES:
		target, err := s.Marginal.Distribution()
		if err != nil {
			return nil, err
		}
		g, err := tes.New(s.TES.config(target), rng.New(s.Seed))
		if err != nil {
			return nil, err
		}
		return &Stream{seed: s.Seed, tes: g, mean: target.Mean(), marg: target}, nil
	}
	model, tr, err := s.Source()
	if err != nil {
		return nil, err
	}
	trunc, err := core.TruncatedPlanForCtx(ctx, model, 0, tol)
	if err != nil {
		return nil, err
	}
	st := &Stream{trunc: trunc, tr: tr, seed: s.Seed, mean: tr.Target.Mean(), marg: tr.Target}
	if s.Engine == EngineBlock {
		eng, err := streamblock.EngineFor(model, trunc, streamblock.Config{})
		if err != nil {
			return nil, err
		}
		lut, err := tr.NewDefaultLUT()
		if err != nil {
			return nil, err
		}
		st.blk = eng.NewStream(s.Seed)
		st.lut = lut
		return st, nil
	}
	st.reset()
	return st, nil
}

func (st *Stream) reset() {
	if st.gen != nil {
		// Re-key in place: bit-identical to a fresh generator, but without
		// allocating (pooled trunk components reseed on every replication).
		st.gen.Reseed(st.seed)
		return
	}
	st.gen = hosking.NewTruncatedGenerator(st.trunc, rng.New(st.seed))
}

// Close releases engine-side accounting (the block engine's arena gauge).
// A closed stream must not be used again; Close on a truncated-engine
// stream is a no-op.
func (st *Stream) Close() {
	if st.blk != nil {
		st.blk.Close()
	}
}

// Pos returns the index of the next frame the stream will produce.
func (st *Stream) Pos() int {
	switch {
	case st.blk != nil:
		return st.blk.Pos()
	case st.gop != nil:
		return st.gop.Pos()
	case st.tes != nil:
		return st.tes.Pos()
	}
	return st.gen.Pos()
}

// Seed returns the seed driving the stream.
func (st *Stream) Seed() uint64 { return st.seed }

// Reseed rewinds the stream to frame 0 of the trace keyed by seed,
// discarding generator state but keeping plans, LUTs and arenas. Reseeding
// with Seed() replays the stream bit-identically; the trunk engine uses
// this to re-key pooled component streams per replication without
// allocating.
func (st *Stream) Reseed(seed uint64) {
	st.seed = seed
	switch {
	case st.blk != nil:
		st.blk.Reseed(seed)
	case st.gop != nil:
		st.gop.Reseed(seed)
	case st.tes != nil:
		st.tes.Reseed(seed)
	default:
		st.reset()
	}
}

// Order returns the AR truncation order of the underlying fast plan (for
// the block engine: the stitch overlap length). The gop and tes engines
// have no Gaussian plan and report 0.
func (st *Stream) Order() int {
	if st.trunc == nil {
		return 0
	}
	return st.trunc.Order()
}

// MaxACFError returns the measured ACF error of the truncation (0 for the
// plan-free gop and tes engines).
func (st *Stream) MaxACFError() float64 {
	if st.trunc == nil {
		return 0
	}
	return st.trunc.MaxACFError()
}

// MeanRate returns the stationary mean frame size in bytes — the quantity
// service-rate provisioning scales against: the marginal mean for the
// transform engines and tes, the analytic encoder mean for gop.
func (st *Stream) MeanRate() float64 { return st.mean }

// Marginal returns the foreground marginal distribution the stream maps
// frames through, or nil for the gop engine (whose marginal is emergent, not
// analytic). Live monitors compare observed quantiles against it.
func (st *Stream) Marginal() dist.Distribution { return st.marg }

// ImpliedACF returns the model-implied autocorrelation of served frames at
// lags 0..lags-1: the truncated plan's background ACF (the AR(p) extension
// that is bit-true to what the generator actually produces, including the
// truncation error) attenuated through the marginal transform by the paper's
// factor a = Attenuation() — eq. 9's ρ_Y(k) ≈ a·ρ_X(k), with ρ_Y(0) = 1.
// Engines without a Gaussian background (gop, tes) return nil: their serve-
// path correlation has no cheap analytic form, so live monitors skip the
// ACF and Hurst checks for them.
func (st *Stream) ImpliedACF(lags int) []float64 {
	if st.trunc == nil || lags <= 0 {
		return nil
	}
	rho := st.trunc.ImpliedACF(lags)
	a := st.tr.Attenuation()
	for k := 1; k < len(rho); k++ {
		rho[k] *= a
	}
	return rho
}

// Next produces the next foreground frame (bytes per frame).
func (st *Stream) Next() float64 {
	switch {
	case st.blk != nil:
		return st.lut.Apply(st.blk.Next())
	case st.gop != nil:
		size, _ := st.gop.Next()
		return size
	case st.tes != nil:
		return st.tes.Next()
	}
	return st.tr.Apply(st.gen.Next())
}

// Fill produces len(out) consecutive frames.
func (st *Stream) Fill(out []float64) {
	switch {
	case st.blk != nil:
		// Background block fill, then the LUT in place — bit-identical to
		// Next (same LUT evaluation), with no intermediate buffer.
		st.blk.Fill(out)
		st.lut.ApplyTo(out, out)
		return
	case st.gop != nil:
		for i := range out {
			out[i], _ = st.gop.Next()
		}
		return
	case st.tes != nil:
		for i := range out {
			out[i] = st.tes.Next()
		}
		return
	}
	for i := range out {
		out[i] = st.tr.Apply(st.gen.Next())
	}
}

// Seek positions the stream so the next frame is frame pos. On the
// truncated engine a backward seek replays deterministically from the seed
// (O(p) per skipped frame); the block engine seeks in O(1) either way.
func (st *Stream) Seek(pos int) { st.SeekCtx(context.Background(), pos) }

// seekCheckEvery is how many skipped frames SeekCtx generates between
// context polls: frequent enough that canceling a request aborts a long
// replay within milliseconds, rare enough to stay invisible in the O(p)
// per-frame cost.
const seekCheckEvery = 1 << 13

// SeekCtx is Seek with cancellation. pos is client-controlled in trafficd,
// so the truncated engine's replay loop polls ctx; on cancellation the
// stream is left at whatever position the replay reached (still a valid
// state — a later seek continues or resets from there). The block engine
// seeks in constant time and never reports cancellation.
func (st *Stream) SeekCtx(ctx context.Context, pos int) error {
	if pos < 0 {
		pos = 0
	}
	if st.blk != nil {
		st.blk.Seek(pos)
		return nil
	}
	if pos < st.Pos() {
		if st.gen != nil {
			st.reset()
		} else {
			st.Reseed(st.seed) // gop/tes: rewind and replay from the seed
		}
	}
	// Replay skips the marginal transform on the truncated engine (it is
	// stateless); the gop and tes engines step their own foreground draw.
	step := st.Next
	if st.gen != nil {
		step = st.gen.Next
	}
	for n := 0; st.Pos() < pos; n++ {
		if n%seekCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		step()
	}
	return nil
}

// Frames generates frames [from, from+n) offline, exactly as a trafficd
// session streams them for the same spec and seed — the reference
// implementation for resume semantics and for end-to-end verification.
func (s *Spec) Frames(ctx context.Context, from, n int, tol float64) ([]float64, error) {
	st, err := s.OpenCtx(ctx, tol)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := st.SeekCtx(ctx, from); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	st.Fill(out)
	return out, nil
}
