// Package modelspec defines the JSON wire format for traffic-model
// specifications — the contract between the serving layer (cmd/trafficd),
// its clients, and the offline tools. A spec names a Gaussian background
// autocorrelation (the paper's composite knee model, eqs. 10-12) plus a
// foreground marginal, which together determine the synthetic bytes-per-
// frame process: X ~ N(0,1) with the given ACF, Y_k = h(X_k) (eq. 7).
//
// Two producers write specs: hand-written composite parameters (the curl
// path), and cmd/fitmodel -json, which exports a fitted core.Model — the
// compensated background ACF, the empirical marginal sample, and the fit
// metadata (H, attenuation, foreground ACF) for the record.
//
// The package also implements Stream, the deterministic generation loop
// shared by trafficd sessions and offline verification: the same spec and
// seed yield bit-identical frames whether they are streamed over HTTP or
// generated in-process, because both run exactly this code against the
// process-wide plan cache.
package modelspec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"vbrsim/internal/acf"
	"vbrsim/internal/core"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
	"vbrsim/internal/transform"
)

// Spec is a serializable traffic-model specification.
type Spec struct {
	// Name labels the spec (becomes the default session name).
	Name string `json:"name,omitempty"`
	// Seed drives generation. 0 lets the server assign one (returned to the
	// client so the stream stays reproducible).
	Seed uint64 `json:"seed,omitempty"`
	// ACF is the background-process autocorrelation (the compensated model
	// when the spec comes from a fit).
	ACF ACFSpec `json:"acf"`
	// Marginal is the foreground marginal; nil means standard normal (the
	// stream is the background process itself).
	Marginal *MarginalSpec `json:"marginal,omitempty"`

	// Fit metadata, written by FromModel for the record; not used for
	// generation.
	H           float64  `json:"h,omitempty"`
	Attenuation float64  `json:"attenuation,omitempty"`
	Foreground  *ACFSpec `json:"foreground,omitempty"`
}

// ACFSpec serializes the composite knee ACF.
type ACFSpec struct {
	Weights []float64 `json:"weights"`
	Rates   []float64 `json:"rates"`
	L       float64   `json:"l"`
	Beta    float64   `json:"beta"`
	Knee    int       `json:"knee"`
}

// Composite converts the spec to the acf model.
func (a ACFSpec) Composite() acf.Composite {
	return acf.Composite{
		Weights: append([]float64(nil), a.Weights...),
		Rates:   append([]float64(nil), a.Rates...),
		L:       a.L,
		Beta:    a.Beta,
		Knee:    a.Knee,
	}
}

func fromComposite(c acf.Composite) ACFSpec {
	return ACFSpec{
		Weights: append([]float64(nil), c.Weights...),
		Rates:   append([]float64(nil), c.Rates...),
		L:       c.L,
		Beta:    c.Beta,
		Knee:    c.Knee,
	}
}

// MarginalSpec serializes the foreground marginal. Kind selects the family
// and which parameter fields apply.
type MarginalSpec struct {
	// Kind is one of "normal" (Mu, Sigma), "lognormal" (Mu, Sigma of log),
	// "gamma" (Shape, Scale), or "empirical" (Sample).
	Kind   string    `json:"kind"`
	Mu     float64   `json:"mu,omitempty"`
	Sigma  float64   `json:"sigma,omitempty"`
	Shape  float64   `json:"shape,omitempty"`
	Scale  float64   `json:"scale,omitempty"`
	Sample []float64 `json:"sample,omitempty"`
}

// Distribution materializes the marginal.
func (m *MarginalSpec) Distribution() (dist.Distribution, error) {
	switch m.Kind {
	case "normal":
		sigma := m.Sigma
		if sigma == 0 {
			sigma = 1
		}
		return dist.Normal{Mu: m.Mu, Sigma: sigma}, nil
	case "lognormal":
		if m.Sigma <= 0 {
			return nil, errors.New("modelspec: lognormal marginal needs sigma > 0")
		}
		return dist.Lognormal{Mu: m.Mu, Sigma: m.Sigma}, nil
	case "gamma":
		if m.Shape <= 0 || m.Scale <= 0 {
			return nil, errors.New("modelspec: gamma marginal needs shape, scale > 0")
		}
		return dist.Gamma{Shape: m.Shape, Scale: m.Scale}, nil
	case "empirical":
		return dist.NewEmpirical(m.Sample)
	}
	return nil, fmt.Errorf("modelspec: unknown marginal kind %q", m.Kind)
}

// Validate checks the spec without building plans.
func (s *Spec) Validate() error {
	if err := s.ACF.Composite().Validate(); err != nil {
		return err
	}
	if s.Marginal != nil {
		if _, err := s.Marginal.Distribution(); err != nil {
			return err
		}
	}
	return nil
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected so
// typos in hand-written specs fail loudly instead of silently streaming the
// wrong model.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("modelspec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Source materializes the spec's background ACF and marginal transform.
func (s *Spec) Source() (acf.Model, transform.T, error) {
	if err := s.Validate(); err != nil {
		return nil, transform.T{}, err
	}
	var target dist.Distribution = dist.StdNormal
	if s.Marginal != nil {
		d, err := s.Marginal.Distribution()
		if err != nil {
			return nil, transform.T{}, err
		}
		target = d
	}
	return s.ACF.Composite(), transform.New(target), nil
}

// SampleCap bounds the empirical-marginal sample FromModel embeds in a
// spec. Larger fitted samples are compacted onto a deterministic quantile
// grid: the rebuilt marginal is statistically indistinguishable but the
// spec stays a few hundred KB instead of tens of MB.
const SampleCap = 4096

// CompactSample returns the quantile-compacted wire form of an empirical
// marginal: the sample itself when it has at most SampleCap observations,
// otherwise the SampleCap-point grid of quantiles at (i+0.5)/SampleCap.
// The result is sorted and at most SampleCap long, so compacting is
// idempotent: rebuilding an Empirical from the result and compacting again
// reproduces the identical slice (the encode-decode-encode stability the
// fuzz tests lock in).
func CompactSample(e *dist.Empirical) []float64 {
	sample := e.Values()
	if len(sample) <= SampleCap {
		return sample
	}
	grid := make([]float64, SampleCap)
	for i := range grid {
		grid[i] = e.Quantile((float64(i) + 0.5) / SampleCap)
	}
	return grid
}

// FromModel exports a fitted unified model as a spec: the compensated
// background ACF, the empirical marginal (quantile-compacted above
// SampleCap observations), and the fit metadata.
func FromModel(m *core.Model, name string, seed uint64) Spec {
	sample := CompactSample(m.Marginal)
	fg := fromComposite(m.Foreground)
	return Spec{
		Name:        name,
		Seed:        seed,
		ACF:         fromComposite(m.Background),
		Marginal:    &MarginalSpec{Kind: "empirical", Sample: sample},
		H:           m.H,
		Attenuation: m.Attenuation,
		Foreground:  &fg,
	}
}

// Paper returns the ready-to-serve spec of the paper's reported model
// (eq. 13: H = 0.9, beta = 0.2, knee 60), continuity-adjusted so it is
// positive definite, with a long-tailed lognormal marginal standing in for
// the proprietary trace's empirical histogram.
func Paper() Spec {
	c := acf.PaperComposite().Continuous()
	if cc, err := c.EnsureConvex(); err == nil {
		c = cc
	}
	return Spec{
		Name:     "paper",
		ACF:      fromComposite(c),
		Marginal: &MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
		H:        0.9,
	}
}

// Stream is the deterministic generation loop for a spec: a truncated-AR
// fast generator (constant work and memory per frame, unbounded horizon)
// behind the process-wide plan cache, mapped through the marginal transform.
// It is bound to a single goroutine; trafficd serializes access per session.
type Stream struct {
	trunc *hosking.Truncated
	tr    transform.T
	gen   *hosking.TruncatedGenerator
	seed  uint64
}

// OpenCtx builds the stream for the spec: plan acquisition (cached,
// cancellable) plus truncation. tol is the partial-correlation cutoff
// (0 = default). The stream starts at frame 0.
func (s *Spec) OpenCtx(ctx context.Context, tol float64) (*Stream, error) {
	model, tr, err := s.Source()
	if err != nil {
		return nil, err
	}
	trunc, err := core.TruncatedPlanForCtx(ctx, model, 0, tol)
	if err != nil {
		return nil, err
	}
	st := &Stream{trunc: trunc, tr: tr, seed: s.Seed}
	st.reset()
	return st, nil
}

func (st *Stream) reset() {
	st.gen = hosking.NewTruncatedGenerator(st.trunc, rng.New(st.seed))
}

// Pos returns the index of the next frame the stream will produce.
func (st *Stream) Pos() int { return st.gen.Pos() }

// Seed returns the seed driving the stream.
func (st *Stream) Seed() uint64 { return st.seed }

// Order returns the AR truncation order of the underlying fast plan.
func (st *Stream) Order() int { return st.trunc.Order() }

// MaxACFError returns the measured ACF error of the truncation.
func (st *Stream) MaxACFError() float64 { return st.trunc.MaxACFError() }

// Next produces the next foreground frame (bytes per frame).
func (st *Stream) Next() float64 { return st.tr.Apply(st.gen.Next()) }

// Fill produces len(out) consecutive frames.
func (st *Stream) Fill(out []float64) {
	for i := range out {
		out[i] = st.Next()
	}
}

// Seek positions the stream so the next frame is frame pos. Seeking
// backwards replays deterministically from the seed (O(p) per skipped
// frame), which is what makes reconnect-and-resume reproducible.
func (st *Stream) Seek(pos int) { st.SeekCtx(context.Background(), pos) }

// seekCheckEvery is how many skipped frames SeekCtx generates between
// context polls: frequent enough that canceling a request aborts a long
// replay within milliseconds, rare enough to stay invisible in the O(p)
// per-frame cost.
const seekCheckEvery = 1 << 13

// SeekCtx is Seek with cancellation. pos is client-controlled in trafficd,
// so the replay loop polls ctx; on cancellation the stream is left at
// whatever position the replay reached (still a valid state — a later seek
// continues or resets from there).
func (st *Stream) SeekCtx(ctx context.Context, pos int) error {
	if pos < 0 {
		pos = 0
	}
	if pos < st.gen.Pos() {
		st.reset()
	}
	for n := 0; st.gen.Pos() < pos; n++ {
		if n%seekCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		st.gen.Next()
	}
	return nil
}

// Frames generates frames [from, from+n) offline, exactly as a trafficd
// session streams them for the same spec and seed — the reference
// implementation for resume semantics and for end-to-end verification.
func (s *Spec) Frames(ctx context.Context, from, n int, tol float64) ([]float64, error) {
	st, err := s.OpenCtx(ctx, tol)
	if err != nil {
		return nil, err
	}
	if err := st.SeekCtx(ctx, from); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	st.Fill(out)
	return out, nil
}
