package modelspec

import (
	"context"
	"math"
	"testing"
)

// blockSpec is the paper spec on the block engine at a fixed seed.
func blockSpec(seed uint64) Spec {
	spec := Paper()
	spec.Seed = seed
	spec.Engine = EngineBlock
	return spec
}

// blockRef generates the reference frame range through Spec.Frames — the
// offline reference trafficd sessions must match bit-exactly.
func blockRef(t *testing.T, seed uint64, n int) []float64 {
	t.Helper()
	spec := blockSpec(seed)
	frames, err := spec.Frames(context.Background(), 0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

func bitsEqual(t *testing.T, what string, got, want []float64, base int) {
	t.Helper()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: frame %d differs: got %v, want %v", what, base+i, got[i], want[i])
		}
	}
}

// TestBlockEngineDeterministic locks the offline-vs-served contract for the
// block engine: two independent opens of the same spec produce bit-
// identical frames, and chunked Fill agrees with one-shot Frames.
func TestBlockEngineDeterministic(t *testing.T) {
	const n = 2048
	want := blockRef(t, 7, n)

	spec := blockSpec(7)
	st, err := spec.OpenCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := make([]float64, n)
	for off := 0; off < n; off += 160 {
		end := off + 160
		if end > n {
			end = n
		}
		st.Fill(got[off:end])
	}
	bitsEqual(t, "chunked Fill vs Frames", got, want, 0)
}

// TestBlockEngineSeekResume covers the seek-&-resume satellite matrix on
// the block stream: forward seek, backward seek, and a seek landing exactly
// on a block boundary must all be bit-identical to a fresh stream replayed
// from the seed.
func TestBlockEngineSeekResume(t *testing.T) {
	spec := blockSpec(424242)
	st, err := spec.OpenCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The serving engine's block size: DefaultTotal minus the AR order.
	blockLen := 8192 - st.Order()
	total := 2*blockLen + 256
	want := blockRef(t, 424242, total)

	ctx := context.Background()
	read := make([]float64, 128)
	for _, pos := range []int{
		0,                // restart from the top
		blockLen - 64,    // straddles the first boundary
		blockLen,         // lands exactly on a block boundary
		2 * blockLen,     // boundary again, one block ahead
		blockLen + 1,     // backward seek into the stitched region
		17,               // backward into block 0
		2*blockLen + 100, // forward again
	} {
		if err := st.SeekCtx(ctx, pos); err != nil {
			t.Fatal(err)
		}
		if got := st.Pos(); got != pos {
			t.Fatalf("SeekCtx(%d): Pos() = %d", pos, got)
		}
		n := len(read)
		if pos+n > total {
			n = total - pos
		}
		st.Fill(read[:n])
		bitsEqual(t, "seek-then-read vs fresh replay", read[:n], want[pos:pos+n], pos)
	}
}

// TestBlockEngineNextMatchesFill checks the per-frame and bulk paths of the
// block engine (LUT application included) agree bit-exactly.
func TestBlockEngineNextMatchesFill(t *testing.T) {
	const n = 1024
	want := blockRef(t, 3, n)
	spec := blockSpec(3)
	st, err := spec.OpenCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < n; i++ {
		if v := st.Next(); math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("Next at %d: got %v, want %v", i, v, want[i])
		}
	}
}

// TestBlockEngineDiffersFromTruncated is a tripwire for silent engine
// fallback: the two engines are different processes frame-by-frame, so a
// block spec must not produce the truncated stream.
func TestBlockEngineDiffersFromTruncated(t *testing.T) {
	const n = 256
	ctx := context.Background()
	truncSpec := Paper()
	truncSpec.Seed = 5
	truncFrames, err := truncSpec.Frames(ctx, 0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	blockFrames := blockRef(t, 5, n)
	same := 0
	for i := range blockFrames {
		if blockFrames[i] == truncFrames[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("block engine emitted the truncated engine's frames")
	}
}

// TestEngineValidation locks the wire-format gate: unknown engine names
// must be rejected at Validate/Parse time, and both known names accepted.
func TestEngineValidation(t *testing.T) {
	spec := Paper()
	for _, ok := range []string{"", EngineTruncated, EngineBlock} {
		spec.Engine = ok
		if err := spec.Validate(); err != nil {
			t.Fatalf("engine %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"blocky", "BLOCK", "ar", "exact"} {
		spec.Engine = bad
		if err := spec.Validate(); err == nil {
			t.Fatalf("engine %q accepted", bad)
		}
	}
	if _, err := Parse([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":1,"beta":0.2,"knee":10},"engine":"warp"}`)); err == nil {
		t.Fatal("Parse accepted an unknown engine")
	}
}
