package modelspec

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"vbrsim/internal/core"
	"vbrsim/internal/rng"
)

func TestPaperSpecValidates(t *testing.T) {
	s := Paper()
	if err := s.Validate(); err != nil {
		t.Fatalf("Paper spec invalid: %v", err)
	}
	if s.ACF.Beta != 0.2 {
		t.Fatalf("Paper beta = %v, want 0.2", s.ACF.Beta)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := Paper()
	s.Seed = 42
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.Name != s.Name || got.ACF.Knee != s.ACF.Knee {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
	}
	if got.Marginal == nil || got.Marginal.Kind != "lognormal" {
		t.Fatalf("marginal lost in round trip: %+v", got.Marginal)
	}
}

func TestParseRejectsUnknownFieldsAndBadSpecs(t *testing.T) {
	if _, err := Parse([]byte(`{"acf":{"weights":[1],"rates":[0.1],"l":0.9,"beta":0.2,"knee":60},"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"acf":{"weights":[1,2],"rates":[0.1],"l":0.9,"beta":0.2,"knee":60}}`)); err == nil {
		t.Fatal("mismatched weights/rates accepted")
	}
	bad := Paper()
	bad.Marginal = &MarginalSpec{Kind: "nope"}
	data, _ := json.Marshal(&bad)
	if _, err := Parse(data); err == nil || !strings.Contains(err.Error(), "unknown marginal") {
		t.Fatalf("bad marginal kind: err = %v", err)
	}
}

func TestStreamDeterministicAndSeekable(t *testing.T) {
	s := Paper()
	s.Seed = 7
	ctx := context.Background()

	a, err := s.Frames(ctx, 0, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Frames(ctx, 0, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}

	// Resuming mid-stream must reproduce the tail exactly.
	tail, err := s.Frames(ctx, 200, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tail {
		if tail[i] != a[200+i] {
			t.Fatalf("resumed frame %d differs: %v vs %v", 200+i, tail[i], a[200+i])
		}
	}

	// Seeking backwards on a live stream replays from the seed.
	st, err := s.OpenCtx(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 100)
	st.Fill(buf)
	st.Seek(50)
	if st.Pos() != 50 {
		t.Fatalf("Pos after Seek(50) = %d", st.Pos())
	}
	if got := st.Next(); got != a[50] {
		t.Fatalf("frame 50 after backward seek: %v, want %v", got, a[50])
	}

	// Different seeds must diverge.
	s2 := Paper()
	s2.Seed = 8
	c, err := s2.Frames(ctx, 0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range c {
		if c[i] == a[i] {
			same++
		}
	}
	if same == len(c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamPositiveFrames(t *testing.T) {
	s := Paper()
	s.Seed = 3
	frames, err := s.Frames(context.Background(), 0, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if f <= 0 {
			t.Fatalf("frame %d = %v, want > 0 (lognormal marginal)", i, f)
		}
	}
}

func TestFromModelRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("fitting in -short mode")
	}
	// Synthesize a trace from the paper spec, fit it, export, re-parse.
	s := Paper()
	s.Seed = 11
	trace, err := s.Frames(context.Background(), 0, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Fit(trace, core.FitOptions{AttenuationReps: 20})
	if err != nil {
		t.Fatal(err)
	}
	spec := FromModel(m, "fit", 99)
	data, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("exported spec does not re-parse: %v", err)
	}
	if got.Marginal == nil || got.Marginal.Kind != "empirical" {
		t.Fatalf("marginal kind = %+v, want empirical", got.Marginal)
	}
	if len(got.Marginal.Sample) > SampleCap {
		t.Fatalf("sample not compacted: %d > %d", len(got.Marginal.Sample), SampleCap)
	}
	if got.H != m.H || got.Attenuation != m.Attenuation {
		t.Fatalf("fit metadata lost: %+v", got)
	}
	// The exported spec must be generable.
	if _, err := got.Frames(context.Background(), 0, 64, 0); err != nil {
		t.Fatalf("exported spec cannot generate: %v", err)
	}
}

func TestOpenCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Paper()
	// Vary beta slightly so this never hits a plan already cached by another
	// test (a cache hit would succeed despite the canceled context).
	s.ACF.Beta = 0.2345
	if _, err := s.OpenCtx(ctx, 0); err == nil {
		t.Fatal("OpenCtx with canceled context succeeded")
	}
}

// SeekCtx aborts the skipped-frame replay on cancellation instead of
// generating every frame up to a client-controlled position.
func TestSeekCtxCanceled(t *testing.T) {
	s := Paper()
	s.Seed = 5
	st, err := s.OpenCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := st.SeekCtx(ctx, 1<<20); err != context.Canceled {
		t.Fatalf("SeekCtx err = %v, want context.Canceled", err)
	}
	if st.Pos() >= 1<<20 {
		t.Fatalf("pos = %d: the canceled seek ran to completion", st.Pos())
	}
	// The stream is still usable: a live seek lands exactly.
	if err := st.SeekCtx(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if st.Pos() != 100 {
		t.Fatalf("pos after live seek = %d, want 100", st.Pos())
	}
}

func TestStreamMatchesBatchTruncated(t *testing.T) {
	// The streaming generator must be bit-identical to batch generation with
	// the same plan and seed — the guarantee resume semantics rest on.
	s := Paper()
	s.Seed = 21
	ctx := context.Background()
	st, err := s.OpenCtx(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 256
	streamed := make([]float64, n)
	st.Fill(streamed)

	model, tr, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := core.TruncatedPlanForCtx(ctx, model, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]float64, n)
	trunc.Generate(rng.New(s.Seed), batch)
	for i := range batch {
		if got := tr.Apply(batch[i]); got != streamed[i] {
			t.Fatalf("frame %d: streamed %v, batch %v", i, streamed[i], got)
		}
	}
}
