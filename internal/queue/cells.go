// ATM adaptation and statistical multiplexing. The paper's queue consumes
// abstract "cells per slot"; this file supplies the two pieces a real ATM
// multiplexer study needs on top of it: segmentation of frame bytes into
// fixed-payload cells (with the frame-spreading strategy of Ismail et al.,
// the paper's ref. [15]) and superposition of several independent VBR
// sources into one aggregate arrival process (the statistical-multiplexing
// setting the introduction motivates).
package queue

import (
	"errors"
	"math"
	"sync"

	"vbrsim/internal/rng"
)

// ATMCellPayload is the usable payload of one ATM cell in bytes (48 of the
// 53-byte cell).
const ATMCellPayload = 48

// SegmentIntoCells converts a bytes-per-frame sequence into cells-per-slot:
// each frame's bytes become ceil(bytes/payload) cells, spread as evenly as
// possible over slotsPerFrame consecutive slots (slotsPerFrame = 1 keeps
// the per-frame burst intact). The result has
// len(frameBytes)*slotsPerFrame slots.
func SegmentIntoCells(frameBytes []float64, payload, slotsPerFrame int) ([]float64, error) {
	if payload <= 0 {
		return nil, errors.New("queue: non-positive cell payload")
	}
	if slotsPerFrame <= 0 {
		return nil, errors.New("queue: non-positive slots per frame")
	}
	out := make([]float64, len(frameBytes)*slotsPerFrame)
	for i, b := range frameBytes {
		if b < 0 {
			return nil, errors.New("queue: negative frame size")
		}
		cells := int(math.Ceil(b / float64(payload)))
		base := cells / slotsPerFrame
		extra := cells % slotsPerFrame
		for s := 0; s < slotsPerFrame; s++ {
			n := base
			// The first `extra` slots of the frame carry one extra cell.
			if s < extra {
				n++
			}
			out[i*slotsPerFrame+s] = float64(n)
		}
	}
	return out, nil
}

// CellCount returns the total number of cells a byte sequence segments into.
func CellCount(frameBytes []float64, payload int) (int, error) {
	if payload <= 0 {
		return 0, errors.New("queue: non-positive cell payload")
	}
	total := 0
	for _, b := range frameBytes {
		if b < 0 {
			return 0, errors.New("queue: negative frame size")
		}
		total += int(math.Ceil(b / float64(payload)))
	}
	return total, nil
}

// Superposition multiplexes N independent copies of a base source: each
// replication draws N independent paths (from split random sources) and
// sums them slot-wise. It implements PathSource itself, so superposed
// traffic drops into every estimator unchanged.
type Superposition struct {
	Base PathSource
	N    int
}

// ArrivalPath draws and sums N independent paths.
func (s Superposition) ArrivalPath(r *rng.Source, k int) []float64 {
	sum := make([]float64, k)
	s.ArrivalPathInto(r, sum)
	return sum
}

// ArrivalPathInto sums N independent paths into buf. When the base source
// also supports buffer reuse the per-source path goes through a pooled
// scratch slice, so a superposition of hundreds of sources performs zero
// path allocations per replication.
func (s Superposition) ArrivalPathInto(r *rng.Source, buf []float64) {
	if s.N <= 0 {
		panic("queue: Superposition with non-positive N")
	}
	for j := range buf {
		buf[j] = 0
	}
	k := len(buf)
	if base, ok := s.Base.(PathSourceInto); ok {
		scratch := scratchSlice(k)
		defer releaseScratch(scratch)
		for i := 0; i < s.N; i++ {
			base.ArrivalPathInto(r.Split(), *scratch)
			for j, v := range *scratch {
				buf[j] += v
			}
		}
		return
	}
	for i := 0; i < s.N; i++ {
		path := s.Base.ArrivalPath(r.Split(), k)
		for j := range buf {
			buf[j] += path[j]
		}
	}
}

// scratchPool recycles per-replication path buffers across goroutines.
var scratchPool sync.Pool

func scratchSlice(k int) *[]float64 {
	if p, ok := scratchPool.Get().(*[]float64); ok && cap(*p) >= k {
		*p = (*p)[:k]
		return p
	}
	s := make([]float64, k)
	return &s
}

func releaseScratch(p *[]float64) { scratchPool.Put(p) }
