package queue

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

func TestSegmentIntoCellsConservation(t *testing.T) {
	frames := []float64{100, 48, 49, 0, 4800}
	cells, err := SegmentIntoCells(frames, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 1, 2, 0, 100}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("frame %d: %v cells, want %v", i, cells[i], want[i])
		}
	}
	total, err := CellCount(frames, 48)
	if err != nil {
		t.Fatal(err)
	}
	if total != 106 {
		t.Errorf("CellCount = %d, want 106", total)
	}
}

func TestSegmentIntoCellsSpreading(t *testing.T) {
	frames := []float64{480} // 10 cells
	cells, err := SegmentIntoCells(frames, 48, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("len = %d, want 4", len(cells))
	}
	// 10 cells over 4 slots: 3,3,2,2.
	want := []float64{3, 3, 2, 2}
	var sum float64
	for i := range cells {
		if cells[i] != want[i] {
			t.Errorf("slot %d: %v, want %v", i, cells[i], want[i])
		}
		sum += cells[i]
	}
	if sum != 10 {
		t.Errorf("cells not conserved: %v", sum)
	}
}

func TestSegmentSpreadingReducesPeaks(t *testing.T) {
	r := rng.New(1)
	frames := make([]float64, 1000)
	for i := range frames {
		frames[i] = r.Gamma(2, 2000)
	}
	burst, err := SegmentIntoCells(frames, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := SegmentIntoCells(frames, 48, 15)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Max(spread) >= stats.Max(burst) {
		t.Errorf("spreading did not reduce slot peak: %v vs %v", stats.Max(spread), stats.Max(burst))
	}
	// Total cells conserved.
	var a, b float64
	for _, v := range burst {
		a += v
	}
	for _, v := range spread {
		b += v
	}
	if a != b {
		t.Errorf("spreading changed cell count: %v vs %v", a, b)
	}
}

func TestSegmentValidation(t *testing.T) {
	if _, err := SegmentIntoCells([]float64{1}, 0, 1); err == nil {
		t.Error("zero payload accepted")
	}
	if _, err := SegmentIntoCells([]float64{1}, 48, 0); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := SegmentIntoCells([]float64{-1}, 48, 1); err == nil {
		t.Error("negative frame accepted")
	}
	if _, err := CellCount([]float64{-1}, 48); err == nil {
		t.Error("CellCount negative frame accepted")
	}
	if _, err := CellCount([]float64{1}, 0); err == nil {
		t.Error("CellCount zero payload accepted")
	}
}

func TestSuperpositionMoments(t *testing.T) {
	base := iidSource{mean: 2}
	super := Superposition{Base: base, N: 8}
	r := rng.New(2)
	path := super.ArrivalPath(r, 20000)
	mean := stats.Mean(path)
	if math.Abs(mean-16) > 0.5 {
		t.Errorf("superposed mean = %v, want 16", mean)
	}
	// Independent superposition: variance adds too (iid exponential:
	// var = N * mean^2).
	v := stats.Variance(path)
	if math.Abs(v-8*4) > 3 {
		t.Errorf("superposed variance = %v, want ~32", v)
	}
}

func TestSuperpositionSmoothsRelativeBurstiness(t *testing.T) {
	// The coefficient of variation of the aggregate of N iid sources falls
	// like 1/sqrt(N) — the statistical multiplexing gain.
	base := iidSource{mean: 1}
	r1, r2 := rng.New(3), rng.New(4)
	one := base.ArrivalPath(r1, 50000)
	agg := Superposition{Base: base, N: 16}.ArrivalPath(r2, 50000)
	cv1 := stats.StdDev(one) / stats.Mean(one)
	cvN := stats.StdDev(agg) / stats.Mean(agg)
	if cvN > cv1/2 {
		t.Errorf("multiplexing did not smooth: cv1=%v cvN=%v", cv1, cvN)
	}
}

func TestSuperpositionLowersLossAtEqualUtilization(t *testing.T) {
	// Same utilization, N times the capacity: the aggregate of N sources
	// overflows a proportionally scaled buffer less often.
	base := iidSource{mean: 1}
	util := 0.8
	single, err := EstimateOverflow(base, 1/util, 8, 200, MCOptions{Replications: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	multi, err := EstimateOverflow(Superposition{Base: base, N: n}, float64(n)/util, 8*float64(n), 200,
		MCOptions{Replications: 1000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if single.P < 0.005 {
		t.Fatalf("single-source event too rare for the test: %v", single.P)
	}
	if multi.P >= single.P {
		t.Errorf("no multiplexing gain: single %v vs multiplexed %v", single.P, multi.P)
	}
}

func TestSuperpositionPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=0 did not panic")
		}
	}()
	Superposition{Base: iidSource{mean: 1}, N: 0}.ArrivalPath(rng.New(1), 10)
}
