// Package queue models the ATM multiplexer of Section 4: a slotted-time
// single-server queue with deterministic service rate mu fed by a stationary
// arrival process Y, evolving by the Lindley recursion (eq. 16)
//
//	Q_k = max(Q_{k-1} + Y_k - mu, 0).
//
// It provides the sample-path recursion, the workload-supremum view of
// buffer overflow (eq. 17, valid for an initially empty queue):
//
//	P(Q_k > b) = P(max_{0<=i<=k} W_i > b),  W_i = sum_{j<=i} (Y_j - mu),
//
// plain Monte-Carlo estimation with concurrent replications, and
// time-average estimation over a single long trace (the way the paper
// evaluates the empirical record, which admits only one replication).
package queue

import (
	"context"
	"errors"
	"math"

	"vbrsim/internal/obs"
	"vbrsim/internal/par"
	"vbrsim/internal/rng"
)

// Evolve runs the Lindley recursion from initial occupancy q0 over the
// arrival sequence, returning the queue size after each slot.
func Evolve(q0 float64, arrivals []float64, service float64) []float64 {
	out := make([]float64, len(arrivals))
	q := q0
	for i, y := range arrivals {
		q += y - service
		if q < 0 {
			q = 0
		}
		out[i] = q
	}
	return out
}

// FinalOccupancy runs the Lindley recursion and returns only Q_k.
func FinalOccupancy(q0 float64, arrivals []float64, service float64) float64 {
	q := q0
	for _, y := range arrivals {
		q += y - service
		if q < 0 {
			q = 0
		}
	}
	return q
}

// CrossingTime returns the first slot i (1-based) at which the running
// workload W_i exceeds b, and ok=false if it never does within the sequence.
// For an initially empty queue, {Q_k > b} = {crossing occurred by slot k}.
func CrossingTime(arrivals []float64, service, b float64) (int, bool) {
	var w float64
	for i, y := range arrivals {
		w += y - service
		if w > b {
			return i + 1, true
		}
	}
	return 0, false
}

// Result is a Monte-Carlo estimate with its sampling uncertainty.
type Result struct {
	// P is the estimated probability.
	P float64
	// Variance is the sample variance of the per-replication estimator.
	Variance float64
	// StdErr is the standard error of P (sqrt(Variance/N)).
	StdErr float64
	// NormVar is the variance normalized by P^2 (the paper's Fig. 14
	// y-axis), or +Inf when P == 0.
	NormVar float64
	// Replications actually run.
	Replications int
	// Hits is the number of replications in which the event occurred.
	Hits int
}

// finalize fills the derived fields from the accumulated sums.
func finalize(sum, sumSq float64, n, hits int) Result {
	p := sum / float64(n)
	variance := sumSq/float64(n) - p*p
	if variance < 0 {
		variance = 0
	}
	res := Result{
		P:            p,
		Variance:     variance,
		StdErr:       math.Sqrt(variance / float64(n)),
		Replications: n,
		Hits:         hits,
	}
	if p > 0 {
		res.NormVar = variance / (p * p)
	} else {
		res.NormVar = math.Inf(1)
	}
	return res
}

// PathSource produces one replication's arrival sequence of length k using
// the supplied replication-local random source. Implementations must be safe
// for concurrent calls with distinct sources.
type PathSource interface {
	ArrivalPath(r *rng.Source, k int) []float64
}

// PathSourceFunc adapts a function to the PathSource interface.
type PathSourceFunc func(r *rng.Source, k int) []float64

// ArrivalPath calls the function.
func (f PathSourceFunc) ArrivalPath(r *rng.Source, k int) []float64 { return f(r, k) }

// PathSourceInto is the allocation-free variant of PathSource: the source
// fills a caller-owned buffer instead of allocating a path per replication.
// Estimators probe for it and reuse one buffer per worker, so per-
// replication allocations stop growing with the horizon. Implementations
// must produce exactly the values ArrivalPath would for the same source
// state.
type PathSourceInto interface {
	PathSource
	ArrivalPathInto(r *rng.Source, buf []float64)
}

// MCOptions controls Monte-Carlo overflow estimation.
type MCOptions struct {
	// Replications is the number of independent paths; default 1000 (the
	// paper's setting).
	Replications int
	// Workers bounds the number of concurrent replications; default
	// GOMAXPROCS.
	Workers int
	// Seed drives the replication-local random sources.
	Seed uint64
	// InitialOccupancy is Q_0; default 0 (empty buffer).
	InitialOccupancy float64
	// Progress, when non-nil, receives periodic convergence snapshots
	// (running p, StdErr, normalized variance, reps/sec) as replications
	// complete. Snapshots accumulate in completion order, entirely apart
	// from the per-worker hit counters that produce the returned Result,
	// so enabling progress never changes the estimate.
	Progress func(obs.Convergence)
	// ProgressEvery is the snapshot period in replications; <= 0 means
	// max(1, Replications/32).
	ProgressEvery int
}

// EstimateOverflow estimates P(Q_k > b) by plain Monte Carlo: each
// replication draws a fresh arrival path, runs the Lindley recursion from
// InitialOccupancy, and tests the final occupancy against b.
func EstimateOverflow(src PathSource, service, b float64, k int, opt MCOptions) (Result, error) {
	return EstimateOverflowCtx(context.Background(), src, service, b, k, opt)
}

// EstimateOverflowCtx is EstimateOverflow with cancellation: workers poll
// ctx between replications and the call returns ctx.Err() instead of a
// partial estimate when the context is done.
func EstimateOverflowCtx(ctx context.Context, src PathSource, service, b float64, k int, opt MCOptions) (Result, error) {
	if k <= 0 {
		return Result{}, errors.New("queue: non-positive horizon")
	}
	if service <= 0 {
		return Result{}, errors.New("queue: non-positive service rate")
	}
	if opt.Replications <= 0 {
		opt.Replications = 1000
	}
	workers := par.Workers(opt.Workers, opt.Replications)

	// Pre-split one source per replication for determinism independent of
	// scheduling order.
	root := rng.New(opt.Seed)
	sources := make([]*rng.Source, opt.Replications)
	for i := range sources {
		sources[i] = root.Split()
	}

	// One path buffer and hit counter per worker when the source supports
	// reuse; hit counts are order-independent integer sums, so no
	// per-replication deposit is needed for worker invariance.
	srcInto, reuse := src.(PathSourceInto)
	type arena struct {
		buf  []float64
		hits int
	}
	arenas := make([]arena, workers)
	var meter *obs.Meter
	if opt.Progress != nil {
		meter = obs.NewMeter("mc", opt.Replications, opt.ProgressEvery, opt.Progress)
	}
	span := obs.TracerFrom(ctx).Start("queue.mc")
	err := par.ForCtx(ctx, workers, opt.Replications, func(w, i int) error {
		ar := &arenas[w]
		var path []float64
		if reuse {
			if ar.buf == nil {
				ar.buf = make([]float64, k)
			}
			srcInto.ArrivalPathInto(sources[i], ar.buf)
			path = ar.buf
		} else {
			path = src.ArrivalPath(sources[i], k)
		}
		hit := FinalOccupancy(opt.InitialOccupancy, path, service) > b
		if hit {
			ar.hits++
		}
		if meter != nil {
			if hit {
				meter.Add(1, true)
			} else {
				meter.Add(0, false)
			}
		}
		return nil
	})
	meter.Finish()
	span.End(map[string]any{
		"replications": opt.Replications,
		"workers":      workers,
		"horizon":      k,
	})
	if err != nil {
		return Result{}, err
	}
	totalHits := 0
	for _, ar := range arenas {
		totalHits += ar.hits
	}
	// Indicator estimator: sum = hits, sumSq = hits.
	return finalize(float64(totalHits), float64(totalHits), opt.Replications, totalHits), nil
}

// TraceOverflow estimates the steady-state P(Q > b) from a single long
// arrival trace by the fraction of slots whose queue occupancy exceeds b,
// after discarding the first warmup slots. This is how the paper evaluates
// the empirical record ("one (long) replication").
func TraceOverflow(arrivals []float64, service, b float64, warmup int) (float64, error) {
	if len(arrivals) == 0 {
		return 0, errors.New("queue: empty trace")
	}
	if warmup < 0 || warmup >= len(arrivals) {
		return 0, errors.New("queue: invalid warmup")
	}
	var q float64
	exceed := 0
	count := 0
	for i, y := range arrivals {
		q += y - service
		if q < 0 {
			q = 0
		}
		if i >= warmup {
			count++
			if q > b {
				exceed++
			}
		}
	}
	return float64(exceed) / float64(count), nil
}

// OccupancyDistribution runs the Lindley recursion over one long trace and
// returns the complementary distribution P(Q > b) sampled at the given
// thresholds in one pass (the whole Fig.-16 x-axis from a single run),
// after discarding warmup slots. Thresholds must be ascending.
func OccupancyDistribution(arrivals []float64, service float64, thresholds []float64, warmup int) ([]float64, error) {
	if len(arrivals) == 0 {
		return nil, errors.New("queue: empty trace")
	}
	if warmup < 0 || warmup >= len(arrivals) {
		return nil, errors.New("queue: invalid warmup")
	}
	if len(thresholds) == 0 {
		return nil, errors.New("queue: no thresholds")
	}
	for i := 1; i < len(thresholds); i++ {
		if thresholds[i] <= thresholds[i-1] {
			return nil, errors.New("queue: thresholds must be strictly ascending")
		}
	}
	counts := make([]int, len(thresholds))
	var q float64
	n := 0
	for i, y := range arrivals {
		q += y - service
		if q < 0 {
			q = 0
		}
		if i < warmup {
			continue
		}
		n++
		// Thresholds ascend, so count every one below q.
		for j := len(thresholds) - 1; j >= 0; j-- {
			if q > thresholds[j] {
				for l := 0; l <= j; l++ {
					counts[l]++
				}
				break
			}
		}
	}
	out := make([]float64, len(thresholds))
	for j, c := range counts {
		out[j] = float64(c) / float64(n)
	}
	return out, nil
}

// UtilizationService returns the service rate mu that yields the requested
// utilization for an arrival process with the given mean rate:
// mu = mean / utilization.
func UtilizationService(meanArrival, utilization float64) (float64, error) {
	if utilization <= 0 || utilization >= 1 {
		return 0, errors.New("queue: utilization must lie in (0,1)")
	}
	if meanArrival <= 0 {
		return 0, errors.New("queue: non-positive mean arrival rate")
	}
	return meanArrival / utilization, nil
}
