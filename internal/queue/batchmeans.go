// Batch-means analysis for single-trace (one long replication) estimates.
// The paper warns that its trace-driven results rest on one replication and
// that "even if the real data were split into batches we would expect
// significant correlations between batches due to the self similar nature
// of the traffic". This file quantifies both halves of that warning: it
// produces a batch-means confidence interval AND reports the lag-1
// correlation between batch means, which stays far from zero under LRD
// input no matter how long the batches are.
package queue

import (
	"errors"
	"math"
)

// BatchResult is a batch-means estimate of the steady-state overflow
// probability from one long trace.
type BatchResult struct {
	// P is the overall time-average estimate.
	P float64
	// StdErr is the batch-means standard error (valid only if batches were
	// independent — see BatchCorr).
	StdErr float64
	// HalfWidth95 is the nominal 95% confidence half-width (1.96 StdErr).
	HalfWidth95 float64
	// BatchCorr is the lag-1 autocorrelation of the batch means. Values
	// far from 0 mean the nominal interval understates the true
	// uncertainty — exactly the paper's caveat for self-similar traffic.
	BatchCorr float64
	// Batches actually used.
	Batches int
}

// TraceOverflowCI estimates the steady-state P(Q > b) from a single long
// arrival trace with batch-means uncertainty. The queue state carries over
// between batches (one continuous Lindley pass); batches only partition the
// time axis for variance estimation.
func TraceOverflowCI(arrivals []float64, service, b float64, warmup, batches int) (BatchResult, error) {
	if len(arrivals) == 0 {
		return BatchResult{}, errors.New("queue: empty trace")
	}
	if warmup < 0 || warmup >= len(arrivals) {
		return BatchResult{}, errors.New("queue: invalid warmup")
	}
	if batches < 2 {
		return BatchResult{}, errors.New("queue: need at least 2 batches")
	}
	usable := len(arrivals) - warmup
	batchLen := usable / batches
	if batchLen < 1 {
		return BatchResult{}, errors.New("queue: trace too short for the requested batches")
	}

	var q float64
	means := make([]float64, 0, batches)
	exceed, count := 0, 0
	for i, y := range arrivals {
		q += y - service
		if q < 0 {
			q = 0
		}
		if i < warmup {
			continue
		}
		count++
		if q > b {
			exceed++
		}
		if count == batchLen {
			means = append(means, float64(exceed)/float64(batchLen))
			exceed, count = 0, 0
			if len(means) == batches {
				break
			}
		}
	}
	if len(means) < 2 {
		return BatchResult{}, errors.New("queue: insufficient complete batches")
	}

	n := float64(len(means))
	var sum float64
	for _, m := range means {
		sum += m
	}
	mean := sum / n
	var ss float64
	for _, m := range means {
		d := m - mean
		ss += d * d
	}
	variance := ss / (n - 1)
	stderr := math.Sqrt(variance / n)

	// Lag-1 autocorrelation of batch means.
	var cov float64
	for i := 0; i+1 < len(means); i++ {
		cov += (means[i] - mean) * (means[i+1] - mean)
	}
	corr := 0.0
	if ss > 0 {
		corr = cov / ss
	}

	return BatchResult{
		P:           mean,
		StdErr:      stderr,
		HalfWidth95: 1.96 * stderr,
		BatchCorr:   corr,
		Batches:     len(means),
	}, nil
}
