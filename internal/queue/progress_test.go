package queue

import (
	"math"
	"testing"

	"vbrsim/internal/obs"
)

// TestProgressDeterminismNeutral is the tentpole gate for this package:
// enabling convergence telemetry must leave the estimate bit-identical.
func TestProgressDeterminismNeutral(t *testing.T) {
	src := iidSource{mean: 1}
	base := MCOptions{Replications: 500, Seed: 9, Workers: 4}
	plain, err := EstimateOverflow(src, 1.25, 10, 100, base)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []obs.Convergence
	instrumented := base
	instrumented.Progress = func(c obs.Convergence) { snaps = append(snaps, c) }
	instrumented.ProgressEvery = 50
	got, err := EstimateOverflow(src, 1.25, 10, 100, instrumented)
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(got.P) != math.Float64bits(plain.P) ||
		math.Float64bits(got.Variance) != math.Float64bits(plain.Variance) ||
		math.Float64bits(got.StdErr) != math.Float64bits(plain.StdErr) ||
		got.Hits != plain.Hits {
		t.Fatalf("progress changed estimate: %+v vs %+v", got, plain)
	}

	if len(snaps) != 10 {
		t.Fatalf("got %d snapshots, want 10", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Completed != 500 || last.Estimator != "mc" {
		t.Fatalf("last snapshot = %+v", last)
	}
	// The final snapshot saw every replication, so its running p must
	// match the estimate exactly (indicator weights sum identically in
	// any order).
	if last.P != plain.P || last.Hits != plain.Hits {
		t.Fatalf("final snapshot p = %v hits = %d, want %v / %d",
			last.P, last.Hits, plain.P, plain.Hits)
	}
	// MC's variance ratio against itself is 1 by construction.
	if plain.Hits > 0 && math.Abs(last.VarianceRatio-1) > 1e-9 {
		t.Fatalf("MC variance ratio = %v, want 1", last.VarianceRatio)
	}
}
