package queue

import (
	"testing"

	"vbrsim/internal/rng"
)

// intoSource implements PathSourceInto with a deterministic arrival stream,
// counting how paths were requested so tests can assert the buffer-reuse
// path is actually exercised.
type intoSource struct {
	mean      float64
	intoCalls *int
}

func (s intoSource) ArrivalPath(r *rng.Source, k int) []float64 {
	buf := make([]float64, k)
	for i := range buf {
		buf[i] = s.mean + r.Norm()
	}
	return buf
}

func (s intoSource) ArrivalPathInto(r *rng.Source, buf []float64) {
	if s.intoCalls != nil {
		*s.intoCalls++
	}
	for i := range buf {
		buf[i] = s.mean + r.Norm()
	}
}

func TestEstimateOverflowUsesInto(t *testing.T) {
	calls := 0
	src := intoSource{mean: 1.2, intoCalls: &calls}
	opt := MCOptions{Replications: 200, Seed: 9}
	res, err := EstimateOverflow(src, 1.5, 3, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 200 {
		t.Errorf("ArrivalPathInto called %d times, want 200", calls)
	}
	// The allocating and reuse paths draw identically, so an alloc-only
	// source must give the bitwise-same estimate.
	plain := PathSourceFunc(intoSource{mean: 1.2}.ArrivalPath)
	ref, err := EstimateOverflow(plain, 1.5, 3, 40, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != ref.P || res.Hits != ref.Hits {
		t.Errorf("Into path changed the estimate: %+v vs %+v", res, ref)
	}
}

func TestEstimateOverflowIntoWorkerInvariance(t *testing.T) {
	src := intoSource{mean: 1.3}
	base := MCOptions{Replications: 400, Seed: 11, Workers: 1}
	one, err := EstimateOverflow(src, 1.6, 4, 50, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 5} {
		opt := base
		opt.Workers = w
		got, err := EstimateOverflow(src, 1.6, 4, 50, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != one.P || got.Hits != one.Hits {
			t.Errorf("workers=%d changed result: %+v vs %+v", w, got, one)
		}
	}
}

func TestSuperpositionIntoMatchesArrivalPath(t *testing.T) {
	sup := Superposition{Base: intoSource{mean: 0.8}, N: 3}
	const k = 64
	a := sup.ArrivalPath(rng.New(21), k)
	buf := make([]float64, k)
	sup.ArrivalPathInto(rng.New(21), buf)
	for i := range a {
		if a[i] != buf[i] {
			t.Fatalf("slot %d: ArrivalPath %v vs ArrivalPathInto %v", i, a[i], buf[i])
		}
	}
	// A stale buffer must be fully overwritten, not accumulated into.
	for i := range buf {
		buf[i] = 1e9
	}
	sup.ArrivalPathInto(rng.New(21), buf)
	for i := range a {
		if a[i] != buf[i] {
			t.Fatalf("stale buffer leaked into slot %d: %v vs %v", i, buf[i], a[i])
		}
	}
}
