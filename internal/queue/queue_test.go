package queue

import (
	"math"
	"testing"
	"testing/quick"

	"vbrsim/internal/rng"
)

func TestEvolveKnownPath(t *testing.T) {
	arr := []float64{5, 0, 3, 10, 0}
	got := Evolve(0, arr, 2)
	want := []float64{3, 1, 2, 10, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Q[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if fo := FinalOccupancy(0, arr, 2); fo != 8 {
		t.Errorf("FinalOccupancy = %v, want 8", fo)
	}
}

func TestEvolveNonNegative(t *testing.T) {
	arr := []float64{0, 0, 0, 100, 0, 0}
	q := Evolve(5, arr, 10)
	for i, v := range q {
		if v < 0 {
			t.Fatalf("Q[%d] = %v < 0", i, v)
		}
	}
}

func TestEvolveInitialOccupancy(t *testing.T) {
	arr := []float64{1, 1, 1}
	got := Evolve(10, arr, 2)
	want := []float64{9, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Q[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLindleyWorkloadIdentity(t *testing.T) {
	// Pathwise identity for Q0 = 0: Q_k = W_k - min_{0<=i<=k} W_i.
	r := rng.New(2)
	for rep := 0; rep < 100; rep++ {
		arr := make([]float64, 50)
		for i := range arr {
			arr[i] = r.Exp(0.5)
		}
		service := 2.3
		q := Evolve(0, arr, service)
		w := 0.0
		minW := 0.0
		for k := 0; k < len(arr); k++ {
			w += arr[k] - service
			want := w - minW
			if w < minW {
				minW = w
				want = 0
			}
			if math.Abs(q[k]-want) > 1e-9 {
				t.Fatalf("rep %d slot %d: Q=%v, W-minW=%v", rep, k, q[k], want)
			}
		}
	}
}

func TestDualityDistributionalIdentity(t *testing.T) {
	// For iid (exchangeable) arrivals and Q0=0,
	// P(Q_k > b) = P(max_{i<=k} W_i > b) holds in distribution. Compare the
	// two Monte-Carlo estimates on the same replication budget.
	r := rng.New(4)
	const reps = 20000
	const k = 60
	service := 1.4
	b := 4.0
	lindleyHits, supHits := 0, 0
	for rep := 0; rep < reps; rep++ {
		arr := make([]float64, k)
		for i := range arr {
			arr[i] = r.Exp(1)
		}
		if FinalOccupancy(0, arr, service) > b {
			lindleyHits++
		}
		if _, crossed := CrossingTime(arr, service, b); crossed {
			supHits++
		}
	}
	pL := float64(lindleyHits) / reps
	pS := float64(supHits) / reps
	if math.Abs(pL-pS) > 0.01 {
		t.Errorf("duality violated: P(Q_k>b)=%v vs P(sup W>b)=%v", pL, pS)
	}
	if pL < 0.01 {
		t.Fatalf("test event too rare (p=%v) to be meaningful", pL)
	}
}

func TestCrossingTimeExact(t *testing.T) {
	arr := []float64{1, 1, 5, 0}
	ct, ok := CrossingTime(arr, 1, 3.5)
	if !ok || ct != 3 {
		t.Errorf("CrossingTime = %d,%v, want 3,true", ct, ok)
	}
	if _, ok := CrossingTime(arr, 10, 1); ok {
		t.Error("crossing reported for overloaded service")
	}
}

// iidSource emits iid exponential arrivals with mean m.
type iidSource struct{ mean float64 }

func (s iidSource) ArrivalPath(r *rng.Source, k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = r.Exp(1 / s.mean)
	}
	return out
}

func TestEstimateOverflowValidation(t *testing.T) {
	src := iidSource{mean: 1}
	if _, err := EstimateOverflow(src, 2, 5, 0, MCOptions{}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := EstimateOverflow(src, 0, 5, 10, MCOptions{}); err == nil {
		t.Error("zero service accepted")
	}
}

func TestEstimateOverflowDeterministic(t *testing.T) {
	src := iidSource{mean: 1}
	opt := MCOptions{Replications: 500, Seed: 9, Workers: 4}
	a, err := EstimateOverflow(src, 1.25, 10, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateOverflow(src, 1.25, 10, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.P != b.P || a.Hits != b.Hits {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
	// Worker count must not change the estimate.
	c, err := EstimateOverflow(src, 1.25, 10, 100, MCOptions{Replications: 500, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.P != c.P {
		t.Errorf("worker count changed estimate: %v vs %v", a.P, c.P)
	}
}

func TestEstimateOverflowMD1SanityBound(t *testing.T) {
	// M/D/1-like: exponential work arriving per slot, deterministic service.
	// For utilization 0.5 the stationary queue is light; P(Q > 50) must be
	// tiny, P(Q > 0.01) substantial.
	src := iidSource{mean: 1}
	res, err := EstimateOverflow(src, 2.0, 50, 400, MCOptions{Replications: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Errorf("P(Q>50) = %v, want ~0", res.P)
	}
	res2, err := EstimateOverflow(src, 2.0, 0.01, 400, MCOptions{Replications: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.P < 0.2 {
		t.Errorf("P(Q>0.01) = %v, want substantial", res2.P)
	}
	if res2.P <= res.P {
		t.Error("overflow probability must decrease in b")
	}
}

func TestEstimateOverflowMonotoneInBuffer(t *testing.T) {
	src := iidSource{mean: 1}
	prev := 1.1
	for _, b := range []float64{0, 2, 5, 10, 20} {
		res, err := EstimateOverflow(src, 1.1, b, 200, MCOptions{Replications: 3000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.P > prev+0.02 {
			t.Errorf("P(Q>%v) = %v exceeds P at smaller buffer %v", b, res.P, prev)
		}
		prev = res.P
	}
}

func TestResultFields(t *testing.T) {
	src := iidSource{mean: 1}
	res, err := EstimateOverflow(src, 1.2, 5, 200, MCOptions{Replications: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replications != 1000 {
		t.Errorf("Replications = %d", res.Replications)
	}
	if res.P < 0 || res.P > 1 {
		t.Errorf("P = %v", res.P)
	}
	if float64(res.Hits)/1000 != res.P {
		t.Errorf("Hits %d inconsistent with P %v", res.Hits, res.P)
	}
	// For an indicator, variance = p(1-p).
	wantVar := res.P * (1 - res.P)
	if math.Abs(res.Variance-wantVar) > 1e-9 {
		t.Errorf("Variance = %v, want %v", res.Variance, wantVar)
	}
	if res.P > 0 && math.Abs(res.NormVar-wantVar/(res.P*res.P)) > 1e-9 {
		t.Errorf("NormVar = %v", res.NormVar)
	}
}

func TestZeroProbabilityNormVarInfinite(t *testing.T) {
	src := iidSource{mean: 1}
	res, err := EstimateOverflow(src, 100, 1000, 10, MCOptions{Replications: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 || !math.IsInf(res.NormVar, 1) {
		t.Errorf("expected zero estimate with infinite NormVar, got %+v", res)
	}
}

func TestTraceOverflow(t *testing.T) {
	// Deterministic sawtooth: arrivals 3,0,3,0..., service 1.5 -> queue
	// oscillates; P(Q > 1) computable by hand.
	arr := make([]float64, 1000)
	for i := range arr {
		if i%2 == 0 {
			arr[i] = 3
		}
	}
	p, err := TraceOverflow(arr, 1.5, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Q alternates 1.5, 0, 1.5, 0, ... so exceeds 1 half the time.
	if math.Abs(p-0.5) > 0.01 {
		t.Errorf("TraceOverflow = %v, want 0.5", p)
	}
}

func TestTraceOverflowWarmup(t *testing.T) {
	arr := []float64{100, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	full, err := TraceOverflow(arr, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := TraceOverflow(arr, 10, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if late >= full {
		t.Errorf("warmup did not reduce exceedance: %v vs %v", late, full)
	}
	if _, err := TraceOverflow(arr, 10, 5, 10); err == nil {
		t.Error("warmup >= len accepted")
	}
	if _, err := TraceOverflow(nil, 10, 5, 0); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestOccupancyDistribution(t *testing.T) {
	r := rng.New(9)
	arr := make([]float64, 100000)
	for i := range arr {
		arr[i] = r.Exp(1)
	}
	service := 1.25
	thresholds := []float64{0.5, 2, 5, 10, 20}
	dist, err := OccupancyDistribution(arr, service, thresholds, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Must agree with per-threshold TraceOverflow exactly.
	for j, b := range thresholds {
		want, err := TraceOverflow(arr, service, b, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dist[j]-want) > 1e-12 {
			t.Errorf("threshold %v: %v vs TraceOverflow %v", b, dist[j], want)
		}
	}
	// Monotone non-increasing.
	for j := 1; j < len(dist); j++ {
		if dist[j] > dist[j-1] {
			t.Errorf("distribution not monotone at %d", j)
		}
	}
}

func TestOccupancyDistributionValidation(t *testing.T) {
	arr := []float64{1, 2, 3}
	if _, err := OccupancyDistribution(nil, 1, []float64{1}, 0); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := OccupancyDistribution(arr, 1, nil, 0); err == nil {
		t.Error("no thresholds accepted")
	}
	if _, err := OccupancyDistribution(arr, 1, []float64{2, 1}, 0); err == nil {
		t.Error("descending thresholds accepted")
	}
	if _, err := OccupancyDistribution(arr, 1, []float64{1}, 5); err == nil {
		t.Error("bad warmup accepted")
	}
}

func TestUtilizationService(t *testing.T) {
	mu, err := UtilizationService(3000, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if mu != 5000 {
		t.Errorf("mu = %v, want 5000", mu)
	}
	for _, u := range []float64{0, 1, -0.5, 1.5} {
		if _, err := UtilizationService(3000, u); err == nil {
			t.Errorf("utilization %v accepted", u)
		}
	}
	if _, err := UtilizationService(0, 0.5); err == nil {
		t.Error("zero mean accepted")
	}
}

func TestQuickLindleyInvariants(t *testing.T) {
	f := func(raw []float64, q0raw, svcRaw float64) bool {
		arr := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				arr = append(arr, math.Abs(v))
			}
		}
		if len(arr) == 0 {
			return true
		}
		q0 := math.Abs(q0raw)
		svc := math.Abs(svcRaw) + 0.001
		if math.IsNaN(q0) || math.IsInf(q0, 0) || math.IsInf(svc, 0) {
			return true
		}
		q := Evolve(q0, arr, svc)
		prev := q0
		for i, v := range q {
			if v < 0 {
				return false
			}
			// Single-slot growth is bounded by the arrival.
			if v > prev+arr[i] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvolve(b *testing.B) {
	r := rng.New(1)
	arr := make([]float64, 10000)
	for i := range arr {
		arr[i] = r.Exp(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FinalOccupancy(0, arr, 1.2)
	}
}

func BenchmarkEstimateOverflow(b *testing.B) {
	src := iidSource{mean: 1}
	for i := 0; i < b.N; i++ {
		if _, err := EstimateOverflow(src, 1.25, 10, 200, MCOptions{Replications: 200, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
