package queue

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
)

func TestTraceOverflowCIValidation(t *testing.T) {
	arr := make([]float64, 100)
	if _, err := TraceOverflowCI(nil, 1, 1, 0, 4); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := TraceOverflowCI(arr, 1, 1, 100, 4); err == nil {
		t.Error("warmup >= len accepted")
	}
	if _, err := TraceOverflowCI(arr, 1, 1, 0, 1); err == nil {
		t.Error("single batch accepted")
	}
	if _, err := TraceOverflowCI(arr, 1, 1, 0, 200); err == nil {
		t.Error("more batches than slots accepted")
	}
}

func TestTraceOverflowCIMatchesPointEstimate(t *testing.T) {
	r := rng.New(1)
	arr := make([]float64, 100000)
	for i := range arr {
		arr[i] = r.Exp(1)
	}
	service, b := 1.25, 3.0
	point, err := TraceOverflow(arr, service, b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := TraceOverflowCI(arr, service, b, 1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Batches != 20 {
		t.Errorf("Batches = %d", ci.Batches)
	}
	// Batch mean of means ~ point estimate (up to trailing partial batch).
	if math.Abs(ci.P-point) > 0.02 {
		t.Errorf("batch P %v vs point %v", ci.P, point)
	}
	if ci.StdErr <= 0 || ci.HalfWidth95 <= ci.StdErr {
		t.Errorf("bad uncertainty: %+v", ci)
	}
	// The true value should usually be inside a few half-widths.
	if math.Abs(ci.P-point) > 4*ci.HalfWidth95+0.02 {
		t.Errorf("point estimate far outside CI: %+v vs %v", ci, point)
	}
}

func TestBatchCorrHighForLRDInput(t *testing.T) {
	// SRD input: batch means nearly independent. LRD-style input
	// (long Pareto on-periods): batch means visibly correlated — the
	// paper's caveat.
	r := rng.New(2)
	srd := make([]float64, 200000)
	for i := range srd {
		srd[i] = r.Exp(1)
	}
	srdCI, err := TraceOverflowCI(srd, 1.25, 2, 1000, 20)
	if err != nil {
		t.Fatal(err)
	}

	lrd := make([]float64, 200000)
	level := 0.0
	left := 0
	for i := range lrd {
		if left == 0 {
			left = int(r.Pareto(1.2, 50))
			level = r.Exp(1)
		}
		left--
		lrd[i] = level + 0.1*r.Norm()
		if lrd[i] < 0 {
			lrd[i] = 0
		}
	}
	var lrdMean float64
	for _, v := range lrd {
		lrdMean += v
	}
	lrdMean /= float64(len(lrd))
	lrdCI, err := TraceOverflowCI(lrd, lrdMean/0.7, 2*lrdMean, 1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(srdCI.BatchCorr) > 0.45 {
		t.Errorf("SRD batch correlation = %v, want near 0", srdCI.BatchCorr)
	}
	if lrdCI.BatchCorr < srdCI.BatchCorr {
		t.Errorf("LRD batch correlation (%v) not above SRD (%v)", lrdCI.BatchCorr, srdCI.BatchCorr)
	}
}
