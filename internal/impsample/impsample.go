// Package impsample implements the importance-sampling fast simulation of
// Appendix B: the Gaussian background process X is twisted by a constant
// mean shift, X' = X + m*, the foreground arrivals become Y' = h(X'), and
// each replication is re-weighted by the exact likelihood ratio of the
// background processes (eqs. 42-48),
//
//	L(k) = prod_i f_X(x'_i | past) / f_X'(x'_i | past),
//
// where both conditional densities are Gaussians with the same variance v_i
// and means that differ by m*(1 - sum_j phi_{i,j}). Writing the generated
// innovation as e_i = x_i - E[X_i|past], each factor reduces to
//
//	log L_i = -(2 e_i c_i + c_i^2) / (2 v_i),   c_i = m*(1 - PhiRowSum(i)),
//
// which is numerically stable and costs O(1) on top of path generation.
//
// Two estimators are provided, matching the paper's two uses:
//
//   - Crossing (Section 4's steps 1-8): P(Q_k > b) for an initially empty
//     queue via the workload-supremum formulation, stopping each replication
//     at the first crossing;
//   - Lindley: P(Q_k > b) for an arbitrary initial occupancy by running the
//     full recursion to the horizon (used for the transient study, Fig. 15).
package impsample

import (
	"context"
	"errors"
	"math"

	"vbrsim/internal/hosking"
	"vbrsim/internal/obs"
	"vbrsim/internal/par"
	"vbrsim/internal/queue"
	"vbrsim/internal/rng"
	"vbrsim/internal/transform"
)

// Mode selects the estimator.
type Mode int

// Estimator modes.
const (
	// ModeCrossing estimates P(sup_{i<=k} W_i > b), which equals
	// P(Q_k > b) for an initially empty queue; replications stop early at
	// the first crossing (the paper's simulation procedure).
	ModeCrossing Mode = iota
	// ModeLindley runs the full Lindley recursion from InitialOccupancy and
	// tests Q_k > b at the horizon.
	ModeLindley
)

// condGen is the conditional-law surface the estimators need from a
// generation plan. Both hosking.Plan (exact) and hosking.Truncated (the
// O(p) fast path) satisfy it.
type condGen interface {
	CondMean(k int, x []float64) float64
	CondVar(k int) float64
	PhiRowSum(k int) float64
	Len() int
}

// Config parameterizes one importance-sampling estimation.
type Config struct {
	// Plan is the background-process generation plan; its length bounds the
	// horizon.
	Plan *hosking.Plan
	// FastPlan, when set, replaces Plan with the truncated-AR(p) fast path:
	// conditional quantities are exact below the truncation order and
	// frozen beyond it, each step costs O(p) instead of O(k), and the
	// horizon is no longer bounded by a plan length. The induced ACF error
	// is exposed by FastPlan.MaxACFError().
	FastPlan *hosking.Truncated
	// Transform maps background variates to foreground arrivals.
	Transform transform.T
	// TypedTransforms, when non-empty, replaces Transform with a cyclic
	// per-slot pattern of transforms — the Section 3.3 composite model's
	// GOP-modulated arrivals (slot i uses TypedTransforms[i % len]). The
	// likelihood ratio is unchanged: twisting happens in the background
	// process, and the per-type transforms are deterministic functions of
	// the slot index.
	TypedTransforms []transform.T
	// Service is the deterministic per-slot service rate mu.
	Service float64
	// Buffer is the overflow threshold b, in the same (absolute) units as
	// the arrivals.
	Buffer float64
	// Horizon is the stop time k.
	Horizon int
	// Twist is the background mean shift m*; 0 recovers plain Monte Carlo.
	Twist float64
	// Replications is N; default 1000 (the paper's setting).
	Replications int
	// Workers bounds concurrency; default GOMAXPROCS.
	Workers int
	// Seed drives the replication sources.
	Seed uint64
	// Mode selects the estimator; default ModeCrossing.
	Mode Mode
	// InitialOccupancy is Q_0 for ModeLindley.
	InitialOccupancy float64
	// Progress, when non-nil, receives periodic convergence snapshots
	// (running weighted p, StdErr, normalized variance, the IS-vs-MC
	// variance ratio, reps/sec) as replications complete. The snapshot
	// accumulators run in completion order and are fully separate from the
	// rep-indexed weights reduced for the final Result, so enabling
	// progress never changes the estimate.
	Progress func(obs.Convergence)
	// ProgressEvery is the snapshot period in replications; <= 0 means
	// max(1, Replications/32).
	ProgressEvery int
}

// gen returns the active conditional-law source (FastPlan wins over Plan),
// or nil when neither is configured.
func (c *Config) gen() condGen {
	if c.FastPlan != nil {
		return c.FastPlan
	}
	if c.Plan != nil {
		return c.Plan
	}
	return nil
}

func (c *Config) validate() error {
	g := c.gen()
	if g == nil {
		return errors.New("impsample: nil plan")
	}
	if c.Horizon <= 0 || c.Horizon > g.Len() {
		return errors.New("impsample: horizon must lie in [1, plan length]")
	}
	if c.Service <= 0 {
		return errors.New("impsample: non-positive service rate")
	}
	if c.Mode == ModeCrossing && c.InitialOccupancy != 0 {
		return errors.New("impsample: ModeCrossing requires an initially empty queue")
	}
	return nil
}

// Estimate runs the importance-sampling estimator and returns the weighted
// result. With Twist == 0 it degenerates to plain Monte Carlo on the same
// sample paths, which is how the estimator's unbiasedness is tested.
func Estimate(cfg Config) (queue.Result, error) {
	return EstimateCtx(context.Background(), cfg)
}

// EstimateCtx is Estimate with cancellation: every worker polls ctx between
// replications and the call returns ctx.Err() instead of a partial estimate
// when the context is done. Cancellation does not perturb determinism of
// completed runs — sources are pre-split per replication.
func EstimateCtx(ctx context.Context, cfg Config) (queue.Result, error) {
	if err := cfg.validate(); err != nil {
		return queue.Result{}, err
	}
	reps := cfg.Replications
	if reps <= 0 {
		reps = 1000
	}
	workers := par.Workers(cfg.Workers, reps)
	root := rng.New(cfg.Seed)
	sources := make([]*rng.Source, reps)
	for i := range sources {
		sources[i] = root.Split()
	}

	// Per-replication weights are collected by index and reduced in a fixed
	// order, so the estimate is bit-identical regardless of worker count.
	weights := make([]float64, reps)
	hitFlags := make([]bool, reps)
	bufs := make([][]float64, workers)
	var meter *obs.Meter
	if cfg.Progress != nil {
		meter = obs.NewMeter("is", reps, cfg.ProgressEvery, cfg.Progress)
	}
	span := obs.TracerFrom(ctx).Start("impsample.estimate")
	err := par.ForCtx(ctx, workers, reps, func(w, i int) error {
		if bufs[w] == nil {
			bufs[w] = make([]float64, cfg.Horizon)
		}
		weights[i], hitFlags[i] = replicate(&cfg, sources[i], bufs[w])
		meter.Add(weights[i], hitFlags[i])
		return nil
	})
	meter.Finish()
	span.End(map[string]any{
		"replications": reps,
		"workers":      workers,
		"horizon":      cfg.Horizon,
		"twist":        cfg.Twist,
	})
	if err != nil {
		return queue.Result{}, err
	}
	var sum, sumSq float64
	hits := 0
	for i, hit := range hitFlags {
		if hit {
			hits++
			sum += weights[i]
			sumSq += weights[i] * weights[i]
		}
	}
	return finalize(sum, sumSq, reps, hits), nil
}

// transformAt returns the marginal transform for slot i.
func (c *Config) transformAt(i int) transform.T {
	if len(c.TypedTransforms) > 0 {
		return c.TypedTransforms[i%len(c.TypedTransforms)]
	}
	return c.Transform
}

// replicate runs one twisted replication. buf is scratch for the background
// path history (length >= horizon). It returns the likelihood weight and
// whether the overflow event occurred.
func replicate(cfg *Config, r *rng.Source, buf []float64) (weight float64, hit bool) {
	plan := cfg.gen()
	mStar := cfg.Twist
	var logL float64
	var w float64 // running workload (crossing mode)
	q := cfg.InitialOccupancy

	for i := 0; i < cfg.Horizon; i++ {
		m := plan.CondMean(i, buf[:i])
		v := plan.CondVar(i)
		innov := math.Sqrt(v) * r.Norm()
		x := m + innov
		buf[i] = x
		c := mStar * (1 - plan.PhiRowSum(i))
		if c != 0 {
			logL -= (2*innov*c + c*c) / (2 * v)
		}
		y := cfg.transformAt(i).Apply(x + mStar)

		switch cfg.Mode {
		case ModeCrossing:
			w += y - cfg.Service
			if w > cfg.Buffer {
				return math.Exp(logL), true
			}
		case ModeLindley:
			q += y - cfg.Service
			if q < 0 {
				q = 0
			}
		}
	}
	if cfg.Mode == ModeLindley && q > cfg.Buffer {
		return math.Exp(logL), true
	}
	return 0, false
}

// finalize mirrors queue.Result construction for weighted samples.
func finalize(sum, sumSq float64, n, hits int) queue.Result {
	p := sum / float64(n)
	variance := sumSq/float64(n) - p*p
	if variance < 0 {
		variance = 0
	}
	res := queue.Result{
		P:            p,
		Variance:     variance,
		StdErr:       math.Sqrt(variance / float64(n)),
		Replications: n,
		Hits:         hits,
	}
	if p > 0 {
		res.NormVar = variance / (p * p)
	} else {
		res.NormVar = math.Inf(1)
	}
	return res
}

// EstimateTransient estimates the transient overflow probability
// P(Q_k > b) at every checkpoint k in one pass per replication: the Lindley
// recursion runs from cfg.InitialOccupancy to the largest checkpoint, and at
// each checkpoint the indicator is weighted by the running (prefix)
// likelihood ratio — E'[1{Q_k > b} L(k)] is unbiased for each k separately.
// This is how the paper's Fig. 15 (empty vs. full initial buffer) is
// produced without re-simulating per stop time. cfg.Mode and cfg.Horizon are
// ignored; checkpoints must be positive, strictly increasing, and bounded by
// the plan length.
func EstimateTransient(cfg Config, checkpoints []int) ([]queue.Result, error) {
	return EstimateTransientCtx(context.Background(), cfg, checkpoints)
}

// EstimateTransientCtx is EstimateTransient with the same cancellation
// contract as EstimateCtx.
func EstimateTransientCtx(ctx context.Context, cfg Config, checkpoints []int) ([]queue.Result, error) {
	if cfg.gen() == nil {
		return nil, errors.New("impsample: nil plan")
	}
	if len(checkpoints) == 0 {
		return nil, errors.New("impsample: no checkpoints")
	}
	prev := 0
	for _, k := range checkpoints {
		if k <= prev {
			return nil, errors.New("impsample: checkpoints must be positive and strictly increasing")
		}
		prev = k
	}
	horizon := checkpoints[len(checkpoints)-1]
	if horizon > cfg.gen().Len() {
		return nil, errors.New("impsample: checkpoint beyond plan length")
	}
	if cfg.Service <= 0 {
		return nil, errors.New("impsample: non-positive service rate")
	}
	reps := cfg.Replications
	if reps <= 0 {
		reps = 1000
	}
	workers := par.Workers(cfg.Workers, reps)
	root := rng.New(cfg.Seed)
	sources := make([]*rng.Source, reps)
	for i := range sources {
		sources[i] = root.Split()
	}

	nc := len(checkpoints)
	// weights[i*nc+j] is replication i's weighted indicator at checkpoint j.
	weights := make([]float64, reps*nc)
	bufs := make([][]float64, workers)
	// Progress tracks the final checkpoint, the longest-horizon (and
	// slowest-converging) estimate of the sweep.
	var meter *obs.Meter
	if cfg.Progress != nil {
		meter = obs.NewMeter("is-transient", reps, cfg.ProgressEvery, cfg.Progress)
	}
	span := obs.TracerFrom(ctx).Start("impsample.transient")
	err := par.ForCtx(ctx, workers, reps, func(w, i int) error {
		if bufs[w] == nil {
			bufs[w] = make([]float64, horizon)
		}
		out := weights[i*nc : (i+1)*nc]
		transientReplicate(&cfg, sources[i], bufs[w], checkpoints, out)
		meter.Add(out[nc-1], out[nc-1] > 0)
		return nil
	})
	meter.Finish()
	span.End(map[string]any{
		"replications": reps,
		"workers":      workers,
		"horizon":      horizon,
		"checkpoints":  nc,
		"twist":        cfg.Twist,
	})
	if err != nil {
		return nil, err
	}

	out := make([]queue.Result, nc)
	for j := 0; j < nc; j++ {
		var sum, sumSq float64
		hits := 0
		for i := 0; i < reps; i++ {
			wgt := weights[i*nc+j]
			if wgt > 0 {
				hits++
				sum += wgt
				sumSq += wgt * wgt
			}
		}
		out[j] = finalize(sum, sumSq, reps, hits)
	}
	return out, nil
}

// transientReplicate runs one full-horizon replication, filling the weighted
// indicator at each checkpoint.
func transientReplicate(cfg *Config, r *rng.Source, buf []float64, checkpoints []int, out []float64) {
	plan := cfg.gen()
	mStar := cfg.Twist
	var logL float64
	q := cfg.InitialOccupancy
	next := 0
	horizon := checkpoints[len(checkpoints)-1]
	for i := 0; i < horizon; i++ {
		m := plan.CondMean(i, buf[:i])
		v := plan.CondVar(i)
		innov := math.Sqrt(v) * r.Norm()
		buf[i] = m + innov
		c := mStar * (1 - plan.PhiRowSum(i))
		if c != 0 {
			logL -= (2*innov*c + c*c) / (2 * v)
		}
		y := cfg.transformAt(i).Apply(buf[i] + mStar)
		q += y - cfg.Service
		if q < 0 {
			q = 0
		}
		if i+1 == checkpoints[next] {
			if q > cfg.Buffer {
				out[next] = math.Exp(logL)
			}
			next++
		}
	}
}

// VarianceReduction returns the factor by which importance sampling with the
// given result beats plain Monte Carlo at equal replication count:
// the indicator estimator's normalized variance (1-p)/p divided by the IS
// normalized variance. Values >> 1 mean the twist helps.
func VarianceReduction(res queue.Result) float64 {
	if res.P <= 0 || res.P >= 1 || res.NormVar == 0 {
		return 0
	}
	naive := (1 - res.P) / res.P
	return naive / res.NormVar
}

// TwistSearchResult pairs a candidate twist with its estimate.
type TwistSearchResult struct {
	Twist  float64
	Result queue.Result
}

// SearchTwist evaluates the estimator at each candidate twist (the paper's
// heuristic search for the normalized-variance "valley", Fig. 14) and
// returns all results plus the index of the lowest finite normalized
// variance. An error is returned only for configuration problems; candidate
// twists whose estimate degenerates are reported with infinite NormVar.
func SearchTwist(cfg Config, twists []float64) ([]TwistSearchResult, int, error) {
	if len(twists) == 0 {
		return nil, -1, errors.New("impsample: no twist candidates")
	}
	out := make([]TwistSearchResult, len(twists))
	best := -1
	for i, m := range twists {
		c := cfg
		c.Twist = m
		res, err := Estimate(c)
		if err != nil {
			return nil, -1, err
		}
		out[i] = TwistSearchResult{Twist: m, Result: res}
		if !math.IsInf(res.NormVar, 1) && (best == -1 || res.NormVar < out[best].Result.NormVar) {
			best = i
		}
	}
	return out, best, nil
}
