package impsample

import (
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/queue"
	"vbrsim/internal/rng"
	"vbrsim/internal/transform"
)

// testSetup builds a small background plan and a mildly nonlinear transform.
func testSetup(t testing.TB, n int) (*hosking.Plan, transform.T) {
	t.Helper()
	plan, err := hosking.NewPlan(acf.Exponential{Lambda: 0.2}, n)
	if err != nil {
		t.Fatal(err)
	}
	return plan, transform.New(dist.Lognormal{Mu: 0, Sigma: 0.5})
}

func TestValidation(t *testing.T) {
	plan, h := testSetup(t, 50)
	base := Config{Plan: plan, Transform: h, Service: 2, Buffer: 5, Horizon: 50}
	bad := []func(*Config){
		func(c *Config) { c.Plan = nil },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Horizon = 51 },
		func(c *Config) { c.Service = 0 },
		func(c *Config) { c.InitialOccupancy = 3 }, // crossing mode
	}
	for i, mut := range bad {
		c := base
		mut(&c)
		if _, err := Estimate(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestZeroTwistMatchesPlainMC(t *testing.T) {
	// With m* = 0 the IS estimator must equal a plain indicator estimator
	// over the same distributional setting.
	plan, h := testSetup(t, 100)
	cfg := Config{
		Plan: plan, Transform: h,
		Service: 1.6, Buffer: 4, Horizon: 100,
		Replications: 4000, Seed: 1,
	}
	res, err := Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Plain MC over the same generator via the queue package.
	src := queue.PathSourceFunc(func(r *rng.Source, k int) []float64 {
		return h.ApplySlice(plan.Path(r, k))
	})
	mc, err := queue.EstimateOverflow(src, 1.6, 4, 100, queue.MCOptions{Replications: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("event too rare for this test: p=%v", res.P)
	}
	se := 3 * (res.StdErr + mc.StdErr)
	if math.Abs(res.P-mc.P) > se {
		t.Errorf("IS(m*=0) = %v vs MC = %v (3se = %v)", res.P, mc.P, se)
	}
	// With zero twist every weight is exactly 1.
	if res.Hits > 0 && math.Abs(res.P-float64(res.Hits)/float64(res.Replications)) > 1e-12 {
		t.Errorf("zero-twist weights are not 1: P=%v hits=%d", res.P, res.Hits)
	}
}

func TestISUnbiasedness(t *testing.T) {
	// A moderate twist must estimate the same probability as plain MC for a
	// non-rare event.
	plan, h := testSetup(t, 100)
	base := Config{
		Plan: plan, Transform: h,
		Service: 1.6, Buffer: 4, Horizon: 100,
		Replications: 20000, Seed: 3,
	}
	plain, err := Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	twisted := base
	twisted.Twist = 0.7
	twisted.Seed = 4
	res, err := Estimate(twisted)
	if err != nil {
		t.Fatal(err)
	}
	se := 3 * (plain.StdErr + res.StdErr)
	if math.Abs(res.P-plain.P) > se {
		t.Errorf("twisted estimate %v vs plain %v (3se = %v)", res.P, plain.P, se)
	}
}

func TestVarianceReductionOnRareEvent(t *testing.T) {
	// For a genuinely rare event the twisted estimator must (a) see many
	// more hits and (b) reduce the normalized variance substantially.
	plan, h := testSetup(t, 120)
	base := Config{
		Plan: plan, Transform: h,
		Service: 2.2, Buffer: 30, Horizon: 120,
		Replications: 3000, Seed: 5,
	}
	plain, err := Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	twisted := base
	twisted.Twist = 1.8
	res, err := Estimate(twisted)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits < 10*plain.Hits+10 {
		t.Errorf("twist did not accelerate hits: plain %d, twisted %d", plain.Hits, res.Hits)
	}
	if res.P <= 0 {
		t.Fatal("twisted estimator found no mass")
	}
	vr := VarianceReduction(res)
	if vr < 3 {
		t.Errorf("variance reduction = %v, want > 3", vr)
	}
}

func TestDeterminismAndWorkerInvariance(t *testing.T) {
	plan, h := testSetup(t, 60)
	cfg := Config{
		Plan: plan, Transform: h,
		Service: 1.8, Buffer: 6, Horizon: 60,
		Twist: 1.0, Replications: 500, Seed: 7, Workers: 4,
	}
	a, err := Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.P != b.P || a.Hits != b.Hits {
		t.Errorf("worker count changed result: %+v vs %+v", a, b)
	}
}

func TestLindleyModeMatchesCrossingForEmptyStart(t *testing.T) {
	// For q0 = 0 the two modes estimate the same probability (duality for
	// the time-reversible Gaussian background).
	plan, h := testSetup(t, 80)
	cross := Config{
		Plan: plan, Transform: h,
		Service: 1.7, Buffer: 4, Horizon: 80,
		Replications: 8000, Seed: 11,
	}
	rc, err := Estimate(cross)
	if err != nil {
		t.Fatal(err)
	}
	lind := cross
	lind.Mode = ModeLindley
	lind.Seed = 12
	rl, err := Estimate(lind)
	if err != nil {
		t.Fatal(err)
	}
	se := 3 * (rc.StdErr + rl.StdErr)
	if math.Abs(rc.P-rl.P) > se {
		t.Errorf("crossing %v vs lindley %v (3se %v)", rc.P, rl.P, se)
	}
}

func TestLindleyModeInitialOccupancy(t *testing.T) {
	// Starting full must give a higher transient overflow probability than
	// starting empty at a short horizon.
	plan, h := testSetup(t, 60)
	empty := Config{
		Plan: plan, Transform: h,
		Service: 1.7, Buffer: 8, Horizon: 20,
		Mode: ModeLindley, Replications: 6000, Seed: 13,
	}
	re, err := Estimate(empty)
	if err != nil {
		t.Fatal(err)
	}
	full := empty
	full.InitialOccupancy = 8
	rf, err := Estimate(full)
	if err != nil {
		t.Fatal(err)
	}
	if rf.P <= re.P {
		t.Errorf("full start %v should exceed empty start %v at short horizon", rf.P, re.P)
	}
}

func TestSearchTwistFindsValley(t *testing.T) {
	plan, h := testSetup(t, 100)
	cfg := Config{
		Plan: plan, Transform: h,
		Service: 2.2, Buffer: 25, Horizon: 100,
		Replications: 1500, Seed: 17,
	}
	twists := []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	results, best, err := SearchTwist(cfg, twists)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(twists) {
		t.Fatalf("results length %d", len(results))
	}
	if best < 0 {
		t.Fatal("no finite-variance twist found")
	}
	if results[best].Twist == 0 {
		t.Error("valley at zero twist is implausible for a rare event")
	}
	// The best twist must beat plain MC's normalized variance.
	if !math.IsInf(results[0].Result.NormVar, 1) &&
		results[best].Result.NormVar >= results[0].Result.NormVar {
		t.Errorf("best twist %v does not beat zero twist", results[best].Twist)
	}
}

func TestSearchTwistEmpty(t *testing.T) {
	plan, h := testSetup(t, 10)
	cfg := Config{Plan: plan, Transform: h, Service: 2, Buffer: 5, Horizon: 10}
	if _, _, err := SearchTwist(cfg, nil); err == nil {
		t.Error("empty candidate list accepted")
	}
}

func TestVarianceReductionEdgeCases(t *testing.T) {
	if VarianceReduction(queue.Result{P: 0}) != 0 {
		t.Error("P=0 should give 0")
	}
	if VarianceReduction(queue.Result{P: 1}) != 0 {
		t.Error("P=1 should give 0")
	}
	res := queue.Result{P: 0.01, NormVar: (1 - 0.01) / 0.01}
	if vr := VarianceReduction(res); math.Abs(vr-1) > 1e-12 {
		t.Errorf("MC-equivalent result should give VR=1, got %v", vr)
	}
}

func TestTypedTransformsGOPArrivals(t *testing.T) {
	// Composite-model arrivals: three per-type transforms cycled in a GOP
	// pattern. Unbiasedness must survive typing: compare zero-twist against
	// a twisted estimate on a non-rare event.
	plan, err := hosking.NewPlan(acf.Exponential{Lambda: 0.05}, 120)
	if err != nil {
		t.Fatal(err)
	}
	big := transform.New(dist.Lognormal{Mu: 1.0, Sigma: 0.4})    // "I frames"
	mid := transform.New(dist.Lognormal{Mu: 0.3, Sigma: 0.4})    // "P frames"
	small := transform.New(dist.Lognormal{Mu: -0.5, Sigma: 0.4}) // "B frames"
	pattern := []transform.T{big, small, small, mid, small, small}

	base := Config{
		Plan:            plan,
		TypedTransforms: pattern,
		Service:         1.8,
		Buffer:          10,
		Horizon:         120,
		Replications:    8000,
		Seed:            41,
	}
	plain, err := Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.P < 0.01 {
		t.Fatalf("typed test event too rare: %v", plain.P)
	}
	twisted := base
	twisted.Twist = 0.6
	twisted.Seed = 42
	res, err := Estimate(twisted)
	if err != nil {
		t.Fatal(err)
	}
	se := 3 * (plain.StdErr + res.StdErr)
	if math.Abs(res.P-plain.P) > se {
		t.Errorf("typed IS %v vs typed MC %v (3se %v)", res.P, plain.P, se)
	}
	// And the typed estimate must differ from the untyped one using only
	// the I transform (sanity that typing is actually applied).
	untyped := base
	untyped.TypedTransforms = nil
	untyped.Transform = big
	ru, err := Estimate(untyped)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ru.P-plain.P) < 1e-12 {
		t.Error("typed transforms had no effect")
	}
}

func TestEstimateTransientValidation(t *testing.T) {
	plan, h := testSetup(t, 50)
	cfg := Config{Plan: plan, Transform: h, Service: 2, Buffer: 5}
	if _, err := EstimateTransient(cfg, nil); err == nil {
		t.Error("no checkpoints accepted")
	}
	if _, err := EstimateTransient(cfg, []int{10, 5}); err == nil {
		t.Error("non-increasing checkpoints accepted")
	}
	if _, err := EstimateTransient(cfg, []int{100}); err == nil {
		t.Error("checkpoint beyond plan accepted")
	}
	bad := cfg
	bad.Service = 0
	if _, err := EstimateTransient(bad, []int{10}); err == nil {
		t.Error("zero service accepted")
	}
}

func TestEstimateTransientMatchesSingleHorizon(t *testing.T) {
	// A transient run's final checkpoint must agree with a ModeLindley
	// Estimate at the same horizon.
	plan, h := testSetup(t, 80)
	cfg := Config{
		Plan: plan, Transform: h,
		Service: 1.7, Buffer: 5,
		Twist: 0.5, Replications: 4000, Seed: 21,
	}
	series, err := EstimateTransient(cfg, []int{20, 40, 80})
	if err != nil {
		t.Fatal(err)
	}
	single := cfg
	single.Mode = ModeLindley
	single.Horizon = 80
	res, err := Estimate(single)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same path generation order -> identical results.
	if math.Abs(series[2].P-res.P) > 1e-12 {
		t.Errorf("transient final %v vs single-horizon %v", series[2].P, res.P)
	}
	// Transient overflow from empty start grows with the horizon.
	if series[0].P > series[2].P+3*(series[0].StdErr+series[2].StdErr) {
		t.Errorf("transient not growing: %v -> %v", series[0].P, series[2].P)
	}
}

func TestEstimateTransientInitialConditions(t *testing.T) {
	// Empty and full starts must converge toward each other as k grows
	// (Fig. 15), with full >= empty at every horizon.
	plan, h := testSetup(t, 120)
	base := Config{
		Plan: plan, Transform: h,
		Service: 1.7, Buffer: 6,
		Twist: 0.4, Replications: 4000, Seed: 23,
	}
	checkpoints := []int{10, 40, 120}
	empty, err := EstimateTransient(base, checkpoints)
	if err != nil {
		t.Fatal(err)
	}
	fullCfg := base
	fullCfg.InitialOccupancy = 6
	fullCfg.Seed = 24
	full, err := EstimateTransient(fullCfg, checkpoints)
	if err != nil {
		t.Fatal(err)
	}
	for j := range checkpoints {
		if full[j].P+1e-9 < empty[j].P-3*(full[j].StdErr+empty[j].StdErr) {
			t.Errorf("k=%d: full %v < empty %v", checkpoints[j], full[j].P, empty[j].P)
		}
	}
	gapEarly := full[0].P - empty[0].P
	gapLate := full[2].P - empty[2].P
	if gapLate > gapEarly {
		t.Errorf("initial-condition gap grew: %v -> %v", gapEarly, gapLate)
	}
}

func BenchmarkEstimateCrossing(b *testing.B) {
	plan, err := hosking.NewPlan(acf.PaperComposite().Continuous(), 200)
	if err != nil {
		b.Fatal(err)
	}
	h := transform.New(dist.Lognormal{Mu: 0, Sigma: 0.5})
	cfg := Config{
		Plan: plan, Transform: h,
		Service: 2.0, Buffer: 20, Horizon: 200,
		Twist: 1.5, Replications: 100, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
