package impsample

import (
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/transform"
)

// fastSetup builds a truncated-AR fast plan whose exact plan is much
// shorter than the horizons the tests run at.
func fastSetup(t testing.TB, planLen int) (*hosking.Truncated, transform.T) {
	t.Helper()
	plan, err := hosking.NewPlan(acf.Exponential{Lambda: 0.2}, planLen)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := plan.Truncate(hosking.TruncateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, transform.New(dist.Lognormal{Mu: 0, Sigma: 0.5})
}

func TestFastPlanWorkerInvariance(t *testing.T) {
	tr, h := fastSetup(t, 256)
	cfg := Config{
		FastPlan: tr, Transform: h,
		Service: 1.8, Buffer: 6, Horizon: 500, // beyond the exact plan length
		Twist: 1.0, Replications: 400, Seed: 7, Workers: 4,
	}
	a, err := Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.P != b.P || a.Hits != b.Hits {
		t.Errorf("worker count changed fast-path result: %+v vs %+v", a, b)
	}
}

func TestFastPlanUnboundedHorizon(t *testing.T) {
	// The exact plan rejects horizons beyond its length; the fast plan
	// must accept them.
	plan, err := hosking.NewPlan(acf.Exponential{Lambda: 0.2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	h := transform.New(dist.Lognormal{Mu: 0, Sigma: 0.5})
	exact := Config{
		Plan: plan, Transform: h,
		Service: 1.8, Buffer: 6, Horizon: 300,
		Replications: 50, Seed: 1,
	}
	if _, err := Estimate(exact); err == nil {
		t.Fatal("exact plan accepted a horizon beyond its length")
	}
	tr, err := plan.Truncate(hosking.TruncateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast := exact
	fast.Plan, fast.FastPlan = nil, tr
	if _, err := Estimate(fast); err != nil {
		t.Fatalf("fast plan rejected horizon 300: %v", err)
	}
}

func TestFastPlanMatchesExactEstimate(t *testing.T) {
	// For a horizon within the exact plan and an AR order that captures
	// essentially all the (exponentially decaying) dependence, the fast
	// path is a drop-in statistical replacement: the two IS estimates
	// agree within Monte-Carlo error.
	plan, h := testSetup(t, 120)
	base := Config{
		Plan: plan, Transform: h,
		Service: 1.8, Buffer: 6, Horizon: 120,
		Twist: 1.0, Replications: 4000, Seed: 13,
	}
	exact, err := Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := plan.Truncate(hosking.TruncateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.Plan, fast.FastPlan = nil, tr
	fast.Seed = 14
	got, err := Estimate(fast)
	if err != nil {
		t.Fatal(err)
	}
	se := 3 * (exact.StdErr + got.StdErr)
	if math.Abs(got.P-exact.P) > se {
		t.Errorf("fast-path estimate %v vs exact %v (3se = %v)", got.P, exact.P, se)
	}
}
