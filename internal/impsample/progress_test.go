package impsample

import (
	"context"
	"math"
	"strings"
	"testing"

	"vbrsim/internal/obs"
)

// TestProgressDeterminismNeutral checks the tentpole invariant: IS results
// are bit-identical with convergence telemetry and tracing on or off.
func TestProgressDeterminismNeutral(t *testing.T) {
	plan, h := testSetup(t, 100)
	base := Config{
		Plan: plan, Transform: h,
		Service: 1.6, Buffer: 6, Horizon: 100,
		Twist: 0.8, Replications: 800, Seed: 7, Workers: 4,
	}
	plain, err := Estimate(base)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []obs.Convergence
	instrumented := base
	instrumented.Progress = func(c obs.Convergence) { snaps = append(snaps, c) }
	instrumented.ProgressEvery = 100
	var trace strings.Builder
	ctx := obs.ContextWithTracer(context.Background(), obs.NewTracer(&trace))
	got, err := EstimateCtx(ctx, instrumented)
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(got.P) != math.Float64bits(plain.P) ||
		math.Float64bits(got.Variance) != math.Float64bits(plain.Variance) ||
		math.Float64bits(got.NormVar) != math.Float64bits(plain.NormVar) ||
		got.Hits != plain.Hits {
		t.Fatalf("telemetry changed estimate: %+v vs %+v", got, plain)
	}

	if len(snaps) != 8 {
		t.Fatalf("got %d snapshots, want 8", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Completed != 800 || last.Estimator != "is" || last.Hits != plain.Hits {
		t.Fatalf("last snapshot = %+v (want hits %d)", last, plain.Hits)
	}
	// All replications folded in: the running p equals the estimate up to
	// summation order (weights are added in completion order here).
	if plain.P > 0 && math.Abs(last.P-plain.P)/plain.P > 1e-9 {
		t.Fatalf("final snapshot p = %v, estimate = %v", last.P, plain.P)
	}
	if !strings.Contains(trace.String(), `"stage":"impsample.estimate"`) {
		t.Fatalf("trace missing estimate span:\n%s", trace.String())
	}
}

// TestTransientProgress checks the transient sweep streams snapshots for
// its final checkpoint without changing results.
func TestTransientProgress(t *testing.T) {
	plan, h := testSetup(t, 120)
	base := Config{
		Plan: plan, Transform: h,
		Service: 1.6, Buffer: 4,
		Twist: 0.5, Replications: 300, Seed: 3, Workers: 3,
	}
	checkpoints := []int{40, 80, 120}
	plain, err := EstimateTransient(base, checkpoints)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []obs.Convergence
	instrumented := base
	instrumented.Progress = func(c obs.Convergence) { snaps = append(snaps, c) }
	instrumented.ProgressEvery = 100
	got, err := EstimateTransient(instrumented, checkpoints)
	if err != nil {
		t.Fatal(err)
	}
	for j := range plain {
		if math.Float64bits(got[j].P) != math.Float64bits(plain[j].P) {
			t.Fatalf("checkpoint %d changed: %v vs %v", j, got[j].P, plain[j].P)
		}
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	if snaps[len(snaps)-1].Estimator != "is-transient" {
		t.Fatalf("estimator = %q", snaps[len(snaps)-1].Estimator)
	}
}
