package admission

import (
	"math"
	"testing"

	"vbrsim/internal/norros"
)

var testSrc = norros.Params{MeanRate: 3000, VarCoeff: 5e6, H: 0.85}

func testLink() Link {
	return Link{Capacity: 100000, Buffer: 300000, LossTarget: 1e-6}
}

func TestLinkValidate(t *testing.T) {
	if err := testLink().Validate(); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	bad := []Link{
		{Capacity: 0, Buffer: 1, LossTarget: 0.1},
		{Capacity: 1, Buffer: 0, LossTarget: 0.1},
		{Capacity: 1, Buffer: 1, LossTarget: 0},
		{Capacity: 1, Buffer: 1, LossTarget: 1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad link %d accepted", i)
		}
	}
}

func TestRequiredCapacityScaling(t *testing.T) {
	l := testLink()
	c1, err := RequiredCapacity(testSrc, 1, l)
	if err != nil {
		t.Fatal(err)
	}
	c10, err := RequiredCapacity(testSrc, 10, l)
	if err != nil {
		t.Fatal(err)
	}
	// Requirement grows with n but sub-linearly in the burst component:
	// c(10) < 10*c(1) (statistical multiplexing gain) and c(10) > 10*mean.
	if c10 >= 10*c1 {
		t.Errorf("no multiplexing gain: c1=%v c10=%v", c1, c10)
	}
	if c10 <= 10*testSrc.MeanRate {
		t.Errorf("requirement below mean packing: %v", c10)
	}
	if _, err := RequiredCapacity(testSrc, 0, l); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestMaxSourcesProperties(t *testing.T) {
	l := testLink()
	n, err := MaxSources(testSrc, l)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("MaxSources = %d", n)
	}
	// n is admissible, n+1 is not.
	ok, err := Admissible(testSrc, n, l)
	if err != nil || !ok {
		t.Errorf("MaxSources count not admissible: %v %v", ok, err)
	}
	ok, err = Admissible(testSrc, n+1, l)
	if err != nil || ok {
		t.Errorf("MaxSources+1 admissible: %v %v", ok, err)
	}
	// Cannot exceed mean packing.
	if float64(n)*testSrc.MeanRate > l.Capacity {
		t.Errorf("admitted load exceeds capacity: %d sources", n)
	}
}

func TestMaxSourcesMonotoneInCapacity(t *testing.T) {
	small := testLink()
	big := small
	big.Capacity *= 2
	nSmall, err := MaxSources(testSrc, small)
	if err != nil {
		t.Fatal(err)
	}
	nBig, err := MaxSources(testSrc, big)
	if err != nil {
		t.Fatal(err)
	}
	if nBig <= nSmall {
		t.Errorf("doubling capacity did not admit more: %d vs %d", nSmall, nBig)
	}
	// Tighter loss target admits fewer.
	strict := small
	strict.LossTarget = 1e-9
	nStrict, err := MaxSources(testSrc, strict)
	if err != nil {
		t.Fatal(err)
	}
	if nStrict > nSmall {
		t.Errorf("stricter target admitted more: %d vs %d", nStrict, nSmall)
	}
}

func TestLRDBacksOffVsMarkovian(t *testing.T) {
	// The whole point: the LRD-aware controller admits fewer sources than
	// the Markovian (H=1/2) one at the same link, because the buffer buys
	// less against self-similar traffic.
	l := testLink()
	lrd, err := MaxSources(testSrc, l)
	if err != nil {
		t.Fatal(err)
	}
	markov, err := MarkovianMaxSources(testSrc, l)
	if err != nil {
		t.Fatal(err)
	}
	if lrd >= markov {
		t.Errorf("LRD admission (%d) not more conservative than Markovian (%d)", lrd, markov)
	}
	// The gap should be substantial at this buffer depth.
	if float64(markov-lrd)/float64(markov) < 0.02 {
		t.Errorf("LRD back-off suspiciously small: %d vs %d", lrd, markov)
	}
}

func TestUtilizationAtMax(t *testing.T) {
	l := testLink()
	u, err := UtilizationAtMax(testSrc, l)
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0 || u >= 1 {
		t.Errorf("utilization at max = %v", u)
	}
}

func TestMultiplexingGain(t *testing.T) {
	l := testLink()
	peak := 10 * testSrc.MeanRate
	g, err := MultiplexingGain(testSrc, peak, l)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 1 {
		t.Errorf("multiplexing gain = %v, want > 1", g)
	}
	if _, err := MultiplexingGain(testSrc, testSrc.MeanRate/2, l); err == nil {
		t.Error("peak below mean accepted")
	}
}

func TestAdmissionLossVerified(t *testing.T) {
	// The Norros bound at the admitted count must respect the loss target
	// (by construction) and be within an order of magnitude of it at the
	// boundary (the search is tight).
	l := testLink()
	n, err := MaxSources(testSrc, l)
	if err != nil {
		t.Fatal(err)
	}
	agg := norros.Params{
		MeanRate: float64(n) * testSrc.MeanRate,
		VarCoeff: float64(n) * testSrc.VarCoeff,
		H:        testSrc.H,
	}
	_, expF, err := agg.OverflowProbability(l.Capacity, l.Buffer)
	if err != nil {
		t.Fatal(err)
	}
	if expF > l.LossTarget*1.0000001 {
		t.Errorf("admitted load violates target: %v > %v", expF, l.LossTarget)
	}
	if math.Log10(l.LossTarget)-math.Log10(expF) > 1.5 {
		t.Errorf("admission too loose: achieved %v vs target %v", expF, l.LossTarget)
	}
}
