// Package admission implements connection admission control (CAC) for VBR
// video multiplexers — the network design and management task the paper's
// introduction motivates ("effective design and performance analysis depend
// on accurate modeling of the various traffic types").
//
// The controller combines the library's two quantitative tools:
//
//   - the Norros effective-bandwidth closed form for homogeneous
//     fractional-Brownian sources (self-similarity is preserved under
//     superposition: N sources of (m, v, H) aggregate to (Nm, Nv, H)), and
//   - optional importance-sampling verification of the loss target for the
//     admitted load, using the fitted unified model.
//
// The LRD-aware admission boundary is markedly more conservative than a
// Markovian one at large buffers — the operational consequence of Fig. 17.
package admission

import (
	"errors"

	"vbrsim/internal/norros"
)

// Link describes the multiplexer being provisioned.
type Link struct {
	// Capacity is the service rate in the same per-slot units as the
	// source mean rate.
	Capacity float64
	// Buffer is the queue threshold whose overflow probability is bounded.
	Buffer float64
	// LossTarget is the acceptable P(Q > Buffer), in (0, 1).
	LossTarget float64
}

// Validate checks link parameters.
func (l Link) Validate() error {
	if l.Capacity <= 0 {
		return errors.New("admission: non-positive capacity")
	}
	if l.Buffer <= 0 {
		return errors.New("admission: non-positive buffer")
	}
	if l.LossTarget <= 0 || l.LossTarget >= 1 {
		return errors.New("admission: loss target must lie in (0,1)")
	}
	return nil
}

// RequiredCapacity returns the capacity needed to carry n homogeneous
// sources with the given per-source fBm parameters at the link's buffer and
// loss target (Norros effective bandwidth of the aggregate).
func RequiredCapacity(src norros.Params, n int, l Link) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, errors.New("admission: non-positive source count")
	}
	agg := norros.Params{
		MeanRate: float64(n) * src.MeanRate,
		VarCoeff: float64(n) * src.VarCoeff,
		H:        src.H,
	}
	return agg.EffectiveBandwidth(l.Buffer, l.LossTarget)
}

// Admissible reports whether n homogeneous sources fit on the link.
func Admissible(src norros.Params, n int, l Link) (bool, error) {
	c, err := RequiredCapacity(src, n, l)
	if err != nil {
		return false, err
	}
	return c <= l.Capacity, nil
}

// MaxSources returns the largest number of homogeneous sources the link
// admits, by binary search over the (monotone) effective-bandwidth
// requirement. It returns 0 when even one source does not fit.
func MaxSources(src norros.Params, l Link) (int, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if err := src.Validate(); err != nil {
		return 0, err
	}
	// Upper bound: mean-rate packing (the requirement always exceeds Nm).
	hi := int(l.Capacity/src.MeanRate) + 1
	lo := 0
	for lo < hi {
		mid := (lo + hi + 1) / 2
		ok, err := Admissible(src, mid, l)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// MultiplexingGain returns the ratio of admitted sources to the
// peak-allocation count capacity/peakRate — the statistical multiplexing
// gain CAC delivers over peak provisioning.
func MultiplexingGain(src norros.Params, peakRate float64, l Link) (float64, error) {
	if peakRate <= src.MeanRate {
		return 0, errors.New("admission: peak rate must exceed mean rate")
	}
	n, err := MaxSources(src, l)
	if err != nil {
		return 0, err
	}
	peakCount := l.Capacity / peakRate
	if peakCount <= 0 {
		return 0, errors.New("admission: link cannot carry one peak-rate source")
	}
	return float64(n) / peakCount, nil
}

// UtilizationAtMax returns the link utilization when loaded with the
// maximum admissible source count.
func UtilizationAtMax(src norros.Params, l Link) (float64, error) {
	n, err := MaxSources(src, l)
	if err != nil {
		return 0, err
	}
	return float64(n) * src.MeanRate / l.Capacity, nil
}

// MarkovianMaxSources is the SRD strawman: it applies the classical
// effective-bandwidth formula for exponentially-decaying (H = 1/2) traffic
// with the same mean and variance coefficient, i.e. the admission decision
// a Markovian model would make. Comparing it with MaxSources quantifies how
// much LRD-aware admission must back off — the CAC face of Fig. 17.
func MarkovianMaxSources(src norros.Params, l Link) (int, error) {
	srd := src
	srd.H = 0.5 + 1e-9 // the H->1/2 limit of the Norros formula
	return MaxSources(srd, l)
}
