// Package daviesharte implements the Davies–Harte circulant-embedding method
// for exact O(n log n) generation of stationary Gaussian processes with a
// given autocorrelation. It complements Hosking's O(n^2) method (package
// hosking): both are exact, so each validates the other, and Davies–Harte
// makes movie-length traces (hundreds of thousands of frames) practical.
//
// The method embeds the target covariance in a circulant matrix whose
// eigenvalues are the FFT of the extended autocorrelation; when every
// eigenvalue is non-negative the synthesis is exact. For autocorrelations
// whose minimal embedding is not positive semi-definite, NewPlan reports the
// negative mass so callers can decide whether the (tiny) truncation is
// acceptable.
package daviesharte

import (
	"errors"
	"fmt"
	"math"

	"vbrsim/internal/acf"
	"vbrsim/internal/fft"
	"vbrsim/internal/rng"
)

// ErrNotEmbeddable is returned when the circulant embedding has substantial
// negative eigenvalue mass and Options.AllowApprox is false.
var ErrNotEmbeddable = errors.New("daviesharte: circulant embedding is not positive semi-definite")

// Options configures plan construction.
type Options struct {
	// AllowApprox accepts embeddings with negative eigenvalues by clamping
	// them to zero. The resulting process is approximate; NegativeMass on
	// the plan quantifies the distortion.
	AllowApprox bool
	// Tolerance is the relative negative-eigenvalue mass accepted without
	// AllowApprox; default 1e-9.
	Tolerance float64
}

// Plan holds the precomputed eigenvalue square roots for sample generation.
// A Plan is immutable after construction and safe for concurrent use.
type Plan struct {
	n            int       // requested path length
	m            int       // circulant size (power of two, >= 2n)
	sqrtLambda   []float64 // sqrt(eigenvalue / m), length m
	negativeMass float64   // relative mass of clamped negative eigenvalues
}

// NewPlan builds a circulant embedding for paths of length n with the given
// autocorrelation model.
func NewPlan(model acf.Model, n int, opt Options) (*Plan, error) {
	if n <= 0 {
		return nil, errors.New("daviesharte: non-positive length")
	}
	if opt.Tolerance == 0 {
		opt.Tolerance = 1e-9
	}
	m := fft.NextPowerOfTwo(2 * n)
	// Extended autocorrelation on the circle: c_j = r(j) for j <= m/2,
	// mirrored for j > m/2. Using the true model beyond lag n (rather than
	// zero padding) keeps the embedding PSD for the monotone ACFs used here.
	c := make([]complex128, m)
	half := m / 2
	for j := 0; j <= half; j++ {
		c[j] = complex(model.At(j), 0)
	}
	for j := half + 1; j < m; j++ {
		c[j] = c[m-j]
	}
	if err := fft.Forward(c); err != nil {
		return nil, err
	}
	sqrtLambda := make([]float64, m)
	var negMass, totMass float64
	for i, v := range c {
		lam := real(v)
		totMass += math.Abs(lam)
		if lam < 0 {
			negMass += -lam
			lam = 0
		}
		sqrtLambda[i] = math.Sqrt(lam / float64(m))
	}
	rel := 0.0
	if totMass > 0 {
		rel = negMass / totMass
	}
	if rel > opt.Tolerance && !opt.AllowApprox {
		return nil, fmt.Errorf("%w: relative negative eigenvalue mass %.3g", ErrNotEmbeddable, rel)
	}
	return &Plan{n: n, m: m, sqrtLambda: sqrtLambda, negativeMass: rel}, nil
}

// Len returns the path length the plan produces.
func (p *Plan) Len() int { return p.n }

// NegativeMass returns the relative mass of eigenvalues that had to be
// clamped to zero; 0 means the synthesis is exact.
func (p *Plan) NegativeMass() float64 { return p.negativeMass }

// Path generates one sample path of length n (zero mean, unit variance,
// target autocorrelation).
func (p *Plan) Path(r *rng.Source) []float64 {
	m := p.m
	a := make([]complex128, m)
	// Hermitian-symmetric Gaussian spectrum.
	a[0] = complex(p.sqrtLambda[0]*r.Norm(), 0)
	a[m/2] = complex(p.sqrtLambda[m/2]*r.Norm(), 0)
	invSqrt2 := 1 / math.Sqrt2
	for k := 1; k < m/2; k++ {
		re := p.sqrtLambda[k] * invSqrt2 * r.Norm()
		im := p.sqrtLambda[k] * invSqrt2 * r.Norm()
		a[k] = complex(re, im)
		a[m-k] = complex(re, -im)
	}
	if err := fft.Forward(a); err != nil {
		panic("daviesharte: internal FFT error: " + err.Error())
	}
	out := make([]float64, p.n)
	for i := range out {
		out[i] = real(a[i])
	}
	return out
}
