// Package daviesharte implements the Davies–Harte circulant-embedding method
// for exact O(n log n) generation of stationary Gaussian processes with a
// given autocorrelation. It complements Hosking's O(n^2) method (package
// hosking): both are exact, so each validates the other, and Davies–Harte
// makes movie-length traces (hundreds of thousands of frames) practical.
//
// The method embeds the target covariance in a circulant matrix whose
// eigenvalues are the FFT of the extended autocorrelation; when every
// eigenvalue is non-negative the synthesis is exact. For autocorrelations
// whose minimal embedding is not positive semi-definite, NewPlan reports the
// negative mass so callers can decide whether the (tiny) truncation is
// acceptable.
package daviesharte

import (
	"errors"
	"fmt"
	"math"

	"vbrsim/internal/acf"
	"vbrsim/internal/fft"
	"vbrsim/internal/par"
	"vbrsim/internal/rng"
)

// ErrNotEmbeddable is returned when the circulant embedding has substantial
// negative eigenvalue mass and Options.AllowApprox is false.
var ErrNotEmbeddable = errors.New("daviesharte: circulant embedding is not positive semi-definite")

// Options configures plan construction.
type Options struct {
	// AllowApprox accepts embeddings with negative eigenvalues by clamping
	// them to zero. The resulting process is approximate; NegativeMass on
	// the plan quantifies the distortion.
	AllowApprox bool
	// Tolerance is the relative negative-eigenvalue mass accepted without
	// AllowApprox; default 1e-9.
	Tolerance float64
}

// Plan holds the precomputed eigenvalue square roots for sample generation.
// A Plan is immutable after construction and safe for concurrent use.
type Plan struct {
	n            int       // requested path length
	m            int       // circulant size (power of two, >= 2n)
	sqrtLambda   []float64 // sqrt(eigenvalue / m), length m
	scale        []float64 // sqrtLambda[k] / sqrt(2) for k = 1..m/2-1
	weights      []float64 // per-bin half-spectrum scales, length m/2+1
	negativeMass float64   // relative mass of clamped negative eigenvalues
}

// NewPlan builds a circulant embedding for paths of length n with the given
// autocorrelation model.
func NewPlan(model acf.Model, n int, opt Options) (*Plan, error) {
	if n <= 0 {
		return nil, errors.New("daviesharte: non-positive length")
	}
	if opt.Tolerance == 0 {
		opt.Tolerance = 1e-9
	}
	m := fft.NextPowerOfTwo(2 * n)
	// Extended autocorrelation on the circle: c_j = r(j) for j <= m/2,
	// mirrored for j > m/2. Using the true model beyond lag n (rather than
	// zero padding) keeps the embedding PSD for the monotone ACFs used here.
	c := make([]complex128, m)
	half := m / 2
	for j := 0; j <= half; j++ {
		c[j] = complex(model.At(j), 0)
	}
	for j := half + 1; j < m; j++ {
		c[j] = c[m-j]
	}
	if err := fft.Forward(c); err != nil {
		return nil, err
	}
	sqrtLambda := make([]float64, m)
	var negMass, totMass float64
	for i, v := range c {
		lam := real(v)
		totMass += math.Abs(lam)
		if lam < 0 {
			negMass += -lam
			lam = 0
		}
		sqrtLambda[i] = math.Sqrt(lam / float64(m))
	}
	rel := 0.0
	if totMass > 0 {
		rel = negMass / totMass
	}
	if rel > opt.Tolerance && !opt.AllowApprox {
		return nil, fmt.Errorf("%w: relative negative eigenvalue mass %.3g", ErrNotEmbeddable, rel)
	}
	// Precompute the interior-bin scale sqrtLambda[k]/sqrt(2). Multiplying a
	// draw by the precomputed product is bit-identical to the historical
	// sqrtLambda[k] * invSqrt2 * draw (same left-to-right association), so
	// PathInto stays on the golden traces.
	invSqrt2 := 1 / math.Sqrt2
	scale := make([]float64, m/2)
	for k := 1; k < m/2; k++ {
		scale[k] = sqrtLambda[k] * invSqrt2
	}
	// weights is the same scale schedule laid out as one dense half-spectrum
	// vector for the fused synthesis kernel: the kernel's inline multiply
	// weights[k]·draw is the exact multiply fillSpectrum would have performed,
	// so PathRealInto keeps its outputs bit-for-bit.
	weights := make([]float64, m/2+1)
	weights[0] = sqrtLambda[0]
	weights[m/2] = sqrtLambda[m/2]
	copy(weights[1:m/2], scale[1:])
	return &Plan{n: n, m: m, sqrtLambda: sqrtLambda, scale: scale, weights: weights, negativeMass: rel}, nil
}

// Len returns the path length the plan produces.
func (p *Plan) Len() int { return p.n }

// NegativeMass returns the relative mass of eigenvalues that had to be
// clamped to zero; 0 means the synthesis is exact.
func (p *Plan) NegativeMass() float64 { return p.negativeMass }

// Scratch holds the reusable work buffers for PathInto and PathRealInto. The
// zero value is ready to use; buffers grow on demand and are retained, so a
// Scratch reused with one plan performs no steady-state allocations. A
// Scratch also embeds the per-worker generator Batch reseeds for each path.
// A Scratch must not be shared between concurrent calls.
type Scratch struct {
	a   []complex128
	z   []complex128
	src rng.Source
}

// grow sizes the buffers for a plan with circulant size m: a serves both the
// full spectrum (PathInto, length m) and the half-spectrum (PathRealInto,
// length m/2+1); z is the half-length synthesis scratch.
func (s *Scratch) grow(m int) {
	if cap(s.a) < m {
		s.a = make([]complex128, m)
	}
	if cap(s.z) < m/2 {
		s.z = make([]complex128, m/2)
	}
}

// fillSpectrum draws the Hermitian-symmetric Gaussian half-spectrum into
// a[0..m/2] using exactly the historical draw order of Path: the zero bin,
// the Nyquist bin, then (re, im) pairs for k = 1..m/2-1.
func (p *Plan) fillSpectrum(a []complex128, r *rng.Source) {
	h := p.m / 2
	a[0] = complex(p.sqrtLambda[0]*r.Norm(), 0)
	a[h] = complex(p.sqrtLambda[h]*r.Norm(), 0)
	for k := 1; k < h; k++ {
		re := p.scale[k] * r.Norm()
		im := p.scale[k] * r.Norm()
		a[k] = complex(re, im)
	}
}

// PathInto fills dst[0:n] with one sample path, bit-identical to Path (same
// draw order, same floating-point schedule) but without per-call allocations:
// all work happens in s, which is allocated on first use and reused after.
// A nil s allocates a temporary scratch. len(dst) must be at least n.
func (p *Plan) PathInto(dst []float64, s *Scratch, r *rng.Source) {
	if s == nil {
		s = &Scratch{}
	}
	s.grow(p.m)
	m := p.m
	a := s.a[:m]
	p.fillSpectrum(a, r)
	for k := 1; k < m/2; k++ {
		v := a[k]
		a[m-k] = complex(real(v), -imag(v))
	}
	if err := fft.Forward(a); err != nil {
		panic("daviesharte: internal FFT error: " + err.Error())
	}
	out := dst[:p.n]
	for i := range out {
		out[i] = real(a[i])
	}
}

// fillRawSpectrum draws the half-spectrum normal components unscaled, in
// exactly fillSpectrum's draw order. The per-bin √(λ_k/m) scales are applied
// inside the fused synthesis kernel instead (fft.HermitianRealScaled), which
// performs the identical multiplies — so fused synthesis stays bit-identical
// to scaling at fill time while never materializing the scaled spectrum.
func (p *Plan) fillRawSpectrum(a []complex128, r *rng.Source) {
	h := p.m / 2
	a[0] = complex(r.Norm(), 0)
	a[h] = complex(r.Norm(), 0)
	for k := 1; k < h; k++ {
		re := r.Norm()
		im := r.Norm()
		a[k] = complex(re, im)
	}
}

// PathRealInto is PathInto computed through the packed real-input FFT: the
// Hermitian half-spectrum is synthesized with one complex transform of length
// m/2 instead of m, roughly halving the FFT work, with the Davies–Harte
// spectrum scales folded into the kernel's first pass so the scaled spectrum
// is never stored. The normal draws and their order are identical to Path;
// only the transform's rounding differs, so results agree with Path to
// floating-point accuracy (~1e-10 absolute for the path lengths used here)
// but are not bit-identical. Golden-pinned callers use PathInto; replication
// loops use this.
func (p *Plan) PathRealInto(dst []float64, s *Scratch, r *rng.Source) {
	if s == nil {
		s = &Scratch{}
	}
	s.grow(p.m)
	h := p.m / 2
	a := s.a[:h+1]
	p.fillRawSpectrum(a, r)
	if err := fft.HermitianRealScaled(dst[:p.n], a, p.weights, s.z[:h]); err != nil {
		panic("daviesharte: internal FFT error: " + err.Error())
	}
}

// Path generates one sample path of length n (zero mean, unit variance,
// target autocorrelation). It is PathInto plus the output allocation; callers
// on a hot loop should hold a Scratch and call PathInto directly.
func (p *Plan) Path(r *rng.Source) []float64 {
	out := make([]float64, p.n)
	p.PathInto(out, nil, r)
	return out
}

// Batch fills dst[i] with the path generated from seed seeds[i], for every i,
// fanning the work across len(scratch) workers (one arena each; nil entries
// are allocated on first use). Each path is produced by PathRealInto with a
// generator reseeded to rng.New(seeds[i]), so path i depends only on seeds[i]
// and the output is bit-identical for any worker count. With a single scratch
// the batch runs inline on the calling goroutine and performs no steady-state
// allocations.
func (p *Plan) Batch(dst [][]float64, seeds []uint64, scratch []*Scratch) error {
	if len(dst) != len(seeds) {
		return fmt.Errorf("daviesharte: Batch got %d destinations and %d seeds", len(dst), len(seeds))
	}
	if len(scratch) == 0 {
		return errors.New("daviesharte: Batch needs at least one scratch arena")
	}
	for _, d := range dst {
		if len(d) < p.n {
			return fmt.Errorf("daviesharte: Batch destination shorter than path length %d", p.n)
		}
	}
	if len(scratch) == 1 {
		// Inline single-worker loop: no goroutines and no closure, so a
		// reused scratch arena makes the whole batch allocation-free.
		s := scratch[0]
		if s == nil {
			s = &Scratch{}
			scratch[0] = s
		}
		for i := range dst {
			s.src.Reseed(seeds[i])
			p.PathRealInto(dst[i], s, &s.src)
		}
		return nil
	}
	par.For(len(scratch), len(dst), func(worker, i int) {
		s := scratch[worker]
		if s == nil {
			s = &Scratch{}
			scratch[worker] = s
		}
		s.src.Reseed(seeds[i])
		p.PathRealInto(dst[i], s, &s.src)
	})
	return nil
}

// PathReference is the seed implementation of Path — per-call allocations and
// the on-the-fly-twiddle reference FFT. It is retained as the ablation
// baseline for the bench suite and as an independent oracle for PathInto's
// bit-identity test.
func (p *Plan) PathReference(r *rng.Source) []float64 {
	m := p.m
	a := make([]complex128, m)
	// Hermitian-symmetric Gaussian spectrum.
	a[0] = complex(p.sqrtLambda[0]*r.Norm(), 0)
	a[m/2] = complex(p.sqrtLambda[m/2]*r.Norm(), 0)
	invSqrt2 := 1 / math.Sqrt2
	for k := 1; k < m/2; k++ {
		re := p.sqrtLambda[k] * invSqrt2 * r.Norm()
		im := p.sqrtLambda[k] * invSqrt2 * r.Norm()
		a[k] = complex(re, im)
		a[m-k] = complex(re, -im)
	}
	if err := fft.ForwardReference(a); err != nil {
		panic("daviesharte: internal FFT error: " + err.Error())
	}
	out := make([]float64, p.n)
	for i := range out {
		out[i] = real(a[i])
	}
	return out
}
