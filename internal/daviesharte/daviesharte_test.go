package daviesharte

import (
	"errors"
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(acf.White{}, 0, Options{}); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestWhiteNoiseExact(t *testing.T) {
	p, err := NewPlan(acf.White{}, 1024, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NegativeMass() != 0 {
		t.Fatalf("white noise embedding has negative mass %v", p.NegativeMass())
	}
	x := p.Path(rng.New(1))
	m, v := stats.MeanVar(x)
	if math.Abs(m) > 0.1 {
		t.Errorf("mean = %v", m)
	}
	if math.Abs(v-1) > 0.1 {
		t.Errorf("variance = %v", v)
	}
	a := stats.Autocorrelation(x, 5)
	for k := 1; k <= 5; k++ {
		if math.Abs(a[k]) > 0.1 {
			t.Errorf("white acf[%d] = %v", k, a[k])
		}
	}
}

// pooledACF averages sample autocovariances over replications.
func pooledACF(p *Plan, reps, maxLag int, seed uint64) []float64 {
	r := rng.New(seed)
	acov := make([]float64, maxLag+1)
	for rep := 0; rep < reps; rep++ {
		x := p.Path(r)
		a := stats.AutocovarianceKnownMean(x, 0, maxLag)
		for k := range acov {
			acov[k] += a[k]
		}
	}
	out := make([]float64, maxLag+1)
	for k := range out {
		out[k] = acov[k] / acov[0]
	}
	return out
}

func TestFGNACFRecovery(t *testing.T) {
	for _, h := range []float64{0.6, 0.75, 0.9} {
		model := acf.FGN{H: h}
		p, err := NewPlan(model, 4096, Options{})
		if err != nil {
			t.Fatalf("H=%v: %v", h, err)
		}
		got := pooledACF(p, 20, 50, 42)
		for k := 1; k <= 50; k++ {
			want := model.At(k)
			if math.Abs(got[k]-want) > 0.04 {
				t.Errorf("H=%v: acf[%d] = %v, want %v", h, k, got[k], want)
			}
		}
	}
}

func TestCompositeACFRecovery(t *testing.T) {
	model := acf.PaperComposite().Continuous()
	p, err := NewPlan(model, 8192, Options{AllowApprox: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.NegativeMass() > 0.01 {
		t.Fatalf("composite embedding negative mass %v too large", p.NegativeMass())
	}
	// The sample autocovariance of a strongly LRD path has a large variance
	// (std ~ 0.5 per 8k-sample path at these lags), so pool many paths and
	// keep a tolerance matched to the pooled standard error.
	got := pooledACF(p, 200, 200, 7)
	for _, k := range []int{1, 10, 30, 60, 100, 200} {
		want := model.At(k)
		tol := 0.05
		if k >= 60 {
			tol = 0.08
		}
		if math.Abs(got[k]-want) > tol {
			t.Errorf("acf[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func TestMatchesHoskingDistribution(t *testing.T) {
	// Both exact methods must produce paths with the same second-order
	// statistics: compare pooled ACFs and marginal variance.
	model := acf.FGN{H: 0.85}
	n := 512
	dh, err := NewPlan(model, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hosking.NewPlan(model, n)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rng.New(11), rng.New(12)
	const reps = 60
	dhACF := make([]float64, 21)
	hACF := make([]float64, 21)
	for rep := 0; rep < reps; rep++ {
		a := stats.AutocovarianceKnownMean(dh.Path(r1), 0, 20)
		b := stats.AutocovarianceKnownMean(hp.Path(r2, n), 0, 20)
		for k := range dhACF {
			dhACF[k] += a[k]
			hACF[k] += b[k]
		}
	}
	for k := 1; k <= 20; k++ {
		d := dhACF[k]/dhACF[0] - hACF[k]/hACF[0]
		if math.Abs(d) > 0.06 {
			t.Errorf("lag %d: DH %v vs Hosking %v", k, dhACF[k]/dhACF[0], hACF[k]/hACF[0])
		}
	}
}

func TestNegativeEigenvalueRejection(t *testing.T) {
	// A triangle acf that drops to a negative plateau is not embeddable.
	bad := sliceModel{1, 0.9, 0.8, -0.9, -0.9, -0.9}
	_, err := NewPlan(bad, 6, Options{})
	if err == nil {
		t.Fatal("non-embeddable acf accepted")
	}
	if !errors.Is(err, ErrNotEmbeddable) {
		t.Fatalf("err = %v, want ErrNotEmbeddable", err)
	}
	// With AllowApprox it must succeed and report the mass.
	p, err := NewPlan(bad, 6, Options{AllowApprox: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.NegativeMass() == 0 {
		t.Error("approximate plan reports zero negative mass")
	}
}

type sliceModel []float64

func (s sliceModel) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	if k < len(s) {
		return s[k]
	}
	return s[len(s)-1]
}

func TestLongPathVariance(t *testing.T) {
	p, err := NewPlan(acf.FGN{H: 0.9}, 1<<16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := p.Path(rng.New(3))
	if len(x) != 1<<16 {
		t.Fatalf("len = %d", len(x))
	}
	_, v := stats.MeanVar(x)
	// LRD series have slowly-converging sample variance; loose tolerance.
	if v < 0.7 || v > 1.3 {
		t.Errorf("variance = %v, want ~1", v)
	}
}

func BenchmarkPath65536(b *testing.B) {
	p, err := NewPlan(acf.FGN{H: 0.9}, 1<<16, Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Path(r)
	}
}
