package daviesharte

import (
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/rng"
)

// TestPathIntoBitIdentical pins the zero-alloc path (precomputed scales +
// tabled FFT) to the reference implementation bit-for-bit; the conformance
// golden traces route through Path, so this is the contract that keeps them
// unchanged.
func TestPathIntoBitIdentical(t *testing.T) {
	for _, n := range []int{1, 2, 16, 100, 1024, 4096} {
		p, err := NewPlan(acf.FGN{H: 0.8}, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := p.PathReference(rng.New(99))
		got := make([]float64, n)
		var s Scratch
		p.PathInto(got, &s, rng.New(99))
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d frame %d: PathInto %v != reference %v (not bit-identical)", n, i, got[i], want[i])
			}
		}
		viaPath := p.Path(rng.New(99))
		for i := range want {
			if math.Float64bits(viaPath[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d frame %d: Path %v != reference %v (not bit-identical)", n, i, viaPath[i], want[i])
			}
		}
	}
}

// TestPathRealIntoMatchesPath checks the half-spectrum synthesis agrees with
// the full complex path to floating-point accuracy (same draws, different
// transform rounding).
func TestPathRealIntoMatchesPath(t *testing.T) {
	for _, n := range []int{1, 2, 16, 100, 1024, 4096} {
		p, err := NewPlan(acf.FGN{H: 0.8}, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := p.Path(rng.New(1234))
		got := make([]float64, n)
		var s Scratch
		p.PathRealInto(got, &s, rng.New(1234))
		var worst float64
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			t.Fatalf("n=%d: worst |PathRealInto-Path| = %g", n, worst)
		}
	}
}

// TestBatchWorkerInvariant checks Batch output depends only on the seeds:
// 1 worker and 8 workers produce bit-identical paths, and each path matches a
// direct PathRealInto with the same seed.
func TestBatchWorkerInvariant(t *testing.T) {
	const n, b = 512, 37
	p, err := NewPlan(acf.FGN{H: 0.9}, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, b)
	for i := range seeds {
		seeds[i] = uint64(1000 + i*7)
	}
	run := func(workers int) [][]float64 {
		dst := make([][]float64, b)
		for i := range dst {
			dst[i] = make([]float64, n)
		}
		if err := p.Batch(dst, seeds, make([]*Scratch, workers)); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	one := run(1)
	eight := run(8)
	var s Scratch
	direct := make([]float64, n)
	for i := range one {
		p.PathRealInto(direct, &s, rng.New(seeds[i]))
		for j := 0; j < n; j++ {
			if math.Float64bits(one[i][j]) != math.Float64bits(eight[i][j]) {
				t.Fatalf("path %d frame %d: workers=1 %v != workers=8 %v", i, j, one[i][j], eight[i][j])
			}
			if math.Float64bits(one[i][j]) != math.Float64bits(direct[j]) {
				t.Fatalf("path %d frame %d: batch %v != direct PathRealInto %v", i, j, one[i][j], direct[j])
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	p, err := NewPlan(acf.FGN{H: 0.7}, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := [][]float64{make([]float64, 64)}
	if err := p.Batch(dst, []uint64{1, 2}, make([]*Scratch, 1)); err == nil {
		t.Error("mismatched dst/seeds lengths accepted")
	}
	if err := p.Batch(dst, []uint64{1}, nil); err == nil {
		t.Error("empty scratch list accepted")
	}
	if err := p.Batch([][]float64{make([]float64, 10)}, []uint64{1}, make([]*Scratch, 1)); err == nil {
		t.Error("short destination accepted")
	}
}

// TestPathEngineZeroAlloc is the allocation regression gate for the hot
// paths: PathInto, PathRealInto, and single-worker Batch must not allocate at
// steady state.
func TestPathEngineZeroAlloc(t *testing.T) {
	const n = 1024
	p, err := NewPlan(acf.FGN{H: 0.9}, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, n)
	var s Scratch
	r := rng.New(5)
	p.PathInto(dst, &s, r) // warm scratch and FFT tables
	if a := testing.AllocsPerRun(10, func() { p.PathInto(dst, &s, r) }); a != 0 {
		t.Errorf("PathInto allocates %v/op at steady state, want 0", a)
	}
	p.PathRealInto(dst, &s, r)
	if a := testing.AllocsPerRun(10, func() { p.PathRealInto(dst, &s, r) }); a != 0 {
		t.Errorf("PathRealInto allocates %v/op at steady state, want 0", a)
	}
	batchDst := [][]float64{dst}
	seeds := []uint64{77}
	scratch := []*Scratch{&s}
	if err := p.Batch(batchDst, seeds, scratch); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(10, func() {
		if err := p.Batch(batchDst, seeds, scratch); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("single-worker Batch allocates %v/op at steady state, want 0", a)
	}
}
