// Package rng provides a deterministic, splittable pseudo-random number
// generator together with the non-uniform variate samplers used throughout
// the library.
//
// The generator is xoshiro256++ seeded through SplitMix64. It is implemented
// from scratch (rather than wrapping math/rand) so that synthetic traces are
// bit-reproducible across Go releases, and so that independent streams can be
// derived deterministically for parallel replications via Split.
package rng

import "math"

// Source is a deterministic xoshiro256++ pseudo-random number generator.
// The zero value is not usable; construct one with New.
type Source struct {
	s [4]uint64

	// spare holds the second variate produced by the polar normal method.
	spare    float64
	hasSpare bool
}

// New returns a Source seeded from the given seed. Any seed, including zero,
// yields a well-mixed internal state.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	return &src
}

// Reseed resets the receiver in place to the exact state New(seed) would
// produce, discarding any cached normal spare. It lets batch loops reuse one
// Source per worker across replications without a per-replication allocation:
// r.Reseed(s) followed by any draw sequence yields bit-identical values to
// New(s) followed by the same sequence.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	r.spare, r.hasSpare = 0, false
}

// splitMix64 advances a SplitMix64 state and returns the new state and output.
func splitMix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return state, z
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new Source whose stream is deterministically derived from,
// and statistically independent of, the receiver's continuing stream. It is
// the supported way to give each parallel replication its own generator.
func (r *Source) Split() *Source {
	// Derive the child state through SplitMix64 so that child streams do not
	// share the parent's linear-engine orbit.
	var child Source
	sm := r.Uint64()
	for i := range child.s {
		sm, child.s[i] = splitMix64(sm)
	}
	return &child
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform float64 in the open interval (0, 1),
// suitable for feeding quantile functions that diverge at 0 or 1.
func (r *Source) OpenFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, a * b
}

// Norm returns a standard normal variate using the polar (Marsaglia) method.
func (r *Source) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare, r.hasSpare = v*f, true
		return u * f
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(r.OpenFloat64()) / rate
}

// Pareto returns a Pareto variate with shape alpha and minimum xm:
// P(X > x) = (xm/x)^alpha for x >= xm.
func (r *Source) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm / math.Pow(r.OpenFloat64(), 1/alpha)
}

// Gamma returns a gamma variate with the given shape and scale
// (mean shape*scale), using Marsaglia–Tsang for shape >= 1 and the
// boosting transform for shape < 1.
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: if G ~ Gamma(shape+1), then G*U^(1/shape) ~ Gamma(shape).
		g := r.Gamma(shape+1, scale)
		return g * math.Pow(r.OpenFloat64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.OpenFloat64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Lognormal returns exp(N(mu, sigma^2)).
func (r *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// product method for small means and a normal approximation with continuity
// correction for large ones.
func (r *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := math.Floor(mean + math.Sqrt(mean)*r.Norm() + 0.5)
	if v < 0 {
		return 0
	}
	return int(v)
}
