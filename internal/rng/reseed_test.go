package rng

import "testing"

// TestReseedMatchesNew verifies Reseed restores the exact New state,
// including after the polar normal sampler has cached a spare variate.
func TestReseedMatchesNew(t *testing.T) {
	r := New(1)
	r.Norm() // leave a spare cached
	for _, seed := range []uint64{0, 1, 42, 1 << 60} {
		fresh := New(seed)
		r.Reseed(seed)
		for i := 0; i < 100; i++ {
			if a, b := r.Norm(), fresh.Norm(); a != b {
				t.Fatalf("seed %d draw %d: Reseed %v != New %v", seed, i, a, b)
			}
		}
		r.Reseed(seed)
		fresh = New(seed)
		for i := 0; i < 10; i++ {
			if a, b := r.Uint64(), fresh.Uint64(); a != b {
				t.Fatalf("seed %d uint draw %d: Reseed %v != New %v", seed, i, a, b)
			}
		}
	}
}
