package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 1000", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator produced repeats in first 100 outputs")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child must not replay the parent's continuing stream.
	matches := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("split child matched parent stream %d times", matches)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(7).Split()
	c2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split is not deterministic at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestOpenFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		u := r.OpenFloat64()
		if u <= 0 || u >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", u)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7): value %d count %d, want near 10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// moments draws n samples with draw and returns their sample mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	mean, variance := moments(200000, r.Norm)
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(13)
	rate := 2.5
	mean, variance := moments(200000, func() float64 { return r.Exp(rate) })
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exp mean = %v, want %v", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.02 {
		t.Errorf("exp variance = %v, want %v", variance, 1/(rate*rate))
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(17)
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2.0}, {1.0, 1.0}, {2.3, 0.7}, {9.0, 3.0},
	} {
		mean, variance := moments(200000, func() float64 { return r.Gamma(tc.shape, tc.scale) })
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.01 {
			t.Errorf("gamma(%v,%v) mean = %v, want %v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.08*wantVar+0.02 {
			t.Errorf("gamma(%v,%v) variance = %v, want %v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestParetoMoments(t *testing.T) {
	r := New(19)
	alpha, xm := 3.0, 2.0
	mean, _ := moments(200000, func() float64 { return r.Pareto(alpha, xm) })
	wantMean := alpha * xm / (alpha - 1)
	if math.Abs(mean-wantMean) > 0.05*wantMean {
		t.Errorf("pareto mean = %v, want %v", mean, wantMean)
	}
	// Support check.
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(alpha, xm); v < xm {
			t.Fatalf("pareto sample %v below minimum %v", v, xm)
		}
	}
}

func TestLognormalMoments(t *testing.T) {
	r := New(23)
	mu, sigma := 0.5, 0.4
	mean, _ := moments(200000, func() float64 { return r.Lognormal(mu, sigma) })
	wantMean := math.Exp(mu + sigma*sigma/2)
	if math.Abs(mean-wantMean) > 0.02*wantMean {
		t.Errorf("lognormal mean = %v, want %v", mean, wantMean)
	}
}

func TestParetoTailProperty(t *testing.T) {
	// P(X > x) = (xm/x)^alpha: check at a few thresholds by simulation.
	r := New(29)
	alpha, xm := 1.5, 1.0
	const n = 200000
	exceed3 := 0
	for i := 0; i < n; i++ {
		if r.Pareto(alpha, xm) > 3 {
			exceed3++
		}
	}
	got := float64(exceed3) / n
	want := math.Pow(xm/3, alpha)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(X>3) = %v, want %v", got, want)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(31)
	for _, mean := range []float64{0.0, 0.3, 5, 50, 200} {
		const n = 50000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("negative Poisson draw")
			}
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.01 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if mean > 0 && math.Abs(variance-mean) > 0.1*mean+0.05 {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
}

func TestSamplerPanics(t *testing.T) {
	cases := map[string]func(){
		"exp":     func() { New(1).Exp(0) },
		"pareto":  func() { New(1).Pareto(0, 1) },
		"gamma":   func() { New(1).Gamma(-1, 1) },
		"poisson": func() { New(1).Poisson(-1) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid parameter did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		r := New(seed)
		for i := 0; i < int(steps); i++ {
			u := r.Float64()
			if u < 0 || u >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSplitDiffers(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed)
		c := p.Split()
		// First outputs after the split must differ.
		return p.Uint64() != c.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}
