// ON/OFF source aggregation. Section 2 of the paper grounds self-similar
// modeling in the Ethernet measurements of Leland et al.; the classical
// construction behind that line of work (Willinger et al.) superposes many
// independent ON/OFF sources whose sojourn times are heavy tailed — the
// aggregate converges to fractional Gaussian noise with
// H = (3 - alpha)/2. This file implements that construction both as a
// queueing arrival source and as a generator for Hurst-estimator
// calibration.
package baseline

import (
	"errors"
	"math"

	"vbrsim/internal/rng"
)

// OnOff is a single ON/OFF source: it emits Rate per slot while ON, 0 while
// OFF, with Pareto-distributed sojourn times in both states.
type OnOff struct {
	// Rate is the emission rate in the ON state.
	Rate float64
	// Alpha is the Pareto tail index of sojourn durations; alpha in (1,2)
	// yields LRD aggregates with H = (3-alpha)/2.
	Alpha float64
	// MinSojourn is the minimum sojourn length in slots; default 1.
	MinSojourn float64
}

// Validate checks parameters.
func (o OnOff) Validate() error {
	if o.Rate <= 0 {
		return errors.New("baseline: ON/OFF rate must be positive")
	}
	if o.Alpha <= 1 || o.Alpha >= 2 {
		return errors.New("baseline: ON/OFF alpha must lie in (1,2)")
	}
	if o.MinSojourn < 0 {
		return errors.New("baseline: negative minimum sojourn")
	}
	return nil
}

// TargetHurst returns (3 - Alpha) / 2.
func (o OnOff) TargetHurst() float64 { return (3 - o.Alpha) / 2 }

// MeanRate returns the long-run emission rate: ON and OFF sojourns share
// the same law, so the source is ON half the time.
func (o OnOff) MeanRate() float64 { return o.Rate / 2 }

// ArrivalPath implements queue.PathSource for a single source.
func (o OnOff) ArrivalPath(r *rng.Source, k int) []float64 {
	min := o.MinSojourn
	if min <= 0 {
		min = 1
	}
	out := make([]float64, k)
	on := r.Float64() < 0.5 // stationary-ish start
	left := int(r.Pareto(o.Alpha, min))
	for i := 0; i < k; i++ {
		if left <= 0 {
			on = !on
			left = int(r.Pareto(o.Alpha, min))
			if left < 1 {
				left = 1
			}
		}
		if on {
			out[i] = o.Rate
		}
		left--
	}
	return out
}

// OnOffAggregate superposes N independent ON/OFF sources — the classical
// route to (asymptotic) fractional Gaussian noise.
type OnOffAggregate struct {
	Source OnOff
	N      int
}

// Validate checks parameters.
func (a OnOffAggregate) Validate() error {
	if a.N <= 0 {
		return errors.New("baseline: aggregate needs N >= 1 sources")
	}
	return a.Source.Validate()
}

// MeanRate returns N times the single-source mean.
func (a OnOffAggregate) MeanRate() float64 { return float64(a.N) * a.Source.MeanRate() }

// ArrivalPath sums N independent source paths.
func (a OnOffAggregate) ArrivalPath(r *rng.Source, k int) []float64 {
	sum := make([]float64, k)
	for i := 0; i < a.N; i++ {
		p := a.Source.ArrivalPath(r.Split(), k)
		for j := range sum {
			sum[j] += p[j]
		}
	}
	return sum
}

// NormalizedPath returns one aggregate path standardized to zero mean and
// unit variance — convenient input for Hurst estimators.
func (a OnOffAggregate) NormalizedPath(r *rng.Source, k int) ([]float64, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	x := a.ArrivalPath(r, k)
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(k)
	sd := math.Sqrt(sumSq/float64(k) - mean*mean)
	if sd == 0 {
		return nil, errors.New("baseline: degenerate aggregate path")
	}
	for i := range x {
		x[i] = (x[i] - mean) / sd
	}
	return x, nil
}
