package baseline

import (
	"math"
	"testing"

	"vbrsim/internal/hurst"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

func TestOnOffValidate(t *testing.T) {
	good := OnOff{Rate: 1, Alpha: 1.4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid source rejected: %v", err)
	}
	bad := []OnOff{
		{Rate: 0, Alpha: 1.4},
		{Rate: 1, Alpha: 1.0},
		{Rate: 1, Alpha: 2.0},
		{Rate: 1, Alpha: 1.4, MinSojourn: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad source %d accepted", i)
		}
	}
	if err := (OnOffAggregate{Source: good, N: 0}).Validate(); err == nil {
		t.Error("N=0 aggregate accepted")
	}
}

func TestOnOffPathStructure(t *testing.T) {
	o := OnOff{Rate: 3, Alpha: 1.5, MinSojourn: 5}
	path := o.ArrivalPath(rng.New(1), 50000)
	onCount := 0
	for _, v := range path {
		if v != 0 && v != 3 {
			t.Fatalf("value %v outside {0, Rate}", v)
		}
		if v == 3 {
			onCount++
		}
	}
	frac := float64(onCount) / float64(len(path))
	// ON fraction ~ 1/2 (identical sojourn laws), loosely (LRD -> slow
	// convergence).
	if frac < 0.25 || frac > 0.75 {
		t.Errorf("ON fraction = %v, want ~0.5", frac)
	}
	if got, want := o.MeanRate(), 1.5; got != want {
		t.Errorf("MeanRate = %v, want %v", got, want)
	}
	if got := o.TargetHurst(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("TargetHurst = %v, want 0.75", got)
	}
}

func TestOnOffAggregateConvergesToLRD(t *testing.T) {
	agg := OnOffAggregate{Source: OnOff{Rate: 1, Alpha: 1.4, MinSojourn: 2}, N: 32}
	x, err := agg.NormalizedPath(rng.New(3), 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	est, err := hurst.VarianceTime(x, hurst.VarianceTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Source.TargetHurst() // 0.8
	if math.Abs(est.H-want) > 0.12 {
		t.Errorf("aggregate H = %v, want ~%v", est.H, want)
	}
	if est.H < 0.65 {
		t.Errorf("aggregate not LRD: H = %v", est.H)
	}
}

func TestOnOffAggregateMoments(t *testing.T) {
	agg := OnOffAggregate{Source: OnOff{Rate: 2, Alpha: 1.6}, N: 16}
	path := agg.ArrivalPath(rng.New(5), 100000)
	mean := stats.Mean(path)
	if math.Abs(mean-agg.MeanRate()) > 0.15*agg.MeanRate() {
		t.Errorf("aggregate mean %v, want ~%v", mean, agg.MeanRate())
	}
	// Aggregate of many sources is smoother than one source in relative
	// terms.
	one := OnOff{Rate: 2, Alpha: 1.6}.ArrivalPath(rng.New(6), 100000)
	cv1 := stats.StdDev(one) / stats.Mean(one)
	cvN := stats.StdDev(path) / mean
	if cvN >= cv1 {
		t.Errorf("aggregation did not smooth: %v vs %v", cvN, cv1)
	}
}

func TestOnOffNormalizedPathErrors(t *testing.T) {
	bad := OnOffAggregate{Source: OnOff{Rate: 0, Alpha: 1.4}, N: 4}
	if _, err := bad.NormalizedPath(rng.New(1), 100); err == nil {
		t.Error("invalid aggregate accepted")
	}
}
