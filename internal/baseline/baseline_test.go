package baseline

import (
	"math"
	"testing"

	"vbrsim/internal/dist"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

func TestSRDOnlyBackground(t *testing.T) {
	m, err := SRDOnlyBackground(0.00565, 0.94, 60)
	if err != nil {
		t.Fatal(err)
	}
	// At the reference lag the background must carry r/a.
	want := math.Exp(-0.00565*60) / 0.94
	if got := m.At(60); math.Abs(got-want) > 1e-12 {
		t.Errorf("At(60) = %v, want %v", got, want)
	}
	// Exponential at all lags: acf[2k] = acf[k]^2.
	if math.Abs(m.At(120)-m.At(60)*m.At(60)) > 1e-12 {
		t.Error("not exponential")
	}
	if _, err := SRDOnlyBackground(0, 0.9, 60); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := SRDOnlyBackground(0.01, 1.5, 60); err == nil {
		t.Error("bad attenuation accepted")
	}
}

func TestSRDOnlySaturation(t *testing.T) {
	// Tiny rate with strong attenuation: r/a > 1 must clamp, not blow up.
	m, err := SRDOnlyBackground(1e-6, 0.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if v := m.At(60); v >= 1 || v <= 0 {
		t.Errorf("saturated At(60) = %v", v)
	}
}

func TestFGNOnlyBackground(t *testing.T) {
	m, err := FGNOnlyBackground(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0) != 1 || m.At(100) <= 0 {
		t.Error("bad fGn background")
	}
	for _, h := range []float64{0.5, 1.0, 0.3} {
		if _, err := FGNOnlyBackground(h); err == nil {
			t.Errorf("H=%v accepted", h)
		}
	}
}

func TestDAR1Validate(t *testing.T) {
	good := DAR1{Rho: 0.9, Marginal: dist.Exponential{Lambda: 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid DAR1 rejected: %v", err)
	}
	if err := (DAR1{Rho: 1, Marginal: dist.StdNormal}).Validate(); err == nil {
		t.Error("rho=1 accepted")
	}
	if err := (DAR1{Rho: 0.5}).Validate(); err == nil {
		t.Error("nil marginal accepted")
	}
}

func TestDAR1MarginalExact(t *testing.T) {
	d := DAR1{Rho: 0.8, Marginal: dist.Gamma{Shape: 2, Scale: 500}}
	r := rng.New(1)
	path := d.ArrivalPath(r, 200000)
	mean := stats.Mean(path)
	if math.Abs(mean-d.MeanRate()) > 0.03*d.MeanRate() {
		t.Errorf("DAR1 mean %v, want %v", mean, d.MeanRate())
	}
}

func TestDAR1ACFGeometric(t *testing.T) {
	d := DAR1{Rho: 0.7, Marginal: dist.Exponential{Lambda: 1}}
	r := rng.New(2)
	path := d.ArrivalPath(r, 400000)
	a := stats.Autocorrelation(path, 6)
	for k := 1; k <= 6; k++ {
		want := math.Pow(0.7, float64(k))
		if math.Abs(a[k]-want) > 0.03 {
			t.Errorf("DAR1 acf[%d] = %v, want %v", k, a[k], want)
		}
	}
	// Theoretical model agrees.
	model := d.ACF()
	if math.Abs(model.At(3)-math.Pow(0.7, 3)) > 1e-12 {
		t.Error("DAR1.ACF wrong")
	}
	// Rho=0 -> white noise model.
	if (DAR1{Rho: 0, Marginal: dist.StdNormal}).ACF().At(1) != 0 {
		t.Error("rho=0 should give white ACF")
	}
}

func TestMMPP2Validate(t *testing.T) {
	good := MMPP2{Rate0: 1, Rate1: 10, P01: 0.1, P10: 0.2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid MMPP rejected: %v", err)
	}
	bad := []MMPP2{
		{Rate0: -1, Rate1: 1, P01: 0.1, P10: 0.1},
		{Rate0: 1, Rate1: 1, P01: 0, P10: 0.1},
		{Rate0: 1, Rate1: 1, P01: 0.1, P10: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad MMPP %d accepted", i)
		}
	}
}

func TestMMPP2Stationary(t *testing.T) {
	m := MMPP2{Rate0: 2, Rate1: 20, P01: 0.05, P10: 0.15}
	if got, want := m.StationaryP1(), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("StationaryP1 = %v, want %v", got, want)
	}
	if got, want := m.MeanRate(), 0.75*2+0.25*20; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanRate = %v, want %v", got, want)
	}
	if got, want := m.CorrelationDecay(), 0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("CorrelationDecay = %v, want %v", got, want)
	}
}

func TestMMPP2PathStatistics(t *testing.T) {
	m := MMPP2{Rate0: 2, Rate1: 20, P01: 0.05, P10: 0.15}
	r := rng.New(3)
	path := m.ArrivalPath(r, 300000)
	mean := stats.Mean(path)
	if math.Abs(mean-m.MeanRate()) > 0.05*m.MeanRate() {
		t.Errorf("MMPP mean %v, want %v", mean, m.MeanRate())
	}
	// Autocorrelation decays geometrically with the chain decay factor:
	// acf[k+1]/acf[k] ~ 0.8 once the Poisson noise at lag 0 is excluded.
	a := stats.Autocorrelation(path, 10)
	ratio := a[4] / a[2]
	if math.Abs(ratio-0.8*0.8) > 0.1 {
		t.Errorf("MMPP acf decay ratio = %v, want ~0.64", ratio)
	}
	// Counts are non-negative integers.
	for _, v := range path[:1000] {
		if v < 0 || v != math.Trunc(v) {
			t.Fatalf("bad count %v", v)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := rng.New(4)
	for _, mean := range []float64{0.5, 3, 25, 100} {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.02 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.05 {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
}

func BenchmarkDAR1Path(b *testing.B) {
	d := DAR1{Rho: 0.9, Marginal: dist.Gamma{Shape: 2, Scale: 500}}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ArrivalPath(r, 1000)
	}
}
