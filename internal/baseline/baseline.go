// Package baseline implements the comparison models the paper positions its
// unified approach against:
//
//   - the three Fig.-17 variants — an SRD-only model (the exponential ACF
//     head extended to all lags), an LRD-only model (a single fGn background
//     process), and the full SRD+LRD model (which lives in package core);
//   - the "traditional Markovian" video sources the introduction cites:
//     DAR(1) (discrete autoregressive, Heyman et al.) and a two-state MMPP,
//     both usable directly as queue arrival sources.
//
// All of these exhibit either exponentially decaying autocorrelations or a
// pure power law; the paper's point is that neither alone reproduces the
// queueing behaviour of real VBR video.
package baseline

import (
	"errors"
	"math"

	"vbrsim/internal/acf"
	"vbrsim/internal/dist"
	"vbrsim/internal/rng"
)

// SRDOnlyBackground returns the background ACF for the paper's first Fig.-17
// model: only the exponentially decaying SRD component, compensated for the
// transform attenuation in the same way as eq. (14) — the rate is re-solved
// so that the foreground correlation at the reference lag lands on
// exp(-lambda*refLag). The returned model decays exponentially at all lags.
func SRDOnlyBackground(lambda float64, attenuation float64, refLag int) (acf.Model, error) {
	if lambda <= 0 {
		return nil, errors.New("baseline: non-positive SRD rate")
	}
	if attenuation <= 0 || attenuation > 1 {
		return nil, errors.New("baseline: attenuation outside (0,1]")
	}
	if refLag <= 0 {
		refLag = 60
	}
	target := math.Exp(-lambda*float64(refLag)) / attenuation
	if target >= 1 {
		target = 1 - 1e-9
	}
	return acf.Exponential{Lambda: -math.Log(target) / float64(refLag)}, nil
}

// FGNOnlyBackground returns the background ACF for the paper's third
// Fig.-17 model: a single fractional Gaussian noise process with the given
// Hurst parameter and no short-term exponential component.
func FGNOnlyBackground(h float64) (acf.Model, error) {
	if h <= 0.5 || h >= 1 {
		return nil, errors.New("baseline: fGn Hurst parameter must lie in (0.5, 1)")
	}
	return acf.FGN{H: h}, nil
}

// ---------------------------------------------------------------------------
// DAR(1)

// DAR1 is the discrete autoregressive source of order 1: with probability
// Rho the previous frame size repeats, otherwise a fresh draw is taken from
// the marginal. Its marginal is exact and its autocorrelation is Rho^k —
// the canonical "traditional" VBR video model.
type DAR1 struct {
	// Rho is the repeat probability in [0, 1).
	Rho float64
	// Marginal is the frame-size distribution.
	Marginal dist.Distribution
}

// Validate checks parameters.
func (d DAR1) Validate() error {
	if d.Rho < 0 || d.Rho >= 1 {
		return errors.New("baseline: DAR1 rho must lie in [0,1)")
	}
	if d.Marginal == nil {
		return errors.New("baseline: DAR1 needs a marginal")
	}
	return nil
}

// ACF returns the theoretical autocorrelation model Rho^k.
func (d DAR1) ACF() acf.Model {
	if d.Rho == 0 {
		return acf.White{}
	}
	return acf.Exponential{Lambda: -math.Log(d.Rho)}
}

// ArrivalPath implements queue.PathSource.
func (d DAR1) ArrivalPath(r *rng.Source, k int) []float64 {
	out := make([]float64, k)
	cur := d.Marginal.Sample(r)
	for i := 0; i < k; i++ {
		if i > 0 && r.Float64() >= d.Rho {
			cur = d.Marginal.Sample(r)
		}
		out[i] = cur
	}
	return out
}

// MeanRate returns the marginal mean.
func (d DAR1) MeanRate() float64 { return d.Marginal.Mean() }

// ---------------------------------------------------------------------------
// MMPP(2)

// MMPP2 is a two-state Markov-modulated Poisson process in discrete time:
// each slot the chain sits in state 0 or 1 and emits a Poisson count with
// the state's rate; transitions occur at slot boundaries with probabilities
// P01 and P10.
type MMPP2 struct {
	// Rate0 and Rate1 are the per-slot mean arrival counts in each state.
	Rate0, Rate1 float64
	// P01 is the per-slot probability of moving 0 -> 1; P10 of 1 -> 0.
	P01, P10 float64
}

// Validate checks parameters.
func (m MMPP2) Validate() error {
	if m.Rate0 < 0 || m.Rate1 < 0 {
		return errors.New("baseline: MMPP rates must be non-negative")
	}
	if m.P01 <= 0 || m.P01 >= 1 || m.P10 <= 0 || m.P10 >= 1 {
		return errors.New("baseline: MMPP transition probabilities must lie in (0,1)")
	}
	return nil
}

// StationaryP1 returns the stationary probability of state 1.
func (m MMPP2) StationaryP1() float64 { return m.P01 / (m.P01 + m.P10) }

// MeanRate returns the stationary mean arrivals per slot.
func (m MMPP2) MeanRate() float64 {
	p1 := m.StationaryP1()
	return (1-p1)*m.Rate0 + p1*m.Rate1
}

// CorrelationDecay returns the geometric decay factor of the modulating
// chain's autocorrelation, 1 - P01 - P10.
func (m MMPP2) CorrelationDecay() float64 { return 1 - m.P01 - m.P10 }

// ArrivalPath implements queue.PathSource: the chain starts in its
// stationary distribution.
func (m MMPP2) ArrivalPath(r *rng.Source, k int) []float64 {
	out := make([]float64, k)
	state := 0
	if r.Float64() < m.StationaryP1() {
		state = 1
	}
	for i := 0; i < k; i++ {
		rate := m.Rate0
		if state == 1 {
			rate = m.Rate1
		}
		out[i] = float64(r.Poisson(rate))
		// Transition for the next slot.
		if state == 0 {
			if r.Float64() < m.P01 {
				state = 1
			}
		} else if r.Float64() < m.P10 {
			state = 0
		}
	}
	return out
}
