package mpegtrace

import (
	"math"
	"testing"

	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
)

func sliceTestTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := Generate(Config{Frames: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestToSlicesConservation(t *testing.T) {
	tr := sliceTestTrace(t)
	sl, err := ToSlices(tr, SliceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Len() != tr.Len()*15 {
		t.Fatalf("slice count %d, want %d", sl.Len(), tr.Len()*15)
	}
	if sl.GOPLength != tr.GOPLength*15 {
		t.Errorf("GOPLength = %d", sl.GOPLength)
	}
	if sl.FrameRate != tr.FrameRate*15 {
		t.Errorf("FrameRate = %v", sl.FrameRate)
	}
	// Per-frame byte totals conserved exactly.
	for i := 0; i < tr.Len(); i++ {
		var sum float64
		for j := 0; j < 15; j++ {
			sum += sl.Sizes[i*15+j]
		}
		if math.Abs(sum-tr.Sizes[i]) > 1e-9 {
			t.Fatalf("frame %d: slices sum %v, frame %v", i, sum, tr.Sizes[i])
		}
	}
}

func TestToSlicesTypeInheritance(t *testing.T) {
	tr := sliceTestTrace(t)
	sl, err := ToSlices(tr, SliceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i++ {
		for j := 0; j < 15; j++ {
			if sl.Types[i*15+j] != tr.Types[i] {
				t.Fatalf("frame %d slice %d type mismatch", i, j)
			}
		}
	}
}

func TestToSlicesSpatialVariation(t *testing.T) {
	tr := sliceTestTrace(t)
	bursty, err := ToSlices(tr, SliceOptions{Concentration: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := ToSlices(tr, SliceOptions{Concentration: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Lower concentration means burstier slices: higher variance at equal
	// mean.
	vb := stats.Variance(bursty.Sizes)
	vs := stats.Variance(smooth.Sizes)
	if vb <= vs {
		t.Errorf("burstiness ordering violated: %v vs %v", vb, vs)
	}
	mb, ms := stats.Mean(bursty.Sizes), stats.Mean(smooth.Sizes)
	if math.Abs(mb-ms) > 0.01*ms {
		t.Errorf("means differ: %v vs %v", mb, ms)
	}
}

func TestToSlicesUntyped(t *testing.T) {
	tr := &trace.Trace{Sizes: []float64{1000, 2000}, FrameRate: 30}
	sl, err := ToSlices(tr, SliceOptions{SlicesPerFrame: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Types != nil {
		t.Error("untyped input grew types")
	}
	if sl.Len() != 8 {
		t.Errorf("len = %d", sl.Len())
	}
}

func TestToSlicesValidation(t *testing.T) {
	tr := &trace.Trace{Sizes: []float64{100}}
	if _, err := ToSlices(tr, SliceOptions{SlicesPerFrame: -1}); err == nil {
		t.Error("negative slices accepted")
	}
	if _, err := ToSlices(tr, SliceOptions{Concentration: -2}); err == nil {
		t.Error("negative concentration accepted")
	}
	if _, err := ToSlices(&trace.Trace{}, SliceOptions{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestToSlicesDeterministic(t *testing.T) {
	tr := sliceTestTrace(t)
	a, err := ToSlices(tr, SliceOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ToSlices(tr, SliceOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Fatalf("nondeterministic at slice %d", i)
		}
	}
}
