// Package mpegtrace is a scene-oriented simulator of an MPEG-1 VBR video
// encoder. It stands in for the proprietary "Last Action Hero" empirical
// trace used by the paper (Table 1): the paper's modeling pipeline consumes
// only the statistics of its input trace, and this source produces a
// bytes-per-frame record with exactly the structural features the pipeline
// exploits:
//
//   - long-range dependence with a controllable Hurst parameter, created by
//     heavy-tailed (Pareto) scene durations — for scene-length tail index
//     alpha in (1,2) the resulting aggregate process has H = (3-alpha)/2;
//   - short-range dependence (the ACF "knee"), created by AR(1) modulation
//     of the coding activity within each scene;
//   - a long-tailed non-Gaussian marginal, from Gamma-distributed per-scene
//     activity combined with lognormal per-frame noise; and
//   - the MPEG-1 GOP structure IBBPBBPBBPBB, with I frames several times
//     larger than P frames, which are larger than B frames.
//
// The generator is fully deterministic given its seed.
package mpegtrace

import (
	"errors"
	"math"

	"vbrsim/internal/rng"
	"vbrsim/internal/trace"
)

// Config parameterizes the synthetic encoder.
type Config struct {
	// Frames is the number of frames to generate. The paper's trace has
	// 238,626 frames (2h12m36s at 30 fps).
	Frames int
	// FrameRate in frames per second; informational. Default 30.
	FrameRate float64
	// GOP is the group-of-pictures pattern; default trace.DefaultGOP
	// (IBBPBBPBBPBB).
	GOP []trace.FrameType

	// SceneAlpha is the Pareto tail index of scene durations in frames;
	// alpha in (1,2) yields LRD with H = (3-alpha)/2. Default 1.2 (H=0.9).
	SceneAlpha float64
	// SceneMinFrames is the Pareto location (minimum scene length). Default 24.
	SceneMinFrames float64

	// ActivityShape/ActivityScale parameterize the Gamma distribution of the
	// per-scene coding activity (the base bytes per frame of the scene).
	// Defaults 2.2 and 1300, giving a mean near 2900 bytes/frame with a long
	// right tail, in the range of the paper's Fig. 1.
	ActivityShape float64
	ActivityScale float64

	// ModPhi is the AR(1) coefficient of the within-scene activity
	// modulation (the SRD component); default 0.95.
	ModPhi float64
	// ModSigma is the stationary standard deviation of the log-modulation;
	// default 0.25.
	ModSigma float64

	// IScale, PScale, BScale are the frame-type size multipliers; defaults
	// 2.8, 1.3 and 0.55 (I > P > B, as MPEG-1 coders produce).
	IScale, PScale, BScale float64
	// FrameNoiseSigma is the per-frame lognormal noise sigma; default 0.12.
	FrameNoiseSigma float64

	// Seed makes the trace reproducible.
	Seed uint64
}

// PaperScale returns a configuration matching the empirical record of
// Table 1: 238,626 frames at 30 fps, 12-frame GOP, H near 0.9.
func PaperScale(seed uint64) Config {
	return Config{Frames: 238626, Seed: seed}
}

// withDefaults fills zero fields with defaults.
func (c Config) withDefaults() Config {
	if c.FrameRate == 0 {
		c.FrameRate = 30
	}
	if c.GOP == nil {
		c.GOP = trace.DefaultGOP
	}
	if c.SceneAlpha == 0 {
		c.SceneAlpha = 1.2
	}
	if c.SceneMinFrames == 0 {
		c.SceneMinFrames = 24
	}
	if c.ActivityShape == 0 {
		c.ActivityShape = 2.2
	}
	if c.ActivityScale == 0 {
		c.ActivityScale = 1300
	}
	if c.ModPhi == 0 {
		c.ModPhi = 0.95
	}
	if c.ModSigma == 0 {
		c.ModSigma = 0.25
	}
	if c.IScale == 0 {
		c.IScale = 2.8
	}
	if c.PScale == 0 {
		c.PScale = 1.3
	}
	if c.BScale == 0 {
		c.BScale = 0.55
	}
	if c.FrameNoiseSigma == 0 {
		c.FrameNoiseSigma = 0.12
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Frames <= 0 {
		return errors.New("mpegtrace: Frames must be positive")
	}
	if c.SceneAlpha <= 1 || c.SceneAlpha >= 2 {
		return errors.New("mpegtrace: SceneAlpha must lie in (1,2) for LRD")
	}
	if c.SceneMinFrames < 1 {
		return errors.New("mpegtrace: SceneMinFrames must be >= 1")
	}
	if c.ModPhi < 0 || c.ModPhi >= 1 {
		return errors.New("mpegtrace: ModPhi must lie in [0,1)")
	}
	if len(c.GOP) == 0 {
		return errors.New("mpegtrace: empty GOP pattern")
	}
	if c.IScale <= 0 || c.PScale <= 0 || c.BScale <= 0 {
		return errors.New("mpegtrace: frame-type scales must be positive")
	}
	return nil
}

// TargetHurst returns the Hurst parameter the scene-length tail implies:
// H = (3 - alpha)/2.
func (c Config) TargetHurst() float64 {
	cc := c.withDefaults()
	return (3 - cc.SceneAlpha) / 2
}

// Generate produces the synthetic trace.
func Generate(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	r := rng.New(c.Seed)

	tr := &trace.Trace{
		Sizes:     make([]float64, c.Frames),
		Types:     make([]trace.FrameType, c.Frames),
		FrameRate: c.FrameRate,
		GOPLength: len(c.GOP),
	}

	// Scene state.
	sceneLeft := 0
	activity := 0.0
	// Within-scene AR(1) log-modulation with stationary std ModSigma.
	innov := c.ModSigma * math.Sqrt(1-c.ModPhi*c.ModPhi)
	mod := c.ModSigma * r.Norm()

	for i := 0; i < c.Frames; i++ {
		if sceneLeft == 0 {
			// New scene: heavy-tailed duration, fresh activity level.
			sceneLeft = int(r.Pareto(c.SceneAlpha, c.SceneMinFrames))
			if sceneLeft < 1 {
				sceneLeft = 1
			}
			activity = r.Gamma(c.ActivityShape, c.ActivityScale)
			// A scene cut usually resets the modulation (new content).
			mod = c.ModSigma * r.Norm()
		}
		sceneLeft--

		mod = c.ModPhi*mod + innov*r.Norm()

		ft := c.GOP[i%len(c.GOP)]
		var scale float64
		switch ft {
		case trace.FrameI:
			scale = c.IScale
		case trace.FrameP:
			scale = c.PScale
		default:
			scale = c.BScale
		}
		noise := math.Exp(c.FrameNoiseSigma * r.Norm())
		size := activity * math.Exp(mod) * scale * noise
		// MPEG frames always carry headers; floor at a small positive size.
		if size < 64 {
			size = 64
		}
		tr.Sizes[i] = math.Round(size)
		tr.Types[i] = ft
	}
	return tr, nil
}
