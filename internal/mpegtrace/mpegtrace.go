// Package mpegtrace is a scene-oriented simulator of an MPEG-1 VBR video
// encoder. It stands in for the proprietary "Last Action Hero" empirical
// trace used by the paper (Table 1): the paper's modeling pipeline consumes
// only the statistics of its input trace, and this source produces a
// bytes-per-frame record with exactly the structural features the pipeline
// exploits:
//
//   - long-range dependence with a controllable Hurst parameter, created by
//     heavy-tailed (Pareto) scene durations — for scene-length tail index
//     alpha in (1,2) the resulting aggregate process has H = (3-alpha)/2;
//   - short-range dependence (the ACF "knee"), created by AR(1) modulation
//     of the coding activity within each scene;
//   - a long-tailed non-Gaussian marginal, from Gamma-distributed per-scene
//     activity combined with lognormal per-frame noise; and
//   - the MPEG-1 GOP structure IBBPBBPBBPBB, with I frames several times
//     larger than P frames, which are larger than B frames.
//
// The generator is fully deterministic given its seed.
package mpegtrace

import (
	"errors"
	"math"

	"vbrsim/internal/rng"
	"vbrsim/internal/trace"
)

// Config parameterizes the synthetic encoder.
type Config struct {
	// Frames is the number of frames to generate. The paper's trace has
	// 238,626 frames (2h12m36s at 30 fps).
	Frames int
	// FrameRate in frames per second; informational. Default 30.
	FrameRate float64
	// GOP is the group-of-pictures pattern; default trace.DefaultGOP
	// (IBBPBBPBBPBB).
	GOP []trace.FrameType

	// SceneAlpha is the Pareto tail index of scene durations in frames;
	// alpha in (1,2) yields LRD with H = (3-alpha)/2. Default 1.2 (H=0.9).
	SceneAlpha float64
	// SceneMinFrames is the Pareto location (minimum scene length). Default 24.
	SceneMinFrames float64

	// ActivityShape/ActivityScale parameterize the Gamma distribution of the
	// per-scene coding activity (the base bytes per frame of the scene).
	// Defaults 2.2 and 1300, giving a mean near 2900 bytes/frame with a long
	// right tail, in the range of the paper's Fig. 1.
	ActivityShape float64
	ActivityScale float64

	// ModPhi is the AR(1) coefficient of the within-scene activity
	// modulation (the SRD component); default 0.95.
	ModPhi float64
	// ModSigma is the stationary standard deviation of the log-modulation;
	// default 0.25.
	ModSigma float64

	// IScale, PScale, BScale are the frame-type size multipliers; defaults
	// 2.8, 1.3 and 0.55 (I > P > B, as MPEG-1 coders produce).
	IScale, PScale, BScale float64
	// FrameNoiseSigma is the per-frame lognormal noise sigma; default 0.12.
	FrameNoiseSigma float64

	// Seed makes the trace reproducible.
	Seed uint64
}

// PaperScale returns a configuration matching the empirical record of
// Table 1: 238,626 frames at 30 fps, 12-frame GOP, H near 0.9.
func PaperScale(seed uint64) Config {
	return Config{Frames: 238626, Seed: seed}
}

// withDefaults fills zero fields with defaults.
func (c Config) withDefaults() Config {
	if c.FrameRate == 0 {
		c.FrameRate = 30
	}
	if c.GOP == nil {
		c.GOP = trace.DefaultGOP
	}
	if c.SceneAlpha == 0 {
		c.SceneAlpha = 1.2
	}
	if c.SceneMinFrames == 0 {
		c.SceneMinFrames = 24
	}
	if c.ActivityShape == 0 {
		c.ActivityShape = 2.2
	}
	if c.ActivityScale == 0 {
		c.ActivityScale = 1300
	}
	if c.ModPhi == 0 {
		c.ModPhi = 0.95
	}
	if c.ModSigma == 0 {
		c.ModSigma = 0.25
	}
	if c.IScale == 0 {
		c.IScale = 2.8
	}
	if c.PScale == 0 {
		c.PScale = 1.3
	}
	if c.BScale == 0 {
		c.BScale = 0.55
	}
	if c.FrameNoiseSigma == 0 {
		c.FrameNoiseSigma = 0.12
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Frames <= 0 {
		return errors.New("mpegtrace: Frames must be positive")
	}
	if c.SceneAlpha <= 1 || c.SceneAlpha >= 2 {
		return errors.New("mpegtrace: SceneAlpha must lie in (1,2) for LRD")
	}
	if c.SceneMinFrames < 1 {
		return errors.New("mpegtrace: SceneMinFrames must be >= 1")
	}
	if c.ModPhi < 0 || c.ModPhi >= 1 {
		return errors.New("mpegtrace: ModPhi must lie in [0,1)")
	}
	if len(c.GOP) == 0 {
		return errors.New("mpegtrace: empty GOP pattern")
	}
	if c.IScale <= 0 || c.PScale <= 0 || c.BScale <= 0 {
		return errors.New("mpegtrace: frame-type scales must be positive")
	}
	return nil
}

// TargetHurst returns the Hurst parameter the scene-length tail implies:
// H = (3 - alpha)/2.
func (c Config) TargetHurst() float64 {
	cc := c.withDefaults()
	return (3 - cc.SceneAlpha) / 2
}

// MeanBytesPerFrame returns the analytic stationary mean frame size implied
// by the configuration: E[activity]·E[e^mod]·E[scale]·E[noise] with
// Gamma activity (shape·scale), lognormal modulation and noise factors
// (e^{σ²/2}), and the frame-type scale averaged over the GOP pattern. The
// 64-byte floor and rounding are ignored; for default-scale configurations
// they shift the mean by well under a percent.
func (c Config) MeanBytesPerFrame() float64 {
	cc := c.withDefaults()
	var scaleSum float64
	for _, ft := range cc.GOP {
		switch ft {
		case trace.FrameI:
			scaleSum += cc.IScale
		case trace.FrameP:
			scaleSum += cc.PScale
		default:
			scaleSum += cc.BScale
		}
	}
	meanScale := scaleSum / float64(len(cc.GOP))
	meanActivity := cc.ActivityShape * cc.ActivityScale
	return meanActivity *
		math.Exp(cc.ModSigma*cc.ModSigma/2) *
		meanScale *
		math.Exp(cc.FrameNoiseSigma*cc.FrameNoiseSigma/2)
}

// Generator steps the synthetic encoder one frame at a time, carrying the
// scene state (remaining scene length, activity level, AR(1) modulation)
// across calls. Its draw order is exactly that of Generate, so N calls to
// Next reproduce Generate's first N frames bit for bit; that makes the GOP
// model servable as an unbounded deterministic stream (seek = reseed and
// replay).
type Generator struct {
	cfg Config // defaults filled
	r   *rng.Source
	pos int

	sceneLeft int
	activity  float64
	// Within-scene AR(1) log-modulation with stationary std ModSigma.
	innov, mod float64
}

// NewGenerator validates cfg and returns a generator positioned at frame 0.
// cfg.Frames may be zero: a streaming generator is unbounded.
func NewGenerator(cfg Config) (*Generator, error) {
	vc := cfg
	if vc.Frames == 0 {
		vc.Frames = 1 // streams are unbounded; satisfy the finite-trace check
	}
	if err := vc.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg.withDefaults()}
	g.innov = g.cfg.ModSigma * math.Sqrt(1-g.cfg.ModPhi*g.cfg.ModPhi)
	g.Reseed(g.cfg.Seed)
	return g, nil
}

// Reseed rewinds the generator to frame 0 of the trace keyed by seed,
// discarding all scene state. Reseed(Seed()) replays the stream from the
// start bit-identically.
func (g *Generator) Reseed(seed uint64) {
	g.cfg.Seed = seed
	if g.r == nil {
		g.r = rng.New(seed)
	} else {
		g.r.Reseed(seed)
	}
	g.pos = 0
	g.sceneLeft = 0
	g.activity = 0
	g.mod = g.cfg.ModSigma * g.r.Norm()
}

// Seed returns the seed of the trace being generated.
func (g *Generator) Seed() uint64 { return g.cfg.Seed }

// Pos returns the index of the next frame Next will produce.
func (g *Generator) Pos() int { return g.pos }

// Config returns the generator's configuration with defaults filled.
func (g *Generator) Config() Config { return g.cfg }

// Next produces the next frame's size in bytes and its GOP frame type.
func (g *Generator) Next() (size float64, ft trace.FrameType) {
	c := &g.cfg
	if g.sceneLeft == 0 {
		// New scene: heavy-tailed duration, fresh activity level.
		g.sceneLeft = int(g.r.Pareto(c.SceneAlpha, c.SceneMinFrames))
		if g.sceneLeft < 1 {
			g.sceneLeft = 1
		}
		g.activity = g.r.Gamma(c.ActivityShape, c.ActivityScale)
		// A scene cut usually resets the modulation (new content).
		g.mod = c.ModSigma * g.r.Norm()
	}
	g.sceneLeft--

	g.mod = c.ModPhi*g.mod + g.innov*g.r.Norm()

	ft = c.GOP[g.pos%len(c.GOP)]
	var scale float64
	switch ft {
	case trace.FrameI:
		scale = c.IScale
	case trace.FrameP:
		scale = c.PScale
	default:
		scale = c.BScale
	}
	noise := math.Exp(c.FrameNoiseSigma * g.r.Norm())
	size = g.activity * math.Exp(g.mod) * scale * noise
	// MPEG frames always carry headers; floor at a small positive size.
	if size < 64 {
		size = 64
	}
	g.pos++
	return math.Round(size), ft
}

// Generate produces the synthetic trace by stepping a Generator cfg.Frames
// times.
func Generate(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	c := g.cfg

	tr := &trace.Trace{
		Sizes:     make([]float64, c.Frames),
		Types:     make([]trace.FrameType, c.Frames),
		FrameRate: c.FrameRate,
		GOPLength: len(c.GOP),
	}
	for i := 0; i < c.Frames; i++ {
		tr.Sizes[i], tr.Types[i] = g.Next()
	}
	return tr, nil
}
