// Slice-level trace decomposition. Table 1 records the empirical sequence's
// slice rate (15 slices per frame): the paper treats "bits per video frame
// or slice" as interchangeable modeling units. ToSlices turns a frame-level
// trace into a slice-level one by dividing each frame's bytes across its
// slices with random (Dirichlet-like) proportions, conserving the per-frame
// total exactly — so queueing studies can run at the finer time scale the
// multiplexer actually sees.
package mpegtrace

import (
	"errors"
	"math"

	"vbrsim/internal/rng"
	"vbrsim/internal/trace"
)

// SliceOptions controls the frame-to-slice decomposition.
type SliceOptions struct {
	// SlicesPerFrame; default 15 (Table 1).
	SlicesPerFrame int
	// Concentration is the Dirichlet concentration per slice: large values
	// split frames nearly evenly, small values make slice sizes bursty.
	// Default 8 (mild spatial variation).
	Concentration float64
	// Seed drives the random proportions.
	Seed uint64
}

// ToSlices converts a frame-level trace to slice level. Each output entry
// is one slice's bytes; slices inherit their frame's type; the per-frame
// byte totals are conserved exactly (up to rounding to whole bytes, with
// the remainder assigned to the frame's last slice). The output frame rate
// is scaled by the slice count.
func ToSlices(tr *trace.Trace, opt SliceOptions) (*trace.Trace, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if opt.SlicesPerFrame == 0 {
		opt.SlicesPerFrame = 15
	}
	if opt.SlicesPerFrame < 1 {
		return nil, errors.New("mpegtrace: SlicesPerFrame must be >= 1")
	}
	if opt.Concentration == 0 {
		opt.Concentration = 8
	}
	if opt.Concentration <= 0 {
		return nil, errors.New("mpegtrace: Concentration must be positive")
	}
	s := opt.SlicesPerFrame
	r := rng.New(opt.Seed)
	out := &trace.Trace{
		Sizes:     make([]float64, tr.Len()*s),
		FrameRate: tr.FrameRate * float64(s),
		GOPLength: tr.GOPLength * s,
	}
	if tr.Types != nil {
		out.Types = make([]trace.FrameType, tr.Len()*s)
	}
	weights := make([]float64, s)
	for i, frameBytes := range tr.Sizes {
		// Dirichlet proportions via normalized Gamma variates.
		var total float64
		for j := range weights {
			weights[j] = r.Gamma(opt.Concentration, 1)
			total += weights[j]
		}
		var assigned float64
		for j := 0; j < s; j++ {
			idx := i*s + j
			var sliceBytes float64
			if j == s-1 {
				sliceBytes = frameBytes - assigned // exact conservation
			} else {
				sliceBytes = math.Round(frameBytes * weights[j] / total)
				assigned += sliceBytes
			}
			if sliceBytes < 0 {
				sliceBytes = 0
			}
			out.Sizes[idx] = sliceBytes
			if out.Types != nil {
				out.Types[idx] = tr.Types[i]
			}
		}
	}
	return out, nil
}
