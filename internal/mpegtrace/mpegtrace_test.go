package mpegtrace

import (
	"math"
	"testing"

	"vbrsim/internal/hurst"
	"vbrsim/internal/stats"
	"vbrsim/internal/trace"
)

func TestValidate(t *testing.T) {
	good := Config{Frames: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	bad := []Config{
		{Frames: 0},
		{Frames: 10, SceneAlpha: 2.5},
		{Frames: 10, SceneAlpha: 0.9},
		{Frames: 10, SceneMinFrames: 0.5},
		{Frames: 10, ModPhi: 1.0},
		{Frames: 10, IScale: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Config{Frames: 5000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Frames: 5000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			t.Fatalf("non-deterministic at frame %d", i)
		}
	}
	c, err := Generate(Config{Frames: 5000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Sizes {
		if a.Sizes[i] == c.Sizes[i] {
			same++
		}
	}
	if same > len(a.Sizes)/10 {
		t.Errorf("different seeds produced %d/%d identical frames", same, len(a.Sizes))
	}
}

func TestGOPStructure(t *testing.T) {
	tr, err := Generate(Config{Frames: 240, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.GOPLength != 12 {
		t.Errorf("GOPLength = %d", tr.GOPLength)
	}
	for i, ft := range tr.Types {
		if ft != trace.DefaultGOP[i%12] {
			t.Fatalf("frame %d type %v, want %v", i, ft, trace.DefaultGOP[i%12])
		}
	}
}

func TestFrameTypeOrdering(t *testing.T) {
	tr, err := Generate(Config{Frames: 120000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mi := stats.Mean(tr.ByType(trace.FrameI))
	mp := stats.Mean(tr.ByType(trace.FrameP))
	mb := stats.Mean(tr.ByType(trace.FrameB))
	if !(mi > mp && mp > mb) {
		t.Errorf("frame size ordering violated: I=%v P=%v B=%v", mi, mp, mb)
	}
	// The I/B ratio should be substantial, as in real MPEG-1.
	if mi/mb < 2 {
		t.Errorf("I/B ratio = %v, want > 2", mi/mb)
	}
}

func TestMarginalIsLongTailed(t *testing.T) {
	tr, err := Generate(Config{Frames: 120000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	iSizes := tr.ByType(trace.FrameI)
	if sk := stats.Skewness(iSizes); sk < 0.5 {
		t.Errorf("I-frame skewness = %v, want > 0.5 (long right tail)", sk)
	}
	s := tr.Summarize()
	if s.PeakToMean < 3 {
		t.Errorf("peak-to-mean = %v, want > 3 (bursty VBR)", s.PeakToMean)
	}
	if s.MinBytes < 64 {
		t.Errorf("minimum frame size = %v, want >= 64", s.MinBytes)
	}
}

func TestHurstInTargetRange(t *testing.T) {
	cfg := Config{Frames: 1 << 18, Seed: 4}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := hurst.VarianceTime(tr.Sizes, hurst.VarianceTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.TargetHurst() // 0.9 by default
	if est.H < want-0.15 || est.H > 1.0 {
		t.Errorf("variance-time H = %v, want near %v", est.H, want)
	}
	// The trace must be clearly LRD, not SRD.
	if est.H < 0.7 {
		t.Errorf("H = %v: trace is not long-range dependent", est.H)
	}
}

func TestTargetHurstMapping(t *testing.T) {
	if got := (Config{SceneAlpha: 1.2}).TargetHurst(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("TargetHurst(1.2) = %v, want 0.9", got)
	}
	if got := (Config{SceneAlpha: 1.6}).TargetHurst(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("TargetHurst(1.6) = %v, want 0.7", got)
	}
}

func TestIFrameACFHasKnee(t *testing.T) {
	// The I-frame subsequence must show fast early ACF decay (within-scene
	// AR modulation) followed by a slowly decaying tail (scene process).
	tr, err := Generate(Config{Frames: 1 << 18, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	iSizes := tr.ByType(trace.FrameI)
	a := stats.Autocorrelation(iSizes, 200)
	if a[1] < 0.3 {
		t.Errorf("acf[1] = %v, want strong short-lag correlation", a[1])
	}
	// Early decay must be faster than late decay (knee shape):
	early := a[1] - a[20]
	late := a[100] - a[119]
	if early <= late {
		t.Errorf("no knee: early drop %v vs late drop %v", early, late)
	}
	// The tail must remain well above zero (LRD).
	if a[150] < 0.03 {
		t.Errorf("acf[150] = %v: long-range correlation missing", a[150])
	}
}

func TestFullStreamACFOscillatesWithGOP(t *testing.T) {
	// The composite I-B-P stream has a periodic ACF component with the GOP
	// period: lag-12 correlation exceeds lag-6 correlation.
	tr, err := Generate(Config{Frames: 1 << 17, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	a := stats.Autocorrelation(tr.Sizes, 24)
	if a[12] <= a[6] {
		t.Errorf("acf[12]=%v should exceed acf[6]=%v (GOP periodicity)", a[12], a[6])
	}
	if a[24] <= a[18] {
		t.Errorf("acf[24]=%v should exceed acf[18]=%v", a[24], a[18])
	}
}

func TestPaperScale(t *testing.T) {
	cfg := PaperScale(7)
	if cfg.Frames != 238626 {
		t.Errorf("PaperScale frames = %d, want 238626", cfg.Frames)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("PaperScale invalid: %v", err)
	}
	// Duration must match Table 1: 2h12m36s = 7956 s.
	cfg.Frames = 238626
	c := cfg.withDefaults()
	dur := float64(cfg.Frames) / c.FrameRate
	if math.Abs(dur-7954.2) > 1 {
		t.Errorf("duration = %v s, want ~7954 (2h12m36s)", dur)
	}
}

func TestValidatePropagatedByGenerate(t *testing.T) {
	if _, err := Generate(Config{Frames: -5}); err == nil {
		t.Error("Generate accepted invalid config")
	}
}

func TestGeneratorMatchesGenerate(t *testing.T) {
	// The stepping generator must reproduce Generate bit for bit: the trunk
	// engine and trafficd serve GOP streams through Next, and seek-&-resume
	// determinism rests on this equivalence.
	cfg := Config{Frames: 20000, Seed: 99}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(Config{Seed: 99}) // unbounded: Frames omitted
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Sizes {
		size, ft := g.Next()
		if size != tr.Sizes[i] || ft != tr.Types[i] {
			t.Fatalf("frame %d: generator (%v,%v) != Generate (%v,%v)",
				i, size, ft, tr.Sizes[i], tr.Types[i])
		}
	}
	if g.Pos() != cfg.Frames {
		t.Errorf("Pos = %d, want %d", g.Pos(), cfg.Frames)
	}
}

func TestGeneratorReseedReplay(t *testing.T) {
	g, err := NewGenerator(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	first := make([]float64, 4096)
	for i := range first {
		first[i], _ = g.Next()
	}
	g.Reseed(g.Seed())
	if g.Pos() != 0 {
		t.Fatalf("Pos after Reseed = %d", g.Pos())
	}
	for i := range first {
		size, _ := g.Next()
		if size != first[i] {
			t.Fatalf("replay diverged at frame %d: %v != %v", i, size, first[i])
		}
	}
	// A different seed must produce a different stream.
	g.Reseed(6)
	same := 0
	for i := range first {
		size, _ := g.Next()
		if size == first[i] {
			same++
		}
	}
	if same > len(first)/10 {
		t.Errorf("reseed(6) matched %d/%d frames of seed 5", same, len(first))
	}
}

func TestMeanBytesPerFrame(t *testing.T) {
	// Use a mild scene tail (alpha=1.9) so the sample mean converges well
	// enough to check the analytic formula.
	cfg := Config{Frames: 1 << 18, Seed: 11, SceneAlpha: 1.9}
	want := cfg.MeanBytesPerFrame()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := stats.Mean(tr.Sizes)
	if rel := math.Abs(got-want) / want; rel > 0.08 {
		t.Errorf("sample mean %v vs analytic %v (rel err %.3f)", got, want, rel)
	}
	// The default config's analytic mean must sit in the paper's Fig. 1
	// range (a few thousand bytes/frame).
	def := Config{}.MeanBytesPerFrame()
	if def < 1000 || def > 10000 {
		t.Errorf("default analytic mean %v out of plausible range", def)
	}
}

func BenchmarkGenerate65536(b *testing.B) {
	cfg := Config{Frames: 1 << 16, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
