package statmon

import (
	"math"
	"sort"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/daviesharte"
	"vbrsim/internal/dist"
	"vbrsim/internal/rng"
)

func fgnPath(t testing.TB, h float64, n int, seed uint64) []float64 {
	t.Helper()
	p, err := daviesharte.NewPlan(acf.FGN{H: h}, n, daviesharte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p.Path(rng.New(seed))
}

// feed pushes x through the monitor in serve-path-sized contiguous chunks.
func feed(m *Monitor, x []float64) {
	const chunk = 1024
	for pos := 0; pos < len(x); pos += chunk {
		end := pos + chunk
		if end > len(x) {
			end = len(x)
		}
		m.Observe(int64(pos), x[pos:end])
	}
}

func fgnRef(h float64, maxScale int) Ref {
	return Ref{
		H:          h,
		AsymH:      h,
		ImpliedACF: acf.Table(acf.FGN{H: h}, maxScale+1),
		Quantile:   func(p float64) float64 { return dist.StdNormal.Quantile(p) },
	}
}

func TestP2MatchesExactQuantiles(t *testing.T) {
	r := rng.New(42)
	const n = 200000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Exp(0.5 * r.Norm()) // skewed, like frame sizes
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		s := newP2(p)
		for _, v := range x {
			s.push(v)
		}
		sorted := append([]float64(nil), x...)
		sort.Float64s(sorted)
		exact := sorted[int(p*float64(n))]
		if rel := math.Abs(s.quantile()-exact) / exact; rel > 0.02 {
			t.Errorf("p=%v: P² = %v, exact = %v (rel err %v)", p, s.quantile(), exact, rel)
		}
	}
}

func TestP2TinySample(t *testing.T) {
	s := newP2(0.5)
	for _, v := range []float64{3, 1, 2} {
		s.push(v)
	}
	if q := s.quantile(); q != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", q)
	}
}

func TestMonitorConformingStreamNoDrift(t *testing.T) {
	x := fgnPath(t, 0.8, 1<<17, 11)
	m := New(Config{}, fgnRef(0.8, 1024))
	feed(m, x)
	s := m.Snapshot()
	if s.Frames != 1<<17 {
		t.Fatalf("frames = %d, want %d", s.Frames, 1<<17)
	}
	if !s.HurstValid {
		t.Fatal("hurst check did not activate")
	}
	if s.HurstErr > 0.05 {
		t.Errorf("conforming stream hurst err = %v (est %v, ref %v)", s.HurstErr, s.Hurst, s.HurstRef)
	}
	if s.ACFErr > 0.05 {
		t.Errorf("conforming stream acf err = %v", s.ACFErr)
	}
	if s.MarginalErr > 0.1 {
		t.Errorf("conforming stream marginal err = %v", s.MarginalErr)
	}
	if s.Drifting {
		t.Errorf("conforming stream flagged drifting (score %v)", s.Drift)
	}
}

// TestMonitorWrongHDrifts is the core mis-modeling scenario: the generator
// follows its own ACF (fGn with H=0.75) but the session's fit metadata
// claims H=0.9 — the paper value, off by 0.15. The bias-cancelled reference
// shifts by the claimed-vs-implied gap, so the full 0.15 must surface.
func TestMonitorWrongHDrifts(t *testing.T) {
	x := fgnPath(t, 0.75, 1<<17, 13)
	ref := fgnRef(0.75, 1024)
	ref.H = 0.9 // the lie
	m := New(Config{}, ref)
	feed(m, x)
	s := m.Snapshot()
	if !s.HurstValid {
		t.Fatal("hurst check did not activate")
	}
	if s.HurstErr < 0.10 {
		t.Errorf("mis-modeled stream hurst err = %v, want ~0.15", s.HurstErr)
	}
	if !s.Drifting {
		t.Errorf("mis-modeled stream not flagged (score %v)", s.Drift)
	}
	// The generated traffic still matches its own ACF and marginal — only
	// the Hurst term should fire.
	if s.ACFErr > 0.05 {
		t.Errorf("acf err = %v should stay small (generation matches spec)", s.ACFErr)
	}
}

func TestMonitorWrongMarginalDrifts(t *testing.T) {
	x := fgnPath(t, 0.8, 1<<15, 17)
	ref := fgnRef(0.8, 1024)
	// Claim a marginal shifted by 2σ: every quantile is off by 2 units
	// against a 0.9-0.1 spread of ~2.56.
	ref.Quantile = func(p float64) float64 { return dist.StdNormal.Quantile(p) + 2 }
	m := New(Config{}, ref)
	feed(m, x)
	s := m.Snapshot()
	if s.MarginalErr < 0.5 {
		t.Errorf("marginal err = %v, want ~0.78", s.MarginalErr)
	}
	if !s.Drifting {
		t.Errorf("wrong-marginal stream not flagged (score %v)", s.Drift)
	}
}

func TestMonitorSampling(t *testing.T) {
	x := fgnPath(t, 0.8, 1<<17, 19)
	m := New(Config{SampleEvery: 4}, fgnRef(0.8, 1024))
	feed(m, x)
	s := m.Snapshot()
	want := uint64(1 << 15)
	if s.Frames != want {
		t.Fatalf("sampled frames = %d, want %d", s.Frames, want)
	}
	if !s.HurstValid {
		t.Fatal("hurst check did not activate on sampled stream")
	}
	if s.Drifting {
		t.Errorf("sampled conforming stream flagged drifting (score %v, hurst err %v)", s.Drift, s.HurstErr)
	}
}

func TestMonitorGapResetsACFRun(t *testing.T) {
	x := fgnPath(t, 0.8, 4096, 23)
	m := New(Config{}, fgnRef(0.8, 1024))
	m.Observe(0, x[:1024])
	m.Observe(500000, x[1024:2048]) // seek: not contiguous
	m.Observe(501024, x[2048:3072]) // contiguous with previous
	s := m.Snapshot()
	// Lag-1 products: 1023 within each of the first two runs... the third
	// chunk continues the second run, so 1023 + 2047 = 3070 products.
	for _, lc := range s.ACF {
		if lc.Lag == 1 && lc.N != 3070 {
			t.Errorf("lag-1 products = %v, want 3070 (gap must reset the run)", lc.N)
		}
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	x := fgnPath(t, 0.8, 1<<14, 29)
	m := New(Config{}, fgnRef(0.8, 1024))
	feed(m, x) // reach steady state (P² markers initialized)
	pos := int64(1 << 14)
	chunk := x[:1024]
	allocs := testing.AllocsPerRun(100, func() {
		m.Observe(pos, chunk)
		pos += 1024
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %v per chunk, want 0", allocs)
	}
}

func TestNilAndEmptyMonitor(t *testing.T) {
	var m *Monitor
	if m.Observe(0, []float64{1}) {
		t.Error("nil monitor observed a chunk")
	}
	// An empty Ref tracks stats but never scores drift.
	me := New(Config{MinFrames: 1}, Ref{})
	feed(me, fgnPath(t, 0.9, 1<<15, 31))
	s := me.Snapshot()
	if s.Drift != 0 || s.Drifting {
		t.Errorf("empty-ref monitor scored drift %v", s.Drift)
	}
	if s.Frames != 1<<15 {
		t.Errorf("frames = %d", s.Frames)
	}
}

func BenchmarkObserveChunk(b *testing.B) {
	x := fgnPath(b, 0.8, 1<<14, 1)
	m := New(Config{}, fgnRef(0.8, 1024))
	feed(m, x)
	chunk := x[:1024]
	pos := int64(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(pos, chunk)
		pos += 1024
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*1024), "ns/frame")
}
