// Package statmon implements live statistical self-monitoring of served VBR
// traffic. A Monitor taps frames on the serve path (sampled per chunk,
// zero-copy, allocation-free in steady state) and maintains the three
// distributional checks the paper's offline conformance harness runs after
// the fact: an online aggregated-variance Hurst estimate over dyadic block
// scales, running autocorrelation at a pinned lag set against the session's
// model-implied ACF, and a P² quantile sketch of the marginal against the
// model quantile function. The three errors collapse into a scalar drift
// score; a session whose score crosses the configured threshold is flagged
// as drifting ("is the traffic still self-similar with the H we promised?").
//
// The Hurst check cancels finite-scale estimator bias by fitting the same
// dyadic variance-time regression to the model-implied aggregated variances
// (derived from the implied ACF via var(X^(m)) ∝ m⁻¹[1 + 2Σ(1-k/m)ρ_k]) over
// exactly the scales the live estimate used, then shifting by the gap between
// the session's claimed H and the ACF-implied asymptotic H. For a consistent
// model the reference tracks the estimator's own bias and the error term is
// pure sampling noise; for a mis-modeled session (claimed H ≠ generated H)
// the full gap surfaces in the score.
package statmon

import (
	"math"
	"sync"

	"vbrsim/internal/hurst"
	"vbrsim/internal/stats"
)

// DefaultLags is the pinned ACF lag set: dyadic coverage of the paper's SRD
// knee region (the fitted composite knee sits at lag 60) plus the early LRD
// tail.
func DefaultLags() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128} }

// DefaultQuantiles is the watched marginal quantile set.
func DefaultQuantiles() []float64 { return []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} }

// minLagCount is the product-count floor below which a lag's correlation is
// too noisy to score.
const minLagCount = 256

// marginalStride feeds every 4th observed frame to the quantile sketches.
// The P² update is the most expensive per-frame step (six sketches), and
// quantiles of a stationary marginal lose nothing to stride subsampling —
// unlike the ACF and variance cascade, which need contiguous runs.
const marginalStride = 4

// Config tunes a Monitor. Zero values select the documented defaults.
type Config struct {
	// SampleEvery observes every k-th chunk handed to Observe; <= 1
	// observes every chunk. Sampling is per chunk, not per frame, so each
	// observation is a contiguous run and the ACF/Hurst state stays valid
	// within it.
	SampleEvery int
	// Lags is the pinned ACF lag set (default DefaultLags).
	Lags []int
	// Quantiles is the watched marginal quantile set (default
	// DefaultQuantiles).
	Quantiles []float64
	// HurstTol, ACFTol, MarginTol normalize the three error terms; a term
	// at its tolerance contributes 1.0 to the drift score. Defaults
	// 0.08 / 0.10 / 0.15.
	HurstTol, ACFTol, MarginTol float64
	// DriftThreshold flags the session when the drift score reaches it
	// (default 1.0).
	DriftThreshold float64
	// MinFrames gates drift scoring until enough frames were observed
	// (default 8192).
	MinFrames int
	// MinScale / MaxScale bound the dyadic variance-time fit. MinScale
	// (default 16) excludes the strongly SRD-contaminated scales; MaxScale
	// (default 1024) must not exceed the serve-path chunk size — sampled
	// taps see a series contiguous only within chunks, and larger blocks
	// would mix frames across gaps.
	MinScale, MaxScale int
	// MinBlocks is the completed-block floor per scale (default 32; see
	// hurst.AggVar.Estimate for why fewer biases H low).
	MinBlocks int
}

func (c Config) withDefaults() Config {
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.Lags == nil {
		c.Lags = DefaultLags()
	}
	if c.Quantiles == nil {
		c.Quantiles = DefaultQuantiles()
	}
	if c.HurstTol <= 0 {
		c.HurstTol = 0.08
	}
	if c.ACFTol <= 0 {
		c.ACFTol = 0.10
	}
	if c.MarginTol <= 0 {
		c.MarginTol = 0.15
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 1.0
	}
	if c.MinFrames <= 0 {
		c.MinFrames = 8192
	}
	if c.MinScale <= 0 {
		c.MinScale = 16
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 1024
	}
	if c.MinBlocks <= 0 {
		c.MinBlocks = 32
	}
	return c
}

// Ref is the model the session promised to serve. Zero-valued fields switch
// the corresponding check off, so an empty Ref yields a monitor that tracks
// statistics without ever scoring drift (used for engines whose implied
// moments are not analytically available, e.g. trunk superpositions).
type Ref struct {
	// H is the claimed asymptotic Hurst parameter (Spec.H fit metadata).
	H float64
	// AsymH is the asymptotic H implied by the generating ACF spec. For a
	// consistent model AsymH == H; a gap between them is exactly the
	// mis-modeling the drift score must surface.
	AsymH float64
	// ImpliedACF is the model-implied autocorrelation of served traffic,
	// ρ(0..len-1) with ImpliedACF[0] == 1, long enough to cover MaxScale.
	ImpliedACF []float64
	// Mean is the model mean frame size.
	Mean float64
	// Quantile is the model marginal quantile function.
	Quantile func(p float64) float64
}

// LagCorr is one observed-vs-reference autocorrelation point.
type LagCorr struct {
	Lag      int     `json:"lag"`
	Observed float64 `json:"observed"`
	Ref      float64 `json:"ref"`
	N        float64 `json:"n"`
}

// QuantileEst is one observed-vs-reference marginal quantile point.
type QuantileEst struct {
	P        float64 `json:"p"`
	Observed float64 `json:"observed"`
	Ref      float64 `json:"ref,omitempty"`
}

// Snapshot is a point-in-time summary of a session's observed statistics,
// served by GET /v1/sessions/{id}/stats.
type Snapshot struct {
	Frames      uint64        `json:"frames_observed"`
	Mean        float64       `json:"mean"`
	Variance    float64       `json:"variance"`
	Hurst       float64       `json:"hurst,omitempty"`
	HurstRef    float64       `json:"hurst_ref,omitempty"`
	HurstErr    float64       `json:"hurst_err,omitempty"`
	HurstValid  bool          `json:"hurst_valid"`
	ACF         []LagCorr     `json:"acf,omitempty"`
	ACFErr      float64       `json:"acf_err"`
	Quantiles   []QuantileEst `json:"quantiles,omitempty"`
	MarginalErr float64       `json:"marginal_err"`
	Drift       float64       `json:"drift"`
	Drifting    bool          `json:"drifting"`
}

// Monitor holds the streaming state for one session. All methods are safe
// for concurrent use; the lock is taken once per observed chunk, never per
// frame, and Observe never blocks on anything a metrics scrape holds.
type Monitor struct {
	mu  sync.Mutex
	cfg Config
	ref Ref

	tick    int   // chunks since last observation (sampling)
	nextPos int64 // expected position of the next contiguous chunk
	run     int   // contiguous frames since the last gap

	hasOff  bool
	off     float64 // centering offset: first observed frame
	n       float64 // frames observed
	sum     float64 // Σ (x - off)
	sum2    float64 // Σ (x - off)²
	agg     hurst.AggVar
	ring    []float64 // last ringMask+1 centered values (power-of-two size)
	ringMsk int
	w       int // ring write index
	maxLag  int
	lagProd []float64 // Σ d_t · d_{t-lag}, per configured lag
	lagN    []float64
	sketch  []p2  // one per configured quantile
	stride  uint8 // marginal subsampling phase

	refACF    []float64 // implied ρ at cfg.Lags (nil → ACF check off)
	refLogVar []float64 // model-implied log10 var(X^(m)) per dyadic level
	refScale  float64   // marginal normalization: ref q(0.9) - q(0.1)
}

// New builds a Monitor for a session promising ref under cfg.
func New(cfg Config, ref Ref) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{cfg: cfg, ref: ref}
	for _, lag := range cfg.Lags {
		if lag > m.maxLag {
			m.maxLag = lag
		}
	}
	ringLen := 1
	for ringLen < m.maxLag {
		ringLen <<= 1
	}
	m.ring = make([]float64, ringLen)
	m.ringMsk = ringLen - 1
	m.lagProd = make([]float64, len(cfg.Lags))
	m.lagN = make([]float64, len(cfg.Lags))
	m.sketch = make([]p2, len(cfg.Quantiles))
	for i, p := range cfg.Quantiles {
		m.sketch[i] = newP2(p)
	}
	if len(ref.ImpliedACF) > m.maxLag {
		m.refACF = make([]float64, len(cfg.Lags))
		for i, lag := range cfg.Lags {
			m.refACF[i] = ref.ImpliedACF[lag]
		}
	}
	if len(ref.ImpliedACF) >= cfg.MaxScale {
		m.refLogVar = impliedLogVar(ref.ImpliedACF, cfg.MaxScale)
	}
	if ref.Quantile != nil {
		if s := ref.Quantile(0.9) - ref.Quantile(0.1); s > 0 {
			m.refScale = s
		}
	}
	return m
}

// impliedLogVar maps an implied ACF to log10 var(X^(m)) on the dyadic grid
// (unit marginal variance — the regression slope is scale-invariant):
// var(X^(m)) = (1/m)[1 + 2 Σ_{k=1}^{m-1} (1 - k/m) ρ(k)].
func impliedLogVar(rho []float64, maxScale int) []float64 {
	var out []float64
	for m := 1; m <= maxScale && m <= len(rho); m <<= 1 {
		s := 1.0
		for k := 1; k < m; k++ {
			s += 2 * (1 - float64(k)/float64(m)) * rho[k]
		}
		v := s / float64(m)
		if v <= 0 {
			// Implied variance collapsed (pathological ACF); stop the
			// grid here rather than emit -Inf.
			break
		}
		out = append(out, math.Log10(v))
	}
	return out
}

// Observe feeds one contiguous chunk of served frames starting at absolute
// stream position pos. It reports whether the chunk was actually observed
// (sampling may skip it). Observe is allocation-free and does not retain
// frames.
func (m *Monitor) Observe(pos int64, frames []float64) bool {
	if m == nil || len(frames) == 0 {
		return false
	}
	m.mu.Lock()
	if m.cfg.SampleEvery > 1 {
		m.tick++
		if m.tick < m.cfg.SampleEvery {
			m.mu.Unlock()
			return false
		}
		m.tick = 0
	}
	if pos != m.nextPos {
		// Gap (seek, skipped chunk, interleaved request): the ring no
		// longer holds the preceding lags.
		m.run = 0
	}
	m.nextPos = pos + int64(len(frames))
	if !m.hasOff {
		m.off = frames[0]
		m.hasOff = true
	}
	lags, ring, msk := m.cfg.Lags, m.ring, m.ringMsk
	lagProd, lagN := m.lagProd, m.lagN
	for _, x := range frames {
		d := x - m.off
		m.n++
		m.sum += d
		m.sum2 += d * d
		m.agg.Push(x)
		if m.run >= m.maxLag {
			// Steady state: every lag has history; no run checks.
			for j, lag := range lags {
				lagProd[j] += d * ring[(m.w-lag)&msk]
			}
		} else {
			for j, lag := range lags {
				if m.run >= lag {
					lagProd[j] += d * ring[(m.w-lag)&msk]
					lagN[j]++
				}
			}
		}
		ring[m.w&msk] = d
		m.w = (m.w + 1) & msk
		m.run++
		if m.stride++; m.stride >= marginalStride {
			m.stride = 0
			for i := range m.sketch {
				m.sketch[i].push(x)
			}
		}
	}
	if m.run >= m.maxLag {
		// Fold the steady-state product counts in one shot per chunk: each
		// lag gained one product per frame once past warmup. Splitting the
		// chunk at the warmup boundary keeps the counts exact.
		steady := float64(len(frames))
		if over := m.run - len(frames); over < m.maxLag {
			steady = float64(m.run - m.maxLag)
		}
		for j := range lagN {
			lagN[j] += steady
		}
	}
	m.mu.Unlock()
	return true
}

// Snapshot computes the current summary and drift score. It allocates (plot
// slices, fit buffers) and is meant for the stats endpoint and metric
// collection, not the frame path.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	s.Frames = uint64(m.n)
	if m.n > 0 {
		mean := m.sum / m.n
		s.Mean = m.off + mean
		s.Variance = m.sum2/m.n - mean*mean
	}
	m.snapshotHurst(&s)
	m.snapshotACF(&s)
	m.snapshotMarginal(&s)
	if s.Frames >= uint64(m.cfg.MinFrames) {
		if s.HurstValid && m.cfg.HurstTol > 0 {
			s.Drift = math.Max(s.Drift, s.HurstErr/m.cfg.HurstTol)
		}
		if len(s.ACF) > 0 {
			s.Drift = math.Max(s.Drift, s.ACFErr/m.cfg.ACFTol)
		}
		if m.refScale > 0 {
			s.Drift = math.Max(s.Drift, s.MarginalErr/m.cfg.MarginTol)
		}
		s.Drifting = s.Drift >= m.cfg.DriftThreshold
	}
	return s
}

func (m *Monitor) snapshotHurst(s *Snapshot) {
	est, err := m.agg.Estimate(m.cfg.MinScale, m.cfg.MaxScale, m.cfg.MinBlocks)
	if err != nil {
		return
	}
	s.Hurst = est.H
	// The check needs a reference: the model-implied variance-time curve
	// fit over exactly the scales the live estimate used (so finite-scale
	// bias cancels), shifted by the claimed-vs-implied asymptotic gap.
	if m.refLogVar == nil {
		return
	}
	refH := m.ref.H
	if refH == 0 {
		refH = m.ref.AsymH
	}
	if refH == 0 {
		return
	}
	var rx, ry []float64
	for _, lx := range est.X {
		level := int(math.Round(math.Log2(math.Round(math.Pow(10, lx)))))
		if level < 0 || level >= len(m.refLogVar) {
			return // live fit used a scale the ref curve cannot cover
		}
		rx = append(rx, lx)
		ry = append(ry, m.refLogVar[level])
	}
	slope, _, _, err2 := stats.LinearFit(rx, ry)
	if err2 != nil {
		return
	}
	modelFiniteH := 1 + slope/2
	asym := m.ref.AsymH
	if asym == 0 {
		asym = refH
	}
	s.HurstRef = modelFiniteH + (refH - asym)
	s.HurstErr = math.Abs(est.H - s.HurstRef)
	s.HurstValid = true
}

func (m *Monitor) snapshotACF(s *Snapshot) {
	if m.n < 2 {
		return
	}
	mean := m.sum / m.n
	variance := m.sum2/m.n - mean*mean
	if variance <= 0 {
		return
	}
	for j, lag := range m.cfg.Lags {
		if m.lagN[j] < minLagCount {
			continue
		}
		rho := (m.lagProd[j]/m.lagN[j] - mean*mean) / variance
		lc := LagCorr{Lag: lag, Observed: rho, N: m.lagN[j]}
		if m.refACF != nil {
			lc.Ref = m.refACF[j]
			if e := math.Abs(rho - lc.Ref); e > s.ACFErr {
				s.ACFErr = e
			}
		}
		s.ACF = append(s.ACF, lc)
	}
	if m.refACF == nil {
		s.ACFErr = 0
	}
}

func (m *Monitor) snapshotMarginal(s *Snapshot) {
	for i, p := range m.cfg.Quantiles {
		qe := QuantileEst{P: p, Observed: m.sketch[i].quantile()}
		if m.ref.Quantile != nil {
			qe.Ref = m.ref.Quantile(p)
			if m.refScale > 0 && m.sketch[i].cnt >= 5 {
				if e := math.Abs(qe.Observed-qe.Ref) / m.refScale; e > s.MarginalErr {
					s.MarginalErr = e
				}
			}
		}
		s.Quantiles = append(s.Quantiles, qe)
	}
}

// Drifting reports whether the current drift score is at or above the
// configured threshold (a Snapshot shortcut for the metrics rollup).
func (m *Monitor) Drifting() bool { return m.Snapshot().Drifting }
