package statmon

import "sort"

// p2 is the Jain–Chlamtac P² streaming quantile estimator: five markers
// tracking the running p-quantile with O(1) state and O(1) work per
// observation, no allocation after construction. It is deliberately tiny —
// the monitor embeds one per watched quantile inside a fixed array.
type p2 struct {
	p    float64
	cnt  int        // observations seen
	q    [5]float64 // marker heights
	n    [5]float64 // marker positions (1-based counts, integral values)
	np   [5]float64 // desired marker positions
	dnp  [5]float64 // desired-position increments
	init [5]float64 // first five observations, pre-steady-state
}

func newP2(p float64) p2 {
	return p2{
		p:   p,
		dnp: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

func (s *p2) push(x float64) {
	if s.cnt < 5 {
		s.init[s.cnt] = x
		s.cnt++
		if s.cnt == 5 {
			// Sort the five seeds in place (insertion sort: fixed size,
			// no allocation) and initialize the markers.
			for i := 1; i < 5; i++ {
				v := s.init[i]
				j := i - 1
				for j >= 0 && s.init[j] > v {
					s.init[j+1] = s.init[j]
					j--
				}
				s.init[j+1] = v
			}
			s.q = s.init
			s.n = [5]float64{1, 2, 3, 4, 5}
			p := s.p
			s.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	s.cnt++
	// Locate the cell k with q[k] <= x < q[k+1], extending the extremes.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.n[i]++
	}
	for i := 0; i < 5; i++ {
		s.np[i] += s.dnp[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.np[i] - s.n[i]
		if (d >= 1 && s.n[i+1]-s.n[i] > 1) || (d <= -1 && s.n[i-1]-s.n[i] < -1) {
			sg := 1.0
			if d < 0 {
				sg = -1.0
			}
			qp := s.parabolic(i, sg)
			if s.q[i-1] < qp && qp < s.q[i+1] {
				s.q[i] = qp
			} else {
				s.q[i] = s.linear(i, sg)
			}
			s.n[i] += sg
		}
	}
}

func (s *p2) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.n[i+1]-s.n[i-1])*
		((s.n[i]-s.n[i-1]+d)*(s.q[i+1]-s.q[i])/(s.n[i+1]-s.n[i])+
			(s.n[i+1]-s.n[i]-d)*(s.q[i]-s.q[i-1])/(s.n[i]-s.n[i-1]))
}

func (s *p2) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.n[j]-s.n[i])
}

// quantile returns the current estimate. Before five observations it falls
// back to the order statistic of what has been seen (allocating a tiny sorted
// copy — this runs only from Snapshot, never on the frame path).
func (s *p2) quantile() float64 {
	if s.cnt >= 5 {
		return s.q[2]
	}
	if s.cnt == 0 {
		return 0
	}
	buf := append([]float64(nil), s.init[:s.cnt]...)
	sort.Float64s(buf)
	idx := int(s.p * float64(s.cnt))
	if idx >= s.cnt {
		idx = s.cnt - 1
	}
	return buf[idx]
}
