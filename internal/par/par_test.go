package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, jobs, want int
	}{
		{0, 100, max},
		{-3, 100, max},
		{4, 100, 4},
		{8, 3, 3},
		{8, 0, 1},
		{1, 100, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		}
	}
}

// TestForCoversEveryIndexOnce checks each job index runs exactly once for a
// range of worker counts, including workers > n.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		const n = 53
		var counts [n]int32
		For(workers, n, func(worker, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForInlineZeroAlloc(t *testing.T) {
	sink := 0
	fn := func(worker, i int) { sink += i }
	allocs := testing.AllocsPerRun(10, func() {
		For(1, 100, fn)
	})
	if allocs != 0 {
		t.Fatalf("inline For allocates %v/op, want 0", allocs)
	}
}

// TestForCtxFirstErrorByIndex checks the returned error is the one from the
// lowest failing index regardless of worker count.
func TestForCtxFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 4, 8} {
		err := ForCtx(context.Background(), workers, 40, func(worker, i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForCtx(ctx, 4, 1000, func(worker, i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Error("cancellation did not stop the loop early")
	}
}

func TestForCtxCompletes(t *testing.T) {
	var counts [17]int32
	if err := ForCtx(context.Background(), 5, len(counts), func(worker, i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}
