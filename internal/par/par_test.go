package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, jobs, want int
	}{
		{0, 100, max},
		{-3, 100, max},
		{4, 100, 4},
		{8, 3, 3},
		{8, 0, 1},
		{1, 100, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		}
	}
}

// TestForCoversEveryIndexOnce checks each job index runs exactly once for a
// range of worker counts, including workers > n.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		const n = 53
		var counts [n]int32
		For(workers, n, func(worker, i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForChunksCoversRangeOnce checks the chunk ranges tile [0, n) exactly
// once for a range of worker counts, and that they match For's chunking —
// the sticky-affinity contract is that the same (workers, n) always hands
// the same indices to the same worker slot.
func TestForChunksCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		const n = 53
		var counts [n]int32
		owner := make([]int32, n)
		for i := range owner {
			owner[i] = -1
		}
		ForChunks(workers, n, func(worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
				atomic.StoreInt32(&owner[i], int32(worker))
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		// Same mapping as For: worker w owns [w*chunk, (w+1)*chunk).
		w := workers
		if w > n {
			w = n
		}
		chunk := (n + w - 1) / w
		for i := range owner {
			if want := int32(i / chunk); owner[i] != want {
				t.Fatalf("workers=%d: index %d ran on worker %d, want %d", workers, i, owner[i], want)
			}
		}
		// Repeat runs hand every index to the same slot (sticky affinity).
		ForChunks(workers, n, func(worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				if owner[i] != int32(worker) {
					t.Errorf("workers=%d: index %d moved from worker %d to %d", workers, i, owner[i], worker)
				}
			}
		})
	}
}

func TestForChunksInlineZeroAlloc(t *testing.T) {
	sink := 0
	fn := func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink += i
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		ForChunks(1, 100, fn)
	})
	if allocs != 0 {
		t.Fatalf("inline ForChunks allocates %v/op, want 0", allocs)
	}
}

func TestForInlineZeroAlloc(t *testing.T) {
	sink := 0
	fn := func(worker, i int) { sink += i }
	allocs := testing.AllocsPerRun(10, func() {
		For(1, 100, fn)
	})
	if allocs != 0 {
		t.Fatalf("inline For allocates %v/op, want 0", allocs)
	}
}

// TestForCtxFirstErrorByIndex checks the returned error is the one from the
// lowest failing index regardless of worker count.
func TestForCtxFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 4, 8} {
		err := ForCtx(context.Background(), workers, 40, func(worker, i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForCtx(ctx, 4, 1000, func(worker, i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Error("cancellation did not stop the loop early")
	}
}

func TestForCtxCompletes(t *testing.T) {
	var counts [17]int32
	if err := ForCtx(context.Background(), 5, len(counts), func(worker, i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}
