package par

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

// fanOutFill computes a deterministic per-index value; any change in which
// job index produces which slot value is a bit-level diff.
func fanOutFill(p *Pool, n int) []uint64 {
	out := make([]uint64, n)
	p.For(n, func(_, i int) {
		v := math.Sin(float64(i)*1.618) * math.Exp(float64(i%17))
		out[i] = math.Float64bits(v)
	})
	return out
}

// TestPoolStatsBitIdentity is the satellite gate: enabling stats must not
// change fan-out results for any worker count.
func TestPoolStatsBitIdentity(t *testing.T) {
	const n = 257 // odd length so chunks are ragged
	for workers := 1; workers <= 8; workers++ {
		plain := NewPool(workers)
		want := fanOutFill(plain, n)

		stats := NewPool(workers)
		stats.EnableStats(true)
		got := fanOutFill(stats, n)

		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d differs with stats on: %x != %x",
					workers, i, got[i], want[i])
			}
		}
		st := stats.Stats()
		if st.Tasks != n {
			t.Fatalf("workers=%d: tasks = %d, want %d", workers, st.Tasks, n)
		}
		if st.Runs != 1 || st.PeakInFlight < 1 || st.PeakInFlight > workers {
			t.Fatalf("workers=%d: stats = %+v", workers, st)
		}
		if len(st.Busy) != Workers(workers, n) {
			t.Fatalf("workers=%d: busy slots = %d", workers, len(st.Busy))
		}
		if plain.Stats().Tasks != 0 {
			t.Fatal("stats accumulated with collection disabled")
		}
	}
}

func TestPoolStatsAccumulate(t *testing.T) {
	p := NewPool(4)
	p.EnableStats(true)
	p.For(100, func(_, _ int) {})
	if err := p.ForCtx(context.Background(), 50, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Runs != 2 || st.Tasks != 150 {
		t.Fatalf("accumulated stats = %+v", st)
	}
	if st.BusyTotal() < 0 || st.Utilization() < 0 || st.Utilization() > 1.000001 {
		t.Fatalf("derived stats out of range: busy=%v util=%v", st.BusyTotal(), st.Utilization())
	}
	p.Reset()
	if p.Stats().Tasks != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestPoolForCtxErrorWithStats(t *testing.T) {
	p := NewPool(4)
	p.EnableStats(true)
	boom := errors.New("boom")
	err := p.ForCtx(context.Background(), 100, func(_, i int) error {
		if i == 31 || i == 77 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestObserverReceivesRunStats checks the global observer hook fires for
// the package-level helpers and that results stay identical while it is
// installed. Not parallel: the observer is process-wide.
func TestObserverReceivesRunStats(t *testing.T) {
	const n = 64
	base := make([]uint64, n)
	For(4, n, func(_, i int) { base[i] = math.Float64bits(math.Cos(float64(i))) })

	var runs []RunStats
	SetObserver(func(st RunStats) { runs = append(runs, st) })
	defer SetObserver(nil)

	got := make([]uint64, n)
	For(4, n, func(_, i int) { got[i] = math.Float64bits(math.Cos(float64(i))) })
	if err := ForCtx(context.Background(), 2, n, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}

	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("index %d differs with observer installed", i)
		}
	}
	if len(runs) != 2 {
		t.Fatalf("observer saw %d runs, want 2", len(runs))
	}
	if runs[0].Tasks != n || runs[0].Workers != 4 {
		t.Fatalf("first run stats = %+v", runs[0])
	}
	if runs[1].Workers != 2 {
		t.Fatalf("second run stats = %+v", runs[1])
	}
}

// TestObserverForChunks checks the instrumented ForChunks path keeps the
// exact chunking of the plain path (every index once, same owner slots)
// while reporting the run to the observer.
func TestObserverForChunks(t *testing.T) {
	const n = 53
	const workers = 4
	plain := make([]int32, n)
	ForChunks(workers, n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.StoreInt32(&plain[i], int32(worker))
		}
	})

	var runs []RunStats
	SetObserver(func(st RunStats) { runs = append(runs, st) })
	defer SetObserver(nil)

	var counts [n]int32
	ForChunks(workers, n, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
			if plain[i] != int32(worker) {
				t.Errorf("index %d: instrumented owner %d, plain owner %d", i, worker, plain[i])
			}
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times under the observer", i, c)
		}
	}
	if len(runs) != 1 || runs[0].Tasks != n || runs[0].Workers != workers {
		t.Fatalf("observer runs = %+v", runs)
	}
}

func TestObserverInlinePath(t *testing.T) {
	var got *RunStats
	SetObserver(func(st RunStats) { got = &st })
	defer SetObserver(nil)
	For(1, 10, func(_, _ int) {})
	if got == nil || got.Workers != 1 || got.Tasks != 10 || got.PeakInFlight != 1 {
		t.Fatalf("inline run stats = %+v", got)
	}
}
