package par

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// RunStats describes one fan-out run (or, for Pool, an accumulation of
// runs): how many workers actually ran, how many tasks they executed, the
// peak number of concurrently running workers, and per-worker-slot busy
// time. Collection costs two clock reads per worker per run and is only
// paid when an observer or a stats-enabled Pool asks for it — the
// default paths are untouched, and instrumentation never changes which
// worker slot executes which job index, so results stay bit-identical.
type RunStats struct {
	Runs         int
	Workers      int
	Tasks        int
	PeakInFlight int
	Busy         []time.Duration // indexed by worker slot
	Wall         time.Duration
}

// BusyTotal returns the summed busy time across worker slots.
func (s RunStats) BusyTotal() time.Duration {
	var t time.Duration
	for _, b := range s.Busy {
		t += b
	}
	return t
}

// Utilization is the fraction of available worker-time actually spent in
// fn: BusyTotal / (Wall * Workers). 1.0 means perfectly balanced chunks.
func (s RunStats) Utilization() float64 {
	if s.Wall <= 0 || s.Workers <= 0 {
		return 0
	}
	return float64(s.BusyTotal()) / (float64(s.Wall) * float64(s.Workers))
}

// observer is the process-wide run observer. It is consulted once per
// For/ForCtx call with a single atomic load, so the nil (disabled) case
// adds no allocations and no locks to the fan-out paths.
var observer atomic.Pointer[func(RunStats)]

// SetObserver installs fn to receive a RunStats after every For/ForCtx
// run (nil uninstalls). Intended for a single consumer — trafficd's
// metrics layer or a CLI tracer; a later SetObserver replaces the earlier
// one. fn must be safe for concurrent calls.
func SetObserver(fn func(RunStats)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

func notifyObserver(st RunStats) {
	if p := observer.Load(); p != nil {
		(*p)(st)
	}
}

// instrumentedFor is For with stats collection. Chunking and the
// worker-slot-to-index mapping are identical to For; only clock reads and
// an in-flight counter are added.
func instrumentedFor(workers, n int, fn func(worker, i int)) RunStats {
	st := RunStats{Runs: 1, Workers: workers, Tasks: n, Busy: make([]time.Duration, workers)}
	start := time.Now()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		st.Busy[0] = time.Since(start)
		st.PeakInFlight = 1
		st.Wall = st.Busy[0]
		return st
	}
	var inFlight, peak atomic.Int64
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			t0 := time.Now()
			for i := lo; i < hi; i++ {
				fn(w, i)
			}
			st.Busy[w] = time.Since(t0)
			inFlight.Add(-1)
		}(w, lo, hi)
	}
	wg.Wait()
	st.PeakInFlight = int(peak.Load())
	st.Wall = time.Since(start)
	return st
}

// instrumentedForChunks is ForChunks with stats collection. Chunking and
// the worker-slot-to-range mapping are identical to ForChunks; only clock
// reads and an in-flight counter are added.
func instrumentedForChunks(workers, n int, fn func(worker, lo, hi int)) RunStats {
	st := RunStats{Runs: 1, Workers: workers, Tasks: n, Busy: make([]time.Duration, workers)}
	start := time.Now()
	if workers <= 1 {
		fn(0, 0, n)
		st.Busy[0] = time.Since(start)
		st.PeakInFlight = 1
		st.Wall = st.Busy[0]
		return st
	}
	var inFlight, peak atomic.Int64
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			t0 := time.Now()
			fn(w, lo, hi)
			st.Busy[w] = time.Since(t0)
			inFlight.Add(-1)
		}(w, lo, hi)
	}
	wg.Wait()
	st.PeakInFlight = int(peak.Load())
	st.Wall = time.Since(start)
	return st
}

// instrumentedForCtx mirrors ForCtx's cancellation and lowest-index error
// semantics with stats collection.
func instrumentedForCtx(ctx context.Context, workers, n int, fn func(worker, i int) error) (RunStats, error) {
	st := RunStats{Runs: 1, Workers: workers, Tasks: n, Busy: make([]time.Duration, workers)}
	start := time.Now()
	if workers <= 1 {
		var err error
		for i := 0; i < n; i++ {
			if err = ctx.Err(); err != nil {
				break
			}
			if err = fn(0, i); err != nil {
				break
			}
		}
		st.Busy[0] = time.Since(start)
		st.PeakInFlight = 1
		st.Wall = st.Busy[0]
		return st, err
	}
	chunk := (n + workers - 1) / workers
	type failure struct {
		i   int
		err error
	}
	fails := make([]failure, workers)
	for w := range fails {
		fails[w].i = n
	}
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			t0 := time.Now()
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					break
				}
				if err := fn(w, i); err != nil {
					fails[w] = failure{i: i, err: err}
					break
				}
			}
			st.Busy[w] = time.Since(t0)
			inFlight.Add(-1)
		}(w, lo, hi)
	}
	wg.Wait()
	st.PeakInFlight = int(peak.Load())
	st.Wall = time.Since(start)
	if err := ctx.Err(); err != nil {
		return st, err
	}
	first := failure{i: n}
	for _, f := range fails {
		if f.err != nil && f.i < first.i {
			first = f
		}
	}
	return st, first.err
}

// ---------------------------------------------------------------------------
// Pool

// Pool is a reusable fan-out front end that can accumulate RunStats across
// runs: tasks executed, peak in-flight workers, and per-worker busy time.
// Stats collection is off by default; when off, Pool.For/ForCtx are exactly
// the package-level For/ForCtx (same chunking, same inline fast path), so
// enabling stats later never changes results — only adds clock reads.
type Pool struct {
	workers int

	mu      sync.Mutex
	collect bool
	acc     RunStats
}

// NewPool returns a pool that resolves its worker count per run via
// Workers(workers, n).
func NewPool(workers int) *Pool {
	return &Pool{workers: workers}
}

// EnableStats turns accumulation on (true) or off (false). Toggling does
// not reset previously accumulated stats; use Reset for that.
func (p *Pool) EnableStats(on bool) {
	p.mu.Lock()
	p.collect = on
	p.mu.Unlock()
}

// Reset clears the accumulated stats.
func (p *Pool) Reset() {
	p.mu.Lock()
	p.acc = RunStats{}
	p.mu.Unlock()
}

// Stats returns a copy of the stats accumulated so far.
func (p *Pool) Stats() RunStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.acc
	out.Busy = append([]time.Duration(nil), p.acc.Busy...)
	return out
}

func (p *Pool) absorb(st RunStats) {
	p.mu.Lock()
	p.acc.Runs += st.Runs
	p.acc.Tasks += st.Tasks
	if st.Workers > p.acc.Workers {
		p.acc.Workers = st.Workers
	}
	if st.PeakInFlight > p.acc.PeakInFlight {
		p.acc.PeakInFlight = st.PeakInFlight
	}
	for len(p.acc.Busy) < len(st.Busy) {
		p.acc.Busy = append(p.acc.Busy, 0)
	}
	for i, b := range st.Busy {
		p.acc.Busy[i] += b
	}
	p.acc.Wall += st.Wall
	p.mu.Unlock()
}

// For runs fn over [0, n) with the pool's worker count.
func (p *Pool) For(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(p.workers, n)
	p.mu.Lock()
	collect := p.collect
	p.mu.Unlock()
	if !collect {
		For(w, n, fn)
		return
	}
	st := instrumentedFor(w, n, fn)
	p.absorb(st)
	notifyObserver(st)
}

// ForCtx runs fn over [0, n) with cancellation, like the package ForCtx.
func (p *Pool) ForCtx(ctx context.Context, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(p.workers, n)
	p.mu.Lock()
	collect := p.collect
	p.mu.Unlock()
	if !collect {
		return ForCtx(ctx, w, n, fn)
	}
	st, err := instrumentedForCtx(ctx, w, n, fn)
	p.absorb(st)
	notifyObserver(st)
	return err
}
