// Package par provides the small deterministic fan-out helpers shared by
// every replication loop in the library (queue Monte Carlo, importance
// sampling, attenuation measurement, conformance replication bands).
//
// The helpers deliberately do NOT hide how work maps to results: callers
// index per-job state (seeds, output slots) by the job index i, never by the
// worker index, so results are bit-identical for any worker count. Workers
// exist only to overlap CPU time; they own scratch arenas, not randomness.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), and the result is clamped to [1, jobs] so callers
// never spawn idle goroutines.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if jobs < 1 {
		jobs = 1
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(worker, i) for every i in [0, n), fanning the index range
// across the given number of workers in contiguous chunks. fn receives the
// worker slot (0..workers-1) for scratch-arena lookup and the job index i for
// everything that affects results. With workers <= 1 the loop runs inline on
// the calling goroutine and performs no allocations.
func For(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if observer.Load() != nil {
		notifyObserver(instrumentedFor(workers, n, fn))
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(w, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForChunks runs fn(worker, lo, hi) once per worker slot, where [lo, hi) is
// the contiguous chunk of [0, n) that slot owns — the same chunking For
// computes, exposed as whole ranges. The worker→range mapping depends only
// on (workers, n), so repeated calls with the same arguments hand every
// index to the same worker slot: callers that key per-worker state (scratch
// arenas, cache-warm session runs) get stable affinity across rounds, and a
// worker walks one contiguous run of jobs instead of striped indices. As
// with For, per-job state must be indexed by job index, never by worker, so
// results are bit-identical for any worker count. With workers <= 1 the
// whole range runs inline on the calling goroutine with no allocations.
func ForChunks(workers, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if observer.Load() != nil {
		notifyObserver(instrumentedForChunks(workers, n, fn))
		return
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// ForCtx is For with cancellation and error propagation: each worker checks
// ctx between jobs and stops its chunk on the first error. ForCtx returns the
// error of the lowest-indexed failing job (deterministic regardless of worker
// interleaving), or the context error if the run was cancelled.
func ForCtx(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if observer.Load() != nil {
		st, err := instrumentedForCtx(ctx, workers, n, fn)
		notifyObserver(st)
		return err
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	chunk := (n + workers - 1) / workers
	type failure struct {
		i   int
		err error
	}
	fails := make([]failure, workers)
	for w := range fails {
		fails[w].i = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				if err := fn(w, i); err != nil {
					fails[w] = failure{i: i, err: err}
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	first := failure{i: n}
	for _, f := range fails {
		if f.err != nil && f.i < first.i {
			first = f
		}
	}
	return first.err
}
