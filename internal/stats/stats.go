// Package stats provides the descriptive statistics used throughout the
// library: moments, autocorrelation, histograms, empirical CDFs and
// quantiles, Q-Q pairs, least-squares regression (linear and log-log), and
// the block aggregation X^(m) used by variance-time analysis.
package stats

import (
	"errors"
	"math"
	"sort"

	"vbrsim/internal/fft"
)

// ErrEmpty is returned by operations that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// ErrNaN is returned by constructors whose order-statistic invariants a NaN
// observation would silently corrupt (sorting is not a total order with
// NaN present).
var ErrNaN = errors.New("stats: sample contains NaN")

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the biased (divide-by-n) sample variance of x.
// The biased form matches the classical time-series conventions used by the
// paper's variance-time analysis.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// SampleVariance returns the unbiased (divide-by-n-1) sample variance.
func SampleVariance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	return Variance(x) * float64(n) / float64(n-1)
}

// StdDev returns the square root of the biased sample variance.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MeanVar returns mean and biased variance in a single pass.
func MeanVar(x []float64) (mean, variance float64) {
	n := len(x)
	if n == 0 {
		return 0, 0
	}
	// Welford's algorithm for numerical stability on long traces.
	var m, m2 float64
	for i, v := range x {
		delta := v - m
		m += delta / float64(i+1)
		m2 += delta * (v - m)
	}
	return m, m2 / float64(n)
}

// Skewness returns the standardized third central moment of x.
func Skewness(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	m, v := MeanVar(x)
	if v == 0 {
		return 0
	}
	var s float64
	for _, xv := range x {
		d := xv - m
		s += d * d * d
	}
	return s / float64(n) / math.Pow(v, 1.5)
}

// Min and Max return the extrema of x; both return 0 for empty input.
func Min(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of x, or 0 for empty input.
func Max(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Autocorrelation returns the sample autocorrelation of x at lags 0..maxLag.
// It delegates to the FFT implementation, which is exact (up to rounding) and
// O(n log n).
func Autocorrelation(x []float64, maxLag int) []float64 {
	return fft.Autocorrelation(x, maxLag)
}

// Autocovariance returns the biased sample autocovariance at lags 0..maxLag.
func Autocovariance(x []float64, maxLag int) []float64 {
	return fft.Autocovariance(x, maxLag)
}

// AutocorrelationKnownMean is Autocorrelation computed around an externally
// known process mean instead of the sample mean. Use it when the true mean
// is known (e.g. zero-mean synthetic Gaussian processes): it removes the
// negative bias the sample-mean estimator suffers on LRD series.
func AutocorrelationKnownMean(x []float64, mean float64, maxLag int) []float64 {
	return fft.AutocorrelationKnownMean(x, mean, maxLag)
}

// AutocovarianceKnownMean is Autocovariance around a known process mean.
func AutocovarianceKnownMean(x []float64, mean float64, maxLag int) []float64 {
	return fft.AutocovarianceKnownMean(x, mean, maxLag)
}

// Aggregate returns the aggregated process X^(m) of the paper:
// X^(m)_k = (X_{km-m+1} + ... + X_{km}) / m. The trailing partial block is
// dropped. Aggregate panics if m <= 0.
func Aggregate(x []float64, m int) []float64 {
	if m <= 0 {
		panic("stats: Aggregate with non-positive m")
	}
	nBlocks := len(x) / m
	out := make([]float64, nBlocks)
	for b := 0; b < nBlocks; b++ {
		var s float64
		for i := b * m; i < (b+1)*m; i++ {
			s += x[i]
		}
		out[b] = s / float64(m)
	}
	return out
}

// LinearFit fits y = slope*x + intercept by ordinary least squares and also
// returns the coefficient of determination R^2. It returns ErrEmpty when
// fewer than two points are supplied, and an error when all x are identical.
func LinearFit(x, y []float64) (slope, intercept, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	n := len(x)
	if n < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: LinearFit degenerate x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return slope, intercept, r2, nil
}

// LogLogFit fits log10(y) = slope*log10(x) + intercept, skipping any pair
// with a non-positive coordinate. It is the fit used for variance-time and
// pox plots.
func LogLogFit(x, y []float64) (slope, intercept, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, errors.New("stats: LogLogFit length mismatch")
	}
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log10(x[i]))
			ly = append(ly, math.Log10(y[i]))
		}
	}
	return LinearFit(lx, ly)
}

// Histogram is a fixed-width binned frequency count over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64 // range covered by the bins
	Counts []int   // one count per bin
	N      int     // total observations, including out-of-range ones
	Below  int     // observations < Lo
	Above  int     // observations >= Hi
}

// NewHistogram bins x into bins equal-width bins spanning [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(x []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bins")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, v := range x {
		h.N++
		switch {
		case v < lo:
			h.Below++
		case v >= hi:
			h.Above++
		default:
			idx := int((v - lo) / width)
			if idx >= bins { // guard rounding at the top edge
				idx = bins - 1
			}
			h.Counts[idx]++
		}
	}
	return h
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Frequencies returns the per-bin relative frequencies (counts divided by
// the total number of observations, including out-of-range ones).
func (h *Histogram) Frequencies() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}

// ECDF is an empirical cumulative distribution function built from a sample.
// The zero value is not usable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample. It returns ErrEmpty for empty input
// and ErrNaN when the sample contains NaN (which would break the sorted-
// order invariant every query relies on). Infinities are allowed: they sort
// to the ends and behave as ordinary extreme observations.
func NewECDF(x []float64) (*ECDF, error) {
	if len(x) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	// After sorting, any NaN has been moved to the front (sort.Float64s
	// orders NaN before everything), so one check suffices.
	if math.IsNaN(s[0]) {
		return nil, ErrNaN
	}
	return &ECDF{sorted: s}, nil
}

// CDF returns the fraction of the sample <= v.
func (e *ECDF) CDF(v float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= v; we want
	// the count of values <= v.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > v })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile of the sample for p in [0,1], using linear
// interpolation between order statistics (type-7, the common default).
// Values of p outside [0,1] are clamped; a NaN p yields NaN.
func (e *ECDF) Quantile(p float64) float64 {
	n := len(e.sorted)
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	h := p * float64(n-1)
	i := int(math.Floor(h))
	frac := h - float64(i)
	if i+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[i]*(1-frac) + e.sorted[i+1]*frac
}

// Len returns the number of observations.
func (e *ECDF) Len() int { return len(e.sorted) }

// Sorted returns the underlying sorted sample. The caller must not modify it.
func (e *ECDF) Sorted() []float64 { return e.sorted }

// KolmogorovSmirnov returns the two-sample Kolmogorov-Smirnov statistic,
// the maximum absolute difference between the two empirical CDFs. It is the
// scale-free marginal-distance metric used to score how well a synthetic
// trace's marginal matches the empirical one.
func KolmogorovSmirnov(a, b []float64) (float64, error) {
	ea, err := NewECDF(a)
	if err != nil {
		return 0, err
	}
	eb, err := NewECDF(b)
	if err != nil {
		return 0, err
	}
	sa, sb := ea.Sorted(), eb.Sorted()
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		var v float64
		if sa[i] <= sb[j] {
			v = sa[i]
			i++
		} else {
			v = sb[j]
			j++
		}
		// Advance past duplicates of v in both samples.
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// QQPairs returns n quantile pairs (q_a, q_b) for Q-Q plotting of sample a
// against sample b, at probabilities (i+0.5)/n. n must be positive.
func QQPairs(a, b []float64, n int) (qa, qb []float64, err error) {
	if n <= 0 {
		return nil, nil, errors.New("stats: QQPairs needs n > 0")
	}
	ea, err := NewECDF(a)
	if err != nil {
		return nil, nil, err
	}
	eb, err := NewECDF(b)
	if err != nil {
		return nil, nil, err
	}
	qa = make([]float64, n)
	qb = make([]float64, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		qa[i] = ea.Quantile(p)
		qb[i] = eb.Quantile(p)
	}
	return qa, qb, nil
}
