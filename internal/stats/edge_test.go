package stats

import (
	"errors"
	"math"
	"testing"
)

// Edge-case hardening for the estimators the conformance harness leans on:
// degenerate samples (empty, single, all-equal) and poisoned samples
// (NaN/Inf) must produce errors or well-defined values, never panics or
// silent NaN propagation.

func TestNewECDFEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		in      []float64
		wantErr error
	}{
		{"empty", nil, ErrEmpty},
		{"single", []float64{3}, nil},
		{"all_equal", []float64{2, 2, 2, 2}, nil},
		{"nan_front", []float64{math.NaN(), 1, 2}, ErrNaN},
		{"nan_middle", []float64{1, math.NaN(), 2}, ErrNaN},
		{"nan_only", []float64{math.NaN()}, ErrNaN},
		{"inf_ok", []float64{math.Inf(-1), 0, math.Inf(1)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewECDF(tc.in)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if e.Len() != len(tc.in) {
				t.Fatalf("Len = %d, want %d", e.Len(), len(tc.in))
			}
		})
	}
}

func TestECDFQuantileEdgeCases(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    float64
		want float64
	}{
		{"below_zero_clamps", -0.5, 1},
		{"zero", 0, 1},
		{"one", 1, 4},
		{"above_one_clamps", 2, 4},
		{"median", 0.5, 2.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := e.Quantile(tc.p); got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
	// NaN p must yield NaN, not panic on int(NaN) indexing.
	if got := e.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}

	single, err := NewECDF([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 0.3, 0.999, 1} {
		if got := single.Quantile(p); got != 7 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 7", p, got)
		}
	}
}

func TestQQPairsEdgeCases(t *testing.T) {
	a := []float64{1, 2, 3}
	if _, _, err := QQPairs(a, a, 0); err == nil {
		t.Error("QQPairs with n=0 did not error")
	}
	if _, _, err := QQPairs(a, a, -3); err == nil {
		t.Error("QQPairs with negative n did not error")
	}
	if _, _, err := QQPairs(nil, a, 4); !errors.Is(err, ErrEmpty) {
		t.Errorf("QQPairs with empty a: err = %v, want ErrEmpty", err)
	}
	if _, _, err := QQPairs(a, []float64{math.NaN()}, 4); !errors.Is(err, ErrNaN) {
		t.Errorf("QQPairs with NaN b: err = %v, want ErrNaN", err)
	}
	// All-equal samples are legitimate: every quantile is the constant.
	qa, qb, err := QQPairs([]float64{5, 5, 5}, []float64{5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qa {
		if qa[i] != 5 || qb[i] != 5 {
			t.Fatalf("all-equal QQPairs[%d] = (%v, %v), want (5, 5)", i, qa[i], qb[i])
		}
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if got := Autocorrelation(nil, 5); got != nil {
		t.Errorf("empty sample: got %v, want nil", got)
	}
	if got := AutocovarianceKnownMean(nil, 0, 5); got != nil {
		t.Errorf("empty sample autocovariance: got %v, want nil", got)
	}
	if got := AutocovarianceKnownMean([]float64{1, 2, 3}, 0, -1); got != nil {
		t.Errorf("negative maxLag: got %v, want nil", got)
	}

	// Single observation: only lag 0 exists regardless of requested maxLag.
	single := Autocorrelation([]float64{4}, 3)
	if len(single) != 1 || single[0] != 1 {
		t.Errorf("single sample: got %v, want [1]", single)
	}

	// All-equal series has zero variance; the normalized ACF is defined to
	// be 1 at lag 0 and 0 beyond, not NaN.
	flat := Autocorrelation([]float64{3, 3, 3, 3}, 2)
	if flat[0] != 1 {
		t.Errorf("constant series lag 0 = %v, want 1", flat[0])
	}
	for k := 1; k < len(flat); k++ {
		if flat[k] != 0 {
			t.Errorf("constant series lag %d = %v, want 0", k, flat[k])
		}
	}

	// maxLag beyond the sample clamps instead of reading out of range.
	clamped := Autocorrelation([]float64{1, 2}, 100)
	if len(clamped) != 2 {
		t.Errorf("clamped length = %d, want 2", len(clamped))
	}
}

func TestKSStatEdgeCases(t *testing.T) {
	uniform := func(v float64) float64 {
		return math.Min(1, math.Max(0, v))
	}
	if _, err := KSStat(nil, uniform); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty sample: err = %v, want ErrEmpty", err)
	}
	if _, err := KSStat([]float64{0.5, math.NaN()}, uniform); err == nil {
		t.Error("NaN sample did not error")
	}
	badCDF := func(float64) float64 { return math.NaN() }
	if _, err := KSStat([]float64{0.5}, badCDF); err == nil {
		t.Error("NaN CDF did not error")
	}

	// Single observation at the median of U[0,1]: D = 1/2 on either side.
	d, err := KSStat([]float64{0.5}, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-15 {
		t.Errorf("single-point D = %v, want 0.5", d)
	}

	// A perfect uniform grid at (i+0.5)/n has D = 1/(2n).
	n := 100
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = (float64(i) + 0.5) / float64(n)
	}
	d, err = KSStat(grid, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.0/float64(2*n)) > 1e-12 {
		t.Errorf("grid D = %v, want %v", d, 1.0/float64(2*n))
	}

	// All-equal sample against a continuous CDF: D = max(F, 1-F).
	d, err = KSStat([]float64{0.2, 0.2, 0.2}, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.8) > 1e-15 {
		t.Errorf("all-equal D = %v, want 0.8", d)
	}
}

func TestKSCriticalKnownValue(t *testing.T) {
	// c(0.05) = 1.3581; at n=100 the critical value is 0.13581.
	got, err := KSCritical(100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.13581) > 1e-4 {
		t.Errorf("KSCritical(100, 0.05) = %v, want 0.13581", got)
	}
	if _, err := KSCritical(0, 0.05); err == nil {
		t.Error("n=0 did not error")
	}
	if _, err := KSCritical(10, 1.5); err == nil {
		t.Error("alpha out of range did not error")
	}
}

func TestChiSquareEdgeCases(t *testing.T) {
	uniform := func(v float64) float64 {
		return math.Min(1, math.Max(0, v))
	}
	if _, _, err := ChiSquare(nil, uniform, []float64{0.5}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty sample: err = %v, want ErrEmpty", err)
	}
	if _, _, err := ChiSquare([]float64{0.5}, uniform, nil); err == nil {
		t.Error("no edges did not error")
	}
	if _, _, err := ChiSquare([]float64{0.5}, uniform, []float64{0.5, 0.5}); err == nil {
		t.Error("non-increasing edges did not error")
	}
	if _, _, err := ChiSquare([]float64{math.NaN()}, uniform, []float64{0.5}); err == nil {
		t.Error("NaN sample did not error")
	}

	// A sample that exactly matches expected counts scores 0.
	sample := []float64{0.1, 0.3, 0.6, 0.9}
	stat, dof, err := ChiSquare(sample, uniform, []float64{0.25, 0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if dof != 3 {
		t.Errorf("dof = %d, want 3", dof)
	}
	if stat != 0 {
		t.Errorf("perfectly balanced stat = %v, want 0", stat)
	}

	// Observed mass in a zero-probability bin must yield +Inf, so any
	// finite gate fails rather than silently passing.
	pointMass := func(v float64) float64 {
		if v < 0.5 {
			return 0
		}
		return 1
	}
	stat, _, err = ChiSquare([]float64{0.1}, pointMass, []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(stat, 1) {
		t.Errorf("impossible-bin stat = %v, want +Inf", stat)
	}
}

func TestEquiprobableEdges(t *testing.T) {
	id := func(p float64) float64 { return p }
	edges, err := EquiprobableEdges(id, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.75}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i := range want {
		if math.Abs(edges[i]-want[i]) > 1e-15 {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
	if _, err := EquiprobableEdges(id, 1); err == nil {
		t.Error("bins=1 did not error")
	}
	flat := func(float64) float64 { return 0.5 }
	if _, err := EquiprobableEdges(flat, 4); err == nil {
		t.Error("constant quantile did not error")
	}
}

func TestChiSquareCriticalAgainstTable(t *testing.T) {
	// Reference values from standard chi-square tables; Wilson-Hilferty is
	// good to a few percent at these dof.
	cases := []struct {
		dof   int
		alpha float64
		want  float64
	}{
		{10, 0.05, 18.307},
		{63, 0.01, 92.010},
		{100, 0.05, 124.342},
	}
	for _, tc := range cases {
		got, err := ChiSquareCritical(tc.dof, tc.alpha)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want)/tc.want > 0.02 {
			t.Errorf("ChiSquareCritical(%d, %v) = %v, want ~%v", tc.dof, tc.alpha, got, tc.want)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.99, 2.326348},
		{0.025, -1.959964},
	}
	for _, tc := range cases {
		if got := NormalQuantile(tc.p); math.Abs(got-tc.want) > 1e-5 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := NormalQuantile(0); !math.IsInf(got, -1) {
		t.Errorf("NormalQuantile(0) = %v, want -Inf", got)
	}
	if got := NormalQuantile(1); !math.IsInf(got, 1) {
		t.Errorf("NormalQuantile(1) = %v, want +Inf", got)
	}
	if got := NormalQuantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("NormalQuantile(NaN) = %v, want NaN", got)
	}
}
