package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"vbrsim/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnownValues(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(x); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(x); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	wantSample := 4.0 * 8 / 7
	if got := SampleVariance(x); !almostEqual(got, wantSample, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, wantSample)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty moments should be 0")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty extrema should be 0")
	}
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Errorf("NewECDF(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMeanVarMatchesTwoPass(t *testing.T) {
	r := rng.New(1)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = 1e6 + r.Norm() // large offset stresses numerical stability
	}
	m, v := MeanVar(x)
	if !almostEqual(m, Mean(x), 1e-6) {
		t.Errorf("MeanVar mean %v vs Mean %v", m, Mean(x))
	}
	if !almostEqual(v, Variance(x), 1e-6) {
		t.Errorf("MeanVar var %v vs Variance %v", v, Variance(x))
	}
}

func TestSkewness(t *testing.T) {
	// Symmetric sample has ~0 skewness; exponential has skewness 2.
	r := rng.New(2)
	sym := make([]float64, 100000)
	expo := make([]float64, 100000)
	for i := range sym {
		sym[i] = r.Norm()
		expo[i] = r.Exp(1)
	}
	if s := Skewness(sym); math.Abs(s) > 0.05 {
		t.Errorf("normal skewness = %v, want ~0", s)
	}
	if s := Skewness(expo); math.Abs(s-2) > 0.15 {
		t.Errorf("exponential skewness = %v, want ~2", s)
	}
}

func TestAggregate(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7}
	got := Aggregate(x, 2)
	want := []float64{1.5, 3.5, 5.5}
	if len(got) != len(want) {
		t.Fatalf("Aggregate len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Aggregate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(Aggregate(x, 10)) != 0 {
		t.Error("Aggregate with m > len should be empty")
	}
}

func TestAggregateVarianceIIDScaling(t *testing.T) {
	// For iid data, var(X^(m)) = var(X)/m.
	r := rng.New(3)
	x := make([]float64, 300000)
	for i := range x {
		x[i] = r.Norm()
	}
	v1 := Variance(x)
	for _, m := range []int{10, 100} {
		vm := Variance(Aggregate(x, m))
		want := v1 / float64(m)
		if math.Abs(vm-want) > 0.15*want {
			t.Errorf("var(X^(%d)) = %v, want ~%v", m, vm, want)
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3*v - 2
	}
	slope, intercept, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 3, 1e-12) || !almostEqual(intercept, -2, 1e-12) || !almostEqual(r2, 1, 1e-12) {
		t.Errorf("fit = (%v, %v, %v), want (3, -2, 1)", slope, intercept, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err != ErrEmpty {
		t.Errorf("single point: err = %v, want ErrEmpty", err)
	}
	if _, _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x should error")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	// y = 5 * x^-0.7 must fit slope -0.7, intercept log10(5).
	var x, y []float64
	for i := 1; i <= 50; i++ {
		x = append(x, float64(i))
		y = append(y, 5*math.Pow(float64(i), -0.7))
	}
	slope, intercept, r2, err := LogLogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, -0.7, 1e-9) {
		t.Errorf("slope = %v, want -0.7", slope)
	}
	if !almostEqual(intercept, math.Log10(5), 1e-9) {
		t.Errorf("intercept = %v, want %v", intercept, math.Log10(5))
	}
	if r2 < 0.999999 {
		t.Errorf("r2 = %v, want ~1", r2)
	}
}

func TestLogLogFitSkipsNonPositive(t *testing.T) {
	x := []float64{-1, 0, 1, 2, 4}
	y := []float64{5, 5, 1, 2, 4}
	slope, _, _, err := LogLogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 1, 1e-9) {
		t.Errorf("slope = %v, want 1 (y=x on positive pairs)", slope)
	}
}

func TestHistogramBasic(t *testing.T) {
	x := []float64{-0.5, 0, 0.4, 0.5, 1.4, 2.0, 5.0}
	h := NewHistogram(x, 0, 2, 4) // bins [0,.5) [.5,1) [1,1.5) [1.5,2)
	if h.N != 7 {
		t.Errorf("N = %d, want 7", h.N)
	}
	if h.Below != 1 || h.Above != 2 {
		t.Errorf("Below,Above = %d,%d, want 1,2", h.Below, h.Above)
	}
	wantCounts := []int{2, 1, 1, 0}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], w)
		}
	}
	if !almostEqual(h.BinWidth(), 0.5, 1e-12) {
		t.Errorf("BinWidth = %v, want 0.5", h.BinWidth())
	}
	if !almostEqual(h.BinCenter(0), 0.25, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 0.25", h.BinCenter(0))
	}
	freqs := h.Frequencies()
	var sum float64
	for _, f := range freqs {
		sum += f
	}
	if !almostEqual(sum, 4.0/7.0, 1e-12) {
		t.Errorf("in-range frequency sum = %v, want 4/7", sum)
	}
}

func TestHistogramTopEdge(t *testing.T) {
	// A value just below Hi must land in the last bin, not panic.
	h := NewHistogram([]float64{1.9999999999999998}, 0, 2, 4)
	if h.Counts[3] != 1 {
		t.Errorf("top-edge value not in last bin: %v", h.Counts)
	}
}

func TestECDFCDFAndQuantile(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v, want 0", got)
	}
	if got := e.CDF(3); got != 0.6 {
		t.Errorf("CDF(3) = %v, want 0.6", got)
	}
	if got := e.CDF(10); got != 1 {
		t.Errorf("CDF(10) = %v, want 1", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := e.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v, want 5", got)
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v, want 3", got)
	}
	// Interpolation: p=0.625 -> h=2.5 -> between sorted[2]=3 and sorted[3]=4.
	if got := e.Quantile(0.625); !almostEqual(got, 3.5, 1e-12) {
		t.Errorf("Quantile(0.625) = %v, want 3.5", got)
	}
}

func TestECDFQuantileMonotone(t *testing.T) {
	r := rng.New(4)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = r.Norm()
	}
	e, _ := NewECDF(x)
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := e.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestQuickECDFRoundTrip(t *testing.T) {
	// For any sample, CDF(Quantile(p)) >= p (right-continuity of ECDF).
	f := func(raw []float64, pRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := math.Mod(math.Abs(pRaw), 1)
		e, err := NewECDF(raw)
		if err != nil {
			return false
		}
		return e.CDF(e.Quantile(p)) >= p-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQQPairsIdenticalSamples(t *testing.T) {
	r := rng.New(5)
	x := make([]float64, 2000)
	for i := range x {
		x[i] = r.Norm()
	}
	qa, qb, err := QQPairs(x, x, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("identical samples: qa[%d]=%v != qb[%d]=%v", i, qa[i], i, qb[i])
		}
	}
	if !sort.Float64sAreSorted(qa) {
		t.Error("Q-Q quantiles are not sorted")
	}
}

func TestQQPairsShiftedSamples(t *testing.T) {
	r := rng.New(6)
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = r.Norm()
		b[i] = r.Norm() + 2 // shifted by 2
	}
	qa, qb, err := QQPairs(a, b, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qa {
		if math.Abs(qb[i]-qa[i]-2) > 0.25 {
			t.Errorf("pair %d: qb-qa = %v, want ~2", i, qb[i]-qa[i])
		}
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	// Identical samples: D = 0.
	a := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("KS(a,a) = %v, want 0", d)
	}
	// Disjoint supports: D = 1.
	b := []float64{10, 11, 12}
	d, err = KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("KS disjoint = %v, want 1", d)
	}
	// Known small case: a={1,2}, b={2,3}: after 1 -> |1/2-0|=1/2.
	d, err = KolmogorovSmirnov([]float64{1, 2}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("KS small case = %v, want 0.5", d)
	}
	if _, err := KolmogorovSmirnov(nil, a); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	r := rng.New(8)
	a := make([]float64, 20000)
	b := make([]float64, 20000)
	for i := range a {
		a[i] = r.Norm()
		b[i] = r.Norm()
	}
	d, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// For equal distributions D ~ 1.36*sqrt(2/n) at the 5% level ~ 0.0136.
	if d > 0.025 {
		t.Errorf("KS same-dist = %v, want small", d)
	}
	// Shifted distribution must be clearly detected.
	for i := range b {
		b[i] += 0.5
	}
	d, err = KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.15 {
		t.Errorf("KS shifted = %v, want large", d)
	}
}

func TestAutocorrelationDelegation(t *testing.T) {
	r := rng.New(7)
	x := make([]float64, 1000)
	for i := range x {
		x[i] = r.Norm()
	}
	acf := Autocorrelation(x, 10)
	if len(acf) != 11 || acf[0] != 1 {
		t.Fatalf("acf = len %d first %v, want len 11 first 1", len(acf), acf[0])
	}
	acov := Autocovariance(x, 10)
	if math.Abs(acov[0]-Variance(x)) > 1e-9 {
		t.Errorf("acov[0] = %v, want variance %v", acov[0], Variance(x))
	}
}

func BenchmarkMeanVar1e6(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 1<<20)
	for i := range x {
		x[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeanVar(x)
	}
}
