// Goodness-of-fit statistics: one-sample Kolmogorov-Smirnov and chi-square
// tests of a sample against a theoretical CDF, with the asymptotic critical
// values needed to turn them into acceptance gates. These back the
// conformance harness's marginal checks; the critical values assume IID
// sampling, so gates over long-range dependent output must apply a
// documented slack factor (see internal/conformance).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// KSStat returns the one-sample Kolmogorov-Smirnov statistic
// D_n = sup_x |F_n(x) - F(x)| of the sample against the theoretical CDF.
// It returns ErrEmpty for an empty sample and an error when the sample or
// the CDF values are not finite.
func KSStat(sample []float64, cdf func(float64) float64) (float64, error) {
	n := len(sample)
	if n == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	// sort.Float64s orders NaN before everything, so one check covers all.
	if math.IsNaN(s[0]) {
		return 0, errors.New("stats: KSStat sample contains NaN")
	}
	var d float64
	for i, v := range s {
		f := cdf(v)
		if math.IsNaN(f) || f < 0 || f > 1 {
			return 0, fmt.Errorf("stats: KSStat cdf(%g) = %g outside [0,1]", v, f)
		}
		// D+ at the right limit of the step, D- at the left limit.
		if up := float64(i+1)/float64(n) - f; up > d {
			d = up
		}
		if down := f - float64(i)/float64(n); down > d {
			d = down
		}
	}
	return d, nil
}

// KSCritical returns the asymptotic critical value of the one-sample KS
// statistic at significance level alpha for sample size n:
// c(alpha)/sqrt(n) with c(alpha) = sqrt(-ln(alpha/2)/2). Valid for
// alpha in (0, 1) and reasonable n (>= ~35 for the asymptotics to be good).
func KSCritical(n int, alpha float64) (float64, error) {
	if n <= 0 {
		return 0, ErrEmpty
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, errors.New("stats: KSCritical needs alpha in (0, 1)")
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c / math.Sqrt(float64(n)), nil
}

// ChiSquare bins the sample by the edges and returns the chi-square
// goodness-of-fit statistic against the theoretical CDF, together with the
// degrees of freedom (bins - 1). edges must be strictly increasing and
// define len(edges)+1 bins spanning the whole line: (-inf, edges[0]),
// [edges[0], edges[1]), ..., [edges[m-1], +inf). Expected counts are
// n*(F(hi) - F(lo)); bins whose expected count is below 1e-12 contribute
// only through their observed count (observed mass in an impossible bin
// yields +Inf, which any finite gate fails).
func ChiSquare(sample []float64, cdf func(float64) float64, edges []float64) (stat float64, dof int, err error) {
	n := len(sample)
	if n == 0 {
		return 0, 0, ErrEmpty
	}
	if len(edges) == 0 {
		return 0, 0, errors.New("stats: ChiSquare needs at least one bin edge")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return 0, 0, errors.New("stats: ChiSquare edges must be strictly increasing")
		}
	}
	bins := len(edges) + 1
	observed := make([]float64, bins)
	for _, v := range sample {
		if math.IsNaN(v) {
			return 0, 0, errors.New("stats: ChiSquare sample contains NaN")
		}
		i := sort.SearchFloat64s(edges, v)
		// SearchFloat64s returns the first edge >= v; v == edge belongs to
		// the bin starting at that edge.
		if i < len(edges) && edges[i] == v {
			i++
		}
		observed[i]++
	}
	prev := 0.0
	for b := 0; b < bins; b++ {
		next := 1.0
		if b < len(edges) {
			next = cdf(edges[b])
		}
		if math.IsNaN(next) || next < prev-1e-12 || next > 1+1e-12 {
			return 0, 0, fmt.Errorf("stats: ChiSquare cdf not monotone in [0,1] at edge %d", b)
		}
		expected := float64(n) * (next - prev)
		diff := observed[b] - expected
		if expected > 1e-12 {
			stat += diff * diff / expected
		} else if observed[b] > 0 {
			stat = math.Inf(1)
		}
		prev = next
	}
	return stat, bins - 1, nil
}

// EquiprobableEdges returns bins-1 interior edges at the quantiles
// i/bins of the theoretical distribution, defining bins equiprobable cells
// for ChiSquare. quantile must be nondecreasing on (0, 1).
func EquiprobableEdges(quantile func(p float64) float64, bins int) ([]float64, error) {
	if bins < 2 {
		return nil, errors.New("stats: EquiprobableEdges needs bins >= 2")
	}
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = quantile(float64(i+1) / float64(bins))
		if i > 0 && !(edges[i] > edges[i-1]) {
			return nil, errors.New("stats: EquiprobableEdges quantile not strictly increasing")
		}
	}
	return edges, nil
}

// ChiSquareCritical returns the approximate upper critical value of the
// chi-square distribution with dof degrees of freedom at significance
// level alpha, by the Wilson-Hilferty cube approximation. Accurate to a
// few percent for dof >= 3, which is ample for acceptance gating.
func ChiSquareCritical(dof int, alpha float64) (float64, error) {
	if dof <= 0 {
		return 0, errors.New("stats: ChiSquareCritical needs dof > 0")
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, errors.New("stats: ChiSquareCritical needs alpha in (0, 1)")
	}
	z := NormalQuantile(1 - alpha)
	k := float64(dof)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t, nil
}

// NormalQuantile returns the standard normal quantile at p in (0, 1) by
// the Beasley-Springer-Moro rational approximation (absolute error below
// 3e-9 over the whole range), enough for critical values and confidence
// bands.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Beasley-Springer central region plus Moro tail expansion.
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	s := math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= s
		x += c[i] * pow
	}
	if y < 0 {
		return -x
	}
	return x
}
