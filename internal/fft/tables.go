package fft

import (
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"
)

// tables holds the precomputed bit-reversal permutation and per-stage twiddle
// factors for one transform size. Entries are immutable after construction and
// shared process-wide through tablesFor, mirroring the Hosking plan cache: the
// tables for a size are built once and every subsequent Forward/Inverse of
// that size reuses them, which removes all per-call trigonometry from the
// transform hot path.
//
// The twiddle tables are filled by the exact w = 1; w *= wl recurrence the
// reference transform evaluates on the fly, so the tabled transforms are
// bit-identical to ForwardReference/InverseReference — a property the golden
// traces in internal/conformance depend on.
type tables struct {
	n   int
	rev []int32 // bit-reversal permutation, rev[i] = reversed index of i
	// fwd and inv hold the stage twiddles for all stages concatenated: the
	// stage with half-length h occupies [h-1 : 2h-1] (1+2+4+...+h/2 == h-1).
	fwd []complex128
	inv []complex128
	// fwdStages and invStages are the per-stage twiddle runs, precomputed as
	// capped subslices of fwd/inv: stages[s] is the run for half-length 2^s.
	// The tiled stage loops re-read a stage's run once per tile, so handing
	// them out as ready slices keeps the inner loops free of index math.
	fwdStages [][]complex128
	invStages [][]complex128

	// rot supports the packed real transforms of size 2n: rot[k] is
	// (i/2)·e^{+2πik/(2n)} for k = 0..n/2, built lazily because only the
	// real-input paths need it.
	rotOnce sync.Once
	rot     []complex128

	lastUse atomic.Uint64 // cache clock tick of the most recent lookup
}

func newTables(n int) *tables {
	t := &tables{n: n}
	t.rev = make([]int32, n)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		t.rev[i] = int32(j)
	}
	t.fwd = stageTwiddles(n, false)
	t.inv = stageTwiddles(n, true)
	t.fwdStages = stageSlices(t.fwd, n)
	t.invStages = stageSlices(t.inv, n)
	return t
}

// stageSlices cuts the concatenated twiddle layout into per-stage runs:
// out[s] covers the stage with half-length 2^s.
func stageSlices(tw []complex128, n int) [][]complex128 {
	if n < 2 {
		return nil
	}
	out := make([][]complex128, log2(n))
	for half, s := 1, 0; half < n; half, s = half<<1, s+1 {
		out[s] = tw[half-1 : 2*half-1 : 2*half-1]
	}
	return out
}

// stageTwiddles fills the concatenated per-stage twiddle layout using the
// same recurrence as the reference transform (w starts at 1 and is repeatedly
// multiplied by wl), so every table entry is bitwise equal to the value the
// on-the-fly code would have computed.
func stageTwiddles(n int, inverse bool) []complex128 {
	if n < 2 {
		return nil
	}
	tw := make([]complex128, n-1)
	for length := 2; length <= n; length <<= 1 {
		angle := 2 * math.Pi / float64(length)
		if !inverse {
			angle = -angle
		}
		wl := cmplx.Rect(1, angle)
		half := length >> 1
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			tw[half-1+k] = w
			w *= wl
		}
	}
	return tw
}

// rotation returns the lazily built real-transform rotation table.
func (t *tables) rotation() []complex128 {
	t.rotOnce.Do(func() {
		rot := make([]complex128, t.n/2+1)
		m := 2 * t.n
		for k := range rot {
			rot[k] = complex(0, 0.5) * cmplx.Rect(1, 2*math.Pi*float64(k)/float64(m))
		}
		t.rot = rot
	})
	return t.rot
}

// stageTile is the cache-blocking width of the stage loops, in complex128
// elements: stages whose butterfly blocks fit inside a tile run tile by tile,
// so all of them together cost one pass over memory instead of one pass per
// stage. 2^14 elements is 256 KiB of data plus at most 256 KiB of twiddle
// runs — well inside the 2 MiB L2 this was tuned on, with room left for the
// caller's other streams (spectrum weights, output frames).
const stageTile = 1 << 14

// apply runs the iterative radix-2 transform over x using the given
// per-stage twiddle runs (t.fwdStages or t.invStages). The length-2 stage is
// specialized: its only twiddle is exactly 1, so u+v/u-v is bitwise equal to
// the generic butterfly. Later stages multiply by table entries that are
// bitwise equal to the reference recurrence values, and cache tiling only
// reorders butterflies that touch disjoint elements, keeping the whole
// transform bit-identical to the reference.
func (t *tables) apply(x []complex128, stages [][]complex128) {
	n := t.n
	for i, r := range t.rev {
		if j := int(r); i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	if n < 2 {
		return
	}
	tile := n
	if tile > stageTile {
		tile = stageTile
	}
	for lo := 0; lo < n; lo += tile {
		xt := x[lo : lo+tile]
		for i := 0; i < tile; i += 2 {
			u, v := xt[i], xt[i+1]
			xt[i], xt[i+1] = u+v, u-v
		}
		stageRange(xt, stages, 2, tile)
	}
	stageRange(x[:n], stages, tile, n)
}

// stageRange runs the radix-2 butterfly stages with half-lengths in
// [from, to) over x, reading per-stage twiddle runs from stages (indexed by
// log2 of the half-length). Butterfly arithmetic matches apply exactly; the
// fused real-transform kernels use it for their middle stages.
func stageRange(x []complex128, stages [][]complex128, from, to int) {
	n := len(x)
	for half, s := from, log2(from); half < to; half, s = half<<1, s+1 {
		stage := stages[s]
		length := half << 1
		for start := 0; start < n; start += length {
			a := x[start : start+half : start+half]
			b := x[start+half : start+length : start+length]
			for k, w := range stage {
				u := a[k]
				v := b[k] * w
				a[k] = u + v
				b[k] = u - v
			}
		}
	}
}

// tableCacheCap bounds the number of distinct transform sizes whose tables
// stay resident; beyond it the least recently used entry is evicted. Tables
// cost ~36 bytes per sample, so the cap keeps the cache from pinning large
// one-off sizes forever while leaving every size a long-running process
// actually cycles through permanently warm.
const tableCacheCap = 32

var tableCache = struct {
	sync.RWMutex
	m     map[int]*tables
	clock atomic.Uint64
}{m: make(map[int]*tables)}

// tablesFor returns the process-wide tables for size n, building them on
// first use. Steady-state lookups take a read lock and perform no
// allocations.
func tablesFor(n int) *tables {
	tick := tableCache.clock.Add(1)
	tableCache.RLock()
	t := tableCache.m[n]
	tableCache.RUnlock()
	if t != nil {
		t.lastUse.Store(tick)
		return t
	}
	tableCache.Lock()
	defer tableCache.Unlock()
	if t = tableCache.m[n]; t != nil {
		t.lastUse.Store(tick)
		return t
	}
	t = newTables(n)
	t.lastUse.Store(tick)
	if len(tableCache.m) >= tableCacheCap {
		var oldest int
		oldestTick := uint64(math.MaxUint64)
		for size, e := range tableCache.m {
			if u := e.lastUse.Load(); u < oldestTick {
				oldestTick, oldest = u, size
			}
		}
		delete(tableCache.m, oldest)
	}
	tableCache.m[n] = t
	return t
}

// ForwardReference computes the forward DFT with the original on-the-fly
// twiddle recurrence. It is retained as the ablation baseline for the twiddle
// cache benchmarks and as an independent oracle: the tabled Forward must stay
// bit-identical to it.
func ForwardReference(x []complex128) error { return referenceTransform(x, false) }

// InverseReference is the reference counterpart of Inverse; see
// ForwardReference.
func InverseReference(x []complex128) error {
	if err := referenceTransform(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}
