package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"vbrsim/internal/rng"
)

// naiveDFT computes the unnormalized DFT directly, O(n^2).
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Rect(1, angle)
		}
		out[k] = sum
	}
	return out
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: bin %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{2, 8, 128, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
		}
		y := append([]complex128(nil), x...)
		if err := Forward(y); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(y); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if cmplx.Abs(y[i]-x[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d: round trip failed at %d: got %v want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	r := rng.New(3)
	n := 512
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(r.Norm(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Fatalf("Parseval violated: time %v freq %v", timeEnergy, freqEnergy)
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	x := make([]complex128, 12)
	if err := Forward(x); err != ErrNotPowerOfTwo {
		t.Fatalf("Forward on n=12: got %v, want ErrNotPowerOfTwo", err)
	}
	if err := Inverse(x); err != ErrNotPowerOfTwo {
		t.Fatalf("Inverse on n=12: got %v, want ErrNotPowerOfTwo", err)
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := []struct {
		in, want int
		panics   bool
	}{
		{in: -5, want: 1},
		{in: 0, want: 1},
		{in: 1, want: 1},
		{in: 2, want: 2},
		{in: 3, want: 4},
		{in: 4, want: 4},
		{in: 5, want: 8},
		{in: 1000, want: 1024},
		{in: 1024, want: 1024},
		{in: maxPowerOfTwo - 1, want: maxPowerOfTwo},
		{in: maxPowerOfTwo, want: maxPowerOfTwo},
		// Past the largest power-of-two int the doubling loop would overflow
		// and spin forever; the guard must panic instead.
		{in: maxPowerOfTwo + 1, panics: true},
		{in: int(^uint(0) >> 1), panics: true}, // max int
	}
	for _, tc := range cases {
		got, panicked := func() (n int, panicked bool) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			return NextPowerOfTwo(tc.in), false
		}()
		if panicked != tc.panics {
			t.Errorf("NextPowerOfTwo(%d): panicked=%v, want %v", tc.in, panicked, tc.panics)
			continue
		}
		if !tc.panics && got != tc.want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// naiveAutocov computes the biased autocovariance directly.
func naiveAutocov(x []float64, maxLag int) []float64 {
	n := len(x)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		var s float64
		for i := 0; i+k < n; i++ {
			s += (x[i] - mean) * (x[i+k] - mean)
		}
		out[k] = s / float64(n)
	}
	return out
}

func TestAutocovarianceMatchesNaive(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{10, 100, 777} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Norm() + 3
		}
		maxLag := n / 3
		want := naiveAutocov(x, maxLag)
		got := Autocovariance(x, maxLag)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9 {
				t.Fatalf("n=%d lag=%d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestAutocorrelationLagZeroIsOne(t *testing.T) {
	r := rng.New(5)
	x := make([]float64, 200)
	for i := range x {
		x[i] = r.Norm()
	}
	acf := Autocorrelation(x, 20)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Fatalf("acf[0] = %v, want 1", acf[0])
	}
	for k, v := range acf {
		if math.Abs(v) > 1+1e-12 {
			t.Fatalf("acf[%d] = %v outside [-1,1]", k, v)
		}
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5}
	acf := Autocorrelation(x, 3)
	if acf[0] != 1 {
		t.Fatalf("constant series acf[0] = %v, want 1", acf[0])
	}
	for k := 1; k < len(acf); k++ {
		if acf[k] != 0 {
			t.Fatalf("constant series acf[%d] = %v, want 0", k, acf[k])
		}
	}
}

func TestAutocovarianceEdgeCases(t *testing.T) {
	if got := Autocovariance(nil, 5); got != nil {
		t.Fatalf("nil input: got %v", got)
	}
	got := Autocovariance([]float64{1, 2}, 10)
	if len(got) != 2 {
		t.Fatalf("maxLag clamping: got len %d, want 2", len(got))
	}
}

func TestAutocorrelationAR1Recovery(t *testing.T) {
	// An AR(1) process with coefficient phi has acf phi^k.
	r := rng.New(6)
	phi := 0.7
	n := 200000
	x := make([]float64, n)
	x[0] = r.Norm()
	scale := math.Sqrt(1 - phi*phi)
	for i := 1; i < n; i++ {
		x[i] = phi*x[i-1] + scale*r.Norm()
	}
	acf := Autocorrelation(x, 5)
	for k := 1; k <= 5; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(acf[k]-want) > 0.02 {
			t.Errorf("AR(1) acf[%d] = %v, want %v", k, acf[k], want)
		}
	}
}

func TestPeriodogramWhiteNoiseFlat(t *testing.T) {
	r := rng.New(7)
	n := 4096
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	freqs, intens := Periodogram(x)
	if len(freqs) != len(intens) || len(freqs) == 0 {
		t.Fatalf("periodogram lengths: %d vs %d", len(freqs), len(intens))
	}
	// Mean intensity of white noise should be sigma^2/(2*pi) ~ 0.159.
	var mean float64
	for _, v := range intens {
		mean += v
	}
	mean /= float64(len(intens))
	want := 1 / (2 * math.Pi)
	if math.Abs(mean-want) > 0.15*want {
		t.Errorf("white-noise periodogram mean = %v, want ~%v", mean, want)
	}
}

func TestQuickLinearity(t *testing.T) {
	// DFT(a*x + y) == a*DFT(x) + DFT(y).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 64
		a := complex(r.Norm(), 0)
		x := make([]complex128, n)
		y := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
			y[i] = complex(r.Norm(), r.Norm())
			sum[i] = a*x[i] + y[i]
		}
		if Forward(x) != nil || Forward(y) != nil || Forward(sum) != nil {
			return false
		}
		for i := range sum {
			if cmplx.Abs(sum[i]-(a*x[i]+y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForward4096(b *testing.B) {
	r := rng.New(1)
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(r.Norm(), 0)
	}
	work := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		if err := Forward(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutocovariance65536(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 65536)
	for i := range x {
		x[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Autocovariance(x, 500)
	}
}
