package fft

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
)

func randComplex(r *rng.Source, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Norm(), r.Norm())
	}
	return x
}

// TestForwardMatchesReference pins the tabled transforms to the reference
// implementation bit-for-bit: the golden traces in internal/conformance go
// through Forward, so the twiddle cache must not change a single ulp.
func TestForwardMatchesReference(t *testing.T) {
	r := rng.New(7)
	// 2^16 complex crosses the stageTile boundary, exercising the tiled small
	// stages plus the global large stages of apply.
	max := 1 << 16
	if testing.Short() {
		max = 1 << 13
	}
	for n := 1; n <= max; n <<= 1 {
		x := randComplex(r, n)
		want := append([]complex128(nil), x...)
		if err := ForwardReference(want); err != nil {
			t.Fatal(err)
		}
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Float64bits(real(got[i])) != math.Float64bits(real(want[i])) ||
				math.Float64bits(imag(got[i])) != math.Float64bits(imag(want[i])) {
				t.Fatalf("n=%d: Forward[%d] = %v, reference = %v (not bit-identical)", n, i, got[i], want[i])
			}
		}
		inv := append([]complex128(nil), x...)
		wantInv := append([]complex128(nil), x...)
		if err := Inverse(inv); err != nil {
			t.Fatal(err)
		}
		if err := InverseReference(wantInv); err != nil {
			t.Fatal(err)
		}
		for i := range inv {
			if math.Float64bits(real(inv[i])) != math.Float64bits(real(wantInv[i])) ||
				math.Float64bits(imag(inv[i])) != math.Float64bits(imag(wantInv[i])) {
				t.Fatalf("n=%d: Inverse[%d] = %v, reference = %v (not bit-identical)", n, i, inv[i], wantInv[i])
			}
		}
	}
}

func TestForwardRejectsNonPowerOfTwo(t *testing.T) {
	x := make([]complex128, 3)
	if err := Forward(x); err != ErrNotPowerOfTwo {
		t.Fatalf("Forward(len 3) = %v, want ErrNotPowerOfTwo", err)
	}
	if err := Inverse(x); err != ErrNotPowerOfTwo {
		t.Fatalf("Inverse(len 3) = %v, want ErrNotPowerOfTwo", err)
	}
}

// TestTableCacheEviction fills the cache past its cap and checks transforms
// still work (rebuilt tables are identical by construction).
func TestTableCacheEviction(t *testing.T) {
	r := rng.New(11)
	x := randComplex(r, 8)
	want := append([]complex128(nil), x...)
	if err := ForwardReference(want); err != nil {
		t.Fatal(err)
	}
	// Touch more sizes than the cap to force evictions.
	for n := 1; n <= 1<<(tableCacheCap+2) && n <= 1<<20; n <<= 1 {
		tablesFor(n)
	}
	got := append([]complex128(nil), x...)
	if err := Forward(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after eviction churn, Forward[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestForwardZeroAlloc verifies the steady-state transform performs no
// allocations once its tables are cached.
func TestForwardZeroAlloc(t *testing.T) {
	x := make([]complex128, 1024)
	r := rng.New(3)
	for i := range x {
		x[i] = complex(r.Norm(), r.Norm())
	}
	if err := Forward(x); err != nil { // warm the cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Forward allocates %v objects per call at steady state, want 0", allocs)
	}
}
