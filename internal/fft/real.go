package fft

import (
	"errors"
)

// ErrBadLength is returned by the real-transform helpers when a buffer does
// not satisfy the documented length contract.
var ErrBadLength = errors.New("fft: buffer length does not match transform size")

// Scratch holds reusable buffers for the zero-allocation real-FFT helpers.
// The zero value is ready to use; buffers grow on demand and are retained
// across calls, so a Scratch reused at a steady size performs no allocations.
// A Scratch must not be shared between concurrent calls.
type Scratch struct {
	a []complex128
	z []complex128
}

// buffers returns the two work arrays sized for half-length h: a of length
// h+1 (half-spectrum) and z of length h (packed samples).
func (s *Scratch) buffers(h int) (a, z []complex128) {
	if cap(s.a) < h+1 {
		s.a = make([]complex128, h+1)
	}
	if cap(s.z) < h {
		s.z = make([]complex128, h)
	}
	return s.a[:h+1], s.z[:h]
}

// RealForward computes the half-spectrum forward DFT of the real sequence x:
// a[k] for k = 0..h with h = len(x)/2 receives the same values Forward would
// produce in positions 0..h (the remaining positions follow by Hermitian
// symmetry and are not stored). len(x) must be a power of two and len(a) at
// least h+1. The transform packs adjacent sample pairs into one complex FFT
// of half the length, roughly halving the work of the complex path.
func RealForward(a []complex128, x []float64) error {
	m := len(x)
	if !IsPowerOfTwo(m) {
		return ErrNotPowerOfTwo
	}
	h := m / 2
	if len(a) < h+1 {
		return ErrBadLength
	}
	if m == 1 {
		a[0] = complex(x[0], 0)
		return nil
	}
	for j := 0; j < h; j++ {
		a[j] = complex(x[2*j], x[2*j+1])
	}
	t := tablesFor(h)
	t.apply(a[:h], t.fwd)
	realUnpack(a[:h+1], t)
	return nil
}

// realUnpack converts the packed half-length spectrum Z (in a[:h]) into the
// half-spectrum A (in a[:h+1]) of the underlying real sequence, in place:
//
//	A[k] = (Z[k]+conj(Z[h-k]))/2 - (i/2)·ω^k·(Z[k]-conj(Z[h-k])), ω = e^{-2πi/m}
//
// using f[h-k] = conj(f[k]) for the mirror factor, so only the table of
// f[k] = conj(rot[k]) for k ≤ h/2 is needed.
func realUnpack(a []complex128, t *tables) {
	h := len(a) - 1
	rot := t.rotation()
	z0 := a[0]
	a[0] = complex(real(z0)+imag(z0), 0)
	a[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k < h-k; k++ {
		zk, zm := a[k], a[h-k]
		czm := complex(real(zm), -imag(zm))
		czk := complex(real(zk), -imag(zk))
		f := complex(real(rot[k]), -imag(rot[k])) // conj(rot[k]) = -(i/2)ω^k
		a[k] = (zk+czm)*complex(0.5, 0) + f*(zk-czm)
		a[h-k] = (zm+czk)*complex(0.5, 0) + rot[k]*(zm-czk)
	}
	if h >= 2 {
		mid := a[h/2]
		a[h/2] = complex(real(mid), -imag(mid))
	}
}

// HermitianReal synthesizes a real sequence from its Hermitian half-spectrum:
// with m = 2(len(a)-1), it writes
//
//	out[p] = Σ_{k=0}^{m-1} Ā[k]·e^{-2πipk/m},  p = 0..len(out)-1
//
// where Ā is the Hermitian extension of a (Ā[m-k] = conj(a[k])). This is the
// synthesis Davies–Harte needs: the real part of the full forward DFT of a
// Hermitian spectrum, computed with one complex FFT of length m/2 instead of
// length m. The imaginary parts of a[0] and a[len(a)-1] are ignored (they
// must be zero for a Hermitian spectrum). a is left unmodified; z is scratch
// of length at least len(a)-1; len(out) must not exceed m. len(a)-1 must be a
// power of two.
func HermitianReal(out []float64, a, z []complex128) error {
	h := len(a) - 1
	if !IsPowerOfTwo(h) {
		return ErrNotPowerOfTwo
	}
	if len(z) < h || len(out) > 2*h {
		return ErrBadLength
	}
	hermitianReal(out, a, z[:h], tablesFor(h))
	return nil
}

// hermitianReal is the table-threaded core of HermitianReal. The half-length
// inverse-kernel FFT is inlined rather than delegated to tables.apply so the
// bit-reversal scatter fuses into the pair-rotation pass (one write instead
// of a build pass plus a permutation pass). This path is not bit-pinned, so
// it also takes the liberties the golden-traced complex path cannot: the
// pair rotation runs on hand-expanded real arithmetic (4 multiplies per pair
// instead of 4 complex products), the length-4 stage uses the exact ±i
// twiddles, and later stages run as fused radix-2² double stages that touch
// each element once per two stages.
func hermitianReal(out []float64, a, z []complex128, t *tables) {
	h := len(a) - 1
	rot := t.rotation()
	rev := t.rev
	// Pair rotation, reading the conjugated doubled spectrum W[k] =
	// 2·conj(a[k]) on the fly and scattering Z to bit-reversed positions:
	//   Z[k]   = (W[k]+conj(W[h-k]))/2 + rot[k]·(W[k]-conj(W[h-k]))
	//   Z[h-k] = (W[h-k]+conj(W[k]))/2 + conj(rot[k])·(W[h-k]-conj(W[k]))
	// With a[k] = (p,q), a[h-k] = (s,u), rot[k] = (rr,ri), and the shared
	// terms A = rr·(p-s), B = ri·(q+u), C = ri·(p-s), D = rr·(q+u),
	// expanding the complex algebra gives
	//   Z[k]   = (p+s + 2(A+B),  (u-q) + 2(C-D))
	//   Z[h-k] = (p+s - 2(A+B),  (q-u) + 2(C-D))
	// — four real multiplies per pair instead of four complex products.
	a0, ah := real(a[0]), real(a[h])
	z[0] = complex(a0+ah, a0-ah)
	for k := 1; k < h-k; k++ {
		p, q := real(a[k]), imag(a[k])
		s, u := real(a[h-k]), imag(a[h-k])
		rr, ri := real(rot[k]), imag(rot[k])
		dp := p - s // Re difference
		sq := q + u // Im sum
		A := rr * dp
		B := ri * sq
		C := ri * dp
		D := rr * sq
		ps := p + s
		z[rev[k]] = complex(ps+2*(A+B), (u-q)+2*(C-D))
		z[rev[h-k]] = complex(ps-2*(A+B), (q-u)+2*(C-D))
	}
	if h >= 2 {
		// Self-paired midpoint: rot[h/2] is exactly -1/2, which reduces the
		// rotation to Z[h/2] = 2·a[h/2].
		z[rev[h/2]] = complex(2*real(a[h/2]), 2*imag(a[h/2]))
	}
	// Inverse-kernel FFT of length h over the pre-scattered z (unnormalized;
	// the synthesis constants are folded into W). Length-2 and length-4
	// stages use their exact twiddles (1 and ±i) fused into one pass.
	if h >= 4 {
		for s := 0; s < h; s += 4 {
			b0, b1, b2, b3 := z[s], z[s+1], z[s+2], z[s+3]
			t0, t1 := b0+b1, b0-b1
			t2, t3 := b2+b3, b2-b3
			it3 := complex(-imag(t3), real(t3)) // t3 *= +i (inverse kernel)
			z[s], z[s+2] = t0+t2, t0-t2
			z[s+1], z[s+3] = t1+it3, t1-it3
		}
	} else if h >= 2 {
		for s := 0; s < h; s += 2 {
			u, v := z[s], z[s+1]
			z[s], z[s+1] = u+v, u-v
		}
	}
	// Remaining stages, fused in radix-2² pairs: stage q and stage 2q are
	// combined using w_{4q}^{q+k} = i·w_{4q}^k, so each element is loaded and
	// stored once per two stages. When the stage count is odd, one plain
	// radix-2 stage at q=4 restores parity.
	tw := t.inv
	q := 4
	if stages := log2(h) - 2; stages > 0 && stages%2 == 1 {
		stage := tw[q-1 : 2*q-1]
		for start := 0; start < h; start += 2 * q {
			xa := z[start : start+q : start+q]
			xb := z[start+q : start+2*q : start+2*q]
			for k, w := range stage {
				u := xa[k]
				v := xb[k] * w
				xa[k] = u + v
				xb[k] = u - v
			}
		}
		q <<= 1
	}
	for ; 4*q <= h; q <<= 2 {
		u := tw[q-1 : 2*q-1]   // stage q twiddles (length-2q kernel)
		w := tw[2*q-1 : 3*q-1] // stage 2q twiddles, first q entries
		for start := 0; start < h; start += 4 * q {
			x0 := z[start : start+q : start+q]
			x1 := z[start+q : start+2*q : start+2*q]
			x2 := z[start+2*q : start+3*q : start+3*q]
			x3 := z[start+3*q : start+4*q : start+4*q]
			for k := 0; k < q; k++ {
				uk := u[k]
				b1 := x1[k] * uk
				b3 := x3[k] * uk
				t0, t1 := x0[k]+b1, x0[k]-b1
				t2, t3 := x2[k]+b3, x2[k]-b3
				wk := w[k]
				v2 := t2 * wk
				v3 := t3 * wk
				iv3 := complex(-imag(v3), real(v3)) // w^{q+k} = i·w^k
				x0[k] = t0 + v2
				x2[k] = t0 - v2
				x1[k] = t1 + iv3
				x3[k] = t1 - iv3
			}
		}
	}
	// Unpack: out[2j] = Re z[j], out[2j+1] = Im z[j].
	n := len(out)
	for j := 0; 2*j < n; j++ {
		v := z[j]
		out[2*j] = real(v)
		if 2*j+1 < n {
			out[2*j+1] = imag(v)
		}
	}
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// AutocovarianceKnownMeanInto is the zero-allocation counterpart of
// AutocovarianceKnownMean: it computes the biased autocovariance of x at lags
// 0..len(dst)-1 (clamped to len(x)-1) into dst, using the packed real-input
// FFT pipeline (two half-length transforms instead of two full complex ones)
// and the scratch buffers in s. It returns the filled prefix of dst. Results
// agree with AutocovarianceKnownMean to floating-point rounding, not
// bit-exactly — callers that pin bits must keep using the complex path.
func AutocovarianceKnownMeanInto(dst []float64, x []float64, mean float64, s *Scratch) []float64 {
	n := len(x)
	if n == 0 || len(dst) == 0 {
		return nil
	}
	maxLag := len(dst) - 1
	if maxLag >= n {
		maxLag = n - 1
	}
	m := NextPowerOfTwo(2 * n)
	h := m / 2
	a, z := s.buffers(h)
	j := 0
	for ; 2*j+1 < n; j++ {
		a[j] = complex(x[2*j]-mean, x[2*j+1]-mean)
	}
	if 2*j < n {
		a[j] = complex(x[2*j]-mean, 0)
		j++
	}
	for ; j < h; j++ {
		a[j] = 0
	}
	t := tablesFor(h)
	t.apply(a[:h], t.fwd)
	realUnpack(a, t)
	for k := 0; k <= h; k++ {
		re, im := real(a[k]), imag(a[k])
		a[k] = complex(re*re+im*im, 0)
	}
	out := dst[:maxLag+1]
	hermitianReal(out, a, z, t)
	// hermitianReal is unnormalized (a factor of m versus the inverse DFT);
	// fold that and the biased-estimator 1/n into one scale.
	inv := 1 / (float64(m) * float64(n))
	for k := range out {
		out[k] *= inv
	}
	return out
}
