package fft

import (
	"errors"
)

// ErrBadLength is returned by the real-transform helpers when a buffer does
// not satisfy the documented length contract.
var ErrBadLength = errors.New("fft: buffer length does not match transform size")

// Scratch holds reusable buffers for the zero-allocation real-FFT helpers.
// The zero value is ready to use; buffers grow on demand and are retained
// across calls, so a Scratch reused at a steady size performs no allocations.
// A Scratch must not be shared between concurrent calls.
type Scratch struct {
	a []complex128
	z []complex128
}

// buffers returns the two work arrays sized for half-length h: a of length
// h+1 (half-spectrum) and z of length h (packed samples).
func (s *Scratch) buffers(h int) (a, z []complex128) {
	if cap(s.a) < h+1 {
		s.a = make([]complex128, h+1)
	}
	if cap(s.z) < h {
		s.z = make([]complex128, h)
	}
	return s.a[:h+1], s.z[:h]
}

// RealForward computes the half-spectrum forward DFT of the real sequence x:
// a[k] for k = 0..h with h = len(x)/2 receives the same values Forward would
// produce in positions 0..h (the remaining positions follow by Hermitian
// symmetry and are not stored). len(x) must be a power of two and len(a) at
// least h+1. The transform packs adjacent sample pairs into one complex FFT
// of half the length, roughly halving the work of the complex path; the
// packing, permutation, and Hermitian unpack are fused into the first and
// last butterfly stages (see realForwardFused), bit-identical to the unfused
// RealForwardReference.
func RealForward(a []complex128, x []float64) error {
	m := len(x)
	if !IsPowerOfTwo(m) {
		return ErrNotPowerOfTwo
	}
	h := m / 2
	if len(a) < h+1 {
		return ErrBadLength
	}
	if m == 1 {
		a[0] = complex(x[0], 0)
		return nil
	}
	realForwardFused(a[:h+1], x, tablesFor(h))
	return nil
}

// RealForwardReference is the unfused oracle for RealForward: explicit pair
// packing, the half-length reference FFT, then the Hermitian unpack as a
// separate pass — the three passes the fused kernel collapses. RealForward
// must stay bit-identical to it (ForwardReference is itself bit-identical to
// the tabled transform the pre-fusion implementation used).
func RealForwardReference(a []complex128, x []float64) error {
	m := len(x)
	if !IsPowerOfTwo(m) {
		return ErrNotPowerOfTwo
	}
	h := m / 2
	if len(a) < h+1 {
		return ErrBadLength
	}
	if m == 1 {
		a[0] = complex(x[0], 0)
		return nil
	}
	for j := 0; j < h; j++ {
		a[j] = complex(x[2*j], x[2*j+1])
	}
	if err := ForwardReference(a[:h]); err != nil {
		return err
	}
	realUnpack(a[:h+1], tablesFor(h))
	return nil
}

// realForwardFused computes the half-spectrum of the 2h real samples in x
// into a (len(a) == h+1, h == t.n >= 1) as one fused pipeline:
//
//   - The pair packing z_j = (x[2j], x[2j+1]) is folded into the bit-reversal
//     scatter and the length-2 butterfly stage. For even i, rev[i+1] equals
//     rev[i]+h/2 (the low input bit reverses to the high output bit), so the
//     butterfly at positions (i, i+1) combines z_r and z_{r+h/2} with
//     r = rev[i] — both read straight out of x, never materialized.
//   - Middle stages run through the shared cache-tiled stage loops.
//   - The final butterfly stage is fused with the Hermitian unpack
//     (realForwardFinish), so Z is never stored either.
//
// Pack+scatter fusion is pure data movement and the butterfly arithmetic is
// untouched, so the result is bit-identical to the three-pass reference.
func realForwardFused(a []complex128, x []float64, t *tables) {
	h := t.n
	if h == 1 {
		a[0] = complex(x[0], x[1])
	} else {
		rev := t.rev
		for i := 0; i < h; i += 2 {
			r := int(rev[i])
			u := complex(x[2*r], x[2*r+1])
			v := complex(x[2*r+h], x[2*r+h+1])
			a[i], a[i+1] = u+v, u-v
		}
	}
	realForwardFinish(a, t)
}

// realForwardPadded is realForwardFused for the zero-padded autocovariance
// pack: element j of the packed sequence is x[j]-mean for j < len(x) and 0
// past the end. Bit-identical to packing into a zero-filled buffer first —
// the zeros flow through the same butterflies either way.
func realForwardPadded(a []complex128, x []float64, mean float64, t *tables) {
	h := t.n
	if h == 1 {
		a[0] = padAt(x, 0, mean)
	} else {
		rev := t.rev
		for i := 0; i < h; i += 2 {
			r := 2 * int(rev[i])
			u := padAt(x, r, mean)
			v := padAt(x, r+h, mean)
			a[i], a[i+1] = u+v, u-v
		}
	}
	realForwardFinish(a, t)
}

// padAt reads the packed pair starting at sample index j of the centered,
// zero-padded sequence.
func padAt(x []float64, j int, mean float64) complex128 {
	if j+1 < len(x) {
		return complex(x[j]-mean, x[j+1]-mean)
	}
	if j < len(x) {
		return complex(x[j]-mean, 0)
	}
	return 0
}

// realForwardFinish runs the middle butterfly stages (cache-tiled) over the
// packed spectrum in a[:h] and then the final stage fused with the Hermitian
// unpack. The final stage's butterfly k yields Z[k] and Z[h/2+k]; the unpack
// pair (k, h-k) needs Z[k] and Z[h-k], which is the "-" output of butterfly
// h/2-k — so butterflies k and h/2-k are processed together and their four
// outputs feed the unpack pairs (k, h-k) and (h/2-k, h/2+k) while still in
// registers. Butterfly 0 feeds the DC/Nyquist unpack and the conjugated
// midpoint; butterfly h/4 is self-paired. Per-butterfly and per-pair
// arithmetic is ordered exactly as the separate stage + realUnpack passes,
// so the fusion is bit-exact.
func realForwardFinish(a []complex128, t *tables) {
	h := t.n
	stages := t.fwdStages
	if h >= 8 {
		tile := h
		if tile > stageTile {
			tile = stageTile
		}
		if tile < h {
			for lo := 0; lo < h; lo += tile {
				stageRange(a[lo:lo+tile], stages, 2, tile)
			}
			stageRange(a[:h], stages, tile, h/2)
		} else {
			stageRange(a[:h], stages, 2, h/2)
		}
	}
	switch {
	case h >= 4:
		h2, h4 := h>>1, h>>2
		stage := stages[len(stages)-1]
		rot := t.rotation()
		v0 := a[h2] * stage[0]
		z0 := a[0] + v0
		zn := a[0] - v0 // Z[h/2], the self-conjugate midpoint
		a[h2] = complex(real(zn), -imag(zn))
		a[h] = complex(real(z0)-imag(z0), 0)
		a[0] = complex(real(z0)+imag(z0), 0)
		for k := 1; k < h4; k++ {
			j := h2 - k
			uk, vk := a[k], a[k+h2]*stage[k]
			zk, zka := uk+vk, uk-vk // Z[k], Z[h/2+k]
			uj, vj := a[j], a[j+h2]*stage[j]
			zj, zja := uj+vj, uj-vj // Z[h/2-k], Z[h-k]
			a[k], a[h-k] = unpackPair(zk, zja, rot[k])
			a[j], a[h2+k] = unpackPair(zj, zka, rot[j])
		}
		um, vm := a[h4], a[h4+h2]*stage[h4]
		a[h4], a[h-h4] = unpackPair(um+vm, um-vm, rot[h4])
	case h == 2:
		z0, z1 := a[0], a[1]
		a[0] = complex(real(z0)+imag(z0), 0)
		a[2] = complex(real(z0)-imag(z0), 0)
		a[1] = complex(real(z1), -imag(z1))
	default: // h == 1
		z0 := a[0]
		a[0] = complex(real(z0)+imag(z0), 0)
		a[1] = complex(real(z0)-imag(z0), 0)
	}
}

// unpackPair applies the Hermitian unpack identity to the final-stage
// butterfly outputs zk = Z[k] and zm = Z[h-k] with rk = rot[k], ordered
// exactly as realUnpack's loop body so the fused path stays bit-identical.
func unpackPair(zk, zm, rk complex128) (ak, am complex128) {
	czm := complex(real(zm), -imag(zm))
	czk := complex(real(zk), -imag(zk))
	f := complex(real(rk), -imag(rk)) // conj(rot[k]) = -(i/2)ω^k
	ak = (zk+czm)*complex(0.5, 0) + f*(zk-czm)
	am = (zm+czk)*complex(0.5, 0) + rk*(zm-czk)
	return ak, am
}

// realUnpack converts the packed half-length spectrum Z (in a[:h]) into the
// half-spectrum A (in a[:h+1]) of the underlying real sequence, in place:
//
//	A[k] = (Z[k]+conj(Z[h-k]))/2 - (i/2)·ω^k·(Z[k]-conj(Z[h-k])), ω = e^{-2πi/m}
//
// using f[h-k] = conj(f[k]) for the mirror factor, so only the table of
// f[k] = conj(rot[k]) for k ≤ h/2 is needed. Retained as the reference
// unpack pass; the production path runs it fused into the final butterfly
// stage (realForwardFinish).
func realUnpack(a []complex128, t *tables) {
	h := len(a) - 1
	rot := t.rotation()
	z0 := a[0]
	a[0] = complex(real(z0)+imag(z0), 0)
	a[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k < h-k; k++ {
		zk, zm := a[k], a[h-k]
		czm := complex(real(zm), -imag(zm))
		czk := complex(real(zk), -imag(zk))
		f := complex(real(rot[k]), -imag(rot[k])) // conj(rot[k]) = -(i/2)ω^k
		a[k] = (zk+czm)*complex(0.5, 0) + f*(zk-czm)
		a[h-k] = (zm+czk)*complex(0.5, 0) + rot[k]*(zm-czk)
	}
	if h >= 2 {
		mid := a[h/2]
		a[h/2] = complex(real(mid), -imag(mid))
	}
}

// HermitianReal synthesizes a real sequence from its Hermitian half-spectrum:
// with m = 2(len(a)-1), it writes
//
//	out[p] = Σ_{k=0}^{m-1} Ā[k]·e^{-2πipk/m},  p = 0..len(out)-1
//
// where Ā is the Hermitian extension of a (Ā[m-k] = conj(a[k])). This is the
// synthesis Davies–Harte needs: the real part of the full forward DFT of a
// Hermitian spectrum, computed with one complex FFT of length m/2 instead of
// length m. The imaginary parts of a[0] and a[len(a)-1] are ignored (they
// must be zero for a Hermitian spectrum). a is left unmodified; z is scratch
// of length at least len(a)-1; len(out) must not exceed m. len(a)-1 must be a
// power of two.
func HermitianReal(out []float64, a, z []complex128) error {
	h := len(a) - 1
	if !IsPowerOfTwo(h) {
		return ErrNotPowerOfTwo
	}
	if len(z) < h || len(out) > 2*h {
		return ErrBadLength
	}
	t := tablesFor(h)
	hermitianScatter(z[:h], a, t)
	hermitianKernel(out, z[:h], t)
	return nil
}

// HermitianRealScaled is HermitianReal over the spectrum w[k]·a[k] without
// materializing it: the real per-bin weights (for Davies–Harte, the
// √(n·λ_k) spectrum scales) are folded into the kernel's pair-rotation
// first pass. The products w[k]·Re a[k] and w[k]·Im a[k] are the same
// multiplies a pre-scaling pass would perform, so the output is
// bit-identical to scaling first and calling HermitianReal. len(w) must be
// at least len(a).
func HermitianRealScaled(out []float64, a []complex128, w []float64, z []complex128) error {
	h := len(a) - 1
	if !IsPowerOfTwo(h) {
		return ErrNotPowerOfTwo
	}
	if len(z) < h || len(out) > 2*h || len(w) < h+1 {
		return ErrBadLength
	}
	t := tablesFor(h)
	hermitianScatterScaled(z[:h], a, w, t)
	hermitianKernel(out, z[:h], t)
	return nil
}

// HermitianRealConjProduct is HermitianReal over the spectrum
// conj(s[k]·g[k]) without materializing it: the bin-wise product and
// conjugation (the correction-spectrum stitch in internal/streamblock) run
// inside the kernel's pair-rotation first pass. The operation sequence per
// bin matches a separate multiply-conjugate pass exactly, so the output is
// bit-identical to computing the product spectrum first. len(g) must be at
// least len(s); s and g are left unmodified.
func HermitianRealConjProduct(out []float64, s, g, z []complex128) error {
	h := len(s) - 1
	if !IsPowerOfTwo(h) {
		return ErrNotPowerOfTwo
	}
	if len(z) < h || len(out) > 2*h || len(g) < h+1 {
		return ErrBadLength
	}
	t := tablesFor(h)
	hermitianScatterConjProduct(z[:h], s, g, t)
	hermitianKernel(out, z[:h], t)
	return nil
}

// hermitianScatter performs the pair-rotation pass over the half-spectrum a
// as-is, scattering Z to bit-reversed positions for hermitianKernel. Reading
// the conjugated doubled spectrum W[k] = 2·conj(A[k]) on the fly, the packed
// half-length input is
//
//	Z[k]   = (W[k]+conj(W[h-k]))/2 + rot[k]·(W[k]-conj(W[h-k]))
//	Z[h-k] = (W[h-k]+conj(W[k]))/2 + conj(rot[k])·(W[h-k]-conj(W[k]))
//
// With A[k] = (p,q), A[h-k] = (s,u), rot[k] = (rr,ri), and the shared terms
// A = rr·(p-s), B = ri·(q+u), C = ri·(p-s), D = rr·(q+u), expanding the
// complex algebra gives
//
//	Z[k]   = (p+s + 2(A+B),  (u-q) + 2(C-D))
//	Z[h-k] = (p+s - 2(A+B),  (q-u) + 2(C-D))
//
// — four real multiplies per pair instead of four complex products. The
// scaled and conj-product variants repeat this body verbatim (it exceeds the
// inliner's budget as a helper, and the scatter runs once per synthesized
// block); only the spectrum reads feeding (p,q,s,u) differ.
func hermitianScatter(z, a []complex128, t *tables) {
	h := t.n
	rot := t.rotation()
	rev := t.rev
	a0, ah := real(a[0]), real(a[h])
	z[0] = complex(a0+ah, a0-ah)
	for k := 1; k < h-k; k++ {
		p, q := real(a[k]), imag(a[k])
		s, u := real(a[h-k]), imag(a[h-k])
		rr, ri := real(rot[k]), imag(rot[k])
		dp := p - s // Re difference
		sq := q + u // Im sum
		A := rr * dp
		B := ri * sq
		C := ri * dp
		D := rr * sq
		ps := p + s
		z[rev[k]] = complex(ps+2*(A+B), (u-q)+2*(C-D))
		z[rev[h-k]] = complex(ps-2*(A+B), (q-u)+2*(C-D))
	}
	if h >= 2 {
		// Self-paired midpoint: rot[h/2] is exactly -1/2, which reduces the
		// rotation to Z[h/2] = 2·a[h/2].
		z[rev[h/2]] = complex(2*real(a[h/2]), 2*imag(a[h/2]))
	}
}

// hermitianScatterScaled is hermitianScatter over the spectrum w[k]·a[k],
// computing each scaled component inline. A pre-scaling pass would perform
// the identical multiplies, so the Z values are bit-equal.
func hermitianScatterScaled(z, a []complex128, w []float64, t *tables) {
	h := t.n
	rot := t.rotation()
	rev := t.rev
	a0, ah := w[0]*real(a[0]), w[h]*real(a[h])
	z[0] = complex(a0+ah, a0-ah)
	for k := 1; k < h-k; k++ {
		wk, wm := w[k], w[h-k]
		p, q := wk*real(a[k]), wk*imag(a[k])
		s, u := wm*real(a[h-k]), wm*imag(a[h-k])
		rr, ri := real(rot[k]), imag(rot[k])
		dp := p - s
		sq := q + u
		A := rr * dp
		B := ri * sq
		C := ri * dp
		D := rr * sq
		ps := p + s
		z[rev[k]] = complex(ps+2*(A+B), (u-q)+2*(C-D))
		z[rev[h-k]] = complex(ps-2*(A+B), (q-u)+2*(C-D))
	}
	if h >= 2 {
		wm := w[h/2]
		z[rev[h/2]] = complex(2*(wm*real(a[h/2])), 2*(wm*imag(a[h/2])))
	}
}

// hermitianScatterConjProduct is hermitianScatter over the spectrum
// conj(s[k]·g[k]), computing each product bin inline. The per-bin sequence —
// complex product, then negated imaginary part — matches a separate
// multiply-conjugate pass, so the Z values are bit-equal.
func hermitianScatterConjProduct(z, spec, g []complex128, t *tables) {
	h := t.n
	rot := t.rotation()
	rev := t.rev
	a0, ah := real(spec[0]*g[0]), real(spec[h]*g[h])
	z[0] = complex(a0+ah, a0-ah)
	for k := 1; k < h-k; k++ {
		vk := spec[k] * g[k]
		vm := spec[h-k] * g[h-k]
		p, q := real(vk), -imag(vk)
		s, u := real(vm), -imag(vm)
		rr, ri := real(rot[k]), imag(rot[k])
		dp := p - s
		sq := q + u
		A := rr * dp
		B := ri * sq
		C := ri * dp
		D := rr * sq
		ps := p + s
		z[rev[k]] = complex(ps+2*(A+B), (u-q)+2*(C-D))
		z[rev[h-k]] = complex(ps-2*(A+B), (q-u)+2*(C-D))
	}
	if h >= 2 {
		vm := spec[h/2] * g[h/2]
		z[rev[h/2]] = complex(2*real(vm), 2*(-imag(vm)))
	}
}

// hermitianKernel runs the unnormalized half-length inverse-kernel FFT over
// the pre-scattered z and unpacks the interleaved result into out
// (out[2j] = Re z[j], out[2j+1] = Im z[j]). This path is not bit-pinned to
// the complex transform, so it takes the liberties the golden-traced path
// cannot: the length-2 and length-4 stages fuse into one pass with exact
// ±i twiddles, and later stages run as fused radix-2² double stages that
// touch each element once per two stages. Stages whose blocks fit in a cache
// tile run tile by tile (one memory pass for all of them); the remaining
// large stages continue the same radix-2² progression globally — a pure
// reordering of independent butterflies, so tiling never changes bits.
func hermitianKernel(out []float64, z []complex128, t *tables) {
	h := t.n
	if h >= 4 {
		tile := h
		if tile > stageTile {
			tile = stageTile
		}
		odd := (log2(h)-2)%2 == 1
		q := 0
		for lo := 0; lo < h; lo += tile {
			q = hermitianTileStages(z[lo:lo+tile], t, odd)
		}
		hermitianDoubleStages(z[:h], t, q, h)
	} else if h >= 2 {
		for s := 0; s < h; s += 2 {
			u, v := z[s], z[s+1]
			z[s], z[s+1] = u+v, u-v
		}
	}
	n := len(out)
	for j := 0; 2*j < n; j++ {
		v := z[j]
		out[2*j] = real(v)
		if 2*j+1 < n {
			out[2*j+1] = imag(v)
		}
	}
}

// hermitianTileStages runs every inverse-kernel stage whose butterfly blocks
// fit within one tile z (len(z) >= 4, a power of two): the fused length-2 +
// length-4 first pass, the parity stage when the total stage count of the
// full transform is odd, then radix-2² double stages up to the tile size. It
// returns the half-length the radix-2² progression reached, for
// hermitianDoubleStages to continue globally.
func hermitianTileStages(z []complex128, t *tables, odd bool) int {
	tile := len(z)
	for s := 0; s < tile; s += 4 {
		b0, b1, b2, b3 := z[s], z[s+1], z[s+2], z[s+3]
		t0, t1 := b0+b1, b0-b1
		t2, t3 := b2+b3, b2-b3
		it3 := complex(-imag(t3), real(t3)) // t3 *= +i (inverse kernel)
		z[s], z[s+2] = t0+t2, t0-t2
		z[s+1], z[s+3] = t1+it3, t1-it3
	}
	q := 4
	if odd && q < tile {
		// One plain radix-2 stage restores parity for the double stages.
		stage := t.invStages[2]
		for start := 0; start < tile; start += 2 * q {
			xa := z[start : start+q : start+q]
			xb := z[start+q : start+2*q : start+2*q]
			for k, w := range stage {
				u := xa[k]
				v := xb[k] * w
				xa[k] = u + v
				xb[k] = u - v
			}
		}
		q <<= 1
	}
	return hermitianDoubleStages(z, t, q, tile)
}

// hermitianDoubleStages runs fused radix-2² double stages over z, starting
// at half-length q and stopping once a double stage would span more than
// limit elements. Stage q and stage 2q combine using w_{4q}^{q+k} = i·w_{4q}^k,
// so each element is loaded and stored once per two stages. It returns the
// half-length reached.
func hermitianDoubleStages(z []complex128, t *tables, q, limit int) int {
	tw := t.inv
	n := len(z)
	for ; 4*q <= limit; q <<= 2 {
		u := tw[q-1 : 2*q-1]   // stage q twiddles (length-2q kernel)
		w := tw[2*q-1 : 3*q-1] // stage 2q twiddles, first q entries
		for start := 0; start < n; start += 4 * q {
			x0 := z[start : start+q : start+q]
			x1 := z[start+q : start+2*q : start+2*q]
			x2 := z[start+2*q : start+3*q : start+3*q]
			x3 := z[start+3*q : start+4*q : start+4*q]
			for k := 0; k < q; k++ {
				uk := u[k]
				b1 := x1[k] * uk
				b3 := x3[k] * uk
				t0, t1 := x0[k]+b1, x0[k]-b1
				t2, t3 := x2[k]+b3, x2[k]-b3
				wk := w[k]
				v2 := t2 * wk
				v3 := t3 * wk
				iv3 := complex(-imag(v3), real(v3)) // w^{q+k} = i·w^k
				x0[k] = t0 + v2
				x2[k] = t0 - v2
				x1[k] = t1 + iv3
				x3[k] = t1 - iv3
			}
		}
	}
	return q
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// AutocovarianceKnownMeanInto is the zero-allocation counterpart of
// AutocovarianceKnownMean: it computes the biased autocovariance of x at lags
// 0..len(dst)-1 (clamped to len(x)-1) into dst, using the fused packed
// real-input FFT pipeline (two half-length transforms instead of two full
// complex ones) and the scratch buffers in s. It returns the filled prefix of
// dst. Results agree with AutocovarianceKnownMean to floating-point rounding,
// not bit-exactly — callers that pin bits must keep using the complex path.
func AutocovarianceKnownMeanInto(dst []float64, x []float64, mean float64, s *Scratch) []float64 {
	n := len(x)
	if n == 0 || len(dst) == 0 {
		return nil
	}
	maxLag := len(dst) - 1
	if maxLag >= n {
		maxLag = n - 1
	}
	m := NextPowerOfTwo(2 * n)
	h := m / 2
	a, z := s.buffers(h)
	t := tablesFor(h)
	realForwardPadded(a, x, mean, t)
	for k := 0; k <= h; k++ {
		re, im := real(a[k]), imag(a[k])
		a[k] = complex(re*re+im*im, 0)
	}
	out := dst[:maxLag+1]
	hermitianScatter(z, a, t)
	hermitianKernel(out, z, t)
	// hermitianKernel is unnormalized (a factor of m versus the inverse DFT);
	// fold that and the biased-estimator 1/n into one scale.
	inv := 1 / (float64(m) * float64(n))
	for k := range out {
		out[k] *= inv
	}
	return out
}
