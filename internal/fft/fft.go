// Package fft implements an iterative radix-2 complex fast Fourier transform
// together with the real-sequence helpers the library needs: fast circular
// and linear autocovariance, and power spectral density estimation. Only
// power-of-two lengths are transformed directly; helpers pad as needed.
package fft

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrNotPowerOfTwo is returned when a transform is requested on a slice whose
// length is not a power of two.
var ErrNotPowerOfTwo = errors.New("fft: length is not a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// maxPowerOfTwo is the largest power of two representable in an int
// (2^62 on 64-bit platforms, 2^30 on 32-bit).
const maxPowerOfTwo = (int(^uint(0)>>1) >> 1) + 1

// NextPowerOfTwo returns the smallest power of two >= n (and >= 1). It
// panics when n exceeds the largest power-of-two int: the doubling loop
// would otherwise overflow through negative values and spin forever, and no
// caller can allocate a buffer that large anyway.
func NextPowerOfTwo(n int) int {
	if n > maxPowerOfTwo {
		panic("fft: NextPowerOfTwo overflow: no power-of-two int >= n")
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Forward computes the in-place forward DFT of x. len(x) must be a power of
// two. The transform is unnormalized: Inverse(Forward(x)) == x. Twiddle
// factors and the bit-reversal permutation come from a process-wide per-size
// cache (see tables), and the result is bit-identical to ForwardReference.
func Forward(x []complex128) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return ErrNotPowerOfTwo
	}
	t := tablesFor(n)
	t.apply(x, t.fwdStages)
	return nil
}

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization. len(x) must be a power of two. Like Forward it runs off the
// cached tables and is bit-identical to InverseReference.
func Inverse(x []complex128) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return ErrNotPowerOfTwo
	}
	t := tablesFor(n)
	t.apply(x, t.invStages)
	d := complex(float64(n), 0)
	for i := range x {
		x[i] /= d
	}
	return nil
}

// referenceTransform performs the radix-2 Cooley–Tukey FFT in place with
// on-the-fly twiddles — the seed implementation, kept as the oracle for the
// tabled path.
func referenceTransform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		angle := 2 * math.Pi / float64(length)
		if !inverse {
			angle = -angle
		}
		wl := cmplx.Rect(1, angle)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length >> 1
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// ForwardReal computes the DFT of a real sequence, zero-padding to the next
// power of two at least as large as len(x). It returns the complex spectrum.
func ForwardReal(x []float64) []complex128 {
	n := NextPowerOfTwo(len(x))
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	// Length is a power of two by construction.
	if err := Forward(c); err != nil {
		panic("fft: internal padding error: " + err.Error())
	}
	return c
}

// Autocovariance computes the biased sample autocovariance of x at lags
// 0..maxLag using FFT-based linear correlation (zero padding to avoid
// circular wrap-around). The biased estimator divides by len(x) at every lag,
// matching the classical definition used in time-series analysis.
func Autocovariance(x []float64, maxLag int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	return AutocovarianceKnownMean(x, mean, maxLag)
}

// AutocovarianceKnownMean is Autocovariance with an externally supplied mean.
// Subtracting the true process mean (when it is known, e.g. zero for a
// synthetic Gaussian background process) removes the substantial negative
// bias the sample-mean version suffers on long-range dependent series.
func AutocovarianceKnownMean(x []float64, mean float64, maxLag int) []float64 {
	n := len(x)
	if n == 0 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	// Zero-pad to at least 2n to make circular correlation linear.
	m := NextPowerOfTwo(2 * n)
	c := make([]complex128, m)
	for i, v := range x {
		c[i] = complex(v-mean, 0)
	}
	if err := Forward(c); err != nil {
		panic("fft: internal padding error: " + err.Error())
	}
	for i := range c {
		re, im := real(c[i]), imag(c[i])
		c[i] = complex(re*re+im*im, 0)
	}
	if err := Inverse(c); err != nil {
		panic("fft: internal padding error: " + err.Error())
	}
	acov := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		acov[k] = real(c[k]) / float64(n)
	}
	return acov
}

// Autocorrelation computes the sample autocorrelation of x at lags 0..maxLag
// (so the result has maxLag+1 entries, with result[0] == 1 for any
// non-constant series).
func Autocorrelation(x []float64, maxLag int) []float64 {
	return normalizeACF(Autocovariance(x, maxLag))
}

// AutocorrelationKnownMean is Autocorrelation with an externally supplied
// mean; see AutocovarianceKnownMean.
func AutocorrelationKnownMean(x []float64, mean float64, maxLag int) []float64 {
	return normalizeACF(AutocovarianceKnownMean(x, mean, maxLag))
}

func normalizeACF(acov []float64) []float64 {
	if len(acov) == 0 {
		return nil
	}
	v := acov[0]
	if v == 0 {
		// Constant series: autocorrelation is undefined; return zeros past lag 0.
		out := make([]float64, len(acov))
		out[0] = 1
		return out
	}
	out := make([]float64, len(acov))
	for i, a := range acov {
		out[i] = a / v
	}
	return out
}

// Periodogram returns the raw periodogram I(f_j) of x at the Fourier
// frequencies f_j = j/n', j = 1..n'/2-1, where n' is the padded length.
// It returns parallel slices of frequencies and intensities. The periodogram
// is normalized as |DFT|^2 / (2*pi*n'), the convention used by
// periodogram-based Hurst estimation.
func Periodogram(x []float64) (freqs, intensity []float64) {
	n := len(x)
	if n < 4 {
		return nil, nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	centered := make([]float64, n)
	for i, v := range x {
		centered[i] = v - mean
	}
	spec := ForwardReal(centered)
	np := len(spec)
	half := np / 2
	freqs = make([]float64, 0, half-1)
	intensity = make([]float64, 0, half-1)
	for j := 1; j < half; j++ {
		re, im := real(spec[j]), imag(spec[j])
		freqs = append(freqs, 2*math.Pi*float64(j)/float64(np))
		intensity = append(intensity, (re*re+im*im)/(2*math.Pi*float64(np)))
	}
	return freqs, intensity
}
