package fft

import (
	"encoding/binary"
	"math"
	"testing"

	"vbrsim/internal/rng"
)

// TestRealForwardParity checks the packed real-input FFT against the complex
// Forward on random inputs across every power-of-two size from 2 to 2^16.
func TestRealForwardParity(t *testing.T) {
	r := rng.New(101)
	// 2^17 samples means a half-length of 2^16, which crosses the stageTile
	// boundary with global middle stages between the tiled stages and the
	// fused final stage.
	max := 1 << 17
	if testing.Short() {
		max = 1 << 13
	}
	for m := 2; m <= max; m <<= 1 {
		x := make([]float64, m)
		for i := range x {
			x[i] = r.Norm()
		}
		want := make([]complex128, m)
		for i, v := range x {
			want[i] = complex(v, 0)
		}
		if err := Forward(want); err != nil {
			t.Fatal(err)
		}
		h := m / 2
		a := make([]complex128, h+1)
		if err := RealForward(a, x); err != nil {
			t.Fatal(err)
		}
		// Scale-aware tolerance: spectrum entries are O(sqrt(m)).
		tol := 1e-12 * math.Sqrt(float64(m)) * 10
		for k := 0; k <= h; k++ {
			if d := cAbs(a[k] - want[k]); d > tol {
				t.Fatalf("m=%d: RealForward[%d] = %v, Forward = %v (|diff| %g > %g)", m, k, a[k], want[k], d, tol)
			}
		}
	}
}

func cAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// TestHermitianRealParity feeds random Hermitian half-spectra through
// HermitianReal and compares with the full complex Forward of the Hermitian
// extension.
func TestHermitianRealParity(t *testing.T) {
	r := rng.New(55)
	// h = 2^16 crosses the stageTile boundary: tiled first passes plus global
	// radix-2² double stages.
	max := 1 << 16
	if testing.Short() {
		max = 1 << 12
	}
	for h := 1; h <= max; h <<= 1 {
		m := 2 * h
		a := make([]complex128, h+1)
		a[0] = complex(r.Norm(), 0)
		a[h] = complex(r.Norm(), 0)
		for k := 1; k < h; k++ {
			a[k] = complex(r.Norm(), r.Norm())
		}
		full := make([]complex128, m)
		copy(full, a)
		for k := 1; k < h; k++ {
			full[m-k] = complex(real(a[k]), -imag(a[k]))
		}
		if err := Forward(full); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, m)
		z := make([]complex128, h)
		if err := HermitianReal(out, a, z); err != nil {
			t.Fatal(err)
		}
		tol := 1e-12 * float64(m) * 10
		for p := 0; p < m; p++ {
			if d := math.Abs(out[p] - real(full[p])); d > tol {
				t.Fatalf("h=%d: HermitianReal[%d] = %v, Forward = %v (diff %g)", h, p, out[p], real(full[p]), d)
			}
			if im := math.Abs(imag(full[p])); im > tol {
				t.Fatalf("h=%d: Hermitian spectrum gave non-real output at %d: %v", h, p, full[p])
			}
		}
		// A truncated output prefix matches the full synthesis.
		short := make([]float64, m/2+1)
		if err := HermitianReal(short, a, z); err != nil {
			t.Fatal(err)
		}
		for p := range short {
			if short[p] != out[p] {
				t.Fatalf("h=%d: truncated synthesis diverges at %d", h, p)
			}
		}
	}
}

func TestRealForwardErrors(t *testing.T) {
	if err := RealForward(make([]complex128, 4), make([]float64, 6)); err != ErrNotPowerOfTwo {
		t.Fatalf("non-power-of-two length: got %v", err)
	}
	if err := RealForward(make([]complex128, 2), make([]float64, 8)); err != ErrBadLength {
		t.Fatalf("short spectrum buffer: got %v", err)
	}
	if err := HermitianReal(make([]float64, 4), make([]complex128, 4), make([]complex128, 3)); err != ErrNotPowerOfTwo {
		t.Fatalf("non-power-of-two half length: got %v", err)
	}
	if err := HermitianReal(make([]float64, 4), make([]complex128, 3), make([]complex128, 1)); err != ErrBadLength {
		t.Fatalf("short scratch: got %v", err)
	}
	if err := HermitianReal(make([]float64, 9), make([]complex128, 5), make([]complex128, 4)); err != ErrBadLength {
		t.Fatalf("oversized output: got %v", err)
	}
}

// TestAutocovarianceIntoMatches compares the real-FFT autocovariance against
// the complex-path original, including odd lengths and clamped lags.
func TestAutocovarianceIntoMatches(t *testing.T) {
	r := rng.New(17)
	var s Scratch
	for _, n := range []int{1, 2, 3, 7, 64, 100, 1023, 4096} {
		x := make([]float64, n)
		mean := 0.0
		for i := range x {
			x[i] = r.Norm() + 0.3
			mean += x[i]
		}
		mean /= float64(n)
		for _, maxLag := range []int{0, 1, n / 2, n - 1, n + 5} {
			want := AutocovarianceKnownMean(x, mean, maxLag)
			dst := make([]float64, maxLag+1)
			got := AutocovarianceKnownMeanInto(dst, x, mean, &s)
			if len(got) != len(want) {
				t.Fatalf("n=%d maxLag=%d: len %d, want %d", n, maxLag, len(got), len(want))
			}
			for k := range got {
				if d := math.Abs(got[k] - want[k]); d > 1e-10*(1+math.Abs(want[k])) {
					t.Fatalf("n=%d lag=%d: got %v want %v", n, k, got[k], want[k])
				}
			}
		}
	}
}

// sameBits reports whether two complex values are bitwise identical.
func sameBits(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

// TestRealForwardBitIdentical pins the fused RealForward to the unfused
// three-pass reference bit-for-bit at every power-of-two size through the
// tile boundary: the fused pack/scatter/first-stage and final-stage/unpack
// kernels must not change a single ulp.
func TestRealForwardBitIdentical(t *testing.T) {
	r := rng.New(311)
	max := 1 << 17
	if testing.Short() {
		max = 1 << 13
	}
	for m := 1; m <= max; m <<= 1 {
		x := make([]float64, m)
		for i := range x {
			x[i] = r.Norm()
		}
		h := m / 2
		got := make([]complex128, h+1)
		want := make([]complex128, h+1)
		if err := RealForward(got, x); err != nil {
			t.Fatal(err)
		}
		if err := RealForwardReference(want, x); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if !sameBits(got[k], want[k]) {
				t.Fatalf("m=%d: RealForward[%d] = %v, reference = %v (not bit-identical)", m, k, got[k], want[k])
			}
		}
	}
}

// TestHermitianRealScaledBitIdentical checks that folding the per-bin weights
// into the synthesis kernel's first pass yields exactly the bits that scaling
// the spectrum first would: the fused multiply w[k]·a[k] is the same multiply
// a pre-scaling pass performs.
func TestHermitianRealScaledBitIdentical(t *testing.T) {
	r := rng.New(313)
	max := 1 << 16
	if testing.Short() {
		max = 1 << 12
	}
	for h := 1; h <= max; h <<= 2 {
		a := make([]complex128, h+1)
		w := make([]float64, h+1)
		a[0] = complex(r.Norm(), 0)
		a[h] = complex(r.Norm(), 0)
		for k := 1; k < h; k++ {
			a[k] = complex(r.Norm(), r.Norm())
		}
		for k := range w {
			w[k] = math.Abs(r.Norm()) + 0.1
		}
		scaled := make([]complex128, h+1)
		for k := range a {
			scaled[k] = complex(w[k]*real(a[k]), w[k]*imag(a[k]))
		}
		z := make([]complex128, h)
		want := make([]float64, 2*h)
		if err := HermitianReal(want, scaled, z); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, 2*h)
		if err := HermitianRealScaled(got, a, w, z); err != nil {
			t.Fatal(err)
		}
		for p := range want {
			if math.Float64bits(got[p]) != math.Float64bits(want[p]) {
				t.Fatalf("h=%d: HermitianRealScaled[%d] = %v, pre-scaled = %v (not bit-identical)", h, p, got[p], want[p])
			}
		}
	}
}

// TestHermitianRealConjProductBitIdentical checks the fused conjugated
// product spectrum (the streamblock stitch) against materializing
// conj(s[k]·g[k]) first, bit-for-bit.
func TestHermitianRealConjProductBitIdentical(t *testing.T) {
	r := rng.New(317)
	max := 1 << 16
	if testing.Short() {
		max = 1 << 12
	}
	for h := 1; h <= max; h <<= 2 {
		s := make([]complex128, h+1)
		g := make([]complex128, h+1)
		for k := range s {
			s[k] = complex(r.Norm(), r.Norm())
			g[k] = complex(r.Norm(), r.Norm())
		}
		prod := make([]complex128, h+1)
		for k := range s {
			v := s[k] * g[k]
			prod[k] = complex(real(v), -imag(v))
		}
		z := make([]complex128, h)
		want := make([]float64, 2*h)
		if err := HermitianReal(want, prod, z); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, 2*h)
		if err := HermitianRealConjProduct(got, s, g, z); err != nil {
			t.Fatal(err)
		}
		for p := range want {
			if math.Float64bits(got[p]) != math.Float64bits(want[p]) {
				t.Fatalf("h=%d: HermitianRealConjProduct[%d] = %v, materialized = %v (not bit-identical)", h, p, got[p], want[p])
			}
		}
	}
}

func TestHermitianRealVariantErrors(t *testing.T) {
	out := make([]float64, 4)
	a := make([]complex128, 3)
	z := make([]complex128, 2)
	if err := HermitianRealScaled(out, a, make([]float64, 2), z); err != ErrBadLength {
		t.Fatalf("short weights: got %v", err)
	}
	if err := HermitianRealScaled(out, make([]complex128, 4), make([]float64, 4), z); err != ErrNotPowerOfTwo {
		t.Fatalf("non-power-of-two half length: got %v", err)
	}
	if err := HermitianRealConjProduct(out, a, make([]complex128, 2), z); err != ErrBadLength {
		t.Fatalf("short second spectrum: got %v", err)
	}
	if err := HermitianRealConjProduct(out, a, a, make([]complex128, 1)); err != ErrBadLength {
		t.Fatalf("short scratch: got %v", err)
	}
}

// TestScratchMixedSizes reuses one Scratch across interleaved transform
// sizes, checking each result is bitwise the result a fresh Scratch
// produces: buffer growth and stale contents from another size must not
// leak into the output.
func TestScratchMixedSizes(t *testing.T) {
	r := rng.New(29)
	var shared Scratch
	sizes := []int{64, 4096, 3, 1000, 64, 1, 511, 4096, 2}
	for _, n := range sizes {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Norm()
		}
		dst := make([]float64, n)
		got := AutocovarianceKnownMeanInto(dst, x, 0.1, &shared)
		var fresh Scratch
		want := AutocovarianceKnownMeanInto(make([]float64, n), x, 0.1, &fresh)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d, want %d", n, len(got), len(want))
		}
		for k := range got {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("n=%d lag=%d: shared scratch %v, fresh scratch %v", n, k, got[k], want[k])
			}
		}
	}
}

// FuzzRealForwardVsReference feeds arbitrary sample bytes through the fused
// RealForward and the unfused reference, requiring bit-identical spectra.
func FuzzRealForwardVsReference(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	seed := make([]byte, 0, 64*8)
	r := rng.New(97)
	for i := 0; i < 64; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(r.Norm()))
		seed = append(seed, b[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n == 0 {
			return
		}
		m := 1
		for 2*m <= n && 2*m <= 1<<12 {
			m <<= 1
		}
		x := make([]float64, m)
		for i := range x {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(i) // keep comparisons meaningful; NaN != NaN bitwise is fine either way
			}
			x[i] = v
		}
		h := m / 2
		got := make([]complex128, h+1)
		want := make([]complex128, h+1)
		if err := RealForward(got, x); err != nil {
			t.Fatal(err)
		}
		if err := RealForwardReference(want, x); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if !sameBits(got[k], want[k]) {
				t.Fatalf("m=%d: fused[%d] = %v, reference = %v (not bit-identical)", m, k, got[k], want[k])
			}
		}
	})
}

// TestRealPathZeroAlloc locks in the zero-steady-state-allocation contract of
// the scratch-based real-FFT helpers.
func TestRealPathZeroAlloc(t *testing.T) {
	r := rng.New(23)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = r.Norm()
	}
	var s Scratch
	dst := make([]float64, 201)
	AutocovarianceKnownMeanInto(dst, x, 0, &s) // warm scratch + tables
	allocs := testing.AllocsPerRun(20, func() {
		AutocovarianceKnownMeanInto(dst, x, 0, &s)
	})
	if allocs != 0 {
		t.Fatalf("AutocovarianceKnownMeanInto allocates %v/op at steady state, want 0", allocs)
	}

	a := make([]complex128, len(x)/2+1)
	if err := RealForward(a, x); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if err := RealForward(a, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RealForward allocates %v/op at steady state, want 0", allocs)
	}
}
