package fft

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
)

// TestRealForwardParity checks the packed real-input FFT against the complex
// Forward on random inputs across every power-of-two size from 2 to 2^16.
func TestRealForwardParity(t *testing.T) {
	r := rng.New(101)
	for m := 2; m <= 1<<16; m <<= 1 {
		x := make([]float64, m)
		for i := range x {
			x[i] = r.Norm()
		}
		want := make([]complex128, m)
		for i, v := range x {
			want[i] = complex(v, 0)
		}
		if err := Forward(want); err != nil {
			t.Fatal(err)
		}
		h := m / 2
		a := make([]complex128, h+1)
		if err := RealForward(a, x); err != nil {
			t.Fatal(err)
		}
		// Scale-aware tolerance: spectrum entries are O(sqrt(m)).
		tol := 1e-12 * math.Sqrt(float64(m)) * 10
		for k := 0; k <= h; k++ {
			if d := cAbs(a[k] - want[k]); d > tol {
				t.Fatalf("m=%d: RealForward[%d] = %v, Forward = %v (|diff| %g > %g)", m, k, a[k], want[k], d, tol)
			}
		}
	}
}

func cAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// TestHermitianRealParity feeds random Hermitian half-spectra through
// HermitianReal and compares with the full complex Forward of the Hermitian
// extension.
func TestHermitianRealParity(t *testing.T) {
	r := rng.New(55)
	for h := 1; h <= 1<<12; h <<= 1 {
		m := 2 * h
		a := make([]complex128, h+1)
		a[0] = complex(r.Norm(), 0)
		a[h] = complex(r.Norm(), 0)
		for k := 1; k < h; k++ {
			a[k] = complex(r.Norm(), r.Norm())
		}
		full := make([]complex128, m)
		copy(full, a)
		for k := 1; k < h; k++ {
			full[m-k] = complex(real(a[k]), -imag(a[k]))
		}
		if err := Forward(full); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, m)
		z := make([]complex128, h)
		if err := HermitianReal(out, a, z); err != nil {
			t.Fatal(err)
		}
		tol := 1e-12 * float64(m) * 10
		for p := 0; p < m; p++ {
			if d := math.Abs(out[p] - real(full[p])); d > tol {
				t.Fatalf("h=%d: HermitianReal[%d] = %v, Forward = %v (diff %g)", h, p, out[p], real(full[p]), d)
			}
			if im := math.Abs(imag(full[p])); im > tol {
				t.Fatalf("h=%d: Hermitian spectrum gave non-real output at %d: %v", h, p, full[p])
			}
		}
		// A truncated output prefix matches the full synthesis.
		short := make([]float64, m/2+1)
		if err := HermitianReal(short, a, z); err != nil {
			t.Fatal(err)
		}
		for p := range short {
			if short[p] != out[p] {
				t.Fatalf("h=%d: truncated synthesis diverges at %d", h, p)
			}
		}
	}
}

func TestRealForwardErrors(t *testing.T) {
	if err := RealForward(make([]complex128, 4), make([]float64, 6)); err != ErrNotPowerOfTwo {
		t.Fatalf("non-power-of-two length: got %v", err)
	}
	if err := RealForward(make([]complex128, 2), make([]float64, 8)); err != ErrBadLength {
		t.Fatalf("short spectrum buffer: got %v", err)
	}
	if err := HermitianReal(make([]float64, 4), make([]complex128, 4), make([]complex128, 3)); err != ErrNotPowerOfTwo {
		t.Fatalf("non-power-of-two half length: got %v", err)
	}
	if err := HermitianReal(make([]float64, 4), make([]complex128, 3), make([]complex128, 1)); err != ErrBadLength {
		t.Fatalf("short scratch: got %v", err)
	}
	if err := HermitianReal(make([]float64, 9), make([]complex128, 5), make([]complex128, 4)); err != ErrBadLength {
		t.Fatalf("oversized output: got %v", err)
	}
}

// TestAutocovarianceIntoMatches compares the real-FFT autocovariance against
// the complex-path original, including odd lengths and clamped lags.
func TestAutocovarianceIntoMatches(t *testing.T) {
	r := rng.New(17)
	var s Scratch
	for _, n := range []int{1, 2, 3, 7, 64, 100, 1023, 4096} {
		x := make([]float64, n)
		mean := 0.0
		for i := range x {
			x[i] = r.Norm() + 0.3
			mean += x[i]
		}
		mean /= float64(n)
		for _, maxLag := range []int{0, 1, n / 2, n - 1, n + 5} {
			want := AutocovarianceKnownMean(x, mean, maxLag)
			dst := make([]float64, maxLag+1)
			got := AutocovarianceKnownMeanInto(dst, x, mean, &s)
			if len(got) != len(want) {
				t.Fatalf("n=%d maxLag=%d: len %d, want %d", n, maxLag, len(got), len(want))
			}
			for k := range got {
				if d := math.Abs(got[k] - want[k]); d > 1e-10*(1+math.Abs(want[k])) {
					t.Fatalf("n=%d lag=%d: got %v want %v", n, k, got[k], want[k])
				}
			}
		}
	}
}

// TestRealPathZeroAlloc locks in the zero-steady-state-allocation contract of
// the scratch-based real-FFT helpers.
func TestRealPathZeroAlloc(t *testing.T) {
	r := rng.New(23)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = r.Norm()
	}
	var s Scratch
	dst := make([]float64, 201)
	AutocovarianceKnownMeanInto(dst, x, 0, &s) // warm scratch + tables
	allocs := testing.AllocsPerRun(20, func() {
		AutocovarianceKnownMeanInto(dst, x, 0, &s)
	})
	if allocs != 0 {
		t.Fatalf("AutocovarianceKnownMeanInto allocates %v/op at steady state, want 0", allocs)
	}

	a := make([]complex128, len(x)/2+1)
	if err := RealForward(a, x); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if err := RealForward(a, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RealForward allocates %v/op at steady state, want 0", allocs)
	}
}
