package hurst

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
)

func TestLocalWhittleRecoversH(t *testing.T) {
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x := fgnPath(t, h, 1<<17, 51)
		est, err := LocalWhittle(x, LocalWhittleOptions{})
		if err != nil {
			t.Fatalf("H=%v: %v", h, err)
		}
		if math.Abs(est.H-h) > 0.05 {
			t.Errorf("local Whittle H = %v, want %v", est.H, h)
		}
	}
}

func TestLocalWhittleWhiteNoise(t *testing.T) {
	r := rng.New(52)
	x := make([]float64, 1<<16)
	for i := range x {
		x[i] = r.Norm()
	}
	est, err := LocalWhittle(x, LocalWhittleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.H-0.5) > 0.05 {
		t.Errorf("white noise local Whittle H = %v, want 0.5", est.H)
	}
}

func TestLocalWhittleAntipersistent(t *testing.T) {
	// Differenced white noise is antipersistent (H < 0.5); the estimator
	// must go below 0.5, unlike R/S which is biased there.
	r := rng.New(53)
	n := 1 << 16
	x := make([]float64, n)
	prev := r.Norm()
	for i := range x {
		cur := r.Norm()
		x[i] = cur - prev
		prev = cur
	}
	est, err := LocalWhittle(x, LocalWhittleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.H > 0.3 {
		t.Errorf("antipersistent H = %v, want << 0.5", est.H)
	}
}

func TestLocalWhittleShortSeries(t *testing.T) {
	if _, err := LocalWhittle(make([]float64, 100), LocalWhittleOptions{}); err == nil {
		t.Error("short series accepted")
	}
}

func TestLocalWhittleBandwidthOption(t *testing.T) {
	x := fgnPath(t, 0.8, 1<<16, 54)
	a, err := LocalWhittle(x, LocalWhittleOptions{Bandwidth: 256})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LocalWhittle(x, LocalWhittleOptions{Bandwidth: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Both bandwidths must land near the truth.
	for _, est := range []Estimate{a, b} {
		if math.Abs(est.H-0.8) > 0.08 {
			t.Errorf("H = %v at some bandwidth, want ~0.8", est.H)
		}
	}
	if len(a.X) != 256 {
		t.Errorf("plot points = %d, want 256", len(a.X))
	}
}

func TestLocalWhittleAgreesWithVT(t *testing.T) {
	x := fgnPath(t, 0.85, 1<<17, 55)
	lw, err := LocalWhittle(x, LocalWhittleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vt, err := VarianceTime(x, VarianceTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lw.H-vt.H) > 0.12 {
		t.Errorf("local Whittle %v and VT %v disagree", lw.H, vt.H)
	}
}

func BenchmarkLocalWhittle(b *testing.B) {
	x := fgnPath(b, 0.9, 1<<16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LocalWhittle(x, LocalWhittleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
