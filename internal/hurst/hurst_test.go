package hurst

import (
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/daviesharte"
	"vbrsim/internal/rng"
)

// fgnPath generates an exact fGn sample path of length n with Hurst h.
func fgnPath(t testing.TB, h float64, n int, seed uint64) []float64 {
	t.Helper()
	p, err := daviesharte.NewPlan(acf.FGN{H: h}, n, daviesharte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p.Path(rng.New(seed))
}

func TestVarianceTimeRecoversH(t *testing.T) {
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x := fgnPath(t, h, 1<<18, 42)
		est, err := VarianceTime(x, VarianceTimeOptions{})
		if err != nil {
			t.Fatalf("H=%v: %v", h, err)
		}
		if math.Abs(est.H-h) > 0.07 {
			t.Errorf("variance-time H = %v, want %v", est.H, h)
		}
		if est.R2 < 0.9 {
			t.Errorf("H=%v: poor fit R2=%v", h, est.R2)
		}
		if len(est.X) != len(est.Y) || len(est.X) < 3 {
			t.Errorf("H=%v: bad plot points", h)
		}
	}
}

func TestVarianceTimeWhiteNoiseGivesHalf(t *testing.T) {
	r := rng.New(1)
	x := make([]float64, 1<<18)
	for i := range x {
		x[i] = r.Norm()
	}
	est, err := VarianceTime(x, VarianceTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.H-0.5) > 0.05 {
		t.Errorf("white noise H = %v, want 0.5", est.H)
	}
	// Slope should be ~ -1 for iid data.
	if math.Abs(est.Slope+1) > 0.1 {
		t.Errorf("white noise VT slope = %v, want -1", est.Slope)
	}
}

func TestRSRecoversH(t *testing.T) {
	for _, h := range []float64{0.6, 0.9} {
		x := fgnPath(t, h, 1<<18, 7)
		est, err := RS(x, RSOptions{})
		if err != nil {
			t.Fatalf("H=%v: %v", h, err)
		}
		// R/S is known to be biased for short windows; allow a wider band.
		if math.Abs(est.H-h) > 0.1 {
			t.Errorf("R/S H = %v, want %v", est.H, h)
		}
	}
}

func TestRSWhiteNoise(t *testing.T) {
	r := rng.New(3)
	x := make([]float64, 1<<17)
	for i := range x {
		x[i] = r.Norm()
	}
	est, err := RS(x, RSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// R/S converges slowly toward 0.5 from above for iid data.
	if est.H < 0.45 || est.H > 0.65 {
		t.Errorf("white noise R/S H = %v, want ~0.5-0.6", est.H)
	}
}

func TestAbsoluteMomentsRecoversH(t *testing.T) {
	x := fgnPath(t, 0.85, 1<<18, 11)
	est, err := AbsoluteMoments(x, AbsoluteMomentsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.H-0.85) > 0.08 {
		t.Errorf("absolute moments H = %v, want 0.85", est.H)
	}
}

func TestPeriodogramRecoversH(t *testing.T) {
	x := fgnPath(t, 0.8, 1<<17, 13)
	est, err := Periodogram(x, PeriodogramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.H-0.8) > 0.1 {
		t.Errorf("periodogram H = %v, want 0.8", est.H)
	}
}

func TestCombined(t *testing.T) {
	x := fgnPath(t, 0.9, 1<<18, 17)
	h, vt, rs, err := Combined(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.9) > 0.08 {
		t.Errorf("combined H = %v, want 0.9", h)
	}
	if math.Abs(h-(vt.H+rs.H)/2) > 1e-12 {
		t.Error("combined H is not the average of the two estimates")
	}
}

func TestShortSeriesErrors(t *testing.T) {
	short := make([]float64, 50)
	if _, err := VarianceTime(short, VarianceTimeOptions{}); err == nil {
		t.Error("VarianceTime accepted short series")
	}
	if _, err := RS(short, RSOptions{}); err == nil {
		t.Error("RS accepted short series")
	}
	if _, err := AbsoluteMoments(short, AbsoluteMomentsOptions{}); err == nil {
		t.Error("AbsoluteMoments accepted short series")
	}
	if _, err := Periodogram(short, PeriodogramOptions{}); err == nil {
		t.Error("Periodogram accepted short series")
	}
	if _, _, _, err := Combined(short); err == nil {
		t.Error("Combined accepted short series")
	}
}

func TestConstantSeries(t *testing.T) {
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = 5
	}
	if _, err := VarianceTime(x, VarianceTimeOptions{MinM: 4, MaxM: 256}); err == nil {
		t.Error("VarianceTime accepted constant series")
	}
	if _, err := RS(x, RSOptions{}); err == nil {
		t.Error("RS accepted constant series")
	}
}

func TestEstimatorsAgreeOnSameSeries(t *testing.T) {
	// The paper's two estimators should agree within ~0.05 on a long
	// exactly self-similar series, as they do on the empirical trace
	// (0.89 vs 0.92).
	x := fgnPath(t, 0.9, 1<<18, 23)
	vt, err := VarianceTime(x, VarianceTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RS(x, RSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vt.H-rs.H) > 0.1 {
		t.Errorf("VT %v and R/S %v disagree strongly", vt.H, rs.H)
	}
}

func TestVarianceTimeOnAR1IsNotLRD(t *testing.T) {
	// A strongly correlated SRD process must still estimate near 0.5 once
	// aggregation exceeds the correlation time.
	r := rng.New(29)
	phi := 0.9
	n := 1 << 19
	x := make([]float64, n)
	scale := math.Sqrt(1 - phi*phi)
	for i := 1; i < n; i++ {
		x[i] = phi*x[i-1] + scale*r.Norm()
	}
	est, err := VarianceTime(x, VarianceTimeOptions{MinM: 500})
	if err != nil {
		t.Fatal(err)
	}
	if est.H > 0.62 {
		t.Errorf("AR(1) variance-time H = %v, want near 0.5", est.H)
	}
}

func BenchmarkVarianceTime(b *testing.B) {
	x := fgnPath(b, 0.9, 1<<16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VarianceTime(x, VarianceTimeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRS(b *testing.B) {
	x := fgnPath(b, 0.9, 1<<16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RS(x, RSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
