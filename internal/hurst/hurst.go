// Package hurst implements the Hurst-parameter estimators used in Step 1 of
// the paper's modeling pipeline: the variance-time plot and R/S (pox)
// analysis, plus two further classical estimators (absolute moments and
// periodogram regression) for cross-checking. Every estimator returns the
// raw plot points alongside the least-squares fit so the corresponding paper
// figures (Figs. 3 and 4) can be regenerated exactly.
package hurst

import (
	"errors"
	"math"

	"vbrsim/internal/fft"
	"vbrsim/internal/stats"
)

// Estimate is the result of one Hurst estimation method.
type Estimate struct {
	H         float64   // estimated Hurst parameter
	Slope     float64   // fitted slope in the method's log-log plane
	Intercept float64   // fitted intercept
	R2        float64   // goodness of fit
	X, Y      []float64 // raw plot points (already log10-transformed)
}

// ErrShortSeries is returned when the series is too short for the estimator.
var ErrShortSeries = errors.New("hurst: series too short")

// VarianceTimeOptions controls the variance-time estimator.
type VarianceTimeOptions struct {
	// MinM is the smallest aggregation level used in the fit. The paper
	// ignores small m (short-term correlations bias the slope); default 100.
	MinM int
	// MaxM is the largest aggregation level; default len(x)/10 so every
	// aggregated series keeps at least 10 blocks.
	MaxM int
	// PointsPerDecade controls the log-spaced grid of m values; default 10.
	PointsPerDecade int
}

// VarianceTime estimates H from the decay of var(X^(m)) with m:
// for self-similar X, var(X^(m)) ~ m^-beta and H = 1 - beta/2.
func VarianceTime(x []float64, opt VarianceTimeOptions) (Estimate, error) {
	if opt.MinM <= 0 {
		// The fit needs at least a decade of aggregation levels between
		// MinM and MaxM = n/10; shrink MinM on short series (at the cost of
		// more short-range contamination) so the range stays usable.
		opt.MinM = len(x) / 100
		if opt.MinM > 100 {
			opt.MinM = 100
		}
		if opt.MinM < 16 {
			opt.MinM = 16
		}
	}
	if opt.MaxM <= 0 {
		opt.MaxM = len(x) / 10
	}
	if opt.PointsPerDecade <= 0 {
		opt.PointsPerDecade = 10
	}
	if opt.MaxM <= opt.MinM || len(x) < 10*opt.MinM {
		return Estimate{}, ErrShortSeries
	}
	var logM, logVar []float64
	step := math.Pow(10, 1/float64(opt.PointsPerDecade))
	lastM := 0
	for mf := float64(opt.MinM); mf <= float64(opt.MaxM); mf *= step {
		m := int(math.Round(mf))
		if m == lastM {
			continue
		}
		lastM = m
		agg := stats.Aggregate(x, m)
		if len(agg) < 5 {
			break
		}
		v := stats.Variance(agg)
		if v <= 0 {
			continue
		}
		logM = append(logM, math.Log10(float64(m)))
		logVar = append(logVar, math.Log10(v))
	}
	if len(logM) < 3 {
		return Estimate{}, ErrShortSeries
	}
	slope, intercept, r2, err := stats.LinearFit(logM, logVar)
	if err != nil {
		return Estimate{}, err
	}
	beta := -slope
	return Estimate{
		H:         1 - beta/2,
		Slope:     slope,
		Intercept: intercept,
		R2:        r2,
		X:         logM,
		Y:         logVar,
	}, nil
}

// RSOptions controls the R/S estimator.
type RSOptions struct {
	// Blocks is the number K of non-overlapping starting points per lag
	// value n; default 10.
	Blocks int
	// MinN is the smallest window size used in the fit; default 16 (small
	// windows show transient bias).
	MinN int
	// MaxN defaults to len(x)/2.
	MaxN int
	// PointsPerDecade controls the log-spaced grid of n values; default 10.
	PointsPerDecade int
}

// RS estimates H by rescaled-adjusted-range (pox) analysis:
// E[R(n)/S(n)] ~ c n^H.
func RS(x []float64, opt RSOptions) (Estimate, error) {
	if opt.Blocks <= 0 {
		opt.Blocks = 10
	}
	if opt.MinN <= 0 {
		opt.MinN = 16
	}
	if opt.MaxN <= 0 {
		opt.MaxN = len(x) / 2
	}
	if opt.PointsPerDecade <= 0 {
		opt.PointsPerDecade = 10
	}
	if len(x) < 4*opt.MinN {
		return Estimate{}, ErrShortSeries
	}
	var logN, logRS []float64
	step := math.Pow(10, 1/float64(opt.PointsPerDecade))
	lastN := 0
	for nf := float64(opt.MinN); nf <= float64(opt.MaxN); nf *= step {
		n := int(math.Round(nf))
		if n == lastN || n < 2 {
			continue
		}
		lastN = n
		// K starting points t_i = 1, N/K+1, ... with (t_i - 1) + n <= N.
		for b := 0; b < opt.Blocks; b++ {
			start := b * len(x) / opt.Blocks
			if start+n > len(x) {
				break
			}
			rs, ok := rescaledRange(x[start : start+n])
			if !ok {
				continue
			}
			logN = append(logN, math.Log10(float64(n)))
			logRS = append(logRS, math.Log10(rs))
		}
	}
	if len(logN) < 5 {
		return Estimate{}, ErrShortSeries
	}
	slope, intercept, r2, err := stats.LinearFit(logN, logRS)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		H:         slope,
		Slope:     slope,
		Intercept: intercept,
		R2:        r2,
		X:         logN,
		Y:         logRS,
	}, nil
}

// rescaledRange computes R(n)/S(n) of eq. (8) for one window.
func rescaledRange(x []float64) (float64, bool) {
	n := len(x)
	mean, variance := stats.MeanVar(x)
	s := math.Sqrt(variance)
	if s == 0 {
		return 0, false
	}
	// W_k = (X_1 + ... + X_k) - k*mean; R = max(0, W...) - min(0, W...).
	var w, maxW, minW float64
	for _, v := range x {
		w += v - mean
		if w > maxW {
			maxW = w
		}
		if w < minW {
			minW = w
		}
	}
	r := maxW - minW
	if r <= 0 {
		return 0, false
	}
	_ = n
	return r / s, true
}

// AbsoluteMomentsOptions controls the absolute-moments estimator.
type AbsoluteMomentsOptions struct {
	MinM, MaxM      int
	PointsPerDecade int
}

// AbsoluteMoments estimates H from the first absolute moment of the centered
// aggregated process: E|X^(m) - mean| ~ m^(H-1).
func AbsoluteMoments(x []float64, opt AbsoluteMomentsOptions) (Estimate, error) {
	if opt.MinM <= 0 {
		opt.MinM = len(x) / 100
		if opt.MinM > 100 {
			opt.MinM = 100
		}
		if opt.MinM < 16 {
			opt.MinM = 16
		}
	}
	if opt.MaxM <= 0 {
		opt.MaxM = len(x) / 10
	}
	if opt.PointsPerDecade <= 0 {
		opt.PointsPerDecade = 10
	}
	if opt.MaxM <= opt.MinM || len(x) < 10*opt.MinM {
		return Estimate{}, ErrShortSeries
	}
	mean := stats.Mean(x)
	var logM, logAM []float64
	step := math.Pow(10, 1/float64(opt.PointsPerDecade))
	lastM := 0
	for mf := float64(opt.MinM); mf <= float64(opt.MaxM); mf *= step {
		m := int(math.Round(mf))
		if m == lastM {
			continue
		}
		lastM = m
		agg := stats.Aggregate(x, m)
		if len(agg) < 5 {
			break
		}
		var am float64
		for _, v := range agg {
			am += math.Abs(v - mean)
		}
		am /= float64(len(agg))
		if am <= 0 {
			continue
		}
		logM = append(logM, math.Log10(float64(m)))
		logAM = append(logAM, math.Log10(am))
	}
	if len(logM) < 3 {
		return Estimate{}, ErrShortSeries
	}
	slope, intercept, r2, err := stats.LinearFit(logM, logAM)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		H:         slope + 1,
		Slope:     slope,
		Intercept: intercept,
		R2:        r2,
		X:         logM,
		Y:         logAM,
	}, nil
}

// PeriodogramOptions controls the periodogram estimator.
type PeriodogramOptions struct {
	// LowFrequencyFraction restricts the regression to the lowest fraction
	// of Fourier frequencies, where the spectral pole dominates; default 0.1.
	LowFrequencyFraction float64
}

// Periodogram estimates H by regressing log I(f) on log f near the origin:
// for LRD processes I(f) ~ f^(1-2H), so H = (1 - slope)/2.
func Periodogram(x []float64, opt PeriodogramOptions) (Estimate, error) {
	if opt.LowFrequencyFraction <= 0 || opt.LowFrequencyFraction > 1 {
		opt.LowFrequencyFraction = 0.1
	}
	if len(x) < 128 {
		return Estimate{}, ErrShortSeries
	}
	freqs, intens := fft.Periodogram(x)
	cut := int(float64(len(freqs)) * opt.LowFrequencyFraction)
	if cut < 8 {
		return Estimate{}, ErrShortSeries
	}
	var lx, ly []float64
	for i := 0; i < cut; i++ {
		if intens[i] > 0 {
			lx = append(lx, math.Log10(freqs[i]))
			ly = append(ly, math.Log10(intens[i]))
		}
	}
	slope, intercept, r2, err := stats.LinearFit(lx, ly)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		H:         (1 - slope) / 2,
		Slope:     slope,
		Intercept: intercept,
		R2:        r2,
		X:         lx,
		Y:         ly,
	}, nil
}

// Combined runs the paper's two estimators (variance-time and R/S) with
// default options and returns their average, mirroring the paper's decision
// to "combine the results of the above two approaches".
func Combined(x []float64) (h float64, vt, rs Estimate, err error) {
	vt, err = VarianceTime(x, VarianceTimeOptions{})
	if err != nil {
		return 0, vt, rs, err
	}
	rs, err = RS(x, RSOptions{})
	if err != nil {
		return 0, vt, rs, err
	}
	return (vt.H + rs.H) / 2, vt, rs, nil
}
