// Local Whittle estimation (Robinson 1995). Unlike the graphical
// variance-time and R/S methods the paper uses, the local Whittle estimator
// is likelihood-based: it minimizes, over H, the profiled objective
//
//	R(H) = log( (1/m) sum_{j=1..m} I(w_j) w_j^{2H-1} )
//	       - (2H-1) (1/m) sum_{j=1..m} log w_j
//
// using only the m lowest Fourier frequencies, where the spectral pole
// f(w) ~ c w^{1-2H} of an LRD process dominates. It is consistent and
// asymptotically normal for H in (0,1) without assuming a full parametric
// model — a natural cross-check for Step 1 of the paper's pipeline.
package hurst

import (
	"math"

	"vbrsim/internal/fft"
)

// LocalWhittleOptions controls the estimator.
type LocalWhittleOptions struct {
	// Bandwidth is the number m of low frequencies used; 0 means
	// floor(n^0.65), a common rate-optimal default.
	Bandwidth int
}

// LocalWhittle estimates the Hurst parameter by minimizing the local
// Whittle objective over H in (0.01, 0.99).
func LocalWhittle(x []float64, opt LocalWhittleOptions) (Estimate, error) {
	if len(x) < 256 {
		return Estimate{}, ErrShortSeries
	}
	freqs, intens := fft.Periodogram(x)
	m := opt.Bandwidth
	if m <= 0 {
		m = int(math.Floor(math.Pow(float64(len(x)), 0.65)))
	}
	if m > len(freqs) {
		m = len(freqs)
	}
	if m < 8 {
		return Estimate{}, ErrShortSeries
	}
	w := freqs[:m]
	iw := intens[:m]
	var meanLogW float64
	for _, v := range w {
		meanLogW += math.Log(v)
	}
	meanLogW /= float64(m)

	objective := func(h float64) float64 {
		e := 2*h - 1
		var s float64
		for j := range w {
			s += iw[j] * math.Pow(w[j], e)
		}
		s /= float64(m)
		if s <= 0 {
			return math.Inf(1)
		}
		return math.Log(s) - e*meanLogW
	}

	// Golden-section search on (0.01, 0.99): the objective is smooth and
	// unimodal in practice.
	const phi = 0.6180339887498949
	lo, hi := 0.01, 0.99
	a := hi - phi*(hi-lo)
	b := lo + phi*(hi-lo)
	fa, fb := objective(a), objective(b)
	for i := 0; i < 80; i++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = objective(a)
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = objective(b)
		}
		if hi-lo < 1e-7 {
			break
		}
	}
	h := (lo + hi) / 2

	// Expose the fitted low-frequency points (log-log) for plotting,
	// matching the other estimators' Estimate contract.
	xs := make([]float64, m)
	ys := make([]float64, m)
	for j := 0; j < m; j++ {
		xs[j] = math.Log10(w[j])
		ys[j] = math.Log10(iw[j])
	}
	return Estimate{
		H:     h,
		Slope: 1 - 2*h, // implied periodogram slope
		X:     xs,
		Y:     ys,
	}, nil
}
