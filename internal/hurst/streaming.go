package hurst

import (
	"math"

	"vbrsim/internal/stats"
)

// aggVarLevels bounds the dyadic scale ladder: level k aggregates blocks of
// m = 2^k frames, so 28 levels cover block sizes up to 2^27 ≈ 134M frames —
// far beyond any session horizon the server admits.
const aggVarLevels = 28

// avLevel holds the running block-mean statistics for one dyadic scale.
// Block means are centered on the first mean observed at the level (off) so
// sum/sum2 stay well-conditioned for marginals with large means (the served
// lognormal frame sizes sit around e^9.6 ≈ 15k bytes).
type avLevel struct {
	off     float64 // centering offset: first completed block mean
	sum     float64 // Σ (mean - off)
	sum2    float64 // Σ (mean - off)^2
	n       float64 // completed blocks at this scale
	pend    float64 // a completed mean awaiting its sibling for the next scale
	hasPend bool
}

// AggVar is a streaming form of the variance-time estimator: it maintains
// var(X^(m)) over the dyadic grid m = 1, 2, 4, ... with an O(1) amortized
// carry cascade per pushed frame (a frame completes the level-0 block, which
// may complete a level-1 block, and so on — two block folds per frame on
// average, like incrementing a binary counter). Estimate then fits the same
// log10 var(X^(m)) vs log10 m regression as VarianceTime and maps the slope
// through H = 1 - beta/2. The zero value is ready to use; AggVar never
// allocates after construction.
type AggVar struct {
	total uint64
	lev   [aggVarLevels]avLevel
}

// Push feeds one frame into the cascade.
func (a *AggVar) Push(v float64) {
	a.total++
	for k := 0; ; k++ {
		l := &a.lev[k]
		// v is a completed block mean at scale m = 2^k: record it.
		if l.n == 0 {
			l.off = v
		}
		d := v - l.off
		l.sum += d
		l.sum2 += d * d
		l.n++
		if k+1 >= aggVarLevels {
			return
		}
		if !l.hasPend {
			l.pend = v
			l.hasPend = true
			return
		}
		// Sibling complete: fold the pair into a scale-2m block mean and
		// carry upward.
		v = (l.pend + v) / 2
		l.hasPend = false
	}
}

// Count reports the number of frames pushed so far.
func (a *AggVar) Count() uint64 { return a.total }

// VarianceAt returns the biased variance of the aggregated series at scale
// m = 2^level and the number of completed blocks behind it. It returns
// (0, n) when fewer than two blocks have completed.
func (a *AggVar) VarianceAt(level int) (v float64, blocks float64) {
	if level < 0 || level >= aggVarLevels {
		return 0, 0
	}
	l := &a.lev[level]
	if l.n < 2 {
		return 0, l.n
	}
	mean := l.sum / l.n
	v = l.sum2/l.n - mean*mean
	if v < 0 {
		v = 0 // rounding guard; exact zero also rejects the point below
	}
	return v, l.n
}

// Estimate fits the variance-time regression over dyadic scales m with
// minM <= m <= maxM (maxM <= 0 means unbounded) using only scales backed by
// at least minBlocks completed blocks. It needs at least three usable scale
// points, otherwise ErrShortSeries. The returned Estimate mirrors
// VarianceTime: X/Y are the log10 plot points and H = 1 + slope/2.
//
// minM exists for the same reason VarianceTimeOptions.MinM does — short-range
// correlation contaminates small scales — and maxM matters for sampled taps:
// a monitor that observes every k-th chunk of c frames sees a series that is
// contiguous only within chunks, so scales above c mix frames across gaps and
// should be excluded from the fit.
//
// minBlocks should be at least ~32: the log of a variance estimated from n
// blocks is biased low by O(1/n) (log of a χ²-like average), and on the
// dyadic grid the few-block top scales carry maximal regression leverage, so
// admitting 8-block scales visibly steepens the slope (H biased low).
func (a *AggVar) Estimate(minM, maxM, minBlocks int) (Estimate, error) {
	if minM < 1 {
		minM = 1
	}
	if minBlocks < 2 {
		minBlocks = 2
	}
	var logM, logVar []float64
	for k := 0; k < aggVarLevels; k++ {
		m := 1 << uint(k)
		if m < minM {
			continue
		}
		if maxM > 0 && m > maxM {
			break
		}
		v, n := a.VarianceAt(k)
		if n < float64(minBlocks) || v <= 0 {
			continue
		}
		logM = append(logM, math.Log10(float64(m)))
		logVar = append(logVar, math.Log10(v))
	}
	if len(logM) < 3 {
		return Estimate{}, ErrShortSeries
	}
	slope, intercept, r2, err := stats.LinearFit(logM, logVar)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		H:         1 + slope/2,
		Slope:     slope,
		Intercept: intercept,
		R2:        r2,
		X:         logM,
		Y:         logVar,
	}, nil
}
