package hurst

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

// TestAggVarMatchesBatchAggregation pins the streaming cascade to the batch
// definition: at every dyadic scale the running variance must equal
// stats.Variance(stats.Aggregate(x, m)) on the same prefix.
func TestAggVarMatchesBatchAggregation(t *testing.T) {
	x := fgnPath(t, 0.8, 12345, 3) // deliberately not a power of two
	var a AggVar
	for _, v := range x {
		a.Push(v)
	}
	if a.Count() != uint64(len(x)) {
		t.Fatalf("Count = %d, want %d", a.Count(), len(x))
	}
	for k := 0; (1 << uint(k)) <= len(x)/2; k++ {
		m := 1 << uint(k)
		agg := stats.Aggregate(x, m)
		want := stats.Variance(agg)
		got, blocks := a.VarianceAt(k)
		if int(blocks) != len(agg) {
			t.Errorf("m=%d: blocks = %v, want %d", m, blocks, len(agg))
		}
		if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, want) {
			t.Errorf("m=%d: streaming var = %v, batch var = %v", m, got, want)
		}
	}
}

func TestAggVarRecoversH(t *testing.T) {
	for _, h := range []float64{0.6, 0.75, 0.9} {
		x := fgnPath(t, h, 1<<18, 42)
		var a AggVar
		for _, v := range x {
			a.Push(v)
		}
		est, err := a.Estimate(16, 0, 32)
		if err != nil {
			t.Fatalf("H=%v: %v", h, err)
		}
		// The dyadic grid is coarser than VarianceTime's 10-points-per-decade
		// grid, so allow a slightly wider band than the batch test's 0.07.
		if math.Abs(est.H-h) > 0.1 {
			t.Errorf("streaming H = %v, want %v", est.H, h)
		}
		if est.R2 < 0.85 {
			t.Errorf("H=%v: poor fit R2=%v", h, est.R2)
		}
	}
}

func TestAggVarWhiteNoiseGivesHalf(t *testing.T) {
	r := rng.New(1)
	var a AggVar
	for i := 0; i < 1<<18; i++ {
		a.Push(r.Norm())
	}
	est, err := a.Estimate(16, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.H-0.5) > 0.05 {
		t.Errorf("white noise H = %v, want 0.5", est.H)
	}
	if math.Abs(est.Slope+1) > 0.1 {
		t.Errorf("white noise slope = %v, want -1", est.Slope)
	}
}

// TestAggVarMaxM verifies the scale cap used by sampled taps: with maxM set,
// no plot point may exceed it.
func TestAggVarMaxM(t *testing.T) {
	x := fgnPath(t, 0.75, 1<<16, 5)
	var a AggVar
	for _, v := range x {
		a.Push(v)
	}
	est, err := a.Estimate(4, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, lx := range est.X {
		if m := math.Pow(10, lx); m > 256.5 {
			t.Errorf("plot point at m=%v exceeds maxM=256", m)
		}
	}
}

func TestAggVarShortSeries(t *testing.T) {
	var a AggVar
	for i := 0; i < 20; i++ {
		a.Push(float64(i))
	}
	if _, err := a.Estimate(16, 0, 32); err != ErrShortSeries {
		t.Fatalf("err = %v, want ErrShortSeries", err)
	}
}

// TestAggVarOffsetStability checks the large-offset regime the monitor sees
// in production: lognormal frame sizes around 15k bytes must not lose the
// variance signal to cancellation.
func TestAggVarOffsetStability(t *testing.T) {
	x := fgnPath(t, 0.8, 1<<17, 9)
	var a, b AggVar
	const off = 1.5e4
	for _, v := range x {
		a.Push(v)
		b.Push(v + off)
	}
	ea, err := a.Estimate(16, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Estimate(16, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ea.H-eb.H) > 1e-6 {
		t.Errorf("offset shifted H: %v vs %v", ea.H, eb.H)
	}
}

func BenchmarkAggVarPush(b *testing.B) {
	x := fgnPath(b, 0.9, 1<<16, 1)
	var a AggVar
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Push(x[i&(1<<16-1)])
	}
}
