// Package transform implements the marginal-matching transform at the core
// of the paper's unified approach (eq. 7):
//
//	Y_k = h(X_k) = F_Y^{-1}(F_X(X_k))
//
// where X is the zero-mean unit-variance Gaussian background process and F_Y
// is the desired foreground marginal (in the paper, the inverted empirical
// histogram). The package also computes the "attenuation" factor of
// Appendix A,
//
//	a = [E(h(X)X)]^2 / E(h~^2(X)) ,   h~ = h - E h(X),
//
// both analytically (by quadrature against the standard normal density,
// which is exactly the limit derived in the appendix) and empirically (by
// measuring the ACF ratio r_Y(k)/r_X(k) at large lags on simulated paths,
// which is what the paper does in Step 3).
package transform

import (
	"context"
	"errors"
	"math"

	"vbrsim/internal/dist"
	"vbrsim/internal/fft"
	"vbrsim/internal/hosking"
	"vbrsim/internal/par"
	"vbrsim/internal/rng"
)

// T is the histogram-inversion transform h from a standard normal background
// variate to the target foreground marginal.
type T struct {
	// Target is the foreground marginal F_Y.
	Target dist.Distribution
}

// New returns the transform onto the given marginal.
func New(target dist.Distribution) T { return T{Target: target} }

// Apply computes h(x) = F_Y^{-1}(Phi(x)).
func (t T) Apply(x float64) float64 {
	return t.Target.Quantile(dist.StdNormal.CDF(x))
}

// ApplySlice maps a whole background path to the foreground, allocating the
// result.
func (t T) ApplySlice(xs []float64) []float64 {
	return t.ApplyTo(make([]float64, len(xs)), xs)
}

// ApplyTo maps xs into dst (which may alias xs, enabling in-place
// transformation of reused path buffers) and returns dst[:len(xs)].
func (t T) ApplyTo(dst, xs []float64) []float64 {
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = t.Apply(x)
	}
	return dst
}

// Table tabulates h over [lo, hi] at n+1 evenly spaced points, for plotting
// (the paper's Fig. 2).
func (t T) Table(lo, hi float64, n int) (xs, hs []float64) {
	xs = make([]float64, n+1)
	hs = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		xs[i] = x
		hs[i] = t.Apply(x)
	}
	return xs, hs
}

// Attenuation computes the analytic attenuation factor
// a = [E(h(X)X)]^2 / Var(h(X)) with X ~ N(0,1), by composite Simpson
// quadrature over [-8, 8] (the normal mass outside is ~1e-15). The result
// lies in [0, 1]; it equals 1 exactly when h is affine.
func (t T) Attenuation() float64 {
	const (
		lo, hi = -8.0, 8.0
		n      = 1 << 13 // Simpson intervals (even)
	)
	hstep := (hi - lo) / n
	norm := 1 / math.Sqrt(2*math.Pi)
	var eh, ehx, eh2 float64
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*hstep
		w := 2.0
		switch {
		case i == 0 || i == n:
			w = 1
		case i%2 == 1:
			w = 4
		}
		phi := norm * math.Exp(-x*x/2)
		hx := t.Apply(x)
		eh += w * hx * phi
		ehx += w * hx * x * phi
		eh2 += w * hx * hx * phi
	}
	scale := hstep / 3
	eh *= scale
	ehx *= scale
	eh2 *= scale
	variance := eh2 - eh*eh
	if variance <= 0 {
		return 1
	}
	a := ehx * ehx / variance
	if a > 1 {
		a = 1
	}
	return a
}

// MeasureOptions controls empirical attenuation measurement.
type MeasureOptions struct {
	// Lags are the large lags at which the ratio r_Y(k)/r_X(k) is measured;
	// default {100, 150, 200}.
	Lags []int
	// Replications is the number of background paths pooled; default 20.
	Replications int
	// Seed drives the measurement.
	Seed uint64
	// Workers caps the goroutines the replications fan across; <= 0 selects
	// GOMAXPROCS. The result is bit-identical for every setting: each
	// replication's generator is split from the seed in replication order
	// (never indexed by worker), and the pooled curves are reduced in
	// replication order.
	Workers int
}

// Measure estimates the attenuation factor empirically, exactly as the
// paper's Step 3: generate X with the plan, map to Y = h(X), and average the
// ratio of foreground to background ACF at large lags. The pathLen is
// capped at the plan length.
func Measure(plan *hosking.Plan, t T, pathLen int, opt MeasureOptions) (float64, error) {
	return MeasureCtx(context.Background(), plan, t, pathLen, opt)
}

// MeasureCtx is Measure with cancellation: ctx is polled between
// replications, so a canceled caller waits at most one path generation.
// Replications run on a worker pool (see MeasureOptions.Workers) with one
// generator per replication, split from the seed in replication order, so
// the measurement is invariant under the worker count.
func MeasureCtx(ctx context.Context, plan *hosking.Plan, t T, pathLen int, opt MeasureOptions) (float64, error) {
	if pathLen > plan.Len() {
		pathLen = plan.Len()
	}
	if len(opt.Lags) == 0 {
		opt.Lags = []int{100, 150, 200}
	}
	if opt.Replications <= 0 {
		opt.Replications = 20
	}
	maxLag := 0
	for _, l := range opt.Lags {
		if l <= 0 {
			return 0, errors.New("transform: non-positive measurement lag")
		}
		if l > maxLag {
			maxLag = l
		}
	}
	if maxLag >= pathLen/2 {
		return 0, errors.New("transform: measurement lag too large for path length")
	}
	reps := opt.Replications
	root := rng.New(opt.Seed)
	sources := make([]*rng.Source, reps)
	for i := range sources {
		sources[i] = root.Split()
	}
	meanY := t.Target.Mean()
	lagN := maxLag + 1
	// Per-replication autocovariance curves, deposited by replication index
	// and reduced sequentially below: the float sums are computed in the same
	// order regardless of how replications interleave across workers.
	axAll := make([]float64, reps*lagN)
	ayAll := make([]float64, reps*lagN)
	workers := par.Workers(opt.Workers, reps)
	type arena struct {
		x, y []float64
		s    fft.Scratch
	}
	arenas := make([]arena, workers)
	err := par.ForCtx(ctx, workers, reps, func(w, rep int) error {
		ar := &arenas[w]
		if ar.x == nil {
			ar.x = make([]float64, pathLen)
			ar.y = make([]float64, pathLen)
		}
		plan.Generate(sources[rep], ar.x)
		t.ApplyTo(ar.y, ar.x)
		fft.AutocovarianceKnownMeanInto(axAll[rep*lagN:(rep+1)*lagN], ar.x, 0, &ar.s)
		fft.AutocovarianceKnownMeanInto(ayAll[rep*lagN:(rep+1)*lagN], ar.y, meanY, &ar.s)
		return nil
	})
	if err != nil {
		return 0, err
	}
	xACov := make([]float64, lagN)
	yACov := make([]float64, lagN)
	for rep := 0; rep < reps; rep++ {
		ax := axAll[rep*lagN : (rep+1)*lagN]
		ay := ayAll[rep*lagN : (rep+1)*lagN]
		for k := range xACov {
			xACov[k] += ax[k]
			yACov[k] += ay[k]
		}
	}
	var sum float64
	count := 0
	for _, l := range opt.Lags {
		rx := xACov[l] / xACov[0]
		ry := yACov[l] / yACov[0]
		if rx <= 0 {
			continue
		}
		sum += ry / rx
		count++
	}
	if count == 0 {
		return 0, errors.New("transform: background ACF vanished at all measurement lags")
	}
	a := sum / float64(count)
	if a <= 0 {
		return 0, errors.New("transform: measured non-positive attenuation")
	}
	if a > 1 {
		a = 1
	}
	return a, nil
}
