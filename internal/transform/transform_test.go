package transform

import (
	"context"
	"errors"
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/hurst"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"

	"vbrsim/internal/daviesharte"
)

func TestIdentityTransform(t *testing.T) {
	// Target N(0,1): h must be the identity.
	h := New(dist.StdNormal)
	for _, x := range []float64{-3, -1, 0, 0.5, 2.7} {
		if got := h.Apply(x); math.Abs(got-x) > 1e-8 {
			t.Errorf("identity h(%v) = %v", x, got)
		}
	}
	if a := h.Attenuation(); math.Abs(a-1) > 1e-6 {
		t.Errorf("identity attenuation = %v, want 1", a)
	}
}

func TestAffineTransformAttenuationIsOne(t *testing.T) {
	h := New(dist.Normal{Mu: 500, Sigma: 42})
	if a := h.Attenuation(); math.Abs(a-1) > 1e-6 {
		t.Errorf("affine attenuation = %v, want 1", a)
	}
}

func TestApplyIsMonotone(t *testing.T) {
	targets := []dist.Distribution{
		dist.Exponential{Lambda: 0.001},
		dist.Gamma{Shape: 2, Scale: 1500},
		dist.Lognormal{Mu: 7, Sigma: 0.6},
	}
	for _, target := range targets {
		h := New(target)
		prev := math.Inf(-1)
		for x := -5.0; x <= 5; x += 0.1 {
			y := h.Apply(x)
			if y < prev {
				t.Fatalf("%T: h not monotone at %v", target, x)
			}
			prev = y
		}
	}
}

func TestTransformedMarginal(t *testing.T) {
	// h(Z) with Z ~ N(0,1) must have the target marginal.
	target := dist.Gamma{Shape: 2.5, Scale: 1000}
	h := New(target)
	r := rng.New(1)
	const n = 100000
	var sum float64
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = h.Apply(r.Norm())
		sum += samples[i]
	}
	mean := sum / n
	if math.Abs(mean-target.Mean()) > 0.02*target.Mean() {
		t.Errorf("transformed mean = %v, want %v", mean, target.Mean())
	}
	// Quantile check at several probabilities.
	e, err := stats.NewECDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := e.Quantile(p)
		want := target.Quantile(p)
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("quantile %v: got %v want %v", p, got, want)
		}
	}
}

func TestTable(t *testing.T) {
	h := New(dist.Exponential{Lambda: 1})
	xs, hs := h.Table(-4, 4, 100)
	if len(xs) != 101 || len(hs) != 101 {
		t.Fatalf("table lengths %d/%d", len(xs), len(hs))
	}
	if xs[0] != -4 || xs[100] != 4 {
		t.Errorf("table range [%v, %v]", xs[0], xs[100])
	}
	for i := 1; i < len(hs); i++ {
		if hs[i] < hs[i-1] {
			t.Fatalf("table not monotone at %d", i)
		}
	}
}

func TestAttenuationInUnitInterval(t *testing.T) {
	targets := []dist.Distribution{
		dist.Exponential{Lambda: 0.01},
		dist.Gamma{Shape: 0.7, Scale: 100},
		dist.Lognormal{Mu: 8, Sigma: 1},
		dist.Pareto{Alpha: 2.5, Xm: 1000},
	}
	for _, target := range targets {
		a := New(target).Attenuation()
		if a <= 0 || a > 1 {
			t.Errorf("%T: attenuation %v outside (0,1]", target, a)
		}
		// Strictly nonlinear transforms attenuate strictly.
		if a > 0.999 {
			t.Errorf("%T: attenuation %v suspiciously close to 1", target, a)
		}
	}
}

func TestAnalyticVsEmpiricalAttenuation(t *testing.T) {
	// The analytic (Appendix A) value is the k->infinity limit of
	// r_Y(k)/r_X(k); the empirical measurement converges to it from above as
	// r_X(k) -> 0 (higher Hermite terms contribute O(r_X(k))). Measure on a
	// background whose correlation is already small at the chosen lags.
	target := dist.Lognormal{Mu: 7.5, Sigma: 0.8}
	h := New(target)
	analytic := h.Attenuation()

	plan, err := hosking.NewPlan(acf.FGN{H: 0.85}, 600)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := Measure(plan, h, 600, MeasureOptions{
		Lags:         []int{100, 150, 200},
		Replications: 200,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if measured < analytic-0.05 || measured > analytic+0.12 {
		t.Errorf("measured attenuation %v vs analytic %v", measured, analytic)
	}
}

func TestMeasuredAttenuationApproachesAnalyticFromAbove(t *testing.T) {
	// At moderate lags (larger r_X) the measured ratio exceeds the limit;
	// at far lags it comes closer — the paper's "measure at a large lag".
	target := dist.Lognormal{Mu: 7.5, Sigma: 0.8}
	h := New(target)
	analytic := h.Attenuation()
	plan, err := hosking.NewPlan(acf.PaperComposite().Continuous(), 600)
	if err != nil {
		t.Fatal(err)
	}
	near, err := Measure(plan, h, 600, MeasureOptions{Lags: []int{80}, Replications: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if near < analytic-0.02 {
		t.Errorf("near-lag measured %v below analytic limit %v", near, analytic)
	}
}

func TestMeasureValidation(t *testing.T) {
	plan, err := hosking.NewPlan(acf.Exponential{Lambda: 0.01}, 100)
	if err != nil {
		t.Fatal(err)
	}
	h := New(dist.StdNormal)
	if _, err := Measure(plan, h, 100, MeasureOptions{Lags: []int{90}}); err == nil {
		t.Error("oversized lag accepted")
	}
	if _, err := Measure(plan, h, 100, MeasureOptions{Lags: []int{-1}}); err == nil {
		t.Error("negative lag accepted")
	}
}

// MeasureCtx polls its context between replications, so a canceled caller
// aborts instead of running the full measurement.
func TestMeasureCtxCanceled(t *testing.T) {
	plan, err := hosking.NewPlan(acf.FGN{H: 0.85}, 600)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = MeasureCtx(ctx, plan, New(dist.StdNormal), 600, MeasureOptions{
		Lags: []int{100}, Replications: 200, Seed: 3,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestHurstInvarianceUnderTransform(t *testing.T) {
	// Appendix A: Y = h(X) keeps the Hurst parameter of X. Generate a long
	// fGn path, map through a strongly nonlinear marginal, re-estimate H.
	hTrue := 0.9
	plan, err := daviesharte.NewPlan(acf.FGN{H: hTrue}, 1<<18, daviesharte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := plan.Path(rng.New(5))
	h := New(dist.Lognormal{Mu: 8, Sigma: 0.7})
	y := h.ApplySlice(x)
	est, err := hurst.VarianceTime(y, hurst.VarianceTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Finite-sample estimates on heavy-tailed transforms carry extra
	// variance; the invariance shows as H staying firmly in LRD territory
	// near the true value rather than collapsing toward 0.5.
	if math.Abs(est.H-hTrue) > 0.12 {
		t.Errorf("transformed H = %v, want %v (invariance)", est.H, hTrue)
	}
	// Cross-check with the untransformed path: the two estimates must agree.
	estX, err := hurst.VarianceTime(x, hurst.VarianceTimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.H-estX.H) > 0.1 {
		t.Errorf("H(Y)=%v vs H(X)=%v differ beyond estimator noise", est.H, estX.H)
	}
}

func TestACFAttenuationShape(t *testing.T) {
	// r_Y(k) ~ a * r_X(k) at large lags: verify the ratio stabilizes near
	// the analytic a across several lags.
	target := dist.Exponential{Lambda: 0.002}
	h := New(target)
	analytic := h.Attenuation()

	plan, err := daviesharte.NewPlan(acf.FGN{H: 0.85}, 1<<15, daviesharte.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	maxLag := 300
	xa := make([]float64, maxLag+1)
	ya := make([]float64, maxLag+1)
	for rep := 0; rep < 30; rep++ {
		x := plan.Path(r)
		y := h.ApplySlice(x)
		ax := stats.AutocovarianceKnownMean(x, 0, maxLag)
		ay := stats.AutocovarianceKnownMean(y, target.Mean(), maxLag)
		for k := range xa {
			xa[k] += ax[k]
			ya[k] += ay[k]
		}
	}
	for _, k := range []int{150, 200, 300} {
		ratio := (ya[k] / ya[0]) / (xa[k] / xa[0])
		if math.Abs(ratio-analytic) > 0.1 {
			t.Errorf("lag %d: acf ratio %v, want ~%v", k, ratio, analytic)
		}
	}
}

func BenchmarkApply(b *testing.B) {
	h := New(dist.Gamma{Shape: 2, Scale: 1000})
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += h.Apply(float64(i%100)/25 - 2)
	}
	_ = sink
}

func BenchmarkAttenuation(b *testing.B) {
	h := New(dist.Lognormal{Mu: 8, Sigma: 0.7})
	for i := 0; i < b.N; i++ {
		h.Attenuation()
	}
}
