package transform

import (
	"context"
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/dist"
	"vbrsim/internal/hosking"
	"vbrsim/internal/rng"
)

func testTransform(t *testing.T) T {
	t.Helper()
	return New(dist.Lognormal{Mu: 9.6, Sigma: 0.4})
}

// TestLUTWithinMeasuredBound checks the table agrees with the exact
// transform within its self-reported MaxError at random in-range points, and
// exactly at grid points.
func TestLUTWithinMeasuredBound(t *testing.T) {
	tr := testTransform(t)
	lut, err := tr.NewDefaultLUT()
	if err != nil {
		t.Fatal(err)
	}
	if lut.MaxError() <= 0 {
		t.Fatalf("MaxError = %v, want > 0 for a curved transform", lut.MaxError())
	}
	lo, hi := lut.Range()
	r := rng.New(9)
	for i := 0; i < 20000; i++ {
		x := lo + (hi-lo)*r.Float64()
		got := lut.Apply(x)
		want := tr.Apply(x)
		if d := math.Abs(got - want); d > lut.MaxError()*1.01 {
			t.Fatalf("x=%v: |LUT-exact| = %g exceeds measured bound %g", x, d, lut.MaxError())
		}
	}
	// The relative error should be tiny for the paper's marginal.
	mid := tr.Apply(0)
	if rel := lut.MaxError() / mid; rel > 1e-5 {
		t.Errorf("relative max error %g unexpectedly large", rel)
	}
}

// TestLUTExactFallback checks out-of-range and NaN inputs take the exact
// path bit-for-bit.
func TestLUTExactFallback(t *testing.T) {
	tr := testTransform(t)
	lut, err := tr.NewDefaultLUT()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-12, -6.0001, 6.0001, 12, math.Inf(1), math.Inf(-1)} {
		if got, want := lut.Apply(x), tr.Apply(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("x=%v: fallback %v != exact %v", x, got, want)
		}
	}
	if got := lut.Apply(math.NaN()); !math.IsNaN(got) {
		// The exact transform of NaN propagates NaN; the LUT must not
		// accidentally index the table with it.
		t.Fatalf("Apply(NaN) = %v, want NaN", got)
	}
}

// TestLUTMonotone verifies interpolation preserves the monotonicity of h.
func TestLUTMonotone(t *testing.T) {
	tr := testTransform(t)
	lut, err := tr.NewLUT(512, -6, 6)
	if err != nil {
		t.Fatal(err)
	}
	prevX := math.Inf(-1)
	prev := math.Inf(-1)
	for i := 0; i <= 20000; i++ {
		x := -6.5 + 13*float64(i)/20000
		v := lut.Apply(x)
		if v < prev {
			t.Fatalf("LUT not monotone: h(%v)=%v < h(%v)=%v", x, v, prevX, prev)
		}
		prevX, prev = x, v
	}
}

func TestLUTValidation(t *testing.T) {
	tr := testTransform(t)
	if _, err := tr.NewLUT(1, -8, 8); err == nil {
		t.Error("bins=1 accepted")
	}
	if _, err := tr.NewLUT(64, 3, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := tr.NewLUT(64, -8, math.Inf(1)); err == nil {
		t.Error("infinite range accepted")
	}
}

// TestLUTApplyToZeroAlloc is the allocation regression gate for the
// table-based transform hot path.
func TestLUTApplyToZeroAlloc(t *testing.T) {
	tr := testTransform(t)
	lut, err := tr.NewDefaultLUT()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Norm()
	}
	dst := make([]float64, len(xs))
	allocs := testing.AllocsPerRun(10, func() {
		lut.ApplyTo(dst, xs)
	})
	if allocs != 0 {
		t.Fatalf("LUT.ApplyTo allocates %v/op, want 0", allocs)
	}
}

// TestMeasureWorkerInvariant checks the attenuation measurement is
// bit-identical for 1 and 8 workers (rep-indexed seeding contract).
func TestMeasureWorkerInvariant(t *testing.T) {
	tr := testTransform(t)
	plan, err := hosking.NewPlan(acf.FGN{H: 0.9}, 600)
	if err != nil {
		t.Fatal(err)
	}
	base := MeasureOptions{Lags: []int{40, 60}, Replications: 12, Seed: 31}
	opt1 := base
	opt1.Workers = 1
	a1, err := MeasureCtx(context.Background(), plan, tr, 600, opt1)
	if err != nil {
		t.Fatal(err)
	}
	opt8 := base
	opt8.Workers = 8
	a8, err := MeasureCtx(context.Background(), plan, tr, 600, opt8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a1) != math.Float64bits(a8) {
		t.Fatalf("attenuation differs across worker counts: %v (1 worker) vs %v (8 workers)", a1, a8)
	}
	if a1 <= 0 || a1 > 1 {
		t.Fatalf("attenuation %v outside (0, 1]", a1)
	}
}
