package transform

import (
	"errors"
	"fmt"
	"math"
)

// LUT is a precomputed lookup-table fast path for the transform: the fused
// composition h = F_Y^{-1} ∘ Φ is tabulated once on an even grid over
// [lo, hi] and evaluated by linear interpolation, replacing a normal-CDF plus
// quantile inversion per sample with one table read. Because h is monotone
// (both Φ and the quantile are nondecreasing), linear interpolation between
// exact samples preserves monotonicity.
//
// Inputs outside [lo, hi] (and NaNs) fall back to the exact transform, so the
// table range only needs to cover the bulk of the standard normal background
// mass. MaxError reports the measured interpolation error, giving callers a
// concrete bound to accept or reject.
//
// A LUT is immutable after construction and safe for concurrent use.
type LUT struct {
	t       T
	lo, hi  float64
	invStep float64
	vals    []float64
	maxErr  float64
}

// DefaultLUTBins is the grid size NewDefaultLUT uses. At 4096 bins over
// [-6, 6] the measured error for the paper's lognormal marginal is well
// under 1e-1 absolute on frame sizes of order 1e4..1e5 (relative error
// ~1e-7 or better).
const DefaultLUTBins = 4096

// NewLUT tabulates the transform at bins+1 points over [lo, hi]. The
// reported max error is measured by comparing the interpolant against the
// exact transform at every grid midpoint — the point of maximal error for a
// smooth h — so it is an empirical bound, not an analytic one.
func (t T) NewLUT(bins int, lo, hi float64) (*LUT, error) {
	if bins < 2 {
		return nil, errors.New("transform: LUT needs at least 2 bins")
	}
	if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("transform: invalid LUT range [%v, %v]", lo, hi)
	}
	l := &LUT{t: t, lo: lo, hi: hi}
	step := (hi - lo) / float64(bins)
	l.invStep = 1 / step
	l.vals = make([]float64, bins+1)
	for i := range l.vals {
		l.vals[i] = t.Apply(lo + float64(i)*step)
	}
	for i := 0; i < bins; i++ {
		mid := lo + (float64(i)+0.5)*step
		exact := t.Apply(mid)
		interp := 0.5 * (l.vals[i] + l.vals[i+1])
		if d := math.Abs(interp - exact); d > l.maxErr {
			l.maxErr = d
		}
	}
	return l, nil
}

// NewDefaultLUT builds the LUT with the package's default grid: [-6, 6] at
// DefaultLUTBins bins. The range is chosen for resolution, not just mass:
// beyond x ≈ 6 the upper normal-CDF tail saturates double precision (the
// spacing of representable p near 1 maps back to x-steps of ~1e-2 by x = 8),
// so tabulating further would only bake that quantization noise into the
// table. The ~2e-9 of standard normal mass outside the range takes the exact
// fallback instead.
func (t T) NewDefaultLUT() (*LUT, error) {
	return t.NewLUT(DefaultLUTBins, -6, 6)
}

// MaxError returns the measured interpolation error of the table: the
// largest |LUT.Apply(x) - T.Apply(x)| over all grid midpoints.
func (l *LUT) MaxError() float64 { return l.maxErr }

// Range returns the tabulated interval; outside it Apply falls back to the
// exact transform.
func (l *LUT) Range() (lo, hi float64) { return l.lo, l.hi }

// Apply evaluates the transform through the table, falling back to the exact
// computation outside the tabulated range (the comparison is written so NaN
// also takes the exact path).
func (l *LUT) Apply(x float64) float64 {
	if !(x >= l.lo && x <= l.hi) {
		return l.t.Apply(x)
	}
	f := (x - l.lo) * l.invStep
	i := int(f)
	if i >= len(l.vals)-1 {
		i = len(l.vals) - 2
	}
	v0 := l.vals[i]
	return v0 + (f-float64(i))*(l.vals[i+1]-v0)
}

// ApplyTo maps xs into dst through the table (dst may alias xs) and returns
// dst[:len(xs)]. It performs no allocations.
func (l *LUT) ApplyTo(dst, xs []float64) []float64 {
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = l.Apply(x)
	}
	return dst
}
