package tes

import (
	"math"
	"sort"
	"testing"

	"vbrsim/internal/dist"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
)

func TestValidate(t *testing.T) {
	good := Config{Alpha: 0.2, Zeta: 0.5, Marginal: dist.StdNormal}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Alpha: 0, Zeta: 0.5, Marginal: dist.StdNormal},
		{Alpha: 1.5, Zeta: 0.5, Marginal: dist.StdNormal},
		{Alpha: 0.2, Zeta: 0, Marginal: dist.StdNormal},
		{Alpha: 0.2, Zeta: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(bad[0], rng.New(1)); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestBackgroundUniformMarginal(t *testing.T) {
	// The stitched background must be exactly Uniform(0,1); check via a
	// coarse chi-square-ish bin test on the foreground of the identity
	// quantile (uniform marginal).
	g, err := New(Config{Alpha: 0.3, Zeta: 0.5, Marginal: uniform01{}}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	bins := make([]int, 10)
	for i := 0; i < n; i++ {
		v := g.Next()
		idx := int(v * 10)
		if idx == 10 {
			idx = 9
		}
		bins[idx]++
	}
	for i, c := range bins {
		if math.Abs(float64(c)-n/10) > 0.05*n/10 {
			t.Errorf("bin %d count %d, want ~%d", i, c, n/10)
		}
	}
}

// uniform01 is the identity marginal on (0,1).
type uniform01 struct{}

func (uniform01) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
func (uniform01) Quantile(p float64) float64   { return p }
func (uniform01) Sample(r *rng.Source) float64 { return r.Float64() }
func (uniform01) Mean() float64                { return 0.5 }

func TestForegroundMarginalExact(t *testing.T) {
	target := dist.Gamma{Shape: 2, Scale: 1000}
	g, err := New(Config{Alpha: 0.2, Zeta: 0.5, Marginal: target}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	x := g.Path(100000)
	mean := stats.Mean(x)
	if math.Abs(mean-target.Mean()) > 0.05*target.Mean() {
		t.Errorf("TES foreground mean %v, want %v", mean, target.Mean())
	}
	sort.Float64s(x)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		got := x[int(p*float64(len(x)))]
		want := target.Quantile(p)
		if math.Abs(got-want) > 0.08*want {
			t.Errorf("quantile %v: %v vs %v", p, got, want)
		}
	}
}

func TestBackgroundACFFormula(t *testing.T) {
	// Empirical ACF of the stitched background must match the Fourier
	// formula.
	alpha := 0.25
	g, err := New(Config{Alpha: alpha, Zeta: 0.5, Marginal: uniform01{}}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	x := g.Path(400000)
	a := stats.Autocorrelation(x, 10)
	for k := 1; k <= 10; k++ {
		want := BackgroundACF(alpha, k)
		if math.Abs(a[k]-want) > 0.02 {
			t.Errorf("acf[%d] = %v, want %v", k, a[k], want)
		}
	}
}

func TestBackgroundACFProperties(t *testing.T) {
	if got := BackgroundACF(0.3, 0); got != 1 {
		t.Errorf("acf[0] = %v", got)
	}
	// Smaller alpha -> stronger correlation.
	if BackgroundLag1(0.1) <= BackgroundLag1(0.5) {
		t.Error("lag-1 correlation not decreasing in alpha")
	}
	// SRD: correlations decay fast (geometric in k).
	r20 := BackgroundACF(0.3, 20)
	r10 := BackgroundACF(0.3, 10)
	if r20 > r10 {
		t.Error("ACF not decaying")
	}
	if r20/r10 > math.Pow(r10, 0.5) {
		// Geometric decay: r20 ~ r10^2 approximately.
		t.Logf("decay ratio %v (informational)", r20/r10)
	}
}

func TestCalibrateAlpha(t *testing.T) {
	for _, rho := range []float64{0.3, 0.7, 0.95} {
		alpha, err := CalibrateAlpha(rho)
		if err != nil {
			t.Fatal(err)
		}
		if got := BackgroundLag1(alpha); math.Abs(got-rho) > 1e-6 {
			t.Errorf("rho=%v: calibrated alpha %v gives %v", rho, alpha, got)
		}
	}
	if _, err := CalibrateAlpha(0); err == nil {
		t.Error("rho=0 accepted")
	}
	if _, err := CalibrateAlpha(1); err == nil {
		t.Error("rho=1 accepted")
	}
}

func TestTESMinusNegativeLag1(t *testing.T) {
	// TES- with small alpha: consecutive samples reflect around 1/2, so the
	// raw (unstitched) background has strongly negative lag-1 correlation.
	cfg := Config{Alpha: 0.05, Zeta: 1, Marginal: uniform01{}, Minus: true}
	g, err := New(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	x := g.Path(100000)
	a := stats.Autocorrelation(x, 2)
	if a[1] >= 0 {
		t.Errorf("TES- lag-1 acf = %v, want negative", a[1])
	}
	if a[2] <= 0 {
		t.Errorf("TES- lag-2 acf = %v, want positive", a[2])
	}
}

func TestSourceInterface(t *testing.T) {
	src := Source{Cfg: Config{Alpha: 0.2, Zeta: 0.5, Marginal: dist.Exponential{Lambda: 0.001}}}
	path := src.ArrivalPath(rng.New(6), 500)
	if len(path) != 500 {
		t.Fatalf("path len %d", len(path))
	}
	if src.MeanRate() != 1000 {
		t.Errorf("MeanRate = %v", src.MeanRate())
	}
	for _, v := range path {
		if v < 0 {
			t.Fatal("negative arrival")
		}
	}
}

func TestTESIsSRDNotLRD(t *testing.T) {
	// The package's raison d'etre as a baseline: TES autocorrelation decays
	// exponentially, so the aggregated variance decays like 1/m (H ~ 0.5).
	g, err := New(Config{Alpha: 0.1, Zeta: 0.5, Marginal: uniform01{}}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	x := g.Path(1 << 19)
	v1 := stats.Variance(x)
	// Aggregate well beyond the correlation time (~60 lags at alpha=0.1).
	vm := stats.Variance(stats.Aggregate(x, 4096))
	// For LRD with H=0.9, vm/v1 would be 4096^-0.2 ~ 0.19; for SRD it is
	// ~ 2*tau/4096 ~ 0.03. Require clearly sub-LRD behavior.
	if ratio := vm / v1; ratio > 0.1 {
		t.Errorf("aggregated variance ratio %v: TES should be SRD", ratio)
	}
}

func BenchmarkTESNext(b *testing.B) {
	g, err := New(Config{Alpha: 0.2, Zeta: 0.5, Marginal: dist.Exponential{Lambda: 1}}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += g.Next()
	}
	_ = sink
}
