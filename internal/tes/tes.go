// Package tes implements the TES (Transform-Expand-Sample) processes of
// Melamed et al., the modeling technique the paper cites as the prior
// state of the art for matching both a marginal and an autocorrelation
// structure ([22] and the TES-based video models [15], [21], [29]).
//
// A TES+ background sequence evolves on the unit circle,
//
//	U_n = frac(U_{n-1} + V_n),
//
// with iid innovations V_n; modular addition keeps U_n exactly
// Uniform(0,1), so the foreground X_n = F^{-1}(S_zeta(U_n)) has exactly
// the target marginal F, while the innovation width controls the
// autocorrelation. The stitching transform
//
//	S_zeta(y) = y/zeta             for 0 <= y < zeta
//	          = (1-y)/(1-zeta)     for zeta <= y < 1
//
// removes the discontinuity of the circle at 0/1 (zeta in (0,1); zeta = 1
// disables stitching). TES- alternates U'_n = U_n (even n) and 1 - U_n
// (odd n), producing the alternating/negative short-lag correlations TES+
// cannot.
//
// TES processes have exponentially decaying (SRD) autocorrelations — which
// is exactly the limitation the paper's unified self-similar approach
// overcomes; the package exists as the honest baseline.
package tes

import (
	"errors"
	"math"

	"vbrsim/internal/dist"
	"vbrsim/internal/rng"
)

// Config parameterizes a TES process.
type Config struct {
	// Alpha is the innovation width in (0, 1]: V_n ~ Uniform(-Alpha/2,
	// Alpha/2). Small Alpha means strong positive background correlation.
	Alpha float64
	// Zeta is the stitching parameter in (0, 1]; 1 disables stitching.
	// A common default is 0.5 (symmetric stitching).
	Zeta float64
	// Marginal is the foreground distribution F.
	Marginal dist.Distribution
	// Minus selects the TES- variant (alternating reflection).
	Minus bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return errors.New("tes: Alpha must lie in (0, 1]")
	}
	if c.Zeta <= 0 || c.Zeta > 1 {
		return errors.New("tes: Zeta must lie in (0, 1]")
	}
	if c.Marginal == nil {
		return errors.New("tes: nil marginal")
	}
	return nil
}

// Generator produces one TES sample path.
type Generator struct {
	cfg Config
	rng *rng.Source
	u   float64
	n   int
}

// New seeds a generator with a stationary (uniform) starting point.
func New(cfg Config, r *rng.Source) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, rng: r, u: r.Float64()}, nil
}

// Pos returns the number of samples drawn so far (the index of the next
// sample Next will produce).
func (g *Generator) Pos() int { return g.n }

// Reseed rewinds the generator to sample 0 of the trace keyed by seed: the
// rng is reseeded in place and a fresh stationary starting point is drawn.
// Reseeding with the same seed replays the stream bit-identically.
func (g *Generator) Reseed(seed uint64) {
	g.rng.Reseed(seed)
	g.u = g.rng.Float64()
	g.n = 0
}

// stitch applies S_zeta.
func stitch(y, zeta float64) float64 {
	if zeta >= 1 {
		return y
	}
	if y < zeta {
		return y / zeta
	}
	return (1 - y) / (1 - zeta)
}

// NextBackground advances the background process and returns the (possibly
// reflected) uniform variate before stitching.
func (g *Generator) NextBackground() float64 {
	v := g.cfg.Alpha * (g.rng.Float64() - 0.5)
	g.u += v
	g.u -= math.Floor(g.u) // frac
	out := g.u
	if g.cfg.Minus && g.n%2 == 1 {
		out = 1 - out
	}
	g.n++
	return out
}

// Next returns the next foreground sample X_n = F^{-1}(S_zeta(U_n)).
func (g *Generator) Next() float64 {
	u := stitch(g.NextBackground(), g.cfg.Zeta)
	// Clamp away from the endpoints for marginals with infinite support.
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	if u >= 1 {
		u = 1 - 1e-16
	}
	return g.cfg.Marginal.Quantile(u)
}

// Path returns n consecutive foreground samples.
func (g *Generator) Path(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Source adapts a TES configuration to queue.PathSource: each replication
// gets an independent stationary generator.
type Source struct {
	Cfg Config
}

// ArrivalPath draws one replication path.
func (s Source) ArrivalPath(r *rng.Source, k int) []float64 {
	g, err := New(s.Cfg, r)
	if err != nil {
		// Config errors are programmer errors at this point; surface loudly.
		panic("tes: invalid source config: " + err.Error())
	}
	return g.Path(k)
}

// MeanRate returns the marginal mean.
func (s Source) MeanRate() float64 { return s.Cfg.Marginal.Mean() }

// BackgroundLag1 returns the exact lag-1 autocorrelation of the *stitched*
// background process for the uniform innovation of width alpha with
// symmetric stitching (zeta = 1/2), derived from the Fourier expansion of
// the stitched circle process:
//
//	rho(k) = (96/pi^4) * sum_{odd i} sinc(i*pi*alpha)^k / i^4,
//
// evaluated at k = 1. It is used to calibrate Alpha to a desired
// correlation and to test the implementation.
func BackgroundLag1(alpha float64) float64 {
	return BackgroundACF(alpha, 1)
}

// BackgroundACF returns the exact lag-k autocorrelation of the stitched
// (zeta = 1/2) TES+ background process with Uniform(-alpha/2, alpha/2)
// innovations.
func BackgroundACF(alpha float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	var sum float64
	for i := 1; i <= 199; i += 2 {
		x := float64(i) * math.Pi * alpha
		s := 1.0
		if x != 0 {
			s = math.Sin(x) / x
		}
		sum += math.Pow(s, float64(k)) / math.Pow(float64(i), 4)
	}
	return sum * 96 / math.Pow(math.Pi, 4)
}

// CalibrateAlpha returns the innovation width whose stitched background
// lag-1 autocorrelation is closest to rho (rho in (0,1)), by bisection.
func CalibrateAlpha(rho float64) (float64, error) {
	if rho <= 0 || rho >= 1 {
		return 0, errors.New("tes: target correlation must lie in (0,1)")
	}
	lo, hi := 1e-6, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if BackgroundLag1(mid) > rho {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
