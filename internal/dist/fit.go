// Parametric marginal fitting. The paper notes (Section 3.1) that the
// foreground marginal F_Y "can be obtained either by modeling an empirical
// distribution using parametric mathematical functions or ... by inverting
// the empirical distribution directly". This file supplies the parametric
// route used by Garrett & Willinger: a Gamma body with a Pareto tail, the
// body fitted by moment matching on the truncated sample and the tail index
// by the Hill estimator.
package dist

import (
	"errors"
	"math"
	"sort"
)

// HillTailIndex estimates the Pareto tail index alpha from the largest k
// order statistics of the sample (the Hill estimator):
//
//	alpha_hat = k / sum_{i=1..k} log(X_(n-i+1) / X_(n-k)).
//
// It returns an error when fewer than k+1 positive observations exist.
func HillTailIndex(sample []float64, k int) (float64, error) {
	if k < 2 {
		return 0, errors.New("dist: Hill estimator needs k >= 2")
	}
	s := make([]float64, 0, len(sample))
	for _, v := range sample {
		if v > 0 {
			s = append(s, v)
		}
	}
	if len(s) <= k {
		return 0, errors.New("dist: not enough positive observations for Hill estimator")
	}
	sort.Float64s(s)
	threshold := s[len(s)-1-k]
	if threshold <= 0 {
		return 0, errors.New("dist: non-positive Hill threshold")
	}
	var sum float64
	for i := len(s) - k; i < len(s); i++ {
		sum += math.Log(s[i] / threshold)
	}
	if sum <= 0 {
		return 0, errors.New("dist: degenerate Hill sum")
	}
	return float64(k) / sum, nil
}

// FitGammaOptions controls FitGammaPareto.
type FitGammaOptions struct {
	// TailFraction is the upper fraction of the sample treated as the
	// Pareto tail; default 0.02 (the body is fitted on the rest).
	TailFraction float64
	// HillFraction is the fraction of the sample used by the Hill
	// estimator for the tail index; default TailFraction/4, which keeps
	// the Hill order statistics safely inside the tail regime even when
	// the true tail mass is smaller than TailFraction.
	HillFraction float64
}

// FitGammaPareto fits the hybrid Gamma/Pareto marginal of Garrett &
// Willinger to a sample: the Gamma body by moment matching below the cut
// (the (1-TailFraction)-quantile) and the Pareto tail index by the Hill
// estimator above it.
func FitGammaPareto(sample []float64, opt FitGammaOptions) (*GammaPareto, error) {
	if len(sample) < 100 {
		return nil, errors.New("dist: need at least 100 observations to fit Gamma/Pareto")
	}
	if opt.TailFraction <= 0 || opt.TailFraction >= 0.5 {
		opt.TailFraction = 0.02
	}
	if opt.HillFraction <= 0 || opt.HillFraction >= 0.5 {
		opt.HillFraction = opt.TailFraction / 4
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	cutIdx := int(float64(len(s)) * (1 - opt.TailFraction))
	if cutIdx >= len(s) {
		cutIdx = len(s) - 1
	}
	cut := s[cutIdx]
	if cut <= 0 {
		return nil, errors.New("dist: non-positive tail cut")
	}

	// Fit the Gamma body by maximum likelihood on the sub-cut sample.
	// MLE uses the log-moment statistic s = ln(mean) - mean(ln x), which —
	// unlike variance matching — is insensitive to the heavy tail (the
	// Pareto regime can have infinite variance). Truncation at the
	// (1-TailFraction) quantile biases the fit by only a few percent.
	var sum, sumLog float64
	nBody := 0
	for _, v := range s[:cutIdx] {
		if v > 0 {
			sum += v
			sumLog += math.Log(v)
			nBody++
		}
	}
	if nBody < 50 {
		return nil, errors.New("dist: too few positive body observations")
	}
	mean := sum / float64(nBody)
	sStat := math.Log(mean) - sumLog/float64(nBody)
	if sStat <= 0 {
		return nil, errors.New("dist: degenerate log-moment statistic")
	}
	// Minka's closed-form approximation to the Gamma MLE shape.
	shape := (3 - sStat + math.Sqrt((sStat-3)*(sStat-3)+24*sStat)) / (12 * sStat)
	if shape <= 0 || math.IsNaN(shape) {
		return nil, errors.New("dist: Gamma shape fit failed")
	}
	scale := mean / shape

	kHill := int(float64(len(s)) * opt.HillFraction)
	if kHill < 10 {
		kHill = 10
	}
	alpha, err := HillTailIndex(s, kHill)
	if err != nil {
		return nil, err
	}
	return NewGammaPareto(Gamma{Shape: shape, Scale: scale}, alpha, cut)
}

// FitLognormal fits a lognormal by moment matching on the log sample.
func FitLognormal(sample []float64) (Lognormal, error) {
	var sum, sumSq float64
	n := 0
	for _, v := range sample {
		if v > 0 {
			lv := math.Log(v)
			sum += lv
			sumSq += lv * lv
			n++
		}
	}
	if n < 2 {
		return Lognormal{}, errors.New("dist: not enough positive observations for lognormal fit")
	}
	mu := sum / float64(n)
	variance := sumSq/float64(n) - mu*mu
	if variance <= 0 {
		return Lognormal{}, errors.New("dist: degenerate log variance")
	}
	return Lognormal{Mu: mu, Sigma: math.Sqrt(variance)}, nil
}

// FitGamma fits a Gamma distribution by moment matching.
func FitGamma(sample []float64) (Gamma, error) {
	var sum, sumSq float64
	for _, v := range sample {
		if v < 0 {
			return Gamma{}, errors.New("dist: negative observation in Gamma fit")
		}
		sum += v
		sumSq += v * v
	}
	n := float64(len(sample))
	if n < 2 {
		return Gamma{}, errors.New("dist: not enough observations for Gamma fit")
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean <= 0 || variance <= 0 {
		return Gamma{}, errors.New("dist: degenerate moments for Gamma fit")
	}
	return Gamma{Shape: mean * mean / variance, Scale: variance / mean}, nil
}
