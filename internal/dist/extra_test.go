package dist

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
)

func TestWeibullSpecialCases(t *testing.T) {
	// Shape 1 is exponential.
	w := Weibull{Shape: 1, Scale: 2}
	e := Exponential{Lambda: 0.5}
	for _, x := range []float64{0.1, 1, 3, 10} {
		if math.Abs(w.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("Weibull(1,2).CDF(%v) = %v, want %v", x, w.CDF(x), e.CDF(x))
		}
	}
	if math.Abs(w.Mean()-2) > 1e-12 {
		t.Errorf("Weibull(1,2) mean = %v, want 2", w.Mean())
	}
}

func TestWeibullRoundTripAndSample(t *testing.T) {
	w := Weibull{Shape: 0.7, Scale: 1000} // sub-exponential tail, video-like
	for _, p := range []float64{0.01, 0.3, 0.9, 0.999} {
		if back := w.CDF(w.Quantile(p)); math.Abs(back-p) > 1e-12 {
			t.Errorf("round trip p=%v got %v", p, back)
		}
	}
	r := rng.New(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += w.Sample(r)
	}
	if got := sum / n; math.Abs(got-w.Mean()) > 0.03*w.Mean() {
		t.Errorf("sample mean %v, want %v", got, w.Mean())
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]Distribution{StdNormal}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewMixture([]Distribution{StdNormal}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestMixtureBimodal(t *testing.T) {
	// An I/B-like bimodal population: small B frames and large I frames.
	m, err := NewMixture(
		[]Distribution{
			Gamma{Shape: 4, Scale: 300},  // B-ish, mean 1200
			Gamma{Shape: 6, Scale: 1500}, // I-ish, mean 9000
		},
		[]float64{0.75, 0.25},
	)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.75*1200 + 0.25*9000
	if math.Abs(m.Mean()-wantMean) > 1e-9 {
		t.Errorf("mixture mean %v, want %v", m.Mean(), wantMean)
	}
	// CDF is the weighted average at any point.
	x := 3000.0
	want := 0.75*(Gamma{Shape: 4, Scale: 300}).CDF(x) + 0.25*(Gamma{Shape: 6, Scale: 1500}).CDF(x)
	if math.Abs(m.CDF(x)-want) > 1e-12 {
		t.Errorf("mixture CDF(%v) = %v, want %v", x, m.CDF(x), want)
	}
	// Quantile round trip.
	for _, p := range []float64{0.05, 0.5, 0.74, 0.76, 0.95} {
		q := m.Quantile(p)
		if back := m.CDF(q); math.Abs(back-p) > 1e-9 {
			t.Errorf("quantile round trip p=%v got %v", p, back)
		}
	}
	// Sampling matches moments.
	r := rng.New(2)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Sample(r)
	}
	if got := sum / n; math.Abs(got-wantMean) > 0.03*wantMean {
		t.Errorf("mixture sample mean %v, want %v", got, wantMean)
	}
}

func TestMixtureQuantileMonotone(t *testing.T) {
	m, err := NewMixture(
		[]Distribution{Normal{Mu: -5, Sigma: 1}, Normal{Mu: 5, Sigma: 1}},
		[]float64{0.5, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.003 {
		q := m.Quantile(p)
		if q < prev {
			t.Fatalf("mixture quantile not monotone at p=%v", p)
		}
		prev = q
	}
}

func TestMixtureWithInfiniteMeanComponent(t *testing.T) {
	m, err := NewMixture(
		[]Distribution{Gamma{Shape: 2, Scale: 1}, Pareto{Alpha: 0.8, Xm: 1}},
		[]float64{0.9, 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.Mean(), 1) {
		t.Errorf("mixture with infinite-mean component has mean %v", m.Mean())
	}
}

func TestMixtureAsTransformTarget(t *testing.T) {
	// A mixture must behave as a foreground marginal: monotone quantiles
	// usable in histogram inversion.
	m, err := NewMixture(
		[]Distribution{Lognormal{Mu: 6, Sigma: 0.4}, Lognormal{Mu: 9, Sigma: 0.3}},
		[]float64{0.8, 0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	var d Distribution = m // compile-time interface check
	if d.Quantile(0.5) <= 0 {
		t.Error("mixture quantile non-positive")
	}
}
