package dist

import (
	"math"
	"testing"
	"testing/quick"

	"vbrsim/internal/rng"
)

// distributions under test, with a representative instance each.
func testDistributions() map[string]Distribution {
	gp, err := NewGammaPareto(Gamma{Shape: 2, Scale: 1000}, 1.5, 4000)
	if err != nil {
		panic(err)
	}
	return map[string]Distribution{
		"normal":      Normal{Mu: 3, Sigma: 2},
		"stdnormal":   StdNormal,
		"exponential": Exponential{Lambda: 0.5},
		"pareto":      Pareto{Alpha: 2.5, Xm: 1.5},
		"lognormal":   Lognormal{Mu: 1, Sigma: 0.5},
		"gamma":       Gamma{Shape: 3.2, Scale: 2.0},
		"gammapareto": gp,
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	for name, d := range testDistributions() {
		for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
			q := d.Quantile(p)
			back := d.CDF(q)
			if math.Abs(back-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, back)
			}
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	for name, d := range testDistributions() {
		prev := -1.0
		for x := -10.0; x <= 10000; x += 97.3 {
			c := d.CDF(x)
			if c < prev-1e-12 {
				t.Fatalf("%s: CDF not monotone at %v", name, x)
			}
			if c < 0 || c > 1 {
				t.Fatalf("%s: CDF(%v) = %v outside [0,1]", name, x, c)
			}
			prev = c
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	for name, d := range testDistributions() {
		prev := math.Inf(-1)
		for p := 0.001; p < 1; p += 0.001 {
			q := d.Quantile(p)
			if q < prev-1e-9 {
				t.Fatalf("%s: quantile not monotone at p=%v: %v < %v", name, p, q, prev)
			}
			prev = q
		}
	}
}

func TestSampleMeansMatch(t *testing.T) {
	r := rng.New(42)
	for name, d := range testDistributions() {
		want := d.Mean()
		if math.IsInf(want, 1) {
			continue
		}
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(r)
		}
		got := sum / n
		tol := 0.05*math.Abs(want) + 0.05
		if math.Abs(got-want) > tol {
			t.Errorf("%s: sample mean %v, want %v", name, got, want)
		}
	}
}

func TestStdNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.841344746068543, 1},
		{0.977249868051821, 2},
		{0.998650101968370, 3},
		{0.158655253931457, -1},
		{0.0227501319481792, -2},
		{1.3498980316300945e-3, -3},
		{2.866515719235352e-7, -5},
	}
	for _, tc := range cases {
		got := StdNormal.Quantile(tc.p)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.841344746068543},
		{-1, 0.158655253931457},
		{3, 0.998650101968370},
		{-6, 9.865876450376946e-10},
	}
	for _, tc := range cases {
		got := StdNormal.CDF(tc.x)
		if math.Abs(got-tc.want) > 1e-12*math.Max(1, 1/tc.want) && math.Abs(got-tc.want)/tc.want > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNormalQuantileExtremeTails(t *testing.T) {
	if !math.IsInf(StdNormal.Quantile(0), -1) || !math.IsInf(StdNormal.Quantile(1), 1) {
		t.Error("quantile endpoints must be infinite")
	}
	// Deep-tail round trip.
	for _, p := range []float64{1e-10, 1e-8, 1 - 1e-10} {
		q := StdNormal.Quantile(p)
		if math.Abs(StdNormal.CDF(q)-p) > 1e-11+1e-4*p {
			t.Errorf("deep tail p=%v: CDF(Quantile(p)) = %v", p, StdNormal.CDF(q))
		}
	}
}

func TestGammaCDFKnownValues(t *testing.T) {
	// Gamma(1, 1) is Exponential(1): CDF(x) = 1-exp(-x).
	g := Gamma{Shape: 1, Scale: 1}
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := g.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("Gamma(1,1).CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Gamma(k=n/2, scale=2) is chi-squared; chi2(2 dof).CDF(2) known.
	chi2 := Gamma{Shape: 1, Scale: 2}
	want := 1 - math.Exp(-1)
	if got := chi2.CDF(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("chi2(2).CDF(2) = %v, want %v", got, want)
	}
}

func TestGammaQuantileSmallShape(t *testing.T) {
	g := Gamma{Shape: 0.3, Scale: 1}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		q := g.Quantile(p)
		if q < 0 || math.IsNaN(q) {
			t.Fatalf("Quantile(%v) = %v", p, q)
		}
		if back := g.CDF(q); math.Abs(back-p) > 1e-8 {
			t.Errorf("small-shape round trip p=%v got %v", p, back)
		}
	}
}

func TestParetoMeanInfinite(t *testing.T) {
	if !math.IsInf(Pareto{Alpha: 0.9, Xm: 1}.Mean(), 1) {
		t.Error("Pareto with alpha<=1 must have infinite mean")
	}
}

func TestGammaParetoContinuity(t *testing.T) {
	gp, err := NewGammaPareto(Gamma{Shape: 2, Scale: 500}, 1.2, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// The CDF must be continuous at the cut.
	eps := 1e-6
	below := gp.CDF(gp.Cut - eps)
	above := gp.CDF(gp.Cut + eps)
	if math.Abs(above-below) > 1e-4 {
		t.Errorf("CDF jump at cut: %v vs %v", below, above)
	}
	// The tail must dominate any gamma tail: survival decays polynomially.
	s10 := 1 - gp.CDF(10*gp.Cut)
	want := (1 - gp.Body.CDF(gp.Cut)) * math.Pow(0.1, 1.2)
	if math.Abs(s10-want) > 1e-9 {
		t.Errorf("tail survival %v, want %v", s10, want)
	}
}

func TestGammaParetoValidation(t *testing.T) {
	if _, err := NewGammaPareto(Gamma{Shape: 1, Scale: 1}, 1.5, -1); err == nil {
		t.Error("negative cut accepted")
	}
	if _, err := NewGammaPareto(Gamma{Shape: 1, Scale: 1}, 0, 1); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestEmpiricalMatchesSample(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	e, err := NewEmpirical(sample)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 10 || e.Min() != 1 || e.Max() != 10 {
		t.Errorf("Len/Min/Max = %d/%v/%v", e.Len(), e.Min(), e.Max())
	}
	if e.Mean() != 5.5 {
		t.Errorf("Mean = %v, want 5.5", e.Mean())
	}
	if got := e.CDF(5); got != 0.5 {
		t.Errorf("CDF(5) = %v, want 0.5", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := e.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestEmpiricalInversionRecoversDistribution(t *testing.T) {
	// Sampling via Quantile(U) from an empirical built on N(0,1) data must
	// reproduce N(0,1) moments.
	r := rng.New(9)
	base := make([]float64, 50000)
	for i := range base {
		base[i] = r.Norm()
	}
	e, _ := NewEmpirical(base)
	var sum, sumSq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := e.Sample(r)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("empirical inversion mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("empirical inversion variance = %v", variance)
	}
}

func TestQuickNormalRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p == 0 {
			return true
		}
		q := StdNormal.Quantile(p)
		return math.Abs(StdNormal.CDF(q)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEmpiricalQuantileWithinRange(t *testing.T) {
	f := func(sample []float64, praw float64) bool {
		clean := sample[:0]
		for _, v := range sample {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		e, err := NewEmpirical(clean)
		if err != nil {
			return false
		}
		p := math.Mod(math.Abs(praw), 1)
		q := e.Quantile(p)
		return q >= e.Min() && q <= e.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += StdNormal.Quantile(0.3 + 0.4*float64(i%1000)/1000)
	}
	_ = sink
}

func BenchmarkGammaQuantile(b *testing.B) {
	g := Gamma{Shape: 2.5, Scale: 1}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += g.Quantile(0.3 + 0.4*float64(i%1000)/1000)
	}
	_ = sink
}

func BenchmarkEmpiricalQuantile(b *testing.B) {
	r := rng.New(1)
	sample := make([]float64, 100000)
	for i := range sample {
		sample[i] = r.Norm()
	}
	e, _ := NewEmpirical(sample)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += e.Quantile(float64(i%1000) / 1000)
	}
	_ = sink
}
