// Package dist implements the probability distributions the paper's modeling
// pipeline relies on. Every distribution exposes its CDF and quantile
// (inverse CDF) so it can serve as the foreground marginal F_Y in the
// transform Y = F_Y^{-1}(Phi(X)), plus a sampler for direct simulation.
//
// The set covers: Normal (the Gaussian background process), Gamma, Pareto and
// the hybrid Gamma/Pareto of Garrett & Willinger (the parametric video
// marginals from prior work the paper cites), Lognormal and Exponential
// (general-purpose), and Empirical (the histogram-inversion marginal the
// paper actually uses).
package dist

import (
	"errors"
	"math"
	"sort"

	"vbrsim/internal/rng"
)

// Distribution is a univariate law usable as a foreground marginal.
type Distribution interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile for p in (0,1); implementations clamp
	// or extend sensibly at the endpoints.
	Quantile(p float64) float64
	// Sample draws one variate using r.
	Sample(r *rng.Source) float64
	// Mean returns the distribution mean (may be +Inf).
	Mean() float64
}

// ---------------------------------------------------------------------------
// Normal

// Normal is the Gaussian distribution N(Mu, Sigma^2).
type Normal struct {
	Mu    float64
	Sigma float64
}

// StdNormal is the standard normal N(0,1).
var StdNormal = Normal{Mu: 0, Sigma: 1}

// CDF returns the Gaussian CDF via erfc for accuracy in both tails.
func (n Normal) CDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// PDF returns the Gaussian density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// Quantile returns the Gaussian quantile using Acklam's rational
// approximation refined by one Halley step, accurate to ~1e-15.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*stdNormalQuantile(p)
}

// Sample draws from N(Mu, Sigma^2).
func (n Normal) Sample(r *rng.Source) float64 { return n.Mu + n.Sigma*r.Norm() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// stdNormalQuantile computes Phi^{-1}(p) for p in (0,1).
func stdNormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's algorithm.
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Halley refinement using the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ---------------------------------------------------------------------------
// Exponential

// Exponential has rate Lambda (mean 1/Lambda).
type Exponential struct {
	Lambda float64
}

// CDF returns 1 - exp(-Lambda x) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Quantile returns -log(1-p)/Lambda.
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Lambda
}

// Sample draws an exponential variate.
func (e Exponential) Sample(r *rng.Source) float64 { return r.Exp(e.Lambda) }

// Mean returns 1/Lambda.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

// ---------------------------------------------------------------------------
// Pareto

// Pareto is the classical Pareto distribution with shape Alpha and minimum
// Xm: P(X > x) = (Xm/x)^Alpha for x >= Xm.
type Pareto struct {
	Alpha float64
	Xm    float64
}

// CDF returns 1 - (Xm/x)^Alpha.
func (p Pareto) CDF(x float64) float64 {
	if x <= p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile returns Xm / (1-u)^(1/Alpha).
func (p Pareto) Quantile(u float64) float64 {
	if u <= 0 {
		return p.Xm
	}
	if u >= 1 {
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-u, 1/p.Alpha)
}

// Sample draws a Pareto variate.
func (p Pareto) Sample(r *rng.Source) float64 { return r.Pareto(p.Alpha, p.Xm) }

// Mean returns Alpha*Xm/(Alpha-1), or +Inf when Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// ---------------------------------------------------------------------------
// Lognormal

// Lognormal is exp(N(Mu, Sigma^2)).
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// CDF returns the lognormal CDF.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.CDF(math.Log(x))
}

// Quantile returns exp of the underlying normal quantile.
func (l Lognormal) Quantile(p float64) float64 {
	return math.Exp(Normal{Mu: l.Mu, Sigma: l.Sigma}.Quantile(p))
}

// Sample draws a lognormal variate.
func (l Lognormal) Sample(r *rng.Source) float64 { return r.Lognormal(l.Mu, l.Sigma) }

// Mean returns exp(Mu + Sigma^2/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// ---------------------------------------------------------------------------
// Gamma

// Gamma has the given Shape and Scale (mean Shape*Scale).
type Gamma struct {
	Shape float64
	Scale float64
}

// CDF returns the regularized lower incomplete gamma P(Shape, x/Scale).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(g.Shape, x/g.Scale)
}

// PDF returns the gamma density at x.
func (g Gamma) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(g.Shape)
	return math.Exp((g.Shape-1)*math.Log(x/g.Scale)-x/g.Scale-lg) / g.Scale
}

// Quantile inverts the CDF by a Wilson–Hilferty initial guess refined with
// Newton iterations (falling back to bisection when Newton steps leave the
// bracket).
func (g Gamma) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Wilson–Hilferty: if Z ~ N(0,1), X ≈ shape*(1 - 1/(9k) + z/(3*sqrt(k)))^3.
	k := g.Shape
	z := stdNormalQuantile(p)
	x := k * math.Pow(1-1/(9*k)+z/(3*math.Sqrt(k)), 3)
	if x <= 0 || math.IsNaN(x) {
		x = k * math.Exp((math.Log(p)+lgamma(k+1))/k) // small-shape seed
		if x <= 0 || math.IsNaN(x) {
			x = 1e-8
		}
	}
	lo, hi := 0.0, math.Max(4*x, k*64)
	for regIncGammaLower(k, hi) < p {
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		f := regIncGammaLower(k, x) - p
		if math.Abs(f) < 1e-14 {
			break
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		lg, _ := math.Lgamma(k)
		pdf := math.Exp((k-1)*math.Log(x) - x - lg)
		var next float64
		if pdf > 0 {
			next = x - f/pdf
		}
		if pdf <= 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-13*(1+x) {
			x = next
			break
		}
		x = next
	}
	return x * g.Scale
}

// Sample draws a gamma variate.
func (g Gamma) Sample(r *rng.Source) float64 { return r.Gamma(g.Shape, g.Scale) }

// Mean returns Shape*Scale.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// regIncGammaLower computes the regularized lower incomplete gamma function
// P(a, x) using the series expansion for x < a+1 and the continued fraction
// for the complement otherwise (Numerical Recipes style).
func regIncGammaLower(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	const maxIter = 500
	lg := lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const tiny = 1e-300
	lg := lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ---------------------------------------------------------------------------
// GammaPareto hybrid

// GammaPareto is the hybrid marginal used by Garrett & Willinger for VBR
// video: a Gamma body up to the cut point and a Pareto tail beyond it, glued
// continuously. The tail carries probability mass 1 - Gamma.CDF(Cut); the
// Pareto tail is conditioned to start at Cut.
type GammaPareto struct {
	Body Gamma
	Tail Pareto  // Tail.Xm must equal Cut
	Cut  float64 // switch point between body and tail
}

// NewGammaPareto builds a hybrid with the Pareto tail anchored at cut.
func NewGammaPareto(body Gamma, alpha, cut float64) (*GammaPareto, error) {
	if cut <= 0 {
		return nil, errors.New("dist: GammaPareto cut must be positive")
	}
	if alpha <= 0 {
		return nil, errors.New("dist: GammaPareto alpha must be positive")
	}
	return &GammaPareto{Body: body, Tail: Pareto{Alpha: alpha, Xm: cut}, Cut: cut}, nil
}

// CDF returns the hybrid CDF: the Gamma body below Cut and a rescaled Pareto
// tail above it.
func (gp *GammaPareto) CDF(x float64) float64 {
	pc := gp.Body.CDF(gp.Cut)
	if x < gp.Cut {
		return gp.Body.CDF(x)
	}
	return pc + (1-pc)*gp.Tail.CDF(x)
}

// Quantile inverts the hybrid CDF.
func (gp *GammaPareto) Quantile(p float64) float64 {
	pc := gp.Body.CDF(gp.Cut)
	if p < pc {
		return gp.Body.Quantile(p)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Conditional tail probability.
	u := (p - pc) / (1 - pc)
	return gp.Tail.Quantile(u)
}

// Sample draws from the hybrid by probability mixing.
func (gp *GammaPareto) Sample(r *rng.Source) float64 {
	pc := gp.Body.CDF(gp.Cut)
	if r.Float64() < pc {
		// Rejection from the truncated body.
		for {
			v := gp.Body.Sample(r)
			if v < gp.Cut {
				return v
			}
		}
	}
	return gp.Tail.Sample(r)
}

// Mean integrates the hybrid mean: body part by numerical quadrature of the
// truncated Gamma plus the Pareto tail mean.
func (gp *GammaPareto) Mean() float64 {
	pc := gp.Body.CDF(gp.Cut)
	// E[X; X<Cut] for Gamma(shape,scale) = shape*scale*P(shape+1, Cut/scale).
	bodyPart := gp.Body.Shape * gp.Body.Scale * regIncGammaLower(gp.Body.Shape+1, gp.Cut/gp.Body.Scale)
	return bodyPart + (1-pc)*gp.Tail.Mean()
}

// ---------------------------------------------------------------------------
// Empirical

// Empirical is the histogram-inversion marginal the paper uses: the CDF is
// the sample ECDF and the quantile linearly interpolates between order
// statistics. It is the default F_Y for the unified model.
type Empirical struct {
	sorted []float64
	mean   float64
}

// NewEmpirical builds an empirical distribution from a sample. It returns an
// error for an empty sample and for one containing NaN, which would break
// the sorted-order invariant behind CDF and Quantile.
func NewEmpirical(sample []float64) (*Empirical, error) {
	if len(sample) == 0 {
		return nil, errors.New("dist: empty sample for Empirical")
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	// sort.Float64s orders NaN before everything, so one check covers all.
	if math.IsNaN(s[0]) {
		return nil, errors.New("dist: sample for Empirical contains NaN")
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return &Empirical{sorted: s, mean: sum / float64(len(s))}, nil
}

// CDF returns the fraction of the sample <= x.
func (e *Empirical) CDF(x float64) float64 {
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the interpolated p-quantile of the sample. p outside
// [0,1] is clamped, so the transform h(X) never produces values beyond the
// observed range — exactly the histogram-inversion behaviour of the paper.
// A NaN p yields NaN rather than an out-of-range index.
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	h := p * float64(n-1)
	i := int(h)
	frac := h - float64(i)
	if i+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[i]*(1-frac) + e.sorted[i+1]*frac
}

// Sample draws by inversion of a uniform variate.
func (e *Empirical) Sample(r *rng.Source) float64 { return e.Quantile(r.Float64()) }

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return e.mean }

// Len returns the number of observations backing the distribution.
func (e *Empirical) Len() int { return len(e.sorted) }

// Min and Max return the sample extremes.
func (e *Empirical) Min() float64 { return e.sorted[0] }

// Max returns the largest observation.
func (e *Empirical) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Values returns a copy of the sorted sample backing the distribution, so a
// fitted marginal can be serialized and rebuilt exactly (NewEmpirical on the
// returned slice reproduces the identical distribution).
func (e *Empirical) Values() []float64 { return append([]float64(nil), e.sorted...) }
