package dist

import (
	"math"
	"testing"

	"vbrsim/internal/rng"
)

func TestHillTailIndexRecoversPareto(t *testing.T) {
	r := rng.New(1)
	for _, alpha := range []float64{1.2, 2.0, 3.5} {
		sample := make([]float64, 100000)
		for i := range sample {
			sample[i] = r.Pareto(alpha, 1)
		}
		got, err := HillTailIndex(sample, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-alpha) > 0.15*alpha {
			t.Errorf("alpha=%v: Hill = %v", alpha, got)
		}
	}
}

func TestHillTailIndexValidation(t *testing.T) {
	if _, err := HillTailIndex([]float64{1, 2, 3}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := HillTailIndex([]float64{1, 2, 3}, 5); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := HillTailIndex([]float64{-1, -2, -3, -4}, 2); err == nil {
		t.Error("all-negative sample accepted")
	}
	// Constant positive sample: log ratios are zero -> degenerate.
	if _, err := HillTailIndex([]float64{5, 5, 5, 5, 5, 5}, 3); err == nil {
		t.Error("constant sample accepted")
	}
}

func TestHillOnGammaIsLarge(t *testing.T) {
	// A light-tailed sample should produce a large tail index (no power
	// law); just check it exceeds any realistic video tail.
	r := rng.New(2)
	sample := make([]float64, 50000)
	for i := range sample {
		sample[i] = r.Gamma(3, 1)
	}
	got, err := HillTailIndex(sample, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got < 3 {
		t.Errorf("gamma Hill index = %v, want > 3 (light tail)", got)
	}
}

func TestFitGammaParetoRoundTrip(t *testing.T) {
	// Sample from a known hybrid, refit, check CDF agreement.
	truth, err := NewGammaPareto(Gamma{Shape: 2.5, Scale: 1000}, 1.6, 8000)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	sample := make([]float64, 200000)
	for i := range sample {
		sample[i] = truth.Sample(r)
	}
	got, err := FitGammaPareto(sample, FitGammaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Tail index within 25%.
	if math.Abs(got.Tail.Alpha-1.6) > 0.4 {
		t.Errorf("tail alpha = %v, want ~1.6", got.Tail.Alpha)
	}
	// CDF agreement at body quantiles.
	for _, x := range []float64{500, 1500, 3000, 6000} {
		if d := math.Abs(got.CDF(x) - truth.CDF(x)); d > 0.05 {
			t.Errorf("CDF(%v): fitted %v vs truth %v", x, got.CDF(x), truth.CDF(x))
		}
	}
	// Tail survival within a factor of ~2 at a deep quantile.
	sx := 50000.0
	sTruth := 1 - truth.CDF(sx)
	sGot := 1 - got.CDF(sx)
	if sGot < sTruth/3 || sGot > sTruth*3 {
		t.Errorf("tail survival at %v: fitted %v vs truth %v", sx, sGot, sTruth)
	}
}

func TestFitGammaParetoValidation(t *testing.T) {
	if _, err := FitGammaPareto(make([]float64, 10), FitGammaOptions{}); err == nil {
		t.Error("tiny sample accepted")
	}
	neg := make([]float64, 200)
	for i := range neg {
		neg[i] = -1
	}
	if _, err := FitGammaPareto(neg, FitGammaOptions{}); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestFitLognormal(t *testing.T) {
	r := rng.New(4)
	sample := make([]float64, 100000)
	for i := range sample {
		sample[i] = r.Lognormal(2.5, 0.7)
	}
	got, err := FitLognormal(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Mu-2.5) > 0.02 || math.Abs(got.Sigma-0.7) > 0.02 {
		t.Errorf("lognormal fit = %+v", got)
	}
	if _, err := FitLognormal([]float64{-1, 0}); err == nil {
		t.Error("non-positive sample accepted")
	}
	if _, err := FitLognormal([]float64{3, 3, 3}); err == nil {
		t.Error("constant sample accepted")
	}
}

func TestFitGamma(t *testing.T) {
	r := rng.New(5)
	sample := make([]float64, 100000)
	for i := range sample {
		sample[i] = r.Gamma(2.2, 1300)
	}
	got, err := FitGamma(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Shape-2.2) > 0.1 || math.Abs(got.Scale-1300) > 60 {
		t.Errorf("gamma fit = %+v", got)
	}
	if _, err := FitGamma([]float64{1, -2}); err == nil {
		t.Error("negative observation accepted")
	}
	if _, err := FitGamma([]float64{1}); err == nil {
		t.Error("single observation accepted")
	}
}

func TestFitGammaParetoOnVideoLikeSample(t *testing.T) {
	// Gamma body + occasional huge scene bursts: the fitted hybrid must be
	// usable as a transform target (finite mean, monotone quantile).
	r := rng.New(6)
	sample := make([]float64, 100000)
	for i := range sample {
		v := r.Gamma(2, 1500)
		if r.Float64() < 0.01 {
			v += r.Pareto(1.5, 10000)
		}
		sample[i] = v
	}
	gp, err := FitGammaPareto(sample, FitGammaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m := gp.Mean(); m <= 0 || math.IsInf(m, 1) && gp.Tail.Alpha > 1 {
		t.Errorf("hybrid mean = %v (alpha %v)", m, gp.Tail.Alpha)
	}
	prev := 0.0
	for p := 0.01; p < 1; p += 0.01 {
		q := gp.Quantile(p)
		if q < prev {
			t.Fatalf("hybrid quantile not monotone at p=%v", p)
		}
		prev = q
	}
}
