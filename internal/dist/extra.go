// Additional marginals: Weibull (the tail family of the Norros overflow
// law, and a common fit for low-activity video) and finite mixtures (for
// bimodal marginals such as a combined I/P/B frame population — the shape
// the paper's composite model handles with per-type transforms instead).
package dist

import (
	"errors"
	"math"

	"vbrsim/internal/rng"
)

// Weibull has CDF 1 - exp(-(x/Scale)^Shape) for x >= 0.
type Weibull struct {
	Shape float64
	Scale float64
}

// CDF returns the Weibull CDF.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Scale, w.Shape))
}

// Quantile returns Scale * (-ln(1-p))^(1/Shape).
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Scale * math.Pow(-math.Log1p(-p), 1/w.Shape)
}

// Sample draws by inversion.
func (w Weibull) Sample(r *rng.Source) float64 { return w.Quantile(r.OpenFloat64()) }

// Mean returns Scale * Gamma(1 + 1/Shape).
func (w Weibull) Mean() float64 {
	g, _ := math.Lgamma(1 + 1/w.Shape)
	return w.Scale * math.Exp(g)
}

// Mixture is a finite mixture of component distributions with
// probability weights. The zero value is not usable; construct with
// NewMixture, which validates and normalizes the weights.
type Mixture struct {
	components []Distribution
	weights    []float64
	mean       float64
	lo, hi     float64 // quantile search bracket
}

// NewMixture builds a mixture. Weights must be positive; they are
// normalized to sum to 1.
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, errors.New("dist: mixture needs matching non-empty components and weights")
	}
	var total float64
	for _, w := range weights {
		if w <= 0 {
			return nil, errors.New("dist: mixture weights must be positive")
		}
		total += w
	}
	m := &Mixture{
		components: append([]Distribution(nil), components...),
		weights:    make([]float64, len(weights)),
	}
	for i, w := range weights {
		m.weights[i] = w / total
	}
	for i, c := range m.components {
		cm := c.Mean()
		if math.IsInf(cm, 1) {
			m.mean = math.Inf(1)
		} else if !math.IsInf(m.mean, 1) {
			m.mean += m.weights[i] * cm
		}
	}
	// Quantile bracket: span the components' 1e-9 and 1-1e-9 quantiles.
	m.lo, m.hi = math.Inf(1), math.Inf(-1)
	for _, c := range m.components {
		if q := c.Quantile(1e-9); q < m.lo {
			m.lo = q
		}
		if q := c.Quantile(1 - 1e-9); q > m.hi && !math.IsInf(q, 1) {
			m.hi = q
		}
	}
	if math.IsInf(m.lo, 1) {
		m.lo = 0
	}
	if math.IsInf(m.hi, -1) || m.hi <= m.lo {
		m.hi = m.lo + 1
	}
	return m, nil
}

// CDF returns the weighted component CDF.
func (m *Mixture) CDF(x float64) float64 {
	var s float64
	for i, c := range m.components {
		s += m.weights[i] * c.CDF(x)
	}
	return s
}

// Quantile inverts the mixture CDF by bisection (the CDF is monotone).
func (m *Mixture) Quantile(p float64) float64 {
	if p <= 0 {
		return m.lo
	}
	if p >= 1 {
		return m.hi
	}
	lo, hi := m.lo, m.hi
	// Expand the bracket if the requested mass lies outside it.
	for m.CDF(hi) < p && !math.IsInf(hi, 1) {
		hi = lo + 2*(hi-lo) + 1
	}
	for m.CDF(lo) > p {
		lo = hi - 2*(hi-lo) - 1
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2
}

// Sample picks a component by weight and samples it.
func (m *Mixture) Sample(r *rng.Source) float64 {
	u := r.Float64()
	var acc float64
	for i, w := range m.weights {
		acc += w
		if u < acc {
			return m.components[i].Sample(r)
		}
	}
	return m.components[len(m.components)-1].Sample(r)
}

// Mean returns the weighted component mean.
func (m *Mixture) Mean() float64 { return m.mean }
