package trunk

import (
	"sync/atomic"

	"vbrsim/internal/obs"
)

// Package-level instrumentation, following the streamblock idiom: the
// source gauge is a plain atomic updated by every Open/Close regardless of
// registration, and the fan-out histogram feeds whichever registry
// registered most recently (one registry per process in the daemon).
var (
	sourcesActive atomic.Int64
	fanoutNsHist  atomic.Pointer[obs.Histogram]
)

func observeSources(delta int) {
	sourcesActive.Add(int64(delta))
}

func observeFanout(ns int64) {
	if h := fanoutNsHist.Load(); h != nil {
		h.Observe(float64(ns))
	}
}

// RegisterMetrics exposes the engine's instruments on r:
// vbrsim_trunk_sources_active (flattened component streams held by live
// trunks) and vbrsim_trunk_fanout_ns (wall time of one Fill fan-out round:
// component fills plus the weighted reduction).
func RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("vbrsim_trunk_sources_active",
		"Flattened component streams held by live trunks.",
		func() float64 { return float64(sourcesActive.Load()) })
	fanoutNsHist.Store(r.Histogram("vbrsim_trunk_fanout_ns",
		"Wall time of one trunk fan-out round (component fills + reduction), nanoseconds.",
		[]float64{10e3, 50e3, 100e3, 250e3, 500e3, 1e6, 2.5e6, 5e6, 10e6, 50e6}))
}
