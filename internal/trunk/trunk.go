// Package trunk implements the superposition engine: N independently-seeded
// component streams — any mix of modelspec engines (truncated AR, block
// Davies-Harte, the §3.3 GOP simulator, TES) and ACF families (composite,
// FARIMA, FGN) — summed into one aggregate arrival process, the ATM/ISP
// trunk of the paper's introduction.
//
// Determinism contract: every flattened source s draws its seed as
// SourceSeed(trunkSeed, s), so the whole aggregate is reproducible from the
// trunk spec alone. Fill fans the component streams out on the par pool and
// sums their chunks in ascending source order per frame, which makes the
// output invariant to the worker count; Seek forwards to the components
// (O(1) on the block engine, seed replay elsewhere), so seek-&-resume is
// bit-identical to sequential playback. After Open, steady-state Fill
// performs no allocations: component rows live in one slab arena sized at
// open time.
package trunk

import (
	"context"
	"fmt"
	"time"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/par"
)

// SourceSeed derives the seed of flattened source ordinal s of a trunk
// keyed by trunkSeed, via the SplitMix64 finalizer over golden-ratio
// increments — the same mix trafficd uses to assign session seeds. Distinct
// ordinals decorrelate completely even for adjacent trunk seeds.
func SourceSeed(trunkSeed uint64, ordinal int) uint64 {
	z := trunkSeed + (uint64(ordinal)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// trunkChunk is the fan-out granularity of Fill: component streams fill
// slab rows of at most this many frames per round. It bounds the slab to
// sources×8 KiB while keeping the per-round par dispatch cost amortized
// over enough frames to vanish.
const trunkChunk = 1024

// Options tunes trunk construction.
type Options struct {
	// Tol is the partial-correlation truncation cutoff passed to component
	// plan builds (0 = default).
	Tol float64
	// Workers bounds the fan-out parallelism (0 = GOMAXPROCS). Any value
	// produces bit-identical frames.
	Workers int
}

// Trunk is an open superposition: the flattened, independently seeded
// component streams plus the slab arena their chunks land in. Like
// modelspec.Stream it is bound to a single goroutine; trafficd serializes
// access per session.
type Trunk struct {
	seed    uint64
	pos     int
	workers int
	mean    float64

	comps   []*modelspec.Stream
	weights []float64 // per flattened source, component order
	slab    []float64 // len(comps) rows × trunkChunk frames

	// Persistent fan-out closures: allocated once at Open so steady-state
	// fillChunk passes preexisting func values to par.For instead of
	// allocating fresh closures per chunk. The fields below are their
	// per-round parameters.
	fillCompFn func(worker, c int)
	reduceFn   func(worker, b int)
	fillOut    []float64
	fillN      int
	blockSize  int
}

// Open materializes the trunk: validates the spec, opens every flattened
// source with its derived seed (plan builds are cached and cancellable),
// and sizes the slab arena. The trunk starts at frame 0.
func Open(ctx context.Context, spec *modelspec.TrunkSpec, opt Options) (*Trunk, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.NumSources()
	t := &Trunk{
		seed:    spec.Seed,
		workers: opt.Workers,
		comps:   make([]*modelspec.Stream, 0, n),
		weights: make([]float64, 0, n),
	}
	for ci, c := range spec.Resolved() {
		for rep := 0; rep < c.Count; rep++ {
			s := c.Spec
			s.Seed = SourceSeed(spec.Seed, len(t.comps))
			st, err := s.OpenCtx(ctx, opt.Tol)
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("trunk: component %d replica %d: %w", ci, rep, err)
			}
			t.comps = append(t.comps, st)
			t.weights = append(t.weights, c.Weight)
			t.mean += c.Weight * st.MeanRate()
		}
	}
	t.slab = make([]float64, len(t.comps)*trunkChunk)
	t.fillCompFn = func(_, c int) {
		t.comps[c].Fill(t.slab[c*trunkChunk : c*trunkChunk+t.fillN])
	}
	t.reduceFn = func(_, b int) {
		lo := b * t.blockSize
		hi := lo + t.blockSize
		if hi > t.fillN {
			hi = t.fillN
		}
		seg := t.fillOut[lo:hi]
		for i := range seg {
			seg[i] = 0
		}
		for c := range t.comps {
			w := t.weights[c]
			row := t.slab[c*trunkChunk+lo : c*trunkChunk+hi]
			for i, v := range row {
				seg[i] += w * v
			}
		}
	}
	observeSources(len(t.comps))
	return t, nil
}

// Close releases every component stream (block-engine arena accounting). A
// closed trunk must not be used again.
func (t *Trunk) Close() {
	for _, st := range t.comps {
		st.Close()
	}
	observeSources(-len(t.comps))
	t.comps = nil
}

// Seed returns the trunk seed all source seeds derive from.
func (t *Trunk) Seed() uint64 { return t.seed }

// Pos returns the index of the next aggregate frame Fill will produce.
func (t *Trunk) Pos() int { return t.pos }

// NumSources returns the flattened source count.
func (t *Trunk) NumSources() int { return len(t.comps) }

// MeanRate returns the stationary mean of the aggregate in bytes per frame:
// the weighted sum of the component means — the quantity trunk service
// rates are provisioned against.
func (t *Trunk) MeanRate() float64 { return t.mean }

// Order returns the largest component plan order (0 when every component is
// plan-free).
func (t *Trunk) Order() int {
	max := 0
	for _, st := range t.comps {
		if o := st.Order(); o > max {
			max = o
		}
	}
	return max
}

// MaxACFError returns the largest measured truncation ACF error across
// components.
func (t *Trunk) MaxACFError() float64 {
	max := 0.0
	for _, st := range t.comps {
		if e := st.MaxACFError(); e > max {
			max = e
		}
	}
	return max
}

// Reseed re-keys the whole trunk under a new base seed and rewinds it to
// frame 0: every component is reseeded with its derived SourceSeed. Plans,
// LUTs, arenas and the slab are kept, so reseeding allocates nothing — the
// queue adapter re-keys one pooled trunk per replication this way.
func (t *Trunk) Reseed(base uint64) {
	t.seed = base
	t.pos = 0
	for i, st := range t.comps {
		st.Reseed(SourceSeed(base, i))
	}
}

// Next produces the next aggregate frame. It shares the Fill path, so mixed
// Next/Fill access patterns stay bit-identical.
func (t *Trunk) Next() float64 {
	var out [1]float64
	t.fillChunk(out[:])
	return out[0]
}

// Fill produces len(out) consecutive aggregate frames, fanning the
// component streams out across the par pool in trunkChunk rounds. Zero
// allocations in steady state.
func (t *Trunk) Fill(out []float64) {
	for len(out) > 0 {
		n := len(out)
		if n > trunkChunk {
			n = trunkChunk
		}
		t.fillChunk(out[:n])
		out = out[n:]
	}
}

// fillChunk advances every component by n <= trunkChunk frames into its
// slab row, then reduces the rows into out. The reduction splits the frame
// range across workers; each frame is summed over components in ascending
// source order by exactly one worker, so the result does not depend on the
// worker count.
func (t *Trunk) fillChunk(out []float64) {
	n := len(out)
	nc := len(t.comps)
	start := time.Now()
	t.fillN = n
	par.For(par.Workers(t.workers, nc), nc, t.fillCompFn)
	workers := par.Workers(t.workers, n)
	t.fillOut = out
	t.blockSize = (n + workers - 1) / workers
	blocks := (n + t.blockSize - 1) / t.blockSize
	par.For(workers, blocks, t.reduceFn)
	t.fillOut = nil
	t.pos += n
	observeFanout(time.Since(start).Nanoseconds())
}

// Seek positions the trunk so the next frame is frame pos.
func (t *Trunk) Seek(pos int) { t.SeekCtx(context.Background(), pos) }

// SeekCtx is Seek with cancellation: the component seeks fan out on the par
// pool (block components seek in O(1); replay components poll ctx). On
// error the components may sit at mixed positions, but every component
// seeks absolutely, so a later SeekCtx fully realigns the trunk.
func (t *Trunk) SeekCtx(ctx context.Context, pos int) error {
	if pos < 0 {
		pos = 0
	}
	nc := len(t.comps)
	err := par.ForCtx(ctx, par.Workers(t.workers, nc), nc, func(_, c int) error {
		return t.comps[c].SeekCtx(ctx, pos)
	})
	if err != nil {
		return err
	}
	t.pos = pos
	return nil
}
