// Queue-feed adapters: trunks as Lindley-recursion arrival processes.
//
// PathSource plays a trunk spec into the Monte-Carlo/importance-sampling
// estimators (one re-keyed aggregate path per replication), and Aggregate
// superposes arbitrary queue.PathSource components in the exact draw order
// of queue.Superposition, so examples that hand-rolled superposition can
// switch without changing a single output bit.
package trunk

import (
	"context"
	"fmt"
	"sync"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/queue"
	"vbrsim/internal/rng"
)

// PathSource adapts a trunk spec to queue.PathSourceInto: each replication
// re-keys a pooled trunk from the replication rng (Reseed allocates
// nothing) and plays the aggregate path. Safe for concurrent use by the
// estimator worker pools; the free list holds at most one trunk per
// concurrent caller.
type PathSource struct {
	spec *modelspec.TrunkSpec
	opt  Options
	mean float64

	mu   sync.Mutex
	free []*Trunk
}

// NewPathSource validates the spec and opens one trunk eagerly — warming
// every component plan through the shared cache so later pool misses
// cannot fail — then parks it on the free list.
func NewPathSource(ctx context.Context, spec *modelspec.TrunkSpec, opt Options) (*PathSource, error) {
	t, err := Open(ctx, spec, opt)
	if err != nil {
		return nil, err
	}
	return &PathSource{spec: spec, opt: opt, mean: t.MeanRate(), free: []*Trunk{t}}, nil
}

// MeanRate returns the aggregate stationary mean (bytes per frame).
func (s *PathSource) MeanRate() float64 { return s.mean }

// Close releases every pooled trunk. Concurrent ArrivalPath calls must have
// drained first.
func (s *PathSource) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.free {
		t.Close()
	}
	s.free = nil
}

func (s *PathSource) get() *Trunk {
	s.mu.Lock()
	if n := len(s.free); n > 0 {
		t := s.free[n-1]
		s.free = s.free[:n-1]
		s.mu.Unlock()
		return t
	}
	s.mu.Unlock()
	t, err := Open(context.Background(), s.spec, s.opt)
	if err != nil {
		// Plans were warmed by NewPathSource; a failure here means the spec
		// mutated after construction, which is a caller bug.
		panic(fmt.Sprintf("trunk: pooled reopen failed: %v", err))
	}
	return t
}

func (s *PathSource) put(t *Trunk) {
	s.mu.Lock()
	s.free = append(s.free, t)
	s.mu.Unlock()
}

// ArrivalPath draws one aggregate path of k frames.
func (s *PathSource) ArrivalPath(r *rng.Source, k int) []float64 {
	buf := make([]float64, k)
	s.ArrivalPathInto(r, buf)
	return buf
}

// ArrivalPathInto re-keys a pooled trunk from r and fills buf with one
// aggregate path. Zero allocations once the free list is warm.
func (s *PathSource) ArrivalPathInto(r *rng.Source, buf []float64) {
	t := s.get()
	t.Reseed(r.Uint64())
	t.Fill(buf)
	s.put(t)
}

// Component is one weighted group in a path-source Aggregate.
type Component struct {
	// Source draws the group's per-replication paths.
	Source queue.PathSource
	// Weight scales the group's contribution; 0 means 1.
	Weight float64
	// Count replicates the group; 0 means 1. Each replica draws from its
	// own split rng, exactly as queue.Superposition replicates its base.
	Count int
}

// Aggregate superposes heterogeneous PathSource components slot-wise. For
// each component in order and each replica, it draws one path from
// r.Split() — the identical draw sequence of queue.Superposition{Base, N}
// when the aggregate is a single weight-1 component, so ports from
// hand-rolled superposition reproduce their outputs bit for bit. Aggregate
// implements queue.PathSourceInto itself and so drops into every estimator.
type Aggregate struct {
	Components []Component
}

// ArrivalPath draws and sums the component paths.
func (a Aggregate) ArrivalPath(r *rng.Source, k int) []float64 {
	buf := make([]float64, k)
	a.ArrivalPathInto(r, buf)
	return buf
}

// ArrivalPathInto sums the component paths into buf, routing sources that
// support buffer reuse through a pooled scratch slice (zero allocations per
// replication in steady state, however many sources the trunk carries).
func (a Aggregate) ArrivalPathInto(r *rng.Source, buf []float64) {
	if len(a.Components) == 0 {
		panic("trunk: Aggregate with no components")
	}
	for j := range buf {
		buf[j] = 0
	}
	k := len(buf)
	scratch := scratchSlice(k)
	defer releaseScratch(scratch)
	for _, c := range a.Components {
		w := c.Weight
		if w == 0 {
			w = 1
		}
		count := c.Count
		if count == 0 {
			count = 1
		}
		into, reuse := c.Source.(queue.PathSourceInto)
		for rep := 0; rep < count; rep++ {
			var path []float64
			if reuse {
				into.ArrivalPathInto(r.Split(), *scratch)
				path = *scratch
			} else {
				path = c.Source.ArrivalPath(r.Split(), k)
			}
			if w == 1 {
				for j, v := range path {
					buf[j] += v
				}
			} else {
				for j, v := range path {
					buf[j] += w * v
				}
			}
		}
	}
}

// scratchPool recycles per-replication path buffers across goroutines.
var scratchPool sync.Pool

func scratchSlice(k int) *[]float64 {
	if p, ok := scratchPool.Get().(*[]float64); ok && cap(*p) >= k {
		*p = (*p)[:k]
		return p
	}
	s := make([]float64, k)
	return &s
}

func releaseScratch(p *[]float64) { scratchPool.Put(p) }
