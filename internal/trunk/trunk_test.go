package trunk

import (
	"context"
	"math"
	"testing"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/queue"
	"vbrsim/internal/rng"
	"vbrsim/internal/tes"
)

// mixedSpec is a heterogeneous trunk exercising every engine and ACF
// family: block and truncated Gaussian components, FARIMA, the GOP
// simulator, and TES.
func mixedSpec(seed uint64) *modelspec.TrunkSpec {
	paper := modelspec.Paper()
	return &modelspec.TrunkSpec{
		Seed: seed,
		Components: []modelspec.TrunkComponent{
			{Count: 2, Spec: modelspec.Spec{ACF: paper.ACF, Engine: modelspec.EngineBlock}},
			{Weight: 0.5, Spec: modelspec.Spec{ACF: modelspec.ACFSpec{Kind: modelspec.ACFFarima, D: 0.4}}},
			{Spec: modelspec.Spec{Engine: modelspec.EngineGOP, GOP: &modelspec.GOPSpec{}}},
			{Weight: 2, Spec: modelspec.Spec{Engine: modelspec.EngineTES, TES: &modelspec.TESSpec{Alpha: 0.3}}},
		},
		Marginal: &modelspec.MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
	}
}

func openTrunk(t *testing.T, spec *modelspec.TrunkSpec, opt Options) *Trunk {
	t.Helper()
	tr, err := Open(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestSourceSeedDerivation(t *testing.T) {
	// Distinct ordinals and distinct trunk seeds must give distinct source
	// seeds; the derivation must match the documented SplitMix64 form.
	seen := map[uint64]bool{}
	for _, base := range []uint64{0, 1, 42, ^uint64(0)} {
		for o := 0; o < 64; o++ {
			s := SourceSeed(base, o)
			if seen[s] {
				t.Fatalf("seed collision at base=%d ordinal=%d", base, o)
			}
			seen[s] = true
		}
	}
	if SourceSeed(7, 3) == SourceSeed(7, 4) || SourceSeed(7, 3) == SourceSeed(8, 3) {
		t.Error("derived seeds collide on adjacent inputs")
	}
}

func TestTrunkIsSumOfComponents(t *testing.T) {
	// A trunk must equal the weighted sum of its component streams opened
	// standalone with the derived seeds — the definition of superposition.
	spec := mixedSpec(9)
	tr := openTrunk(t, spec, Options{})
	const n = 3000 // spans multiple fan-out chunks
	got := make([]float64, n)
	tr.Fill(got)

	want := make([]float64, n)
	buf := make([]float64, n)
	ordinal := 0
	for _, c := range spec.Resolved() {
		for rep := 0; rep < c.Count; rep++ {
			s := c.Spec
			s.Seed = SourceSeed(spec.Seed, ordinal)
			frames, err := s.Frames(context.Background(), 0, n, 0)
			if err != nil {
				t.Fatal(err)
			}
			copy(buf, frames)
			for j := range want {
				want[j] += c.Weight * buf[j]
			}
			ordinal++
		}
	}
	if tr.NumSources() != ordinal {
		t.Fatalf("NumSources = %d, want %d", tr.NumSources(), ordinal)
	}
	if !bitsEqual(got, want) {
		t.Fatal("trunk aggregate != weighted sum of standalone component streams")
	}
}

func TestTrunkWorkerCountInvariance(t *testing.T) {
	// Frames must be bit-identical at any worker setting: the fan-out only
	// overlaps CPU time, never changes summation order.
	ref := openTrunk(t, mixedSpec(4), Options{Workers: 1})
	const n = 4096
	want := make([]float64, n)
	ref.Fill(want)
	for _, workers := range []int{2, 4, 9} {
		tr := openTrunk(t, mixedSpec(4), Options{Workers: workers})
		got := make([]float64, n)
		tr.Fill(got)
		if !bitsEqual(got, want) {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
	}
}

func TestTrunkSeekResumeBitIdentical(t *testing.T) {
	spec := mixedSpec(12)
	ref := openTrunk(t, spec, Options{})
	const n = 2600
	want := make([]float64, n)
	ref.Fill(want)

	tr := openTrunk(t, spec, Options{Workers: 4})
	buf := make([]float64, 128)
	// Forward, backward, rewind-to-zero, and mid-chunk seek positions.
	for _, from := range []int{2000, 500, 0, 1337, 1100} {
		if err := tr.SeekCtx(context.Background(), from); err != nil {
			t.Fatal(err)
		}
		if tr.Pos() != from {
			t.Fatalf("Pos after seek = %d, want %d", tr.Pos(), from)
		}
		tr.Fill(buf)
		if !bitsEqual(buf, want[from:from+len(buf)]) {
			t.Fatalf("seek to %d diverged from sequential playback", from)
		}
	}
}

func TestTrunkNextMatchesFill(t *testing.T) {
	spec := mixedSpec(3)
	a := openTrunk(t, spec, Options{})
	b := openTrunk(t, spec, Options{})
	filled := make([]float64, 300)
	a.Fill(filled)
	for i := range filled {
		if v := b.Next(); math.Float64bits(v) != math.Float64bits(filled[i]) {
			t.Fatalf("Next diverged from Fill at frame %d", i)
		}
	}
	if b.Pos() != 300 {
		t.Errorf("Pos after 300 Next = %d", b.Pos())
	}
}

func TestTrunkReseedReplays(t *testing.T) {
	tr := openTrunk(t, mixedSpec(21), Options{})
	first := make([]float64, 1500)
	tr.Fill(first)
	tr.Reseed(21)
	if tr.Pos() != 0 {
		t.Fatalf("Pos after Reseed = %d", tr.Pos())
	}
	again := make([]float64, 1500)
	tr.Fill(again)
	if !bitsEqual(first, again) {
		t.Fatal("Reseed with the trunk seed did not replay")
	}
	tr.Reseed(22)
	other := make([]float64, 1500)
	tr.Fill(other)
	if bitsEqual(first, other) {
		t.Fatal("different trunk seed replayed the same aggregate")
	}
}

func TestTrunkMeanRate(t *testing.T) {
	spec := mixedSpec(1)
	tr := openTrunk(t, spec, Options{})
	var want float64
	ordinal := 0
	for _, c := range spec.Resolved() {
		for rep := 0; rep < c.Count; rep++ {
			s := c.Spec
			s.Seed = SourceSeed(spec.Seed, ordinal)
			st, err := s.OpenCtx(context.Background(), 0)
			if err != nil {
				t.Fatal(err)
			}
			want += c.Weight * st.MeanRate()
			st.Close()
			ordinal++
		}
	}
	if math.Abs(tr.MeanRate()-want) > 1e-9*want {
		t.Errorf("MeanRate = %v, want %v", tr.MeanRate(), want)
	}
	if tr.MeanRate() <= 0 {
		t.Error("non-positive aggregate mean")
	}
}

func TestTrunkFillZeroAllocSteadyState(t *testing.T) {
	spec := &modelspec.TrunkSpec{
		Seed: 8,
		Components: []modelspec.TrunkComponent{
			{Count: 8, Spec: modelspec.Spec{ACF: modelspec.Paper().ACF,
				Marginal: modelspec.Paper().Marginal}},
		},
	}
	tr := openTrunk(t, spec, Options{Workers: 1})
	out := make([]float64, 2048)
	tr.Fill(out) // warm
	allocs := testing.AllocsPerRun(5, func() { tr.Fill(out) })
	if allocs != 0 {
		t.Errorf("steady-state Fill allocates %v times per call", allocs)
	}
}

func TestTrunkOpenErrors(t *testing.T) {
	// Invalid specs must fail at Open, and partially-opened components must
	// be released (covered by the arena gauge staying balanced under -race).
	bad := &modelspec.TrunkSpec{}
	if _, err := Open(context.Background(), bad, Options{}); err == nil {
		t.Error("zero-component trunk opened")
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	big := &modelspec.TrunkSpec{
		Components: []modelspec.TrunkComponent{
			{Count: 2, Spec: modelspec.Spec{ACF: modelspec.ACFSpec{Kind: modelspec.ACFFGN, H: 0.72}}},
		},
	}
	if _, err := Open(canceled, big, Options{}); err == nil {
		// The plan may already be cached, in which case Open succeeds;
		// only a non-cache build observes ctx. Either outcome is fine, but
		// a success must yield a usable trunk.
		tr, err := Open(context.Background(), big, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr.Close()
	}
}

func TestPathSourceDeterministicAndPooled(t *testing.T) {
	spec := mixedSpec(6)
	src, err := NewPathSource(context.Background(), spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	a := make([]float64, 512)
	b := make([]float64, 512)
	src.ArrivalPathInto(rng.New(77), a)
	src.ArrivalPathInto(rng.New(77), b)
	if !bitsEqual(a, b) {
		t.Fatal("same replication rng produced different aggregate paths")
	}
	src.ArrivalPathInto(rng.New(78), b)
	if bitsEqual(a, b) {
		t.Fatal("different replication rngs produced identical paths")
	}
	// The path must equal a trunk re-keyed the same way.
	want := make([]float64, 512)
	tr := openTrunk(t, spec, Options{Workers: 1})
	tr.Reseed(rng.New(77).Uint64())
	tr.Fill(want)
	if !bitsEqual(a, want) {
		t.Fatal("PathSource path != re-keyed trunk fill")
	}
	if src.MeanRate() != tr.MeanRate() {
		t.Errorf("PathSource MeanRate %v != trunk %v", src.MeanRate(), tr.MeanRate())
	}
	// Steady-state replications must not allocate (pool hit + Reseed).
	src.ArrivalPathInto(rng.New(1), a)
	r := rng.New(2)
	allocs := testing.AllocsPerRun(5, func() { src.ArrivalPathInto(r, a) })
	if allocs != 0 {
		t.Errorf("steady-state ArrivalPathInto allocates %v times per call", allocs)
	}
}

func TestPathSourceFeedsQueueEstimator(t *testing.T) {
	// End-to-end: a trunk drives the Lindley recursion through the stock
	// Monte-Carlo estimator and yields a sane overflow probability.
	spec := &modelspec.TrunkSpec{
		Seed: 5,
		Components: []modelspec.TrunkComponent{
			{Count: 4, Spec: modelspec.Spec{ACF: modelspec.Paper().ACF,
				Marginal: modelspec.Paper().Marginal}},
		},
	}
	src, err := NewPathSource(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	mu, err := queue.UtilizationService(src.MeanRate(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	est, err := queue.EstimateOverflow(src, mu, 2*src.MeanRate(), 256,
		queue.MCOptions{Replications: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.P < 0 || est.P > 1 || math.IsNaN(est.P) {
		t.Fatalf("overflow estimate %v out of range", est.P)
	}
}

func TestAggregateMatchesQueueSuperposition(t *testing.T) {
	// The homogeneous single-component Aggregate must reproduce
	// queue.Superposition draw for draw — the guarantee the example ports
	// rely on.
	target, err := (&modelspec.MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4}).Distribution()
	if err != nil {
		t.Fatal(err)
	}
	base := tes.Source{Cfg: tes.Config{Alpha: 0.4, Zeta: 0.5, Marginal: target}}
	const n = 8
	want := queue.Superposition{Base: base, N: n}.ArrivalPath(rng.New(33), 700)
	got := Aggregate{Components: []Component{{Source: base, Count: n}}}.ArrivalPath(rng.New(33), 700)
	if !bitsEqual(got, want) {
		t.Fatal("Aggregate diverged from queue.Superposition")
	}
	// Weighted heterogeneous aggregates must equal the hand-rolled sum.
	r1 := rng.New(9)
	manual := make([]float64, 300)
	p1 := base.ArrivalPath(r1.Split(), 300)
	p2 := base.ArrivalPath(r1.Split(), 300)
	for j := range manual {
		manual[j] = p1[j] + 0.25*p2[j]
	}
	agg := Aggregate{Components: []Component{
		{Source: base},
		{Source: base, Weight: 0.25},
	}}.ArrivalPath(rng.New(9), 300)
	if !bitsEqual(agg, manual) {
		t.Fatal("weighted Aggregate diverged from the hand-rolled sum")
	}
}
