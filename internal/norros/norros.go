// Package norros implements the fractional-Brownian storage model of
// I. Norros, "A Storage Model with Self-Similar Input" (Queueing Systems
// 16, 1994) — the paper's reference [23] and the standard analytic
// benchmark for queues fed by self-similar traffic.
//
// Arrivals are modeled as fractional Brownian traffic
//
//	A(t) = m t + sqrt(v) Z(t),
//
// where Z is fractional Brownian motion with Hurst parameter H and v is the
// variance coefficient (Var A(t) = v t^{2H}). For a server of rate C > m,
// the stationary queue satisfies the Weibull-tail approximation obtained by
// optimizing the single most likely overflow epoch:
//
//	P(Q > b) ~ Phi-bar( (C-m)^H b^{1-H} / (kappa(H) sqrt(v)) ),
//	kappa(H) = H^H (1-H)^{1-H},
//
// with the cruder exponential form exp(-(C-m)^{2H} b^{2-2H} / (2 kappa^2 v)).
// The decisive qualitative fact — overflow decays only as exp(-c b^{2-2H}),
// not exponentially — is exactly what the paper's Fig. 17 demonstrates by
// simulation.
package norros

import (
	"errors"
	"math"

	"vbrsim/internal/acf"
	"vbrsim/internal/dist"
)

// Params describes fractional Brownian traffic.
type Params struct {
	// MeanRate is m, the mean arrival volume per slot.
	MeanRate float64
	// VarCoeff is v in Var A(t) = v t^{2H}.
	VarCoeff float64
	// H is the Hurst parameter in (1/2, 1).
	H float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.MeanRate <= 0 {
		return errors.New("norros: non-positive mean rate")
	}
	if p.VarCoeff <= 0 {
		return errors.New("norros: non-positive variance coefficient")
	}
	if p.H <= 0.5 || p.H >= 1 {
		return errors.New("norros: H must lie in (1/2, 1)")
	}
	return nil
}

// Kappa returns kappa(H) = H^H (1-H)^{1-H}.
func Kappa(h float64) float64 {
	return math.Pow(h, h) * math.Pow(1-h, 1-h)
}

// OverflowProbability returns the Norros approximation of P(Q > b) for a
// server of rate service > MeanRate: the Gaussian-tail (Phi-bar) form and
// the cruder pure-exponential form.
func (p Params) OverflowProbability(service, b float64) (phiForm, expForm float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	if service <= p.MeanRate {
		return 0, 0, errors.New("norros: service rate must exceed mean rate")
	}
	if b <= 0 {
		return 1, 1, nil
	}
	surplus := service - p.MeanRate
	x := math.Pow(surplus, p.H) * math.Pow(b, 1-p.H) / (Kappa(p.H) * math.Sqrt(p.VarCoeff))
	phiForm = 0.5 * math.Erfc(x/math.Sqrt2)
	expForm = math.Exp(-x * x / 2)
	return phiForm, expForm, nil
}

// MostLikelyEpoch returns t* = H b / ((C-m)(1-H)), the time scale over
// which an overflow of level b most probably builds up. It quantifies why
// LRD losses are dominated by long, slow surges rather than instantaneous
// bursts.
func (p Params) MostLikelyEpoch(service, b float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if service <= p.MeanRate {
		return 0, errors.New("norros: service rate must exceed mean rate")
	}
	return p.H * b / ((service - p.MeanRate) * (1 - p.H)), nil
}

// EffectiveBandwidth returns the minimal service rate C such that
// P(Q > b) <= eps under the exponential-form approximation — Norros's
// closed-form dimensioning rule:
//
//	C = m + (kappa sqrt(-2 ln eps) sqrt(v))^{1/H} * b^{-(1-H)/H}.
func (p Params) EffectiveBandwidth(b, eps float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if b <= 0 || eps <= 0 || eps >= 1 {
		return 0, errors.New("norros: need b > 0 and eps in (0,1)")
	}
	x := Kappa(p.H) * math.Sqrt(-2*math.Log(eps)) * math.Sqrt(p.VarCoeff)
	return p.MeanRate + math.Pow(x, 1/p.H)*math.Pow(b, -(1-p.H)/p.H), nil
}

// FromComposite derives fractional-Brownian parameters from a fitted
// marginal and composite ACF: the mean rate is the marginal mean, H comes
// from the LRD exponent (H = 1 - beta/2), and the variance coefficient from
// the asymptotic aggregate variance of a process with autocovariance
// sigma^2 L k^{-beta}:
//
//	Var(sum_{i<=t} Y_i) ~ sigma^2 L t^{2H} / (H (2H-1)),
//
// so v = sigma^2 L / (H (2H-1)).
func FromComposite(marginal dist.Distribution, variance float64, comp acf.Composite) (Params, error) {
	if variance <= 0 {
		return Params{}, errors.New("norros: non-positive marginal variance")
	}
	h := 1 - comp.Beta/2
	if h <= 0.5 || h >= 1 {
		return Params{}, errors.New("norros: composite beta outside the LRD range")
	}
	v := variance * comp.L / (h * (2*h - 1))
	p := Params{MeanRate: marginal.Mean(), VarCoeff: v, H: h}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}
