package norros

import (
	"math"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/dist"
)

func TestValidate(t *testing.T) {
	good := Params{MeanRate: 100, VarCoeff: 50, H: 0.8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{MeanRate: 0, VarCoeff: 1, H: 0.8},
		{MeanRate: 1, VarCoeff: 0, H: 0.8},
		{MeanRate: 1, VarCoeff: 1, H: 0.5},
		{MeanRate: 1, VarCoeff: 1, H: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestKappa(t *testing.T) {
	// kappa(1/2) = 1/2... actually (1/2)^(1/2)*(1/2)^(1/2) = 1/2.
	if got := Kappa(0.5); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Kappa(0.5) = %v, want 0.5", got)
	}
	// Symmetric: kappa(h) == kappa(1-h).
	if math.Abs(Kappa(0.7)-Kappa(0.3)) > 1e-15 {
		t.Error("kappa not symmetric")
	}
}

func TestOverflowProbabilityShape(t *testing.T) {
	p := Params{MeanRate: 100, VarCoeff: 2000, H: 0.85}
	service := 150.0
	prevPhi := 1.1
	for _, b := range []float64{10, 50, 200, 1000, 5000} {
		phi, expF, err := p.OverflowProbability(service, b)
		if err != nil {
			t.Fatal(err)
		}
		if phi <= 0 || phi > 1 || expF <= 0 || expF > 1 {
			t.Fatalf("b=%v: probabilities out of range: %v %v", b, phi, expF)
		}
		if phi >= prevPhi {
			t.Fatalf("overflow probability not decreasing at b=%v", b)
		}
		if expF < phi {
			t.Fatalf("exp form %v below phi form %v", expF, phi)
		}
		prevPhi = phi
	}
}

func TestWeibullTailExponent(t *testing.T) {
	// log P should scale like b^{2-2H}: doubling b multiplies -log P by
	// 2^{2-2H}.
	p := Params{MeanRate: 100, VarCoeff: 2000, H: 0.8}
	service := 140.0
	_, e1, err := p.OverflowProbability(service, 1000)
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := p.OverflowProbability(service, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := math.Log(e2) / math.Log(e1)
	want := math.Pow(2, 2-2*p.H)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("tail exponent ratio = %v, want %v", ratio, want)
	}
}

func TestOverflowValidation(t *testing.T) {
	p := Params{MeanRate: 100, VarCoeff: 2000, H: 0.8}
	if _, _, err := p.OverflowProbability(90, 100); err == nil {
		t.Error("overloaded server accepted")
	}
	if phi, _, err := p.OverflowProbability(150, 0); err != nil || phi != 1 {
		t.Errorf("b=0 should give 1: %v %v", phi, err)
	}
}

func TestMostLikelyEpochGrowsWithBuffer(t *testing.T) {
	p := Params{MeanRate: 100, VarCoeff: 2000, H: 0.8}
	t1, err := p.MostLikelyEpoch(150, 100)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.MostLikelyEpoch(150, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if t2 != 10*t1 {
		t.Errorf("epoch not linear in b: %v vs %v", t1, t2)
	}
	// Known closed form: t* = H b / ((C-m)(1-H)).
	want := 0.8 * 100 / (50 * 0.2)
	if math.Abs(t1-want) > 1e-12 {
		t.Errorf("t* = %v, want %v", t1, want)
	}
}

func TestEffectiveBandwidthRoundTrip(t *testing.T) {
	p := Params{MeanRate: 100, VarCoeff: 2000, H: 0.8}
	b, eps := 500.0, 1e-6
	c, err := p.EffectiveBandwidth(b, eps)
	if err != nil {
		t.Fatal(err)
	}
	if c <= p.MeanRate {
		t.Fatalf("effective bandwidth %v below mean rate", c)
	}
	// Plugging C back must achieve exactly eps under the exp form.
	_, expF, err := p.OverflowProbability(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Log(expF)-math.Log(eps)) > 1e-9 {
		t.Errorf("round trip: P = %v, want %v", expF, eps)
	}
	if _, err := p.EffectiveBandwidth(-1, eps); err == nil {
		t.Error("negative buffer accepted")
	}
	if _, err := p.EffectiveBandwidth(b, 2); err == nil {
		t.Error("eps > 1 accepted")
	}
}

func TestEffectiveBandwidthMonotonic(t *testing.T) {
	p := Params{MeanRate: 100, VarCoeff: 2000, H: 0.85}
	cSmall, _ := p.EffectiveBandwidth(100, 1e-6)
	cBig, _ := p.EffectiveBandwidth(1000, 1e-6)
	if cBig >= cSmall {
		t.Errorf("larger buffer should need less bandwidth: %v vs %v", cSmall, cBig)
	}
	cLoose, _ := p.EffectiveBandwidth(100, 1e-2)
	if cLoose >= cSmall {
		t.Errorf("looser target should need less bandwidth: %v vs %v", cSmall, cLoose)
	}
}

func TestFromComposite(t *testing.T) {
	marginal, err := dist.NewEmpirical([]float64{100, 200, 300, 400})
	if err != nil {
		t.Fatal(err)
	}
	comp := acf.PaperComposite()
	p, err := FromComposite(marginal, 5000, comp)
	if err != nil {
		t.Fatal(err)
	}
	if p.H != 0.9 {
		t.Errorf("H = %v, want 0.9", p.H)
	}
	if p.MeanRate != 250 {
		t.Errorf("mean = %v, want 250", p.MeanRate)
	}
	wantV := 5000 * comp.L / (0.9 * 0.8)
	if math.Abs(p.VarCoeff-wantV) > 1e-9 {
		t.Errorf("v = %v, want %v", p.VarCoeff, wantV)
	}
	// A composite at the SRD boundary (beta = 1, H = 1/2) must be rejected.
	srd := comp
	srd.Beta = 1.0
	if _, err := FromComposite(marginal, 5000, srd); err == nil {
		t.Error("beta = 1 accepted")
	}
	if _, err := FromComposite(marginal, 0, comp); err == nil {
		t.Error("zero variance accepted")
	}
}
