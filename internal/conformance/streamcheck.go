package conformance

import (
	"context"
	"math"
)

// streamBatchCheck gates the overlapped-block streaming engine against the
// one-shot Davies-Harte batch it is built from — the exactness contract of
// the tentpole: a stream assembled from stitched fixed-size circulant
// blocks must be statistically indistinguishable from a dedicated n-length
// circulant draw of the same model. The pairwise gates mirror
// cross-backend-equivalence (mean, variance, worst per-lag ACF gap beyond
// the combined 3-sigma band) but run at a path length several times the
// conformance engine's block size, so every path crosses block boundaries
// and the stitch correction is squarely inside the measured window.
//
// The second half of the check is the LRD-tail contrast from the issue:
// past the AR order p the truncated-AR serving path's *implied* ACF decays
// quasi-exponentially while the composite target keeps its power-law tail —
// an analytic, deterministic error computable from the Durbin-Levinson row
// (hosking.Truncated.ImpliedACF). The block stream has no such decay: its
// within-block ACF is the exact circulant embedding. The gates pin both
// sides of the contrast: the truncation's analytic tail error must be
// *large* (if it weren't, the block engine would be pointless — and a
// silently shrunken window would hide regressions), while the block
// stream's measured tail deviation beyond the sampling band must stay at
// noise level, an order of magnitude below it.
type streamBatchCheck struct{}

func (streamBatchCheck) Name() string   { return "stream-vs-batch" }
func (streamBatchCheck) Family() string { return "equivalence" }

func (c streamBatchCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	// The tail window must reach past the AR order (361 for the paper
	// model) to see the truncation decay, and the path length must cover
	// a few conformance-engine blocks (block size 2048 - 361 = 1687) so
	// boundary stitching is exercised at every gated lag.
	n, reps, maxLag := 4096, 48, 720
	if cfg.Full {
		n, reps, maxLag = 8192, 64, 900
	}
	comp, _, _, err := paperModel()
	if err != nil {
		return res.fail(err)
	}

	bks := coreBackends()
	batch, stream := bks[2], bks[3] // daviesharte, streamblock
	// Distinct seed blocks: agreement must come from the law, not draws.
	bst, err := measureBackend(ctx, batch, comp, nil, 0, n, reps, maxLag, cfg.Seed+70, cfg.Workers)
	if err != nil {
		return res.fail(err)
	}
	sst, err := measureBackend(ctx, stream, comp, nil, 0, n, reps, maxLag, cfg.Seed+71, cfg.Workers)
	if err != nil {
		return res.fail(err)
	}
	meanBand := 4*math.Sqrt(bst.meanSE*bst.meanSE+sst.meanSE*sst.meanSE) + 0.05
	res.gate("stream_vs_batch_mean_diff", math.Abs(bst.mean-sst.mean), "<=", meanBand)
	varBand := 4*math.Sqrt(bst.varSE*bst.varSE+sst.varSE*sst.varSE) + 0.05
	res.gate("stream_vs_batch_variance_diff", math.Abs(bst.variance-sst.variance), "<=", varBand)
	var excess float64
	for k := 1; k <= maxLag; k++ {
		se := math.Sqrt(bst.acfSE[k]*bst.acfSE[k] + sst.acfSE[k]*sst.acfSE[k])
		e := math.Abs(bst.acfMean[k]-sst.acfMean[k]) - 3*se
		if e > excess || math.IsNaN(e) {
			excess = e
		}
	}
	res.gate("stream_vs_batch_acf_excess_beyond_band", excess, "<=", 0.05)

	// LRD-tail contrast. The analytic side needs no sampling at all: the
	// truncated AR's implied ACF is a deterministic recursion off the
	// frozen Durbin-Levinson row, and its gap to the composite target IS
	// the approximation the block engine removes.
	trunc, err := truncatedFor(ctx, comp)
	if err != nil {
		return res.fail(err)
	}
	implied := trunc.ImpliedACF(maxLag + 1)
	order := trunc.Order()
	var truncTailErr, streamTailExcess float64
	for k := order + 1; k <= maxLag; k++ {
		if d := math.Abs(implied[k] - comp.At(k)); d > truncTailErr {
			truncTailErr = d
		}
		e := math.Abs(sst.acfMean[k]-comp.At(k)) - 3*sst.acfSE[k]
		if e > streamTailExcess || math.IsNaN(e) {
			streamTailExcess = e
		}
	}
	// Calibration at the default seed: truncTailErr ~ 0.10 over lags
	// 362..720 (the power-law tail the AR(361) recursion cannot carry),
	// streamTailExcess 0.000. The >= gate keeps the contrast honest; the
	// <= gate is the actual conformance bound on the block stream.
	res.gate("truncated_implied_tail_err", truncTailErr, ">=", 0.05)
	res.gate("stream_tail_excess_beyond_band", streamTailExcess, "<=", 0.02)
	res.note("LRD tail over lags %d..%d: truncated-AR analytic error %.4f, block-stream measured excess %.4f",
		order+1, maxLag, truncTailErr, streamTailExcess)
	res.note("stream paths cross block boundaries every %d frames (engine total %d, order %d)",
		streamBlockTotal-order, streamBlockTotal, order)
	return res
}
