package conformance

import (
	"context"
	"math"

	"vbrsim/internal/core"
	"vbrsim/internal/impsample"
	"vbrsim/internal/queue"
)

// queueTailCheck cross-validates the importance-sampling overflow
// estimator against brute-force Monte Carlo (the paper's Fig. 9 agreement,
// run as a standing gate instead of a one-off experiment). The operating
// point is chosen so plain MC is still feasible — an overflow probability
// around 1e-2 where a few thousand replications give a tight interval —
// and the IS estimate (twisted background, exact likelihood reweighting,
// eqs. 42-48) must land inside the combined confidence interval. A wrong
// likelihood ratio, twist application, or Lindley recursion biases IS by
// whole multiples, far outside the band.
type queueTailCheck struct{}

func (queueTailCheck) Name() string   { return "queue-tail-is-vs-mc" }
func (queueTailCheck) Family() string { return "queue" }

// Queue operating point: utilization, normalized buffer (in mean frame
// sizes, the paper's x-axis unit), horizon, and the background twist m*
// (between the paper's 2.4-at-0.4 and 0.8-at-0.8 valley settings).
const (
	queueUtil    = 0.7
	queueBufNorm = 10.0
	queueTwist   = 1.2
)

func (c queueTailCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	horizon, mcReps, isReps := 256, 4000, 1000
	if cfg.Full {
		horizon, mcReps, isReps = 512, 20000, 2000
	}
	comp, tr, target, err := paperModel()
	if err != nil {
		return res.fail(err)
	}
	trunc, err := truncatedFor(ctx, comp)
	if err != nil {
		return res.fail(err)
	}
	meanRate := target.Mean()
	service, err := queue.UtilizationService(meanRate, queueUtil)
	if err != nil {
		return res.fail(err)
	}
	buffer := queueBufNorm * meanRate

	// The MC side runs the serving fast path as production would: truncated
	// AR background plus the table-based transform (exercising the LUT's
	// measured error bound under a statistical gate, against an IS side that
	// evaluates the transform exactly).
	lut, err := tr.NewDefaultLUT()
	if err != nil {
		return res.fail(err)
	}
	src := core.ArrivalSource{Fast: trunc, Transform: tr, LUT: lut}
	mc, err := queue.EstimateOverflowCtx(ctx, src, service, buffer, horizon, queue.MCOptions{
		Replications: mcReps,
		Workers:      cfg.Workers,
		Seed:         cfg.Seed + 40,
	})
	if err != nil {
		return res.fail(err)
	}
	is, err := impsample.EstimateCtx(ctx, impsample.Config{
		FastPlan:     trunc,
		Transform:    tr,
		Service:      service,
		Buffer:       buffer,
		Horizon:      horizon,
		Twist:        queueTwist,
		Replications: isReps,
		Workers:      cfg.Workers,
		Seed:         cfg.Seed + 41,
	})
	if err != nil {
		return res.fail(err)
	}

	// Feasibility first: both estimators must actually observe the event,
	// otherwise the agreement gate below is vacuous.
	res.gate("mc_hits", float64(mc.Hits), ">=", 30)
	res.gate("is_hits", float64(is.Hits), ">=", 30)

	// Agreement: the estimates must fall inside each other's combined
	// 4-sigma interval, and stay within a factor of two (a gross-bias
	// backstop in case both standard errors collapse).
	combinedSE := math.Sqrt(is.StdErr*is.StdErr + mc.StdErr*mc.StdErr)
	res.gate("abs_diff", math.Abs(is.P-mc.P), "<=", 4*combinedSE)
	ratio := math.NaN()
	if mc.P > 0 {
		ratio = is.P / mc.P
	}
	res.gate("is_over_mc_ratio", ratio, ">=", 0.5)
	res.gate("is_over_mc_ratio", ratio, "<=", 2.0)
	res.note("P(Q_%d > %.0f·mean) at util %.1f: MC %.4g ± %.2g (%d/%d hits), IS %.4g ± %.2g (twist %.1f, %.0fx variance reduction)",
		horizon, queueBufNorm, queueUtil, mc.P, mc.StdErr, mc.Hits, mc.Replications,
		is.P, is.StdErr, queueTwist, impsample.VarianceReduction(is))
	return res
}
