package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"vbrsim/internal/acf"
	"vbrsim/internal/rng"
)

func TestSuiteMetadata(t *testing.T) {
	checks := Suite()
	if len(checks) < 5 {
		t.Fatalf("suite has %d checks, want at least the five families", len(checks))
	}
	seen := map[string]bool{}
	families := map[string]bool{}
	for _, c := range checks {
		if c.Name() == "" || c.Family() == "" {
			t.Fatalf("check %T has empty name or family", c)
		}
		if seen[c.Name()] {
			t.Fatalf("duplicate check name %q", c.Name())
		}
		seen[c.Name()] = true
		families[c.Family()] = true
	}
	for _, want := range []string{"marginal", "acf", "hurst", "equivalence", "queue"} {
		if !families[want] {
			t.Errorf("suite missing family %q", want)
		}
	}
}

func TestGateNaNAlwaysFails(t *testing.T) {
	var r Result
	r.Passed = true
	if r.gate("nan_le", math.NaN(), "<=", 1) {
		t.Error("NaN passed a <= gate")
	}
	if r.gate("nan_ge", math.NaN(), ">=", 0) {
		t.Error("NaN passed a >= gate")
	}
	if r.Passed {
		t.Error("result still passed after NaN gates")
	}
}

// TestQuickSuitePassesAndIsDeterministic runs the real quick suite twice and
// requires (a) every check passes on main and (b) the two reports are
// metric-for-metric identical — the suite's determinism contract.
func TestQuickSuitePassesAndIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite run skipped in -short mode (CI runs cmd/conformance directly)")
	}
	ctx := context.Background()
	cfg := Config{Seed: DefaultSeed}
	first := RunSuite(ctx, Suite(), cfg)
	if !first.Passed {
		for _, r := range first.Results {
			if !r.Passed {
				t.Errorf("check %s failed: metrics %+v err %q", r.Name, r.Metrics, r.Err)
			}
		}
		t.Fatal("quick suite must pass on main")
	}
	second := RunSuite(ctx, Suite(), cfg)
	if got, want := metricFingerprint(t, second), metricFingerprint(t, first); got != want {
		t.Fatalf("suite is not deterministic:\nfirst:  %s\nsecond: %s", want, got)
	}
}

// metricFingerprint serializes everything except wall-clock durations.
func metricFingerprint(t *testing.T, rep Report) string {
	t.Helper()
	var sb strings.Builder
	for _, r := range rep.Results {
		sb.WriteString(r.Name)
		for _, m := range r.Metrics {
			b, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(b)
		}
		for _, n := range r.Notes {
			sb.WriteString(n)
		}
	}
	return sb.String()
}

// ar1Backend is a deliberately broken kernel: the composite ACF truncated
// to AR order 1. Below the knee it is nearly indistinguishable from the
// target (the SRD head is exponential with the same lag-1 rate), so only a
// check that actually probes the LRD regime can reject it.
func ar1Backend() genBackend {
	return genBackend{name: "ar1-perturbed", path: func(_ context.Context, model acf.Model, n int, seed uint64) ([]float64, error) {
		r1 := model.At(1)
		c := math.Sqrt(1 - r1*r1)
		r := rng.New(seed)
		x := make([]float64, n)
		x[0] = r.Norm()
		for i := 1; i < n; i++ {
			x[i] = r1*x[i-1] + c*r.Norm()
		}
		return x, nil
	}}
}

// TestPerturbedKernelFailsACFCheck is the suite's sensitivity proof: an
// AR(1)-truncated kernel must fail the ACF band check.
func TestPerturbedKernelFailsACFCheck(t *testing.T) {
	check := acfBackendCheck{backends: []genBackend{ar1Backend()}}
	res := check.Run(context.Background(), Config{Seed: DefaultSeed})
	if res.Err != "" {
		t.Fatalf("check errored instead of gating: %s", res.Err)
	}
	if res.Passed {
		t.Fatalf("AR(1)-perturbed kernel passed the ACF band check: %+v", res.Metrics)
	}
	// The failure must come from the LRD regime, where the perturbation
	// lives.
	var lrdFailed bool
	for _, m := range res.Metrics {
		if strings.Contains(m.Name, "lrd") && !m.Pass {
			lrdFailed = true
		}
		if strings.Contains(m.Name, "srd") && !m.Pass {
			t.Errorf("SRD gate %s tripped; the AR(1) perturbation should be invisible below the knee (value %.4f bound %.4f)",
				m.Name, m.Value, m.Bound)
		}
	}
	if !lrdFailed {
		t.Errorf("no LRD gate tripped: %+v", res.Metrics)
	}
}

// TestPerturbedKernelFailsEquivalenceCheck: the same broken kernel must
// disagree with exact Hosking in the cross-backend comparison.
func TestPerturbedKernelFailsEquivalenceCheck(t *testing.T) {
	bks := coreBackends()
	check := equivalenceCheck{backends: []genBackend{bks[0], ar1Backend()}}
	res := check.Run(context.Background(), Config{Seed: DefaultSeed})
	if res.Err != "" {
		t.Fatalf("check errored instead of gating: %s", res.Err)
	}
	if res.Passed {
		t.Fatalf("AR(1)-perturbed kernel passed cross-backend equivalence: %+v", res.Metrics)
	}
	var acfGateFailed bool
	for _, m := range res.Metrics {
		if strings.Contains(m.Name, "acf_excess") && !m.Pass {
			acfGateFailed = true
		}
	}
	if !acfGateFailed {
		t.Errorf("expected the pairwise ACF gate to trip, metrics: %+v", res.Metrics)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Report{
		Mode: "quick", Seed: 7, Passed: false, Checks: 1, Failed: 1,
		Results: []Result{{
			Name: "x", Family: "acf", Passed: false,
			Metrics: []Metric{{Name: "m", Value: 2, Op: "<=", Bound: 1, Pass: false}},
			Notes:   []string{"note"},
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Mode != rep.Mode || back.Seed != rep.Seed || len(back.Results) != 1 ||
		back.Results[0].Metrics[0].Bound != 1 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

// TestRunSuiteCancelledContext: a cancelled context must fail the suite
// with per-check errors, not hang or panic.
func TestRunSuiteCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := RunSuite(ctx, Suite(), Config{Seed: 1})
	if rep.Passed {
		t.Fatal("suite passed under a cancelled context")
	}
	if rep.Failed == 0 {
		t.Fatal("no checks recorded as failed under a cancelled context")
	}
}

// TestMeasureBackendWorkerInvariant is the suite-side half of the
// worker-invariance contract: the replication-band statistics behind the
// ACF and equivalence checks must be bit-identical for 1 and 8 workers
// (seeds are replication-indexed, reductions run in replication order).
func TestMeasureBackendWorkerInvariant(t *testing.T) {
	comp, tr, target, err := paperModel()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, b := range coreBackends() {
		one, err := measureBackend(ctx, b, comp, nil, 0, 1024, 12, 100, 77, 1)
		if err != nil {
			t.Fatal(err)
		}
		eight, err := measureBackend(ctx, b, comp, nil, 0, 1024, 12, 100, 77, 8)
		if err != nil {
			t.Fatal(err)
		}
		requireSameStats(t, b.name, one, eight)
	}
	// Foreground path (transform applied before measuring) too.
	b := coreBackends()[0]
	one, err := measureBackend(ctx, b, comp, &tr, target.Mean(), 1024, 8, 100, 78, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := measureBackend(ctx, b, comp, &tr, target.Mean(), 1024, 8, 100, 78, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireSameStats(t, b.name+"-foreground", one, eight)
}

func requireSameStats(t *testing.T, name string, a, b backendStats) {
	t.Helper()
	same := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if !same(a.mean, b.mean) || !same(a.variance, b.variance) ||
		!same(a.meanSE, b.meanSE) || !same(a.varSE, b.varSE) {
		t.Fatalf("%s: moments differ across worker counts: %+v vs %+v", name, a, b)
	}
	for k := range a.acfMean {
		if !same(a.acfMean[k], b.acfMean[k]) || !same(a.acfSE[k], b.acfSE[k]) {
			t.Fatalf("%s: ACF curve differs at lag %d: %v/%v vs %v/%v",
				name, k, a.acfMean[k], a.acfSE[k], b.acfMean[k], b.acfSE[k])
		}
	}
}
