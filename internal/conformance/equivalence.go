package conformance

import (
	"context"
	"math"

	"vbrsim/internal/daviesharte"
	"vbrsim/internal/farima"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
	"vbrsim/internal/tes"
)

// equivalenceCheck gates cross-backend agreement: every generator driven
// from the modelspec.Paper() spec must tell the same statistical story.
// The three composite-ACF backends (hosking, hosking-fast, daviesharte)
// must agree pairwise on mean, variance, and the full autocovariance
// curve; the alternative-model comparators (FARIMA(0,d,0) with d = H - 1/2,
// and TES calibrated to the composite's lag-1 correlation) must reproduce
// the foreground marginal's mean through the same transform.
//
// Because single-path LRD moments scatter widely (var of the sample mean
// decays only like n^(2H-2), about 0.19 at n=4096 for H=0.9), the pairwise
// gates are expressed relative to the measured across-replication standard
// errors plus a small absolute slack, not as fixed constants: a draw-level
// fluctuation sits inside the combined band by construction, while a
// law-level regression (an AR(1)-truncated kernel, a dead LRD tail) shows
// an ACF excess of 0.15+ against every correct backend.
type equivalenceCheck struct {
	// backends overrides the generator list (tests inject perturbed
	// kernels); nil means coreBackends().
	backends []genBackend
}

func (equivalenceCheck) Name() string   { return "cross-backend-equivalence" }
func (equivalenceCheck) Family() string { return "equivalence" }

func (c equivalenceCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	// Short paths, many replications. Pairwise gates compare two
	// independently-seeded noisy curves, and under LRD the per-path
	// autocovariance noise at the far lags shrinks only like n^(2H-2) in
	// the path length but like 1/reps in replications — so for a fixed
	// budget, many short paths buy far more power than a few long ones.
	// At n=1024 x 1024 reps the combined 3-sigma band is ~0.09 at the far
	// lags, small enough that an AR(1)-truncated kernel's ~0.2 LRD
	// divergence trips the gate at any seed, while correct backends sit at
	// zero excess.
	n, reps, maxLag := 1024, 1024, 200
	if cfg.Full {
		n, reps, maxLag = 1024, 2048, 300
	}
	comp, tr, target, err := paperModel()
	if err != nil {
		return res.fail(err)
	}

	backends := c.backends
	if backends == nil {
		backends = coreBackends()
	}
	all := make([]backendStats, len(backends))
	for i, b := range backends {
		// Distinct seed blocks per backend: agreement must come from the
		// law, not from shared draws.
		st, err := measureBackend(ctx, b, comp, nil, 0, n, reps, maxLag, cfg.Seed+50+uint64(i)*1000, cfg.Workers)
		if err != nil {
			return res.fail(err)
		}
		all[i] = st
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			pair := a.name + "_vs_" + b.name
			meanBand := 4*math.Sqrt(a.meanSE*a.meanSE+b.meanSE*b.meanSE) + 0.05
			res.gate(pair+"_mean_diff", math.Abs(a.mean-b.mean), "<=", meanBand)
			varBand := 4*math.Sqrt(a.varSE*a.varSE+b.varSE*b.varSE) + 0.05
			res.gate(pair+"_variance_diff", math.Abs(a.variance-b.variance), "<=", varBand)
			// Worst per-lag ACF gap beyond the combined 3-sigma band.
			var excess float64
			for k := 1; k <= maxLag; k++ {
				se := math.Sqrt(a.acfSE[k]*a.acfSE[k] + b.acfSE[k]*b.acfSE[k])
				e := math.Abs(a.acfMean[k]-b.acfMean[k]) - 3*se
				if e > excess || math.IsNaN(e) {
					excess = e
				}
			}
			res.gate(pair+"_acf_excess_beyond_band", excess, "<=", 0.05)
		}
	}

	// FARIMA comparator: same H, same marginal transform; gate the
	// foreground mean averaged over a few paths (its ACF family is
	// intentionally different, so only the marginal is equivalent).
	d := comp.Hurst() - 0.5
	const compN = 4096 // comparator paths: long enough for a stable mean
	fPlan, err := daviesharte.NewPlan(farima.ACF{D: d}, compN, daviesharte.Options{AllowApprox: true})
	if err != nil {
		return res.fail(err)
	}
	const compReps = 4
	var fMean float64
	for r := 0; r < compReps; r++ {
		fx := tr.ApplySlice(fPlan.Path(rng.New(cfg.Seed + 53 + uint64(r))))
		m, _ := stats.MeanVar(fx)
		fMean += m / compReps
	}
	res.gate("farima_mean_rel_err", math.Abs(fMean-target.Mean())/target.Mean(), "<=", 0.15)

	// TES comparator: exact marginal by construction (quantile of a
	// uniform background), lag-1-matched ACF.
	alpha, err := tes.CalibrateAlpha(comp.At(1))
	if err != nil {
		return res.fail(err)
	}
	var tMean float64
	for r := 0; r < compReps; r++ {
		gen, err := tes.New(tes.Config{Alpha: alpha, Zeta: 0.5, Marginal: target}, rng.New(cfg.Seed+57+uint64(r)))
		if err != nil {
			return res.fail(err)
		}
		m, _ := stats.MeanVar(gen.Path(compN))
		tMean += m / compReps
	}
	res.gate("tes_mean_rel_err", math.Abs(tMean-target.Mean())/target.Mean(), "<=", 0.10)
	res.note("foreground means over %d paths: farima %.1f, tes %.1f, target %.1f",
		compReps, fMean, tMean, target.Mean())
	return res
}

// fastBoundCheck gates the truncated-AR fast path against exact Hosking:
// the plan-level ACF-error bound reported by Truncate must stay inside its
// calibrated envelope, and the measured sample-ACF gap between the two
// backends must stay within sampling noise. This is the standing contract
// that lets perf work on the fast path proceed fearlessly — any widening
// of the approximation shows up here before it ships.
type fastBoundCheck struct{}

func (fastBoundCheck) Name() string   { return "hosking-fast-acf-bound" }
func (fastBoundCheck) Family() string { return "equivalence" }

func (c fastBoundCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	n, reps, maxLag := 4096, 32, 200
	if cfg.Full {
		n, reps, maxLag = 16384, 32, 490
	}
	comp, _, _, err := paperModel()
	if err != nil {
		return res.fail(err)
	}
	trunc, err := truncatedFor(ctx, comp)
	if err != nil {
		return res.fail(err)
	}
	// The reported bound is the worst |implied-AR ACF - target| over the
	// whole plan window (lags up to 4096). A finite AR order cannot carry a
	// power-law tail that far out — the implied ACF decays quasi-
	// exponentially past the truncation order — so for this LRD target the
	// bound is genuinely ~0.30 at the far end of the window. The gate is an
	// envelope around that calibrated value: a truncation regression
	// (looser tolerance, shorter order) widens it, while the lags that
	// matter for serving (<= maxLag) are covered by the sample-gap gate
	// below.
	bound := trunc.MaxACFError()
	res.gate("plan_acf_error_bound", bound, "<=", 0.35)
	res.note("truncation order %d, plan-level ACF error %.3f over the full %d-lag window", trunc.Order(), bound, streamPlanLen)

	bks := coreBackends()
	// Same seeds for both backends: the paths differ (different recursion
	// past the truncation order) but the innovation streams match, which
	// cancels most sampling noise out of the comparison.
	exact, err := measureBackend(ctx, bks[0], comp, nil, 0, n, reps, maxLag, cfg.Seed+60, cfg.Workers)
	if err != nil {
		return res.fail(err)
	}
	fast, err := measureBackend(ctx, bks[1], comp, nil, 0, n, reps, maxLag, cfg.Seed+60, cfg.Workers)
	if err != nil {
		return res.fail(err)
	}
	// maxExcess is the worst per-lag gap after discounting the 3-sigma
	// sampling band; over the serving lags the truncated AR tracks the
	// exact sampler to well under the absolute slack.
	var maxExcess float64
	for k := 1; k <= maxLag; k++ {
		se := 3 * math.Sqrt(exact.acfSE[k]*exact.acfSE[k]+fast.acfSE[k]*fast.acfSE[k])
		excess := math.Abs(exact.acfMean[k]-fast.acfMean[k]) - se
		if excess > maxExcess || math.IsNaN(excess) {
			maxExcess = excess
		}
	}
	res.gate("sample_acf_gap_beyond_band", maxExcess, "<=", 0.05)
	return res
}
