// Package conformance is the statistical acceptance harness: a suite of
// deterministic, seeded checks that gate whether the generator backends
// still produce paper-conformant traffic. Unit tests prove the code runs;
// these checks prove the output is still statistically right — the marginal
// matches the fitted distribution (paper Fig. 13), the sample ACF tracks
// the composite target in both the SRD and LRD regimes (Figs. 7-8), the
// Hurst parameter is recovered at H = 0.9 (Figs. 3-4), the backends agree
// with each other, and the importance-sampling overflow estimates agree
// with brute-force Monte Carlo (Fig. 9 / Section 4).
//
// Every check runs from fixed seeds, so a run is bit-reproducible: a
// failure is a regression, never flakiness. Thresholds are deliberately
// loose relative to the calibrated pass values (documented per check) so
// sampling noise never trips them, while kernel-level breakage — a
// reordered recursion, a wrong coefficient, a truncated AR order — lands
// far outside them. See DESIGN.md §8 for the threshold rationale.
package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"vbrsim/internal/acf"
	"vbrsim/internal/daviesharte"
	"vbrsim/internal/dist"
	"vbrsim/internal/fft"
	"vbrsim/internal/hosking"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/par"
	"vbrsim/internal/rng"
	"vbrsim/internal/stats"
	"vbrsim/internal/streamblock"
	"vbrsim/internal/transform"
)

// Config scales the suite.
type Config struct {
	// Full selects paper-scale sample sizes; the default (quick) sizes are
	// chosen so the whole suite finishes in well under a minute.
	Full bool
	// Seed drives every check (each derives sub-seeds at fixed offsets).
	Seed uint64
	// Workers caps the goroutines each check's replication loops fan
	// across; <= 0 selects GOMAXPROCS. Every check is bit-identical for
	// every setting: per-replication randomness is indexed by replication,
	// never by worker, and reductions run in replication order.
	Workers int
}

// DefaultSeed is the suite seed used by cmd/conformance and CI.
const DefaultSeed = 1995 // the paper's publication year

// Mode returns the human-readable run mode.
func (c Config) Mode() string {
	if c.Full {
		return "full"
	}
	return "quick"
}

// Metric is one gated quantity inside a check: a measured value compared
// against a bound.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Op is the acceptance comparison: "<=" (value must not exceed Bound),
	// ">=" (must reach it).
	Op    string  `json:"op"`
	Bound float64 `json:"bound"`
	Pass  bool    `json:"pass"`
}

// Result is one check's outcome, JSON-serializable for the CI report.
type Result struct {
	Name    string   `json:"name"`
	Family  string   `json:"family"`
	Passed  bool     `json:"passed"`
	Metrics []Metric `json:"metrics,omitempty"`
	Notes   []string `json:"notes,omitempty"`
	// Err records an infrastructure failure (a check that could not run);
	// it fails the suite like a gate miss.
	Err      string  `json:"error,omitempty"`
	Duration float64 `json:"duration_seconds"`
}

// gate records a metric and folds its verdict into the result.
func (r *Result) gate(name string, value float64, op string, bound float64) bool {
	pass := false
	switch op {
	case "<=":
		pass = value <= bound
	case ">=":
		pass = value >= bound
	}
	// NaN compares false either way, so a NaN value always fails the gate —
	// a silent-NaN kernel regression cannot slip through.
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Op: op, Bound: bound, Pass: pass})
	if !pass {
		r.Passed = false
	}
	return pass
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) fail(err error) Result {
	r.Passed = false
	r.Err = err.Error()
	return *r
}

// Check is one named statistical acceptance gate.
type Check interface {
	// Name identifies the check in reports (kebab-case).
	Name() string
	// Family groups related checks: marginal, acf, hurst, equivalence,
	// queue.
	Family() string
	// Run executes the check. Infrastructure failures are reported in
	// Result.Err; a returned Result always carries Name and Family.
	Run(ctx context.Context, cfg Config) Result
}

// Suite returns the standard check suite in its canonical order.
func Suite() []Check {
	return []Check{
		marginalCheck{},
		acfBackendCheck{},
		acfCompensatedCheck{},
		hurstCheck{},
		equivalenceCheck{},
		fastBoundCheck{},
		streamBatchCheck{},
		queueTailCheck{},
		trunkDeterminismCheck{},
		trunkHurstCheck{},
		trunkMuxGainCheck{},
	}
}

// Report is the machine-readable outcome of a suite run (written to
// CONFORMANCE_1.json by cmd/conformance).
type Report struct {
	Mode     string   `json:"mode"`
	Seed     uint64   `json:"seed"`
	Passed   bool     `json:"passed"`
	Checks   int      `json:"checks"`
	Failed   int      `json:"failed"`
	Duration float64  `json:"duration_seconds"`
	Results  []Result `json:"results"`
}

// Hooks observe a suite run for progress reporting. Hooks never influence
// check execution or results; a zero Hooks is valid and free.
type Hooks struct {
	// CheckStart fires before a check runs. index counts from 0 of total.
	CheckStart func(index, total int, name string)
	// CheckDone fires after a check completes with its full result.
	CheckDone func(index, total int, res Result)
}

// RunSuite executes the checks sequentially (deterministic plan-cache
// warmup order) and aggregates the report.
func RunSuite(ctx context.Context, checks []Check, cfg Config) Report {
	return RunSuiteHooks(ctx, checks, cfg, Hooks{})
}

// RunSuiteHooks is RunSuite with per-check progress callbacks.
func RunSuiteHooks(ctx context.Context, checks []Check, cfg Config, hooks Hooks) Report {
	rep := Report{Mode: cfg.Mode(), Seed: cfg.Seed, Passed: true}
	suiteStart := time.Now()
	total := len(checks)
	for i, c := range checks {
		if ctx.Err() != nil {
			r := Result{Name: c.Name(), Family: c.Family()}
			rep.Results = append(rep.Results, r.fail(ctx.Err()))
			rep.Passed = false
			rep.Failed++
			continue
		}
		if hooks.CheckStart != nil {
			hooks.CheckStart(i, total, c.Name())
		}
		start := time.Now()
		r := c.Run(ctx, cfg)
		r.Duration = time.Since(start).Seconds()
		rep.Results = append(rep.Results, r)
		rep.Checks++
		if !r.Passed {
			rep.Passed = false
			rep.Failed++
		}
		if hooks.CheckDone != nil {
			hooks.CheckDone(i, total, r)
		}
	}
	rep.Duration = time.Since(suiteStart).Seconds()
	return rep
}

// WriteJSON writes the indented report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ---------------------------------------------------------------------------
// Shared model setup and backend plumbing.

// paperModel materializes the modelspec.Paper() preset every check is
// driven from: the continuity-adjusted composite background ACF and the
// lognormal marginal transform.
func paperModel() (acf.Composite, transform.T, dist.Distribution, error) {
	spec := modelspec.Paper()
	model, tr, err := spec.Source()
	if err != nil {
		return acf.Composite{}, transform.T{}, nil, err
	}
	comp, ok := model.(acf.Composite)
	if !ok {
		return acf.Composite{}, transform.T{}, nil, fmt.Errorf("conformance: paper spec ACF is %T, want acf.Composite", model)
	}
	return comp, tr, tr.Target, nil
}

// streamPlanLen is the exact-plan length behind the truncated fast path,
// matching what modelspec.Stream derives (core.TruncatedPlanForCtx with an
// unbounded horizon), so conformance exercises the very plans production
// streams run on.
const streamPlanLen = 4096

// truncatedFor builds the default truncated-AR view of the model through
// the shared plan cache.
func truncatedFor(ctx context.Context, model acf.Model) (*hosking.Truncated, error) {
	plan, err := hosking.CachedPlanCtx(ctx, model, streamPlanLen)
	if err != nil {
		return nil, err
	}
	return plan.Truncate(hosking.TruncateOptions{})
}

// genBackend is one background-path generator under test. All three
// produce zero-mean unit-variance Gaussian paths targeting the same ACF;
// they differ in algorithm (and therefore in failure modes).
type genBackend struct {
	name string
	// path allocates one path per call; it is the golden-pinned entry
	// point (golden_test.go fingerprints it) and the fallback for injected
	// test backends that only define it.
	path func(ctx context.Context, model acf.Model, n int, seed uint64) ([]float64, error)
	// prepare, when non-nil, builds the plan once and returns a generator
	// measureBackend drives across replications. The generator must be
	// safe for concurrent calls with distinct arenas.
	prepare func(ctx context.Context, model acf.Model, n int) (pathGen, error)
}

// pathGen fills dst with the path derived from one replication seed, using
// the caller-owned arena for scratch.
type pathGen func(dst []float64, s *genArena, seed uint64) error

// genArena is the per-worker scratch of measureBackend's replication loop:
// a reseedable generator, backend path scratch, FFT scratch for the sample
// autocovariance, the path/foreground buffers, and (for the streamblock
// backend) a per-worker block stream reseeded between replications so the
// steady state stays allocation-free.
type genArena struct {
	src  rng.Source
	dh   daviesharte.Scratch
	fft  fft.Scratch
	x, y []float64
	blk  *streamblock.Stream
}

// streamBlockTotal sizes the conformance view of the overlapped-block
// stream engine. It is deliberately small (block length 2048 - order, far
// below the serving DefaultTotal) so the measurement paths cross several
// block boundaries and the stitch correction — the engine's only
// approximation — is what actually gets gated.
const streamBlockTotal = 2048

// streamBlockEngine builds the conformance-scale block engine for model.
func streamBlockEngine(ctx context.Context, model acf.Model) (*streamblock.Engine, error) {
	trunc, err := truncatedFor(ctx, model)
	if err != nil {
		return nil, err
	}
	return streamblock.EngineFor(model, trunc, streamblock.Config{Total: streamBlockTotal})
}

// coreBackends lists the generators that target the composite ACF exactly:
// the exact Hosking sampler, its truncated-AR fast path (the historical
// serving default), the Davies-Harte circulant-embedding sampler, and the
// overlapped-block streaming engine built on it. The prepare
// hooks reuse one plan for a whole measurement and generate through the
// zero-allocation engines; the path closures keep the historical one-shot
// layout the golden traces pin.
func coreBackends() []genBackend {
	return []genBackend{
		{
			name: "hosking",
			path: func(ctx context.Context, model acf.Model, n int, seed uint64) ([]float64, error) {
				plan, err := hosking.CachedPlanCtx(ctx, model, n)
				if err != nil {
					return nil, err
				}
				return plan.Path(rng.New(seed), n), nil
			},
			prepare: func(ctx context.Context, model acf.Model, n int) (pathGen, error) {
				plan, err := hosking.CachedPlanCtx(ctx, model, n)
				if err != nil {
					return nil, err
				}
				return func(dst []float64, s *genArena, seed uint64) error {
					s.src.Reseed(seed)
					plan.Generate(&s.src, dst)
					return nil
				}, nil
			},
		},
		{
			name: "hosking-fast",
			path: func(ctx context.Context, model acf.Model, n int, seed uint64) ([]float64, error) {
				trunc, err := truncatedFor(ctx, model)
				if err != nil {
					return nil, err
				}
				return trunc.Path(rng.New(seed), n), nil
			},
			prepare: func(ctx context.Context, model acf.Model, n int) (pathGen, error) {
				trunc, err := truncatedFor(ctx, model)
				if err != nil {
					return nil, err
				}
				return func(dst []float64, s *genArena, seed uint64) error {
					s.src.Reseed(seed)
					trunc.Generate(&s.src, dst)
					return nil
				}, nil
			},
		},
		{
			name: "daviesharte",
			path: func(ctx context.Context, model acf.Model, n int, seed uint64) ([]float64, error) {
				plan, err := daviesharte.NewPlan(model, n, daviesharte.Options{AllowApprox: true})
				if err != nil {
					return nil, err
				}
				return plan.Path(rng.New(seed)), nil
			},
			prepare: func(_ context.Context, model acf.Model, n int) (pathGen, error) {
				plan, err := daviesharte.NewPlan(model, n, daviesharte.Options{AllowApprox: true})
				if err != nil {
					return nil, err
				}
				return func(dst []float64, s *genArena, seed uint64) error {
					s.src.Reseed(seed)
					plan.PathRealInto(dst, &s.dh, &s.src)
					return nil
				}, nil
			},
		},
		{
			name: "streamblock",
			path: func(ctx context.Context, model acf.Model, n int, seed uint64) ([]float64, error) {
				eng, err := streamBlockEngine(ctx, model)
				if err != nil {
					return nil, err
				}
				st := eng.NewStream(seed)
				defer st.Close()
				out := make([]float64, n)
				st.Fill(out)
				return out, nil
			},
			prepare: func(ctx context.Context, model acf.Model, _ int) (pathGen, error) {
				eng, err := streamBlockEngine(ctx, model)
				if err != nil {
					return nil, err
				}
				return func(dst []float64, s *genArena, seed uint64) error {
					// One stream per arena, reseeded per replication: block
					// refills reuse the arena buffers, so replications after
					// the first allocate nothing.
					if s.blk == nil || s.blk.Engine() != eng {
						s.blk = eng.NewStream(seed)
					} else {
						s.blk.Reseed(seed)
					}
					s.blk.Fill(dst)
					return nil
				}, nil
			},
		},
	}
}

// backendStats are replication-averaged sample statistics of one backend's
// output.
type backendStats struct {
	name string
	// mean and variance are averaged across replications; meanSE and varSE
	// are their across-replication standard errors (LRD makes single-path
	// moments scatter widely, so agreement gates are expressed relative to
	// these rather than as fixed constants).
	mean, variance float64
	meanSE, varSE  float64
	// acfMean[k] and acfSE[k] are the across-replication mean and standard
	// error of the correlation-scale curve at lag k. For background paths
	// (tr == nil) the curve is the bias-corrected known-mean sample
	// AUTOCOVARIANCE — the process variance is exactly 1, so covariance IS
	// correlation, and with the n/(n-k) correction the estimator is unbiased
	// at every lag (normalizing by the sample variance instead would fold
	// that LRD-noisy denominator into every lag as a shared, strongly
	// lag-correlated error). Foreground paths (tr != nil) have no known
	// variance, so the plain normalized sample ACF is used there.
	acfMean, acfSE []float64
}

// measureBackend generates reps independent paths of length n (seeds
// seed..seed+reps-1) and aggregates their sample statistics up to maxLag.
// The transform, when non-nil, maps the background path to the foreground
// before measuring (processMean then must be the foreground mean).
//
// Replications fan across a worker pool (see Config.Workers). The result
// is bit-identical for every worker count: each replication's seed is its
// replication index offset (never a worker index), per-replication curves
// and moments are deposited into slabs by replication index, and the
// across-replication sums run sequentially in replication order below.
// Backends without a prepare hook (test-injected kernels) run their
// allocating path closure on a single worker.
func measureBackend(ctx context.Context, b genBackend, model acf.Model, tr *transform.T, processMean float64, n, reps, maxLag int, seed uint64, workers int) (backendStats, error) {
	st := backendStats{
		name:    b.name,
		acfMean: make([]float64, maxLag+1),
		acfSE:   make([]float64, maxLag+1),
	}
	var gen pathGen
	if b.prepare != nil {
		g, err := b.prepare(ctx, model, n)
		if err != nil {
			return st, fmt.Errorf("%s: %w", b.name, err)
		}
		gen = g
	} else {
		workers = 1
		gen = func(dst []float64, _ *genArena, seed uint64) error {
			x, err := b.path(ctx, model, n, seed)
			if err != nil {
				return err
			}
			copy(dst, x)
			return nil
		}
	}
	lagN := maxLag + 1
	curves := make([]float64, reps*lagN)
	moments := make([]float64, 2*reps)
	w := par.Workers(workers, reps)
	arenas := make([]genArena, w)
	err := par.ForCtx(ctx, w, reps, func(wk, rep int) error {
		ar := &arenas[wk]
		if ar.x == nil {
			ar.x = make([]float64, n)
			if tr != nil {
				ar.y = make([]float64, n)
			}
		}
		if err := gen(ar.x, ar, seed+uint64(rep)); err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		curve := curves[rep*lagN : (rep+1)*lagN]
		x := ar.x
		if tr != nil {
			x = tr.ApplyTo(ar.y, ar.x)
			fft.AutocovarianceKnownMeanInto(curve, x, processMean, &ar.fft)
			// Foreground curves are normalized sample autocorrelations (no
			// known variance to pin the covariance scale).
			if c0 := curve[0]; c0 != 0 {
				for k := range curve {
					curve[k] /= c0
				}
			}
		} else {
			fft.AutocovarianceKnownMeanInto(curve, x, processMean, &ar.fft)
			for k := range curve {
				curve[k] *= float64(n) / float64(n-k)
			}
		}
		m, v := stats.MeanVar(x)
		if tr == nil {
			// Known-mean variance (curve[0] = mean of x²): unbiased at
			// exactly 1 for every correct backend. The sample-mean version
			// is depressed by var(x̄) ~ n^(2H-2), and by *different* amounts
			// for backends whose correlations are truncated at different
			// ranges — a systematic gap that is estimator bias, not backend
			// disagreement.
			v = curve[0]
		}
		moments[2*rep] = m
		moments[2*rep+1] = v
		return nil
	})
	if err != nil {
		return st, err
	}
	acfSq := make([]float64, lagN)
	var meanSq, varSq float64
	for rep := 0; rep < reps; rep++ {
		curve := curves[rep*lagN : (rep+1)*lagN]
		for k := 0; k <= maxLag; k++ {
			st.acfMean[k] += curve[k]
			acfSq[k] += curve[k] * curve[k]
		}
		m, v := moments[2*rep], moments[2*rep+1]
		st.mean += m
		st.variance += v
		meanSq += m * m
		varSq += v * v
	}
	fr := float64(reps)
	st.mean /= fr
	st.variance /= fr
	st.meanSE = math.Sqrt(math.Max(meanSq/fr-st.mean*st.mean, 0) / fr)
	st.varSE = math.Sqrt(math.Max(varSq/fr-st.variance*st.variance, 0) / fr)
	for k := 0; k <= maxLag; k++ {
		st.acfMean[k] /= fr
		varAcf := acfSq[k]/fr - st.acfMean[k]*st.acfMean[k]
		if varAcf < 0 {
			varAcf = 0
		}
		st.acfSE[k] = math.Sqrt(varAcf / fr)
	}
	return st, nil
}
