package conformance

import (
	"context"

	"vbrsim/internal/hurst"
	"vbrsim/internal/rng"
)

// hurstCheck gates Hurst-parameter recovery (paper Step 1, Figs. 3-4):
// variance-time and R/S estimates on a synthetic background path must
// bracket the model's H = 0.9. The two graphical estimators carry known
// finite-sample bias (variance-time reads low because the composite's
// exponential head steepens the early variance decay; R/S reads low on
// moderate n), so the intervals are calibrated per estimator rather than
// symmetric around 0.9 — but an SRD-only regression (H -> 0.5) or an
// over-aggressive one (H -> 1) falls far outside both.
type hurstCheck struct{}

func (hurstCheck) Name() string   { return "hurst-recovery" }
func (hurstCheck) Family() string { return "hurst" }

func (c hurstCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	n := 1 << 16
	if cfg.Full {
		n = 1 << 18
	}
	comp, _, _, err := paperModel()
	if err != nil {
		return res.fail(err)
	}
	modelH := comp.Hurst()
	res.note("model H = %.3f (beta = %.3f)", modelH, comp.Beta)

	trunc, err := truncatedFor(ctx, comp)
	if err != nil {
		return res.fail(err)
	}
	x := trunc.Path(rng.New(cfg.Seed+30), n)

	vt, err := hurst.VarianceTime(x, hurst.VarianceTimeOptions{})
	if err != nil {
		return res.fail(err)
	}
	rs, err := hurst.RS(x, hurst.RSOptions{})
	if err != nil {
		return res.fail(err)
	}
	res.gate("variance_time_h", vt.H, ">=", 0.70)
	res.gate("variance_time_h", vt.H, "<=", 1.00)
	res.gate("rs_h", rs.H, ">=", 0.75)
	res.gate("rs_h", rs.H, "<=", 1.00)
	avg := (vt.H + rs.H) / 2
	res.gate("combined_h", avg, ">=", 0.78)
	res.gate("combined_h", avg, "<=", 0.98)
	res.note("VT H = %.3f (R² %.3f), R/S H = %.3f (R² %.3f), combined %.3f on n=%d",
		vt.H, vt.R2, rs.H, rs.R2, avg, n)
	return res
}
