package conformance

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"vbrsim/internal/modelspec"
)

// update regenerates the golden traces instead of comparing against them:
//
//	go test ./internal/conformance -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden trace files")

const (
	goldenFrames = 256
	goldenSeed   = 424242
)

// goldenSources enumerates every deterministic frame producer that gets a
// golden trace: the background backends pushed through the marginal
// transform, plus the serving paths (modelspec.Stream via Spec.Frames —
// exactly what trafficd emits) on both engines.
func goldenSources(ctx context.Context) (map[string][]float64, error) {
	comp, tr, _, err := paperModel()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64)
	for _, b := range coreBackends() {
		bg, err := b.path(ctx, comp, goldenFrames, goldenSeed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		out[b.name] = tr.ApplySlice(bg)
	}
	spec := modelspec.Paper()
	spec.Seed = goldenSeed
	frames, err := spec.Frames(ctx, 0, goldenFrames, 0)
	if err != nil {
		return nil, err
	}
	out["stream"] = frames
	spec.Engine = modelspec.EngineBlock
	blockFrames, err := spec.Frames(ctx, 0, goldenFrames, 0)
	if err != nil {
		return nil, err
	}
	out["stream_block"] = blockFrames
	gopSpec := modelspec.Spec{
		Seed:   goldenSeed,
		Engine: modelspec.EngineGOP,
		GOP:    &modelspec.GOPSpec{},
	}
	gopFrames, err := gopSpec.Frames(ctx, 0, goldenFrames, 0)
	if err != nil {
		return nil, err
	}
	out["stream_gop"] = gopFrames
	return out, nil
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_"+name+".txt")
}

// TestGoldenTraces locks the first 256 frames of every backend at a fixed
// seed, bit-exact: each line of the golden file is the big-endian hex of
// math.Float64bits, so ANY numeric change — reordered floating-point
// reduction, changed RNG draw order, different truncation — fails the
// test, even when it is statistically invisible. Intentional changes are
// re-blessed with -update.
func TestGoldenTraces(t *testing.T) {
	sources, err := goldenSources(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for name, frames := range sources {
		t.Run(name, func(t *testing.T) {
			if len(frames) != goldenFrames {
				t.Fatalf("generated %d frames, want %d", len(frames), goldenFrames)
			}
			path := goldenPath(name)
			if *update {
				writeGolden(t, path, frames)
				return
			}
			want := readGolden(t, path)
			if len(want) != len(frames) {
				t.Fatalf("%s holds %d frames, want %d (rerun with -update after intentional changes)", path, len(want), len(frames))
			}
			for i, w := range want {
				got := math.Float64bits(frames[i])
				if got != w {
					t.Fatalf("frame %d: got %x (%v), want %x (%v) — bit-exact regression; rerun with -update only if the change is intentional",
						i, got, frames[i], w, math.Float64frombits(w))
				}
			}
		})
	}
}

func writeGolden(t *testing.T, path string, frames []float64) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, v := range frames {
		fmt.Fprintf(w, "%016x\n", math.Float64bits(v))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d frames)", path, len(frames))
}

func readGolden(t *testing.T, path string) []uint64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("%v (generate with -update)", err)
	}
	defer f.Close()
	var out []uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		bits, err := strconv.ParseUint(line, 16, 64)
		if err != nil {
			t.Fatalf("%s: bad line %q: %v", path, line, err)
		}
		out = append(out, bits)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
