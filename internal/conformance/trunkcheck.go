package conformance

import (
	"context"
	"math"

	"vbrsim/internal/hurst"
	"vbrsim/internal/modelspec"
	"vbrsim/internal/queue"
	"vbrsim/internal/trunk"
)

// ---------------------------------------------------------------------------
// Trunk family: statistical gates on the superposition engine. The paper's
// trunk scenario multiplexes many VBR sources into one queue; these checks
// pin the two properties that make that scenario worth modeling — long-range
// dependence survives aggregation (superposition of self-similar sources is
// self-similar with the same H), and sharing capacity across sources buys a
// real reduction in tail overflow (statistical multiplexing gain) — plus the
// engine's bit-determinism contract across worker counts and seek patterns.

// homogeneousTrunkSpec is an N-replica trunk of the paper model on the
// truncated fast engine, the configuration both statistical checks drive.
func homogeneousTrunkSpec(n int, seed uint64) *modelspec.TrunkSpec {
	paper := modelspec.Paper()
	return &modelspec.TrunkSpec{
		Seed: seed,
		Components: []modelspec.TrunkComponent{
			{Count: n, Spec: modelspec.Spec{ACF: paper.ACF, Marginal: paper.Marginal}},
		},
	}
}

// trunkHurstCheck gates Hurst preservation under superposition: the
// aggregate of N independent H = 0.9 sources must itself estimate at H near
// 0.9. Both graphical estimators carry the same finite-sample bias as on a
// single source (see hurstCheck), so the intervals match that check's
// calibration; an aggregate that averaged toward SRD (H -> 0.5) — the
// failure mode of a summation that breaks inter-source independence or drops
// the LRD tail — lands far outside.
type trunkHurstCheck struct{}

func (trunkHurstCheck) Name() string   { return "trunk-hurst-preservation" }
func (trunkHurstCheck) Family() string { return "trunk" }

func (c trunkHurstCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	n := 1 << 16
	if cfg.Full {
		n = 1 << 18
	}
	const sources = 8
	spec := homogeneousTrunkSpec(sources, cfg.Seed+50)
	tr, err := trunk.Open(ctx, spec, trunk.Options{Workers: cfg.Workers})
	if err != nil {
		return res.fail(err)
	}
	defer tr.Close()
	x := make([]float64, n)
	tr.Fill(x)

	vt, err := hurst.VarianceTime(x, hurst.VarianceTimeOptions{})
	if err != nil {
		return res.fail(err)
	}
	rs, err := hurst.RS(x, hurst.RSOptions{})
	if err != nil {
		return res.fail(err)
	}
	res.gate("variance_time_h", vt.H, ">=", 0.70)
	res.gate("variance_time_h", vt.H, "<=", 1.00)
	res.gate("rs_h", rs.H, ">=", 0.75)
	res.gate("rs_h", rs.H, "<=", 1.00)
	avg := (vt.H + rs.H) / 2
	res.gate("combined_h", avg, ">=", 0.78)
	res.gate("combined_h", avg, "<=", 0.98)
	res.note("aggregate of %d sources: VT H = %.3f (R² %.3f), R/S H = %.3f (R² %.3f), combined %.3f on n=%d",
		sources, vt.H, vt.R2, rs.H, rs.R2, avg, n)
	return res
}

// trunkMuxGainCheck gates statistical multiplexing gain: a queue serving an
// N-source trunk at N times the single-source capacity and N times the
// buffer must overflow less often than a dedicated queue serving one source
// — the aggregate's relative burstiness shrinks like 1/sqrt(N) while the
// capacity margin scales like N. Both sides run the same Lindley/MC
// estimator at the same utilization, so the only difference is sharing.
type trunkMuxGainCheck struct{}

func (trunkMuxGainCheck) Name() string   { return "trunk-mux-gain" }
func (trunkMuxGainCheck) Family() string { return "trunk" }

// Mux-gain operating point: utilization matching the paper's mid-range
// queue experiments and a small normalized buffer so the single-source
// overflow is frequent enough for plain MC on the conformance budget.
const (
	muxGainUtil    = 0.7
	muxGainBufNorm = 5.0
	muxGainSources = 8
)

func (c trunkMuxGainCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	horizon, reps := 256, 3000
	if cfg.Full {
		horizon, reps = 512, 12000
	}

	single, err := trunk.NewPathSource(ctx, homogeneousTrunkSpec(1, cfg.Seed+60), trunk.Options{Workers: 1})
	if err != nil {
		return res.fail(err)
	}
	defer single.Close()
	multi, err := trunk.NewPathSource(ctx, homogeneousTrunkSpec(muxGainSources, cfg.Seed+60), trunk.Options{Workers: 1})
	if err != nil {
		return res.fail(err)
	}
	defer multi.Close()

	meanRate := single.MeanRate()
	service, err := queue.UtilizationService(meanRate, muxGainUtil)
	if err != nil {
		return res.fail(err)
	}
	buffer := muxGainBufNorm * meanRate

	opt := queue.MCOptions{Replications: reps, Workers: cfg.Workers, Seed: cfg.Seed + 61}
	dedicated, err := queue.EstimateOverflowCtx(ctx, single, service, buffer, horizon, opt)
	if err != nil {
		return res.fail(err)
	}
	// The shared queue: N sources, N times the capacity, N times the buffer
	// — identical utilization and identical per-source buffer allowance.
	shared, err := queue.EstimateOverflowCtx(ctx, multi,
		float64(muxGainSources)*service, float64(muxGainSources)*buffer, horizon, opt)
	if err != nil {
		return res.fail(err)
	}

	// The dedicated queue must see the event often (the gain gate is
	// vacuous otherwise); the shared queue may legitimately see none.
	res.gate("dedicated_hits", float64(dedicated.Hits), ">=", 30)

	// The gain itself: the shared queue's overflow probability must sit
	// well below the dedicated queue's — at least a factor of two below
	// even after granting the estimates their combined 4-sigma noise.
	combinedSE := math.Sqrt(dedicated.StdErr*dedicated.StdErr + shared.StdErr*shared.StdErr)
	res.gate("mux_gain_margin", dedicated.P-2*shared.P, ">=", -4*combinedSE)
	res.gate("shared_p_below_dedicated", shared.P, "<=", dedicated.P)
	gain := math.Inf(1)
	if shared.P > 0 {
		gain = dedicated.P / shared.P
	}
	res.note("P(overflow) dedicated %.4g ± %.2g (%d/%d hits) vs shared(%d sources) %.4g ± %.2g (%d/%d hits): gain %.2gx",
		dedicated.P, dedicated.StdErr, dedicated.Hits, dedicated.Replications,
		muxGainSources, shared.P, shared.StdErr, shared.Hits, shared.Replications, gain)
	return res
}

// trunkDeterminismCheck gates the engine's bit-determinism contract: a
// heterogeneous trunk (both Gaussian engines, FARIMA, the GOP simulator,
// TES) must produce bit-identical frames at every worker count, and
// seek-and-resume must land exactly on the sequential playback — the
// properties trafficd's replayable trunk sessions are built on.
type trunkDeterminismCheck struct{}

func (trunkDeterminismCheck) Name() string   { return "trunk-determinism" }
func (trunkDeterminismCheck) Family() string { return "trunk" }

func (c trunkDeterminismCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	n := 6000
	if cfg.Full {
		n = 30000
	}
	paper := modelspec.Paper()
	spec := &modelspec.TrunkSpec{
		Seed: cfg.Seed + 70,
		Components: []modelspec.TrunkComponent{
			{Count: 2, Spec: modelspec.Spec{ACF: paper.ACF, Engine: modelspec.EngineBlock}},
			{Weight: 0.5, Spec: modelspec.Spec{ACF: modelspec.ACFSpec{Kind: modelspec.ACFFarima, D: 0.4}}},
			{Spec: modelspec.Spec{Engine: modelspec.EngineGOP, GOP: &modelspec.GOPSpec{}}},
			{Weight: 2, Spec: modelspec.Spec{Engine: modelspec.EngineTES, TES: &modelspec.TESSpec{Alpha: 0.3}}},
		},
		Marginal: paper.Marginal,
	}

	ref, err := trunk.Open(ctx, spec, trunk.Options{Workers: 1})
	if err != nil {
		return res.fail(err)
	}
	defer ref.Close()
	want := make([]float64, n)
	ref.Fill(want)

	bitDiff := func(a, b []float64) float64 {
		d := 0
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				d++
			}
		}
		return float64(d)
	}

	// Worker-count invariance.
	got := make([]float64, n)
	for _, w := range []int{2, 4, 7} {
		t, err := trunk.Open(ctx, spec, trunk.Options{Workers: w})
		if err != nil {
			return res.fail(err)
		}
		t.Fill(got)
		t.Close()
		res.gate("worker_mismatch_frames", bitDiff(want, got), "<=", 0)
	}

	// Seek patterns: backward, to zero, forward past the frontier — each
	// resume must continue exactly on the sequential trace.
	t, err := trunk.Open(ctx, spec, trunk.Options{Workers: cfg.Workers})
	if err != nil {
		return res.fail(err)
	}
	defer t.Close()
	t.Fill(make([]float64, n/2))
	probe := make([]float64, 256)
	seekDiff := 0.0
	for _, pos := range []int{n / 4, 0, n - 512, 3 * n / 4} {
		if err := t.SeekCtx(ctx, pos); err != nil {
			return res.fail(err)
		}
		t.Fill(probe)
		seekDiff += bitDiff(want[pos:pos+len(probe)], probe)
	}
	res.gate("seek_mismatch_frames", seekDiff, "<=", 0)
	res.note("heterogeneous trunk of %d sources: %d frames worker-invariant, 4 seek patterns bit-exact", ref.NumSources(), n)
	return res
}
