package conformance

import (
	"context"
	"math"

	"vbrsim/internal/acf"
	"vbrsim/internal/hosking"
	"vbrsim/internal/transform"
)

// bandParams are the shared band-test settings: a lag is "outside the
// band" when the replication-averaged sample curve misses the target by
// more than z standard errors plus an absolute slack (which keeps tiny
// standard errors at long lags from flagging rounding-level deviations).
type bandParams struct {
	z     float64 // normal multiplier on the across-replication stderr
	slack float64 // absolute deviation always tolerated
}

// bandStats summarizes a backend's curve against its target band. Under
// LRD the per-lag deviations are strongly correlated (a handful of
// low-frequency components move every lag together), so the fractions are
// nearly all-or-nothing and maxExcess — the worst deviation after
// discounting the z-sigma band — is the robust headline number: it is ~0
// for a correct backend at any seed and large for a broken one.
type bandStats struct {
	srdFrac   float64 // fraction of lags 1..knee-1 outside the band
	lrdFrac   float64 // fraction of lags knee..maxLag outside the band
	maxDev    float64 // worst raw |curve - target| (reported, not gated)
	maxExcess float64 // worst |curve - target| - z*SE, floored at 0
}

// bandViolations splits lags 1..maxLag at the knee and scores the curve
// against the target.
func bandViolations(st backendStats, target func(k int) float64, knee int, p bandParams) bandStats {
	var out bandStats
	maxLag := len(st.acfMean) - 1
	srdTotal, lrdTotal := 0, 0
	srdBad, lrdBad := 0, 0
	for k := 1; k <= maxLag; k++ {
		dev := math.Abs(st.acfMean[k] - target(k))
		if dev > out.maxDev || math.IsNaN(dev) {
			out.maxDev = dev
		}
		if e := dev - p.z*st.acfSE[k]; e > out.maxExcess || math.IsNaN(e) {
			out.maxExcess = e
		}
		outside := !(dev <= p.z*st.acfSE[k]+p.slack) // NaN counts as outside
		if k < knee {
			srdTotal++
			if outside {
				srdBad++
			}
		} else {
			lrdTotal++
			if outside {
				lrdBad++
			}
		}
	}
	if srdTotal > 0 {
		out.srdFrac = float64(srdBad) / float64(srdTotal)
	}
	if lrdTotal > 0 {
		out.lrdFrac = float64(lrdBad) / float64(lrdTotal)
	}
	return out
}

// acfBackendCheck gates the background-process sample autocovariance of
// every backend against the composite target r̂(k) (paper Figs. 7-8) in
// both regimes: the exponential head below the knee (SRD) and the
// power-law tail at and beyond it (LRD). The band is the
// across-replication 3-sigma interval; a correct backend stays inside it
// at essentially every lag and shows zero excess, while a kernel
// regression (wrong coefficient order, dead LRD tail) pushes the whole
// LRD range out by 0.1-0.2 — calibration: an AR(1)-truncated kernel
// measures maxExcess 0.14-0.20 and lrdFrac 0.5-0.76 across seeds, a
// correct one 0.000 on both.
type acfBackendCheck struct {
	// backends overrides the generator list (tests inject perturbed
	// kernels); nil means coreBackends().
	backends []genBackend
}

func (acfBackendCheck) Name() string   { return "acf-backend-bands" }
func (acfBackendCheck) Family() string { return "acf" }

func (c acfBackendCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	n, reps, maxLag := 4096, 32, 200
	if cfg.Full {
		n, reps, maxLag = 16384, 32, 490
	}
	comp, _, _, err := paperModel()
	if err != nil {
		return res.fail(err)
	}
	backends := c.backends
	if backends == nil {
		backends = coreBackends()
	}
	bands := bandParams{z: 3, slack: 0.01}
	for _, b := range backends {
		st, err := measureBackend(ctx, b, comp, nil, 0, n, reps, maxLag, cfg.Seed+10, cfg.Workers)
		if err != nil {
			return res.fail(err)
		}
		bs := bandViolations(st, comp.At, comp.Knee, bands)
		res.gate(b.name+"_srd_outside_band_frac", bs.srdFrac, "<=", 0.20)
		res.gate(b.name+"_lrd_outside_band_frac", bs.lrdFrac, "<=", 0.20)
		res.gate(b.name+"_max_excess_beyond_band", bs.maxExcess, "<=", 0.05)
		res.note("%s: max raw deviation %.4f (not gated; sampling scatter under LRD)", b.name, bs.maxDev)
	}
	res.note("bands: target within mean ± %.0f·SE + %.3f over %d replications of n=%d, knee at lag %d",
		bands.z, bands.slack, reps, n, comp.Knee)
	return res
}

// acfCompensatedCheck gates the attenuation-compensated transform path —
// the paper's Steps 3-4 closed loop. The attenuation factor a of the
// marginal transform is measured on the uncompensated model (Step 3,
// eq. 14's premise), the background ACF is boosted by Compensate (Step 4),
// and the generated FOREGROUND — background through h — must then land on
// the original composite target, reproducing the paper's Fig. 7/8
// agreement as a gate. A regression anywhere in measure/compensate/
// transform shows up as a foreground ACF sitting a factor of a (~10-20%)
// below target at every LRD lag.
type acfCompensatedCheck struct{}

func (acfCompensatedCheck) Name() string   { return "acf-compensated-transform" }
func (acfCompensatedCheck) Family() string { return "acf" }

func (c acfCompensatedCheck) Run(ctx context.Context, cfg Config) Result {
	res := Result{Name: c.Name(), Family: c.Family(), Passed: true}
	n, reps, maxLag, measureReps := 4096, 16, 200, 100
	if cfg.Full {
		n, reps, maxLag, measureReps = 16384, 24, 490, 200
	}
	fg, tr, target, err := paperModel()
	if err != nil {
		return res.fail(err)
	}

	// Step 3: measure the attenuation at the paper's "large lags".
	lags := []int{fg.Knee + 40, fg.Knee + 90, fg.Knee + 140}
	planLen := 4 * lags[len(lags)-1]
	measurePlan, err := hosking.CachedPlanCtx(ctx, fg, planLen)
	if err != nil {
		return res.fail(err)
	}
	a, err := transform.MeasureCtx(ctx, measurePlan, tr, planLen, transform.MeasureOptions{
		Lags:         lags,
		Replications: measureReps,
		Seed:         cfg.Seed + 20,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return res.fail(err)
	}
	res.gate("attenuation", a, "<=", 1.0)
	res.gate("attenuation_min", a, ">=", 0.5)
	res.note("measured attenuation a = %.4f over lags %v", a, lags)

	// Step 4: compensate, then verify the foreground lands on target.
	bg, err := acf.Compensate(fg, a)
	if err != nil {
		return res.fail(err)
	}
	gen := coreBackends()[0] // exact Hosking: isolates the transform path
	st, err := measureBackend(ctx, gen, bg, &tr, target.Mean(), n, reps, maxLag, cfg.Seed+21, cfg.Workers)
	if err != nil {
		return res.fail(err)
	}
	bs := bandViolations(st, fg.At, fg.Knee, bandParams{z: 3, slack: 0.02})
	res.gate("foreground_srd_outside_band_frac", bs.srdFrac, "<=", 0.20)
	res.gate("foreground_lrd_outside_band_frac", bs.lrdFrac, "<=", 0.20)
	res.gate("foreground_max_excess_beyond_band", bs.maxExcess, "<=", 0.06)
	res.note("foreground sample ACF vs composite target over %d replications of n=%d (max raw deviation %.4f)",
		reps, n, bs.maxDev)
	return res
}
