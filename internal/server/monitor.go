package server

import (
	"time"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/obs"
	"vbrsim/internal/statmon"
)

// monitorACFLen is how much of the model-implied ACF each monitor gets:
// ρ(0..streamChunk), enough to cover statmon's largest dyadic fit scale
// (which is capped at the serve-path chunk size — sampled taps are
// contiguous only within one chunk).
const monitorACFLen = streamChunk + 1

// statmonConfig maps server options to a monitor config. The zero fields
// fall through to statmon's documented defaults.
func (s *Server) statmonConfig() statmon.Config {
	return statmon.Config{
		SampleEvery:    s.opt.StatmonSampleEvery,
		DriftThreshold: s.opt.StatmonDriftThreshold,
		MaxScale:       streamChunk,
	}
}

// newStreamMonitor builds the statistical monitor for a plain stream
// session: the reference is everything the spec claims analytically — the
// target Hurst parameter, the ACF-implied asymptotic H, the model-implied
// autocorrelation of served traffic, and the marginal quantile function.
// Engines without analytic references (GOP, TES autocorrelation) get a
// partially-filled Ref; statmon switches the corresponding checks off.
// Returns nil when statmon is disabled (StatmonSampleEvery < 0).
func (s *Server) newStreamMonitor(spec *modelspec.Spec, stream *modelspec.Stream) *statmon.Monitor {
	if s.opt.StatmonSampleEvery < 0 {
		return nil
	}
	ref := statmon.Ref{
		H:          spec.TargetHurst(),
		AsymH:      spec.ACF.AsymptoticHurst(),
		ImpliedACF: stream.ImpliedACF(monitorACFLen),
		Mean:       stream.MeanRate(),
	}
	if marg := stream.Marginal(); marg != nil {
		ref.Quantile = marg.Quantile
	}
	return statmon.New(s.statmonConfig(), ref)
}

// newTrunkMonitor builds the monitor for a superposition session. The
// aggregate's moments are not exposed analytically, so the Ref is empty:
// the monitor tracks observed statistics (mean, variance, Hurst, ACF,
// quantiles) for the stats endpoint but never scores drift.
func (s *Server) newTrunkMonitor() *statmon.Monitor {
	if s.opt.StatmonSampleEvery < 0 {
		return nil
	}
	return statmon.New(s.statmonConfig(), statmon.Ref{})
}

// ---------------------------------------------------------------------------
// Fleet rollup

// statmonFleet is the fleet-level aggregate behind the vbrsim_statmon_*
// gauges and the /v1/status report.
type statmonFleet struct {
	Monitored int     `json:"monitored"`
	Drifting  int     `json:"drifting"`
	MeanHurst float64 `json:"mean_hurst"`
	MaxACFErr float64 `json:"max_acf_err"`
	MaxDrift  float64 `json:"max_drift"`

	hurstN int
}

// statmonRollupTTL caches the fleet rollup between metric scrapes: the five
// statmon gauges are separate GaugeFuncs, and each snapshot walks every
// monitored session, so one scrape must not recompute the fleet five times.
const statmonRollupTTL = time.Second

// statmonRollup returns the (possibly cached) fleet aggregate.
func (s *Server) statmonRollup() statmonFleet {
	s.rollMu.Lock()
	defer s.rollMu.Unlock()
	now := time.Now()
	if now.Sub(s.rollAt) < statmonRollupTTL {
		return s.roll
	}
	s.rollAt = now
	var f statmonFleet
	for _, ss := range s.reg.list() {
		ss.mu.Lock()
		mon, closed := ss.mon, ss.closed
		ss.mu.Unlock()
		if mon == nil || closed {
			continue
		}
		snap := mon.Snapshot()
		f.Monitored++
		if snap.Drifting {
			f.Drifting++
		}
		if snap.HurstValid {
			f.MeanHurst += snap.Hurst
			f.hurstN++
		}
		if snap.ACFErr > f.MaxACFErr {
			f.MaxACFErr = snap.ACFErr
		}
		if snap.Drift > f.MaxDrift {
			f.MaxDrift = snap.Drift
		}
	}
	if f.hurstN > 0 {
		f.MeanHurst /= float64(f.hurstN)
	}
	s.roll = f
	return f
}

// registerStatmonGauges exports the fleet rollup. Gauges, not per-session
// labels: a 10k-session fleet must not mint 10k label sets per scrape — the
// per-session detail lives behind GET /v1/sessions/{id}/stats.
func (s *Server) registerStatmonGauges(reg *obs.Registry) {
	reg.GaugeFunc("vbrsim_statmon_sessions_monitored",
		"Sessions with a live statistical monitor attached.",
		func() float64 { return float64(s.statmonRollup().Monitored) })
	reg.GaugeFunc("vbrsim_statmon_sessions_drifting",
		"Monitored sessions whose drift score is at or above the threshold.",
		func() float64 { return float64(s.statmonRollup().Drifting) })
	reg.GaugeFunc("vbrsim_statmon_hurst",
		"Mean online aggregated-variance Hurst estimate across monitored sessions.",
		func() float64 { return s.statmonRollup().MeanHurst })
	reg.GaugeFunc("vbrsim_statmon_acf_err",
		"Worst observed-vs-implied autocorrelation error across monitored sessions.",
		func() float64 { return s.statmonRollup().MaxACFErr })
	reg.GaugeFunc("vbrsim_statmon_drift",
		"Worst drift score across monitored sessions.",
		func() float64 { return s.statmonRollup().MaxDrift })
}
