package server

import (
	"errors"
	"fmt"
	"sync"

	"vbrsim/internal/modelspec"
)

// Admission control sheds load by estimated model cost, not arrival order:
// every create carries a cost in session units (below), the server holds a
// fixed cost budget, and as the budget fills the maximum admissible cost
// shrinks, so a burst of expensive superpositions cannot starve the cheap
// streams that make up the bulk of a large fleet. Rejections are 429 with
// a Retry-After hint; draining stays 503.

// Engine cost classes, in session units: the relative steady-state expense
// of holding one open session of each engine (per-frame work plus resident
// state). The truncated engine carries an O(p) AR recursion and history
// (p≈361 for the paper model); the block engine amortizes FFT blocks with
// an arena; gop and tes are O(1) per frame with tiny state.
const (
	costTES       = 1.0
	costGOP       = 2.0
	costBlock     = 4.0
	costTruncated = 8.0
	// costTrunkBase is the fixed overhead of a trunk session (slab, fan-out
	// bookkeeping) on top of its per-source costs.
	costTrunkBase = 2.0
)

// kneeCostUnit scales the composite-ACF knee into the plan-size factor:
// the knee bounds the exponential-mixture region the AR plan must resolve,
// so it is the cheapest spec-only proxy for truncation order.
const kneeCostUnit = 256.0

// estimateStreamCost scores a validated stream spec in session units:
// engine class × plan-size factor. It sees only the spec (no plan is
// built), so admission can reject before any expensive work happens.
func estimateStreamCost(spec *modelspec.Spec) float64 {
	switch spec.Engine {
	case modelspec.EngineGOP:
		return costGOP
	case modelspec.EngineTES:
		return costTES
	}
	class := costTruncated
	if spec.Engine == modelspec.EngineBlock {
		class = costBlock
	}
	return class * planFactor(spec.ACF)
}

// planFactor grows the Gaussian-engine cost with the correlation length
// the plan must resolve. Composite specs scale with the knee; the other
// ACF families (farima, fgn) have no spec-level length knob and score 1.
func planFactor(acf modelspec.ACFSpec) float64 {
	if acf.Knee > 0 {
		return 1 + float64(acf.Knee)/kneeCostUnit
	}
	return 1
}

// estimateTrunkCost scores a trunk spec: base overhead plus every
// flattened component source at its own engine cost.
func estimateTrunkCost(spec *modelspec.TrunkSpec) float64 {
	cost := costTrunkBase
	for _, c := range spec.Resolved() {
		cost += float64(c.Count) * estimateStreamCost(&c.Spec)
	}
	return cost
}

// admission reject reasons (the reason label on
// vbrsim_server_admission_rejects_total).
const (
	rejectCap      = "cap"      // session-count limit
	rejectBudget   = "budget"   // cost exceeds remaining budget
	rejectPressure = "pressure" // cost too high for the pressure region
	rejectDrain    = "drain"    // server is draining (503, not 429)
)

// pressureKnee is the budget fill fraction beyond which the admissible
// cost tightens from "whatever fits" to half the remaining budget: the
// shed-order rule that keeps cheap sessions landing while expensive ones
// wait out the pressure.
const pressureKnee = 0.75

// admitError is an admission rejection: the reason keys the metrics label
// and the RetryAfter hint lands on the 429.
type admitError struct {
	reason     string
	retryAfter int // seconds
	err        error
}

func (e *admitError) Error() string { return e.err.Error() }

// admission is the cost-budget gate in front of the session registry.
// Reservations are taken before the (expensive, cancellable) stream open
// and released when the open fails or the session is removed, so the
// budget tracks open-or-opening sessions exactly.
type admission struct {
	mu          sync.Mutex
	used        float64
	sessions    int
	budget      float64
	maxSessions int
	draining    bool
}

func newAdmission(budget float64, maxSessions int) *admission {
	return &admission{budget: budget, maxSessions: maxSessions}
}

// reserve admits cost units or explains the rejection. The rules, in
// order: drain rejects everything; the session-count cap is absolute; the
// cost must fit the remaining budget; and above the pressure knee only
// requests at most half the remaining budget get in — so under pressure
// admissibility is monotone in cost: any request cheaper than an admitted
// one would also have been admitted.
func (a *admission) reserve(cost float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return &admitError{reason: rejectDrain, err: errDraining}
	}
	if a.sessions >= a.maxSessions {
		return &admitError{reason: rejectCap, retryAfter: 2, err: errSessionCap}
	}
	remaining := a.budget - a.used
	if cost > remaining {
		return &admitError{
			reason: rejectBudget, retryAfter: 2,
			err: fmt.Errorf("session cost %.1f exceeds remaining budget %.1f of %.1f", cost, remaining, a.budget),
		}
	}
	if a.used > pressureKnee*a.budget && cost > remaining/2 {
		return &admitError{
			reason: rejectPressure, retryAfter: 1,
			err: fmt.Errorf("session cost %.1f over the pressure limit %.1f (budget %.0f%% full); retry or submit cheaper models", cost, remaining/2, 100*a.used/a.budget),
		}
	}
	a.used += cost
	a.sessions++
	return nil
}

// release returns a reservation (failed open, delete, eviction).
func (a *admission) release(cost float64) {
	a.mu.Lock()
	a.used -= cost
	a.sessions--
	if a.used < 0 || a.sessions < 0 {
		a.mu.Unlock()
		panic("server: admission accounting went negative")
	}
	a.mu.Unlock()
}

// beginDrain flips every future reserve to a drain rejection.
func (a *admission) beginDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// isDraining reports the drain flag (healthz).
func (a *admission) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// usedCost returns the reserved cost units (the admission gauge).
func (a *admission) usedCost() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// asAdmitError unwraps an admission rejection.
func asAdmitError(err error) (*admitError, bool) {
	var ae *admitError
	ok := errors.As(err, &ae)
	return ae, ok
}
