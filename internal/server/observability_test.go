package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vbrsim/internal/modelspec"
)

// fgnSpec builds a truncated-engine spec generating fGn-correlated traffic
// with the given ACF Hurst parameter; claimedH is the fit-metadata H the
// spec promises (the statistical monitor checks served traffic against the
// claim, so claimedH != h is a deliberately mis-modeled stream).
func fgnSpec(h, claimedH float64, seed uint64) modelspec.Spec {
	return modelspec.Spec{
		ACF:      modelspec.ACFSpec{Kind: modelspec.ACFFGN, H: h},
		Marginal: &modelspec.MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
		H:        claimedH,
		Seed:     seed,
	}
}

// TestStatmonSamplingBitIdentity is the determinism-neutrality acceptance
// gate: with the monitor sampling every chunk, served frames — across both
// engines, chunked reads, a seek replay, and a trunk superposition — are
// bit-identical to offline synthesis (single streams) and to a statmon-off
// server (trunks).
func TestStatmonSamplingBitIdentity(t *testing.T) {
	s, ts := newTestServer(t, Options{StatmonSampleEvery: 1})
	_, tsOff := newTestServer(t, Options{StatmonSampleEvery: -1})

	for _, tc := range []struct {
		name string
		spec modelspec.Spec
	}{
		{"truncated", paperSpec(2026)},
		{"block", blockPaperSpec(2026)},
		{"fgn", fgnSpec(0.8, 0.8, 2026)},
	} {
		info := createStream(t, ts.URL, tc.spec)
		want, err := tc.spec.Frames(context.Background(), 0, 3000, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Two reads spanning several monitor chunks, then a replay.
		got := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=2500", ts.URL, info.ID))
		got = append(got, readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=500", ts.URL, info.ID))...)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s frame %d: monitored server %v, offline %v", tc.name, i, got[i], want[i])
			}
		}
		replay := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=200&from=700", ts.URL, info.ID))
		for i := range replay {
			if math.Float64bits(replay[i]) != math.Float64bits(want[700+i]) {
				t.Fatalf("%s replayed frame %d: %v, want %v", tc.name, 700+i, replay[i], want[700+i])
			}
		}
	}

	// Trunk sessions: statmon-on vs statmon-off servers must serve the same
	// bytes (trunks have no single-call offline helper here, but the off
	// server is already pinned to trunk.Open by TestTrunkSessionMatchesOffline).
	tspec := map[string]any{
		"name": "t", "seed": 11,
		"components": []map[string]any{{"count": 3, "spec": paperSpec(0)}},
	}
	on := decodeJSON[SessionInfo](t, postJSON(t, ts.URL+"/v1/trunks", tspec))
	off := decodeJSON[SessionInfo](t, postJSON(t, tsOff.URL+"/v1/trunks", tspec))
	gotT := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=2100", ts.URL, on.ID))
	wantT := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=2100", tsOff.URL, off.ID))
	if len(gotT) != len(wantT) {
		t.Fatalf("trunk: %d vs %d frames", len(gotT), len(wantT))
	}
	for i := range gotT {
		if math.Float64bits(gotT[i]) != math.Float64bits(wantT[i]) {
			t.Fatalf("trunk frame %d: monitored %v, unmonitored %v", i, gotT[i], wantT[i])
		}
	}
	_ = s
}

// stepFrames advances a session by n frames through the step endpoint (the
// cheapest way to push a statistically meaningful frame count through the
// serve path and its monitor tap).
func stepFrames(t *testing.T, base, id string, n int) {
	t.Helper()
	resp := postJSON(t, base+"/v1/streams/step", StepRequest{IDs: []string{id}, N: n})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("step: %d %s", resp.StatusCode, body)
	}
	resp.Body.Close()
}

func getSessionStats(t *testing.T, base, id string) SessionStats {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	return decodeJSON[SessionStats](t, resp)
}

// TestStatmonDriftDetection is the end-to-end drift gate: a conforming
// session (generated H == claimed H) must not drift, while a session whose
// spec claims H 0.15 above what its ACF generates must trip the drift
// score, the /v1/status rollup, and the vbrsim_statmon_* gauges.
func TestStatmonDriftDetection(t *testing.T) {
	const frames = 1 << 17
	_, ts := newTestServer(t, Options{StatmonSampleEvery: 1})
	good := createStream(t, ts.URL, fgnSpec(0.75, 0.75, 31))
	bad := createStream(t, ts.URL, fgnSpec(0.75, 0.90, 32)) // claims 0.90, serves 0.75
	stepFrames(t, ts.URL, good.ID, frames)
	stepFrames(t, ts.URL, bad.ID, frames)

	gs := getSessionStats(t, ts.URL, good.ID)
	if !gs.Monitored || gs.Stats == nil {
		t.Fatalf("conforming session not monitored: %+v", gs)
	}
	if gs.Stats.Frames != frames {
		t.Fatalf("conforming monitor saw %d frames, want %d", gs.Stats.Frames, frames)
	}
	if !gs.Stats.HurstValid {
		t.Fatalf("conforming session has no Hurst estimate: %+v", gs.Stats)
	}
	if gs.Stats.Drifting {
		t.Fatalf("conforming session flagged as drifting: %+v", gs.Stats)
	}
	if gs.Stats.Drift >= 1 {
		t.Fatalf("conforming drift score %v, want < 1", gs.Stats.Drift)
	}

	bs := getSessionStats(t, ts.URL, bad.ID)
	if !bs.Stats.Drifting {
		t.Fatalf("mis-modeled session (claimed H 0.90, served 0.75) not drifting: %+v", bs.Stats)
	}
	if bs.Stats.HurstErr < 0.10 {
		t.Fatalf("mis-modeled Hurst error %v, want >= 0.10", bs.Stats.HurstErr)
	}

	// Fleet rollup: the status endpoint names the drifting session.
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	rep := decodeJSON[StatusReport](t, resp)
	if rep.Sessions != 2 || rep.Statmon.Monitored != 2 {
		t.Fatalf("status sessions=%d monitored=%d, want 2/2", rep.Sessions, rep.Statmon.Monitored)
	}
	if rep.Statmon.Drifting != 1 || len(rep.DriftingIDs) != 1 || rep.DriftingIDs[0] != bad.ID {
		t.Fatalf("status drift rollup: %+v", rep)
	}
	if rep.Statmon.MaxDrift < 1 {
		t.Fatalf("status max drift %v, want >= 1", rep.Statmon.MaxDrift)
	}

	// And the gauges agree.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	if v := metricValue(t, text, "vbrsim_statmon_sessions_monitored"); v != 2 {
		t.Errorf("sessions_monitored = %v, want 2", v)
	}
	if v := metricValue(t, text, "vbrsim_statmon_sessions_drifting"); v != 1 {
		t.Errorf("sessions_drifting = %v, want 1", v)
	}
	if v := metricValue(t, text, "vbrsim_statmon_drift"); v < 1 {
		t.Errorf("statmon drift gauge = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "vbrsim_statmon_hurst"); v < 0.5 || v > 1 {
		t.Errorf("statmon hurst gauge = %v, want in (0.5, 1)", v)
	}
	if v := metricValue(t, text, "vbrsim_statmon_frames_sampled_total"); v != 2*frames {
		t.Errorf("frames sampled = %v, want %v", v, 2*frames)
	}
}

// TestStatmonDisabled pins the opt-out: negative sampling means no monitor,
// an honest stats response, and zero-valued fleet gauges.
func TestStatmonDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{StatmonSampleEvery: -1})
	info := createStream(t, ts.URL, paperSpec(5))
	readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=100", ts.URL, info.ID))
	st := getSessionStats(t, ts.URL, info.ID)
	if st.Monitored || st.Stats != nil {
		t.Fatalf("disabled statmon reported stats: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if v := metricValue(t, string(body), "vbrsim_statmon_sessions_monitored"); v != 0 {
		t.Fatalf("sessions_monitored = %v with statmon disabled", v)
	}
}

// TestStatmonSampledSessionStats checks the default (sampled) configuration
// feeds the monitor a strict subset of chunks while keeping its statistics
// coherent — and that the trunk session gets a no-reference monitor that
// tracks moments without ever scoring drift.
func TestStatmonSampledSessionStats(t *testing.T) {
	_, ts := newTestServer(t, Options{StatmonSampleEvery: 4})
	info := createStream(t, ts.URL, paperSpec(77))
	stepFrames(t, ts.URL, info.ID, 64*1024)
	st := getSessionStats(t, ts.URL, info.ID)
	if !st.Monitored {
		t.Fatal("session not monitored")
	}
	// 64 chunks of 1024 at SampleEvery=4: exactly 16 observed chunks.
	if st.Stats.Frames != 16*1024 {
		t.Fatalf("sampled monitor saw %d frames, want %d", st.Stats.Frames, 16*1024)
	}
	if st.Stats.Mean <= 0 {
		t.Fatalf("observed mean %v, want > 0 (lognormal frames)", st.Stats.Mean)
	}

	tr := decodeJSON[SessionInfo](t, postJSON(t, ts.URL+"/v1/trunks", map[string]any{
		"seed": 3, "components": []map[string]any{{"count": 2, "spec": paperSpec(0)}},
	}))
	stepFrames(t, ts.URL, tr.ID, 64*1024)
	tst := getSessionStats(t, ts.URL, tr.ID)
	if !tst.Monitored || tst.Kind != sessionKindTrunk {
		t.Fatalf("trunk stats: %+v", tst)
	}
	if tst.Stats.Drift != 0 || tst.Stats.Drifting {
		t.Fatalf("reference-free trunk monitor scored drift: %+v", tst.Stats)
	}
	if tst.Stats.Variance <= 0 {
		t.Fatalf("trunk variance %v, want > 0", tst.Stats.Variance)
	}
}

// TestSessionStatsNotFound covers the stats endpoint's error paths.
func TestSessionStatsNotFound(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/sessions/s999/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session stats: %d, want 404", resp.StatusCode)
	}
}

// TestRequestMetricsRED checks the middleware end-to-end: per-endpoint
// request counters with status codes, the latency histogram, the in-flight
// gauge back at zero, per-shard lookup counters, and the frame-emission
// histogram fed by the streamed chunks.
func TestRequestMetricsRED(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	info := createStream(t, ts.URL, paperSpec(8))
	readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=2500", ts.URL, info.ID))
	if resp, err := http.Get(ts.URL + "/v1/streams/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)

	for _, want := range []string{
		`vbrsim_http_requests_total{endpoint="stream_create",code="201"} 1`,
		`vbrsim_http_requests_total{endpoint="frames",code="200"} 1`,
		`vbrsim_http_requests_total{endpoint="stream_get",code="404"} 1`,
		`vbrsim_http_in_flight 1`, // the in-flight scrape itself
		`vbrsim_http_errors_total{endpoint="frames"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if v := metricValue(t, text, `vbrsim_http_request_seconds_count{endpoint="frames"}`); v != 1 {
		t.Errorf("frames request histogram count = %v, want 1", v)
	}
	if v := metricValue(t, text, `vbrsim_http_request_seconds_bucket{endpoint="frames",le="+Inf"}`); v != 1 {
		t.Errorf("frames request histogram +Inf bucket = %v, want 1", v)
	}
	// 2500 frames = 3 chunks through the emit histogram.
	if v := metricValue(t, text, "vbrsim_server_frame_emit_seconds_count"); v != 3 {
		t.Errorf("frame emit count = %v, want 3", v)
	}
	// The session lookups landed on some shard's counter (which shard
	// depends on the ID hash).
	var counted float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "vbrsim_server_shard_requests_total{") {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err == nil {
				counted += v
			}
		}
	}
	if counted < 1 {
		t.Errorf("no shard lookup counted: %v", counted)
	}
}

// TestAccessLogNDJSON drives a few requests through a server with an access
// log attached and validates the output the same way the tracer tests do:
// every line is one JSON object, access lines carry request ids, endpoint
// labels, status, and timing, and request ids are unique.
func TestAccessLogNDJSON(t *testing.T) {
	var buf lockedBuffer
	_, ts := newTestServer(t, Options{AccessLog: &buf})
	info := createStream(t, ts.URL, paperSpec(21))
	readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=100", ts.URL, info.ID))
	if resp, err := http.Get(ts.URL + "/v1/streams/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	seenIDs := map[string]bool{}
	var accessLines int
	var sawFrames, saw404 bool
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Bytes()
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("access log line is not JSON: %q: %v", line, err)
		}
		typ, _ := m["type"].(string)
		if typ != "access" {
			continue // pipeline spans share the stream; they are valid too
		}
		accessLines++
		id, _ := m["req_id"].(string)
		if id == "" {
			t.Fatalf("access line missing req_id: %q", line)
		}
		if seenIDs[id] {
			t.Fatalf("duplicate req_id %s", id)
		}
		seenIDs[id] = true
		for _, k := range []string{"method", "path", "endpoint", "status", "seconds", "bytes", "t_sec"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("access line missing %s: %q", k, line)
			}
		}
		if m["endpoint"] == "frames" && m["status"].(float64) == 200 {
			sawFrames = true
			if m["bytes"].(float64) <= 0 {
				t.Fatalf("frames access line with no bytes: %q", line)
			}
		}
		if m["status"].(float64) == 404 {
			saw404 = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if accessLines != 3 {
		t.Fatalf("access lines = %d, want 3", accessLines)
	}
	if !sawFrames || !saw404 {
		t.Fatalf("access log missing expected lines (frames=%v, 404=%v):\n%s", sawFrames, saw404, buf.Bytes())
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer for access-log capture
// (the tracer serializes writes, but the test reads concurrently with the
// server's cleanup).
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.b.Bytes()...)
}

// TestSweepMetricsRecorded pins the instrumented evictor: a sweep that
// closes an idle session shows up in both the sweep-duration histogram and
// the swept-sessions counter.
func TestSweepMetricsRecorded(t *testing.T) {
	s, ts := newTestServer(t, Options{IdleTimeout: time.Minute})
	info := createStream(t, ts.URL, paperSpec(99))
	ss, ok := s.getSession(info.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	ss.lastTouch.Store(time.Now().Add(-2 * time.Minute).UnixNano())
	if n := s.evictIdleOnce(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if v := metricValue(t, text, "vbrsim_server_swept_sessions_total"); v != 1 {
		t.Errorf("swept sessions = %v, want 1", v)
	}
	if v := metricValue(t, text, "vbrsim_server_sweep_seconds_count"); v != 1 {
		t.Errorf("sweep histogram count = %v, want 1", v)
	}
	if v := metricValue(t, text, "vbrsim_server_evictions_total"); v != 1 {
		t.Errorf("evictions = %v, want 1", v)
	}
}
