package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"
)

// TestFrameRecordGoldenBytes pins the wire encoding byte for byte: a
// little-endian uint32 count followed by the frames as little-endian
// float64 bits, and a bare zero count as the terminator. The protocol is
// public (clients decode it), so these bytes must never change silently.
func TestFrameRecordGoldenBytes(t *testing.T) {
	got := AppendFrameRecord(nil, []float64{1.5, -2.0})
	got = AppendFrameTrailer(got)
	want := []byte{
		0x02, 0x00, 0x00, 0x00, // count 2
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf8, 0x3f, // 1.5
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xc0, // -2.0
		0x00, 0x00, 0x00, 0x00, // terminator
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded record:\n got % x\nwant % x", got, want)
	}
}

// TestFrameRecordRoundTripsSpecialValues checks the encoding is bit-exact
// through the decoder for values ASCII formats mangle: NaN payloads,
// signed zero, infinities, denormals.
func TestFrameRecordRoundTripsSpecialValues(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1.0 / 3.0, math.Inf(1), math.Inf(-1),
		math.Float64frombits(0x7ff8000000000001), // NaN with payload
		math.Float64frombits(1),                  // smallest denormal
		-math.MaxFloat64,
	}
	body := AppendFrameTrailer(AppendFrameRecord(nil, vals))
	got, err := NewFrameReader(bytes.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("frame %d: %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
}

// TestFrameReaderSpansRecords decodes a body split into many records
// through a small output buffer, crossing record boundaries both ways.
func TestFrameReaderSpansRecords(t *testing.T) {
	var body []byte
	var want []float64
	for i, size := range []int{1, 7, 3, MaxFrameRecord, 2} {
		rec := make([]float64, size)
		for j := range rec {
			rec[j] = float64(i*1000 + j)
		}
		body = AppendFrameRecord(body, rec)
		want = append(want, rec...)
	}
	body = AppendFrameTrailer(body)

	fr := NewFrameReader(bytes.NewReader(body))
	var got []float64
	buf := make([]float64, 5)
	for {
		n, err := fr.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: %v, want %v", i, got[i], want[i])
		}
	}
	// Reads after the terminator stay io.EOF.
	if n, err := fr.Read(buf); n != 0 || err != io.EOF {
		t.Fatalf("post-terminator read: n=%d err=%v, want 0, io.EOF", n, err)
	}
}

// TestFrameReaderTruncationAndOversize covers the decoder's error paths:
// bodies cut anywhere before the terminator are ErrFrameTruncated, and a
// length prefix beyond MaxFrameRecord is rejected before any allocation
// of attacker-controlled size.
func TestFrameReaderTruncationAndOversize(t *testing.T) {
	full := AppendFrameTrailer(AppendFrameRecord(nil, []float64{1, 2, 3}))
	cuts := []struct {
		name string
		body []byte
	}{
		{"empty body", nil},
		{"partial header", full[:2]},
		{"header only", full[:4]},
		{"mid payload", full[:4+8+3]},
		{"full record, no terminator", full[:4+24]},
		{"partial terminator", full[:len(full)-2]},
	}
	for _, tc := range cuts {
		frames, err := NewFrameReader(bytes.NewReader(tc.body)).ReadAll()
		if err != ErrFrameTruncated {
			t.Errorf("%s: err = %v, want ErrFrameTruncated", tc.name, err)
		}
		if len(frames) > 3 {
			t.Errorf("%s: decoded %d frames from a 3-frame body", tc.name, len(frames))
		}
	}

	over := binary.LittleEndian.AppendUint32(nil, MaxFrameRecord+1)
	over = append(over, make([]byte, 64)...)
	if _, err := NewFrameReader(bytes.NewReader(over)).ReadAll(); err != ErrFrameOversized {
		t.Fatalf("oversized prefix: err = %v, want ErrFrameOversized", err)
	}
	// A huge prefix must error, not allocate: 4 GiB worth of frames claimed
	// on a 4-byte body.
	huge := binary.LittleEndian.AppendUint32(nil, 1<<29)
	if _, err := NewFrameReader(bytes.NewReader(huge)).ReadAll(); err != ErrFrameOversized {
		t.Fatalf("huge prefix: err = %v, want ErrFrameOversized", err)
	}
}

// TestAppendFrameRecordBounds pins the encoder's contract: empty and
// over-long records are programming errors, not protocol bytes.
func TestAppendFrameRecordBounds(t *testing.T) {
	for _, n := range []int{0, MaxFrameRecord + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AppendFrameRecord(%d frames) did not panic", n)
				}
			}()
			AppendFrameRecord(nil, make([]float64, n))
		}()
	}
}

// TestFramesBinaryMatchesNDJSON serves the same seeded session window in
// both encodings and requires identical values: the record protocol and
// NDJSON (whose 'g'/-1 formatting round-trips float64 exactly) are two
// views of one deterministic sequence.
func TestFramesBinaryMatchesNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const n = 300

	spec := paperSpec(20260807)
	ndInfo := createStream(t, ts.URL, spec)
	ndjson := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=%d", ts.URL, ndInfo.ID, n))

	binInfo := createStream(t, ts.URL, spec)
	req, err := http.NewRequest("GET", fmt.Sprintf("%s/v1/streams/%s/frames?n=%d", ts.URL, binInfo.ID, n), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeFrames)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frames: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeFrames {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypeFrames)
	}
	bin, err := NewFrameReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	if len(bin) != n || len(ndjson) != n {
		t.Fatalf("got %d binary / %d ndjson frames, want %d", len(bin), len(ndjson), n)
	}
	for i := range bin {
		if math.Float64bits(bin[i]) != math.Float64bits(ndjson[i]) {
			t.Fatalf("frame %d: binary %v, ndjson %v", i, bin[i], ndjson[i])
		}
	}
}

// TestFramesRecordsGoldenOverHTTP pins the served body structure for a
// known request: one record of exactly n frames (n < streamChunk, so one
// chunk) followed by the terminator, and the format=frames query selecting
// the encoding without an Accept header.
func TestFramesRecordsGoldenOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := paperSpec(424242)
	info := createStream(t, ts.URL, spec)

	const n = 16
	resp, err := http.Get(fmt.Sprintf("%s/v1/streams/%s/frames?n=%d&format=frames", ts.URL, info.ID, n))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := frameRecordHeader + n*8 + frameRecordHeader; len(body) != want {
		t.Fatalf("body is %d bytes, want %d (header + %d frames + terminator)", len(body), want, n)
	}
	if count := binary.LittleEndian.Uint32(body); count != n {
		t.Fatalf("record count = %d, want %d", count, n)
	}
	if trailer := binary.LittleEndian.Uint32(body[len(body)-4:]); trailer != 0 {
		t.Fatalf("terminator count = %d, want 0", trailer)
	}

	// The frame payloads must be the offline sequence, bit for bit.
	want, err := spec.Frames(t.Context(), 0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint64(body[frameRecordHeader+8*i:])
		if bits != math.Float64bits(want[i]) {
			t.Fatalf("frame %d: %x, want %x", i, bits, math.Float64bits(want[i]))
		}
	}
}

// FuzzBinaryFrameDecode throws arbitrary bodies at the decoder: it must
// never panic, never allocate beyond the record bound, and classify every
// body as complete, truncated, or oversized.
func FuzzBinaryFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrameTrailer(nil))
	f.Add(AppendFrameTrailer(AppendFrameRecord(nil, []float64{1.5, -2.0})))
	f.Add(AppendFrameRecord(nil, []float64{3.14})) // no terminator
	f.Add(binary.LittleEndian.AppendUint32(nil, MaxFrameRecord+1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(AppendFrameTrailer(AppendFrameRecord(AppendFrameRecord(nil, make([]float64, 7)), make([]float64, 2))))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		frames, err := NewFrameReader(bytes.NewReader(data)).ReadAll()
		// Decoded frames can never outnumber the payload bytes available.
		if len(frames) > len(data)/8 {
			t.Fatalf("decoded %d frames from %d bytes", len(frames), len(data))
		}
		switch err {
		case nil:
			// Complete bodies must contain a terminator record.
			if len(data) < frameRecordHeader {
				t.Fatalf("complete decode of a %d-byte body", len(data))
			}
		case ErrFrameTruncated, ErrFrameOversized:
		default:
			t.Fatalf("unexpected decode error: %v", err)
		}
	})
}
