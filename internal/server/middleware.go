package server

import (
	"net/http"
	"strconv"
	"time"

	"vbrsim/internal/obs"
)

// route registers pattern on the mux wrapped in the RED middleware under a
// stable endpoint label. The label, not the pattern, keys every request
// metric: patterns carry wildcards ({id}) and method prefixes that make
// poor label values, and a stable short name keeps dashboards readable.
func (s *Server) route(pattern, endpoint string, h http.Handler) {
	// Pre-touch the per-endpoint series so the exposition shows the full
	// route table (zero-valued endpoints included) from the first scrape,
	// like the shard gauges.
	s.metrics.httpErrors.With(endpoint).Add(0)
	s.metrics.httpSeconds.With(endpoint)
	s.mux.Handle(pattern, s.instrument(endpoint, h))
}

// instrument wraps h in the request-path telemetry: RED metrics (request
// and error counters, latency histogram, in-flight gauge), a per-request
// id threaded through the context, the access tracer attached so pipeline
// spans opened under this request (plan acquisition, IS warmup) stream
// into the access log, and one structured access-log line per request.
func (s *Server) instrument(endpoint string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := "r" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		ctx := obs.ContextWithRequestID(r.Context(), id)
		if s.access != nil {
			ctx = obs.ContextWithTracer(ctx, s.access)
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.metrics.httpInFlight.Add(1)
		begin := time.Now()
		next.ServeHTTP(sw, r)
		seconds := time.Since(begin).Seconds()
		s.metrics.httpInFlight.Add(-1)

		s.metrics.httpRequests.With(endpoint, strconv.Itoa(sw.code)).Inc()
		if sw.code >= 500 {
			s.metrics.httpErrors.With(endpoint).Inc()
		}
		s.metrics.httpSeconds.With(endpoint).Observe(seconds)
		s.access.Event("access", map[string]any{
			"req_id":   id,
			"method":   r.Method,
			"path":     r.URL.Path,
			"endpoint": endpoint,
			"status":   sw.code,
			"seconds":  seconds,
			"bytes":    sw.bytes,
		})
	})
}

// statusWriter records the response status and body size for the RED
// counters and the access log. It forwards Flush so the streaming frames
// path keeps its per-chunk backpressure behaviour through the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
