package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/trunk"
)

// testTrunkSpec is a small heterogeneous trunk: two block-engine replicas
// of the paper model, one GOP simulator, one TES source.
func testTrunkSpec(seed uint64) modelspec.TrunkSpec {
	paper := modelspec.Paper()
	return modelspec.TrunkSpec{
		Seed: seed,
		Components: []modelspec.TrunkComponent{
			{Count: 2, Spec: modelspec.Spec{ACF: paper.ACF, Engine: modelspec.EngineBlock}},
			{Spec: modelspec.Spec{Engine: modelspec.EngineGOP, GOP: &modelspec.GOPSpec{}}},
			{Weight: 0.5, Spec: modelspec.Spec{Engine: modelspec.EngineTES, TES: &modelspec.TESSpec{Alpha: 0.3}}},
		},
		Marginal: &modelspec.MarginalSpec{Kind: "lognormal", Mu: 9.6, Sigma: 0.4},
	}
}

func createTrunk(t *testing.T, base string, spec modelspec.TrunkSpec) SessionInfo {
	t.Helper()
	resp := postJSON(t, base+"/v1/trunks", &spec)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("create trunk: %d %s", resp.StatusCode, body)
	}
	return decodeJSON[SessionInfo](t, resp)
}

// TestTrunkSessionMatchesOffline locks the served-vs-offline contract for
// trunk sessions: the frames a trunk session streams — including a seek
// replay — are bit-identical to a trunk.Trunk opened offline with the same
// spec and seed.
func TestTrunkSessionMatchesOffline(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := testTrunkSpec(777)
	info := createTrunk(t, ts.URL, spec)
	if info.Kind != "trunk" || info.Sources != 4 {
		t.Fatalf("trunk info: kind=%q sources=%d, want trunk/4", info.Kind, info.Sources)
	}
	if info.Seed != 777 || info.Pos != 0 {
		t.Fatalf("trunk info: %+v", info)
	}

	offline, err := trunk.Open(context.Background(), &spec, trunk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()
	want := make([]float64, 600)
	offline.Fill(want)

	got := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=400", ts.URL, info.ID))
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("frame %d: server %v, offline %v", i, got[i], want[i])
		}
	}
	// Backward seek fans out to the components; it must land bit-exactly.
	replay := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=100&from=50", ts.URL, info.ID))
	for i := range replay {
		if math.Float64bits(replay[i]) != math.Float64bits(want[50+i]) {
			t.Fatalf("replayed frame %d: %v, want %v", 50+i, replay[i], want[50+i])
		}
	}
}

// TestTrunkSessionAutoSeed checks a seedless trunk spec gets a derived seed
// echoed back, and that re-creating offline with that seed reproduces the
// served frames.
func TestTrunkSessionAutoSeed(t *testing.T) {
	_, ts := newTestServer(t, Options{Seed: 99})
	spec := testTrunkSpec(0)
	info := createTrunk(t, ts.URL, spec)
	if info.Seed == 0 {
		t.Fatal("server did not assign a trunk seed")
	}
	spec.Seed = info.Seed
	offline, err := trunk.Open(context.Background(), &spec, trunk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()
	want := make([]float64, 128)
	offline.Fill(want)
	got := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=128", ts.URL, info.ID))
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("frame %d: server %v, offline %v", i, got[i], want[i])
		}
	}
}

// TestTrunkSessionStepsWithStreams drives a mixed batch — a trunk session
// and a plain stream — through POST /v1/streams/step and checks both
// advance with continuity intact.
func TestTrunkSessionStepsWithStreams(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	trunkSpec := testTrunkSpec(5150)
	trunkInfo := createTrunk(t, ts.URL, trunkSpec)
	streamInfo := createStream(t, ts.URL, blockPaperSpec(5151))

	const stepN = 300
	resp := postJSON(t, ts.URL+"/v1/streams/step",
		StepRequest{IDs: []string{trunkInfo.ID, streamInfo.ID}, N: stepN})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("step: %d %s", resp.StatusCode, body)
	}
	results := decodeJSON[[]StepResult](t, resp)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, res := range results {
		if res.Start != 0 || res.Pos != stepN {
			t.Fatalf("result %d: start %d pos %d, want 0 %d", i, res.Start, res.Pos, stepN)
		}
	}

	// Continuity: frames after the step are offline frames stepN+.
	offline, err := trunk.Open(context.Background(), &trunkSpec, trunk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()
	want := make([]float64, stepN+64)
	offline.Fill(want)
	got := readNDJSON(t, fmt.Sprintf("%s/v1/streams/%s/frames?n=64", ts.URL, trunkInfo.ID))
	for j := range got {
		if math.Float64bits(got[j]) != math.Float64bits(want[stepN+j]) {
			t.Fatalf("trunk frame %d after step: %v, want %v", stepN+j, got[j], want[stepN+j])
		}
	}
}

// TestTrunkSessionDeleteReleasesSources checks DELETE closes the trunk and
// the session disappears from list/get.
func TestTrunkSessionDeleteReleasesSources(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	info := createTrunk(t, ts.URL, testTrunkSpec(12))
	if v := s.metrics.trunkSessions.Value(); v != 1 {
		t.Fatalf("trunk sessions gauge = %v, want 1", v)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/streams/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if v := s.metrics.trunkSessions.Value(); v != 0 {
		t.Fatalf("trunk sessions gauge after delete = %v, want 0", v)
	}
	getResp, err := http.Get(ts.URL + "/v1/streams/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", getResp.StatusCode)
	}
}

// TestTrunkCreateRejections exercises the trunk-specific error paths:
// unknown component backend, zero sources, pinned component seed, unknown
// top-level field.
func TestTrunkCreateRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	good := testTrunkSpec(1)

	badEngine := good
	badEngine.Components = []modelspec.TrunkComponent{
		{Spec: modelspec.Spec{Engine: "warp-drive", ACF: good.Components[0].Spec.ACF}},
	}
	zeroSources := good
	zeroSources.Components = nil
	pinnedSeed := testTrunkSpec(1)
	pinnedSeed.Components[0].Spec.Seed = 42

	for _, tc := range []struct {
		name string
		body any
	}{
		{"unknown component backend", badEngine},
		{"zero sources", zeroSources},
		{"pinned component seed", pinnedSeed},
		{"unknown field", map[string]any{"components": []any{}, "bogus": 1}},
	} {
		resp := postJSON(t, ts.URL+"/v1/trunks", tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
