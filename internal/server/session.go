package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/trunk"
)

// frameStream is what a session serves: the deterministic frame surface
// shared by modelspec.Stream (single source) and trunk.Trunk (superposition
// of many). Both are bound to one goroutine; the session mutex provides
// that binding on the HTTP side.
type frameStream interface {
	Pos() int
	Order() int
	MaxACFError() float64
	Fill(out []float64)
	SeekCtx(ctx context.Context, pos int) error
	Close()
}

// session is one named generation stream: a frameStream plus the
// bookkeeping the HTTP layer needs. The mutex serializes frame production —
// concurrent reads of the same session see disjoint, consecutive frame
// ranges unless they pin an explicit from= offset.
type session struct {
	id      string
	name    string
	kind    string // "" for plain streams, "trunk" for superpositions
	sources int    // flattened source count (trunk sessions only)
	seed    uint64
	created time.Time

	mu     sync.Mutex
	stream frameStream
	served uint64 // frames written over all requests
}

// SessionInfo is the public view of a session. Kind and Sources are set
// only for trunk sessions, so plain-stream responses are unchanged.
type SessionInfo struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Kind        string    `json:"kind,omitempty"`
	Sources     int       `json:"sources,omitempty"`
	Seed        uint64    `json:"seed"`
	Pos         int       `json:"pos"`
	Served      uint64    `json:"frames_served"`
	Order       int       `json:"ar_order"`
	MaxACFError float64   `json:"max_acf_error"`
	Created     time.Time `json:"created"`
}

func (ss *session) info() SessionInfo {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return SessionInfo{
		ID:          ss.id,
		Name:        ss.name,
		Kind:        ss.kind,
		Sources:     ss.sources,
		Seed:        ss.seed,
		Pos:         ss.stream.Pos(),
		Served:      ss.served,
		Order:       ss.stream.Order(),
		MaxACFError: ss.stream.MaxACFError(),
		Created:     ss.created,
	}
}

// ---------------------------------------------------------------------------
// Session registry (on Server)

// addSession registers a new session, enforcing the concurrency cap.
func (s *Server) addSession(ss *session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	if len(s.sessions) >= s.opt.MaxSessions {
		return errSessionCap
	}
	s.nextSession++
	ss.id = fmt.Sprintf("s%d", s.nextSession)
	s.sessions[ss.id] = ss
	s.metrics.sessionsActive.Add(1)
	s.metrics.sessionsTotal.Inc()
	if ss.kind == sessionKindTrunk {
		s.metrics.trunkSessions.Add(1)
	}
	return nil
}

func (s *Server) getSession(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss, ok := s.sessions[id]
	return ss, ok
}

func (s *Server) removeSession(id string) bool {
	s.mu.Lock()
	ss, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.sessions, id)
	s.metrics.sessionsActive.Add(-1)
	if ss.kind == sessionKindTrunk {
		s.metrics.trunkSessions.Add(-1)
	}
	s.mu.Unlock()
	// Release engine-side accounting (the block engine's arena-bytes gauge).
	// Stream.Close touches no buffers, so an in-flight read that still holds
	// ss.mu finishes safely; the arena is simply no longer counted.
	ss.stream.Close()
	return true
}

// deriveSeed assigns a deterministic seed to the n-th auto-seeded session:
// SplitMix64 of the server base seed and the session ordinal. Restarting the
// daemon with the same base seed reproduces the same seed sequence, and the
// seed is echoed in the create response so clients can regenerate offline.
func deriveSeed(base, ordinal uint64) uint64 {
	z := base + ordinal*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// HTTP handlers

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var spec modelspec.Spec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Seed == 0 {
		spec.Seed = deriveSeed(s.opt.Seed, s.seedOrdinal.Add(1))
	}
	// Plan acquisition is the expensive step; it is cancellable by the
	// client and shared across sessions through the plan cache.
	stream, err := spec.OpenCtx(r.Context(), s.opt.Tol)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to report
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	name := spec.Name
	if name == "" {
		name = "stream"
	}
	ss := &session{name: name, seed: spec.Seed, created: time.Now(), stream: stream}
	if err := s.addSession(ss); err != nil {
		s.metrics.streamsRejected.Inc()
		stream.Close()
		code := http.StatusTooManyRequests
		if errors.Is(err, errDraining) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, ss.info())
}

// sessionKindTrunk marks superposition sessions in the registry and the
// public SessionInfo.
const sessionKindTrunk = "trunk"

// handleTrunkCreate opens a superposition session: N independently seeded
// component streams multiplexed into one aggregate, served through the same
// frames/step/delete surface as a plain stream. The trunk seed is derived
// exactly like a stream seed when the spec leaves it 0, and every component
// seed derives from the trunk seed, so the response's seed alone reproduces
// the whole aggregate offline (trunk.Open with the same spec).
func (s *Server) handleTrunkCreate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var spec modelspec.TrunkSpec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Seed == 0 {
		spec.Seed = deriveSeed(s.opt.Seed, s.seedOrdinal.Add(1))
	}
	tr, err := trunk.Open(r.Context(), &spec, trunk.Options{Tol: s.opt.Tol})
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to report
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	name := spec.Name
	if name == "" {
		name = sessionKindTrunk
	}
	ss := &session{
		name:    name,
		kind:    sessionKindTrunk,
		sources: tr.NumSources(),
		seed:    spec.Seed,
		created: time.Now(),
		stream:  tr,
	}
	if err := s.addSession(ss); err != nil {
		s.metrics.streamsRejected.Inc()
		tr.Close()
		code := http.StatusTooManyRequests
		if errors.Is(err, errDraining) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, ss.info())
}

func (s *Server) handleStreamList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		list = append(list, ss)
	}
	s.mu.Unlock()
	infos := make([]SessionInfo, len(list))
	for i, ss := range list {
		infos[i] = ss.info()
	}
	sortSessionInfos(infos)
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.getSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	writeJSON(w, http.StatusOK, ss.info())
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	if !s.removeSession(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// streamChunk bounds both the write granularity and the buffered bytes per
// stream: frames are generated and flushed streamChunk at a time, so a slow
// reader blocks the generator (backpressure) instead of growing a buffer,
// and a vanished client is noticed within one chunk.
const streamChunk = 1024

// maxSeekAhead caps how far past the session's current position from= may
// seek in one request. Skipped frames are generated one by one, so the cap
// bounds the worst-case hidden work a request can demand (a few seconds)
// while staying far above any real resume gap.
const maxSeekAhead = 1 << 24

func (s *Server) handleStreamFrames(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.getSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	q := r.URL.Query()
	n, err := strconv.Atoi(q.Get("n"))
	if err != nil || n <= 0 {
		httpError(w, http.StatusBadRequest, errors.New("need n > 0 frames"))
		return
	}
	from := -1 // -1: continue from the session's current position
	if v := q.Get("from"); v != "" {
		from, err = strconv.Atoi(v)
		if err != nil || from < 0 {
			httpError(w, http.StatusBadRequest, errors.New("from must be a non-negative frame index"))
			return
		}
	}
	binaryOut := wantsBinary(r)
	ctx := r.Context()

	// Hold the session for the whole response: concurrent readers of one
	// session are serialized, so each sees a consistent frame range.
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if from >= 0 {
		// Seeking forward generates every skipped frame, so a huge
		// client-supplied from would pin a core while holding ss.mu: bound
		// it relative to the current position, and let a disconnect or
		// shutdown abort the replay loop.
		if ahead := from - ss.stream.Pos(); ahead > maxSeekAhead {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("from=%d is %d frames ahead of position %d (max %d); stream the range instead", from, ahead, ss.stream.Pos(), maxSeekAhead))
			return
		}
		if ss.stream.SeekCtx(ctx, from) != nil {
			return // client gone mid-replay; the session stays where it got to
		}
	}
	start := ss.stream.Pos()

	if binaryOut {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Stream-Start", strconv.Itoa(start))
	w.Header().Set("X-Stream-Seed", strconv.FormatUint(ss.seed, 10))
	flusher, _ := w.(http.Flusher)
	s.metrics.streamFrames.Observe(float64(n))

	buf := make([]float64, 0, streamChunk)
	out := make([]byte, 0, streamChunk*10)
	written := 0
	for written < n {
		if ctx.Err() != nil {
			return // client gone; the session position stays where it got to
		}
		c := n - written
		if c > streamChunk {
			c = streamChunk
		}
		buf = buf[:c]
		ss.stream.Fill(buf)

		out = out[:0]
		if binaryOut {
			for _, v := range buf {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
			}
		} else {
			for _, v := range buf {
				out = strconv.AppendFloat(out, v, 'g', -1, 64)
				out = append(out, '\n')
			}
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		written += c
		ss.served += uint64(c)
		s.metrics.framesStreamed.Add(float64(c))
	}
}

// wantsBinary negotiates the frame encoding: binary float64 little-endian
// when the client asks for application/octet-stream (Accept header or
// format=binary), NDJSON otherwise.
func wantsBinary(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "binary":
		return true
	case "ndjson":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "application/octet-stream")
}

func sortSessionInfos(infos []SessionInfo) {
	// IDs are s1, s2, ...: compare numerically by length then lexically.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && sessionIDLess(infos[j].ID, infos[j-1].ID); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

func sessionIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}
