package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vbrsim/internal/modelspec"
	"vbrsim/internal/statmon"
	"vbrsim/internal/trunk"
)

// frameStream is what a session serves: the deterministic frame surface
// shared by modelspec.Stream (single source) and trunk.Trunk (superposition
// of many). Both are bound to one goroutine; the session mutex provides
// that binding on the HTTP side.
type frameStream interface {
	Pos() int
	Order() int
	MaxACFError() float64
	Fill(out []float64)
	SeekCtx(ctx context.Context, pos int) error
	Close()
}

// session is one named generation stream: a frameStream plus the
// bookkeeping the HTTP layer needs. The mutex serializes frame production —
// concurrent reads of the same session see disjoint, consecutive frame
// ranges unless they pin an explicit from= offset.
type session struct {
	id      string
	name    string
	kind    string  // "" for plain streams, "trunk" for superpositions
	sources int     // flattened source count (trunk sessions only)
	cost    float64 // admission cost units reserved for this session
	seed    uint64
	created time.Time

	// lastTouch is the idle clock (unix nanos), refreshed by every
	// registry lookup; the evictor compares it against the idle cutoff.
	lastTouch atomic.Int64

	mu     sync.Mutex
	stream frameStream
	served uint64 // frames written over all requests
	closed bool   // stream closed (deleted or evicted); reject further use

	// mon is the session's statistical self-monitor (nil when statmon is
	// disabled). It has its own lock so metric scrapes and the stats
	// endpoint never wait on ss.mu behind a long frames read; the serve
	// path calls Observe while holding ss.mu, which orders the taps.
	mon *statmon.Monitor
}

// touch refreshes the idle clock.
func (ss *session) touch() { ss.lastTouch.Store(time.Now().UnixNano()) }

// closeLocked closes the stream exactly once. Callers hold ss.mu, so a
// delete racing an eviction cannot double-close, and a request that
// acquires the mutex afterwards sees closed and treats the session as
// gone instead of using a released stream.
func (ss *session) closeLocked() {
	if ss.closed {
		return
	}
	ss.closed = true
	ss.stream.Close()
}

// SessionInfo is the public view of a session. Kind and Sources are set
// only for trunk sessions, so plain-stream responses are unchanged.
type SessionInfo struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Kind        string    `json:"kind,omitempty"`
	Sources     int       `json:"sources,omitempty"`
	Seed        uint64    `json:"seed"`
	Pos         int       `json:"pos"`
	Served      uint64    `json:"frames_served"`
	Order       int       `json:"ar_order"`
	MaxACFError float64   `json:"max_acf_error"`
	Created     time.Time `json:"created"`
}

func (ss *session) info() SessionInfo {
	info, _ := ss.infoOK()
	return info
}

// infoOK snapshots the session state; ok is false when the session was
// closed (deleted or evicted) after the caller looked it up, in which
// case the snapshot must not be served — the stream contract forbids
// touching a closed stream.
func (ss *session) infoOK() (SessionInfo, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return SessionInfo{}, false
	}
	return ss.infoLocked(), true
}

func (ss *session) infoLocked() SessionInfo {
	return SessionInfo{
		ID:          ss.id,
		Name:        ss.name,
		Kind:        ss.kind,
		Sources:     ss.sources,
		Seed:        ss.seed,
		Pos:         ss.stream.Pos(),
		Served:      ss.served,
		Order:       ss.stream.Order(),
		MaxACFError: ss.stream.MaxACFError(),
		Created:     ss.created,
	}
}

// ---------------------------------------------------------------------------
// Session registry (on Server)

// addSession assigns the next session ID and registers ss in its shard.
// Admission (session cap, cost budget, drain) already happened in
// reserve; registration cannot fail.
func (s *Server) addSession(ss *session) {
	ss.id = fmt.Sprintf("s%d", s.nextSession.Add(1))
	ss.touch()
	s.reg.add(ss)
	s.metrics.sessionsActive.Add(1)
	s.metrics.sessionsTotal.Inc()
	if ss.kind == sessionKindTrunk {
		s.metrics.trunkSessions.Add(1)
	}
}

func (s *Server) getSession(id string) (*session, bool) {
	ss, ok := s.reg.get(id)
	if ok {
		// Per-shard lookup counter: with the sharded registry, a skewed
		// request mix shows up here long before it shows up as contention.
		s.metrics.shardRequests.With(shardLabel(s.reg.shardFor(id))).Inc()
	}
	return ss, ok
}

func (s *Server) removeSession(id string) bool {
	ss, ok := s.reg.remove(id)
	if !ok {
		return false
	}
	// Release engine-side accounting (the block engine's arena-bytes
	// gauge) and the admission reservation. closeLocked under ss.mu makes
	// a delete racing an eviction sweep single-close; Stream.Close touches
	// no buffers, so a read that held ss.mu first finishes safely and sees
	// closed on its next request.
	ss.mu.Lock()
	ss.closeLocked()
	ss.mu.Unlock()
	s.adm.release(ss.cost)
	s.metrics.sessionsActive.Add(-1)
	if ss.kind == sessionKindTrunk {
		s.metrics.trunkSessions.Add(-1)
	}
	return true
}

// rejectCreate reports an admission rejection: 429 with a Retry-After
// hint (or 503 while draining), the per-reason counter, and the legacy
// streams-rejected counter.
func (s *Server) rejectCreate(w http.ResponseWriter, err error) {
	s.metrics.streamsRejected.Inc()
	code := http.StatusTooManyRequests
	if ae, ok := asAdmitError(err); ok {
		s.metrics.admissionRejects.With(ae.reason).Inc()
		if ae.reason == rejectDrain {
			code = http.StatusServiceUnavailable
		} else if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
		}
	} else if errors.Is(err, errDraining) {
		code = http.StatusServiceUnavailable
	}
	httpError(w, code, err)
}

// deriveSeed assigns a deterministic seed to the n-th auto-seeded session:
// SplitMix64 of the server base seed and the session ordinal. Restarting the
// daemon with the same base seed reproduces the same seed sequence, and the
// seed is echoed in the create response so clients can regenerate offline.
func deriveSeed(base, ordinal uint64) uint64 {
	z := base + ordinal*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// HTTP handlers

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var spec modelspec.Spec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Seed == 0 {
		spec.Seed = deriveSeed(s.opt.Seed, s.seedOrdinal.Add(1))
	}
	// Admission happens before the expensive plan acquisition: the cost is
	// estimated from the spec alone, so a doomed request never builds a
	// plan or touches an arena.
	cost := estimateStreamCost(&spec)
	if err := s.adm.reserve(cost); err != nil {
		s.rejectCreate(w, err)
		return
	}
	// Plan acquisition is the expensive step; it is cancellable by the
	// client and shared across sessions through the plan cache. Any
	// failure from here on returns the reservation and closes the stream:
	// a rejected or failed create never leaks engine accounting.
	stream, err := spec.OpenCtx(r.Context(), s.opt.Tol)
	if err != nil {
		s.adm.release(cost)
		if r.Context().Err() != nil {
			return // client gone; nothing to report
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	name := spec.Name
	if name == "" {
		name = "stream"
	}
	ss := &session{name: name, cost: cost, seed: spec.Seed, created: time.Now(), stream: stream}
	ss.mon = s.newStreamMonitor(&spec, stream)
	s.addSession(ss)
	writeJSON(w, http.StatusCreated, ss.info())
}

// sessionKindTrunk marks superposition sessions in the registry and the
// public SessionInfo.
const sessionKindTrunk = "trunk"

// handleTrunkCreate opens a superposition session: N independently seeded
// component streams multiplexed into one aggregate, served through the same
// frames/step/delete surface as a plain stream. The trunk seed is derived
// exactly like a stream seed when the spec leaves it 0, and every component
// seed derives from the trunk seed, so the response's seed alone reproduces
// the whole aggregate offline (trunk.Open with the same spec).
func (s *Server) handleTrunkCreate(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var spec modelspec.TrunkSpec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Seed == 0 {
		spec.Seed = deriveSeed(s.opt.Seed, s.seedOrdinal.Add(1))
	}
	// Trunks are the expensive sessions admission exists for: the cost
	// scales with the flattened source count, so under pressure a 4096-
	// source superposition is shed while plain streams keep landing.
	cost := estimateTrunkCost(&spec)
	if err := s.adm.reserve(cost); err != nil {
		s.rejectCreate(w, err)
		return
	}
	tr, err := trunk.Open(r.Context(), &spec, trunk.Options{Tol: s.opt.Tol})
	if err != nil {
		s.adm.release(cost)
		if r.Context().Err() != nil {
			return // client gone; nothing to report
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	name := spec.Name
	if name == "" {
		name = sessionKindTrunk
	}
	ss := &session{
		name:    name,
		kind:    sessionKindTrunk,
		sources: tr.NumSources(),
		cost:    cost,
		seed:    spec.Seed,
		created: time.Now(),
		stream:  tr,
		mon:     s.newTrunkMonitor(),
	}
	s.addSession(ss)
	writeJSON(w, http.StatusCreated, ss.info())
}

func (s *Server) handleStreamList(w http.ResponseWriter, _ *http.Request) {
	list := s.reg.list()
	infos := make([]SessionInfo, 0, len(list))
	for _, ss := range list {
		if info, ok := ss.infoOK(); ok {
			infos = append(infos, info)
		}
	}
	sortSessionInfos(infos)
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.getSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	info, ok := ss.infoOK()
	if !ok {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	if !s.removeSession(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// streamChunk bounds both the write granularity and the buffered bytes per
// stream: frames are generated and flushed streamChunk at a time, so a slow
// reader blocks the generator (backpressure) instead of growing a buffer,
// and a vanished client is noticed within one chunk.
const streamChunk = 1024

// maxSeekAhead caps how far past the session's current position from= may
// seek in one request. Skipped frames are generated one by one, so the cap
// bounds the worst-case hidden work a request can demand (a few seconds)
// while staying far above any real resume gap.
const maxSeekAhead = 1 << 24

func (s *Server) handleStreamFrames(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.getSession(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	q := r.URL.Query()
	n, err := strconv.Atoi(q.Get("n"))
	if err != nil || n <= 0 {
		httpError(w, http.StatusBadRequest, errors.New("need n > 0 frames"))
		return
	}
	from := -1 // -1: continue from the session's current position
	if v := q.Get("from"); v != "" {
		from, err = strconv.Atoi(v)
		if err != nil || from < 0 {
			httpError(w, http.StatusBadRequest, errors.New("from must be a non-negative frame index"))
			return
		}
	}
	enc := frameEncodingOf(r)
	ctx := r.Context()

	// Hold the session for the whole response: concurrent readers of one
	// session are serialized, so each sees a consistent frame range.
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		// Deleted or evicted between the registry lookup and the lock.
		httpError(w, http.StatusNotFound, errNoSession)
		return
	}
	if from >= 0 {
		// Seeking forward generates every skipped frame, so a huge
		// client-supplied from would pin a core while holding ss.mu: bound
		// it relative to the current position, and let a disconnect or
		// shutdown abort the replay loop.
		if ahead := from - ss.stream.Pos(); ahead > maxSeekAhead {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("from=%d is %d frames ahead of position %d (max %d); stream the range instead", from, ahead, ss.stream.Pos(), maxSeekAhead))
			return
		}
		if ss.stream.SeekCtx(ctx, from) != nil {
			return // client gone mid-replay; the session stays where it got to
		}
	}
	start := ss.stream.Pos()

	w.Header().Set("Content-Type", enc.contentType())
	w.Header().Set("X-Stream-Start", strconv.Itoa(start))
	w.Header().Set("X-Stream-Seed", strconv.FormatUint(ss.seed, 10))
	flusher, _ := w.(http.Flusher)
	s.metrics.streamFrames.Observe(float64(n))

	// The frame buffer and the encode buffer are both recycled: frames are
	// generated into buf and written straight out through the pooled byte
	// buffer, so steady-state streaming allocates nothing per chunk on any
	// encoding.
	buf := make([]float64, 0, streamChunk)
	outp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(outp)
	out := *outp
	written := 0
	for written < n {
		if ctx.Err() != nil {
			return // client gone; the session position stays where it got to
		}
		c := n - written
		if c > streamChunk {
			c = streamChunk
		}
		emitBegin := time.Now()
		buf = buf[:c]
		ss.stream.Fill(buf)
		// Statistical self-monitoring tap: zero-copy (the monitor reads buf
		// in place, before the encoder reuses it) and position-aware, so the
		// monitor can detect seeks and sampling gaps.
		if ss.mon.Observe(int64(start+written), buf) {
			s.metrics.statmonSampled.Add(float64(c))
		}

		out = out[:0]
		switch enc {
		case encRecords:
			out = AppendFrameRecord(out, buf)
		case encFloat64:
			for _, v := range buf {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
			}
		default:
			for _, v := range buf {
				out = strconv.AppendFloat(out, v, 'g', -1, 64)
				out = append(out, '\n')
			}
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		s.metrics.frameEmitSeconds.Observe(time.Since(emitBegin).Seconds())
		written += c
		ss.served += uint64(c)
		s.metrics.framesStreamed.Add(float64(c))
	}
	if enc == encRecords {
		// Terminator record: the protocol-level "all frames delivered".
		w.Write(AppendFrameTrailer(out[:0]))
	}
	*outp = out[:0]
}

// frameEncoding selects a frames response body format.
type frameEncoding int

const (
	encNDJSON  frameEncoding = iota // one ASCII float per line
	encFloat64                      // raw float64 little-endian
	encRecords                      // length-prefixed x-vbrsim-frames records
)

func (e frameEncoding) contentType() string {
	switch e {
	case encFloat64:
		return "application/octet-stream"
	case encRecords:
		return ContentTypeFrames
	}
	return "application/x-ndjson"
}

// frameEncodingOf negotiates the frame encoding: the length-prefixed
// record protocol for Accept: application/x-vbrsim-frames (or
// format=frames), raw binary float64 for application/octet-stream (or
// format=binary), NDJSON otherwise.
func frameEncodingOf(r *http.Request) frameEncoding {
	switch r.URL.Query().Get("format") {
	case "frames":
		return encRecords
	case "binary":
		return encFloat64
	case "ndjson":
		return encNDJSON
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, ContentTypeFrames):
		return encRecords
	case strings.Contains(accept, "application/octet-stream"):
		return encFloat64
	}
	return encNDJSON
}

func sortSessionInfos(infos []SessionInfo) {
	// IDs are s1, s2, ...: compare numerically by length then lexically.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && sessionIDLess(infos[j].ID, infos[j-1].ID); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

func sessionIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}
