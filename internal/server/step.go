package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"

	"vbrsim/internal/par"
)

// stepBatch is the fan-out width of batched session stepping: sessions
// advance in groups of this size through the shared worker pool, so a
// simulation driver holding hundreds of sessions pays one request (and one
// pool warm-up) per batch instead of one round trip per session.
const stepBatch = 32

// maxStepFrames bounds the per-session frame count of one step request
// (the work runs lock-held per session, like a frames read).
const maxStepFrames = 1 << 20

// maxStepReturnFrames is the tighter bound when the stepped frames are
// returned in the JSON response body rather than discarded.
const maxStepReturnFrames = 1 << 16

// StepRequest is the POST /v1/streams/step body.
type StepRequest struct {
	// IDs lists the sessions to advance, in response order.
	IDs []string `json:"ids"`
	// N is the frame count each listed session advances by.
	N int `json:"n"`
	// IncludeFrames returns the generated frames per session (bounded by
	// maxStepReturnFrames); when false the sessions advance positions only,
	// which is the cheap bulk-warm path.
	IncludeFrames bool `json:"include_frames,omitempty"`
}

// StepResult is one session's outcome in the step response.
type StepResult struct {
	ID    string `json:"id"`
	Start int    `json:"start"` // position before the step
	Pos   int    `json:"pos"`   // position after the step
	// Frames carries the stepped frames when requested.
	Frames []float64 `json:"frames,omitempty"`
	// Gone marks a session that was deleted or evicted between the
	// request's atomic validation and this session's turn in the batch; it
	// did not advance.
	Gone bool `json:"gone,omitempty"`
}

// handleStreamStep advances many sessions at once: the batched-stepping
// entry point for simulation drivers. Validation is atomic — every listed
// session must exist before any session moves — and each batch of
// stepBatch sessions advances in parallel through the par pool, each
// session under its own lock. Determinism is per session: a session's
// frames depend only on its spec, seed, and cumulative position, never on
// batch composition or worker scheduling.
func (s *Server) handleStreamStep(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req StepRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.IDs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("need at least one session id"))
		return
	}
	if req.N <= 0 {
		httpError(w, http.StatusBadRequest, errors.New("need n > 0 frames"))
		return
	}
	limit := maxStepFrames
	if req.IncludeFrames {
		limit = maxStepReturnFrames
	}
	if req.N > limit {
		httpError(w, http.StatusBadRequest, fmt.Errorf("n=%d exceeds the per-step limit %d", req.N, limit))
		return
	}
	sessions := make([]*session, len(req.IDs))
	for i, id := range req.IDs {
		ss, ok := s.getSession(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("%w: %s", errNoSession, id))
			return
		}
		sessions[i] = ss
	}

	results := make([]StepResult, len(sessions))
	workers := runtime.GOMAXPROCS(0)
	if workers > stepBatch {
		workers = stepBatch
	}
	for base := 0; base < len(sessions); base += stepBatch {
		batch := sessions[base:]
		if len(batch) > stepBatch {
			batch = batch[:stepBatch]
		}
		bres := results[base : base+len(batch)]
		par.For(par.Workers(workers, len(batch)), len(batch), func(_, i int) {
			ss := batch[i]
			ss.mu.Lock()
			if ss.closed {
				ss.mu.Unlock()
				bres[i] = StepResult{ID: ss.id, Start: -1, Pos: -1, Gone: true}
				return
			}
			res := StepResult{ID: ss.id, Start: ss.stream.Pos()}
			if req.IncludeFrames {
				res.Frames = make([]float64, req.N)
				ss.stream.Fill(res.Frames)
			} else {
				var buf [streamChunk]float64
				for left := req.N; left > 0; {
					c := left
					if c > streamChunk {
						c = streamChunk
					}
					ss.stream.Fill(buf[:c])
					left -= c
				}
			}
			res.Pos = ss.stream.Pos()
			ss.served += uint64(req.N)
			ss.mu.Unlock()
			bres[i] = res
		})
		advanced := 0
		for i := range bres {
			if !bres[i].Gone {
				advanced++
			}
		}
		s.metrics.framesStreamed.Add(float64(advanced * req.N))
	}
	writeJSON(w, http.StatusOK, results)
}
